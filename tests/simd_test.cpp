// Differential tests for the SIMD kernel layer (DESIGN.md §8.5): every
// vectorized kernel is swept against its scalar oracle across lengths 0..130
// and pointer offsets 0..31 (so every vector-width boundary, misalignment
// and tail shape is hit), plus dispatch-seam tests for the WAVEKEY_SIMD
// override. The suite is sanitizer-clean by construction — any vector load
// or store that strays outside the requested span trips ASan here.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <vector>

#include "crypto/chacha20.hpp"
#include "ecc/gf256.hpp"
#include "nn/gemm.hpp"
#include "numeric/rng.hpp"
#include "runtime/cpu.hpp"

namespace wavekey {
namespace {

using runtime::cpu::SimdTier;

bool avx2_host() { return runtime::cpu::detected_tier() >= SimdTier::kAvx2; }

// Restores the dispatch tier even if a test fails mid-way.
struct TierGuard {
  ~TierGuard() { runtime::cpu::force_tier_for_testing(std::nullopt); }
};

// ---------------------------------------------------------------------------
// Dispatch seam

TEST(CpuDispatch, ResolveTierParsesAndClamps) {
  using runtime::cpu::resolve_tier;
  EXPECT_EQ(resolve_tier(nullptr, SimdTier::kAvx2), SimdTier::kAvx2);
  EXPECT_EQ(resolve_tier("", SimdTier::kSse2), SimdTier::kSse2);
  EXPECT_EQ(resolve_tier("scalar", SimdTier::kAvx2), SimdTier::kScalar);
  EXPECT_EQ(resolve_tier("sse2", SimdTier::kAvx2), SimdTier::kSse2);
  EXPECT_EQ(resolve_tier("avx2", SimdTier::kAvx2), SimdTier::kAvx2);
  // Requests above the hardware clamp down, never up.
  EXPECT_EQ(resolve_tier("avx2", SimdTier::kSse2), SimdTier::kSse2);
  EXPECT_EQ(resolve_tier("sse2", SimdTier::kScalar), SimdTier::kScalar);
  // Unknown values fall back to the detected tier.
  EXPECT_EQ(resolve_tier("avx512", SimdTier::kSse2), SimdTier::kSse2);
}

TEST(CpuDispatch, TierNamesRoundTrip) {
  EXPECT_STREQ(runtime::cpu::tier_name(SimdTier::kScalar), "scalar");
  EXPECT_STREQ(runtime::cpu::tier_name(SimdTier::kSse2), "sse2");
  EXPECT_STREQ(runtime::cpu::tier_name(SimdTier::kAvx2), "avx2");
}

TEST(CpuDispatch, ActiveNeverExceedsDetected) {
  EXPECT_LE(static_cast<int>(runtime::cpu::active_tier()),
            static_cast<int>(runtime::cpu::detected_tier()));
}

// Meaningful when the harness sets WAVEKEY_SIMD=scalar (the forced-scalar CI
// leg and the pinned ctest entry do); otherwise it documents the contract
// and skips.
TEST(CpuDispatch, ForcedScalarPinsTier) {
  const char* env = std::getenv("WAVEKEY_SIMD");
  if (env == nullptr || std::string_view(env) != "scalar")
    GTEST_SKIP() << "WAVEKEY_SIMD=scalar not set";
  EXPECT_EQ(runtime::cpu::active_tier(), SimdTier::kScalar);
}

TEST(CpuDispatch, ForceTierForTestingOverridesAndResets) {
  TierGuard guard;
  runtime::cpu::force_tier_for_testing(SimdTier::kScalar);
  EXPECT_EQ(runtime::cpu::active_tier(), SimdTier::kScalar);
  runtime::cpu::force_tier_for_testing(std::nullopt);
  // Back to the environment policy.
  EXPECT_EQ(runtime::cpu::active_tier(),
            runtime::cpu::resolve_tier(std::getenv("WAVEKEY_SIMD"),
                                       runtime::cpu::detected_tier()));
}

// ---------------------------------------------------------------------------
// GF(256) slices

TEST(Gf256Simd, MulTableMatchesFieldMulExhaustively) {
  for (int c = 0; c < 256; ++c) {
    const ecc::Gf256::MulTable t = ecc::Gf256::mul_table(static_cast<std::uint8_t>(c));
    for (int x = 0; x < 256; ++x) {
      ASSERT_EQ(t.mul(static_cast<std::uint8_t>(x)),
                ecc::Gf256::mul(static_cast<std::uint8_t>(c), static_cast<std::uint8_t>(x)))
          << "c=" << c << " x=" << x;
    }
  }
}

// Sweeps lengths 0..130 at src/dst offsets 0..31. The oracle is the
// element-wise field multiply; the scalar slice kernel is checked against
// it, and the AVX2 kernel against both.
TEST(Gf256Simd, AddmulSliceAlignmentTailSweep) {
  Rng rng(101);
  constexpr std::size_t kMaxLen = 130;
  constexpr std::size_t kSlack = 32;
  std::vector<std::uint8_t> src_buf(kMaxLen + 2 * kSlack), dst_buf(kMaxLen + 2 * kSlack);
  const std::uint8_t cs[] = {0, 1, 2, 0x53, 0xFF};
  for (std::size_t len = 0; len <= kMaxLen; ++len) {
    const std::size_t off = len % kSlack;  // co-sweeps offset with length
    for (std::uint8_t c : cs) {
      for (auto& v : src_buf) v = static_cast<std::uint8_t>(rng.uniform_u64(256));
      for (auto& v : dst_buf) v = static_cast<std::uint8_t>(rng.uniform_u64(256));
      std::uint8_t* src = src_buf.data() + off;
      std::uint8_t* dst = dst_buf.data() + off;

      std::vector<std::uint8_t> want(dst, dst + len);
      for (std::size_t i = 0; i < len; ++i) want[i] ^= ecc::Gf256::mul(c, src[i]);

      std::vector<std::uint8_t> scalar_out(dst, dst + len);
      ecc::gf256_addmul_slice_scalar(scalar_out.data(), src, len, c);
      ASSERT_EQ(scalar_out, want) << "scalar len=" << len << " c=" << int(c);

      if (avx2_host()) {
        const std::vector<std::uint8_t> dst_snapshot(dst_buf);
        ecc::gf256_addmul_slice_avx2(dst, src, len, c);
        ASSERT_TRUE(std::equal(want.begin(), want.end(), dst)) << "avx2 len=" << len;
        // Bytes outside the span must be untouched.
        for (std::size_t i = 0; i < dst_buf.size(); ++i) {
          if (i < off || i >= off + len) {
            ASSERT_EQ(dst_buf[i], dst_snapshot[i]) << "oob write at " << i;
          }
        }
      }
    }
  }
}

TEST(Gf256Simd, MulSliceAlignmentTailSweep) {
  Rng rng(102);
  constexpr std::size_t kMaxLen = 130;
  constexpr std::size_t kSlack = 32;
  std::vector<std::uint8_t> src_buf(kMaxLen + 2 * kSlack), dst_buf(kMaxLen + 2 * kSlack);
  for (std::size_t len = 0; len <= kMaxLen; ++len) {
    for (std::size_t off : {len % kSlack, (3 * len + 7) % kSlack}) {
      const auto c = static_cast<std::uint8_t>(rng.uniform_u64(256));
      for (auto& v : src_buf) v = static_cast<std::uint8_t>(rng.uniform_u64(256));
      for (auto& v : dst_buf) v = static_cast<std::uint8_t>(rng.uniform_u64(256));
      std::uint8_t* src = src_buf.data() + off;
      std::uint8_t* dst = dst_buf.data() + off;

      std::vector<std::uint8_t> want(len);
      for (std::size_t i = 0; i < len; ++i) want[i] = ecc::Gf256::mul(c, src[i]);

      std::vector<std::uint8_t> scalar_out(len, 0xA5);
      ecc::gf256_mul_slice_scalar(scalar_out.data(), src, len, c);
      ASSERT_EQ(scalar_out, want) << "scalar len=" << len;

      if (avx2_host()) {
        ecc::gf256_mul_slice_avx2(dst, src, len, c);
        ASSERT_TRUE(std::equal(want.begin(), want.end(), dst)) << "avx2 len=" << len;
      }
    }
  }
}

TEST(Gf256Simd, SliceOpsAllowExactAliasing) {
  Rng rng(103);
  for (std::size_t len : {0UL, 1UL, 31UL, 32UL, 33UL, 129UL}) {
    std::vector<std::uint8_t> buf(len);
    for (auto& v : buf) v = static_cast<std::uint8_t>(rng.uniform_u64(256));
    std::vector<std::uint8_t> want(len);
    for (std::size_t i = 0; i < len; ++i)
      want[i] = buf[i] ^ ecc::Gf256::mul(0x1D, buf[i]);  // dst ^= c*dst
    std::vector<std::uint8_t> got = buf;
    ecc::Gf256::addmul_slice(got.data(), got.data(), len, 0x1D);
    EXPECT_EQ(got, want) << "len=" << len;
  }
}

TEST(Gf256Simd, DispatchedSliceMatchesScalarWhenForced) {
  TierGuard guard;
  Rng rng(104);
  std::vector<std::uint8_t> src(97), a(97), b(97);
  for (auto& v : src) v = static_cast<std::uint8_t>(rng.uniform_u64(256));
  for (std::size_t i = 0; i < a.size(); ++i) a[i] = b[i] = static_cast<std::uint8_t>(i);
  runtime::cpu::force_tier_for_testing(SimdTier::kScalar);
  ecc::Gf256::addmul_slice(a.data(), src.data(), a.size(), 0x7B);
  runtime::cpu::force_tier_for_testing(std::nullopt);
  ecc::Gf256::addmul_slice(b.data(), src.data(), b.size(), 0x7B);
  EXPECT_EQ(a, b);
}

// ---------------------------------------------------------------------------
// ChaCha20 blocks

// The scalar multi-block kernel is pinned to the RFC 8439 block function via
// crypto_test's vectors; here each wider kernel must reproduce it
// byte-for-byte for every block count and output offset, including counter
// wraparound.
TEST(ChaChaSimd, BlockKernelsMatchScalarSweep) {
  Rng rng(105);
  std::uint32_t state[16];
  constexpr std::size_t kMaxBlocks = 6;
  constexpr std::size_t kSlack = 32;
  std::vector<std::uint8_t> want(kMaxBlocks * 64);
  std::vector<std::uint8_t> out(kMaxBlocks * 64 + 2 * kSlack);
  for (std::uint32_t counter : {0u, 1u, 0xFFFFFFFDu}) {  // includes wrap
    for (auto& w : state) w = static_cast<std::uint32_t>(rng.uniform_u64(1ULL << 32));
    state[12] = counter;
    for (std::size_t nblocks = 0; nblocks <= kMaxBlocks; ++nblocks) {
      crypto::chacha20_blocks_scalar(state, want.data(), nblocks);
      for (std::size_t off = 0; off < kSlack; ++off) {
        std::fill(out.begin(), out.end(), 0xEE);
        crypto::chacha20_blocks_sse2(state, out.data() + off, nblocks);
        ASSERT_TRUE(std::equal(want.begin(), want.begin() + nblocks * 64, out.data() + off))
            << "sse2 nblocks=" << nblocks << " off=" << off;
        if (avx2_host()) {
          std::fill(out.begin(), out.end(), 0xEE);
          crypto::chacha20_blocks_avx2(state, out.data() + off, nblocks);
          ASSERT_TRUE(
              std::equal(want.begin(), want.begin() + nblocks * 64, out.data() + off))
              << "avx2 nblocks=" << nblocks << " off=" << off;
          // No write outside [off, off + nblocks*64).
          for (std::size_t i = 0; i < out.size(); ++i) {
            if (i < off || i >= off + nblocks * 64) {
              ASSERT_EQ(out[i], 0xEE) << "oob at " << i;
            }
          }
        }
      }
    }
  }
}

// The class-level fast path mixes buffered partial blocks with bulk
// generation; any split pattern must give the same stream as one-byte-at-a-
// time consumption.
TEST(ChaChaSimd, KeystreamChunkingInvariant) {
  const std::vector<std::uint8_t> key(32, 0x42);
  const std::vector<std::uint8_t> nonce(12, 0x24);
  std::vector<std::uint8_t> want(641);
  {
    crypto::ChaCha20 ref(key, nonce, 7);
    for (auto& b : want) {
      std::uint8_t one;
      ref.keystream({&one, 1});
      b = one;
    }
  }
  for (std::size_t chunk : {1UL, 3UL, 63UL, 64UL, 65UL, 127UL, 256UL, 641UL}) {
    crypto::ChaCha20 c(key, nonce, 7);
    std::vector<std::uint8_t> got(want.size());
    for (std::size_t pos = 0; pos < got.size(); pos += chunk) {
      const std::size_t n = std::min(chunk, got.size() - pos);
      c.keystream({got.data() + pos, n});
    }
    EXPECT_EQ(got, want) << "chunk=" << chunk;
  }
  // crypt is keystream XOR data under the same chunking rules.
  for (std::size_t chunk : {5UL, 64UL, 200UL}) {
    crypto::ChaCha20 c(key, nonce, 7);
    std::vector<std::uint8_t> data(want.size(), 0x5A);
    for (std::size_t pos = 0; pos < data.size(); pos += chunk) {
      const std::size_t n = std::min(chunk, data.size() - pos);
      c.crypt({data.data() + pos, n});
    }
    for (std::size_t i = 0; i < data.size(); ++i)
      ASSERT_EQ(data[i], static_cast<std::uint8_t>(0x5A ^ want[i])) << "chunk=" << chunk;
  }
}

TEST(ChaChaSimd, ClassStreamIdenticalAcrossForcedTiers) {
  TierGuard guard;
  const std::vector<std::uint8_t> key(32, 0x11);
  const std::vector<std::uint8_t> nonce(12, 0x22);
  std::vector<std::uint8_t> per_tier[3];
  const SimdTier tiers[] = {SimdTier::kScalar, SimdTier::kSse2, SimdTier::kAvx2};
  for (int t = 0; t < 3; ++t) {
    runtime::cpu::force_tier_for_testing(tiers[t]);
    crypto::ChaCha20 c(key, nonce);
    per_tier[t].resize(1000);
    c.keystream(per_tier[t]);
  }
  EXPECT_EQ(per_tier[0], per_tier[1]);
  EXPECT_EQ(per_tier[0], per_tier[2]);
}

// ---------------------------------------------------------------------------
// GEMM

// Relative tolerance matching kernel_equiv_test: tiers reassociate/fuse
// differently but must agree to float precision.
void expect_close(const std::vector<float>& got, const std::vector<float>& want,
                  const char* what) {
  ASSERT_EQ(got.size(), want.size());
  for (std::size_t i = 0; i < got.size(); ++i) {
    const float tol = 1e-5f * (1.0f + std::abs(want[i]));
    ASSERT_NEAR(got[i], want[i], tol) << what << " at " << i;
  }
}

TEST(GemmSimd, Avx2MatchesScalarShapeSweep) {
  if (!avx2_host()) GTEST_SKIP() << "no AVX2";
  Rng rng(106);
  const std::size_t ms[] = {1, 3, 4, 5, 8, 9};
  const std::size_t ns[] = {1, 7, 8, 15, 16, 17, 33};
  const std::size_t ks[] = {0, 1, 5, 8, 32, 40};
  for (std::size_t m : ms) {
    for (std::size_t n : ns) {
      for (std::size_t k : ks) {
        // Leading dims exceed the logical width: strided/unaligned panels.
        const std::size_t lda_nn = k + 3, ldb = n + 5, ldc = n + 2;
        std::vector<float> a(m * lda_nn + (k ? k : 1)), b((k + 1) * ldb + n), c0(m * ldc),
            c1(m * ldc);
        for (auto& v : a) v = static_cast<float>(rng.normal());
        for (auto& v : b) v = static_cast<float>(rng.normal());
        for (auto& v : c0) v = static_cast<float>(rng.normal());
        c1 = c0;
        for (bool accumulate : {false, true}) {
          nn::gemm_nn_scalar(m, n, k, a.data(), lda_nn, b.data(), ldb, c0.data(), ldc,
                             accumulate);
          nn::gemm_nn_avx2(m, n, k, a.data(), lda_nn, b.data(), ldb, c1.data(), ldc,
                           accumulate);
          expect_close(c1, c0, "gemm_nn");
        }

        // tn: A is [K, M] with lda >= m.
        const std::size_t lda_tn = m + 4;
        std::vector<float> at((k + 1) * lda_tn + m);
        for (auto& v : at) v = static_cast<float>(rng.normal());
        nn::gemm_tn_scalar(m, n, k, at.data(), lda_tn, b.data(), ldb, c0.data(), ldc, false);
        nn::gemm_tn_avx2(m, n, k, at.data(), lda_tn, b.data(), ldb, c1.data(), ldc, false);
        expect_close(c1, c0, "gemm_tn");

        // nt: B is [N, K] with ldb >= k.
        const std::size_t ldb_nt = k + 1;
        std::vector<float> bt(n * ldb_nt + (k ? k : 1));
        for (auto& v : bt) v = static_cast<float>(rng.normal());
        nn::gemm_nt_scalar(m, n, k, a.data(), lda_nn, bt.data(), ldb_nt, c0.data(), ldc,
                           true);
        nn::gemm_nt_avx2(m, n, k, a.data(), lda_nn, bt.data(), ldb_nt, c1.data(), ldc, true);
        expect_close(c1, c0, "gemm_nt");
      }
    }
  }
}

// Long-k dot products stress the multi-chain reduction and its fixed fold.
TEST(GemmSimd, DotKernelLongKSweep) {
  if (!avx2_host()) GTEST_SKIP() << "no AVX2";
  Rng rng(107);
  for (std::size_t k = 120; k <= 130; ++k) {
    std::vector<float> a(k), b(k), c0(1), c1(1);
    for (auto& v : a) v = static_cast<float>(rng.normal());
    for (auto& v : b) v = static_cast<float>(rng.normal());
    nn::gemm_nt_scalar(1, 1, k, a.data(), k, b.data(), k, c0.data(), 1, false);
    nn::gemm_nt_avx2(1, 1, k, a.data(), k, b.data(), k, c1.data(), 1, false);
    expect_close(c1, c0, "dot");
  }
}

TEST(GemmSimd, PublicEntryPointsHonorForcedScalar) {
  TierGuard guard;
  Rng rng(108);
  const std::size_t m = 6, n = 19, k = 23;
  std::vector<float> a(m * k), b(k * n), want(m * n, 0.0f), got(m * n, 0.0f);
  for (auto& v : a) v = static_cast<float>(rng.normal());
  for (auto& v : b) v = static_cast<float>(rng.normal());
  runtime::cpu::force_tier_for_testing(SimdTier::kScalar);
  nn::gemm_nn(m, n, k, a.data(), k, b.data(), n, got.data(), n, false);
  runtime::cpu::force_tier_for_testing(std::nullopt);
  nn::gemm_nn_scalar(m, n, k, a.data(), k, b.data(), n, want.data(), n, false);
  // Forced-scalar dispatch must take the *identical* code path: bit-equal.
  EXPECT_EQ(got, want);
}

}  // namespace
}  // namespace wavekey
