// Tests for the from-scratch NN framework. The backward passes are verified
// against central finite differences; training sanity is verified by fitting
// small regression problems; serialization and pruning surgery round-trip.

#include <gtest/gtest.h>

#include <cmath>
#include <functional>
#include <sstream>

#include "nn/batchnorm.hpp"
#include "nn/conv1d.hpp"
#include "nn/dense.hpp"
#include "nn/layer.hpp"
#include "nn/loss.hpp"
#include "nn/optimizer.hpp"
#include "nn/sequential.hpp"
#include "numeric/rng.hpp"

namespace wavekey::nn {
namespace {

Tensor random_tensor(std::vector<std::size_t> shape, Rng& rng, double sigma = 1.0) {
  Tensor t(std::move(shape));
  for (std::size_t i = 0; i < t.size(); ++i) t[i] = static_cast<float>(rng.normal(0.0, sigma));
  return t;
}

// Checks every parameter gradient and the input gradient of `layer` against
// central finite differences of the scalar loss 0.5*||forward(x)||^2.
void check_gradients(Layer& layer, const Tensor& input, bool training = true,
                     float eps = 1e-2f, float tol = 2e-2f) {
  auto loss_of = [&](const Tensor& x) -> double {
    const Tensor y = layer.forward(x, training);
    double l = 0.0;
    for (std::size_t i = 0; i < y.size(); ++i) l += 0.5 * static_cast<double>(y[i]) * y[i];
    return l;
  };

  // Analytic gradients.
  const Tensor out = layer.forward(input, training);
  Tensor grad_out(out.shape());
  for (std::size_t i = 0; i < out.size(); ++i) grad_out[i] = out[i];
  for (Param p : layer.params()) p.grad->fill(0.0f);
  const Tensor grad_in = layer.backward(grad_out);

  // Input gradient check (sampled).
  Tensor x = input;
  for (std::size_t i = 0; i < std::min<std::size_t>(x.size(), 24); ++i) {
    const std::size_t idx = (i * 7919) % x.size();
    const float orig = x[idx];
    x[idx] = orig + eps;
    const double lp = loss_of(x);
    x[idx] = orig - eps;
    const double lm = loss_of(x);
    x[idx] = orig;
    const double numeric = (lp - lm) / (2.0 * eps);
    const double analytic = grad_in[idx];
    EXPECT_NEAR(analytic, numeric, tol * (1.0 + std::abs(numeric)))
        << "input grad idx=" << idx;
  }

  // Parameter gradient check (sampled).
  for (Param p : layer.params()) {
    Tensor& w = *p.value;
    for (std::size_t i = 0; i < std::min<std::size_t>(w.size(), 16); ++i) {
      const std::size_t idx = (i * 5557) % w.size();
      const float orig = w[idx];
      w[idx] = orig + eps;
      const double lp = loss_of(input);
      w[idx] = orig - eps;
      const double lm = loss_of(input);
      w[idx] = orig;
      const double numeric = (lp - lm) / (2.0 * eps);
      const double analytic = (*p.grad)[idx];
      EXPECT_NEAR(analytic, numeric, tol * (1.0 + std::abs(numeric)))
          << "param grad idx=" << idx;
    }
  }
}

TEST(TensorTest, ShapeAndAccessors) {
  Tensor t({2, 3, 4});
  EXPECT_EQ(t.size(), 24u);
  t.at3(1, 2, 3) = 5.0f;
  EXPECT_FLOAT_EQ(t[23], 5.0f);
  const Tensor r = t.reshaped({2, 12});
  EXPECT_FLOAT_EQ(r.at2(1, 11), 5.0f);
  EXPECT_THROW(t.reshaped({5, 5}), std::invalid_argument);
}

TEST(ReLUTest, ForwardZeroesNegatives) {
  ReLU relu;
  Tensor x({1, 4});
  x[0] = -1.0f;
  x[1] = 2.0f;
  x[2] = 0.0f;
  x[3] = -0.5f;
  const Tensor y = relu.forward(x, true);
  EXPECT_FLOAT_EQ(y[0], 0.0f);
  EXPECT_FLOAT_EQ(y[1], 2.0f);
  EXPECT_FLOAT_EQ(y[2], 0.0f);
  EXPECT_FLOAT_EQ(y[3], 0.0f);
}

TEST(ReLUTest, BackwardMasksGradient) {
  ReLU relu;
  Tensor x({1, 3});
  x[0] = -1.0f;
  x[1] = 1.0f;
  x[2] = 3.0f;
  (void)relu.forward(x, true);
  Tensor g({1, 3});
  g.fill(1.0f);
  const Tensor gi = relu.backward(g);
  EXPECT_FLOAT_EQ(gi[0], 0.0f);
  EXPECT_FLOAT_EQ(gi[1], 1.0f);
  EXPECT_FLOAT_EQ(gi[2], 1.0f);
}

TEST(DenseTest, ForwardKnownValues) {
  Rng rng(1);
  Dense d(2, 2, rng);
  d.weights()[0] = 1.0f;  // w(0,0)
  d.weights()[1] = 2.0f;  // w(0,1)
  d.weights()[2] = -1.0f;
  d.weights()[3] = 0.5f;
  d.bias()[0] = 0.1f;
  d.bias()[1] = -0.2f;
  Tensor x({1, 2});
  x[0] = 3.0f;
  x[1] = 4.0f;
  const Tensor y = d.forward(x, true);
  EXPECT_NEAR(y[0], 1 * 3 + 2 * 4 + 0.1, 1e-6);
  EXPECT_NEAR(y[1], -1 * 3 + 0.5 * 4 - 0.2, 1e-6);
}

TEST(DenseTest, GradientCheck) {
  Rng rng(2);
  Dense d(5, 3, rng);
  const Tensor x = random_tensor({4, 5}, rng);
  check_gradients(d, x);
}

TEST(DenseTest, RejectsWrongInputWidth) {
  Rng rng(3);
  Dense d(5, 3, rng);
  EXPECT_THROW(d.forward(Tensor({2, 4}), true), std::invalid_argument);
}

TEST(DenseTest, RemoveOutputUnitPreservesOthers) {
  Rng rng(4);
  Dense d(3, 4, rng);
  const Tensor x = random_tensor({2, 3}, rng);
  const Tensor before = d.forward(x, true);
  d.remove_output_unit(1);
  EXPECT_EQ(d.out_features(), 3u);
  const Tensor after = d.forward(x, true);
  // Outputs 0, 2, 3 (now 0, 1, 2) must be unchanged.
  EXPECT_FLOAT_EQ(after.at2(0, 0), before.at2(0, 0));
  EXPECT_FLOAT_EQ(after.at2(0, 1), before.at2(0, 2));
  EXPECT_FLOAT_EQ(after.at2(1, 2), before.at2(1, 3));
  EXPECT_THROW(d.remove_output_unit(10), std::out_of_range);
}

TEST(DenseTest, RemoveInputUnitPreservesMapOnRemainingInputs) {
  Rng rng(5);
  Dense d(4, 2, rng);
  Tensor x({1, 4});
  x[0] = 1.0f;
  x[1] = 0.0f;  // the unit to be removed carries zero input
  x[2] = -2.0f;
  x[3] = 0.5f;
  const Tensor before = d.forward(x, true);
  d.remove_input_unit(1);
  Tensor x2({1, 3});
  x2[0] = 1.0f;
  x2[1] = -2.0f;
  x2[2] = 0.5f;
  const Tensor after = d.forward(x2, true);
  EXPECT_NEAR(after[0], before[0], 1e-6);
  EXPECT_NEAR(after[1], before[1], 1e-6);
}

TEST(Conv1DTest, OutputLengthFormula) {
  Rng rng(6);
  Conv1D c(1, 1, 5, 2, 2, rng);
  EXPECT_EQ(c.output_length(200), 100u);
  Conv1D c2(1, 1, 3, 1, 0, rng);
  EXPECT_EQ(c2.output_length(10), 8u);
  EXPECT_THROW(c2.output_length(2), std::invalid_argument);
}

TEST(Conv1DTest, MatchesNaiveConvolution) {
  Rng rng(7);
  Conv1D c(2, 3, 3, 1, 1, rng);
  const Tensor x = random_tensor({1, 2, 6}, rng);
  const Tensor y = c.forward(x, true);
  ASSERT_EQ(y.shape(), (std::vector<std::size_t>{1, 3, 6}));

  // Naive reference with explicit zero padding.
  std::vector<Param> ps = c.params();
  const Tensor& w = *ps[0].value;  // [3, 2, 3]
  const Tensor& b = *ps[1].value;
  for (std::size_t oc = 0; oc < 3; ++oc) {
    for (std::size_t t = 0; t < 6; ++t) {
      float acc = b[oc];
      for (std::size_t ic = 0; ic < 2; ++ic)
        for (std::size_t k = 0; k < 3; ++k) {
          const int idx = static_cast<int>(t) - 1 + static_cast<int>(k);
          if (idx >= 0 && idx < 6)
            acc += w[(oc * 2 + ic) * 3 + k] * x.at3(0, ic, static_cast<std::size_t>(idx));
        }
      EXPECT_NEAR(y.at3(0, oc, t), acc, 1e-5) << oc << "," << t;
    }
  }
}

TEST(Conv1DTest, GradientCheck) {
  Rng rng(8);
  Conv1D c(2, 4, 5, 2, 2, rng);
  const Tensor x = random_tensor({3, 2, 12}, rng);
  check_gradients(c, x);
}

TEST(ConvTranspose1DTest, OutputLengthFormula) {
  Rng rng(9);
  ConvTranspose1D d(1, 1, 4, 2, rng);
  EXPECT_EQ(d.output_length(10), 22u);
}

TEST(ConvTranspose1DTest, GradientCheck) {
  Rng rng(10);
  ConvTranspose1D d(3, 2, 4, 2, rng);
  const Tensor x = random_tensor({2, 3, 7}, rng);
  check_gradients(d, x);
}

TEST(ConvTranspose1DTest, UpsamplesDeltaToKernel) {
  Rng rng(11);
  ConvTranspose1D d(1, 1, 3, 2, rng);
  std::vector<Param> ps = d.params();
  Tensor& w = *ps[0].value;
  Tensor& b = *ps[1].value;
  w[0] = 1.0f;
  w[1] = 2.0f;
  w[2] = 3.0f;
  b[0] = 0.0f;
  Tensor x({1, 1, 2});
  x[0] = 1.0f;
  x[1] = 10.0f;
  const Tensor y = d.forward(x, true);
  ASSERT_EQ(y.dim(2), 5u);
  EXPECT_FLOAT_EQ(y[0], 1.0f);
  EXPECT_FLOAT_EQ(y[1], 2.0f);
  EXPECT_FLOAT_EQ(y[2], 3.0f + 10.0f);
  EXPECT_FLOAT_EQ(y[3], 20.0f);
  EXPECT_FLOAT_EQ(y[4], 30.0f);
}

TEST(BatchNormTest, TrainingNormalizesBatch) {
  Rng rng(12);
  BatchNorm1D bn(4);
  const Tensor x = random_tensor({64, 4}, rng, 3.0);
  const Tensor y = bn.forward(x, true);
  for (std::size_t f = 0; f < 4; ++f) {
    double m = 0.0, v = 0.0;
    for (std::size_t i = 0; i < 64; ++i) m += y.at2(i, f);
    m /= 64.0;
    for (std::size_t i = 0; i < 64; ++i) v += (y.at2(i, f) - m) * (y.at2(i, f) - m);
    v /= 64.0;
    EXPECT_NEAR(m, 0.0, 1e-5);
    EXPECT_NEAR(v, 1.0, 1e-3);
  }
}

TEST(BatchNormTest, RunningStatsConvergeAndDriveEvalMode) {
  Rng rng(13);
  BatchNorm1D bn(2, false, 0.2f);
  // Stream many batches with mean 5, std 2.
  for (int it = 0; it < 200; ++it) {
    Tensor x({32, 2});
    for (std::size_t i = 0; i < x.size(); ++i) x[i] = static_cast<float>(rng.normal(5.0, 2.0));
    (void)bn.forward(x, true);
  }
  EXPECT_NEAR(bn.running_mean()[0], 5.0, 0.3);
  EXPECT_NEAR(bn.running_var()[0], 4.0, 0.6);

  // Eval mode: new data from the same distribution normalizes to ~N(0,1).
  Tensor x({256, 2});
  for (std::size_t i = 0; i < x.size(); ++i) x[i] = static_cast<float>(rng.normal(5.0, 2.0));
  const Tensor y = bn.forward(x, false);
  double m = 0.0;
  for (std::size_t i = 0; i < 256; ++i) m += y.at2(i, 0);
  EXPECT_NEAR(m / 256.0, 0.0, 0.25);
}

TEST(BatchNormTest, GradientCheckTrainingMode) {
  Rng rng(14);
  BatchNorm1D bn(3, true);
  const Tensor x = random_tensor({8, 3}, rng, 2.0);
  check_gradients(bn, x, true, 1e-2f, 5e-2f);
}

TEST(BatchNormTest, RemoveUnitShrinksState) {
  BatchNorm1D bn(5);
  bn.remove_unit(2);
  EXPECT_EQ(bn.features(), 4u);
  EXPECT_THROW(bn.remove_unit(9), std::out_of_range);
}

TEST(BatchNormTest, TinyTrainingBatchThrows) {
  BatchNorm1D bn(2);
  EXPECT_THROW(bn.forward(Tensor({1, 2}), true), std::invalid_argument);
}

TEST(LossTest, MseZeroAtTarget) {
  Tensor a({2, 2}), b({2, 2});
  a.fill(1.0f);
  b.fill(1.0f);
  const auto [loss, grad] = mse_loss(a, b);
  EXPECT_FLOAT_EQ(loss, 0.0f);
  for (std::size_t i = 0; i < grad.size(); ++i) EXPECT_FLOAT_EQ(grad[i], 0.0f);
}

TEST(LossTest, EuclideanMatchesHandComputation) {
  Tensor a({1, 3}), b({1, 3});
  a[0] = 3.0f;
  a[1] = 0.0f;
  a[2] = 4.0f;
  b.fill(0.0f);
  const auto [loss, grad] = euclidean_loss(a, b);
  EXPECT_NEAR(loss, 5.0f, 1e-6);
  EXPECT_NEAR(grad[0], 3.0 / 5.0, 1e-6);
  EXPECT_NEAR(grad[2], 4.0 / 5.0, 1e-6);
}

TEST(OptimizerTest, AdamMinimizesQuadratic) {
  // Minimize 0.5*||w - target||^2 by hand-feeding gradients.
  Tensor w({4}), g({4}), target({4});
  for (int i = 0; i < 4; ++i) {
    w[i] = static_cast<float>(i);
    target[i] = 10.0f - i;
  }
  Adam opt({{&w, &g}}, 0.05f);
  for (int it = 0; it < 2000; ++it) {
    for (int i = 0; i < 4; ++i) g[i] = w[i] - target[i];
    opt.step();
  }
  for (int i = 0; i < 4; ++i) EXPECT_NEAR(w[i], target[i], 1e-2);
}

TEST(OptimizerTest, SgdMinimizesQuadratic) {
  Tensor w({3}), g({3});
  w.fill(5.0f);
  Sgd opt({{&w, &g}}, 0.05f, 0.5f);
  for (int it = 0; it < 500; ++it) {
    for (int i = 0; i < 3; ++i) g[i] = w[i];
    opt.step();
  }
  for (int i = 0; i < 3; ++i) EXPECT_NEAR(w[i], 0.0f, 1e-3);
}

TEST(SequentialTest, TrainsSmallRegression) {
  // Fit y = x1 - 2*x2 with a two-layer net; loss must fall dramatically.
  Rng rng(15);
  Sequential net;
  net.add<Dense>(2, 16, rng);
  net.add<ReLU>();
  net.add<Dense>(16, 1, rng);
  Adam opt(net.params(), 0.01f);

  auto make_batch = [&](Tensor& x, Tensor& y) {
    x = random_tensor({32, 2}, rng);
    y = Tensor({32, 1});
    for (std::size_t i = 0; i < 32; ++i) y.at2(i, 0) = x.at2(i, 0) - 2.0f * x.at2(i, 1);
  };

  Tensor x, y;
  make_batch(x, y);
  const auto [initial_loss, g0] = mse_loss(net.forward(x, true), y);
  float last_loss = initial_loss;
  for (int it = 0; it < 600; ++it) {
    make_batch(x, y);
    const Tensor pred = net.forward(x, true);
    const auto [loss, grad] = mse_loss(pred, y);
    last_loss = loss;
    net.backward(grad);
    opt.step();
  }
  EXPECT_LT(last_loss, 0.02f * initial_loss);
}

TEST(SequentialTest, SaveLoadRoundTrip) {
  Rng rng(16);
  Sequential net;
  net.add<Conv1D>(2, 4, 3, 1, 1, rng);
  net.add<ReLU>();
  net.add<Flatten>();
  net.add<Dense>(4 * 8, 6, rng);
  net.add<BatchNorm1D>(6);

  const Tensor x = random_tensor({4, 2, 8}, rng);
  (void)net.forward(x, true);  // populate running stats
  const Tensor y1 = net.forward(x, false);

  std::stringstream ss;
  net.save(ss);

  Rng rng2(999);  // different init; weights must come from the stream
  Sequential net2;
  net2.add<Conv1D>(2, 4, 3, 1, 1, rng2);
  net2.add<ReLU>();
  net2.add<Flatten>();
  net2.add<Dense>(4 * 8, 6, rng2);
  net2.add<BatchNorm1D>(6);
  net2.load(ss);

  const Tensor y2 = net2.forward(x, false);
  ASSERT_TRUE(y1.same_shape(y2));
  for (std::size_t i = 0; i < y1.size(); ++i) EXPECT_FLOAT_EQ(y1[i], y2[i]);
}

TEST(SequentialTest, LoadRejectsArchitectureMismatch) {
  Rng rng(17);
  Sequential net;
  net.add<Dense>(3, 2, rng);
  std::stringstream ss;
  net.save(ss);

  Sequential other;
  other.add<Dense>(3, 2, rng);
  other.add<ReLU>();
  EXPECT_THROW(other.load(ss), std::runtime_error);

  Sequential wrong_shape;
  wrong_shape.add<Dense>(4, 2, rng);
  std::stringstream ss2;
  net.save(ss2);
  EXPECT_THROW(wrong_shape.load(ss2), std::runtime_error);
}

TEST(SequentialTest, NumParametersCountsEverything) {
  Rng rng(18);
  Sequential net;
  net.add<Dense>(10, 5, rng);  // 55
  net.add<BatchNorm1D>(5, true);  // 10
  EXPECT_EQ(net.num_parameters(), 65u);
}

TEST(ReshapeTest, RoundTripsThroughBackward) {
  Reshape r({3, 4});
  Rng rng(19);
  const Tensor x = random_tensor({2, 12}, rng);
  const Tensor y = r.forward(x, true);
  EXPECT_EQ(y.shape(), (std::vector<std::size_t>{2, 3, 4}));
  const Tensor g = r.backward(y);
  EXPECT_EQ(g.shape(), x.shape());
  for (std::size_t i = 0; i < g.size(); ++i) EXPECT_FLOAT_EQ(g[i], x[i]);
}

}  // namespace
}  // namespace wavekey::nn
