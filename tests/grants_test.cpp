// Tests of the offline-grant subsystem (DESIGN.md §14): the KdfTree
// diversification hierarchy (sibling independence under rotation), the
// GrantToken wire format (round-trip + 1000-mutation typed-errors-only
// fuzz: a content mutation can never be granted), the vault-free
// OfflineVerifier (every failure mode a distinct AccessStatus, MAC checked
// before any counter state moves, counter handoff across failover), the
// hash-chained AuditLog (O(1) head verification, tamper sweep pinpointing
// the exact corrupted index, keyed genesis), the counter_advance predicate
// edges, and the gateway's disconnected-operation fallback.

#include <gtest/gtest.h>

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <vector>

#include "crypto/drbg.hpp"
#include "crypto/kdf_tree.hpp"
#include "numeric/rng.hpp"
#include "server/audit.hpp"
#include "server/cluster.hpp"
#include "server/gateway.hpp"
#include "server/grants.hpp"
#include "server/replay_window.hpp"

using namespace wavekey;
using namespace wavekey::server;
using protocol::Bytes;
using protocol::WireError;

namespace {

Bytes master_secret(std::uint64_t seed) {
  crypto::Drbg drbg(seed);
  Bytes master(32);
  drbg.random_bytes(master);
  return master;
}

crypto::Digest256 seal_key(std::uint64_t seed) {
  crypto::Drbg drbg(seed);
  crypto::Digest256 key{};
  drbg.random_bytes(key);
  return key;
}

}  // namespace

// --- KdfTree ----------------------------------------------------------------

TEST(KdfTreeTest, DerivationIsDeterministic) {
  const Bytes master = master_secret(11);
  crypto::KdfTree a(master), b(master);
  EXPECT_EQ(a.tag_key(1, 42), b.tag_key(1, 42));
  EXPECT_EQ(a.purpose_key(1, 42, crypto::KeyPurpose::kGrantMac),
            b.purpose_key(1, 42, crypto::KeyPurpose::kGrantMac));
}

TEST(KdfTreeTest, EveryLevelAndPurposeKeysApart) {
  crypto::KdfTree tree(master_secret(12));
  // Distinct tenants, tags, and purposes all land on distinct keys.
  EXPECT_NE(tree.tenant_key(1), tree.tenant_key(2));
  EXPECT_NE(tree.tag_key(1, 7), tree.tag_key(2, 7));
  EXPECT_NE(tree.tag_key(1, 7), tree.tag_key(1, 8));
  const auto mac = tree.purpose_key(1, 7, crypto::KeyPurpose::kGrantMac);
  const auto hmac = tree.purpose_key(1, 7, crypto::KeyPurpose::kSessionHmac);
  const auto seal = tree.purpose_key(1, 7, crypto::KeyPurpose::kAuditSeal);
  EXPECT_NE(mac, hmac);
  EXPECT_NE(mac, seal);
  EXPECT_NE(hmac, seal);
  // No level collapses into another: a tag key is not its tenant key.
  EXPECT_NE(tree.tag_key(1, 7), tree.tenant_key(1));
}

TEST(KdfTreeTest, MasterRotationChangesEveryKeyAndIsOneWay) {
  const Bytes master = master_secret(13);
  crypto::KdfTree tree(master);
  const auto before = tree.purpose_key(3, 9, crypto::KeyPurpose::kGrantMac);
  tree.rotate_master();
  EXPECT_EQ(tree.master_epoch(), 1u);
  EXPECT_NE(tree.purpose_key(3, 9, crypto::KeyPurpose::kGrantMac), before);
  // Same master constructed at the later epoch label differs from the
  // rotated tree: rotation chains the master itself, not just the label.
  crypto::KdfTree relabeled(master, 1);
  EXPECT_NE(relabeled.purpose_key(3, 9, crypto::KeyPurpose::kGrantMac),
            tree.purpose_key(3, 9, crypto::KeyPurpose::kGrantMac));
}

TEST(KdfTreeTest, PurposeLabelsAreStable) {
  EXPECT_STREQ(key_purpose_label(crypto::KeyPurpose::kGrantMac), "grant_mac");
  EXPECT_STREQ(key_purpose_label(crypto::KeyPurpose::kSessionHmac), "session_hmac");
  EXPECT_STREQ(key_purpose_label(crypto::KeyPurpose::kAuditSeal), "audit_seal");
}

TEST(KdfTreeTest, RotatingOneTagLineageLeavesSiblingsByteIdentical) {
  // The diversification claim the tree exists for: advancing tag 100's
  // lineage must not move a single byte of tag 101's keys — or of the same
  // tag under another tenant.
  const Bytes master = master_secret(14);
  GrantIssuer issuer(master);
  const ProvisionedTag sibling_before = issuer.provision(1, 101, 0xF);
  const ProvisionedTag other_tenant_before = issuer.provision(2, 100, 0xF);
  const ProvisionedTag rotated_before = issuer.provision(1, 100, 0xF);

  ASSERT_EQ(issuer.rotate_tag(1, 100), std::optional<std::uint32_t>(1));

  const ProvisionedTag sibling_after = issuer.provision(1, 101, 0xF);
  const ProvisionedTag other_tenant_after = issuer.provision(2, 100, 0xF);
  const ProvisionedTag rotated_after = issuer.provision(1, 100, 0xF);

  EXPECT_EQ(sibling_before.grant_mac_key, sibling_after.grant_mac_key);
  EXPECT_EQ(sibling_before.key_epoch, sibling_after.key_epoch);
  EXPECT_EQ(other_tenant_before.grant_mac_key, other_tenant_after.grant_mac_key);
  EXPECT_NE(rotated_before.grant_mac_key, rotated_after.grant_mac_key);
  EXPECT_EQ(rotated_after.key_epoch, 1u);

  // And the sibling's HMACs stay byte-identical end-to-end: a token minted
  // for the sibling before the rotation still verifies after it.
  OfflineVerifier verifier(5);
  verifier.provision(sibling_after);
  const auto token = issuer.issue(1, 101, 5, 0x1, 60.0, 0.0);
  ASSERT_TRUE(token.has_value());
  EXPECT_EQ(verifier.verify(token->serialize(), 1.0), AccessStatus::kGranted);
}

// --- counter_advance edges ---------------------------------------------------

TEST(CounterAdvanceTest, EdgeCases) {
  EXPECT_TRUE(counter_advance(0, 1));
  EXPECT_FALSE(counter_advance(0, 0));  // 0 is the "nothing seen" floor
  EXPECT_FALSE(counter_advance(1, 1));
  EXPECT_FALSE(counter_advance(2, 1));
  EXPECT_TRUE(counter_advance(UINT64_MAX - 1, UINT64_MAX));
  EXPECT_FALSE(counter_advance(UINT64_MAX, 0));  // no wraparound, ever
  EXPECT_FALSE(counter_advance(UINT64_MAX, UINT64_MAX));  // stream exhausted
}

TEST(CounterAdvanceTest, WindowWidthJumpsStillAdvance) {
  // The predicate is width-agnostic: jumps of exactly the replay window
  // width (and far past it) advance, and ReplayWindow agrees.
  const std::uint64_t width = 128;
  EXPECT_TRUE(counter_advance(10, 10 + width));
  EXPECT_TRUE(counter_advance(10, 10 + width * 1000));
  ReplayWindow window(width);
  EXPECT_TRUE(window.check_and_update(10));
  EXPECT_TRUE(window.check_and_update(10 + width));
  EXPECT_EQ(window.max_seen(), 10 + width);
  // The old max fell exactly off the window edge.
  EXPECT_FALSE(window.check_and_update(10));
}

// --- GrantToken wire ---------------------------------------------------------

namespace {

GrantToken sample_token(const crypto::Digest256& key) {
  return make_grant_token(/*tenant=*/3, /*tag=*/77, /*actuator=*/5, /*counter=*/9,
                          /*scope=*/0x3, /*epoch=*/2, /*expires_us=*/60'000'000, key);
}

}  // namespace

TEST(GrantTokenTest, RoundTripPreservesEveryField) {
  const crypto::Digest256 key = seal_key(21);
  const GrantToken token = sample_token(key);
  const GrantToken back = GrantToken::parse(token.serialize());
  EXPECT_EQ(back.tenant_id, 3u);
  EXPECT_EQ(back.tag_uid, 77u);
  EXPECT_EQ(back.actuator_id, 5u);
  EXPECT_EQ(back.counter, 9u);
  EXPECT_EQ(back.scope, 0x3u);
  EXPECT_EQ(back.key_epoch, 2u);
  EXPECT_EQ(back.expires_us, 60'000'000u);
  EXPECT_EQ(back.mac, token.mac);
  EXPECT_TRUE(verify_grant_token_mac(back, key));
}

TEST(GrantTokenTest, ParseRejectsFramingViolations) {
  const Bytes wire = sample_token(seal_key(22)).serialize();
  Bytes wrong_tag = wire;
  wrong_tag[0] = static_cast<std::uint8_t>(protocol::MessageType::kAccessRequest);
  EXPECT_THROW(GrantToken::parse(wrong_tag), WireError);
  for (std::size_t keep = 0; keep < wire.size(); ++keep)
    EXPECT_THROW(GrantToken::parse(std::span(wire.data(), keep)), WireError) << keep;
  Bytes trailing = wire;
  trailing.push_back(0);
  EXPECT_THROW(GrantToken::parse(trailing), WireError);
}

TEST(GrantTokenTest, MacBindsEveryField) {
  const crypto::Digest256 key = seal_key(23);
  const GrantToken token = sample_token(key);
  ASSERT_TRUE(verify_grant_token_mac(token, key));
  GrantToken t = token;
  t.tenant_id ^= 1;
  EXPECT_FALSE(verify_grant_token_mac(t, key));
  t = token;
  t.tag_uid ^= 1;
  EXPECT_FALSE(verify_grant_token_mac(t, key));
  t = token;
  t.actuator_id ^= 1;
  EXPECT_FALSE(verify_grant_token_mac(t, key));
  t = token;
  t.counter ^= 1;
  EXPECT_FALSE(verify_grant_token_mac(t, key));
  t = token;
  t.scope ^= 1;
  EXPECT_FALSE(verify_grant_token_mac(t, key));
  t = token;
  t.key_epoch ^= 1;
  EXPECT_FALSE(verify_grant_token_mac(t, key));
  t = token;
  t.expires_us ^= 1;
  EXPECT_FALSE(verify_grant_token_mac(t, key));
  EXPECT_FALSE(verify_grant_token_mac(token, seal_key(24)));  // wrong key
}

// --- mutation fuzz: typed errors only, never a grant -------------------------

namespace {

Bytes mutate_wire(const Bytes& base, Rng& rng) {
  Bytes out = base;
  switch (rng.uniform_u64(4)) {
    case 0:  // truncate
      out.resize(static_cast<std::size_t>(rng.uniform_u64(base.size() + 1)));
      break;
    case 1: {  // flip 1..8 bits
      if (out.empty()) break;
      const std::size_t flips = 1 + rng.uniform_u64(8);
      for (std::size_t i = 0; i < flips; ++i) {
        const std::size_t bit = rng.uniform_u64(out.size() * 8);
        out[bit / 8] ^= static_cast<std::uint8_t>(1u << (bit % 8));
      }
      break;
    }
    case 2:  // fully random buffer
      out.resize(static_cast<std::size_t>(rng.uniform_u64(300)));
      rng.fill_bytes(out);
      break;
    default:  // append junk
      for (std::size_t i = 0, n = 1 + rng.uniform_u64(32); i < n; ++i)
        out.push_back(static_cast<std::uint8_t>(rng.uniform_u64(256)));
      break;
  }
  return out;
}

}  // namespace

TEST(GrantFuzz, ParseNeverCrashesAndVerifierNeverGrantsAMutation) {
  // End-to-end fuzz of the token wire: every one of 1000 mutations either
  // fails to parse (WireError, typed) or reaches the verifier and comes
  // back with a typed non-granted status — the MAC binds all content, so
  // the only grantable byte string is the original.
  GrantIssuer issuer(master_secret(31));
  OfflineVerifier verifier(5);
  verifier.provision(issuer.provision(1, 42, 0xF));
  const auto token = issuer.issue(1, 42, 5, 0x1, 3600.0, 0.0);
  ASSERT_TRUE(token.has_value());
  const Bytes base = token->serialize();

  Rng rng(9001);
  std::uint64_t verified = 0;
  for (int i = 0; i < 1000; ++i) {
    const Bytes mutated = mutate_wire(base, rng);
    if (mutated == base) continue;  // identical bytes are legitimately grantable
    try {
      (void)GrantToken::parse(mutated);
    } catch (const WireError&) {
    }
    const AccessStatus status = verifier.verify(mutated, 0.0);
    ++verified;
    EXPECT_LT(static_cast<std::size_t>(status), kAccessStatusCount);
    EXPECT_NE(status, AccessStatus::kGranted) << "mutation " << i << " was granted";
  }
  EXPECT_GT(verified, 0u);
  // The genuine token still grants afterwards: no mutation burned its
  // counter (MAC is checked before any counter state moves).
  EXPECT_EQ(verifier.verify(base, 0.0), AccessStatus::kGranted);
}

// --- OfflineVerifier ---------------------------------------------------------

namespace {

struct OfflineRig {
  GrantIssuer issuer;
  OfflineVerifier verifier;

  OfflineRig() : issuer(master_secret(41)), verifier(/*actuator_id=*/5) {
    verifier.provision(issuer.provision(1, 42, /*allowed_scopes=*/0x3));
  }

  Bytes token(std::uint32_t scope = 0x1, double ttl_s = 3600.0, double now_s = 0.0) {
    const auto t = issuer.issue(1, 42, 5, scope, ttl_s, now_s);
    EXPECT_TRUE(t.has_value());
    return t->serialize();
  }
};

}  // namespace

TEST(OfflineVerifierTest, EveryRejectionModeIsDistinct) {
  OfflineRig rig;

  // Garbage -> kMalformed.
  EXPECT_EQ(rig.verifier.verify(Bytes{10, 1, 2, 3}, 0.0), AccessStatus::kMalformed);

  // Token for another actuator -> kWrongScope.
  const auto other_actuator = rig.issuer.issue(1, 42, 6, 0x1, 3600.0, 0.0);
  ASSERT_TRUE(other_actuator.has_value());
  EXPECT_EQ(rig.verifier.verify(other_actuator->serialize(), 0.0), AccessStatus::kWrongScope);

  // Unknown tag -> kUnknownSession.
  const auto unknown = rig.issuer.issue(1, 43, 5, 0x1, 3600.0, 0.0);
  ASSERT_TRUE(unknown.has_value());
  EXPECT_EQ(rig.verifier.verify(unknown->serialize(), 0.0), AccessStatus::kUnknownSession);

  // Stale key epoch (issuer rotated, verifier not reprovisioned) -> kStaleEpoch.
  ASSERT_TRUE(rig.issuer.rotate_tag(1, 42).has_value());
  const Bytes stale = rig.token();
  EXPECT_EQ(rig.verifier.verify(stale, 0.0), AccessStatus::kStaleEpoch);
  rig.verifier.provision(rig.issuer.provision(1, 42, 0x3));  // heal the epoch

  // Flipped MAC byte -> kBadMac.
  Bytes forged = rig.token();
  forged[forged.size() - 1] ^= 0x80;
  EXPECT_EQ(rig.verifier.verify(forged, 0.0), AccessStatus::kBadMac);

  // Expired on the virtual clock -> kExpired.
  const Bytes shortlived = rig.token(0x1, /*ttl_s=*/1.0, /*now_s=*/0.0);
  EXPECT_EQ(rig.verifier.verify(shortlived, /*now_s=*/2.0), AccessStatus::kExpired);

  // Scope outside the provisioned mask -> kWrongScope.
  const Bytes overbroad = rig.token(/*scope=*/0x4);
  EXPECT_EQ(rig.verifier.verify(overbroad, 0.0), AccessStatus::kWrongScope);

  // The genuine path still works, exactly once -> then kReplay.
  const Bytes good = rig.token();
  EXPECT_EQ(rig.verifier.verify(good, 0.0), AccessStatus::kGranted);
  EXPECT_EQ(rig.verifier.verify(good, 0.0), AccessStatus::kReplay);

  // An earlier-counter token held back by an attacker -> kCounterRollback.
  const Bytes early = rig.token();
  const Bytes later = rig.token();
  EXPECT_EQ(rig.verifier.verify(later, 0.0), AccessStatus::kGranted);
  EXPECT_EQ(rig.verifier.verify(early, 0.0), AccessStatus::kCounterRollback);

  // Revocation propagated to the verifier -> kRevoked.
  rig.verifier.revoke(1, 42);
  EXPECT_EQ(rig.verifier.verify(rig.token(), 0.0), AccessStatus::kRevoked);

  const OfflineVerifier::Stats stats = rig.verifier.stats();
  EXPECT_EQ(stats.granted, 2u);
  EXPECT_EQ(stats.by_status[static_cast<std::size_t>(AccessStatus::kCounterRollback)], 1u);
  EXPECT_EQ(stats.by_status[static_cast<std::size_t>(AccessStatus::kWrongScope)], 2u);
  EXPECT_EQ(stats.attempts, 12u);
}

TEST(OfflineVerifierTest, ForgedTokensCannotBurnCounters) {
  // An attacker who can guess future counters must not be able to make the
  // verifier record them: the MAC check precedes every counter read/write.
  OfflineRig rig;
  GrantToken forged = GrantToken::parse(rig.token());  // counter 1, real MAC
  forged.counter = 50;  // claim a future counter; MAC no longer binds
  EXPECT_EQ(rig.verifier.verify(forged.serialize(), 0.0), AccessStatus::kBadMac);
  // Counters 1..50 are all still mintable and grantable.
  for (int i = 0; i < 50; ++i)
    EXPECT_EQ(rig.verifier.verify(rig.token(), 0.0), AccessStatus::kGranted) << i;
}

TEST(OfflineVerifierTest, CounterHandoffSurvivesFailover) {
  // Replacement actuator controller: import the old verifier's high-waters
  // and the accepted prefix stays rejected while the stream continues.
  OfflineRig rig;
  std::vector<Bytes> accepted;
  for (int i = 0; i < 5; ++i) {
    accepted.push_back(rig.token());
    ASSERT_EQ(rig.verifier.verify(accepted.back(), 0.0), AccessStatus::kGranted);
  }

  OfflineVerifier replacement(/*actuator_id=*/5);
  replacement.provision(rig.issuer.provision(1, 42, 0x3));
  replacement.import_counters(rig.verifier.export_counters());

  // Every previously accepted token is rejected by the replacement.
  EXPECT_EQ(replacement.verify(accepted.back(), 0.0), AccessStatus::kReplay);
  for (int i = 0; i < 4; ++i)
    EXPECT_EQ(replacement.verify(accepted[i], 0.0), AccessStatus::kCounterRollback) << i;
  // And the stream continues: the next minted counter is fresh.
  EXPECT_EQ(replacement.verify(rig.token(), 0.0), AccessStatus::kGranted);
}

TEST(GrantIssuerTest, StateHandoffContinuesCounterStreamWithoutReuse) {
  // Issuer failover: the replacement imports lineages + counter streams and
  // keeps minting tokens the SAME verifier accepts — same keys, fresh
  // counters, zero reuse.
  GrantIssuer primary(master_secret(51));
  OfflineVerifier verifier(7);
  verifier.provision(primary.provision(9, 1000, 0x1));
  for (int i = 0; i < 3; ++i) {
    const auto t = primary.issue(9, 1000, 7, 0x1, 3600.0, 0.0);
    ASSERT_TRUE(t.has_value());
    ASSERT_EQ(verifier.verify(t->serialize(), 0.0), AccessStatus::kGranted);
  }

  GrantIssuer replacement(master_secret(51));
  replacement.import_state(primary.export_state());
  for (int i = 0; i < 3; ++i) {
    const auto t = replacement.issue(9, 1000, 7, 0x1, 3600.0, 0.0);
    ASSERT_TRUE(t.has_value());
    EXPECT_GT(t->counter, 3u);  // continues past the exported stream
    EXPECT_EQ(verifier.verify(t->serialize(), 0.0), AccessStatus::kGranted) << i;
  }
}

TEST(GrantIssuerTest, ImportPreservesRotatedLineagesAndRevocations) {
  GrantIssuer primary(master_secret(52));
  (void)primary.provision(1, 10, 0x1);
  ASSERT_TRUE(primary.rotate_tag(1, 10).has_value());
  ASSERT_TRUE(primary.revoke_tag(1, 11));

  GrantIssuer replacement(master_secret(52));
  replacement.import_state(primary.export_state());
  EXPECT_EQ(replacement.provision(1, 10, 0x1).key_epoch, 1u);
  EXPECT_EQ(replacement.provision(1, 10, 0x1).grant_mac_key,
            primary.provision(1, 10, 0x1).grant_mac_key);
  EXPECT_FALSE(replacement.issue(1, 11, 5, 0x1, 60.0, 0.0).has_value());
  const auto revoked = replacement.revoked_tags();
  ASSERT_EQ(revoked.size(), 1u);
  EXPECT_EQ(revoked[0], (std::pair<std::uint64_t, std::uint64_t>{1, 11}));
}

TEST(GrantIssuerTest, RevokedLineageRefusesIssuanceAndAudits) {
  AuditLog audit(AuditLog::Config{1, seal_key(61)});
  GrantIssuer issuer(master_secret(53), &audit);
  ASSERT_TRUE(issuer.issue(1, 5, 2, 0x1, 60.0, 0.0).has_value());
  ASSERT_TRUE(issuer.revoke_tag(1, 5));
  EXPECT_FALSE(issuer.issue(1, 5, 2, 0x1, 60.0, 0.0).has_value());
  const GrantIssuer::Stats stats = issuer.stats();
  EXPECT_EQ(stats.issued, 1u);
  EXPECT_EQ(stats.refused, 1u);
  EXPECT_EQ(stats.revocations, 1u);
  // issue + revoke + refused issue all chained.
  EXPECT_EQ(audit.size(0), 3u);
  EXPECT_TRUE(audit.verify_head(0));
  EXPECT_EQ(audit.verify_range(0, 0, audit.size(0)), std::nullopt);
}

// --- AuditLog ----------------------------------------------------------------

TEST(AuditLogTest, AppendHeadAndIncrementalVerify) {
  AuditLog log(AuditLog::Config{1, seal_key(71)});
  EXPECT_TRUE(log.verify_head(0));  // empty chain is trivially intact
  AuditHead last{};
  for (std::uint64_t i = 0; i < 100; ++i) {
    AuditRecord record;
    record.kind = AuditKind::kVerify;
    record.tenant_id = 1;
    record.counter = i;
    const AuditHead head = log.append(record);
    EXPECT_EQ(head.count, i + 1);
    EXPECT_NE(head.hash, last.hash);  // every append moves the head
    EXPECT_TRUE(log.verify_head(0));  // O(1) check after every append
    last = head;
  }
  EXPECT_EQ(log.head(0).count, 100u);
  EXPECT_EQ(log.head(0).hash, last.hash);
  EXPECT_EQ(log.verify_range(0, 0, 100), std::nullopt);
}

TEST(AuditLogTest, KeyedGenesisSeparatesChains) {
  // Same records, different seal keys: no head ever collides — an attacker
  // without the seal key cannot re-root a forged chain.
  AuditLog a(AuditLog::Config{1, seal_key(72)});
  AuditLog b(AuditLog::Config{1, seal_key(73)});
  EXPECT_NE(a.head(0).hash, b.head(0).hash);
  AuditRecord record;
  record.kind = AuditKind::kAccess;
  EXPECT_NE(a.append(record).hash, b.append(record).hash);
}

TEST(AuditLogTest, TamperSweepPinpointsExactIndex) {
  // Flip EVERY byte of EVERY record in turn: verify_range must name the
  // exact corrupted index each time, and restoring the byte heals the chain.
  AuditLog log(AuditLog::Config{1, seal_key(74)});
  const std::uint64_t n = 8;
  for (std::uint64_t i = 0; i < n; ++i) {
    AuditRecord record;
    record.kind = AuditKind::kIssue;
    record.tenant_id = 1;
    record.tag_uid = 100 + i;
    record.counter = i;
    log.append(record);
  }
  for (std::uint64_t i = 0; i < n; ++i) {
    const std::size_t record_len = log.record_bytes(0, i).size();
    for (std::size_t offset = 0; offset < record_len; ++offset) {
      log.corrupt_record_for_test(0, i, offset, 0x01);
      EXPECT_EQ(log.verify_range(0, 0, n), std::optional<std::uint64_t>(i))
          << "record " << i << " byte " << offset;
      log.corrupt_record_for_test(0, i, offset, 0x01);  // restore
    }
  }
  EXPECT_EQ(log.verify_range(0, 0, n), std::nullopt);
}

TEST(AuditLogTest, VerifyRangeScopesToTheRequestedWindow) {
  AuditLog log(AuditLog::Config{1, seal_key(75)});
  for (std::uint64_t i = 0; i < 10; ++i) {
    AuditRecord record;
    record.counter = i;
    log.append(record);
  }
  log.corrupt_record_for_test(0, 4, 0, 0xFF);
  EXPECT_EQ(log.verify_range(0, 0, 10), std::optional<std::uint64_t>(4));
  EXPECT_EQ(log.verify_range(0, 5, 10), std::nullopt);  // suffix links intact
  EXPECT_EQ(log.verify_range(0, 0, 4), std::nullopt);   // prefix untouched
  EXPECT_EQ(log.verify_range(0, 0, 10'000), std::optional<std::uint64_t>(4));  // clamped
}

TEST(AuditLogTest, ShardsRouteByTenantAndStayIndependent) {
  AuditLog log(AuditLog::Config{4, seal_key(76)});
  for (std::uint64_t tenant = 0; tenant < 8; ++tenant) {
    AuditRecord record;
    record.tenant_id = tenant;
    log.append(record);
  }
  for (std::size_t s = 0; s < 4; ++s) {
    EXPECT_EQ(log.size(s), 2u);
    EXPECT_TRUE(log.verify_head(s));
  }
  EXPECT_EQ(log.total_size(), 8u);
  log.corrupt_record_for_test(1, 0, 0, 0x10);
  EXPECT_NE(log.verify_range(1, 0, 2), std::nullopt);
  EXPECT_EQ(log.verify_range(0, 0, 2), std::nullopt);  // siblings unaffected
}

// --- cluster audit cross-link ------------------------------------------------

namespace {

SessionKey cluster_key(crypto::Drbg& rng) {
  SessionKey key{};
  rng.random_bytes(key);
  return key;
}

Bytes cluster_request_wire(std::uint64_t sid, std::uint64_t counter, const SessionKey& key) {
  std::array<std::uint8_t, kNonceBytes> nonce{};
  for (std::size_t i = 0; i < nonce.size(); ++i)
    nonce[i] = static_cast<std::uint8_t>(counter >> (8 * i));
  return make_access_request(sid, 0, counter, nonce, {0xD0}, key).serialize();
}

}  // namespace

TEST(ClusterAuditTest, ResponsesCrossLinkTheServingNodesChainHead) {
  ClusterConfig config;
  config.nodes = 1;
  config.partitions = 8;
  config.audit_seal = seal_key(81);
  VaultCluster cluster(config);
  crypto::Drbg drbg(82);
  const SessionKey key = cluster_key(drbg);
  ASSERT_TRUE(cluster.install(1, key));

  AuditHead last{};
  for (std::uint64_t counter = 1; counter <= 10; ++counter) {
    ClusterRequest req;
    req.request_id = counter;
    req.tenant_id = 1;
    req.inner = cluster_request_wire(1, counter, key);
    const ClusterResponse resp = cluster.execute(req);
    ASSERT_EQ(resp.status, AccessStatus::kGranted);
    // The stamp is the node's chain head right after this decision landed.
    EXPECT_EQ(resp.audit_count, counter);
    const AuditHead head = cluster.audit_log(0)->head(0);
    if (counter == 10) {
      EXPECT_EQ(resp.audit_count, head.count);
      EXPECT_EQ(resp.audit_hash, head.hash);
    }
    EXPECT_NE(resp.audit_hash, last.hash);
    last = AuditHead{resp.audit_count, resp.audit_hash};
  }
  EXPECT_TRUE(cluster.audit_log(0)->verify_head(0));
  EXPECT_EQ(cluster.audit_log(0)->verify_range(0, 0, 10), std::nullopt);

  // A dedup retry returns the ORIGINAL stamp and appends nothing.
  ClusterRequest retry;
  retry.request_id = 10;
  retry.tenant_id = 1;
  retry.attempt = 1;
  retry.inner = cluster_request_wire(1, 10, key);
  const ClusterResponse replayed = cluster.execute(retry);
  EXPECT_EQ(replayed.status, AccessStatus::kGranted);
  EXPECT_EQ(replayed.audit_count, 10u);
  EXPECT_EQ(cluster.audit_log(0)->size(0), 10u);

  // Round-trip through the wire keeps the stamp.
  const ClusterResponse parsed = ClusterResponse::parse(replayed.serialize());
  EXPECT_EQ(parsed.audit_count, replayed.audit_count);
  EXPECT_EQ(parsed.audit_hash, replayed.audit_hash);
}

TEST(ClusterAuditTest, CrashStartsAFreshChainMakingTruncationDetectable) {
  ClusterConfig config;
  config.nodes = 2;
  config.partitions = 8;
  config.audit_seal = seal_key(83);
  VaultCluster cluster(config);
  crypto::Drbg drbg(84);
  const SessionKey key = cluster_key(drbg);
  ASSERT_TRUE(cluster.install(1, key));
  const NodeId owner = cluster.owners_of(1).primary;

  ClusterRequest req;
  req.request_id = 1;
  req.tenant_id = 1;
  req.inner = cluster_request_wire(1, 1, key);
  const ClusterResponse before = cluster.execute(req);
  ASSERT_EQ(before.status, AccessStatus::kGranted);
  ASSERT_EQ(before.audit_count, 1u);

  cluster.crash(owner);
  // The restarted node's chain restarts at zero with the keyed genesis: it
  // can never reproduce the cross-linked head `before` at count 1 without
  // replaying the identical record stream — truncation is detectable.
  const AuditHead fresh = cluster.audit_log(owner)->head(0);
  EXPECT_EQ(fresh.count, 0u);
  EXPECT_NE(fresh.hash, before.audit_hash);
}

// --- gateway disconnected-operation fallback ---------------------------------

namespace {

/// Collects gateway callbacks and lets the test wait for all of them.
struct ResultSink {
  std::mutex mu;
  std::condition_variable cv;
  std::vector<GatewayResult> results;
  std::size_t expected = 0;

  ReaderGateway::Callback callback() {
    return [this](const GatewayResult& r) {
      std::lock_guard<std::mutex> lock(mu);
      results.push_back(r);
      cv.notify_all();
    };
  }

  void wait(std::size_t n) {
    std::unique_lock<std::mutex> lock(mu);
    cv.wait(lock, [&] { return results.size() >= n; });
  }
};

}  // namespace

TEST(GatewayOfflineTest, BlackholedClusterFallsBackToOfflineVerifier) {
  // Total partition: every WAN frame is lost in both directions. Grant
  // tokens still resolve through the actuator-side verifier; a replayed
  // token is rejected with the verifier's typed status; a non-token request
  // stays kRetryExhausted (no offline fallback for vault-keyed requests).
  ClusterConfig cluster_config;
  cluster_config.nodes = 1;
  VaultCluster cluster(cluster_config);

  GrantIssuer issuer(master_secret(91));
  OfflineVerifier verifier(/*actuator_id=*/5);
  verifier.provision(issuer.provision(1, 42, 0x1));
  std::atomic<double> now{0.0};

  GatewayConfig config;
  config.workers = 1;  // preserve submission order for the counter stream
  config.max_attempts = 2;
  config.attempt_timeout_s = 0.001;
  config.backoff_base_s = 0.0;
  config.backoff_max_s = 0.0;
  config.channel.mobile_to_server.loss = 1.0;
  config.channel.server_to_mobile.loss = 1.0;
  config.offline_verifier = &verifier;
  config.offline_now = [&now] { return now.load(); };
  ReaderGateway gateway(cluster, config);

  const auto token = issuer.issue(1, 42, 5, 0x1, 3600.0, 0.0);
  ASSERT_TRUE(token.has_value());
  const Bytes token_wire = token->serialize();
  const Bytes vault_wire = cluster_request_wire(7, 1, SessionKey{});

  ResultSink sink;
  ASSERT_TRUE(gateway.submit(1, token_wire, sink.callback()).has_value());
  sink.wait(1);
  ASSERT_TRUE(gateway.submit(1, token_wire, sink.callback()).has_value());  // replay
  sink.wait(2);
  ASSERT_TRUE(gateway.submit(1, vault_wire, sink.callback()).has_value());
  sink.wait(3);
  gateway.finish();

  ASSERT_EQ(sink.results.size(), 3u);
  EXPECT_EQ(sink.results[0].status, AccessStatus::kGranted);
  EXPECT_TRUE(sink.results[0].offline);
  EXPECT_EQ(sink.results[1].status, AccessStatus::kReplay);
  EXPECT_TRUE(sink.results[1].offline);
  EXPECT_EQ(sink.results[2].status, AccessStatus::kRetryExhausted);
  EXPECT_FALSE(sink.results[2].offline);

  const GatewayStats stats = gateway.stats();
  EXPECT_EQ(stats.offline_verified, 2u);
  EXPECT_EQ(stats.offline_granted, 1u);
  EXPECT_EQ(stats.resolved, 3u);
}

TEST(GatewayOfflineTest, OnlineAnswersWinOverTheFallback) {
  // A healthy channel: the cluster answers, and the offline verifier is
  // never consulted even though it is configured.
  ClusterConfig cluster_config;
  cluster_config.nodes = 1;
  VaultCluster cluster(cluster_config);
  crypto::Drbg drbg(92);
  const SessionKey key = cluster_key(drbg);
  ASSERT_TRUE(cluster.install(3, key));

  GrantIssuer issuer(master_secret(93));
  OfflineVerifier verifier(5);
  verifier.provision(issuer.provision(1, 42, 0x1));

  GatewayConfig config;
  config.workers = 1;
  config.offline_verifier = &verifier;
  config.offline_now = [] { return 0.0; };
  ReaderGateway gateway(cluster, config);

  ResultSink sink;
  ASSERT_TRUE(gateway.submit(1, cluster_request_wire(3, 1, key), sink.callback()).has_value());
  sink.wait(1);
  gateway.finish();

  EXPECT_EQ(sink.results[0].status, AccessStatus::kGranted);
  EXPECT_FALSE(sink.results[0].offline);
  EXPECT_EQ(verifier.stats().attempts, 0u);
}
