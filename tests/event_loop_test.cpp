// Tests for the coroutine runtime: Task<T> semantics, the EventLoop
// executor, the hierarchical timer wheel behind sleep_for, the awaitable
// AsyncQueue, and the BufferPool lease/return contract. These suites also
// run under the TSan CI leg — the spawn storms and cross-thread handoffs
// here are the data-race coverage for the async serving core.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <mutex>
#include <thread>
#include <vector>

#include "runtime/buffer_pool.hpp"
#include "runtime/event_loop.hpp"
#include "runtime/task.hpp"

namespace {

using wavekey::runtime::AsyncQueue;
using wavekey::runtime::BufferPool;
using wavekey::runtime::EventLoop;
using wavekey::runtime::PooledBuffer;
using wavekey::runtime::Task;
using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

// --- Task<T> ----------------------------------------------------------------

Task<int> forty_two() { co_return 42; }

Task<int> add_via_children(int a, int b) {
  // Nested awaits: symmetric transfer through two child frames.
  const int x = co_await forty_two();
  co_return a + b + x - 42;
}

Task<void> throws_logic_error() {
  throw std::logic_error("boom");
  co_return;  // unreachable; marks the function as a coroutine
}

Task<void> observe(Task<int> child, int* out) { *out = co_await std::move(child); }

Task<void> catch_child(int* caught) {
  try {
    co_await throws_logic_error();
  } catch (const std::logic_error&) {
    *caught = 1;
  }
}

TEST(TaskCoroutine, LazyStartAndValueDelivery) {
  EventLoop loop(1);
  int out = 0;
  ASSERT_TRUE(loop.spawn(observe(forty_two(), &out)));
  loop.close();
  loop.drain();
  EXPECT_EQ(out, 42);
}

TEST(TaskCoroutine, NestedAwaitsPropagateValues) {
  EventLoop loop(1);
  int out = 0;
  ASSERT_TRUE(loop.spawn(observe(add_via_children(10, 20), &out)));
  loop.close();
  loop.drain();
  EXPECT_EQ(out, 30);
}

TEST(TaskCoroutine, ExceptionsRethrowInAwaiter) {
  EventLoop loop(1);
  int caught = 0;
  ASSERT_TRUE(loop.spawn(catch_child(&caught)));
  loop.close();
  loop.drain();
  EXPECT_EQ(caught, 1);
}

TEST(TaskCoroutine, UnawaitedTaskIsDestroyedCleanly) {
  // A lazy task that is never started must free its frame on destruction
  // (verified by ASan when that leg runs; here it must simply not crash).
  Task<int> t = forty_two();
  EXPECT_TRUE(t.valid());
}

// --- EventLoop --------------------------------------------------------------

Task<void> bump(std::atomic<int>* n) {
  n->fetch_add(1, std::memory_order_relaxed);
  co_return;
}

TEST(EventLoop, SpawnStormCompletesEveryTask) {
  constexpr int kTasks = 10'000;
  std::atomic<int> ran{0};
  EventLoop loop(4);
  // Spawn from several plain threads to exercise the cross-thread post path.
  std::vector<std::thread> producers;
  for (int p = 0; p < 4; ++p) {
    producers.emplace_back([&] {
      for (int i = 0; i < kTasks / 4; ++i) ASSERT_TRUE(loop.spawn(bump(&ran)));
    });
  }
  for (auto& t : producers) t.join();
  loop.close();
  loop.drain();
  EXPECT_EQ(ran.load(), kTasks);
  const auto stats = loop.stats();
  EXPECT_EQ(stats.spawned, static_cast<std::uint64_t>(kTasks));
  EXPECT_EQ(stats.completed, static_cast<std::uint64_t>(kTasks));
  EXPECT_EQ(stats.active, 0u);
}

TEST(EventLoop, ClosedLoopRefusesSpawns) {
  EventLoop loop(1);
  loop.close();
  std::atomic<int> ran{0};
  EXPECT_FALSE(loop.spawn(bump(&ran)));
  loop.drain();
  EXPECT_EQ(ran.load(), 0);
  EXPECT_EQ(loop.stats().spawned, 0u);
}

Task<void> sleeper(EventLoop* loop, double seconds, std::atomic<int>* done) {
  co_await loop->sleep_for(seconds);
  done->fetch_add(1, std::memory_order_relaxed);
}

TEST(EventLoop, SleepForWaitsApproximatelyTheRequestedTime) {
  EventLoop loop(2);
  std::atomic<int> done{0};
  const auto start = Clock::now();
  ASSERT_TRUE(loop.spawn(sleeper(&loop, 0.05, &done)));
  loop.close();
  loop.drain();
  const double elapsed = seconds_since(start);
  EXPECT_EQ(done.load(), 1);
  EXPECT_GE(elapsed, 0.05);       // never early
  EXPECT_LT(elapsed, 1.0);        // and not absurdly late (CI-safe bound)
  const auto stats = loop.stats();
  EXPECT_EQ(stats.timers_scheduled, 1u);
  EXPECT_EQ(stats.timers_fired, 1u);
}

TEST(EventLoop, NonPositiveSleepResumesInline) {
  EventLoop loop(1);
  std::atomic<int> done{0};
  ASSERT_TRUE(loop.spawn(sleeper(&loop, 0.0, &done)));
  ASSERT_TRUE(loop.spawn(sleeper(&loop, -1.0, &done)));
  loop.close();
  loop.drain();
  EXPECT_EQ(done.load(), 2);
  EXPECT_EQ(loop.stats().timers_scheduled, 0u);  // no wheel traffic at all
}

Task<void> record_order(EventLoop* loop, double seconds, int id, std::mutex* mu,
                        std::vector<int>* order) {
  co_await loop->sleep_for(seconds);
  std::lock_guard<std::mutex> lock(*mu);
  order->push_back(id);
}

TEST(EventLoop, TimersFireInDeadlineOrder) {
  // Deadlines land in different wheel levels (2 ms in L0, 20 ms and 60 ms in
  // L1) and are scheduled in reverse order; a single worker then observes
  // expiry order, proving placement + cascade ordering.
  EventLoop loop(1);
  std::mutex mu;
  std::vector<int> order;
  ASSERT_TRUE(loop.spawn(record_order(&loop, 0.060, 3, &mu, &order)));
  ASSERT_TRUE(loop.spawn(record_order(&loop, 0.020, 2, &mu, &order)));
  ASSERT_TRUE(loop.spawn(record_order(&loop, 0.002, 1, &mu, &order)));
  loop.close();
  loop.drain();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventLoop, ManyConcurrentSleepersAllFire) {
  // 2k sleepers parked at once on 2 threads: concurrency is bounded by the
  // wheel, not the worker count. Spread across wheel levels.
  constexpr int kSleepers = 2'000;
  EventLoop loop(2);
  std::atomic<int> done{0};
  for (int i = 0; i < kSleepers; ++i) {
    ASSERT_TRUE(loop.spawn(sleeper(&loop, 0.001 + 0.00005 * (i % 900), &done)));
  }
  loop.close();
  loop.drain();
  EXPECT_EQ(done.load(), kSleepers);
  EXPECT_EQ(loop.stats().timers_fired, static_cast<std::uint64_t>(kSleepers));
}

// --- AsyncQueue -------------------------------------------------------------

Task<void> drain_queue(AsyncQueue<int>* q, std::atomic<std::uint64_t>* sum,
                       std::atomic<int>* wakes) {
  while (true) {
    std::optional<int> item = co_await q->pop();
    if (!item) {
      wakes->fetch_add(1, std::memory_order_relaxed);
      co_return;
    }
    sum->fetch_add(static_cast<std::uint64_t>(*item), std::memory_order_relaxed);
  }
}

TEST(AsyncQueue, DeliversEveryItemAcrossThreads) {
  constexpr int kItems = 20'000;
  EventLoop loop(3);
  AsyncQueue<int> queue(loop, 64);
  std::atomic<std::uint64_t> sum{0};
  std::atomic<int> wakes{0};
  for (int c = 0; c < 3; ++c) ASSERT_TRUE(loop.spawn(drain_queue(&queue, &sum, &wakes)));
  std::vector<std::thread> producers;
  for (int p = 0; p < 4; ++p) {
    producers.emplace_back([&, p] {
      for (int i = p; i < kItems; i += 4) ASSERT_TRUE(queue.push(i + 1));
    });
  }
  for (auto& t : producers) t.join();
  queue.close();
  loop.close();
  loop.drain();
  const std::uint64_t expect = std::uint64_t{kItems} * (kItems + 1) / 2;
  EXPECT_EQ(sum.load(), expect);
  EXPECT_EQ(wakes.load(), 3);  // every consumer saw exactly one nullopt
}

TEST(AsyncQueue, CloseDeliversBacklogBeforeNullopt) {
  EventLoop loop(1);
  AsyncQueue<int> queue(loop, 16);
  // Fill, then close, then attach the consumer: items must drain first.
  for (int i = 0; i < 8; ++i) ASSERT_EQ(queue.try_push(i + 1), AsyncQueue<int>::PushResult::kOk);
  queue.close();
  EXPECT_EQ(queue.try_push(99), AsyncQueue<int>::PushResult::kClosed);
  std::atomic<std::uint64_t> sum{0};
  std::atomic<int> wakes{0};
  ASSERT_TRUE(loop.spawn(drain_queue(&queue, &sum, &wakes)));
  loop.close();
  loop.drain();
  EXPECT_EQ(sum.load(), 36u);  // 1..8 all delivered despite the close
  EXPECT_EQ(wakes.load(), 1);
}

TEST(AsyncQueue, TryPushReportsFullOnlyWithNoParkedConsumer) {
  EventLoop loop(1);
  AsyncQueue<int> queue(loop, 2);
  EXPECT_EQ(queue.try_push(1), AsyncQueue<int>::PushResult::kOk);
  EXPECT_EQ(queue.try_push(2), AsyncQueue<int>::PushResult::kOk);
  EXPECT_EQ(queue.try_push(3), AsyncQueue<int>::PushResult::kFull);
  EXPECT_EQ(queue.size(), 2u);
  queue.close();
  loop.close();
  loop.drain();
}

// The satellite fix this PR makes to gateway shutdown: consumers parked in
// pop() are woken by close() itself (a posted handle), not by a polling
// re-check. An empty-queue close must therefore complete in scheduling
// time — far under the 10 ms slice the old try_pop_for loop parked for.
TEST(AsyncQueue, CloseWakesParkedConsumersWithoutPolling) {
  EventLoop loop(2);
  AsyncQueue<int> queue(loop, 8);
  std::atomic<std::uint64_t> sum{0};
  std::atomic<int> wakes{0};
  for (int c = 0; c < 2; ++c) ASSERT_TRUE(loop.spawn(drain_queue(&queue, &sum, &wakes)));
  // Give the consumers time to park.
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  const auto start = Clock::now();
  queue.close();
  loop.close();
  loop.drain();
  const double shutdown_s = seconds_since(start);
  EXPECT_EQ(wakes.load(), 2);
  EXPECT_LT(shutdown_s, 0.010);  // notify-driven: no 10 ms poll slice to wait out
}

// --- BufferPool -------------------------------------------------------------

TEST(BufferPool, SteadyStateLeasesStopAllocating) {
  BufferPool pool(256);
  for (int round = 0; round < 100; ++round) {
    PooledBuffer buf = pool.lease();
    buf.bytes().resize(128);
    buf.bytes()[0] = static_cast<std::uint8_t>(round);
  }
  const auto stats = pool.stats();
  EXPECT_EQ(stats.leases, 100u);
  EXPECT_EQ(stats.returns, 100u);
  EXPECT_EQ(stats.allocations, 1u);  // one cold lease, then pure recycling
  EXPECT_EQ(stats.in_use, 0u);
  EXPECT_EQ(stats.peak_in_use, 1u);
}

TEST(BufferPool, LeasedBuffersAreEmptyButKeepCapacity) {
  BufferPool pool(16);
  std::uint8_t* grown_data = nullptr;
  {
    PooledBuffer buf = pool.lease();
    buf.bytes().resize(4096);
    grown_data = buf.bytes().data();
  }
  PooledBuffer again = pool.lease();
  EXPECT_TRUE(again.bytes().empty());
  EXPECT_GE(again.bytes().capacity(), 4096u);
  EXPECT_EQ(again.bytes().data(), grown_data);  // literally the same storage
}

TEST(BufferPool, SwappedInVectorDonatesItsCapacity) {
  // The gateway round-trips frames by moving the leased vector into the
  // message and back; whatever vector holds the lease at return time is
  // what the pool keeps.
  BufferPool pool(16);
  {
    PooledBuffer buf = pool.lease();
    std::vector<std::uint8_t> wire(1024, 0xAB);
    buf.bytes() = std::move(wire);
  }
  PooledBuffer again = pool.lease();
  EXPECT_GE(again.bytes().capacity(), 1024u);
  EXPECT_EQ(pool.stats().allocations, 1u);
}

TEST(BufferPool, ConcurrentLeaseReturnIsExact) {
  constexpr int kThreads = 8;
  constexpr int kRounds = 2'000;
  BufferPool pool(64);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kRounds; ++i) {
        PooledBuffer buf = pool.lease();
        buf.bytes().push_back(0x5A);
      }
    });
  }
  for (auto& t : threads) t.join();
  const auto stats = pool.stats();
  EXPECT_EQ(stats.leases, static_cast<std::uint64_t>(kThreads) * kRounds);
  EXPECT_EQ(stats.returns, stats.leases);
  EXPECT_EQ(stats.in_use, 0u);
  EXPECT_LE(stats.allocations, static_cast<std::uint64_t>(kThreads));
  EXPECT_LE(stats.peak_in_use, static_cast<std::uint64_t>(kThreads));
}

}  // namespace
