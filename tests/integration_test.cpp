// Cross-module property tests: protocol behaviour swept over seed-noise
// levels (TEST_P), fuzzing of the wire decoders against random and
// truncated inputs, crypto/dsp interaction invariants, and a determinism
// audit across the whole simulated stack.

#include <gtest/gtest.h>

#include "crypto/drbg.hpp"
#include "dsp/phase_unwrap.hpp"
#include "dsp/savitzky_golay.hpp"
#include "numeric/rng.hpp"
#include "numeric/stats.hpp"
#include "protocol/key_agreement.hpp"
#include "protocol/session.hpp"
#include "sim/scenario.hpp"

namespace wavekey {
namespace {

// --- protocol success boundary swept over the number of flipped seed bits ---

class SeedNoiseSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(SeedNoiseSweep, SucceedsIffWithinEtaBudget) {
  const std::size_t flips = GetParam();
  protocol::SessionConfig config;
  config.params.seed_bits = 48;
  config.params.key_bits = 256;
  config.params.eta = 0.10;  // tolerates floor(4.8) = 4 seed bits

  crypto::Drbg m_rng(flips * 11 + 1), s_rng(flips * 13 + 2), seed_rng(flips * 17 + 3);
  const BitVec seed_m = seed_rng.random_bits(48);
  BitVec seed_r = seed_m;
  // Spread the flips across the seed.
  for (std::size_t i = 0; i < flips; ++i) {
    const std::size_t pos = (i * 11) % 48;
    seed_r.set(pos, !seed_r.get(pos));
  }

  const protocol::SessionResult r =
      protocol::run_key_agreement(config, seed_m, seed_r, m_rng, s_rng);
  if (flips <= 4) {
    EXPECT_TRUE(r.success) << "flips=" << flips;
    EXPECT_EQ(r.mobile_key, r.server_key);
  } else {
    EXPECT_FALSE(r.success) << "flips=" << flips;
  }
}

INSTANTIATE_TEST_SUITE_P(FlipCounts, SeedNoiseSweep,
                         ::testing::Values(0, 1, 2, 3, 4, 5, 6, 8, 12, 20));

// --- key-length sweep: the protocol works for every cipher in Table III ---

class KeyLengthSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(KeyLengthSweep, EstablishesExactLengthKeys) {
  protocol::SessionConfig config;
  config.params.seed_bits = 48;
  config.params.key_bits = GetParam();
  config.params.eta = 0.10;
  crypto::Drbg m_rng(3), s_rng(4), seed_rng(5);
  const BitVec seed = seed_rng.random_bits(48);
  const protocol::SessionResult r =
      protocol::run_key_agreement(config, seed, seed, m_rng, s_rng);
  ASSERT_TRUE(r.success);
  EXPECT_EQ(r.mobile_key.size(), GetParam());
  EXPECT_EQ(r.mobile_key, r.server_key);
}

INSTANTIATE_TEST_SUITE_P(TableThreeLengths, KeyLengthSweep,
                         ::testing::Values(128, 168, 192, 256, 512, 2048));

// --- wire fuzzing: random garbage must never crash, only throw/fail ---

TEST(WireFuzzTest, RandomGarbageIsRejectedSafely) {
  protocol::AgreementParams params;
  params.seed_bits = 16;
  params.key_bits = 128;
  crypto::Drbg rng(6);
  Rng len_rng(7);
  int exceptions = 0;
  for (int trial = 0; trial < 300; ++trial) {
    protocol::Bytes garbage(len_rng.uniform_u64(700));
    rng.random_bytes(garbage);
    try {
      crypto::Drbg r2(trial);
      protocol::PadReceiver receiver(params, r2.random_bits(16), garbage, r2);
      // Surviving construction is fine only if the message parsed: then
      // responses must still be well-formed.
      (void)receiver.message_b();
    } catch (const protocol::WireError&) {
      ++exceptions;
    } catch (const std::invalid_argument&) {
      ++exceptions;
    }
  }
  // Nearly all random blobs must be rejected (a valid header is 5 bytes of
  // exact structure plus 16 32-byte group elements).
  EXPECT_GT(exceptions, 290);
}

TEST(WireFuzzTest, TruncationsOfValidMessagesAreRejected) {
  protocol::AgreementParams params;
  params.seed_bits = 8;
  params.key_bits = 64;
  crypto::Drbg rng(8);
  const protocol::PadSender sender(params, rng);
  const protocol::Bytes msg = sender.message_a();
  for (std::size_t len = 0; len < msg.size(); len += 7) {
    protocol::Bytes cut(msg.begin(), msg.begin() + static_cast<std::ptrdiff_t>(len));
    crypto::Drbg r2(len);
    EXPECT_THROW(protocol::PadReceiver(params, r2.random_bits(8), cut, r2),
                 protocol::WireError)
        << len;
  }
}

// --- crypto/dsp invariants ---

TEST(InvariantTest, OtPadsAreStatisticallyBalanced) {
  // The pads that become key material must be bit-balanced.
  protocol::AgreementParams params;
  params.seed_bits = 48;
  params.key_bits = 2048;
  crypto::Drbg rng(9);
  const protocol::PadSender sender(params, rng);
  std::size_t ones = 0, total = 0;
  for (std::size_t i = 0; i < params.seed_bits; ++i)
    for (bool b : {false, true}) {
      ones += sender.pad(i, b).popcount();
      total += sender.pad(i, b).size();
    }
  const double ratio = static_cast<double>(ones) / static_cast<double>(total);
  EXPECT_NEAR(ratio, 0.5, 0.03);
}

TEST(InvariantTest, SavitzkyGolayCommutesWithUnwrapOnSmoothPhases) {
  // Processing order in the server pipeline: unwrap then smooth. For a
  // smooth, slowly-wrapping phase this must equal smoothing the true phase.
  Rng rng(10);
  std::vector<double> truth(500), wrapped(500);
  double phase = 0.0;
  for (int i = 0; i < 500; ++i) {
    phase += rng.uniform(-0.8, 0.9);
    truth[i] = phase;
    wrapped[i] = dsp::wrap_phase(phase);
  }
  const dsp::SavitzkyGolayFilter sg(11, 3);
  const auto a = sg.apply(dsp::unwrap_phase(wrapped));
  const auto b = sg.apply(truth);
  for (int i = 0; i < 500; ++i) EXPECT_NEAR(a[i] - a[0], b[i] - b[0], 1e-9);
}

// --- determinism across the full simulated stack ---

TEST(DeterminismTest, FullSessionRecordingIsSeedDeterministic) {
  sim::ScenarioConfig sc;
  sc.gesture.active_s = 3.0;
  sc.dynamic_environment = true;  // includes walker randomness
  sim::ScenarioSimulator a(sc, 999), b(sc, 999);
  const auto ra = a.run(), rb = b.run();
  ASSERT_EQ(ra.imu.samples.size(), rb.imu.samples.size());
  for (std::size_t i = 0; i < ra.imu.samples.size(); i += 53) {
    EXPECT_EQ(ra.imu.samples[i].accel, rb.imu.samples[i].accel);
    EXPECT_EQ(ra.imu.samples[i].gyro, rb.imu.samples[i].gyro);
  }
  ASSERT_EQ(ra.rfid.samples.size(), rb.rfid.samples.size());
  for (std::size_t i = 0; i < ra.rfid.samples.size(); i += 53)
    EXPECT_DOUBLE_EQ(ra.rfid.samples[i].phase, rb.rfid.samples[i].phase);
}

TEST(DeterminismTest, ProtocolKeysDependOnDrbgSeedOnly) {
  protocol::SessionConfig config;
  config.params.seed_bits = 48;
  config.params.key_bits = 256;
  config.params.eta = 0.1;
  crypto::Drbg seed_rng(11);
  const BitVec seed = seed_rng.random_bits(48);

  crypto::Drbg m1(100), s1(200), m2(100), s2(200);
  const auto r1 = protocol::run_key_agreement(config, seed, seed, m1, s1);
  const auto r2 = protocol::run_key_agreement(config, seed, seed, m2, s2);
  ASSERT_TRUE(r1.success && r2.success);
  EXPECT_EQ(r1.mobile_key, r2.mobile_key);
}

}  // namespace
}  // namespace wavekey
