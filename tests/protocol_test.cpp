// Tests of the key-agreement protocol: wire framing, the bidirectional OT
// pad exchange, seed-to-key agreement under controlled seed noise, the
// fuzzy-commitment reconciliation bounds, the tau deadline, and adversarial
// interceptors (tamper/delay/drop/eavesdrop).

#include <gtest/gtest.h>

#include <algorithm>
#include <string>

#include "crypto/drbg.hpp"
#include "numeric/rng.hpp"
#include "protocol/key_agreement.hpp"
#include "protocol/session.hpp"
#include "protocol/wire.hpp"

namespace wavekey::protocol {
namespace {

BitVec flip_bits(BitVec seed, std::initializer_list<std::size_t> positions) {
  for (std::size_t p : positions) seed.set(p, !seed.get(p));
  return seed;
}

TEST(WireTest, RoundTrip) {
  WireWriter w;
  w.u8(7);
  w.u32(0xDEADBEEF);
  const Bytes blob_data{1, 2, 3, 4, 5};
  w.blob(blob_data);
  w.bytes(std::array<std::uint8_t, 2>{9, 8});
  const Bytes wire = w.take();

  WireReader r(wire);
  EXPECT_EQ(r.u8(), 7);
  EXPECT_EQ(r.u32(), 0xDEADBEEFu);
  EXPECT_EQ(r.blob(), blob_data);
  EXPECT_EQ(r.bytes(2), (Bytes{9, 8}));
  EXPECT_TRUE(r.done());
  EXPECT_NO_THROW(r.expect_done());
}

TEST(WireTest, UnderrunThrows) {
  const Bytes short_wire{1, 2};
  WireReader r(short_wire);
  EXPECT_THROW(r.u32(), WireError);
  WireReader r2(short_wire);
  EXPECT_THROW(r2.bytes(3), WireError);
}

TEST(WireTest, TrailingBytesDetected) {
  const Bytes wire{1, 2, 3};
  WireReader r(wire);
  (void)r.u8();
  EXPECT_THROW(r.expect_done(), WireError);
}

TEST(AgreementParamsTest, PadAndKeyArithmetic) {
  AgreementParams p;
  p.seed_bits = 48;
  p.key_bits = 256;
  // l_b = ceil(256 / 96) = 3, prelim = 2*48*3 = 288 >= 256.
  EXPECT_EQ(p.pad_bits(), 3u);
  EXPECT_GE(p.prelim_key_bits(), p.key_bits);

  p.key_bits = 2048;  // l_b = ceil(2048/96) = 22
  EXPECT_EQ(p.pad_bits(), 22u);
  EXPECT_EQ(p.prelim_key_bits(), 2u * 48u * 22u);
}

TEST(AgreementParamsTest, FuzzyBudgetScalesWithEta) {
  AgreementParams p;
  p.seed_bits = 48;
  p.key_bits = 256;
  p.eta = 0.10;  // tolerates 4 bad seed bits
  const std::size_t budget_04 = p.fuzzy_byte_budget();
  p.eta = 0.20;  // tolerates 9
  EXPECT_GT(p.fuzzy_byte_budget(), budget_04);
}

class AgreementTest : public ::testing::Test {
 protected:
  SessionConfig config_ = [] {
    SessionConfig c;
    c.params.seed_bits = 48;
    c.params.key_bits = 256;
    c.params.eta = 0.10;
    return c;
  }();
  crypto::Drbg mobile_rng_{101};
  crypto::Drbg server_rng_{202};
  crypto::Drbg seed_rng_{303};
};

TEST_F(AgreementTest, IdenticalSeedsYieldMatchingKeys) {
  const BitVec seed = seed_rng_.random_bits(48);
  const SessionResult r =
      run_key_agreement(config_, seed, seed, mobile_rng_, server_rng_);
  ASSERT_TRUE(r.success) << static_cast<int>(r.failure);
  EXPECT_EQ(r.mobile_key, r.server_key);
  EXPECT_EQ(r.mobile_key.size(), 256u);
  EXPECT_GT(r.elapsed_s, config_.gesture_window_s);
  EXPECT_LT(r.elapsed_s, config_.gesture_window_s + 1.0);
}

TEST_F(AgreementTest, ToleratedSeedNoiseStillAgreesOnMobileKey) {
  const BitVec seed_m = seed_rng_.random_bits(48);
  // eta = 0.10 over 48 bits tolerates floor(4.8) = 4 flips.
  const BitVec seed_r = flip_bits(seed_m, {3, 17, 29, 41});
  const SessionResult r =
      run_key_agreement(config_, seed_m, seed_r, mobile_rng_, server_rng_);
  ASSERT_TRUE(r.success) << static_cast<int>(r.failure);
  // Reconciliation converges on the *mobile's* key.
  EXPECT_EQ(r.mobile_key, r.server_key);
}

TEST_F(AgreementTest, ExcessSeedNoiseFailsCleanly) {
  const BitVec seed_m = seed_rng_.random_bits(48);
  BitVec seed_r = seed_m;
  for (std::size_t i = 0; i < 20; ++i) seed_r.set(i * 2, !seed_r.get(i * 2));
  const SessionResult r =
      run_key_agreement(config_, seed_m, seed_r, mobile_rng_, server_rng_);
  EXPECT_FALSE(r.success);
  EXPECT_EQ(r.failure, FailureReason::kReconciliationFailed);
}

TEST_F(AgreementTest, KeysAreFreshAcrossSessions) {
  const BitVec seed = seed_rng_.random_bits(48);
  const SessionResult r1 =
      run_key_agreement(config_, seed, seed, mobile_rng_, server_rng_);
  const SessionResult r2 =
      run_key_agreement(config_, seed, seed, mobile_rng_, server_rng_);
  ASSERT_TRUE(r1.success && r2.success);
  // Same seeds, but the pads are fresh randomness: keys must differ.
  EXPECT_NE(r1.mobile_key, r2.mobile_key);
}

TEST_F(AgreementTest, LongKeysWork) {
  config_.params.key_bits = 2048;
  const BitVec seed = seed_rng_.random_bits(48);
  const BitVec seed_r = flip_bits(seed, {7, 22});
  const SessionResult r =
      run_key_agreement(config_, seed, seed_r, mobile_rng_, server_rng_);
  ASSERT_TRUE(r.success) << static_cast<int>(r.failure);
  EXPECT_EQ(r.mobile_key.size(), 2048u);
  EXPECT_EQ(r.mobile_key, r.server_key);
}

TEST_F(AgreementTest, DeadlineEnforcedOnSlowCompute) {
  config_.mobile_compute_s = 0.5;  // way past tau = 120 ms
  const BitVec seed = seed_rng_.random_bits(48);
  const SessionResult r =
      run_key_agreement(config_, seed, seed, mobile_rng_, server_rng_);
  EXPECT_FALSE(r.success);
  EXPECT_EQ(r.failure, FailureReason::kDeadlineExceeded);
}

TEST_F(AgreementTest, DeadlineEnforcedOnDelayedMessage) {
  const BitVec seed = seed_rng_.random_bits(48);
  const Interceptor delayer = [](InFlightMessage& msg) -> double {
    return msg.type == MessageType::kMsgA && msg.from == "server" ? 0.5 : 0.0;
  };
  const SessionResult r =
      run_key_agreement(config_, seed, seed, mobile_rng_, server_rng_, delayer);
  EXPECT_FALSE(r.success);
  EXPECT_EQ(r.failure, FailureReason::kDeadlineExceeded);
}

TEST_F(AgreementTest, DroppedMessageFailsCleanly) {
  const BitVec seed = seed_rng_.random_bits(48);
  const Interceptor dropper = [](InFlightMessage& msg) -> double {
    return msg.type == MessageType::kMsgE ? -1.0 : 0.0;
  };
  const SessionResult r =
      run_key_agreement(config_, seed, seed, mobile_rng_, server_rng_, dropper);
  EXPECT_FALSE(r.success);
  EXPECT_EQ(r.failure, FailureReason::kMessageDropped);
}

TEST_F(AgreementTest, TamperedOtMessageNeverYieldsAgreedKey) {
  // MitM flips one bit in the mobile's M_B. The affected OT instance derives
  // a garbage pad on one side; the session must fail (reconciliation or
  // HMAC), never silently "succeed" with different keys.
  for (std::size_t bit : {40u, 400u, 4000u}) {
    crypto::Drbg m_rng(bit * 7 + 1), s_rng(bit * 13 + 2), s2(bit);
    const BitVec seed = s2.random_bits(48);
    const Interceptor tamper = [bit](InFlightMessage& msg) -> double {
      if (msg.type == MessageType::kMsgB && msg.from == "mobile") {
        const std::size_t b = bit % (msg.payload.size() * 8);
        msg.payload[b / 8] ^= static_cast<std::uint8_t>(1u << (b % 8));
      }
      return 0.0;
    };
    const SessionResult r = run_key_agreement(config_, seed, seed, m_rng, s_rng, tamper);
    if (r.success) {
      EXPECT_EQ(r.mobile_key, r.server_key) << "bit " << bit;
    } else {
      EXPECT_NE(r.failure, FailureReason::kNone);
    }
  }
}

TEST_F(AgreementTest, TamperedChallengeFailsHmac) {
  const BitVec seed = seed_rng_.random_bits(48);
  const Interceptor tamper = [](InFlightMessage& msg) -> double {
    if (msg.type == MessageType::kChallenge && msg.payload.size() > 10)
      msg.payload[msg.payload.size() - 1] ^= 0x01;  // corrupt the nonce
    return 0.0;
  };
  const SessionResult r =
      run_key_agreement(config_, seed, seed, mobile_rng_, server_rng_, tamper);
  EXPECT_FALSE(r.success);
}

TEST_F(AgreementTest, TranscriptDoesNotContainKey) {
  // Eavesdropper records everything; neither final key may appear in the
  // transcript as a contiguous byte string.
  Bytes transcript;
  const Interceptor eave = [&transcript](InFlightMessage& msg) -> double {
    transcript.insert(transcript.end(), msg.payload.begin(), msg.payload.end());
    return 0.0;
  };
  const BitVec seed = seed_rng_.random_bits(48);
  const SessionResult r =
      run_key_agreement(config_, seed, seed, mobile_rng_, server_rng_, eave);
  ASSERT_TRUE(r.success);
  EXPECT_GT(transcript.size(), 1000u);

  const auto key_bytes = r.mobile_key.to_bytes();
  // Search for any 8-byte window of the key in the transcript.
  bool found = false;
  for (std::size_t off = 0; off + 8 <= key_bytes.size() && !found; ++off) {
    const auto it = std::search(transcript.begin(), transcript.end(),
                                key_bytes.begin() + static_cast<std::ptrdiff_t>(off),
                                key_bytes.begin() + static_cast<std::ptrdiff_t>(off + 8));
    found = it != transcript.end();
  }
  EXPECT_FALSE(found);
}

TEST(PadExchangeTest, ReceiverGetsExactlyChosenPads) {
  AgreementParams params;
  params.seed_bits = 16;
  params.key_bits = 128;
  crypto::Drbg sender_rng(11), receiver_rng(22), seed_rng(33);
  const BitVec seed = seed_rng.random_bits(16);

  const PadSender sender(params, sender_rng);
  const PadReceiver receiver(params, seed, sender.message_a(), receiver_rng);
  const Bytes msg_e = sender.make_cipher_message(receiver.message_b(), sender_rng);
  const std::vector<BitVec> pads = receiver.receive_pads(msg_e);
  ASSERT_EQ(pads.size(), 16u);
  for (std::size_t i = 0; i < 16; ++i) {
    EXPECT_EQ(pads[i], sender.pad(i, seed.get(i))) << i;
    EXPECT_NE(pads[i], sender.pad(i, !seed.get(i))) << i;
  }
}

TEST(PadExchangeTest, MalformedMessagesThrowWireError) {
  AgreementParams params;
  params.seed_bits = 8;
  params.key_bits = 64;
  crypto::Drbg rng(44);
  const PadSender sender(params, rng);
  Bytes msg_a = sender.message_a();
  msg_a[0] = 99;  // wrong type tag
  EXPECT_THROW(PadReceiver(params, rng.random_bits(8), msg_a, rng), WireError);
  Bytes truncated = sender.message_a();
  truncated.resize(truncated.size() / 2);
  EXPECT_THROW(PadReceiver(params, rng.random_bits(8), truncated, rng), WireError);
}

// --- malformed-input robustness: seeded mutation fuzzing of the decoders ---
//
// Every decoder that touches attacker-controlled bytes must either parse or
// throw WireError/invalid_argument — never crash, never exhibit UB. ~1k
// seeded mutations per decoder: truncations, bit flips, random buffers, and
// junk extensions.

Bytes mutate_wire(const Bytes& base, Rng& rng) {
  Bytes out = base;
  switch (rng.uniform_u64(4)) {
    case 0:  // truncate
      out.resize(static_cast<std::size_t>(rng.uniform_u64(base.size() + 1)));
      break;
    case 1: {  // flip 1..8 bits
      if (out.empty()) break;
      const std::size_t flips = 1 + rng.uniform_u64(8);
      for (std::size_t i = 0; i < flips; ++i) {
        const std::size_t bit = rng.uniform_u64(out.size() * 8);
        out[bit / 8] ^= static_cast<std::uint8_t>(1u << (bit % 8));
      }
      break;
    }
    case 2:  // fully random buffer
      out.resize(static_cast<std::size_t>(rng.uniform_u64(300)));
      rng.fill_bytes(out);
      break;
    default:  // append junk
      for (std::size_t i = 0, n = 1 + rng.uniform_u64(32); i < n; ++i)
        out.push_back(static_cast<std::uint8_t>(rng.uniform_u64(256)));
      break;
  }
  return out;
}

/// Runs `decode` on ~1k mutations of `base`; only clean outcomes allowed.
template <typename F>
void fuzz_decoder(const Bytes& base, std::uint64_t seed, F&& decode) {
  Rng rng(seed);
  for (int i = 0; i < 1000; ++i) {
    const Bytes mutated = mutate_wire(base, rng);
    try {
      decode(mutated);  // parsing garbage successfully is fine; UB is not
    } catch (const WireError&) {
    } catch (const std::invalid_argument&) {
    }
  }
}

TEST(MalformedInputFuzz, ChallengeParseNeverCrashes) {
  AgreementParams params;
  params.seed_bits = 48;
  params.key_bits = 256;
  params.eta = 0.10;
  crypto::Drbg rng(91);
  const Challenge c = make_challenge(params, rng.random_bits(params.prelim_key_bits()), rng);
  fuzz_decoder(c.serialize(), 1001,
               [&](const Bytes& wire) { (void)Challenge::parse(params, wire); });
}

TEST(MalformedInputFuzz, PadReceiverNeverCrashes) {
  AgreementParams params;
  params.seed_bits = 16;
  params.key_bits = 128;
  crypto::Drbg rng(92);
  const PadSender sender(params, rng);
  const BitVec seed = rng.random_bits(16);
  fuzz_decoder(sender.message_a(), 1002, [&](const Bytes& wire) {
    crypto::Drbg fresh(7);
    (void)PadReceiver(params, seed, wire, fresh);
  });
}

TEST(MalformedInputFuzz, ReceivePadsNeverCrashes) {
  AgreementParams params;
  params.seed_bits = 16;
  params.key_bits = 128;
  crypto::Drbg rng(93);
  const PadSender sender(params, rng);
  const BitVec seed = rng.random_bits(16);
  const PadReceiver receiver(params, seed, sender.message_a(), rng);
  const Bytes msg_e = sender.make_cipher_message(receiver.message_b(), rng);
  fuzz_decoder(msg_e, 1003, [&](const Bytes& wire) { (void)receiver.receive_pads(wire); });
}

TEST(MalformedInputFuzz, WireReaderNeverCrashes) {
  WireWriter w;
  w.u8(3);
  w.u32(123456);
  w.blob(Bytes{1, 2, 3, 4, 5, 6, 7, 8});
  fuzz_decoder(w.take(), 1004, [&](const Bytes& wire) {
    WireReader r(wire);
    (void)r.u8();
    (void)r.u32();
    (void)r.blob();
    r.expect_done();
  });
}

TEST(ReconciliationTest, ChallengeRoundTrip) {
  AgreementParams params;
  params.seed_bits = 48;
  params.key_bits = 256;
  params.eta = 0.1;
  crypto::Drbg rng(55);
  const BitVec key = rng.random_bits(params.prelim_key_bits());
  const Challenge c = make_challenge(params, key, rng);
  const Bytes wire = c.serialize();
  const Challenge parsed = Challenge::parse(params, wire);
  EXPECT_EQ(parsed.helper, c.helper);
  EXPECT_EQ(parsed.nonce, c.nonce);

  const auto recovered = recover_key(params, parsed, key);
  ASSERT_TRUE(recovered.has_value());
  EXPECT_EQ(*recovered, key);

  const Bytes response = make_response(parsed, *recovered);
  EXPECT_TRUE(verify_response(c, key, response));
  // Wrong key -> bad response.
  const BitVec other = rng.random_bits(params.prelim_key_bits());
  EXPECT_FALSE(verify_response(c, other, response));
}

}  // namespace
}  // namespace wavekey::protocol
