// Tests of the core WaveKey library: configuration arithmetic, dataset
// generation, encoder training/serialization/pruning, seed quantization
// (normal + calibrated), eta calibration, and the end-to-end WaveKeySystem.
//
// Training here is deliberately tiny (small dataset, few epochs): these
// tests validate plumbing and invariants, not headline accuracy — the
// benches measure that with the full model.

#include <gtest/gtest.h>

#include <cmath>
#include <filesystem>
#include <sstream>

#include "core/config.hpp"
#include "core/dataset.hpp"
#include "core/encoders.hpp"
#include "core/key_seed.hpp"
#include "core/model_store.hpp"
#include "core/pairing.hpp"
#include "core/seed_quantizer.hpp"
#include "core/system.hpp"
#include "numeric/stats.hpp"

namespace wavekey::core {
namespace {

DatasetConfig tiny_dataset_config() {
  DatasetConfig dc;
  dc.volunteers = 3;
  dc.devices = 2;
  dc.gestures_per_pair = 2;
  dc.windows_per_gesture = 6;
  dc.gesture_active_s = 8.0;
  return dc;
}

TrainConfig tiny_train_config() {
  TrainConfig tc;
  tc.epochs = 8;
  tc.batch_size = 16;
  return tc;
}

// A process-wide tiny trained setup shared by the heavier tests.
struct TinySetup {
  WaveKeyDataset dataset;
  EncoderPair encoders;
  TinySetup()
      : dataset(WaveKeyDataset::generate(tiny_dataset_config())),
        encoders([] {
          Rng rng(7);
          return EncoderPair(WaveKeyConfig{}.latent_dim, rng);
        }()) {
    encoders.train(dataset, tiny_train_config());
  }
};

TinySetup& tiny_setup() {
  static TinySetup setup;
  return setup;
}

TEST(WaveKeyConfigTest, DerivedQuantities) {
  WaveKeyConfig cfg;
  EXPECT_EQ(cfg.latent_dim, 12u);
  EXPECT_EQ(cfg.quant_bins, 9u);
  EXPECT_EQ(cfg.bits_per_element(), 4u);  // ceil(log2 9)
  EXPECT_EQ(cfg.seed_bits(), 48u);
  // l_b = ceil(256 / (2*48)) = 3.
  EXPECT_EQ(cfg.pad_bits(), 3u);

  cfg.quant_bins = 8;
  EXPECT_EQ(cfg.bits_per_element(), 3u);
  cfg.quant_bins = 16;
  EXPECT_EQ(cfg.bits_per_element(), 4u);
}

TEST(DatasetTest, GeneratesDiverseSamplesWithCorrectShapes) {
  const WaveKeyDataset& ds = tiny_setup().dataset;
  // 3 volunteers x 2 devices x 2 gestures x 6 windows = 72 nominal; allow
  // a few pipeline rejections.
  EXPECT_GT(ds.size(), 50u);
  EXPECT_LE(ds.size(), 72u);
  for (std::size_t i = 0; i < ds.size(); i += 13) {
    const Sample& s = ds.sample(i);
    EXPECT_EQ(s.imu.shape(), (std::vector<std::size_t>{3, 200}));
    EXPECT_EQ(s.rfid.shape(), (std::vector<std::size_t>{2, 400}));
    EXPECT_EQ(s.rfid_mag.shape(), (std::vector<std::size_t>{400}));
  }
}

TEST(DatasetTest, GenerationIsDeterministic) {
  DatasetConfig dc = tiny_dataset_config();
  dc.volunteers = 1;
  dc.devices = 1;
  dc.windows_per_gesture = 2;
  const WaveKeyDataset a = WaveKeyDataset::generate(dc);
  const WaveKeyDataset b = WaveKeyDataset::generate(dc);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i)
    for (std::size_t j = 0; j < a.sample(i).imu.size(); j += 61)
      EXPECT_FLOAT_EQ(a.sample(i).imu[j], b.sample(i).imu[j]);
}

TEST(DatasetTest, ImuInputIsRmsNormalized) {
  const WaveKeyDataset& ds = tiny_setup().dataset;
  for (std::size_t i = 0; i < std::min<std::size_t>(ds.size(), 10); ++i) {
    const auto& imu = ds.sample(i).imu;
    double sum2 = 0.0;
    for (std::size_t j = 0; j < imu.size(); ++j) sum2 += imu[j] * imu[j];
    EXPECT_NEAR(std::sqrt(sum2 / static_cast<double>(imu.size())), 1.0, 1e-3);
  }
}

TEST(DatasetTest, BatchAssemblesRows) {
  const WaveKeyDataset& ds = tiny_setup().dataset;
  nn::Tensor imu, rfid, mag;
  ds.batch({0, 2, 4}, imu, rfid, mag);
  EXPECT_EQ(imu.shape(), (std::vector<std::size_t>{3, 3, 200}));
  EXPECT_EQ(rfid.shape(), (std::vector<std::size_t>{3, 2, 400}));
  EXPECT_EQ(mag.shape(), (std::vector<std::size_t>{3, 400}));
  for (std::size_t j = 0; j < 600; j += 97)
    EXPECT_FLOAT_EQ(imu[600 + j], ds.sample(2).imu[j]);
  EXPECT_THROW(ds.batch({}, imu, rfid, mag), std::invalid_argument);
}

TEST(EncoderPairTest, TrainingReducesJointLoss) {
  // Compare the first and last epochs' training-mode losses: both the
  // cross-modal feature distance and the decoder reconstruction must fall.
  const WaveKeyDataset& ds = tiny_setup().dataset;
  Rng rng(99);
  EncoderPair fresh(12, rng);
  TrainConfig tc = tiny_train_config();
  tc.epochs = 1;
  const LossBreakdown first = fresh.train(ds, tc);
  tc.epochs = 7;
  const LossBreakdown last = fresh.train(ds, tc);
  EXPECT_LT(last.feature, first.feature);
  EXPECT_LT(last.decoder, first.decoder);
}

TEST(EncoderPairTest, FeatureVectorsHaveLatentDim) {
  TinySetup& ts = tiny_setup();
  const Sample& s = ts.dataset.sample(0);
  EXPECT_EQ(ts.encoders.imu_features(s.imu).size(), 12u);
  EXPECT_EQ(ts.encoders.rfid_features(s.rfid).size(), 12u);
}

TEST(EncoderPairTest, SaveLoadRoundTripsFeatures) {
  TinySetup& ts = tiny_setup();
  std::stringstream ss;
  ts.encoders.save(ss);
  Rng rng(1);
  EncoderPair loaded(12, rng);
  loaded.load(ss);
  const Sample& s = ts.dataset.sample(3);
  const auto f1 = ts.encoders.imu_features(s.imu);
  const auto f2 = loaded.imu_features(s.imu);
  for (std::size_t i = 0; i < f1.size(); ++i) EXPECT_FLOAT_EQ(f1[i], f2[i]);
}

TEST(EncoderPairTest, LoadRejectsWrongLatentDim) {
  TinySetup& ts = tiny_setup();
  std::stringstream ss;
  ts.encoders.save(ss);
  Rng rng(2);
  EncoderPair other(10, rng);
  EXPECT_THROW(other.load(ss), std::runtime_error);
}

TEST(EncoderPairTest, PruningShrinksLatentAndStaysFunctional) {
  // Copy the trained encoders via serialization, then prune twice.
  TinySetup& ts = tiny_setup();
  std::stringstream ss;
  ts.encoders.save(ss);
  Rng rng(3);
  EncoderPair pruned(12, rng);
  pruned.load(ss);

  const std::size_t removed1 = pruned.prune_lowest_variance_unit(ts.dataset);
  EXPECT_LT(removed1, 12u);
  EXPECT_EQ(pruned.latent_dim(), 11u);
  (void)pruned.prune_lowest_variance_unit(ts.dataset);
  EXPECT_EQ(pruned.latent_dim(), 10u);

  const Sample& s = ts.dataset.sample(0);
  EXPECT_EQ(pruned.imu_features(s.imu).size(), 10u);
  EXPECT_EQ(pruned.rfid_features(s.rfid).size(), 10u);

  // Retraining the pruned model must work (decoder input was fixed up).
  TrainConfig tc = tiny_train_config();
  tc.epochs = 1;
  EXPECT_NO_THROW(pruned.train(ts.dataset, tc));
}

TEST(SeedQuantizerTest, NormalModeMatchesEquationOne) {
  WaveKeyConfig cfg;
  const SeedQuantizer q = SeedQuantizer::from_normal(cfg);
  EXPECT_EQ(q.latent_dim(), 12u);
  EXPECT_EQ(q.seed_bits(), 48u);
  // Boundary i solves Phi(b) = i/9, identical across dims.
  for (std::size_t d = 0; d < 12; ++d) {
    EXPECT_EQ(q.bin_of(d, -10.0), 0u);
    EXPECT_EQ(q.bin_of(d, 0.0), 4u);  // median of 9 bins
    EXPECT_EQ(q.bin_of(d, 10.0), 8u);
  }
}

TEST(SeedQuantizerTest, CalibratedModeEqualizesOccupancy) {
  TinySetup& ts = tiny_setup();
  WaveKeyConfig cfg;
  const SeedQuantizer q = SeedQuantizer::calibrated(ts.encoders, ts.dataset, cfg);
  // Occupancy over the calibration set must be within ~2x of uniform for
  // every (dim, bin).
  std::vector<std::vector<std::size_t>> counts(12, std::vector<std::size_t>(9, 0));
  for (std::size_t i = 0; i < ts.dataset.size(); ++i) {
    const auto f = ts.encoders.imu_features(ts.dataset.sample(i).imu);
    for (std::size_t d = 0; d < 12; ++d) counts[d][q.bin_of(d, f[d])]++;
  }
  const double expected = static_cast<double>(ts.dataset.size()) / 9.0;
  for (std::size_t d = 0; d < 12; ++d)
    for (std::size_t b = 0; b < 9; ++b)
      EXPECT_LT(std::abs(counts[d][b] - expected), expected * 1.6) << d << "," << b;
}

TEST(SeedQuantizerTest, SaveLoadRoundTrip) {
  WaveKeyConfig cfg;
  const SeedQuantizer q = SeedQuantizer::from_normal(cfg);
  std::stringstream ss;
  q.save(ss);
  const SeedQuantizer loaded = SeedQuantizer::load(ss);
  EXPECT_EQ(loaded.latent_dim(), q.latent_dim());
  EXPECT_EQ(loaded.num_bins(), q.num_bins());
  std::vector<double> f(12, 0.3);
  EXPECT_EQ(loaded.quantize(f), q.quantize(f));
}

TEST(SeedQuantizerTest, QuantizeValidatesLength) {
  WaveKeyConfig cfg;
  const SeedQuantizer q = SeedQuantizer::from_normal(cfg);
  EXPECT_THROW(q.quantize(std::vector<double>(5, 0.0)), std::invalid_argument);
}

TEST(KeySeedTest, CalibrationSetsEtaAtP99) {
  TinySetup& ts = tiny_setup();
  WaveKeyConfig cfg;
  const SeedQuantizer q = SeedQuantizer::calibrated(ts.encoders, ts.dataset, cfg);
  const EtaCalibration cal = calibrate_eta(ts.encoders, ts.dataset, q);
  EXPECT_GT(cal.eta, 0.0);
  EXPECT_LE(cal.eta, 1.0);
  if (cal.capped) {
    // The security cap takes precedence over covering the 99th percentile:
    // eta sits at the cap and the calibration reports the clamp.
    EXPECT_DOUBLE_EQ(cal.eta, 0.25);
    EXPECT_GT(cal.p99_mismatch, cal.eta);
  } else {
    EXPECT_GE(cal.eta, cal.p99_mismatch - 1e-12);
  }
  EXPECT_EQ(cal.samples, ts.dataset.size());
  EXPECT_LE(cal.mean_mismatch, cal.p99_mismatch + 1e-12);
}

TEST(KeySeedTest, RandomGuessRateMatchesEquationFour) {
  // eta = 0 -> only the exact seed: 1/2^ls.
  EXPECT_NEAR(random_guess_success_rate(10, 0.0), 1.0 / 1024.0, 1e-12);
  // eta tolerating 1 bit: (1 + 10)/2^10.
  EXPECT_NEAR(random_guess_success_rate(10, 0.1), 11.0 / 1024.0, 1e-12);
  // Monotone in eta.
  EXPECT_LT(random_guess_success_rate(48, 0.05), random_guess_success_rate(48, 0.2));
  // Paper's quoted configuration order of magnitude (l_s=38, eta=0.04).
  EXPECT_LT(random_guess_success_rate(38, 0.04), 1e-8);
}

TEST(PairingTest, ProducesSeedsOnEasyScenario) {
  TinySetup& ts = tiny_setup();
  WaveKeyConfig cfg;
  const SeedQuantizer q = SeedQuantizer::calibrated(ts.encoders, ts.dataset, cfg);
  sim::ScenarioConfig sc;
  sc.distance_m = 2.0;
  sc.gesture.active_s = 4.0;
  const auto r = simulate_seed_pair(ts.encoders, q, cfg, sc, 1234);
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(r->mobile_seed.size(), 48u);
  EXPECT_EQ(r->server_seed.size(), 48u);
  EXPECT_GE(r->mismatch, 0.0);
  EXPECT_LE(r->mismatch, 1.0);
}

TEST(SystemTest, EndToEndKeyEstablishment) {
  TinySetup& ts = tiny_setup();
  std::stringstream ss;
  ts.encoders.save(ss);
  Rng rng(4);
  EncoderPair copy(12, rng);
  copy.load(ss);

  WaveKeySystem system(std::move(copy), WaveKeyConfig{});
  // This test exercises the plumbing with a deliberately weak tiny model;
  // lift the security cap so calibration tracks the model's actual noise.
  system.config().eta_security_cap = 0.6;
  const EtaCalibration cal = system.calibrate(ts.dataset);
  EXPECT_DOUBLE_EQ(system.config().eta, cal.eta);

  sim::ScenarioConfig sc;
  sc.distance_m = 2.0;
  sc.gesture.active_s = 4.0;
  // The tiny model's absolute quality is irrelevant here; what must hold is
  // the *mechanism*: a session succeeds exactly when its seed mismatch is
  // within the calibrated eta budget (segment-exact, see recover_key).
  int attempts = 0, consistent = 0;
  bool saw_success_shape = false;
  for (std::uint64_t seed = 0; seed < 16; ++seed) {
    const WaveKeyOutcome out = system.establish_key(sc, seed * 7919 + 3);
    if (!out.pipelines_ok) continue;
    ++attempts;
    const bool should_succeed = out.seed_mismatch <= system.config().eta + 1e-12;
    if (should_succeed == out.success) ++consistent;
    if (out.success) {
      saw_success_shape = true;
      EXPECT_EQ(out.key.size(), system.config().key_bits);
      EXPECT_GT(out.elapsed_s, system.config().gesture_window_s);
    }
  }
  ASSERT_GT(attempts, 8);
  EXPECT_EQ(consistent, attempts);

  // Exercise the success path deterministically: with a permissive eta the
  // tiny model's sessions must reconcile and produce matching keys.
  if (!saw_success_shape) {
    system.config().eta = 0.5;
    const WaveKeyOutcome out = system.establish_key(sc, 31);
    ASSERT_TRUE(out.pipelines_ok);
    EXPECT_TRUE(out.success || out.seed_mismatch > 0.5);
    if (out.success) EXPECT_EQ(out.key.size(), system.config().key_bits);
  }
}

TEST(SystemTest, TamperedChannelFailsEstablishment) {
  TinySetup& ts = tiny_setup();
  std::stringstream ss;
  ts.encoders.save(ss);
  Rng rng(5);
  EncoderPair copy(12, rng);
  copy.load(ss);
  WaveKeySystem system(std::move(copy), WaveKeyConfig{});
  system.calibrate(ts.dataset);

  sim::ScenarioConfig sc;
  sc.distance_m = 2.0;
  sc.gesture.active_s = 4.0;
  const protocol::Interceptor dropper = [](protocol::InFlightMessage& msg) -> double {
    return msg.type == protocol::MessageType::kMsgE ? -1.0 : 0.0;
  };
  const WaveKeyOutcome out = system.establish_key(sc, 42, dropper);
  EXPECT_FALSE(out.success);
}

TEST(ModelStoreTest, SaveLoadRoundTrip) {
  TinySetup& ts = tiny_setup();
  std::stringstream ss;
  ts.encoders.save(ss);
  Rng rng(6);
  EncoderPair copy(12, rng);
  copy.load(ss);
  WaveKeySystem system(std::move(copy), WaveKeyConfig{});
  system.calibrate(ts.dataset);
  const double eta = system.config().eta;

  const std::string path = (std::filesystem::temp_directory_path() / "wk_test_model.bin").string();
  save_system(system, path);
  auto loaded = load_system(path, WaveKeyConfig{});
  ASSERT_TRUE(loaded.has_value());
  EXPECT_NEAR(loaded->config().eta, eta, 1e-5);

  // Same features, same seeds.
  const Sample& s = ts.dataset.sample(1);
  const auto seed1 = loaded->quantizer().quantize(loaded->encoders().imu_features(s.imu));
  const auto seed2 = system.quantizer().quantize(system.encoders().imu_features(s.imu));
  EXPECT_EQ(seed1, seed2);
  std::filesystem::remove(path);
}

TEST(ModelStoreTest, MissingFileReturnsNullopt) {
  EXPECT_FALSE(load_system("/nonexistent/path/model.bin", WaveKeyConfig{}).has_value());
}

}  // namespace
}  // namespace wavekey::core
