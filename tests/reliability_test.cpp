// Reliability tests: the FaultyChannel fault-injection model, the ARQ
// transport (framing, retransmission, tau-budget accounting), and the
// multi-attempt establish_key_robust orchestrator with its AttemptTrace
// telemetry. Everything is seeded and deterministic.

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "core/dataset.hpp"
#include "core/encoders.hpp"
#include "core/model_store.hpp"
#include "core/system.hpp"
#include "crypto/drbg.hpp"
#include "numeric/rng.hpp"
#include "protocol/arq.hpp"
#include "protocol/faulty_channel.hpp"
#include "protocol/session.hpp"

namespace wavekey {
namespace {

using protocol::ArqConfig;
using protocol::Bytes;
using protocol::FailureReason;
using protocol::FaultyChannel;
using protocol::FaultyChannelConfig;
using protocol::FrameKind;
using protocol::InFlightMessage;
using protocol::Interceptor;
using protocol::JitterDistribution;
using protocol::LinkFaultConfig;
using protocol::MessageType;
using protocol::SessionConfig;
using protocol::SessionResult;

SessionConfig default_session_config() {
  SessionConfig c;
  c.params.seed_bits = 48;
  c.params.key_bits = 256;
  c.params.eta = 0.10;
  return c;
}

InFlightMessage test_message(double send_time = 2.0) {
  return InFlightMessage{"mobile", "server", MessageType::kMsgA, Bytes{1, 2, 3, 4, 5}, send_time};
}

// --- FaultyChannel -------------------------------------------------------

TEST(FaultyChannelTest, DeterministicBySeed) {
  FaultyChannelConfig config = FaultyChannelConfig::congested(/*seed=*/7);
  FaultyChannel a(config), b(config);
  for (int i = 0; i < 200; ++i) {
    const auto da = a.transmit(test_message(), 0.002);
    const auto db = b.transmit(test_message(), 0.002);
    ASSERT_EQ(da.size(), db.size()) << i;
    for (std::size_t k = 0; k < da.size(); ++k) {
      EXPECT_DOUBLE_EQ(da[k].arrival_s, db[k].arrival_s);
      EXPECT_EQ(da[k].payload, db[k].payload);
    }
  }
  // A different seed must give a different fault schedule.
  config.seed = 8;
  FaultyChannel c(config);
  int diffs = 0;
  FaultyChannel a2(FaultyChannelConfig::congested(7));
  for (int i = 0; i < 200; ++i)
    if (a2.transmit(test_message(), 0.002).size() != c.transmit(test_message(), 0.002).size())
      ++diffs;
  EXPECT_GT(diffs, 0);
}

TEST(FaultyChannelTest, LossRateApproximatelyRespected) {
  LinkFaultConfig f;
  f.loss = 0.3;
  FaultyChannel channel(FaultyChannelConfig::symmetric(f, 11));
  int delivered = 0;
  const int n = 10000;
  for (int i = 0; i < n; ++i) delivered += static_cast<int>(channel.transmit(test_message(), 0.002).size());
  EXPECT_NEAR(static_cast<double>(delivered) / n, 0.7, 0.03);
}

TEST(FaultyChannelTest, DuplicationAndReorderHold) {
  LinkFaultConfig f;
  f.duplicate = 1.0;
  FaultyChannel dup(FaultyChannelConfig::symmetric(f, 3));
  EXPECT_EQ(dup.transmit(test_message(), 0.002).size(), 2u);

  LinkFaultConfig r;
  r.reorder = 1.0;
  r.reorder_hold_s = 0.050;
  FaultyChannel held(FaultyChannelConfig::symmetric(r, 3));
  const auto deliveries = held.transmit(test_message(2.0), 0.002);
  ASSERT_EQ(deliveries.size(), 1u);
  EXPECT_GE(deliveries[0].arrival_s, 2.0 + 0.002 + 0.050);
}

TEST(FaultyChannelTest, ComposesWithAdversaryInterceptor) {
  FaultyChannel clean(FaultyChannelConfig{});
  // Adversary sees the copy after channel faults and may drop it...
  const Interceptor dropper = [](InFlightMessage&) -> double { return -1.0; };
  EXPECT_TRUE(clean.transmit(test_message(), 0.002, dropper).empty());
  // ...delay it...
  const Interceptor delayer = [](InFlightMessage&) -> double { return 0.5; };
  const auto delayed = clean.transmit(test_message(2.0), 0.002, delayer);
  ASSERT_EQ(delayed.size(), 1u);
  EXPECT_DOUBLE_EQ(delayed[0].arrival_s, 2.502);
  // ...or tamper with it.
  const Interceptor tamperer = [](InFlightMessage& msg) -> double {
    msg.payload[0] ^= 0xFF;
    return 0.0;
  };
  const auto tampered = clean.transmit(test_message(), 0.002, tamperer);
  ASSERT_EQ(tampered.size(), 1u);
  EXPECT_EQ(tampered[0].payload[0], 1 ^ 0xFF);
}

// --- ARQ framing ---------------------------------------------------------

TEST(ArqFrameTest, RoundTrip) {
  const Bytes payload{9, 8, 7, 6};
  const Bytes wire = protocol::encode_data_frame(41, MessageType::kMsgB, payload);
  const auto frame = protocol::decode_frame(wire);
  ASSERT_TRUE(frame.has_value());
  EXPECT_EQ(frame->kind, FrameKind::kData);
  EXPECT_EQ(frame->seq, 41u);
  EXPECT_EQ(frame->type, MessageType::kMsgB);
  EXPECT_EQ(frame->payload, payload);

  const auto ack = protocol::decode_frame(protocol::encode_ack_frame(41));
  ASSERT_TRUE(ack.has_value());
  EXPECT_EQ(ack->kind, FrameKind::kAck);
  EXPECT_EQ(ack->seq, 41u);
}

TEST(ArqFrameTest, CrcCatchesEverySingleBitFlip) {
  const Bytes wire = protocol::encode_data_frame(5, MessageType::kMsgE, Bytes{1, 2, 3});
  for (std::size_t bit = 0; bit < wire.size() * 8; ++bit) {
    Bytes flipped = wire;
    flipped[bit / 8] ^= static_cast<std::uint8_t>(1u << (bit % 8));
    EXPECT_FALSE(protocol::decode_frame(flipped).has_value()) << "bit " << bit;
  }
  Bytes truncated = wire;
  truncated.resize(truncated.size() - 1);
  EXPECT_FALSE(protocol::decode_frame(truncated).has_value());
}

// --- ARQ sessions --------------------------------------------------------

TEST(ArqSessionTest, CleanChannelBehavesLikeSingleShot) {
  const SessionConfig config = default_session_config();
  crypto::Drbg seed_rng(1);
  const BitVec seed = seed_rng.random_bits(48);

  FaultyChannel channel(FaultyChannelConfig{});
  crypto::Drbg m_rng(10), s_rng(20);
  const SessionResult r = protocol::run_key_agreement_arq(config, ArqConfig{}, channel, seed,
                                                          seed, m_rng, s_rng);
  ASSERT_TRUE(r.success) << failure_reason_name(r.failure);
  EXPECT_EQ(r.mobile_key, r.server_key);
  EXPECT_EQ(r.arq.data_frames_sent, 8u);  // 8 protocol messages, no retries
  EXPECT_EQ(r.arq.retransmissions, 0u);
  EXPECT_EQ(r.arq.acks_sent, 8u);
  EXPECT_EQ(r.arq.messages_lost, 0u);
  EXPECT_LE(r.critical_arrival_s, config.gesture_window_s + config.tau_s);
}

// Acceptance: at 5% packet loss + 10 ms jitter the ARQ session succeeds
// where the single-shot protocol fails, on deterministic seeds.
TEST(ArqSessionTest, ArqWinsBackSessionsSingleShotLosesAtFivePercentLoss) {
  const SessionConfig config = default_session_config();
  LinkFaultConfig f;
  f.loss = 0.05;
  f.jitter = JitterDistribution::kExponential;
  f.jitter_s = 0.010;

  std::vector<std::uint64_t> failing_seeds;
  for (std::uint64_t cs = 1; cs <= 40; ++cs) {
    FaultyChannel channel(FaultyChannelConfig::symmetric(f, cs));
    crypto::Drbg m_rng(cs * 3 + 1), s_rng(cs * 3 + 2), seed_rng(cs * 3 + 3);
    const BitVec seed = seed_rng.random_bits(48);
    const SessionResult single = protocol::run_key_agreement(config, seed, seed, m_rng, s_rng,
                                                             channel.as_interceptor());
    if (!single.success) failing_seeds.push_back(cs);
  }
  // At 5% loss over 8 messages roughly a third of single-shot sessions die.
  ASSERT_GE(failing_seeds.size(), 3u);

  for (std::uint64_t cs : failing_seeds) {
    FaultyChannel channel(FaultyChannelConfig::symmetric(f, cs));
    crypto::Drbg m_rng(cs * 3 + 1), s_rng(cs * 3 + 2), seed_rng(cs * 3 + 3);
    const BitVec seed = seed_rng.random_bits(48);
    const SessionResult r = protocol::run_key_agreement_arq(config, ArqConfig{}, channel, seed,
                                                            seed, m_rng, s_rng);
    ASSERT_TRUE(r.success) << "channel seed " << cs << ": "
                           << failure_reason_name(r.failure);
    EXPECT_EQ(r.mobile_key, r.server_key);
    EXPECT_GT(r.arq.retransmissions + r.arq.corrupt_frames_dropped + r.arq.duplicate_frames, 0u)
        << "single-shot failed yet ARQ saw no channel fault, channel seed " << cs;
    EXPECT_LE(r.critical_arrival_s, config.gesture_window_s + config.tau_s);
  }
}

/// Drops data frames matching (from, type); ACKs pass. Negative `max_drops`
/// drops forever.
Interceptor make_data_frame_dropper(const char* from, MessageType type, int max_drops,
                                    int* dropped = nullptr) {
  auto count = std::make_shared<int>(0);
  std::string from_s = from;
  return [=](InFlightMessage& msg) -> double {
    if (msg.from != from_s || msg.type != type) return 0.0;
    const auto frame = protocol::decode_frame(msg.payload);
    if (!frame || frame->kind != FrameKind::kData) return 0.0;
    if (max_drops >= 0 && *count >= max_drops) return 0.0;
    ++*count;
    if (dropped) *dropped = *count;
    return -1.0;
  };
}

TEST(ArqSessionTest, RetransmissionCountersMatchInjectedDrops) {
  const SessionConfig config = default_session_config();
  crypto::Drbg seed_rng(2);
  const BitVec seed = seed_rng.random_bits(48);

  FaultyChannel channel(FaultyChannelConfig{});  // clean link; adversary injects the fault
  crypto::Drbg m_rng(30), s_rng(40);
  int dropped = 0;
  const SessionResult r = protocol::run_key_agreement_arq(
      config, ArqConfig{}, channel, seed, seed, m_rng, s_rng,
      make_data_frame_dropper("mobile", MessageType::kChallenge, 1, &dropped));
  ASSERT_TRUE(r.success) << failure_reason_name(r.failure);
  EXPECT_EQ(dropped, 1);
  EXPECT_EQ(r.arq.retransmissions, 1u);  // exactly the one dropped challenge frame
  EXPECT_EQ(r.arq.messages_lost, 0u);
}

TEST(ArqSessionTest, TimeoutFailsFastWithinTauBudget) {
  const SessionConfig config = default_session_config();
  const ArqConfig arq;
  const double deadline = config.gesture_window_s + config.tau_s;
  crypto::Drbg seed_rng(3);
  const BitVec seed = seed_rng.random_bits(48);

  // M_A,R (server -> mobile, deadline-bound) never gets through; the sender
  // must stop retrying as soon as a retransmission could no longer arrive
  // inside gesture_window + tau.
  FaultyChannel channel(FaultyChannelConfig{});
  crypto::Drbg m_rng(50), s_rng(60);
  const SessionResult r = protocol::run_key_agreement_arq(
      config, arq, channel, seed, seed, m_rng, s_rng,
      make_data_frame_dropper("server", MessageType::kMsgA, -1));
  EXPECT_FALSE(r.success);
  EXPECT_EQ(r.failure, FailureReason::kTimeout);
  // Fail-fast: well before the retry budget is spent...
  EXPECT_LT(r.arq.retransmissions, arq.max_retransmits);
  // ...and the session clock stops within one timer period of the deadline.
  EXPECT_LE(r.elapsed_s, deadline + arq.max_rto_s);
}

TEST(ArqSessionTest, ExhaustedRetriesReportMessageDropped) {
  const SessionConfig config = default_session_config();
  const ArqConfig arq;
  crypto::Drbg seed_rng(4);
  const BitVec seed = seed_rng.random_bits(48);

  // M_E,M (not deadline-bound) never gets through: the full retry budget is
  // spent, then the message is abandoned.
  FaultyChannel channel(FaultyChannelConfig{});
  crypto::Drbg m_rng(70), s_rng(80);
  const SessionResult r = protocol::run_key_agreement_arq(
      config, arq, channel, seed, seed, m_rng, s_rng,
      make_data_frame_dropper("mobile", MessageType::kMsgE, -1));
  EXPECT_FALSE(r.success);
  EXPECT_EQ(r.failure, FailureReason::kMessageDropped);
  EXPECT_EQ(r.arq.messages_lost, 1u);
  EXPECT_GE(r.arq.retransmissions, static_cast<std::uint32_t>(arq.max_retransmits));
}

TEST(ArqSessionTest, CorruptedFramesAreRejectedByCrc) {
  const SessionConfig config = default_session_config();
  crypto::Drbg seed_rng(5);
  const BitVec seed = seed_rng.random_bits(48);

  LinkFaultConfig f;
  f.corrupt = 1.0;  // every copy corrupted: nothing valid ever arrives
  FaultyChannel channel(FaultyChannelConfig::symmetric(f, 21));
  crypto::Drbg m_rng(90), s_rng(100);
  const SessionResult r =
      protocol::run_key_agreement_arq(config, ArqConfig{}, channel, seed, seed, m_rng, s_rng);
  EXPECT_FALSE(r.success);
  EXPECT_EQ(r.failure, FailureReason::kMessageDropped);
  EXPECT_GT(r.arq.corrupt_frames_dropped, 0u);
}

TEST(ArqSessionTest, SuccessesAlwaysRespectCriticalDeadline) {
  const SessionConfig config = default_session_config();
  const double deadline = config.gesture_window_s + config.tau_s;
  int successes = 0;
  for (std::uint64_t cs = 1; cs <= 20; ++cs) {
    FaultyChannel channel(FaultyChannelConfig::congested(cs));
    crypto::Drbg m_rng(cs * 5 + 1), s_rng(cs * 5 + 2), seed_rng(cs * 5 + 3);
    const BitVec seed = seed_rng.random_bits(48);
    const SessionResult r =
        protocol::run_key_agreement_arq(config, ArqConfig{}, channel, seed, seed, m_rng, s_rng);
    if (!r.success) continue;
    ++successes;
    EXPECT_LE(r.critical_arrival_s, deadline) << "channel seed " << cs;
    EXPECT_EQ(r.mobile_key, r.server_key);
  }
  EXPECT_GT(successes, 0);
}

// --- establish_key_robust orchestrator -----------------------------------

core::DatasetConfig tiny_dataset_config() {
  core::DatasetConfig dc;
  dc.volunteers = 3;
  dc.devices = 2;
  dc.gestures_per_pair = 2;
  dc.windows_per_gesture = 6;
  dc.gesture_active_s = 8.0;
  return dc;
}

/// Process-wide tiny trained system (same pattern as core_test).
core::WaveKeySystem& tiny_system() {
  static core::WaveKeySystem* system = [] {
    const core::WaveKeyDataset dataset = core::WaveKeyDataset::generate(tiny_dataset_config());
    Rng rng(7);
    core::EncoderPair encoders(core::WaveKeyConfig{}.latent_dim, rng);
    core::TrainConfig tc;
    tc.epochs = 8;
    tc.batch_size = 16;
    encoders.train(dataset, tc);
    auto* sys = new core::WaveKeySystem(std::move(encoders), core::WaveKeyConfig{});
    sys->config().eta_security_cap = 0.6;  // tiny model: track its real noise
    sys->calibrate(dataset);
    return sys;
  }();
  return *system;
}

sim::ScenarioConfig robust_scenario() {
  sim::ScenarioConfig sc;
  sc.distance_m = 2.0;
  sc.gesture.active_s = 4.0;
  return sc;
}

core::RobustSessionConfig clean_robust_config() {
  core::RobustSessionConfig rc;
  rc.channel = FaultyChannelConfig{};  // no channel faults unless a test injects them
  return rc;
}

TEST(RobustOrchestratorTest, RecoversFromTransientDropSchedule) {
  core::WaveKeySystem& sys = tiny_system();
  const sim::ScenarioConfig sc = robust_scenario();

  core::RobustSessionConfig rc = clean_robust_config();
  rc.arq.initial_rto_s = 0.005;
  rc.arq.max_retransmits = 2;

  // Self-calibrate the fault schedule: with an adversary dropping every
  // frame, one failed attempt consumes a fixed number of interceptor calls.
  const auto calls_per_failed_attempt = [&](std::uint64_t seed) -> int {
    int calls = 0;
    const Interceptor count_and_drop = [&calls](InFlightMessage&) -> double {
      ++calls;
      return -1.0;
    };
    core::RobustSessionConfig one = rc;
    one.max_attempts = 1;
    const core::RobustOutcome out = sys.establish_key_robust(sc, seed, one, count_and_drop);
    EXPECT_FALSE(out.success);
    return calls;
  };

  bool recovered = false;
  for (std::uint64_t seed = 1; seed <= 30 && !recovered; ++seed) {
    const int per_attempt = calls_per_failed_attempt(seed);
    if (per_attempt == 0) continue;  // pipeline rejected the first recording

    // Injected schedule: the link is dead for the first two attempts, then
    // recovers. The orchestrator must win on attempt 3.
    int budget = 2 * per_attempt;
    const Interceptor transient = [&budget](InFlightMessage&) -> double {
      if (budget <= 0) return 0.0;
      --budget;
      return -1.0;
    };
    core::RobustSessionConfig three = rc;
    three.max_attempts = 3;
    const core::RobustOutcome out = sys.establish_key_robust(sc, seed, three, transient);
    if (!out.success) continue;  // e.g. attempt 3's gesture rejected / mismatch too big

    recovered = true;
    ASSERT_EQ(out.attempts_used, 3);
    ASSERT_EQ(out.trace.size(), 3u);
    // The trace must match the injected schedule.
    EXPECT_EQ(out.trace[0].failure, FailureReason::kMessageDropped);
    EXPECT_FALSE(out.trace[0].success);
    EXPECT_GT(out.trace[0].arq.messages_lost, 0u);
    EXPECT_EQ(out.trace[1].failure, FailureReason::kMessageDropped);
    EXPECT_FALSE(out.trace[1].success);
    EXPECT_TRUE(out.trace[2].success);
    EXPECT_EQ(out.trace[2].failure, FailureReason::kNone);
    EXPECT_EQ(out.trace[2].arq.messages_lost, 0u);
    EXPECT_GT(out.total_elapsed_s, 3 * sys.config().gesture_window_s);  // three re-waves
  }
  EXPECT_TRUE(recovered) << "no seed in range produced the recover-on-attempt-3 schedule";
}

TEST(RobustOrchestratorTest, PermanentFaultFailsEveryAttemptAndTraceRecordsIt) {
  core::WaveKeySystem& sys = tiny_system();
  const sim::ScenarioConfig sc = robust_scenario();
  core::RobustSessionConfig rc = clean_robust_config();
  rc.max_attempts = 2;
  rc.arq.max_retransmits = 2;

  const core::RobustOutcome out = sys.establish_key_robust(
      sc, 42, rc, make_data_frame_dropper("mobile", MessageType::kChallenge, -1));
  EXPECT_FALSE(out.success);
  EXPECT_EQ(out.attempts_used, 2);
  ASSERT_EQ(out.trace.size(), 2u);
  for (const core::AttemptTrace& t : out.trace) {
    EXPECT_FALSE(t.success);
    if (!t.pipelines_ok) continue;
    // Attempts that reached the protocol all died on the dropped challenge.
    EXPECT_EQ(t.failure, FailureReason::kMessageDropped);
    EXPECT_EQ(t.arq.messages_lost, 1u);
    EXPECT_GE(t.arq.retransmissions, 2u);
  }
}

TEST(RobustOrchestratorTest, EtaRelaxationIsMonotonicAndCapped) {
  core::WaveKeySystem& sys = tiny_system();
  const sim::ScenarioConfig sc = robust_scenario();

  // Start from an impossibly strict eta and let the orchestrator relax it.
  const double calibrated_eta = sys.config().eta;
  sys.config().eta = 0.0;
  core::RobustSessionConfig rc = clean_robust_config();
  rc.max_attempts = 4;
  rc.eta_relax_per_attempt = 0.2;

  bool saw_relaxed_recovery = false;
  for (std::uint64_t seed = 1; seed <= 20 && !saw_relaxed_recovery; ++seed) {
    const core::RobustOutcome out = sys.establish_key_robust(sc, seed, rc);
    double prev = -1.0;
    for (const core::AttemptTrace& t : out.trace) {
      EXPECT_GE(t.eta, prev);           // monotone relaxation
      EXPECT_LE(t.eta, sys.config().eta_security_cap + 1e-12);  // never past the cap
      prev = t.eta;
    }
    if (out.success && out.attempts_used > 1 &&
        out.trace.front().failure == FailureReason::kReconciliationFailed)
      saw_relaxed_recovery = true;
  }
  sys.config().eta = calibrated_eta;
  EXPECT_TRUE(saw_relaxed_recovery)
      << "no seed showed a reconciliation failure recovered by eta relaxation";
}

}  // namespace
}  // namespace wavekey
