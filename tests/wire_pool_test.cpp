// Zero-copy wire-path coverage: WireReader span-lifetime safety over
// exactly-sized buffers (ASan-exact extents — any off-by-one read past a
// view's source trips the sanitizer leg), BufferPool lease/return contract
// (double-return aborts), byte-for-byte equivalence of the pooled
// serialize_into/frame_seal path against the owning frame_message path, and
// a 1000-mutation fuzz of the pooled frame/unframe round trip: corrupted
// frames resolve to typed errors only, never to a grant.

#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <random>
#include <vector>

#include "crypto/drbg.hpp"
#include "protocol/wire.hpp"
#include "runtime/buffer_pool.hpp"
#include "server/cluster.hpp"

using namespace wavekey;
using namespace wavekey::server;
using protocol::Bytes;
using protocol::WireError;
using protocol::WireReader;
using protocol::WireWriter;
using runtime::BufferPool;
using runtime::PooledBuffer;

namespace {

SessionKey test_key() {
  SessionKey key{};
  for (std::size_t i = 0; i < key.size(); ++i) key[i] = static_cast<std::uint8_t>(i * 7 + 3);
  return key;
}

std::array<std::uint8_t, kNonceBytes> nonce_from(std::uint64_t v) {
  std::array<std::uint8_t, kNonceBytes> nonce{};
  for (std::size_t i = 0; i < nonce.size(); ++i)
    nonce[i] = static_cast<std::uint8_t>(v >> (8 * i));
  return nonce;
}

/// Copies `bytes` into a heap allocation of EXACTLY that size, so any read
/// one byte past the span is an ASan heap-buffer-overflow, not a silent
/// over-read into vector slack capacity.
struct ExactBuffer {
  std::unique_ptr<std::uint8_t[]> storage;
  std::size_t size = 0;

  explicit ExactBuffer(const Bytes& bytes)
      : storage(new std::uint8_t[bytes.size()]), size(bytes.size()) {
    std::copy(bytes.begin(), bytes.end(), storage.get());
  }
  std::span<const std::uint8_t> span() const { return {storage.get(), size}; }
};

// --- WireReader views -------------------------------------------------------

TEST(WireReaderView, ViewAliasesTheSourceBuffer) {
  WireWriter w;
  w.u32(7);
  w.blob(Bytes{1, 2, 3, 4, 5});
  const Bytes wire = w.take();
  ExactBuffer exact(wire);

  WireReader r(exact.span());
  EXPECT_EQ(r.u32(), 7u);
  const std::span<const std::uint8_t> v = r.view_blob();
  ASSERT_EQ(v.size(), 5u);
  EXPECT_EQ(v.data(), exact.span().data() + 8);  // zero-copy: same storage
  EXPECT_EQ(v[0], 1u);
  EXPECT_EQ(v[4], 5u);
  EXPECT_TRUE(r.done());
}

TEST(WireReaderView, ViewReadsExactExtentsOnly) {
  // The last view ends exactly at the buffer edge; under ASan a one-past
  // read inside view() would abort this test.
  Bytes payload(64);
  for (std::size_t i = 0; i < payload.size(); ++i)
    payload[i] = static_cast<std::uint8_t>(i);
  ExactBuffer exact(payload);

  WireReader r(exact.span());
  const auto head = r.view(1);
  const auto rest = r.view(63);
  EXPECT_EQ(head[0], 0u);
  EXPECT_EQ(rest[62], 63u);
  EXPECT_TRUE(r.done());
  EXPECT_THROW(r.view(1), WireError);  // past the end: typed, no read
}

TEST(WireReaderView, OversizedViewThrowsWithoutTouchingMemory) {
  Bytes small{1, 2, 3};
  ExactBuffer exact(small);
  WireReader r(exact.span());
  EXPECT_THROW(r.view(4), WireError);
  EXPECT_THROW(r.view_blob(), WireError);  // no 4-byte length prefix either
}

TEST(WireReaderView, BlobLengthBeyondBufferIsTyped) {
  WireWriter w;
  w.u32(1000);  // claims 1000 bytes; only 2 follow
  w.u8(0xAA);
  w.u8(0xBB);
  const Bytes wire = w.take();
  ExactBuffer exact(wire);
  WireReader r(exact.span());
  EXPECT_THROW(r.view_blob(), WireError);
}

TEST(WireReaderView, OwningAndViewFormsAgree) {
  WireWriter w;
  w.blob(Bytes{9, 8, 7});
  const Bytes wire = w.take();

  WireReader owning(wire);
  WireReader viewing(wire);
  const Bytes copied = owning.blob();
  const auto viewed = viewing.view_blob();
  ASSERT_EQ(copied.size(), viewed.size());
  EXPECT_TRUE(std::equal(copied.begin(), copied.end(), viewed.begin()));
}

// --- external-sink writer ---------------------------------------------------

TEST(WireWriterSink, SinkModeAppendsAndForbidsTake) {
  Bytes sink{0xFF};  // pre-existing content must be preserved
  WireWriter w(&sink);
  w.u8(1);
  w.u32(0x04030201u);
  ASSERT_EQ(sink.size(), 6u);
  EXPECT_EQ(sink[0], 0xFFu);
  EXPECT_EQ(sink[1], 1u);
  EXPECT_EQ(sink[2], 0x01u);
  EXPECT_THROW(w.take(), WireError);
}

TEST(WireWriterSink, SinkAndOwnedProduceIdenticalBytes) {
  const Bytes payload{1, 2, 3, 4, 5, 6, 7};
  WireWriter owned;
  owned.u8(42);
  owned.u64(0x1122334455667788ull);
  owned.blob(payload);
  Bytes sink;
  WireWriter sunk(&sink);
  sunk.u8(42);
  sunk.u64(0x1122334455667788ull);
  sunk.blob(payload);
  EXPECT_EQ(owned.take(), sink);
}

// --- BufferPool contract ----------------------------------------------------

TEST(BufferPoolContract, DoubleReleaseAborts) {
  BufferPool pool(32);
  EXPECT_DEATH(
      {
        PooledBuffer buf = pool.lease();
        buf.release();
        buf.release();  // second return of the same lease: abort
      },
      "");
}

TEST(BufferPoolContract, ReleaseOfDefaultConstructedAborts) {
  EXPECT_DEATH(
      {
        PooledBuffer buf;
        buf.release();
      },
      "");
}

TEST(BufferPoolContract, ExplicitReleaseThenDestructionIsClean) {
  BufferPool pool(32);
  {
    PooledBuffer buf = pool.lease();
    buf.bytes().push_back(1);
    buf.release();
    // dtor of a released lease must be a no-op, not a second return
  }
  const auto stats = pool.stats();
  EXPECT_EQ(stats.leases, 1u);
  EXPECT_EQ(stats.returns, 1u);
  EXPECT_EQ(stats.in_use, 0u);
}

TEST(BufferPoolContract, MoveTransfersTheLease) {
  BufferPool pool(32);
  {
    PooledBuffer a = pool.lease();
    a.bytes().push_back(7);
    PooledBuffer b = std::move(a);
    EXPECT_FALSE(a.valid());
    EXPECT_TRUE(b.valid());
    EXPECT_EQ(b.bytes().size(), 1u);
  }
  EXPECT_EQ(pool.stats().returns, 1u);  // exactly one return despite the move
}

// --- pooled framing equivalence --------------------------------------------

TEST(PooledFraming, FrameSealMatchesFrameMessage) {
  crypto::Drbg rng(0x5EA1);
  BufferPool pool(128);
  for (int round = 0; round < 50; ++round) {
    Bytes payload(static_cast<std::size_t>(round * 7 % 96));
    rng.random_bytes(payload);

    const Bytes framed_owning = frame_message(payload);
    PooledBuffer lease = pool.lease();
    lease.bytes() = payload;  // same content via the in-place path
    frame_seal(lease.bytes());
    EXPECT_EQ(lease.bytes(), framed_owning);

    const auto viewed = unframe_view(lease.bytes());
    ASSERT_TRUE(viewed.has_value());
    EXPECT_EQ(viewed->data(), lease.bytes().data());  // aliases, no copy
    EXPECT_TRUE(std::equal(payload.begin(), payload.end(), viewed->begin()));
  }
}

TEST(PooledFraming, SerializeIntoMatchesSerialize) {
  ClusterRequest req;
  req.request_id = 0xDEAD0001;
  req.tenant_id = 7;
  req.attempt = 3;
  req.inner = Bytes{1, 2, 3, 4};
  Bytes sink;
  WireWriter w(&sink);
  req.serialize_into(w);
  EXPECT_EQ(sink, req.serialize());

  ClusterResponse resp;
  resp.request_id = 0xDEAD0001;
  resp.status = AccessStatus::kGranted;
  resp.grant_wire = Bytes{9, 9, 9};
  Bytes rsink;
  WireWriter rw(&rsink);
  resp.serialize_into(rw);
  EXPECT_EQ(rsink, resp.serialize());

  // View parses recover the owning parses' fields from the same bytes.
  const ClusterRequestView rv = ClusterRequestView::parse(sink);
  EXPECT_EQ(rv.request_id, req.request_id);
  EXPECT_EQ(rv.tenant_id, req.tenant_id);
  EXPECT_EQ(rv.attempt, req.attempt);
  EXPECT_TRUE(std::equal(req.inner.begin(), req.inner.end(), rv.inner.begin()));
  EXPECT_EQ(rv.inner.data(), sink.data() + (sink.size() - req.inner.size()));

  const ClusterResponseView pv = ClusterResponseView::parse(rsink);
  EXPECT_EQ(pv.request_id, resp.request_id);
  EXPECT_EQ(pv.status, resp.status);
  EXPECT_TRUE(std::equal(resp.grant_wire.begin(), resp.grant_wire.end(), pv.grant_wire.begin()));
}

// --- 1000-mutation fuzz of the pooled frame/unframe round trip --------------

class PooledFrameFuzz : public ::testing::Test {
 protected:
  void SetUp() override {
    ClusterConfig config;
    config.nodes = 1;
    config.partitions = 8;
    cluster = std::make_unique<VaultCluster>(config);
    key = test_key();
    ASSERT_TRUE(cluster->install(kSid, key));
    inner = make_access_request(kSid, 0, 2, nonce_from(2), Bytes{0xD0}, key).serialize();
  }

  /// Serializes the envelope for `request_id` into the pooled lease and
  /// returns the payload size (pre-seal).
  std::size_t build_payload(PooledBuffer& lease, std::uint64_t request_id) {
    ClusterRequest envelope;
    envelope.request_id = request_id;
    envelope.tenant_id = 1;
    envelope.attempt = 0;
    envelope.inner = inner;
    WireWriter w(&lease.bytes());
    envelope.serialize_into(w);
    return lease.bytes().size();
  }

  static constexpr std::uint64_t kSid = 0x51D0001;
  std::unique_ptr<VaultCluster> cluster;
  SessionKey key;
  Bytes inner;
  BufferPool pool{256};
};

TEST_F(PooledFrameFuzz, BaselineUnmutatedFrameGrants) {
  // Sanity for the fuzz below: the unmutated round trip DOES grant, so a
  // mutated frame slipping through to kGranted would be caught, not vacuous.
  PooledBuffer lease = pool.lease();
  build_payload(lease, 1);
  frame_seal(lease.bytes());
  const auto payload = unframe_view(lease.bytes());
  ASSERT_TRUE(payload.has_value());
  const ClusterResponse resp = cluster->execute(ClusterRequestView::parse(*payload));
  EXPECT_EQ(resp.status, AccessStatus::kGranted);
}

TEST_F(PooledFrameFuzz, PostSealMutationsAreAllDroppedByTheCrc) {
  // Channel noise model: one flipped byte anywhere in a sealed frame. A
  // single-byte flip can never keep CRC32 consistent, so all 1000 mutants
  // must be dropped at unframe — the typed "corrupt" outcome.
  std::mt19937_64 rng(0xF00D);
  int dropped = 0;
  for (int trial = 0; trial < 1000; ++trial) {
    PooledBuffer lease = pool.lease();
    build_payload(lease, 100 + static_cast<std::uint64_t>(trial));
    frame_seal(lease.bytes());
    Bytes& frame = lease.bytes();
    const std::size_t pos = rng() % frame.size();
    const std::uint8_t flip = static_cast<std::uint8_t>(1 + rng() % 255);
    frame[pos] ^= flip;
    if (!unframe_view(frame).has_value()) ++dropped;
  }
  EXPECT_EQ(dropped, 1000);
  // Pooled path at steady state: 1000 leases, one real allocation.
  const auto stats = pool.stats();
  EXPECT_EQ(stats.leases, 1000u);
  EXPECT_EQ(stats.allocations, 1u);
  EXPECT_EQ(stats.in_use, 0u);
}

TEST_F(PooledFrameFuzz, PreSealMutationsResolveTypedAndNeverGrant) {
  // Attacker model: the MAC-protected inner request (or its length framing)
  // is tampered with BEFORE the frame is sealed, so the CRC is consistent
  // and the corruption must be caught by parse (WireError) or by the vault
  // (kBadMac / kUnknownSession / ...). The envelope header fields
  // (request_id/tenant/attempt) are idempotency metadata, not authenticated
  // content, so the fuzz targets the authenticated region. Every mutant
  // uses a fresh request_id and the never-granted counter 2: a mutant that
  // somehow kept the MAC valid WOULD grant and fail the test.
  constexpr std::size_t kInnerFramingOffset = 1 + 8 + 8 + 4;  // tag+id+tenant+attempt
  std::mt19937_64 rng(0xBEEF);
  int wire_errors = 0;
  int vault_rejects = 0;
  int grants = 0;
  for (int trial = 0; trial < 1000; ++trial) {
    PooledBuffer lease = pool.lease();
    const std::size_t payload_size =
        build_payload(lease, 5000 + static_cast<std::uint64_t>(trial));
    Bytes& frame = lease.bytes();
    const std::size_t span = payload_size - kInnerFramingOffset;  // length prefix + inner
    const std::size_t pos = kInnerFramingOffset + rng() % span;
    const std::uint8_t flip = static_cast<std::uint8_t>(1 + rng() % 255);
    frame[pos] ^= flip;
    frame_seal(frame);

    const auto payload = unframe_view(frame);
    ASSERT_TRUE(payload.has_value());  // CRC is consistent by construction
    try {
      const ClusterRequestView view = ClusterRequestView::parse(*payload);
      AccessRequest::parse(view.inner);  // may also throw: typed
      const ClusterResponse resp = cluster->execute(view);
      if (resp.status == AccessStatus::kGranted) {
        ++grants;
      } else {
        ++vault_rejects;
      }
    } catch (const WireError&) {
      ++wire_errors;
    }
  }
  EXPECT_EQ(grants, 0);
  EXPECT_EQ(wire_errors + vault_rejects, 1000);
  EXPECT_GT(wire_errors, 0);   // some mutants break framing ...
  EXPECT_GT(vault_rejects, 0); // ... and some survive to the MAC check
  EXPECT_EQ(pool.stats().in_use, 0u);
}

}  // namespace
