// Tests for the cross-session batched inference stage (DESIGN.md §11):
// runtime::MicroBatcher dispatch/drain edge cases and exactly-once
// resolution under concurrency (the TSan-leg soak), the nn::BatchedInference
// lowering (batch-of-1 bit-identity, cross-batch tolerance, zero
// steady-state allocations), and core::BatchedEncoderService /
// core::PairingEngine integration including the hold-time -> virtual-clock
// accounting.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cmath>
#include <cstddef>
#include <optional>
#include <span>
#include <stdexcept>
#include <thread>
#include <vector>

#include "core/batched_encoder.hpp"
#include "core/encoders.hpp"
#include "core/pairing_engine.hpp"
#include "core/seed_quantizer.hpp"
#include "nn/batched_infer.hpp"
#include "nn/tensor.hpp"
#include "numeric/rng.hpp"
#include "runtime/micro_batcher.hpp"

namespace wavekey {
namespace {

using runtime::MicroBatcher;
using runtime::MicroBatcherConfig;
using runtime::MicroBatcherStats;

using IntBatcher = MicroBatcher<int, int>;

IntBatcher::FlushFn increment_flush() {
  return [](std::vector<int>& items) {
    std::vector<int> out;
    out.reserve(items.size());
    for (int v : items) out.push_back(v + 1);
    return out;
  };
}

nn::Tensor random_input(const std::vector<std::size_t>& shape, Rng& rng) {
  nn::Tensor t(shape);
  for (std::size_t i = 0; i < t.size(); ++i) t[i] = static_cast<float>(rng.normal());
  return t;
}

// ---------------------------------------------------------------------------
// MicroBatcher dispatch policy
// ---------------------------------------------------------------------------

TEST(MicroBatcher, FullBatchDispatchesImmediately) {
  // Hold deadline far away: only the size trigger can dispatch.
  IntBatcher batcher({/*max_batch=*/4, /*max_hold_s=*/10.0}, increment_flush());

  std::vector<std::thread> threads;
  std::vector<IntBatcher::Ticket> tickets(4);
  for (int i = 0; i < 4; ++i)
    threads.emplace_back([&, i] { tickets[i] = *batcher.submit(10 * i); });
  for (auto& t : threads) t.join();

  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(tickets[i].value, 10 * i + 1);
    EXPECT_EQ(tickets[i].batch_size, 4u);
    EXPECT_FALSE(tickets[i].deadline_dispatch);
  }
  const MicroBatcherStats stats = batcher.stats();
  EXPECT_EQ(stats.items, 4u);
  EXPECT_EQ(stats.batches, 1u);
  EXPECT_EQ(stats.full_dispatches, 1u);
  EXPECT_EQ(stats.deadline_dispatches, 0u);
}

TEST(MicroBatcher, DeadlineFiresPartialBatch) {
  // A lone submitter must not wait for a batch that will never fill: the
  // max-hold deadline dispatches a partial batch (here, of one).
  IntBatcher batcher({/*max_batch=*/64, /*max_hold_s=*/2e-3}, increment_flush());

  const auto t0 = std::chrono::steady_clock::now();
  const auto ticket = batcher.submit(7);
  const double waited = std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();

  ASSERT_TRUE(ticket.has_value());
  EXPECT_EQ(ticket->value, 8);
  EXPECT_EQ(ticket->batch_size, 1u);
  EXPECT_TRUE(ticket->deadline_dispatch);
  EXPECT_GE(waited, 1e-3);  // actually held until (about) the deadline
  EXPECT_GE(ticket->hold_s, 1e-3);
  EXPECT_EQ(batcher.stats().deadline_dispatches, 1u);
}

TEST(MicroBatcher, FillRacingDeadlineElectsExactlyOneLeader) {
  // Scan the race window where the batch fills at ~the same instant the
  // first submitter's deadline fires: every iteration both items must
  // resolve exactly once, whatever the interleaving.
  for (int iter = 0; iter < 50; ++iter) {
    IntBatcher batcher({/*max_batch=*/2, /*max_hold_s=*/1e-3}, increment_flush());
    std::optional<IntBatcher::Ticket> first;
    std::thread waiter([&] { first = batcher.submit(100); });
    // Land the second submit around the deadline, sweeping the window.
    std::this_thread::sleep_for(std::chrono::microseconds(900 + 10 * iter));
    const auto second = batcher.submit(200);
    waiter.join();

    ASSERT_TRUE(first.has_value());
    EXPECT_EQ(first->value, 101);
    if (second.has_value()) {
      EXPECT_EQ(second->value, 201);
    }
    const MicroBatcherStats stats = batcher.stats();
    EXPECT_EQ(stats.items, 1u + (second.has_value() ? 1u : 0u));
    EXPECT_EQ(stats.batches, stats.full_dispatches + stats.deadline_dispatches +
                                 stats.drain_dispatches);
  }
}

TEST(MicroBatcher, CloseDrainsHeldItemsWithoutLoss) {
  IntBatcher batcher({/*max_batch=*/8, /*max_hold_s=*/10.0}, increment_flush());

  std::vector<std::thread> threads;
  std::vector<std::optional<IntBatcher::Ticket>> tickets(3);
  std::atomic<int> submitted{0};
  for (int i = 0; i < 3; ++i)
    threads.emplace_back([&, i] {
      submitted.fetch_add(1);
      tickets[i] = batcher.submit(i);
    });
  while (submitted.load() < 3) std::this_thread::yield();
  std::this_thread::sleep_for(std::chrono::milliseconds(50));

  batcher.close();  // the closer leads the final partial batch
  for (auto& t : threads) t.join();

  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(tickets[i].has_value()) << "held item " << i << " was lost at shutdown";
    EXPECT_EQ(tickets[i]->value, i + 1);
    EXPECT_EQ(tickets[i]->batch_size, 3u);
  }
  EXPECT_EQ(batcher.stats().drain_dispatches, 1u);
  EXPECT_TRUE(batcher.closed());
  EXPECT_FALSE(batcher.submit(99).has_value());  // fails fast after close
}

TEST(MicroBatcher, FlushFailureFailsEveryBatchMember) {
  MicroBatcher<int, int> throwing({/*max_batch=*/2, /*max_hold_s=*/10.0},
                                  [](std::vector<int>&) -> std::vector<int> {
                                    throw std::runtime_error("flush exploded");
                                  });
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (int i = 0; i < 2; ++i)
    threads.emplace_back([&] {
      EXPECT_THROW((void)throwing.submit(1), std::runtime_error);
      failures.fetch_add(1);
    });
  for (auto& t : threads) t.join();
  EXPECT_EQ(failures.load(), 2);  // both members saw the error, no hang

  MicroBatcher<int, int> short_result({/*max_batch=*/1, /*max_hold_s=*/10.0},
                                      [](std::vector<int>&) { return std::vector<int>{}; });
  EXPECT_THROW((void)short_result.submit(1), std::runtime_error);
}

TEST(MicroBatcher, ConcurrentSoakResolvesEveryItemExactlyOnce) {
  // TSan-leg soak: many producers, size- and deadline-dispatches mixed,
  // then a drain. Every submitted item must come back exactly once with its
  // own result (the flush function maps v -> v + 1, so result-1 identifies
  // the item).
  constexpr int kThreads = 8;
  constexpr int kPerThread = 200;
  IntBatcher batcher({/*max_batch=*/5, /*max_hold_s=*/200e-6}, increment_flush());

  std::vector<std::thread> threads;
  std::vector<std::vector<int>> results(kThreads);
  for (int t = 0; t < kThreads; ++t)
    threads.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; ++i) {
        const int item = t * kPerThread + i;
        const auto ticket = batcher.submit(item);
        ASSERT_TRUE(ticket.has_value());
        ASSERT_GE(ticket->batch_size, 1u);
        ASSERT_LE(ticket->batch_size, 5u);
        results[t].push_back(ticket->value);
      }
    });
  for (auto& t : threads) t.join();
  batcher.close();

  for (int t = 0; t < kThreads; ++t) {
    ASSERT_EQ(results[t].size(), static_cast<std::size_t>(kPerThread));
    for (int i = 0; i < kPerThread; ++i)
      EXPECT_EQ(results[t][i], t * kPerThread + i + 1) << "item resolved with wrong result";
  }
  const MicroBatcherStats stats = batcher.stats();
  EXPECT_EQ(stats.items, static_cast<std::uint64_t>(kThreads) * kPerThread);
  EXPECT_GE(stats.batches, stats.items / 5);
  EXPECT_GT(stats.max_hold_s, 0.0);
}

// ---------------------------------------------------------------------------
// nn::BatchedInference lowering
// ---------------------------------------------------------------------------

TEST(BatchedDenseKernel, Avx2MatchesScalarWithinTolerance) {
  Rng rng(91);
  const std::size_t m = 13, k = 37, n_pad = 16;  // edge rows + two groups
  std::vector<float> w(m * k), x(k * n_pad), bias(m), y_scalar(m * n_pad), y_avx2(m * n_pad);
  for (auto& v : w) v = static_cast<float>(rng.normal());
  for (auto& v : x) v = static_cast<float>(rng.normal());
  for (auto& v : bias) v = static_cast<float>(rng.normal());

  nn::detail::batched_dense_scalar(m, k, n_pad, w.data(), x.data(), bias.data(), y_scalar.data());
  nn::detail::batched_dense_avx2(m, k, n_pad, w.data(), x.data(), bias.data(), y_avx2.data());

  for (std::size_t i = 0; i < y_scalar.size(); ++i) {
    // FMA + different accumulation order: kernel-equivalence tolerance, not
    // bit-identity (same contract as the gemm sweeps in kernel_equiv_test).
    const double rel = std::fabs(y_scalar[i] - y_avx2[i]) /
                       std::max(1e-3, static_cast<double>(std::fabs(y_scalar[i])));
    EXPECT_LT(rel, 1e-4) << "element " << i;
  }
}

TEST(BatchedDenseKernel, StridedCopiesMatchScalarGather) {
  Rng rng(92);
  for (const std::size_t stride : {2u, 4u}) {
    for (const std::size_t n : {0u, 1u, 7u, 8u, 9u, 17u, 100u}) {
      // Exactly the guaranteed extent src[0 .. stride*(n-1)]: an OOB read in
      // the vector body would be caught by ASan here.
      std::vector<float> src(n == 0 ? 0 : stride * (n - 1) + 1);
      for (auto& v : src) v = static_cast<float>(rng.normal());
      std::vector<float> dst(n, -1.0f);
      if (stride == 2)
        nn::detail::copy_stride2_avx2(dst.data(), src.data(), n);
      else
        nn::detail::copy_stride4_avx2(dst.data(), src.data(), n);
      for (std::size_t i = 0; i < n; ++i)
        EXPECT_EQ(dst[i], src[stride * i]) << "stride=" << stride << " n=" << n << " i=" << i;
    }
  }
}

TEST(BatchedDenseKernel, FlattenTransposeMatchesScalarGather) {
  Rng rng(94);
  for (const std::size_t b : {1u, 2u, 5u, 8u, 9u, 16u, 19u}) {
    const std::size_t n_pad = (b + 7) / 8 * 8;
    for (const std::size_t len : {1u, 7u, 8u, 9u, 50u, 200u}) {
      std::vector<float> src(b * len);
      for (auto& v : src) v = static_cast<float>(rng.normal());
      // Poisoned so a skipped pad column shows up as -1, not a stale zero.
      std::vector<float> dst(len * n_pad, -1.0f);
      nn::detail::flatten_transpose_avx2(src.data(), b, len, n_pad, dst.data());
      for (std::size_t t = 0; t < len; ++t)
        for (std::size_t s = 0; s < n_pad; ++s) {
          const float want = s < b ? src[s * len + t] : 0.0f;
          EXPECT_EQ(dst[t * n_pad + s], want) << "b=" << b << " len=" << len << " t=" << t
                                              << " s=" << s;
        }
    }
  }
}

TEST(BatchedInference, BatchOfOneIsBitIdenticalToSerialPath) {
  Rng rng(93);
  core::EncoderPair encoders(12, rng);
  nn::BatchedInference imu_infer(encoders.imu_encoder(), 3, 200);
  nn::BatchedInference rf_infer(encoders.rfid_encoder(), 2, 400);

  const nn::Tensor imu = random_input({3, 200}, rng);
  const nn::Tensor rf = random_input({2, 400}, rng);
  const std::vector<double> imu_serial = encoders.imu_features(imu);
  const std::vector<double> rf_serial = encoders.rfid_features(rf);

  const nn::Tensor* imu_ptr = &imu;
  const nn::Tensor* rf_ptr = &rf;
  const nn::Tensor imu_out = imu_infer.forward({&imu_ptr, 1});
  const nn::Tensor rf_out = rf_infer.forward({&rf_ptr, 1});

  ASSERT_EQ(imu_out.size(), 12u);
  ASSERT_EQ(rf_out.size(), 12u);
  for (std::size_t f = 0; f < 12; ++f) {
    EXPECT_EQ(static_cast<double>(imu_out.raw()[f]), imu_serial[f]) << "IMU latent " << f;
    EXPECT_EQ(static_cast<double>(rf_out.raw()[f]), rf_serial[f]) << "RF latent " << f;
  }
}

TEST(BatchedInference, BatchMatchesSerialWithinTolerance) {
  // Batch > 1 uses different (but fixed) reduction orders, so the contract
  // is the kernel-equivalence tolerance, not bit-identity (DESIGN.md §11.4).
  Rng rng(94);
  core::EncoderPair encoders(12, rng);
  nn::BatchedInference imu_infer(encoders.imu_encoder(), 3, 200);

  constexpr std::size_t kBatch = 8;
  std::vector<nn::Tensor> inputs;
  std::vector<const nn::Tensor*> ptrs;
  for (std::size_t s = 0; s < kBatch; ++s) inputs.push_back(random_input({3, 200}, rng));
  for (const auto& t : inputs) ptrs.push_back(&t);

  const nn::Tensor batched = imu_infer.forward({ptrs.data(), ptrs.size()});
  ASSERT_EQ(batched.size(), kBatch * 12u);
  for (std::size_t s = 0; s < kBatch; ++s) {
    const std::vector<double> serial = encoders.imu_features(inputs[s]);
    for (std::size_t f = 0; f < 12; ++f) {
      const double got = batched.raw()[s * 12 + f];
      const double rel = std::fabs(got - serial[f]) / std::max(1e-4, std::fabs(serial[f]));
      EXPECT_LT(rel, 1e-3) << "sample " << s << " latent " << f;
    }
  }
}

TEST(BatchedInference, RejectsUnsupportedArchitectureAndBadShapes) {
  Rng rng(95);
  core::EncoderPair encoders(12, rng);
  // The decoder is a Reshape + deconv stack: not batchable by this lowering.
  EXPECT_THROW(nn::BatchedInference(encoders.decoder(), 12, 1), std::invalid_argument);
  // Channel mismatch against the IMU net.
  EXPECT_THROW(nn::BatchedInference(encoders.imu_encoder(), 2, 200), std::invalid_argument);

  nn::BatchedInference infer(encoders.imu_encoder(), 3, 200);
  const nn::Tensor wrong = random_input({2, 400}, rng);
  const nn::Tensor* ptr = &wrong;
  EXPECT_THROW((void)infer.forward({&ptr, 1}), std::invalid_argument);
  EXPECT_THROW((void)infer.forward(std::span<const nn::Tensor* const>{}), std::invalid_argument);
}

TEST(BatchedInference, ZeroAllocationSteadyState) {
  // The batched forward reuses the thread-local tensor arena across calls:
  // after warmup, the heap-allocation counter must stop moving.
  Rng rng(96);
  core::EncoderPair encoders(12, rng);
  nn::BatchedInference infer(encoders.imu_encoder(), 3, 200);

  std::vector<nn::Tensor> inputs;
  std::vector<const nn::Tensor*> ptrs;
  for (std::size_t s = 0; s < 8; ++s) inputs.push_back(random_input({3, 200}, rng));
  for (const auto& t : inputs) ptrs.push_back(&t);
  const std::span<const nn::Tensor* const> span{ptrs.data(), ptrs.size()};

  for (int warmup = 0; warmup < 4; ++warmup) (void)infer.forward(span);

  const nn::TensorArenaStats before = nn::tensor_arena_stats();
  for (int i = 0; i < 16; ++i) (void)infer.forward(span);
  const nn::TensorArenaStats after = nn::tensor_arena_stats();

  EXPECT_EQ(after.heap_allocations, before.heap_allocations)
      << "steady-state batched inference hit the heap";
}

// ---------------------------------------------------------------------------
// core::BatchedEncoderService + PairingEngine integration
// ---------------------------------------------------------------------------

TEST(BatchedEncoderService, BatchOfOneMatchesSerialEncodersBitExactly) {
  Rng rng(97);
  core::EncoderPair encoders(12, rng);
  core::BatchedEncoderConfig config;
  config.max_batch = 1;  // every encode dispatches alone -> serial path
  core::BatchedEncoderService service(encoders, config);

  const nn::Tensor imu = random_input({3, 200}, rng);
  const nn::Tensor rf = random_input({2, 400}, rng);
  const core::EncodedLatents enc = service.encode(imu, rf);

  EXPECT_EQ(enc.batch_size, 1u);
  EXPECT_EQ(enc.mobile, encoders.imu_features(imu));
  EXPECT_EQ(enc.server, encoders.rfid_features(rf));
  EXPECT_GE(enc.hold_s, 0.0);
  EXPECT_GT(enc.imu_forward_s + enc.rf_forward_s, 0.0);
}

TEST(BatchedEncoderService, CoalescesConcurrentSessions) {
  Rng rng(98);
  core::EncoderPair encoders(12, rng);
  core::BatchedEncoderConfig config;
  config.max_batch = 4;
  config.max_hold_s = 1.0;  // force the size trigger
  core::BatchedEncoderService service(encoders, config);

  std::vector<nn::Tensor> imus, rfs;
  for (int s = 0; s < 4; ++s) {
    imus.push_back(random_input({3, 200}, rng));
    rfs.push_back(random_input({2, 400}, rng));
  }

  std::vector<std::thread> threads;
  std::vector<core::EncodedLatents> results(4);
  for (int s = 0; s < 4; ++s)
    threads.emplace_back([&, s] { results[s] = service.encode(imus[s], rfs[s]); });
  for (auto& t : threads) t.join();

  for (int s = 0; s < 4; ++s) {
    EXPECT_EQ(results[s].batch_size, 4u);
    const std::vector<double> imu_serial = encoders.imu_features(imus[s]);
    ASSERT_EQ(results[s].mobile.size(), imu_serial.size());
    for (std::size_t f = 0; f < imu_serial.size(); ++f) {
      const double rel = std::fabs(results[s].mobile[f] - imu_serial[f]) /
                         std::max(1e-4, std::fabs(imu_serial[f]));
      EXPECT_LT(rel, 1e-3) << "session " << s << " latent " << f;
    }
  }
  EXPECT_EQ(service.stats().full_dispatches, 1u);
}

TEST(BatchedEncoderService, CloseDrainsHeldSessionsAndFailsFutureEncodes) {
  Rng rng(99);
  core::EncoderPair encoders(12, rng);
  core::BatchedEncoderConfig config;
  config.max_batch = 16;
  config.max_hold_s = 10.0;  // only close() can dispatch this batch
  core::BatchedEncoderService service(encoders, config);

  const nn::Tensor imu = random_input({3, 200}, rng);
  const nn::Tensor rf = random_input({2, 400}, rng);

  std::vector<std::thread> threads;
  std::vector<core::EncodedLatents> results(3);
  std::atomic<int> started{0};
  for (int s = 0; s < 3; ++s)
    threads.emplace_back([&, s] {
      started.fetch_add(1);
      results[s] = service.encode(imu, rf);
    });
  while (started.load() < 3) std::this_thread::yield();
  std::this_thread::sleep_for(std::chrono::milliseconds(50));

  service.close();
  for (auto& t : threads) t.join();

  for (int s = 0; s < 3; ++s) {
    EXPECT_EQ(results[s].batch_size, 3u) << "held session " << s << " lost at shutdown";
    EXPECT_EQ(results[s].mobile.size(), 12u);
  }
  EXPECT_EQ(service.stats().drain_dispatches, 1u);
  EXPECT_THROW((void)service.encode(imu, rf), std::runtime_error);
}

TEST(PairingEngine, BatchedEncoderServiceIntegration) {
  // End-to-end: raw sensor tensors -> coalesced encoders -> quantize -> key
  // agreement, with the synthetic-residual knob making seeds reconcilable
  // for an untrained model. Every session must succeed without tau
  // violations and report its encode accounting.
  Rng rng(100);
  core::EncoderPair encoders(12, rng);
  core::BatchedEncoderConfig enc_config;
  enc_config.max_batch = 4;
  enc_config.max_hold_s = 500e-6;
  core::BatchedEncoderService service(encoders, enc_config);

  const core::WaveKeyConfig wk_config;
  const core::SeedQuantizer quantizer = core::SeedQuantizer::from_normal(wk_config);

  core::PairingEngineConfig engine_config;
  engine_config.threads = 4;
  engine_config.encoder_service = &service;
  engine_config.synthetic_residual_sigma = 0.03;
  core::PairingEngine engine(quantizer, engine_config);

  constexpr std::uint64_t kSessions = 32;
  for (std::uint64_t i = 0; i < kSessions; ++i) {
    core::PairingRequest request;
    request.id = i;
    request.rng_seed = 0xBA7C4 + i;
    request.imu_input = random_input({3, 200}, rng);
    request.rf_input = random_input({2, 400}, rng);
    ASSERT_TRUE(engine.submit(std::move(request)));
  }
  const std::vector<core::PairingReport> reports = engine.finish();

  ASSERT_EQ(reports.size(), kSessions);
  std::size_t successes = 0, batched = 0;
  for (const auto& report : reports) {
    EXPECT_TRUE(report.error.empty()) << report.error;
    EXPECT_FALSE(report.tau_violation);
    EXPECT_GE(report.encode_batch, 1u);  // every session went through the batcher
    EXPECT_GE(report.encode_hold_s, 0.0);
    EXPECT_GT(report.encode_s, 0.0);
    if (report.success) ++successes;
    if (report.encode_batch > 1) ++batched;
  }
  // Synthetic residual sigma=0.03 under the standard-normal quantizer keeps
  // the mismatch well inside eta: expect (near-)universal success.
  EXPECT_GE(successes, kSessions - 2);
  // With 4 workers feeding a max_batch=4 stage, at least some sessions must
  // actually coalesce.
  EXPECT_GT(batched, 0u);
  EXPECT_GE(service.stats().items, kSessions);
}

}  // namespace
}  // namespace wavekey
