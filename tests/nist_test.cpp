// Tests of the NIST SP 800-22 implementations: published worked examples
// from the specification where available, plus sanity properties (random
// sequences pass, pathological sequences fail).

#include <gtest/gtest.h>

#include "crypto/drbg.hpp"
#include "nist/nist.hpp"
#include "numeric/rng.hpp"

namespace wavekey::nist {
namespace {

BitVec random_bits(std::size_t n, std::uint64_t seed) {
  crypto::Drbg d(seed);
  return d.random_bits(n);
}

BitVec alternating(std::size_t n) {
  BitVec v(n);
  for (std::size_t i = 0; i < n; i += 2) v.set(i, true);
  return v;
}

TEST(MonobitTest, SpecWorkedExample) {
  // SP 800-22 section 2.1.8: epsilon = 1011010101, P-value = 0.527089.
  const BitVec bits = BitVec::from_string("1011010101");
  EXPECT_NEAR(monobit_test(bits), 0.527089, 1e-5);
}

TEST(MonobitTest, AllOnesFails) {
  BitVec v(1000);
  for (std::size_t i = 0; i < 1000; ++i) v.set(i, true);
  EXPECT_LT(monobit_test(v), 1e-10);
}

TEST(MonobitTest, RandomPasses) {
  EXPECT_GT(monobit_test(random_bits(50000, 1)), 0.01);
}

TEST(BlockFrequencyTest, SpecWorkedExample) {
  // SP 800-22 section 2.2.8: epsilon = 0110011010, M = 3, P-value = 0.801252.
  const BitVec bits = BitVec::from_string("0110011010");
  EXPECT_NEAR(block_frequency_test(bits, 3), 0.801252, 1e-5);
}

TEST(BlockFrequencyTest, RandomPassesBiasedFails) {
  EXPECT_GT(block_frequency_test(random_bits(50000, 2)), 0.01);
  // Blocks of all-ones / all-zeros alternating: each block is maximally
  // biased even though the global balance is perfect.
  BitVec v(4096);
  for (std::size_t i = 0; i < 4096; ++i) v.set(i, (i / 128) % 2 == 0);
  EXPECT_LT(block_frequency_test(v, 128), 1e-10);
}

TEST(BlockFrequencyTest, TooShortThrows) {
  EXPECT_THROW(block_frequency_test(BitVec(10), 128), std::invalid_argument);
}

TEST(RunsTest, SpecWorkedExample) {
  // SP 800-22 section 2.3.8: epsilon = 1001101011, P-value = 0.147232.
  const BitVec bits = BitVec::from_string("1001101011");
  EXPECT_NEAR(runs_test(bits), 0.147232, 1e-5);
}

TEST(RunsTest, RandomPasses) { EXPECT_GT(runs_test(random_bits(51200, 3)), 0.01); }

TEST(RunsTest, AlternatingFails) {
  // Perfect alternation has far too many runs.
  EXPECT_LT(runs_test(alternating(10000)), 1e-10);
}

TEST(RunsTest, FrequencyPrerequisiteGates) {
  // A heavily biased sequence returns 0 without computing runs statistics.
  BitVec v(1000);
  for (std::size_t i = 0; i < 900; ++i) v.set(i, true);
  EXPECT_EQ(runs_test(v), 0.0);
}

TEST(LongestRunTest, RandomPassesStructuredFails) {
  EXPECT_GT(longest_run_test(random_bits(100000, 4)), 0.01);
  EXPECT_LT(longest_run_test(alternating(100000)), 1e-6);
}

TEST(CusumTest, SpecWorkedExample) {
  // SP 800-22 section 2.13.8: epsilon = 1011010111, P-value = 0.4116588.
  const BitVec bits = BitVec::from_string("1011010111");
  EXPECT_NEAR(cusum_test(bits), 0.4116588, 1e-4);
}

TEST(CusumTest, RandomPassesDriftFails) {
  EXPECT_GT(cusum_test(random_bits(50000, 5)), 0.01);
  BitVec v(2000);
  for (std::size_t i = 0; i < 1200; ++i) v.set(i, true);  // long drift up
  EXPECT_LT(cusum_test(v), 1e-10);
}

TEST(ApproximateEntropyTest, RandomPassesPeriodicFails) {
  EXPECT_GT(approximate_entropy_test(random_bits(20000, 6), 2), 0.01);
  // Period-4 pattern has very low approximate entropy.
  BitVec v(20000);
  for (std::size_t i = 0; i < 20000; ++i) v.set(i, (i % 4) < 2);
  EXPECT_LT(approximate_entropy_test(v, 2), 1e-10);
}

TEST(SuiteTest, DrbgStreamsPassEverything) {
  // Our ChaCha20 DRBG must pass the whole battery (it is the randomness
  // source for the OT pads the established keys are made of).
  const BitVec bits = random_bits(51200, 7);
  EXPECT_GT(monobit_test(bits), 0.01);
  EXPECT_GT(block_frequency_test(bits), 0.01);
  EXPECT_GT(runs_test(bits), 0.01);
  EXPECT_GT(longest_run_test(bits), 0.01);
  EXPECT_GT(cusum_test(bits), 0.01);
  EXPECT_GT(approximate_entropy_test(bits), 0.01);
}

}  // namespace
}  // namespace wavekey::nist
