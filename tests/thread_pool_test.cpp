// Tests of the runtime concurrency substrate: ThreadPool lifecycle (drain on
// shutdown, exception propagation through futures), the deterministic
// parallel_for chunking contract, the global compute-pool seam, and the
// bounded MPMC queue used by the pairing engine.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <numeric>
#include <set>
#include <stdexcept>
#include <thread>
#include <vector>

#include "runtime/bounded_queue.hpp"
#include "runtime/thread_pool.hpp"

using namespace wavekey::runtime;

TEST(ThreadPool, ParallelForCoversEveryIndexOnce) {
  for (std::size_t size : {0u, 1u, 2u, 3u, 4u}) {
    ThreadPool pool(size);
    for (std::size_t n : {0u, 1u, 2u, 7u, 64u, 100u}) {
      std::vector<std::atomic<int>> hits(n);
      parallel_for(&pool, n, [&](std::size_t i) { hits[i].fetch_add(1); });
      for (std::size_t i = 0; i < n; ++i)
        ASSERT_EQ(hits[i].load(), 1) << "size=" << size << " n=" << n << " i=" << i;
    }
  }
}

TEST(ThreadPool, NullPoolRunsSerially) {
  std::vector<int> order;
  parallel_for(nullptr, 10, [&](std::size_t i) { order.push_back(static_cast<int>(i)); });
  std::vector<int> expect(10);
  std::iota(expect.begin(), expect.end(), 0);
  EXPECT_EQ(order, expect);  // single inline chunk preserves index order
}

TEST(ThreadPool, ParallelLanesIsAPureFunctionOfSizeAndN) {
  EXPECT_EQ(parallel_lanes(nullptr, 100), 1u);
  ThreadPool pool0(0), pool1(1), pool4(4);
  EXPECT_EQ(parallel_lanes(&pool0, 100), 1u);
  EXPECT_EQ(parallel_lanes(&pool1, 100), 1u);
  EXPECT_EQ(parallel_lanes(&pool4, 100), 4u);
  EXPECT_EQ(parallel_lanes(&pool4, 3), 3u);   // never more chunks than items
  EXPECT_EQ(parallel_lanes(&pool4, 0), 1u);
}

TEST(ThreadPool, ChunkBoundsAreContiguousAndBalanced) {
  ThreadPool pool(3);
  const std::size_t n = 10;
  std::vector<std::pair<std::size_t, std::size_t>> bounds(parallel_lanes(&pool, n));
  parallel_for_chunks(&pool, n, [&](std::size_t chunk, std::size_t begin, std::size_t end) {
    bounds[chunk] = {begin, end};
  });
  // 10 over 3 lanes: 4 + 3 + 3, in order, gap-free.
  ASSERT_EQ(bounds.size(), 3u);
  EXPECT_EQ(bounds[0], (std::pair<std::size_t, std::size_t>{0, 4}));
  EXPECT_EQ(bounds[1], (std::pair<std::size_t, std::size_t>{4, 7}));
  EXPECT_EQ(bounds[2], (std::pair<std::size_t, std::size_t>{7, 10}));
}

TEST(ThreadPool, ParallelForPropagatesExceptionAndPoolStaysUsable) {
  ThreadPool pool(2);
  EXPECT_THROW(parallel_for(&pool, 50,
                            [&](std::size_t i) {
                              if (i == 17) throw std::runtime_error("bad index");
                            }),
               std::runtime_error);
  // All chunks completed despite the throw; the pool still works.
  std::atomic<int> count{0};
  parallel_for(&pool, 20, [&](std::size_t) { count.fetch_add(1); });
  EXPECT_EQ(count.load(), 20);
}

TEST(ThreadPool, SubmitFutureCarriesException) {
  ThreadPool pool(1);
  auto future = pool.submit([] { throw std::logic_error("task failed"); });
  EXPECT_THROW(future.get(), std::logic_error);
}

TEST(ThreadPool, ShutdownDrainsPendingWork) {
  std::atomic<int> done{0};
  {
    ThreadPool pool(1);
    // Head task occupies the single worker; the rest pile up in the queue
    // and must still run before the destructor returns.
    pool.submit([&] {
      std::this_thread::sleep_for(std::chrono::milliseconds(30));
      done.fetch_add(1);
    });
    for (int i = 0; i < 16; ++i) pool.submit([&] { done.fetch_add(1); });
  }
  EXPECT_EQ(done.load(), 17);
}

TEST(ThreadPool, ZeroSizePoolRunsInlineOnCaller) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.size(), 0u);
  const std::thread::id caller = std::this_thread::get_id();
  std::thread::id ran_on;
  auto future = pool.submit([&] { ran_on = std::this_thread::get_id(); });
  future.get();
  EXPECT_EQ(ran_on, caller);
}

TEST(ThreadPool, ScopedComputePoolInstallsAndRestores) {
  ASSERT_EQ(compute_pool(), nullptr);
  {
    ScopedComputePool outer(2);
    EXPECT_EQ(compute_pool(), &outer.pool());
    EXPECT_EQ(compute_pool()->size(), 2u);
    {
      ScopedComputePool inner(3);
      EXPECT_EQ(compute_pool(), &inner.pool());
    }
    EXPECT_EQ(compute_pool(), &outer.pool());
  }
  EXPECT_EQ(compute_pool(), nullptr);
}

TEST(BoundedQueue, FifoOrderSingleThread) {
  BoundedQueue<int> queue(8);
  for (int i = 0; i < 5; ++i) EXPECT_TRUE(queue.push(int(i)));
  queue.close();
  for (int i = 0; i < 5; ++i) {
    auto v = queue.pop();
    ASSERT_TRUE(v.has_value());
    EXPECT_EQ(*v, i);
  }
  EXPECT_FALSE(queue.pop().has_value());  // closed + drained
}

TEST(BoundedQueue, PushAfterCloseFails) {
  BoundedQueue<int> queue(4);
  queue.close();
  EXPECT_FALSE(queue.push(1));
}

TEST(BoundedQueue, CapacityExertsBackpressure) {
  BoundedQueue<int> queue(1);
  ASSERT_TRUE(queue.push(1));
  std::atomic<bool> second_pushed{false};
  std::thread producer([&] {
    queue.push(2);  // blocks until the consumer pops
    second_pushed.store(true);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(second_pushed.load());
  EXPECT_EQ(queue.pop().value_or(-1), 1);
  producer.join();
  EXPECT_TRUE(second_pushed.load());
  EXPECT_EQ(queue.pop().value_or(-1), 2);
}

TEST(BoundedQueue, ManyProducersManyConsumersLoseNothing) {
  BoundedQueue<int> queue(4);
  constexpr int kProducers = 4, kPerProducer = 50;
  std::atomic<long> sum{0};
  std::vector<std::thread> consumers;
  for (int c = 0; c < 3; ++c)
    consumers.emplace_back([&] {
      while (auto v = queue.pop()) sum.fetch_add(*v);
    });
  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p)
    producers.emplace_back([&, p] {
      for (int i = 0; i < kPerProducer; ++i) queue.push(p * kPerProducer + i + 1);
    });
  for (auto& t : producers) t.join();
  queue.close();
  for (auto& t : consumers) t.join();
  const long n = kProducers * kPerProducer;
  EXPECT_EQ(sum.load(), n * (n + 1) / 2);
}

// --- try_pop_for: the timed consumer wait of the gateway worker loop -------

TEST(BoundedQueue, TryPopForReturnsItemImmediatelyWhenAvailable) {
  BoundedQueue<int> queue(4);
  ASSERT_TRUE(queue.push(7));
  const auto t0 = std::chrono::steady_clock::now();
  EXPECT_EQ(queue.try_pop_for(5.0).value_or(-1), 7);
  // An available item must not wait out the timeout.
  EXPECT_LT(std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count(), 1.0);
}

TEST(BoundedQueue, TryPopForTimesOutOnEmptyOpenQueue) {
  BoundedQueue<int> queue(4);
  const auto t0 = std::chrono::steady_clock::now();
  EXPECT_FALSE(queue.try_pop_for(0.05).has_value());
  const double waited =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
  EXPECT_GE(waited, 0.045);     // actually waited for the deadline...
  EXPECT_FALSE(queue.closed()); // ...and nullopt here means timeout, not EOS
}

TEST(BoundedQueue, TryPopForNegativeTimeoutPollsWithoutBlocking) {
  BoundedQueue<int> queue(4);
  EXPECT_FALSE(queue.try_pop_for(-1.0).has_value());
  ASSERT_TRUE(queue.push(3));
  EXPECT_EQ(queue.try_pop_for(-1.0).value_or(-1), 3);
}

TEST(BoundedQueue, TryPopForDrainsClosedQueueBeforeReportingEos) {
  BoundedQueue<int> queue(4);
  ASSERT_TRUE(queue.push(1));
  ASSERT_TRUE(queue.push(2));
  queue.close();
  // Shutdown must never lose queued work: items first, EOS after.
  EXPECT_EQ(queue.try_pop_for(0.0).value_or(-1), 1);
  EXPECT_EQ(queue.try_pop_for(0.0).value_or(-1), 2);
  EXPECT_FALSE(queue.try_pop_for(0.0).has_value());
  EXPECT_TRUE(queue.closed());
}

TEST(BoundedQueue, TryPopForWakesPromptlyOnRacedClose) {
  BoundedQueue<int> queue(4);
  std::atomic<bool> woke{false};
  std::thread consumer([&] {
    // Far longer than the test is willing to wait: only close() ends it.
    EXPECT_FALSE(queue.try_pop_for(30.0).has_value());
    woke.store(true);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(woke.load());  // parked, not spinning through
  const auto t0 = std::chrono::steady_clock::now();
  queue.close();
  consumer.join();
  EXPECT_TRUE(woke.load());
  // Woke on the close notification, nowhere near the 30 s deadline.
  EXPECT_LT(std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count(), 5.0);
}

TEST(BoundedQueue, TryPopForWakesOnRacedPush) {
  BoundedQueue<int> queue(4);
  std::thread producer([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    queue.push(42);
  });
  // Timeout far beyond the push delay: the value must arrive via wakeup.
  EXPECT_EQ(queue.try_pop_for(30.0).value_or(-1), 42);
  producer.join();
}

TEST(BoundedQueue, CloseRacesTimedPopWithoutLosingItems) {
  // Regression stress for the lost-wakeup audit in bounded_queue.hpp: timed
  // waiters racing producers and a mid-stream close() must account for every
  // successfully-pushed item exactly once — a waiter that parks just as
  // close() fires either drains an item or observes closed-and-drained,
  // never strands an enqueued item. Many iterations to sweep the race
  // window; the consumer timeout is short so the park/timeout/re-park path
  // is exercised, not just the notified path.
  for (int iter = 0; iter < 40; ++iter) {
    BoundedQueue<int> queue(3);
    std::atomic<long> pushed_sum{0};
    std::atomic<long> popped_sum{0};

    std::vector<std::thread> consumers;
    for (int c = 0; c < 3; ++c)
      consumers.emplace_back([&] {
        while (true) {
          if (auto v = queue.try_pop_for(200e-6)) {
            popped_sum.fetch_add(*v);
          } else if (queue.closed()) {
            // nullopt + closed: re-check once more for items that landed
            // between the failed wait and the closed() read, then stop.
            while (auto tail = queue.try_pop_for(0.0)) popped_sum.fetch_add(*tail);
            return;
          }
        }
      });

    std::vector<std::thread> producers;
    for (int p = 0; p < 2; ++p)
      producers.emplace_back([&, p] {
        for (int i = 1; i <= 25; ++i) {
          const int value = p * 1000 + i;
          if (queue.push(int(value))) pushed_sum.fetch_add(value);
          // push() returning false (queue closed first) is fine — the item
          // was never enqueued and must not be counted.
        }
      });

    // Close somewhere in the middle of the producer stream.
    std::this_thread::sleep_for(std::chrono::microseconds(50 + 37 * iter));
    queue.close();
    for (auto& t : producers) t.join();
    for (auto& t : consumers) t.join();

    EXPECT_EQ(popped_sum.load(), pushed_sum.load()) << "iteration " << iter;
    EXPECT_EQ(queue.size(), 0u) << "iteration " << iter;
  }
}
