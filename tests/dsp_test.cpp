// Tests for the DSP substrate: Savitzky-Golay filtering, phase unwrapping,
// resampling, gesture-start detection, quantization, and Gray coding.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <numbers>

#include "dsp/gesture_detect.hpp"
#include "dsp/gray_code.hpp"
#include "dsp/phase_unwrap.hpp"
#include "dsp/quantizer.hpp"
#include "dsp/resample.hpp"
#include "dsp/savitzky_golay.hpp"
#include "numeric/rng.hpp"
#include "numeric/stats.hpp"

namespace wavekey::dsp {
namespace {

TEST(SavitzkyGolayTest, RejectsBadParameters) {
  EXPECT_THROW(SavitzkyGolayFilter(4, 2), std::invalid_argument);  // even window
  EXPECT_THROW(SavitzkyGolayFilter(1, 0), std::invalid_argument);  // too short
  EXPECT_THROW(SavitzkyGolayFilter(5, 5), std::invalid_argument);  // order >= window
}

TEST(SavitzkyGolayTest, CenterCoefficientsSumToOne) {
  for (std::size_t w : {5u, 7u, 9u, 11u}) {
    for (std::size_t o : {2u, 3u}) {
      const SavitzkyGolayFilter f(w, o);
      double s = 0.0;
      for (double c : f.coefficients()) s += c;
      EXPECT_NEAR(s, 1.0, 1e-10) << "window=" << w << " order=" << o;
    }
  }
}

TEST(SavitzkyGolayTest, ReproducesPolynomialsExactly) {
  // A filter of order p must pass any degree-<=p polynomial unchanged,
  // including at the edges (we fit, not pad).
  const SavitzkyGolayFilter f(9, 3);
  std::vector<double> xs(50);
  for (int i = 0; i < 50; ++i) {
    const double t = i * 0.1;
    xs[i] = 2.0 - 1.5 * t + 0.3 * t * t + 0.01 * t * t * t;
  }
  const auto ys = f.apply(xs);
  for (int i = 0; i < 50; ++i) EXPECT_NEAR(ys[i], xs[i], 1e-9) << "i=" << i;
}

TEST(SavitzkyGolayTest, ReducesNoiseOnSmoothSignal) {
  Rng rng(13);
  std::vector<double> clean(400), noisy(400);
  for (int i = 0; i < 400; ++i) {
    clean[i] = std::sin(2.0 * std::numbers::pi * i / 100.0);
    noisy[i] = clean[i] + rng.normal(0.0, 0.2);
  }
  const SavitzkyGolayFilter f(11, 2);
  const auto smoothed = f.apply(noisy);
  double err_noisy = 0.0, err_smoothed = 0.0;
  for (int i = 0; i < 400; ++i) {
    err_noisy += (noisy[i] - clean[i]) * (noisy[i] - clean[i]);
    err_smoothed += (smoothed[i] - clean[i]) * (smoothed[i] - clean[i]);
  }
  EXPECT_LT(err_smoothed, 0.35 * err_noisy);
}

TEST(SavitzkyGolayTest, PreservesLocalExtremaBetterThanMovingAverage) {
  // The paper picks SG precisely because it keeps peaks; check the peak of a
  // narrow bump survives better than under a boxcar of the same width.
  std::vector<double> xs(101, 0.0);
  for (int i = 0; i < 101; ++i) xs[i] = std::exp(-0.5 * std::pow((i - 50) / 4.0, 2));
  const SavitzkyGolayFilter sg(11, 3);
  const auto sg_out = sg.apply(xs);

  std::vector<double> box_out(101, 0.0);
  for (int i = 5; i < 96; ++i) {
    double s = 0.0;
    for (int j = -5; j <= 5; ++j) s += xs[i + j];
    box_out[i] = s / 11.0;
  }
  EXPECT_GT(sg_out[50], box_out[50]);
  EXPECT_NEAR(sg_out[50], 1.0, 0.05);
}

TEST(SavitzkyGolayTest, ShortInputDegradesToIdentity) {
  const SavitzkyGolayFilter f(9, 2);
  const std::vector<double> xs{1.0, 2.0, 3.0};
  EXPECT_EQ(f.apply(xs), xs);
}

TEST(PhaseUnwrapTest, RecoversLinearRamp) {
  // A tag moving away produces a steadily growing phase; wrapped it sawtooths.
  std::vector<double> truth(300), wrapped(300);
  for (int i = 0; i < 300; ++i) {
    truth[i] = 0.05 * i;
    wrapped[i] = wrap_phase(truth[i]);
  }
  const auto unwrapped = unwrap_phase(wrapped);
  for (int i = 0; i < 300; ++i)
    EXPECT_NEAR(unwrapped[i] - unwrapped[0], truth[i] - truth[0], 1e-9);
}

TEST(PhaseUnwrapTest, HandlesBothDirectionsAndMultipleWraps) {
  Rng rng(17);
  std::vector<double> truth(500), wrapped(500);
  double phase = 0.0;
  for (int i = 0; i < 500; ++i) {
    phase += rng.uniform(-2.5, 2.5);  // steps under pi in magnitude after unwrap? no: up to 2.5
    truth[i] = phase;
    wrapped[i] = wrap_phase(phase);
  }
  // Steps can exceed pi here, so reconstruction is only guaranteed when the
  // per-step change stays in (-pi, pi); re-generate under that constraint.
  phase = 0.0;
  for (int i = 0; i < 500; ++i) {
    phase += rng.uniform(-3.0, 3.0) * 0.9;  // |step| < pi
    truth[i] = phase;
    wrapped[i] = wrap_phase(phase);
  }
  const auto unwrapped = unwrap_phase(wrapped);
  for (int i = 0; i < 500; ++i)
    EXPECT_NEAR(unwrapped[i] - unwrapped[0], truth[i] - truth[0], 1e-9) << i;
}

TEST(PhaseUnwrapTest, WrapPhaseInRange) {
  for (double p : {-10.0, -3.2, 0.0, 1.0, 6.3, 100.0}) {
    const double w = wrap_phase(p);
    EXPECT_GE(w, 0.0);
    EXPECT_LT(w, 2.0 * std::numbers::pi);
    EXPECT_NEAR(std::remainder(w - p, 2.0 * std::numbers::pi), 0.0, 1e-9);
  }
}

TEST(ResampleTest, LinearInterpolationExactOnLines) {
  const std::vector<double> ts{0, 1, 2, 3};
  const std::vector<double> xs{0, 2, 4, 6};
  const std::vector<double> q{0.5, 1.25, 2.75};
  const auto out = interp_linear(ts, xs, q);
  EXPECT_DOUBLE_EQ(out[0], 1.0);
  EXPECT_DOUBLE_EQ(out[1], 2.5);
  EXPECT_DOUBLE_EQ(out[2], 5.5);
}

TEST(ResampleTest, ClampsOutOfRangeQueries) {
  const std::vector<double> ts{0, 1};
  const std::vector<double> xs{5, 7};
  const auto out = interp_linear(ts, xs, std::vector<double>{-1.0, 2.0});
  EXPECT_DOUBLE_EQ(out[0], 5.0);
  EXPECT_DOUBLE_EQ(out[1], 7.0);
}

TEST(ResampleTest, RejectsMalformedSeries) {
  const std::vector<double> q{0.5};
  EXPECT_THROW(interp_linear({{0, 0}}, {{1, 2}}, q), std::invalid_argument);
  EXPECT_THROW(interp_linear({{0, 1}}, {{1}}, q), std::invalid_argument);
  EXPECT_THROW(interp_linear({}, {}, q), std::invalid_argument);
}

// The rolling-cursor fast path must be invisible: any query order — strictly
// monotone, repeated values, backwards jumps, clamps interleaved with
// interior points — gives exactly the per-query binary-search answer.
TEST(ResampleTest, CursorOrderIndependence) {
  std::vector<double> ts(64), xs(64);
  Rng rng(20240806);
  double t = 0.0;
  for (std::size_t i = 0; i < ts.size(); ++i) {
    t += 0.01 + 0.2 * rng.uniform();
    ts[i] = t;
    xs[i] = rng.normal();
  }
  // Shuffled interior + clamped queries, plus a sorted copy of the same set.
  std::vector<double> shuffled;
  for (int i = 0; i < 200; ++i)
    shuffled.push_back(ts.front() - 0.5 + (ts.back() - ts.front() + 1.0) * rng.uniform());
  shuffled.push_back(ts.front());
  shuffled.push_back(ts.back() + 1.0);
  shuffled.push_back(ts[10]);  // exact knot
  shuffled.push_back(ts[10]);  // repeated query
  std::vector<double> sorted = shuffled;
  std::sort(sorted.begin(), sorted.end());

  for (const auto* queries : {&shuffled, &sorted}) {
    const auto lin = interp_linear(ts, xs, *queries);
    const auto cub = interp_cubic(ts, xs, *queries);
    ASSERT_EQ(lin.size(), queries->size());
    for (std::size_t i = 0; i < queries->size(); ++i) {
      // Single-query call never uses a warmed cursor: the oracle.
      const std::vector<double> one{(*queries)[i]};
      EXPECT_DOUBLE_EQ(lin[i], interp_linear(ts, xs, one)[0]) << "linear, query " << i;
      EXPECT_DOUBLE_EQ(cub[i], interp_cubic(ts, xs, one)[0]) << "cubic, query " << i;
    }
  }
}

TEST(ResampleTest, CubicBeatsLinearOnSmoothCurves) {
  std::vector<double> ts(20), xs(20);
  for (int i = 0; i < 20; ++i) {
    ts[i] = i * 0.25;
    xs[i] = std::sin(ts[i]);
  }
  std::vector<double> q(77);
  for (int i = 0; i < 77; ++i) q[i] = 0.3 + i * 0.055;
  const auto lin = interp_linear(ts, xs, q);
  const auto cub = interp_cubic(ts, xs, q);
  double err_lin = 0.0, err_cub = 0.0;
  for (std::size_t i = 0; i < q.size(); ++i) {
    err_lin += std::abs(lin[i] - std::sin(q[i]));
    err_cub += std::abs(cub[i] - std::sin(q[i]));
  }
  EXPECT_LT(err_cub, 0.2 * err_lin);
}

TEST(ResampleTest, UniformGridSpacing) {
  const auto ts = uniform_grid(1.0, 100.0, 5);
  ASSERT_EQ(ts.size(), 5u);
  EXPECT_DOUBLE_EQ(ts[0], 1.0);
  EXPECT_DOUBLE_EQ(ts[4], 1.04);
}

TEST(GestureDetectTest, MovingVarianceMatchesDirectComputation) {
  Rng rng(19);
  std::vector<double> xs(50);
  for (auto& x : xs) x = rng.uniform(-1, 1);
  const auto mv = moving_variance(xs, 8);
  ASSERT_EQ(mv.size(), 43u);
  for (std::size_t i = 0; i < mv.size(); ++i) {
    const std::span<const double> win(xs.data() + i, 8);
    EXPECT_NEAR(mv[i], variance(win), 1e-10);
  }
}

TEST(GestureDetectTest, DetectsVarianceJump) {
  Rng rng(23);
  std::vector<double> xs;
  for (int i = 0; i < 100; ++i) xs.push_back(rng.normal(0.0, 0.01));  // idle pause
  for (int i = 0; i < 100; ++i) xs.push_back(rng.normal(0.0, 1.0));   // gesture
  const auto start = detect_gesture_start(xs);
  ASSERT_TRUE(start.has_value());
  EXPECT_GE(*start, 85u);
  EXPECT_LE(*start, 105u);
}

TEST(GestureDetectTest, NoDetectionOnIdleSignal) {
  Rng rng(29);
  std::vector<double> xs(300);
  for (auto& x : xs) x = rng.normal(0.0, 0.01);
  EXPECT_FALSE(detect_gesture_start(xs).has_value());
}

TEST(GestureDetectTest, EmptyAndTinySignals) {
  EXPECT_FALSE(detect_gesture_start({}).has_value());
  const std::vector<double> tiny{1.0, 2.0};
  EXPECT_FALSE(detect_gesture_start(tiny).has_value());
}

TEST(GrayCodeTest, AdjacentCodesDifferInOneBit) {
  for (std::uint32_t i = 0; i + 1 < 256; ++i) {
    const std::uint32_t d = gray_encode(i) ^ gray_encode(i + 1);
    EXPECT_EQ(d & (d - 1), 0u) << i;  // power of two => single bit
    EXPECT_NE(d, 0u);
  }
}

TEST(GrayCodeTest, EncodeDecodeRoundTrip) {
  for (std::uint32_t i = 0; i < 4096; ++i) EXPECT_EQ(gray_decode(gray_encode(i)), i);
}

TEST(GrayCodeTest, BitsRepresentation) {
  const BitVec b = gray_bits(2, 3);  // gray(2) = 3 = 0b011
  EXPECT_EQ(b.to_string(), "110");   // LSB first
  EXPECT_THROW(gray_bits(200, 3), std::invalid_argument);
}

TEST(QuantizerTest, RejectsDegenerateBins) {
  EXPECT_THROW(NormalQuantizer(1), std::invalid_argument);
}

TEST(QuantizerTest, BoundariesSolveEquationOne) {
  // Phi(b_i) = i / N_b (Eq. (1) of the paper).
  const NormalQuantizer q(9);
  const auto bounds = q.boundaries();
  ASSERT_EQ(bounds.size(), 8u);
  for (std::size_t i = 0; i < bounds.size(); ++i)
    EXPECT_NEAR(normal_cdf(bounds[i]), (i + 1) / 9.0, 1e-9);
}

TEST(QuantizerTest, BinOfIsMonotoneAndCoversRange) {
  const NormalQuantizer q(9);
  EXPECT_EQ(q.bin_of(-10.0), 0u);
  EXPECT_EQ(q.bin_of(10.0), 8u);
  std::size_t prev = 0;
  for (double x = -4.0; x <= 4.0; x += 0.01) {
    const std::size_t b = q.bin_of(x);
    EXPECT_GE(b, prev);
    prev = b;
  }
}

class QuantizerBinCountTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(QuantizerBinCountTest, EqualProbabilityBinsAreEquallyLikely) {
  const std::size_t nb = GetParam();
  const NormalQuantizer q(nb);
  Rng rng(31 + nb);
  std::vector<std::size_t> counts(nb, 0);
  const int n = 90000;
  for (int i = 0; i < n; ++i) counts[q.bin_of(rng.normal())]++;
  const double expected = static_cast<double>(n) / static_cast<double>(nb);
  for (std::size_t b = 0; b < nb; ++b)
    EXPECT_NEAR(counts[b], expected, 6.0 * std::sqrt(expected)) << "bin " << b;
}

TEST_P(QuantizerBinCountTest, SeedLengthMatchesBitsPerElement) {
  const std::size_t nb = GetParam();
  const NormalQuantizer q(nb);
  const std::vector<double> feature(12, 0.1);
  EXPECT_EQ(q.quantize(feature).size(), 12 * q.bits_per_element());
}

INSTANTIATE_TEST_SUITE_P(BinSweep, QuantizerBinCountTest,
                         ::testing::Values(2, 4, 5, 8, 9, 12, 15, 16));

TEST(QuantizerTest, NearbyValuesDifferInAtMostOneBitAcrossOneBoundary) {
  const NormalQuantizer q(9);
  // Pick values just either side of every boundary.
  for (double b : q.boundaries()) {
    const BitVec lo = q.quantize_value(b - 1e-9);
    const BitVec hi = q.quantize_value(b + 1e-9);
    EXPECT_EQ(lo.hamming_distance(hi), 1u);
  }
}

TEST(QuantizerTest, EqualWidthAblationProducesSkewedOccupancy) {
  const NormalQuantizer q(9, BinPlacement::kEqualWidth);
  Rng rng(37);
  std::vector<std::size_t> counts(9, 0);
  for (int i = 0; i < 50000; ++i) counts[q.bin_of(rng.normal())]++;
  // The central bin must be far more occupied than the outermost bins.
  EXPECT_GT(counts[4], 5 * std::max<std::size_t>(counts[0], 1));
}

}  // namespace
}  // namespace wavekey::dsp
