// Integration tests of the two data-processing pipelines against the
// simulator ground truth: the mobile pipeline must recover the true linear
// acceleration, the server pipeline must recover the radial motion, both
// must self-align via gesture-start detection, and the *cross-modal*
// correlation the autoencoders rely on must actually be present.

#include <gtest/gtest.h>

#include <cmath>

#include "imu/imu_pipeline.hpp"
#include "numeric/stats.hpp"
#include "rfid/rfid_pipeline.hpp"
#include "sim/scenario.hpp"

namespace wavekey {
namespace {

sim::SessionRecording make_session(std::uint64_t seed, sim::ScenarioConfig cfg = {}) {
  cfg.gesture.active_s = 4.0;
  sim::ScenarioSimulator simulator(cfg, seed);
  return simulator.run();
}

TEST(ImuPipelineTest, DetectsStartNearTruePauseEnd) {
  const auto rec = make_session(1);
  const auto result = imu::process_imu(rec.imu);
  ASSERT_TRUE(result.has_value());
  EXPECT_NEAR(result->gesture_start_time, rec.trajectory.motion_start(), 0.25);
}

TEST(ImuPipelineTest, RecoversTrueLinearAcceleration) {
  const auto rec = make_session(2);
  const auto result = imu::process_imu(rec.imu);
  ASSERT_TRUE(result.has_value());
  const Matrix& a = result->linear_accel;
  ASSERT_EQ(a.rows(), 200u);
  ASSERT_EQ(a.cols(), 3u);

  // Compare each world axis against ground truth over the window.
  for (std::size_t axis = 0; axis < 3; ++axis) {
    std::vector<double> estimated(a.rows()), truth(a.rows());
    for (std::size_t i = 0; i < a.rows(); ++i) {
      estimated[i] = a(i, axis);
      const double t = result->gesture_start_time + static_cast<double>(i) / 100.0;
      truth[i] = rec.trajectory.acceleration(t)[axis];
    }
    if (stddev(truth) < 0.05) continue;  // axis with negligible motion
    EXPECT_GT(pearson(estimated, truth), 0.93) << "axis " << axis;
  }
}

TEST(ImuPipelineTest, InitialPoseMatchesTruth) {
  const auto rec = make_session(3);
  const auto result = imu::process_imu(rec.imu);
  ASSERT_TRUE(result.has_value());
  const Quaternion q_true = rec.trajectory.orientation(0.0);
  const Quaternion q_est = result->initial_pose;
  const double dot =
      q_true.w * q_est.w + q_true.x * q_est.x + q_true.y * q_est.y + q_true.z * q_est.z;
  // Small attitude error allowed (sensor noise + bias).
  EXPECT_GT(std::abs(dot), std::cos(0.05));  // within ~6 degrees (half-angle)
}

TEST(ImuPipelineTest, RejectsIdleRecording) {
  // A recording with no gesture (pure pause) must be rejected.
  sim::ScenarioConfig cfg;
  cfg.gesture.active_s = 4.0;
  sim::ScenarioSimulator simulator(cfg, 4);
  auto rec = simulator.run();
  // Truncate to the pause only.
  auto& samples = rec.imu.samples;
  samples.erase(std::remove_if(samples.begin(), samples.end(),
                               [&](const sim::ImuSample& s) {
                                 return s.t > rec.trajectory.motion_start() - 0.05;
                               }),
                samples.end());
  EXPECT_FALSE(imu::process_imu(rec.imu).has_value());
}

TEST(ImuPipelineTest, RejectsTruncatedWindow) {
  auto rec = make_session(5);
  // Cut the recording 1 s after motion start: the 2 s window cannot fit.
  auto& samples = rec.imu.samples;
  samples.erase(std::remove_if(samples.begin(), samples.end(),
                               [&](const sim::ImuSample& s) {
                                 return s.t > rec.trajectory.motion_start() + 1.0;
                               }),
                samples.end());
  EXPECT_FALSE(imu::process_imu(rec.imu).has_value());
}

TEST(TriadTest, RecoversKnownAttitude) {
  const Vec3 gravity{0, 0, -9.81};
  const Vec3 mag{22, 0, -42};
  Rng rng(6);
  for (int trial = 0; trial < 30; ++trial) {
    const Quaternion q_true = Quaternion::from_axis_angle(
        {rng.normal(), rng.normal(), rng.normal()}, rng.uniform(0.0, 3.0));
    const Vec3 body_up = q_true.conjugate().rotate(-gravity * (1.0 / 9.81));
    const Vec3 body_mag = q_true.conjugate().rotate(mag);
    const Quaternion q_est = imu::triad_attitude(body_up, body_mag, gravity, mag);
    const double dot = q_true.w * q_est.w + q_true.x * q_est.x + q_true.y * q_est.y +
                       q_true.z * q_est.z;
    EXPECT_NEAR(std::abs(dot), 1.0, 1e-6);
  }
}

TEST(RfidPipelineTest, DetectsStartNearTruePauseEnd) {
  const auto rec = make_session(7);
  const auto result = rfid::process_rfid(rec.rfid);
  ASSERT_TRUE(result.has_value());
  EXPECT_NEAR(result->gesture_start_time, rec.trajectory.motion_start(), 0.25);
}

TEST(RfidPipelineTest, OutputShapeAndNormalization) {
  const auto rec = make_session(8);
  const auto result = rfid::process_rfid(rec.rfid);
  ASSERT_TRUE(result.has_value());
  const Matrix& r = result->processed;
  ASSERT_EQ(r.rows(), 400u);
  ASSERT_EQ(r.cols(), 2u);
  const auto phase = r.col(0);
  const auto mag = r.col(1);
  EXPECT_NEAR(mean(phase), 0.0, 1e-9);
  EXPECT_NEAR(mean(mag), 0.0, 1e-9);
  EXPECT_NEAR(stddev(mag), 1.0, 0.05);
}

TEST(RfidPipelineTest, PhaseColumnTracksRadialMotion) {
  const auto rec = make_session(9);
  const auto result = rfid::process_rfid(rec.rfid);
  ASSERT_TRUE(result.has_value());

  const auto phase = result->processed.col(0);
  std::vector<double> radial(phase.size());
  const Vec3 ant = rec.geometry.antenna_position();
  for (std::size_t i = 0; i < phase.size(); ++i) {
    const double t = result->gesture_start_time + static_cast<double>(i) / 200.0;
    const Vec3 tag_pos = rec.geometry.user_position() + rec.geometry.hand_offset +
                         rec.trajectory.position(t);
    radial[i] = (tag_pos - ant).norm();
  }
  EXPECT_GT(std::abs(pearson(phase, radial)), 0.95);
}

TEST(RfidPipelineTest, RejectsIdleRecording) {
  auto rec = make_session(10);
  auto& samples = rec.rfid.samples;
  samples.erase(std::remove_if(samples.begin(), samples.end(),
                               [&](const sim::RfidSample& s) {
                                 return s.t > rec.trajectory.motion_start() - 0.05;
                               }),
                samples.end());
  EXPECT_FALSE(rfid::process_rfid(rec.rfid).has_value());
}

TEST(CrossModalTest, BothPipelinesAlignToTheSameStart) {
  for (std::uint64_t seed = 20; seed < 30; ++seed) {
    const auto rec = make_session(seed);
    const auto imu_result = imu::process_imu(rec.imu);
    const auto rfid_result = rfid::process_rfid(rec.rfid);
    ASSERT_TRUE(imu_result.has_value()) << seed;
    ASSERT_TRUE(rfid_result.has_value()) << seed;
    EXPECT_NEAR(imu_result->gesture_start_time, rfid_result->gesture_start_time, 0.2) << seed;
  }
}

// Removes the best quadratic fit from a series (kills double-integration
// drift and constant/linear offsets).
std::vector<double> detrend2(std::span<const double> xs) {
  const std::size_t n = xs.size();
  Matrix normal(3, 3);
  std::vector<double> rhs(3, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    const double t = static_cast<double>(i) / static_cast<double>(n);
    const double basis[3] = {1.0, t, t * t};
    for (int a = 0; a < 3; ++a) {
      for (int b = 0; b < 3; ++b) normal(a, b) += basis[a] * basis[b];
      rhs[a] += basis[a] * xs[i];
    }
  }
  const auto coef = solve_linear_system(normal, rhs);
  std::vector<double> out(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double t = static_cast<double>(i) / static_cast<double>(n);
    out[i] = xs[i] - (coef[0] + coef[1] * t + coef[2] * t * t);
  }
  return out;
}

TEST(CrossModalTest, RadialImuDisplacementMatchesPhase) {
  // The physical link the autoencoders learn: the RFID phase is (up to scale
  // and multipath perturbation) the radial displacement, which is also the
  // double integral of the radial component of the IMU pipeline's output.
  int strong = 0, total = 0;
  for (std::uint64_t seed = 40; seed < 52; ++seed) {
    const auto rec = make_session(seed);
    const auto imu_result = imu::process_imu(rec.imu);
    const auto rfid_result = rfid::process_rfid(rec.rfid);
    if (!imu_result || !rfid_result) continue;

    const Vec3 u = (rec.geometry.antenna_position() -
                    (rec.geometry.user_position() + rec.geometry.hand_offset))
                       .normalized();
    // Radial displacement via double integration of the IMU acceleration.
    const Matrix& a = imu_result->linear_accel;
    const double dt = 1.0 / 100.0;
    std::vector<double> disp(a.rows(), 0.0);
    double vel = 0.0, pos = 0.0;
    for (std::size_t i = 0; i < a.rows(); ++i) {
      const double acc = -(a(i, 0) * u.x + a(i, 1) * u.y + a(i, 2) * u.z);
      vel += acc * dt;
      pos += vel * dt;
      disp[i] = pos;
    }
    disp = detrend2(disp);

    // Phase downsampled to the 100 Hz grid and detrended the same way.
    const auto phase_col = rfid_result->processed.col(0);
    std::vector<double> phase(a.rows());
    for (std::size_t i = 0; i < a.rows(); ++i) phase[i] = phase_col[i * 2];
    phase = detrend2(phase);

    ++total;
    if (std::abs(pearson(disp, phase)) > 0.6) ++strong;
  }
  // The correlation is geometric and must be present in the large majority
  // of sessions (it weakens only when the gesture is nearly tangential).
  EXPECT_GE(strong, total * 3 / 4) << "strong=" << strong << " total=" << total;
}

}  // namespace
}  // namespace wavekey
