// Tests of the attack suite: mimic trajectory properties (reaction lag,
// tracking-bandwidth loss), random-guess statistics against Eq. (4), the
// camera pipeline, signal spoofing, and the protocol interceptors.

#include <gtest/gtest.h>

#include <cmath>
#include <span>

#include "attacks/attack_eval.hpp"
#include "attacks/camera_attack.hpp"
#include "attacks/mimic.hpp"
#include "core/key_seed.hpp"
#include "numeric/stats.hpp"
#include "sim/scenario.hpp"

namespace wavekey::attacks {
namespace {

sim::GestureTrajectory make_victim(std::uint64_t seed) {
  Rng rng(seed);
  const sim::VolunteerStyle style = sim::VolunteerStyle::sample(rng);
  sim::GestureParams params;
  params.active_s = 5.0;
  return sim::GestureTrajectory(rng, style, params);
}

// Tiny trained setup shared by the pipeline-level attack tests.
struct AttackSetup {
  core::WaveKeyDataset dataset;
  core::EncoderPair encoders;
  core::SeedQuantizer quantizer;
  core::WaveKeyConfig config;
  AttackSetup()
      : dataset([] {
          core::DatasetConfig dc;
          dc.volunteers = 3;
          dc.devices = 2;
          dc.gestures_per_pair = 2;
          dc.windows_per_gesture = 6;
          dc.gesture_active_s = 8.0;
          return core::WaveKeyDataset::generate(dc);
        }()),
        encoders([] {
          Rng rng(7);
          return core::EncoderPair(core::WaveKeyConfig{}.latent_dim, rng);
        }()),
        quantizer(core::SeedQuantizer::from_normal(core::WaveKeyConfig{})) {
    core::TrainConfig tc;
    tc.epochs = 6;
    tc.batch_size = 16;
    encoders.train(dataset, tc);
    quantizer = core::SeedQuantizer::calibrated(encoders, dataset, config);
    config.eta = core::calibrate_eta(encoders, dataset, quantizer).eta;
  }
};

AttackSetup& setup() {
  static AttackSetup s;
  return s;
}

TEST(MimicTrajectoryTest, StartsAfterReactionDelay) {
  const auto victim = make_victim(1);
  Rng rng(2);
  const MimicTrajectory mimic(victim, MimicSkill::average(), rng);
  EXPECT_GT(mimic.motion_start(), victim.motion_start() + 0.05);
  // Before its own start the mimic is still.
  EXPECT_LT(mimic.position(victim.motion_start()).norm(), 0.02);
}

TEST(MimicTrajectoryTest, TracksCoarseShapeButLosesDetail) {
  const auto victim = make_victim(3);
  Rng rng(4);
  const MimicTrajectory mimic(victim, MimicSkill::average(), rng);

  // Sample both trajectories; the mimic correlates with the victim at low
  // frequency but has far less high-frequency energy.
  std::vector<double> v_pos, m_pos, v_hf, m_hf;
  double prev_v = 0.0, prev_m = 0.0, pprev_v = 0.0, pprev_m = 0.0;
  for (double t = 1.5; t < 5.0; t += 0.01) {
    const double v = victim.position(t).x;
    const double m = mimic.position(t).x;
    v_pos.push_back(v);
    m_pos.push_back(m);
    // Second difference ~ high-frequency content.
    if (v_pos.size() > 2) {
      v_hf.push_back(v - 2 * prev_v + pprev_v);
      m_hf.push_back(m - 2 * prev_m + pprev_m);
    }
    pprev_v = prev_v;
    prev_v = v;
    pprev_m = prev_m;
    prev_m = m;
  }
  // Coarse shape survives, but shifted by the visuomotor lag: take the best
  // correlation over candidate lags up to ~0.6 s.
  double best_corr = 0.0;
  for (int lag = 0; lag <= 60; lag += 5) {
    const std::size_t n = v_pos.size() - static_cast<std::size_t>(lag);
    const std::span<const double> v_span(v_pos.data(), n);
    const std::span<const double> m_span(m_pos.data() + lag, n);
    best_corr = std::max(best_corr, std::abs(pearson(v_span, m_span)));
  }
  EXPECT_GT(best_corr, 0.3);
  const double v_energy = variance(v_hf), m_energy = variance(m_hf);
  EXPECT_LT(m_energy, 0.5 * v_energy);  // fine detail does not
}

TEST(MimicTrajectoryTest, SkilledMimicTracksBetterThanAverage) {
  const auto victim = make_victim(5);
  double err_avg = 0.0, err_skilled = 0.0;
  for (int trial = 0; trial < 5; ++trial) {
    Rng r1(10 + trial), r2(10 + trial);
    const MimicTrajectory avg(victim, MimicSkill::average(), r1);
    const MimicTrajectory skilled(victim, MimicSkill::skilled(), r2);
    for (double t = 1.5; t < 5.0; t += 0.05) {
      err_avg += (avg.position(t) - victim.position(t)).norm();
      err_skilled += (skilled.position(t) - victim.position(t)).norm();
    }
  }
  EXPECT_LT(err_skilled, err_avg);
}

TEST(RandomGuessTest, EmpiricalRateMatchesAnalytic) {
  crypto::Drbg rng(11);
  const BitVec victim = rng.random_bits(16);
  const double eta = 0.2;  // tolerates 3 of 16 bits
  int hits = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i)
    if (run_random_guess_attack(victim, eta, rng).success()) ++hits;
  const double analytic = core::random_guess_success_rate(16, eta);
  EXPECT_NEAR(static_cast<double>(hits) / n, analytic,
              5.0 * std::sqrt(analytic / n) + 1e-4);
}

TEST(MimicAttackTest, RunsAndReportsMismatch) {
  AttackSetup& s = setup();
  sim::ScenarioConfig sc;
  sc.gesture.active_s = 4.0;
  int ran = 0;
  std::vector<double> mismatches;
  for (std::uint64_t seed = 0; seed < 8; ++seed) {
    const auto r = run_mimic_attack(s.encoders, s.quantizer, s.config, sc,
                                    MimicSkill::average(), seed * 31 + 5);
    if (!r) continue;
    ++ran;
    mismatches.push_back(r->mismatch);
    EXPECT_TRUE(r->within_deadline);  // live mimicry has no compute latency
  }
  ASSERT_GT(ran, 4);
  // On average the mimic's seed must be far from the victim's.
  EXPECT_GT(mean(mismatches), 0.15);
}

TEST(CameraAttackTest, RemoteRecoversSomethingInSituLosesDepth) {
  AttackSetup& s = setup();
  const auto victim = make_victim(21);
  Rng rng(22);
  const auto remote = run_camera_attack(s.encoders, s.quantizer, s.config, victim,
                                        sim::CameraConfig::remote(), {1, 0, 0}, rng);
  ASSERT_TRUE(remote.has_value());
  EXPECT_EQ(remote->seed.size(), 48u);
  // Remote recording streams video: latency far beyond tau.
  EXPECT_FALSE(remote->within_deadline);

  Rng rng2(23);
  const auto insitu = run_camera_attack(s.encoders, s.quantizer, s.config, victim,
                                        sim::CameraConfig::in_situ(), {1, 0, 0}, rng2);
  ASSERT_TRUE(insitu.has_value());
  EXPECT_EQ(insitu->seed.size(), 48u);
}

TEST(CameraSpoofTest, ReportsDeadlineViolationForRemote) {
  AttackSetup& s = setup();
  sim::ScenarioConfig sc;
  sc.gesture.active_s = 4.0;
  int ran = 0, within = 0;
  for (std::uint64_t seed = 0; seed < 6; ++seed) {
    const auto r = run_camera_spoof(s.encoders, s.quantizer, s.config, sc,
                                    sim::CameraConfig::remote(), seed * 17 + 1);
    if (!r) continue;
    ++ran;
    if (r->within_deadline) ++within;
  }
  ASSERT_GT(ran, 3);
  EXPECT_EQ(within, 0);  // streaming + 3-D detection never fits in tau
}

TEST(SignalSpoofTest, SpoofedSignalBreaksSeedAgreement) {
  AttackSetup& s = setup();
  sim::ScenarioConfig sc;
  sc.distance_m = 2.0;
  sc.gesture.active_s = 4.0;
  std::vector<double> spoofed;
  Rng rng(31);
  for (int i = 0; i < 8; ++i) {
    const std::uint64_t seed = rng.next();
    if (const auto sp = run_signal_spoof(s.encoders, s.quantizer, s.config, sc, seed))
      spoofed.push_back(*sp);
  }
  ASSERT_GT(spoofed.size(), 4u);
  // Spoofing decorrelates the modalities: the induced mismatch must sit far
  // above the calibrated benign tolerance, so the session fails and the
  // attack is detected (SV-A).
  EXPECT_GT(mean(spoofed), s.config.eta + 0.05);
}

TEST(InterceptorTest, EavesdropperCollectsTraffic) {
  protocol::Bytes transcript;
  auto eave = make_eavesdropper(&transcript);
  protocol::InFlightMessage msg{"mobile", "server", protocol::MessageType::kMsgA, {1, 2, 3}, 0.0};
  EXPECT_DOUBLE_EQ(eave(msg), 0.0);
  EXPECT_EQ(transcript, (protocol::Bytes{1, 2, 3}));
  EXPECT_EQ(msg.payload, (protocol::Bytes{1, 2, 3}));  // unmodified
}

TEST(InterceptorTest, TampererFlipsTargetedBit) {
  auto tamper = make_tamperer(protocol::MessageType::kMsgB, 9);
  protocol::InFlightMessage hit{"m", "s", protocol::MessageType::kMsgB, {0x00, 0x00}, 0.0};
  (void)tamper(hit);
  EXPECT_EQ(hit.payload[1], 0x02);  // bit 9 = byte 1 bit 1
  protocol::InFlightMessage miss{"m", "s", protocol::MessageType::kMsgA, {0x00, 0x00}, 0.0};
  (void)tamper(miss);
  EXPECT_EQ(miss.payload[1], 0x00);
}

TEST(InterceptorTest, DelayerDelaysOnlyTarget) {
  auto delay = make_delayer(protocol::MessageType::kChallenge, 0.7);
  protocol::InFlightMessage hit{"m", "s", protocol::MessageType::kChallenge, {}, 0.0};
  protocol::InFlightMessage miss{"m", "s", protocol::MessageType::kMsgA, {}, 0.0};
  EXPECT_DOUBLE_EQ(delay(hit), 0.7);
  EXPECT_DOUBLE_EQ(delay(miss), 0.0);
}

}  // namespace
}  // namespace wavekey::attacks
