// Unit and property tests for the numeric substrate: fixed-size linear
// algebra, the dynamic matrix/solver, statistics, the PRNG, and BitVec.

#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

#include "numeric/bitvec.hpp"
#include "numeric/mat3.hpp"
#include "numeric/matrix.hpp"
#include "numeric/quaternion.hpp"
#include "numeric/rng.hpp"
#include "numeric/stats.hpp"
#include "numeric/vec3.hpp"

namespace wavekey {
namespace {

TEST(Vec3Test, BasicAlgebra) {
  const Vec3 a{1, 2, 3}, b{4, 5, 6};
  EXPECT_EQ(a + b, Vec3(5, 7, 9));
  EXPECT_EQ(a - b, Vec3(-3, -3, -3));
  EXPECT_EQ(a * 2.0, Vec3(2, 4, 6));
  EXPECT_DOUBLE_EQ(a.dot(b), 32.0);
  EXPECT_EQ(a.cross(b), Vec3(-3, 6, -3));
}

TEST(Vec3Test, CrossIsAntiCommutativeAndOrthogonal) {
  Rng rng(1);
  for (int i = 0; i < 100; ++i) {
    const Vec3 a{rng.normal(), rng.normal(), rng.normal()};
    const Vec3 b{rng.normal(), rng.normal(), rng.normal()};
    const Vec3 c = a.cross(b);
    EXPECT_NEAR((c + b.cross(a)).norm(), 0.0, 1e-12);
    EXPECT_NEAR(c.dot(a), 0.0, 1e-9);
    EXPECT_NEAR(c.dot(b), 0.0, 1e-9);
  }
}

TEST(Vec3Test, NormalizedHasUnitNorm) {
  const Vec3 v{3, 4, 0};
  EXPECT_DOUBLE_EQ(v.norm(), 5.0);
  EXPECT_NEAR(v.normalized().norm(), 1.0, 1e-15);
  EXPECT_EQ(Vec3().normalized(), Vec3());  // zero stays zero
}

TEST(Mat3Test, IdentityActsTrivially) {
  const Vec3 v{1.5, -2.0, 0.25};
  EXPECT_EQ(Mat3::identity() * v, v);
}

TEST(Mat3Test, TransposeOfRotationIsInverse) {
  const Quaternion q = Quaternion::from_axis_angle({1, 2, 3}, 0.7);
  const Mat3 r = q.to_matrix();
  const Mat3 should_be_identity = r * r.transposed();
  for (std::size_t i = 0; i < 3; ++i)
    for (std::size_t j = 0; j < 3; ++j)
      EXPECT_NEAR(should_be_identity(i, j), i == j ? 1.0 : 0.0, 1e-12);
  EXPECT_NEAR(r.det(), 1.0, 1e-12);
}

TEST(QuaternionTest, RotationMatchesMatrix) {
  Rng rng(7);
  for (int i = 0; i < 50; ++i) {
    const Vec3 axis{rng.normal(), rng.normal(), rng.normal()};
    const double angle = rng.uniform(-3.0, 3.0);
    const Quaternion q = Quaternion::from_axis_angle(axis, angle);
    const Mat3 m = q.to_matrix();
    const Vec3 v{rng.normal(), rng.normal(), rng.normal()};
    EXPECT_NEAR((q.rotate(v) - m * v).norm(), 0.0, 1e-10);
  }
}

TEST(QuaternionTest, FromMatrixRoundTrips) {
  Rng rng(11);
  for (int i = 0; i < 50; ++i) {
    const Quaternion q =
        Quaternion::from_axis_angle({rng.normal(), rng.normal(), rng.normal()}, rng.uniform(0.1, 3.0));
    const Quaternion q2 = Quaternion::from_matrix(q.to_matrix());
    // q and -q encode the same rotation.
    const double dot = q.w * q2.w + q.x * q2.x + q.y * q2.y + q.z * q2.z;
    EXPECT_NEAR(std::abs(dot), 1.0, 1e-9);
  }
}

TEST(QuaternionTest, IntegrationOfConstantRateMatchesAxisAngle) {
  const Vec3 omega{0.0, 0.0, 1.0};  // 1 rad/s about z
  Quaternion q;
  const int steps = 1000;
  const double dt = 1e-3;
  for (int i = 0; i < steps; ++i) q = q.integrated(omega, dt);
  const Vec3 rotated = q.rotate({1, 0, 0});
  EXPECT_NEAR(rotated.x, std::cos(1.0), 1e-6);
  EXPECT_NEAR(rotated.y, std::sin(1.0), 1e-6);
}

TEST(MatrixTest, MatmulAgainstKnownProduct) {
  const Matrix a{{1, 2}, {3, 4}};
  const Matrix b{{5, 6}, {7, 8}};
  const Matrix c = a.matmul(b);
  EXPECT_DOUBLE_EQ(c(0, 0), 19);
  EXPECT_DOUBLE_EQ(c(0, 1), 22);
  EXPECT_DOUBLE_EQ(c(1, 0), 43);
  EXPECT_DOUBLE_EQ(c(1, 1), 50);
}

TEST(MatrixTest, ShapeMismatchThrows) {
  const Matrix a(2, 3), b(2, 3);
  EXPECT_THROW(a.matmul(b), std::invalid_argument);
  EXPECT_THROW(a.at(5, 0), std::out_of_range);
  EXPECT_THROW((Matrix{{1, 2}, {3}}), std::invalid_argument);
}

TEST(MatrixTest, SolveLinearSystemRecoversSolution) {
  Rng rng(3);
  for (int trial = 0; trial < 20; ++trial) {
    const std::size_t n = 1 + trial % 6;
    Matrix m(n, n);
    std::vector<double> x_true(n);
    for (std::size_t i = 0; i < n; ++i) {
      x_true[i] = rng.normal();
      for (std::size_t j = 0; j < n; ++j) m(i, j) = rng.normal();
      m(i, i) += 3.0;  // keep well-conditioned
    }
    std::vector<double> b(n, 0.0);
    for (std::size_t i = 0; i < n; ++i)
      for (std::size_t j = 0; j < n; ++j) b[i] += m(i, j) * x_true[j];
    const auto x = solve_linear_system(m, b);
    for (std::size_t i = 0; i < n; ++i) EXPECT_NEAR(x[i], x_true[i], 1e-8);
  }
}

TEST(MatrixTest, SingularSystemThrows) {
  Matrix m{{1, 2}, {2, 4}};
  EXPECT_THROW(solve_linear_system(m, {1.0, 2.0}), std::runtime_error);
}

TEST(StatsTest, MeanVarianceKnownValues) {
  const std::vector<double> xs{2, 4, 4, 4, 5, 5, 7, 9};
  EXPECT_DOUBLE_EQ(mean(xs), 5.0);
  EXPECT_DOUBLE_EQ(variance(xs), 4.0);
  EXPECT_DOUBLE_EQ(stddev(xs), 2.0);
}

TEST(StatsTest, PearsonOfLinearSeriesIsOne) {
  std::vector<double> xs(50), ys(50);
  for (int i = 0; i < 50; ++i) {
    xs[i] = i;
    ys[i] = 3.0 * i - 7.0;
  }
  EXPECT_NEAR(pearson(xs, ys), 1.0, 1e-12);
  for (auto& y : ys) y = -y;
  EXPECT_NEAR(pearson(xs, ys), -1.0, 1e-12);
}

TEST(StatsTest, PercentileInterpolates) {
  std::vector<double> xs{1, 2, 3, 4, 5};
  EXPECT_DOUBLE_EQ(percentile(xs, 0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 100), 5.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 50), 3.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 25), 2.0);
}

TEST(StatsTest, NormalQuantileInvertsCdf) {
  for (double p : {0.001, 0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 0.999}) {
    const double x = normal_quantile(p);
    EXPECT_NEAR(normal_cdf(x), p, 1e-9) << "p=" << p;
  }
  EXPECT_NEAR(normal_quantile(0.5), 0.0, 1e-12);
  EXPECT_THROW(normal_quantile(0.0), std::domain_error);
  EXPECT_THROW(normal_quantile(1.0), std::domain_error);
}

TEST(RngTest, DeterministicForFixedSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(RngTest, UniformInRange) {
  Rng rng(5);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform(-2.0, 3.0);
    EXPECT_GE(u, -2.0);
    EXPECT_LT(u, 3.0);
  }
}

TEST(RngTest, UniformU64Unbiased) {
  Rng rng(6);
  std::array<int, 7> counts{};
  const int n = 70000;
  for (int i = 0; i < n; ++i) counts[rng.uniform_u64(7)]++;
  for (int c : counts) EXPECT_NEAR(c, n / 7.0, 5.0 * std::sqrt(n / 7.0));
}

TEST(RngTest, NormalMomentsMatch) {
  Rng rng(8);
  std::vector<double> xs(20000);
  for (auto& x : xs) x = rng.normal(1.5, 2.0);
  EXPECT_NEAR(mean(xs), 1.5, 0.05);
  EXPECT_NEAR(stddev(xs), 2.0, 0.05);
}

TEST(RngTest, SplitStreamsDiffer) {
  Rng parent(9);
  Rng child = parent.split();
  int same = 0;
  for (int i = 0; i < 64; ++i)
    if (parent.next() == child.next()) ++same;
  EXPECT_EQ(same, 0);
}

TEST(BitVecTest, StringRoundTrip) {
  const BitVec v = BitVec::from_string("1011001");
  EXPECT_EQ(v.size(), 7u);
  EXPECT_EQ(v.to_string(), "1011001");
  EXPECT_TRUE(v.get(0));
  EXPECT_FALSE(v.get(1));
  EXPECT_EQ(v.popcount(), 4u);
  EXPECT_THROW(BitVec::from_string("10x"), std::invalid_argument);
}

TEST(BitVecTest, BytesRoundTrip) {
  const std::vector<std::uint8_t> bytes{0xA5, 0x01};
  const BitVec v = BitVec::from_bytes(bytes, 16);
  EXPECT_EQ(v.to_bytes(), bytes);
  EXPECT_EQ(v.to_string(), "1010010110000000");
}

TEST(BitVecTest, XorAndHamming) {
  const BitVec a = BitVec::from_string("110010");
  const BitVec b = BitVec::from_string("010011");
  EXPECT_EQ((a ^ b).to_string(), "100001");
  EXPECT_EQ(a.hamming_distance(b), 2u);
  EXPECT_NEAR(a.mismatch_ratio(b), 2.0 / 6.0, 1e-15);
  EXPECT_THROW(a.hamming_distance(BitVec(5)), std::invalid_argument);
}

TEST(BitVecTest, SliceAppendPushBack) {
  BitVec v;
  for (int i = 0; i < 130; ++i) v.push_back(i % 3 == 0);
  EXPECT_EQ(v.size(), 130u);
  const BitVec s = v.slice(60, 9);
  for (int i = 0; i < 9; ++i) EXPECT_EQ(s.get(i), (60 + i) % 3 == 0);
  BitVec w = v;
  w.append(s);
  EXPECT_EQ(w.size(), 139u);
  EXPECT_EQ(w.slice(130, 9), s);
  EXPECT_THROW(v.slice(128, 10), std::out_of_range);
}

TEST(BitVecTest, CrossWordBoundaryConsistency) {
  // Exercise indices straddling 64-bit word boundaries.
  BitVec v(200);
  for (std::size_t i = 62; i < 70; ++i) v.set(i, true);
  EXPECT_EQ(v.popcount(), 8u);
  const BitVec s = v.slice(60, 12);
  EXPECT_EQ(s.to_string(), "001111111100");
}

}  // namespace
}  // namespace wavekey
