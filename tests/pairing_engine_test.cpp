// Tests of core::PairingEngine — concurrent key establishment from a bounded
// queue — plus the end-to-end determinism contract of the parallel training
// path: a pool of size 1 must train bit-identical weights to the serial
// path, and a fixed pool size must be reproducible run to run.

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "core/encoders.hpp"
#include "core/pairing_engine.hpp"
#include "core/seed_quantizer.hpp"
#include "crypto/drbg.hpp"
#include "numeric/rng.hpp"
#include "protocol/session.hpp"
#include "runtime/thread_pool.hpp"

using namespace wavekey;
using namespace wavekey::core;

namespace {

PairingRequest make_request(const SeedQuantizer& quantizer, std::uint64_t id) {
  Rng rng(id * 6151 + 29);
  PairingRequest req;
  req.id = id;
  req.rng_seed = id * 7919 + 17;
  req.mobile_latent.resize(quantizer.latent_dim());
  req.server_latent.resize(quantizer.latent_dim());
  for (std::size_t d = 0; d < quantizer.latent_dim(); ++d) {
    req.mobile_latent[d] = rng.normal();
    req.server_latent[d] = req.mobile_latent[d] + rng.normal(0.0, 0.02);
  }
  return req;
}

std::vector<PairingReport> run_batch(const SeedQuantizer& quantizer,
                                     const PairingEngineConfig& config, std::size_t sessions) {
  PairingEngine engine(quantizer, config);
  for (std::size_t i = 0; i < sessions; ++i)
    EXPECT_TRUE(engine.submit(make_request(quantizer, i)));
  return engine.finish();
}

}  // namespace

TEST(PairingEngine, ConcurrentSessionsAllEstablishKeys) {
  const WaveKeyConfig wk;
  const SeedQuantizer quantizer = SeedQuantizer::from_normal(wk);
  PairingEngineConfig config;
  config.threads = 4;
  config.queue_capacity = 8;
  const std::vector<PairingReport> reports = run_batch(quantizer, config, 12);

  ASSERT_EQ(reports.size(), 12u);
  for (std::size_t i = 0; i < reports.size(); ++i) {
    EXPECT_EQ(reports[i].id, i);  // finish() sorts by request id
    EXPECT_TRUE(reports[i].success) << "session " << i << ": " << reports[i].error;
    EXPECT_EQ(reports[i].key.size(), wk.key_bits);
    EXPECT_FALSE(reports[i].tau_violation);
    EXPECT_LE(reports[i].critical_latency_s, wk.tau_s);
    EXPECT_GE(reports[i].queue_wait_s, 0.0);
    EXPECT_GT(reports[i].service_s, 0.0);
  }
}

TEST(PairingEngine, MatchesDirectKeyAgreement) {
  // The engine must be a pure scheduler: each session's key equals what a
  // direct single-threaded run_key_agreement produces from the same seeds.
  const WaveKeyConfig wk;
  const SeedQuantizer quantizer = SeedQuantizer::from_normal(wk);
  PairingEngineConfig config;
  config.threads = 1;
  const std::vector<PairingReport> reports = run_batch(quantizer, config, 4);

  for (const PairingReport& report : reports) {
    const PairingRequest req = make_request(quantizer, report.id);
    protocol::SessionConfig session = config.session;
    session.params.seed_bits = quantizer.seed_bits();
    crypto::Drbg mobile_rng(req.rng_seed ^ 0xAB1Eull);
    crypto::Drbg server_rng(req.rng_seed ^ 0x5E44ull);
    const protocol::SessionResult direct = protocol::run_key_agreement(
        session, quantizer.quantize(req.mobile_latent), quantizer.quantize(req.server_latent),
        mobile_rng, server_rng);
    ASSERT_TRUE(direct.success);
    ASSERT_TRUE(report.success);
    EXPECT_EQ(report.key.to_string(), direct.mobile_key.to_string());
  }
}

TEST(PairingEngine, DeterministicAcrossRunsAndThreadCounts) {
  const WaveKeyConfig wk;
  const SeedQuantizer quantizer = SeedQuantizer::from_normal(wk);
  PairingEngineConfig serial;
  serial.threads = 1;
  PairingEngineConfig wide;
  wide.threads = 4;
  const auto a = run_batch(quantizer, serial, 8);
  const auto b = run_batch(quantizer, wide, 8);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].success, b[i].success);
    EXPECT_EQ(a[i].key.to_string(), b[i].key.to_string())
        << "keys must not depend on scheduling (session " << i << ")";
  }
}

TEST(PairingEngine, BadLatentLengthYieldsFailureReport) {
  const WaveKeyConfig wk;
  const SeedQuantizer quantizer = SeedQuantizer::from_normal(wk);
  PairingEngineConfig config;
  config.threads = 2;
  PairingEngine engine(quantizer, config);
  PairingRequest good = make_request(quantizer, 0);
  PairingRequest bad = make_request(quantizer, 1);
  bad.mobile_latent.resize(quantizer.latent_dim() + 3);  // wrong length
  EXPECT_TRUE(engine.submit(std::move(good)));
  EXPECT_TRUE(engine.submit(std::move(bad)));
  const auto reports = engine.finish();
  ASSERT_EQ(reports.size(), 2u);
  EXPECT_TRUE(reports[0].success);
  EXPECT_FALSE(reports[1].success);
  EXPECT_FALSE(reports[1].error.empty());
}

TEST(PairingEngine, TinyQueueStillCompletesEverySession) {
  const WaveKeyConfig wk;
  const SeedQuantizer quantizer = SeedQuantizer::from_normal(wk);
  PairingEngineConfig config;
  config.threads = 2;
  config.queue_capacity = 1;  // submit() must block, never drop
  const auto reports = run_batch(quantizer, config, 10);
  ASSERT_EQ(reports.size(), 10u);
  for (const auto& r : reports) EXPECT_TRUE(r.success) << r.error;
}

TEST(PairingEngine, SubmitAfterFinishIsRejected) {
  const WaveKeyConfig wk;
  const SeedQuantizer quantizer = SeedQuantizer::from_normal(wk);
  PairingEngine engine(quantizer, PairingEngineConfig{});
  engine.finish();
  EXPECT_FALSE(engine.submit(make_request(quantizer, 0)));
}

namespace {

// Trains a fresh encoder pair on a tiny corpus and returns the serialized
// weight bytes — the strictest possible equality witness.
std::string trained_weight_bytes(const WaveKeyDataset& dataset) {
  WaveKeyConfig wk;
  Rng rng(42);
  EncoderPair encoders(wk.latent_dim, rng);
  TrainConfig tc;
  tc.epochs = 2;
  tc.batch_size = 4;  // the tiny corpus must still fill whole minibatches
  encoders.train(dataset, tc);
  std::ostringstream os;
  encoders.save(os);
  return os.str();
}

}  // namespace

TEST(TrainingDeterminism, PoolSizeOneIsBitIdenticalToSerial) {
  DatasetConfig dc;
  dc.volunteers = 1;
  dc.devices = 1;
  dc.gestures_per_pair = 2;
  dc.windows_per_gesture = 4;
  dc.gesture_active_s = 8.0;
  const WaveKeyDataset dataset = WaveKeyDataset::generate(dc);
  ASSERT_GT(dataset.size(), 0u);

  const std::string serial = trained_weight_bytes(dataset);

  std::string pooled1;
  {
    runtime::ScopedComputePool pool(1);
    pooled1 = trained_weight_bytes(dataset);
  }
  EXPECT_EQ(serial, pooled1) << "pool size 1 must reproduce serial training bit for bit";

  // A fixed pool size must also be reproducible against itself: the chunked
  // reduction depends only on (input, pool size), never on scheduling. Pool
  // sizes 2, 3 and 4 exercise distinct chunk layouts over the GEMM-lowered
  // kernels.
  for (const std::size_t size : {std::size_t{2}, std::size_t{3}, std::size_t{4}}) {
    std::string pooled_a, pooled_b;
    {
      runtime::ScopedComputePool pool(size);
      pooled_a = trained_weight_bytes(dataset);
    }
    {
      runtime::ScopedComputePool pool(size);
      pooled_b = trained_weight_bytes(dataset);
    }
    EXPECT_EQ(pooled_a, pooled_b)
        << "pool size " << size << " must be reproducible run to run";
  }
}
