// Tests for the backend access-control server (src/server, DESIGN.md §9):
// HKDF vectors, the sliding-bitmap replay window, token-bucket admission,
// the AccessRequest/AccessGrant wire codec (+ malformed-input fuzzing in
// the style of protocol_test.cpp), the sharded KeyVault lifecycle (TTL
// boundary, revocation, rotation epochs, LRU pressure), NIST randomness of
// rotated keys, the AccessServer end-to-end path, and the pairing-engine →
// vault handoff.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <limits>
#include <list>
#include <mutex>
#include <optional>
#include <set>
#include <thread>
#include <unordered_map>
#include <utility>
#include <vector>

#include "core/config.hpp"
#include "core/pairing_engine.hpp"
#include "core/seed_quantizer.hpp"
#include "crypto/drbg.hpp"
#include "crypto/hkdf.hpp"
#include "crypto/hmac.hpp"
#include "nist/nist.hpp"
#include "numeric/rng.hpp"
#include "server/access_server.hpp"
#include "server/admission.hpp"
#include "server/key_vault.hpp"
#include "server/replay_window.hpp"

using namespace wavekey;
using namespace wavekey::server;
using protocol::Bytes;
using protocol::WireError;

namespace {

SessionKey random_key(crypto::Drbg& rng) {
  SessionKey key{};
  rng.random_bytes(key);
  return key;
}

std::array<std::uint8_t, kNonceBytes> nonce_from(std::uint64_t v) {
  std::array<std::uint8_t, kNonceBytes> nonce{};
  for (std::size_t i = 0; i < nonce.size(); ++i)
    nonce[i] = static_cast<std::uint8_t>(v >> (8 * i));
  return nonce;
}

/// Builds a valid request against the vault's current key/epoch.
AccessRequest client_request(const KeyVault& vault, std::uint64_t session_id,
                             std::uint64_t counter, double now_s,
                             Bytes payload = {0xD0, 0x0F}) {
  const auto key = vault.current_key(session_id, now_s);
  const auto epoch = vault.current_epoch(session_id, now_s);
  EXPECT_TRUE(key.has_value() && epoch.has_value());
  return make_access_request(session_id, epoch.value_or(0), counter, nonce_from(counter),
                             std::move(payload), key.value_or(SessionKey{}));
}

AccessStatus authorize(KeyVault& vault, const AccessRequest& req, double now_s,
                       SessionKey* key_out = nullptr) {
  return vault.authorize(req, req.mac_input(), now_s, key_out);
}

}  // namespace

// --- HKDF (RFC 5869) ---

TEST(HkdfTest, Rfc5869Case1) {
  const std::vector<std::uint8_t> ikm(22, 0x0b);
  std::vector<std::uint8_t> salt, info;
  for (std::uint8_t i = 0x00; i <= 0x0c; ++i) salt.push_back(i);
  for (std::uint8_t i = 0xf0; i <= 0xf9; ++i) info.push_back(i);

  const crypto::Digest256 prk = crypto::hkdf_extract(salt, ikm);
  const crypto::Digest256 expected_prk = {0x07, 0x77, 0x09, 0x36, 0x2c, 0x2e, 0x32, 0xdf,
                                          0x0d, 0xdc, 0x3f, 0x0d, 0xc4, 0x7b, 0xba, 0x63,
                                          0x90, 0xb6, 0xc7, 0x3b, 0xb5, 0x0f, 0x9c, 0x31,
                                          0x22, 0xec, 0x84, 0x4a, 0xd7, 0xc2, 0xb3, 0xe5};
  EXPECT_EQ(prk, expected_prk);

  const std::vector<std::uint8_t> okm = crypto::hkdf_expand(prk, info, 42);
  const std::vector<std::uint8_t> expected_okm = {
      0x3c, 0xb2, 0x5f, 0x25, 0xfa, 0xac, 0xd5, 0x7a, 0x90, 0x43, 0x4f, 0x64, 0xd0, 0x36,
      0x2f, 0x2a, 0x2d, 0x2d, 0x0a, 0x90, 0xcf, 0x1a, 0x5a, 0x4c, 0x5d, 0xb0, 0x2d, 0x56,
      0xec, 0xc4, 0xc5, 0xbf, 0x34, 0x00, 0x72, 0x08, 0xd5, 0xb8, 0x87, 0x18, 0x58, 0x65};
  EXPECT_EQ(okm, expected_okm);
}

TEST(HkdfTest, Rfc5869Case2MultiBlockExpand) {
  // A.2: 80-byte IKM/salt/info and L=82, so expand runs T(1)..T(3) and
  // truncates the last block — the multi-block counter path that Case 1
  // (42 bytes) only half exercises.
  std::vector<std::uint8_t> ikm, salt, info;
  for (int i = 0x00; i <= 0x4f; ++i) ikm.push_back(static_cast<std::uint8_t>(i));
  for (int i = 0x60; i <= 0xaf; ++i) salt.push_back(static_cast<std::uint8_t>(i));
  for (int i = 0xb0; i <= 0xff; ++i) info.push_back(static_cast<std::uint8_t>(i));

  const crypto::Digest256 prk = crypto::hkdf_extract(salt, ikm);
  const crypto::Digest256 expected_prk = {0x06, 0xa6, 0xb8, 0x8c, 0x58, 0x53, 0x36, 0x1a,
                                          0x06, 0x10, 0x4c, 0x9c, 0xeb, 0x35, 0xb4, 0x5c,
                                          0xef, 0x76, 0x00, 0x14, 0x90, 0x46, 0x71, 0x01,
                                          0x4a, 0x19, 0x3f, 0x40, 0xc1, 0x5f, 0xc2, 0x44};
  EXPECT_EQ(prk, expected_prk);

  const std::vector<std::uint8_t> okm = crypto::hkdf_expand(prk, info, 82);
  const std::vector<std::uint8_t> expected_okm = {
      0xb1, 0x1e, 0x39, 0x8d, 0xc8, 0x03, 0x27, 0xa1, 0xc8, 0xe7, 0xf7, 0x8c, 0x59, 0x6a,
      0x49, 0x34, 0x4f, 0x01, 0x2e, 0xda, 0x2d, 0x4e, 0xfa, 0xd8, 0xa0, 0x50, 0xcc, 0x4c,
      0x19, 0xaf, 0xa9, 0x7c, 0x59, 0x04, 0x5a, 0x99, 0xca, 0xc7, 0x82, 0x72, 0x71, 0xcb,
      0x41, 0xc6, 0x5e, 0x59, 0x0e, 0x09, 0xda, 0x32, 0x75, 0x60, 0x0c, 0x2f, 0x09, 0xb8,
      0x36, 0x77, 0x93, 0xa9, 0xac, 0xa3, 0xdb, 0x71, 0xcc, 0x30, 0xc5, 0x81, 0x79, 0xec,
      0x3e, 0x87, 0xc1, 0x4c, 0x01, 0xd5, 0xc1, 0xf3, 0x43, 0x4f, 0x1d, 0x87};
  EXPECT_EQ(okm, expected_okm);
  EXPECT_EQ(crypto::hkdf_sha256(salt, ikm, info, 82), expected_okm);
}

TEST(HkdfTest, LabeledDerivationChainsOneHopPerLabel) {
  // hkdf_labeled is defined as iterated extract-then-expand with the label
  // as salt — check it against the primitives hop by hop, plus the identity
  // that an empty label list just re-keys nothing.
  std::vector<std::uint8_t> master(32, 0xA5);
  const std::vector<std::uint8_t> l1 = {'t', 'e', 'n', 'a', 'n', 't'};
  const std::vector<std::uint8_t> l2 = {'t', 'a', 'g'};
  const std::vector<std::vector<std::uint8_t>> labels = {l1, l2};

  crypto::Digest256 expected{};
  std::copy(master.begin(), master.end(), expected.begin());
  EXPECT_EQ(crypto::hkdf_labeled(master, {}), expected);  // zero hops = identity
  for (const auto& label : labels) {
    const auto okm = crypto::hkdf_sha256(label, expected, {}, 32);
    std::copy(okm.begin(), okm.end(), expected.begin());
  }
  EXPECT_EQ(crypto::hkdf_labeled(master, labels), expected);

  // Distinct labels at the same depth diverge; prefix order matters.
  const std::vector<std::vector<std::uint8_t>> swapped = {l2, l1};
  EXPECT_NE(crypto::hkdf_labeled(master, labels), crypto::hkdf_labeled(master, swapped));
  const std::vector<std::vector<std::uint8_t>> just_one = {l1};
  EXPECT_NE(crypto::hkdf_labeled(master, labels), crypto::hkdf_labeled(master, just_one));
}

TEST(HkdfTest, Rfc5869Case3ZeroSalt) {
  // A.3: empty salt and info.
  const std::vector<std::uint8_t> ikm(22, 0x0b);
  const std::vector<std::uint8_t> okm = crypto::hkdf_sha256({}, ikm, {}, 42);
  const std::vector<std::uint8_t> expected = {
      0x8d, 0xa4, 0xe7, 0x75, 0xa5, 0x63, 0xc1, 0x8f, 0x71, 0x5f, 0x80, 0x2a, 0x06, 0x3c,
      0x5a, 0x31, 0xb8, 0xa1, 0x1f, 0x5c, 0x5e, 0xe1, 0x87, 0x9e, 0xc3, 0x45, 0x4e, 0x5f,
      0x3c, 0x73, 0x8d, 0x2d, 0x9d, 0x20, 0x13, 0x95, 0xfa, 0xa4, 0xb6, 0x1a, 0x96, 0xc8};
  EXPECT_EQ(okm, expected);
}

TEST(HkdfTest, ExpandLengthBound) {
  const crypto::Digest256 prk{};
  EXPECT_NO_THROW(crypto::hkdf_expand(prk, {}, 255 * 32));
  EXPECT_THROW(crypto::hkdf_expand(prk, {}, 255 * 32 + 1), std::invalid_argument);
}

// --- replay window ---

TEST(ReplayWindowTest, DuplicateRejectedFreshAccepted) {
  ReplayWindow window(128);
  EXPECT_TRUE(window.check_and_update(1));
  EXPECT_FALSE(window.check_and_update(1));
  EXPECT_TRUE(window.check_and_update(2));
  EXPECT_FALSE(window.check_and_update(2));
  EXPECT_FALSE(window.check_and_update(1));
}

TEST(ReplayWindowTest, OutOfOrderWithinWindow) {
  ReplayWindow window(128);
  EXPECT_TRUE(window.check_and_update(100));
  EXPECT_TRUE(window.check_and_update(40));  // age 60, inside 128
  EXPECT_FALSE(window.check_and_update(40));
  EXPECT_TRUE(window.check_and_update(99));
  EXPECT_FALSE(window.check_and_update(99));
}

TEST(ReplayWindowTest, TooOldRejected) {
  ReplayWindow window(128);
  EXPECT_TRUE(window.check_and_update(500));
  EXPECT_FALSE(window.check_and_update(500 - 128));  // age == bits: off the edge
  EXPECT_TRUE(window.check_and_update(500 - 127));   // oldest representable
}

TEST(ReplayWindowTest, SlideAcrossWordBoundaries) {
  ReplayWindow window(128);
  for (std::uint64_t c = 1; c <= 70; ++c) EXPECT_TRUE(window.check_and_update(c));
  // Jump far ahead but keep some history inside the window.
  EXPECT_TRUE(window.check_and_update(130));
  for (std::uint64_t c = 3; c <= 70; ++c)
    EXPECT_FALSE(window.check_and_update(c)) << "counter " << c << " must stay seen";
  EXPECT_FALSE(window.check_and_update(2));  // age 128: fell off
  // A giant jump clears all history.
  EXPECT_TRUE(window.check_and_update(10000));
  EXPECT_FALSE(window.check_and_update(130));  // far below the new window
}

TEST(ReplayWindowTest, ResetForgetsEverything) {
  ReplayWindow window(64);
  EXPECT_TRUE(window.check_and_update(7));
  EXPECT_FALSE(window.check_and_update(7));
  window.reset();
  EXPECT_TRUE(window.check_and_update(7));
}

// Counters are uint64 and the age arithmetic (max_seen - counter) runs right
// at the type's edge when a client burns through the top of the range — no
// wraparound may ever readmit a seen counter.

TEST(ReplayWindowTest, SequenceAtUint64MaxStaysExactlyOnce) {
  ReplayWindow window(128);
  const std::uint64_t top = std::numeric_limits<std::uint64_t>::max();
  EXPECT_TRUE(window.check_and_update(top - 2));
  EXPECT_TRUE(window.check_and_update(top));  // slide of 2 at the very edge
  EXPECT_EQ(window.max_seen(), top);
  EXPECT_TRUE(window.check_and_update(top - 1));   // in-window straggler
  EXPECT_FALSE(window.check_and_update(top));      // duplicates still caught
  EXPECT_FALSE(window.check_and_update(top - 1));
  EXPECT_FALSE(window.check_and_update(top - 2));
  // There is no counter above max: the window simply stays parked at top.
  EXPECT_TRUE(window.check_and_update(top - 3));
}

TEST(ReplayWindowTest, HugeAgeBelowMaxRejectsWithoutWrap) {
  ReplayWindow window(64);
  const std::uint64_t top = std::numeric_limits<std::uint64_t>::max();
  EXPECT_TRUE(window.check_and_update(top));
  // Ages near 2^64: far older than any window — rejected, not readmitted.
  EXPECT_FALSE(window.check_and_update(0));
  EXPECT_FALSE(window.check_and_update(1));
  EXPECT_FALSE(window.check_and_update(top - 64));  // exactly on the edge
  EXPECT_TRUE(window.check_and_update(top - 63));   // last in-window age
}

TEST(ReplayWindowTest, SlideByNearUint64MaxClearsCleanly) {
  ReplayWindow window(128);
  const std::uint64_t top = std::numeric_limits<std::uint64_t>::max();
  EXPECT_TRUE(window.check_and_update(5));
  EXPECT_TRUE(window.check_and_update(top));  // distance ~2^64: full clear
  EXPECT_EQ(window.max_seen(), top);
  EXPECT_FALSE(window.check_and_update(5));       // ancient -> replay
  EXPECT_FALSE(window.check_and_update(top));     // new max is marked seen
  EXPECT_TRUE(window.check_and_update(top - 1));  // window usable after slide
}

TEST(ReplayWindowTest, SnapshotRestoreRoundTripsAtTheEdge) {
  ReplayWindow window(128);
  const std::uint64_t top = std::numeric_limits<std::uint64_t>::max();
  EXPECT_TRUE(window.check_and_update(top - 70));
  EXPECT_TRUE(window.check_and_update(top));
  ReplayWindow restored(128);
  restored.restore(window.snapshot());
  EXPECT_EQ(restored.max_seen(), top);
  EXPECT_FALSE(restored.check_and_update(top));       // seen before snapshot
  EXPECT_FALSE(restored.check_and_update(top - 70));  // bitmap rode along
  EXPECT_TRUE(restored.check_and_update(top - 1));    // fresh stays fresh
}

// --- admission control ---

TEST(TokenBucketTest, BurstThenRate) {
  TokenBucket bucket(10.0, 3.0);  // 10/s, burst 3
  EXPECT_TRUE(bucket.try_acquire(0.0));
  EXPECT_TRUE(bucket.try_acquire(0.0));
  EXPECT_TRUE(bucket.try_acquire(0.0));
  EXPECT_FALSE(bucket.try_acquire(0.0));
  EXPECT_FALSE(bucket.try_acquire(0.05));  // only 0.5 tokens refilled
  EXPECT_TRUE(bucket.try_acquire(0.1));    // 1 token refilled
  EXPECT_FALSE(bucket.try_acquire(0.1));
}

TEST(TokenBucketTest, RefillCapsAtBurst) {
  TokenBucket bucket(100.0, 5.0);
  for (int i = 0; i < 5; ++i) EXPECT_TRUE(bucket.try_acquire(0.0));
  // A long idle period must not bank more than `burst` tokens.
  EXPECT_NEAR(bucket.tokens(1000.0), 5.0, 1e-9);
}

TEST(TenantLimiterTest, TenantsAreIsolated) {
  AdmissionConfig config;
  config.rate_per_s = 0.0;  // no refill: burst is the whole budget
  config.burst = 2.0;
  TenantLimiter limiter(config);
  EXPECT_TRUE(limiter.admit(1, 0.0));
  EXPECT_TRUE(limiter.admit(1, 0.0));
  EXPECT_FALSE(limiter.admit(1, 0.0));  // tenant 1 exhausted
  EXPECT_TRUE(limiter.admit(2, 0.0));   // tenant 2 unaffected
}

TEST(TenantLimiterTest, TenantMapBoundFailsClosed) {
  AdmissionConfig config;
  config.max_tenants = 2;
  TenantLimiter limiter(config);
  EXPECT_TRUE(limiter.admit(1, 0.0));
  EXPECT_TRUE(limiter.admit(2, 0.0));
  EXPECT_FALSE(limiter.admit(3, 0.0));  // map full: new tenants refused
  EXPECT_TRUE(limiter.admit(1, 0.0));   // existing tenants unaffected
}

// --- access protocol wire codec ---

TEST(AccessProtocolTest, RequestRoundTrip) {
  crypto::Drbg rng(1);
  const SessionKey key = random_key(rng);
  const AccessRequest req =
      make_access_request(0x1122334455667788ull, 3, 42, nonce_from(9), {1, 2, 3}, key);
  const AccessRequest parsed = AccessRequest::parse(req.serialize());
  EXPECT_EQ(parsed.session_id, req.session_id);
  EXPECT_EQ(parsed.epoch, 3u);
  EXPECT_EQ(parsed.counter, 42u);
  EXPECT_EQ(parsed.nonce, req.nonce);
  EXPECT_EQ(parsed.payload, req.payload);
  EXPECT_EQ(parsed.mac, req.mac);
}

TEST(AccessProtocolTest, GrantRoundTripAndVerify) {
  crypto::Drbg rng(2);
  const SessionKey key = random_key(rng);
  const AccessGrant grant = make_access_grant(7, 11, AccessStatus::kGranted, key);
  const AccessGrant parsed = AccessGrant::parse(grant.serialize());
  EXPECT_EQ(parsed.session_id, 7u);
  EXPECT_EQ(parsed.counter, 11u);
  EXPECT_EQ(parsed.status, AccessStatus::kGranted);
  EXPECT_TRUE(verify_access_grant(parsed, key));

  AccessGrant forged = parsed;
  forged.status = AccessStatus::kRevoked;  // attacker flips the decision
  EXPECT_FALSE(verify_access_grant(forged, key));
}

TEST(AccessProtocolTest, UnknownGrantStatusByteThrows) {
  const AccessGrant grant = make_access_grant(1, 1, AccessStatus::kGranted, {});
  Bytes wire = grant.serialize();
  wire[1 + 8 + 8] = 200;  // status byte past tag + session id + counter
  EXPECT_THROW(AccessGrant::parse(wire), WireError);
}

TEST(AccessProtocolTest, EveryStatusHasDistinctName) {
  std::set<std::string> names;
  for (std::uint8_t s = 0; s < kAccessStatusCount; ++s)
    names.insert(access_status_name(static_cast<AccessStatus>(s)));
  EXPECT_EQ(names.size(), kAccessStatusCount);
}

// --- malformed-input fuzzing (mirrors protocol_test.cpp's corpus style) ---

namespace {

Bytes mutate_wire(const Bytes& base, Rng& rng) {
  Bytes out = base;
  switch (rng.uniform_u64(4)) {
    case 0:  // truncate
      out.resize(static_cast<std::size_t>(rng.uniform_u64(base.size() + 1)));
      break;
    case 1: {  // flip 1..8 bits
      if (out.empty()) break;
      const std::size_t flips = 1 + rng.uniform_u64(8);
      for (std::size_t i = 0; i < flips; ++i) {
        const std::size_t bit = rng.uniform_u64(out.size() * 8);
        out[bit / 8] ^= static_cast<std::uint8_t>(1u << (bit % 8));
      }
      break;
    }
    case 2:  // fully random buffer
      out.resize(static_cast<std::size_t>(rng.uniform_u64(300)));
      rng.fill_bytes(out);
      break;
    default:  // append junk
      for (std::size_t i = 0, n = 1 + rng.uniform_u64(32); i < n; ++i)
        out.push_back(static_cast<std::uint8_t>(rng.uniform_u64(256)));
      break;
  }
  return out;
}

template <typename F>
void fuzz_decoder(const Bytes& base, std::uint64_t seed, F&& decode) {
  Rng rng(seed);
  for (int i = 0; i < 1000; ++i) {
    const Bytes mutated = mutate_wire(base, rng);
    try {
      decode(mutated);  // parsing garbage successfully is fine; UB is not
    } catch (const WireError&) {
    } catch (const std::invalid_argument&) {
    }
  }
}

}  // namespace

TEST(MalformedInputFuzz, AccessRequestParseNeverCrashes) {
  crypto::Drbg rng(21);
  const AccessRequest req =
      make_access_request(5, 0, 1, nonce_from(1), {1, 2, 3, 4}, random_key(rng));
  fuzz_decoder(req.serialize(), 2001, [](const Bytes& wire) { (void)AccessRequest::parse(wire); });
}

TEST(MalformedInputFuzz, AccessGrantParseNeverCrashes) {
  crypto::Drbg rng(22);
  const AccessGrant grant = make_access_grant(5, 1, AccessStatus::kGranted, random_key(rng));
  fuzz_decoder(grant.serialize(), 2002, [](const Bytes& wire) { (void)AccessGrant::parse(wire); });
}

TEST(MalformedInputFuzz, FullAuthorizePathYieldsTypedErrorsOnly) {
  // Mutations driven through parse + vault authorization: every outcome must
  // be a typed AccessStatus or a WireError — never UB, never a grant for a
  // tampered MAC input.
  VaultConfig vc;
  KeyVault vault(vc);
  crypto::Drbg rng(23);
  const SessionKey key = random_key(rng);
  ASSERT_TRUE(vault.install(77, key, 0.0));
  const AccessRequest base = make_access_request(77, 0, 1, nonce_from(1), {9, 9}, key);
  const Bytes base_wire = base.serialize();

  Rng mutator(2003);
  for (int i = 0; i < 1000; ++i) {
    const Bytes mutated = mutate_wire(base_wire, mutator);
    try {
      const AccessRequest req = AccessRequest::parse(mutated);
      const AccessStatus status = authorize(vault, req, 1.0);
      if (status == AccessStatus::kGranted) {
        // Only the untouched original (or a replayed copy of it) can ever be
        // granted once — and only with the genuine MAC input.
        EXPECT_EQ(mutated, base_wire);
      }
    } catch (const WireError&) {
    }
  }
}

TEST(MalformedInputFuzz, FieldMutationsAreBadMac) {
  VaultConfig vc;
  KeyVault vault(vc);
  crypto::Drbg rng(24);
  const SessionKey key = random_key(rng);
  ASSERT_TRUE(vault.install(12, key, 0.0));
  const AccessRequest base = make_access_request(12, 0, 5, nonce_from(5), {1, 2, 3}, key);

  AccessRequest tampered = base;
  tampered.payload[0] ^= 1;  // payload flip: MAC no longer covers it
  EXPECT_EQ(authorize(vault, tampered, 0.5), AccessStatus::kBadMac);

  tampered = base;
  tampered.counter += 1;  // counter advance without re-MAC
  EXPECT_EQ(authorize(vault, tampered, 0.5), AccessStatus::kBadMac);

  tampered = base;
  tampered.mac[0] ^= 1;  // direct MAC corruption
  EXPECT_EQ(authorize(vault, tampered, 0.5), AccessStatus::kBadMac);
}

// --- key vault lifecycle ---

TEST(KeyVaultTest, GrantRoundTrip) {
  VaultConfig vc;
  KeyVault vault(vc);
  crypto::Drbg rng(31);
  ASSERT_TRUE(vault.install(1, random_key(rng), 0.0));
  const AccessRequest req = client_request(vault, 1, 1, 0.0);
  SessionKey grant_key{};
  EXPECT_EQ(authorize(vault, req, 0.1, &grant_key), AccessStatus::kGranted);
  EXPECT_EQ(grant_key, vault.current_key(1, 0.1).value());
  const AccessRequest unknown =
      make_access_request(999, 0, 1, nonce_from(1), {}, random_key(rng));
  EXPECT_EQ(authorize(vault, unknown, 0.1), AccessStatus::kUnknownSession);
}

TEST(KeyVaultTest, TtlExpiryExactlyAtBoundary) {
  VaultConfig vc;
  vc.ttl_s = 10.0;
  crypto::Drbg rng(32);

  {
    KeyVault vault(vc);
    ASSERT_TRUE(vault.install(1, random_key(rng), 0.0));
    // One tick before the boundary: still valid.
    EXPECT_EQ(authorize(vault, client_request(vault, 1, 1, 9.999), 9.999),
              AccessStatus::kGranted);
  }
  {
    KeyVault vault(vc);
    ASSERT_TRUE(vault.install(1, random_key(rng), 0.0));
    // Exactly at install + ttl: expired (valid while now < expiry).
    const AccessRequest req = client_request(vault, 1, 1, 9.0);
    EXPECT_EQ(authorize(vault, req, 10.0), AccessStatus::kExpired);
    EXPECT_EQ(vault.stats().ttl_evictions, 1u);
    // The tombstone was reaped: a second probe sees no session at all.
    EXPECT_EQ(authorize(vault, req, 10.0), AccessStatus::kUnknownSession);
  }
}

TEST(KeyVaultTest, RevokeThenAccess) {
  VaultConfig vc;
  KeyVault vault(vc);
  crypto::Drbg rng(33);
  ASSERT_TRUE(vault.install(4, random_key(rng), 0.0));
  const AccessRequest req = client_request(vault, 4, 1, 0.0);
  ASSERT_TRUE(vault.revoke(4));
  EXPECT_EQ(authorize(vault, req, 0.1), AccessStatus::kRevoked);
  // Revoked sessions cannot rotate back to life.
  EXPECT_FALSE(vault.rotate(4, 0.1).has_value());
  EXPECT_FALSE(vault.revoke(999));  // absent
}

TEST(KeyVaultTest, RotationInvalidatesOldEpoch) {
  VaultConfig vc;
  KeyVault vault(vc);
  crypto::Drbg rng(34);
  const SessionKey key0 = random_key(rng);
  ASSERT_TRUE(vault.install(9, key0, 0.0));

  // A request MACed under epoch 0, replayed after rotation.
  const AccessRequest old_epoch_req = client_request(vault, 9, 1, 0.0);
  const auto new_epoch = vault.rotate(9, 1.0);
  ASSERT_TRUE(new_epoch.has_value());
  EXPECT_EQ(*new_epoch, 1u);
  EXPECT_EQ(authorize(vault, old_epoch_req, 1.1), AccessStatus::kStaleEpoch);

  // Old key + new epoch number: the epoch check passes, the MAC must not.
  const AccessRequest old_key_req =
      make_access_request(9, 1, 2, nonce_from(2), {0xD0, 0x0F}, key0);
  EXPECT_EQ(authorize(vault, old_key_req, 1.1), AccessStatus::kBadMac);

  // The client re-derives the same epoch-1 key with the shared schedule.
  const SessionKey key1 = derive_rotated_key(key0, 9, 1);
  EXPECT_EQ(key1, vault.current_key(9, 1.1).value());
  EXPECT_NE(key1, key0);
  const AccessRequest fresh =
      make_access_request(9, 1, 2, nonce_from(2), {0xD0, 0x0F}, key1);
  EXPECT_EQ(authorize(vault, fresh, 1.2), AccessStatus::kGranted);
}

TEST(KeyVaultTest, RotationResetsReplayWindow) {
  VaultConfig vc;
  KeyVault vault(vc);
  crypto::Drbg rng(35);
  ASSERT_TRUE(vault.install(2, random_key(rng), 0.0));
  EXPECT_EQ(authorize(vault, client_request(vault, 2, 5, 0.0), 0.0), AccessStatus::kGranted);
  EXPECT_EQ(authorize(vault, client_request(vault, 2, 5, 0.0), 0.0), AccessStatus::kReplay);
  ASSERT_TRUE(vault.rotate(2, 0.5).has_value());
  // Same counter value is fresh again in the new epoch (new key, new window).
  EXPECT_EQ(authorize(vault, client_request(vault, 2, 5, 0.5), 0.5), AccessStatus::kGranted);
}

TEST(KeyVaultTest, ReplayAndWindowAging) {
  VaultConfig vc;
  vc.replay_window_bits = 64;
  KeyVault vault(vc);
  crypto::Drbg rng(36);
  ASSERT_TRUE(vault.install(3, random_key(rng), 0.0));
  EXPECT_EQ(authorize(vault, client_request(vault, 3, 100, 0.0), 0.0), AccessStatus::kGranted);
  EXPECT_EQ(authorize(vault, client_request(vault, 3, 60, 0.0), 0.0),
            AccessStatus::kGranted);  // out of order, inside the window
  EXPECT_EQ(authorize(vault, client_request(vault, 3, 60, 0.0), 0.0), AccessStatus::kReplay);
  EXPECT_EQ(authorize(vault, client_request(vault, 3, 36, 0.0), 0.0),
            AccessStatus::kReplay);  // age 64 == window width: off the edge
}

TEST(KeyVaultTest, LruEvictionUnderCapacityPressure) {
  VaultConfig vc;
  vc.shards = 1;  // single shard so capacity pressure is deterministic
  vc.capacity = 4;
  KeyVault vault(vc);
  crypto::Drbg rng(37);
  for (std::uint64_t id = 1; id <= 4; ++id) ASSERT_TRUE(vault.install(id, random_key(rng), 0.0));
  // Touch session 1 so session 2 becomes the least recently used.
  EXPECT_EQ(authorize(vault, client_request(vault, 1, 1, 0.0), 0.0), AccessStatus::kGranted);
  ASSERT_TRUE(vault.install(5, random_key(rng), 0.0));
  EXPECT_EQ(vault.stats().lru_evictions, 1u);
  EXPECT_EQ(vault.size(), 4u);
  EXPECT_EQ(authorize(vault, client_request(vault, 5, 1, 0.0), 0.0), AccessStatus::kGranted);
  EXPECT_EQ(authorize(vault, client_request(vault, 1, 2, 0.0), 0.0), AccessStatus::kGranted);
  // Session 2 is gone; building a request for it needs the stashed key.
  EXPECT_FALSE(vault.current_key(2, 0.0).has_value());
}

TEST(KeyVaultTest, LruEvictionRacingRevocationNeverResurrects) {
  // Revocation tombstones live in the same LRU as real entries, so capacity
  // churn can evict one. The safety contract under that race: a revoked
  // session answers kRevoked while its tombstone survives, kUnknownSession
  // once the tombstone ages out — and NEVER kGranted, from any interleaving.
  VaultConfig vc;
  vc.shards = 1;  // one shard: revoker and churner collide on the same LRU
  vc.capacity = 24;
  KeyVault vault(vc);
  crypto::Drbg rng(53);

  constexpr std::uint64_t kVictims = 8;
  std::vector<SessionKey> victim_keys;
  for (std::uint64_t id = 0; id < kVictims; ++id) {
    victim_keys.push_back(random_key(rng));
    ASSERT_TRUE(vault.install(id, victim_keys.back(), 0.0));
  }

  std::atomic<bool> stop{false};
  std::thread revoker([&] {
    for (int round = 0; round < 50; ++round)
      for (std::uint64_t id = 0; id < kVictims; ++id) vault.revoke(id);
  });
  std::thread churner([&] {
    // Fresh installs flood the shard, LRU-evicting whatever is coldest —
    // victims and tombstones alike.
    crypto::Drbg churn_rng(54);
    for (std::uint64_t id = 1000; !stop.load(); ++id)
      vault.install(id, random_key(churn_rng), 0.0);
  });
  std::thread prober([&] {
    // Races both writers; outcomes mid-race are timing-dependent (a grant
    // before the first revoke lands is legitimate) — the value of this
    // thread is exercising authorize against concurrent revoke+evict.
    for (int round = 0; round < 200; ++round)
      for (std::uint64_t id = 0; id < kVictims; ++id) {
        const AccessRequest req = make_access_request(
            id, 0, static_cast<std::uint64_t>(round) + 2, nonce_from(id), {}, victim_keys[id]);
        (void)vault.authorize(req, req.mac_input(), 0.0, nullptr);
      }
  });
  revoker.join();  // all revocations are in before we stop churning...
  // (the prober keeps racing the churner for the rest of its rounds)
  prober.join();
  stop.store(true);
  churner.join();

  // With every revoke landed, a serial sweep must be airtight:
  for (std::uint64_t id = 0; id < kVictims; ++id) {
    const AccessRequest req =
        make_access_request(id, 0, 1000, nonce_from(id), {}, victim_keys[id]);
    const AccessStatus status = vault.authorize(req, req.mac_input(), 0.0, nullptr);
    EXPECT_TRUE(status == AccessStatus::kRevoked || status == AccessStatus::kUnknownSession)
        << "session " << id << " resolved to " << access_status_name(status);
  }
}

TEST(KeyVaultTest, ShardingSpreadsSessions) {
  VaultConfig vc;
  vc.shards = 8;
  vc.capacity = 800;
  KeyVault vault(vc);
  crypto::Drbg rng(38);
  for (std::uint64_t id = 0; id < 256; ++id) ASSERT_TRUE(vault.install(id, random_key(rng), 0.0));
  EXPECT_EQ(vault.size(), 256u);
  EXPECT_EQ(vault.shards(), 8u);
  // With splitmix64 spreading, no shard should be starved (capacity 100
  // per shard, 256 sessions → expected 32 each; zero lru evictions proves
  // no shard overflowed).
  EXPECT_EQ(vault.stats().lru_evictions, 0u);
}

TEST(KeyVaultTest, ShardCountRoundsUpToPowerOfTwo) {
  // Routing is mask-based, so the constructor rounds shards UP to a power
  // of two (documented in key_vault.hpp).
  for (const auto& [requested, expected] :
       std::vector<std::pair<std::size_t, std::size_t>>{
           {0, 1}, {1, 1}, {2, 2}, {3, 4}, {5, 8}, {8, 8}, {9, 16}, {31, 32}}) {
    VaultConfig vc;
    vc.shards = requested;
    vc.capacity = 1024;
    KeyVault vault(vc);
    EXPECT_EQ(vault.shards(), expected) << "requested " << requested;
    EXPECT_EQ(vault.shards() & (vault.shards() - 1), 0u) << "not a power of two";
  }
}

TEST(KeyVaultTest, WheelPurgeReclaimsUntouchedExpiredSessions) {
  VaultConfig vc;
  vc.shards = 4;
  vc.capacity = 400;
  vc.ttl_s = 10.0;
  KeyVault vault(vc);
  crypto::Drbg rng(45);
  for (std::uint64_t id = 0; id < 100; ++id)
    ASSERT_TRUE(vault.install(id, random_key(rng), 0.0));
  ASSERT_EQ(vault.stats().resident_entries, 100u);

  // Not yet expired: the sweep reclaims nothing and leaks nothing.
  EXPECT_EQ(vault.purge_expired(9.9), 0u);
  EXPECT_EQ(vault.stats().resident_entries, 100u);

  // This is the stale-stats gap the sweep closes: the sessions expired but
  // were never touched, so before the sweep nothing shows in ttl_evictions.
  EXPECT_EQ(vault.stats().ttl_evictions, 0u);
  EXPECT_EQ(vault.purge_expired(10.5), 100u);
  const VaultStats stats = vault.stats();
  EXPECT_EQ(stats.purged_expired, 100u);
  EXPECT_EQ(stats.ttl_evictions, 100u);  // sweep reclaims count as TTL evictions
  EXPECT_EQ(stats.resident_entries, 0u);
  EXPECT_EQ(vault.size(), 0u);

  // Idempotent: a second sweep finds nothing.
  EXPECT_EQ(vault.purge_expired(11.0), 0u);
}

TEST(KeyVaultTest, RotateReArmsTheWheelSoPurgeHonorsTheNewDeadline) {
  VaultConfig vc;
  vc.shards = 1;
  vc.capacity = 8;
  vc.ttl_s = 10.0;
  KeyVault vault(vc);
  crypto::Drbg rng(46);
  ASSERT_TRUE(vault.install(7, random_key(rng), 0.0));
  ASSERT_TRUE(vault.rotate(7, 8.0).has_value());  // deadline moves to 18.0

  // The original arm (t=10) fires but the entry is live — must survive.
  EXPECT_EQ(vault.purge_expired(12.0), 0u);
  EXPECT_EQ(vault.stats().resident_entries, 1u);
  // The re-arm fires after the rotated deadline.
  EXPECT_EQ(vault.purge_expired(18.5), 1u);
  EXPECT_EQ(vault.stats().resident_entries, 0u);
}

TEST(KeyVaultTest, ResidentEntriesGaugeTracksLifecycle) {
  VaultConfig vc;
  vc.shards = 1;
  vc.capacity = 4;
  vc.ttl_s = 100.0;
  KeyVault vault(vc);
  crypto::Drbg rng(47);
  for (std::uint64_t id = 0; id < 4; ++id)
    ASSERT_TRUE(vault.install(id, random_key(rng), 0.0));
  EXPECT_EQ(vault.stats().resident_entries, 4u);

  // LRU eviction replaces, net resident unchanged.
  ASSERT_TRUE(vault.install(99, random_key(rng), 1.0));
  EXPECT_EQ(vault.stats().resident_entries, 4u);
  EXPECT_EQ(vault.stats().lru_evictions, 1u);

  // Lazy on-access reap decrements the gauge too.
  const AccessRequest req = client_request(vault, 99, 1, 1.0);
  EXPECT_EQ(authorize(vault, req, 101.5), AccessStatus::kExpired);
  EXPECT_EQ(vault.stats().resident_entries, 3u);

  vault.clear();
  EXPECT_EQ(vault.stats().resident_entries, 0u);
}

// --- optimistic-vs-classic and FlatMap-vs-reference differentials ---

namespace {

/// Reference vault model: the seed implementation's semantics re-stated on
/// std::unordered_map + std::list, single shard. Drives the soak test —
/// the FlatMap-backed vault must match it outcome for outcome and byte for
/// byte in the exported snapshots.
struct RefVault {
  struct Entry {
    SessionKey key{};
    std::uint32_t epoch = 0;
    double expires_at_s = 0.0;
    bool revoked = false;
    ReplayWindow window;
    explicit Entry(std::size_t bits) : window(bits) {}
  };

  std::size_t capacity;
  double ttl_s;
  std::size_t window_bits;
  std::unordered_map<std::uint64_t, Entry> entries;
  std::list<std::uint64_t> lru;  // front = most recent

  RefVault(std::size_t cap, double ttl, std::size_t bits)
      : capacity(cap), ttl_s(ttl), window_bits(bits) {}

  void touch(std::uint64_t id) {
    lru.remove(id);
    lru.push_front(id);
  }

  bool reap_if_expired(std::uint64_t id, double now_s) {
    auto it = entries.find(id);
    if (it == entries.end() || now_s < it->second.expires_at_s) return false;
    lru.remove(id);
    entries.erase(it);
    return true;
  }

  bool install(std::uint64_t id, const SessionKey& key, double now_s) {
    auto it = entries.find(id);
    if (it == entries.end()) {
      if (entries.size() >= capacity && !lru.empty()) {
        entries.erase(lru.back());
        lru.pop_back();
      }
      it = entries.emplace(id, Entry(window_bits)).first;
      lru.push_front(id);
    } else {
      touch(id);
    }
    Entry& e = it->second;
    e.key = key;
    e.epoch = 0;
    e.expires_at_s = now_s + ttl_s;
    e.revoked = false;
    e.window.reset();
    return true;
  }

  std::optional<std::uint32_t> rotate(std::uint64_t id, double now_s) {
    if (reap_if_expired(id, now_s)) return std::nullopt;
    auto it = entries.find(id);
    if (it == entries.end() || it->second.revoked) return std::nullopt;
    Entry& e = it->second;
    e.epoch += 1;
    e.key = derive_rotated_key(e.key, id, e.epoch);
    e.expires_at_s = now_s + ttl_s;
    e.window.reset();
    touch(id);
    return e.epoch;
  }

  bool revoke(std::uint64_t id) {
    auto it = entries.find(id);
    if (it == entries.end()) return false;
    it->second.revoked = true;
    return true;
  }

  AccessStatus authorize(const AccessRequest& req, double now_s) {
    if (reap_if_expired(req.session_id, now_s)) return AccessStatus::kExpired;
    auto it = entries.find(req.session_id);
    if (it == entries.end()) return AccessStatus::kUnknownSession;
    Entry& e = it->second;
    if (e.revoked) return AccessStatus::kRevoked;
    if (req.epoch != e.epoch) return AccessStatus::kStaleEpoch;
    const Bytes mac_input = req.mac_input();
    const crypto::Digest256 expected = crypto::hmac_sha256(e.key, mac_input);
    crypto::Digest256 carried{};
    std::copy(req.mac.begin(), req.mac.end(), carried.begin());
    if (!crypto::digest_equal(expected, carried)) return AccessStatus::kBadMac;
    if (!e.window.check_and_update(req.counter)) return AccessStatus::kReplay;
    touch(req.session_id);
    return AccessStatus::kGranted;
  }

  std::size_t purge(double now_s) {
    std::size_t purged = 0;
    for (auto it = entries.begin(); it != entries.end();) {
      if (now_s >= it->second.expires_at_s) {
        lru.remove(it->first);
        it = entries.erase(it);
        ++purged;
      } else {
        ++it;
      }
    }
    return purged;
  }

  std::vector<ExportedSession> export_all() const {
    std::vector<ExportedSession> out;
    for (const auto& [id, e] : entries) {
      ExportedSession s;
      s.session_id = id;
      s.key = e.key;
      s.epoch = e.epoch;
      s.expires_at_s = e.expires_at_s;
      s.revoked = e.revoked;
      s.window = e.window.snapshot();
      out.push_back(std::move(s));
    }
    std::sort(out.begin(), out.end(),
              [](const auto& a, const auto& b) { return a.session_id < b.session_id; });
    return out;
  }
};

void expect_exports_equal(std::vector<ExportedSession> got, std::vector<ExportedSession> want,
                          const char* label) {
  std::sort(got.begin(), got.end(),
            [](const auto& a, const auto& b) { return a.session_id < b.session_id; });
  std::sort(want.begin(), want.end(),
            [](const auto& a, const auto& b) { return a.session_id < b.session_id; });
  ASSERT_EQ(got.size(), want.size()) << label;
  for (std::size_t i = 0; i < got.size(); ++i) {
    const ExportedSession& g = got[i];
    const ExportedSession& w = want[i];
    ASSERT_EQ(g.session_id, w.session_id) << label << " [" << i << "]";
    EXPECT_EQ(g.key, w.key) << label << " id " << g.session_id;
    EXPECT_EQ(g.epoch, w.epoch) << label << " id " << g.session_id;
    EXPECT_EQ(g.expires_at_s, w.expires_at_s) << label << " id " << g.session_id;
    EXPECT_EQ(g.revoked, w.revoked) << label << " id " << g.session_id;
    EXPECT_EQ(g.window.any, w.window.any) << label << " id " << g.session_id;
    EXPECT_EQ(g.window.max_seen, w.window.max_seen) << label << " id " << g.session_id;
    EXPECT_EQ(g.window.words, w.window.words) << label << " id " << g.session_id;
  }
}

/// 100k seeded mixed ops against one vault configuration, asserting every
/// outcome matches the RefVault model; returns nothing — failures carry the
/// op index. Used with both the optimistic and classic verify paths.
void run_vault_soak(bool optimistic) {
  VaultConfig vc;
  vc.shards = 1;  // single shard: LRU/capacity behavior is deterministic
  vc.capacity = 64;
  vc.ttl_s = 50.0;
  vc.replay_window_bits = 128;
  vc.optimistic_verify = optimistic;
  KeyVault vault(vc);
  RefVault ref(vc.capacity, vc.ttl_s, vc.replay_window_bits);

  crypto::Drbg key_rng(48);
  Rng rng(0x50AC50ACu + (optimistic ? 1 : 0));
  double now = 0.0;
  constexpr std::uint64_t kIdSpace = 256;

  for (int op = 0; op < 100000; ++op) {
    now += rng.uniform() * 0.2;  // creep forward; TTLs lapse mid-run
    const std::uint64_t id = rng.uniform_u64(kIdSpace);
    switch (rng.uniform_u64(10)) {
      case 0:
      case 1: {  // install
        const SessionKey key = random_key(key_rng);
        ASSERT_EQ(vault.install(id, key, now), ref.install(id, key, now)) << "op " << op;
        break;
      }
      case 2: {  // rotate
        ASSERT_EQ(vault.rotate(id, now), ref.rotate(id, now)) << "op " << op;
        break;
      }
      case 3: {  // revoke
        ASSERT_EQ(vault.revoke(id), ref.revoke(id)) << "op " << op;
        break;
      }
      case 4: {  // TTL purge sweep
        ASSERT_EQ(vault.purge_expired(now), ref.purge(now)) << "op " << op;
        break;
      }
      default: {  // authorize: valid, replayed, stale-epoch or corrupted MAC
        auto it = ref.entries.find(id);
        AccessRequest req;
        if (it != ref.entries.end()) {
          const std::uint64_t roll = rng.uniform_u64(8);
          std::uint64_t counter = 1 + rng.uniform_u64(200);
          std::uint32_t epoch = it->second.epoch;
          if (roll == 6) epoch += 1;  // stale/future epoch
          req = make_access_request(id, epoch, counter, nonce_from(counter), {0xAB},
                                    it->second.key);
          if (roll == 7) req.mac[0] ^= 0x01;  // corrupted MAC
        } else {
          req = make_access_request(id, 0, 1, nonce_from(1), {0xAB}, random_key(key_rng));
        }
        const AccessStatus want = ref.authorize(req, now);
        ASSERT_EQ(vault.authorize(req, req.mac_input(), now, nullptr), want) << "op " << op;
        break;
      }
    }
    ASSERT_EQ(vault.size(), ref.entries.size()) << "op " << op;
  }

  // Byte-for-byte state audit at the end of the run.
  expect_exports_equal(vault.export_sessions([](std::uint64_t) { return true; }),
                       ref.export_all(), optimistic ? "optimistic" : "classic");
  EXPECT_EQ(vault.stats().locked_fallbacks, 0u);  // single-threaded: no races
}

}  // namespace

TEST(KeyVaultSoak, DifferentialAgainstReferenceModelClassic) { run_vault_soak(false); }

TEST(KeyVaultSoak, DifferentialAgainstReferenceModelOptimistic) { run_vault_soak(true); }

TEST(KeyVaultTest, OptimisticRotateRaceNeverDoubleGrantsACounter) {
  // Hammer one session from 4 authorizing threads (fresh counters plus
  // deliberate duplicates) while a rotator thread keeps bumping the epoch.
  // Invariants: (a) no (epoch, counter) pair is granted twice — the replay
  // window commit is atomic with the version re-validation; (b) every
  // grant's MAC was verified against the key of the epoch it was granted
  // in (the request was built under that key, so a cross-epoch commit
  // would have returned kBadMac/kStaleEpoch instead).
  VaultConfig vc;
  vc.shards = 1;
  vc.capacity = 8;
  vc.ttl_s = 1e6;
  vc.optimistic_verify = true;
  KeyVault vault(vc);
  crypto::Drbg rng(51);
  ASSERT_TRUE(vault.install(1, random_key(rng), 0.0));

  std::mutex mu;
  std::vector<std::pair<std::uint32_t, std::uint64_t>> grants;  // (epoch, counter)
  std::atomic<bool> stop{false};

  std::vector<std::thread> workers;
  for (int t = 0; t < 4; ++t) {
    workers.emplace_back([&, t] {
      Rng lrng(100 + static_cast<unsigned>(t));
      while (!stop.load(std::memory_order_relaxed)) {
        const auto key = vault.current_key(1, 0.0);
        const auto epoch = vault.current_epoch(1, 0.0);
        if (!key || !epoch) continue;
        // Mostly fresh counters; every 4th is a deliberate duplicate domain.
        const std::uint64_t counter = 1 + lrng.uniform_u64(64) * 4 + lrng.uniform_u64(2);
        const AccessRequest req = make_access_request(1, *epoch, counter,
                                                      nonce_from(counter), {}, *key);
        const Bytes mac_input = req.mac_input();
        if (vault.authorize(req, mac_input, 0.0, nullptr) == AccessStatus::kGranted) {
          std::lock_guard<std::mutex> lock(mu);
          grants.emplace_back(*epoch, counter);
        }
      }
    });
  }
  std::thread rotator([&] {
    for (int i = 0; i < 200; ++i) {
      vault.rotate(1, 0.0);
      std::this_thread::yield();
    }
    stop.store(true, std::memory_order_relaxed);
  });
  rotator.join();
  for (auto& w : workers) w.join();

  std::set<std::pair<std::uint32_t, std::uint64_t>> unique(grants.begin(), grants.end());
  EXPECT_EQ(unique.size(), grants.size()) << "a (epoch, counter) pair was granted twice";
  const VaultStats stats = vault.stats();
  EXPECT_EQ(stats.rotations, 200u);
  // The optimistic path actually ran (hash outside the lock at least once).
  EXPECT_GT(stats.optimistic_verifies, 0u);
}

// --- NIST battery on rotated keys (rotation must not degrade key quality) ---

TEST(KeyVaultTest, RotatedKeysPassNistBattery) {
  // Chain: 8 sessions × 16 rotation epochs, each epoch's 256-bit key
  // appended. If HKDF re-derivation biased any bit, the battery would trip.
  crypto::Drbg rng(39);
  BitVec chain;
  for (std::uint64_t session = 0; session < 8; ++session) {
    SessionKey key = random_key(rng);
    for (std::uint32_t epoch = 1; epoch <= 16; ++epoch) {
      key = derive_rotated_key(key, session, epoch);
      chain.append(BitVec::from_bytes(key, 8 * key.size()));
    }
  }
  ASSERT_EQ(chain.size(), 8u * 16u * 256u);
  EXPECT_GE(nist::monobit_test(chain), 0.01);
  EXPECT_GE(nist::block_frequency_test(chain), 0.01);
  EXPECT_GE(nist::runs_test(chain), 0.01);
  EXPECT_GE(nist::longest_run_test(chain), 0.01);
  EXPECT_GE(nist::cusum_test(chain), 0.01);
  EXPECT_GE(nist::approximate_entropy_test(chain), 0.01);
}

// --- access server end-to-end ---

namespace {

struct OutcomeLog {
  std::mutex mutex;
  std::vector<AccessOutcome> outcomes;

  AccessServer::Callback recorder() {
    return [this](const AccessOutcome& outcome) {
      std::lock_guard<std::mutex> lock(mutex);
      outcomes.push_back(outcome);
    };
  }
};

}  // namespace

TEST(AccessServerTest, GrantsValidRequestsAndMacsTheGrant) {
  AccessServerConfig config;
  config.threads = 2;
  crypto::Drbg rng(41);
  AccessServer server(config);
  const SessionKey key = random_key(rng);
  ASSERT_TRUE(server.vault().install(1, key, server.now_s()));

  OutcomeLog log;
  for (std::uint64_t c = 1; c <= 8; ++c) {
    const AccessRequest req = make_access_request(1, 0, c, nonce_from(c), {1}, key);
    ASSERT_TRUE(server.submit(c, /*tenant=*/1, req.serialize(), log.recorder()));
  }
  server.finish();

  ASSERT_EQ(log.outcomes.size(), 8u);
  for (const AccessOutcome& outcome : log.outcomes) {
    EXPECT_EQ(outcome.status, AccessStatus::kGranted);
    const AccessGrant grant = AccessGrant::parse(outcome.grant_wire);
    EXPECT_EQ(grant.status, AccessStatus::kGranted);
    EXPECT_TRUE(verify_access_grant(grant, key));
  }
  EXPECT_EQ(server.stats().granted, 8u);
}

TEST(AccessServerTest, SubmitPathBackgroundPurgeReclaimsExpiredSessions) {
  // Sessions that expire and are never addressed again must still be
  // reclaimed: the submit path CAS-claims vault_purge_interval_s and spawns
  // a one-shot sweep coroutine, regardless of which session the traffic
  // itself targets (here: malformed frames that never reach the vault).
  AccessServerConfig config;
  config.threads = 1;
  config.vault.ttl_s = 0.05;
  config.vault.capacity = 256;
  config.vault_purge_interval_s = 0.01;
  crypto::Drbg rng(44);
  AccessServer server(config);
  for (std::uint64_t id = 10; id < 60; ++id)
    ASSERT_TRUE(server.vault().install(id, random_key(rng), server.now_s()));
  ASSERT_EQ(server.vault().stats().resident_entries, 50u);

  std::this_thread::sleep_for(std::chrono::milliseconds(80));  // every TTL lapses
  OutcomeLog log;
  for (std::uint64_t tag = 1; tag <= 100; ++tag) {
    ASSERT_TRUE(server.submit(tag, 1, Bytes{0xFF}, log.recorder()));
    if (server.vault().stats().purged_expired >= 50) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  server.finish();

  const VaultStats stats = server.vault().stats();
  EXPECT_EQ(stats.purged_expired, 50u);
  EXPECT_EQ(stats.ttl_evictions, 50u);
  EXPECT_EQ(stats.resident_entries, 0u);
  EXPECT_EQ(server.vault().size(), 0u);
}

TEST(AccessServerTest, MalformedAndUnknownAreTyped) {
  AccessServerConfig config;
  AccessServer server(config);
  OutcomeLog log;
  ASSERT_TRUE(server.submit(1, 1, Bytes{0xFF, 0x00, 0x01}, log.recorder()));
  crypto::Drbg rng(42);
  const AccessRequest req = make_access_request(99, 0, 1, nonce_from(1), {}, random_key(rng));
  ASSERT_TRUE(server.submit(2, 1, req.serialize(), log.recorder()));
  server.finish();

  ASSERT_EQ(log.outcomes.size(), 2u);
  for (const AccessOutcome& outcome : log.outcomes) {
    if (outcome.tag == 1)
      EXPECT_EQ(outcome.status, AccessStatus::kMalformed);
    else
      EXPECT_EQ(outcome.status, AccessStatus::kUnknownSession);
  }
  EXPECT_EQ(server.stats().malformed, 1u);
  EXPECT_EQ(server.stats().unknown_session, 1u);
}

TEST(AccessServerTest, RateLimitingIsPerTenantAndTyped) {
  AccessServerConfig config;
  config.admission.rate_per_s = 1e-6;  // effectively no refill in-test
  config.admission.burst = 2.0;
  crypto::Drbg rng(43);
  AccessServer server(config);
  const SessionKey key = random_key(rng);
  ASSERT_TRUE(server.vault().install(1, key, server.now_s()));

  OutcomeLog log;
  for (std::uint64_t c = 1; c <= 5; ++c) {
    const AccessRequest req = make_access_request(1, 0, c, nonce_from(c), {}, key);
    ASSERT_TRUE(server.submit(c, /*tenant=*/7, req.serialize(), log.recorder()));
  }
  server.finish();

  const AccessServerStats stats = server.stats();
  EXPECT_EQ(stats.granted, 2u);
  EXPECT_EQ(stats.rate_limited, 3u);
  int limited = 0;
  for (const AccessOutcome& outcome : log.outcomes)
    if (outcome.status == AccessStatus::kRateLimited) ++limited;
  EXPECT_EQ(limited, 3);
}

TEST(AccessServerTest, OverloadShedsInsteadOfBlocking) {
  AccessServerConfig config;
  config.threads = 1;
  config.queue_capacity = 1;
  config.io_wait_s = 0.05;  // worker holds each grant for 50 ms
  config.admission.burst = 1000.0;
  crypto::Drbg rng(44);
  AccessServer server(config);
  const SessionKey key = random_key(rng);
  ASSERT_TRUE(server.vault().install(1, key, server.now_s()));

  OutcomeLog log;
  for (std::uint64_t c = 1; c <= 10; ++c) {
    const AccessRequest req = make_access_request(1, 0, c, nonce_from(c), {}, key);
    ASSERT_TRUE(server.submit(c, 1, req.serialize(), log.recorder()));
  }
  server.finish();

  const AccessServerStats stats = server.stats();
  EXPECT_GE(stats.shed, 1u);  // the flood outran queue capacity
  EXPECT_EQ(stats.granted + stats.shed, 10u);
  EXPECT_EQ(log.outcomes.size(), 10u);  // every submit got exactly one callback
}

TEST(AccessServerTest, ConcurrentSoakCountsAreConsistent) {
  AccessServerConfig config;
  config.threads = 4;
  // No sheds in this test: the queue holds the full flood, so the ledger
  // below is exact. (Counters arrive out of order across producers — the
  // wide replay window keeps legitimate stragglers inside it.)
  config.queue_capacity = 512;
  config.admission.burst = 1e6;
  config.vault.shards = 4;
  config.vault.replay_window_bits = 512;
  crypto::Drbg rng(45);
  AccessServer server(config);

  constexpr std::uint64_t kSessions = 16;
  std::vector<SessionKey> keys;
  for (std::uint64_t id = 0; id < kSessions; ++id) {
    keys.push_back(random_key(rng));
    ASSERT_TRUE(server.vault().install(id, keys.back(), server.now_s()));
  }

  // 4 producer threads × 64 unique requests each; every 4th frame is also
  // submitted a second time, byte for byte. Exactly one copy of each
  // duplicated frame may be granted — which copy wins is a scheduling race,
  // but the *count* is deterministic.
  OutcomeLog log;
  std::vector<std::thread> producers;
  for (int p = 0; p < 4; ++p) {
    producers.emplace_back([&, p] {
      for (std::uint64_t i = 0; i < 64; ++i) {
        const std::uint64_t session = (static_cast<std::uint64_t>(p) * 64 + i) % kSessions;
        const std::uint64_t counter = 1 + static_cast<std::uint64_t>(p) * 64 + i;
        const AccessRequest req = make_access_request(session, 0, counter,
                                                      nonce_from(counter), {}, keys[session]);
        const Bytes wire = req.serialize();
        ASSERT_TRUE(server.submit(counter, session, wire, log.recorder()));
        if (i % 4 == 0) {
          ASSERT_TRUE(server.submit(100000 + counter, session, wire, log.recorder()));
        }
      }
    });
  }
  for (auto& t : producers) t.join();
  server.finish();

  // 256 unique frames, 64 duplicated: every unique frame granted exactly
  // once, every duplicate pair contributes exactly one replay rejection —
  // i.e. zero double-grants.
  const AccessServerStats stats = server.stats();
  EXPECT_EQ(stats.granted, 4u * 64u);
  EXPECT_EQ(stats.replay_rejected, 4u * 16u);
  EXPECT_EQ(stats.shed, 0u);
  EXPECT_EQ(stats.rate_limited, 0u);
  EXPECT_EQ(stats.submitted,
            stats.granted + stats.replay_rejected + stats.shed + stats.rate_limited);
  EXPECT_EQ(log.outcomes.size(), stats.submitted);
}

namespace {

std::uint64_t outcome_sum(const AccessServerStats& s) {
  return s.granted + s.unknown_session + s.expired + s.revoked + s.stale_epoch + s.bad_mac +
         s.replay_rejected + s.rate_limited + s.shed + s.malformed;
}

}  // namespace

TEST(AccessServerTest, StatsSnapshotIsConsistentMidFlight) {
  // The counters move under one lock, so EVERY snapshot — taken while
  // submitters and workers race — satisfies the exact invariant
  // submitted == sum(outcomes) + in_flight. With torn multi-atomic reads
  // this held only at quiescence; now it holds mid-flight.
  AccessServerConfig config;
  config.threads = 4;
  config.queue_capacity = 512;
  config.io_wait_s = 0.0005;  // keeps a real in-flight population visible
  config.admission.burst = 1e6;
  config.vault.replay_window_bits = 512;
  crypto::Drbg rng(61);
  AccessServer server(config);

  constexpr std::uint64_t kSessions = 8;
  std::vector<SessionKey> keys;
  for (std::uint64_t id = 0; id < kSessions; ++id) {
    keys.push_back(random_key(rng));
    ASSERT_TRUE(server.vault().install(id, keys.back(), server.now_s()));
  }

  std::atomic<bool> done{false};
  std::uint64_t snapshots = 0, inflight_seen = 0, suspended_seen = 0;
  std::thread sampler([&] {
    while (!done.load()) {
      const AccessServerStats snap = server.stats();
      ASSERT_EQ(snap.submitted, outcome_sum(snap) + snap.in_flight)
          << "torn snapshot: submitted=" << snap.submitted << " sum=" << outcome_sum(snap)
          << " in_flight=" << snap.in_flight;
      // The suspended counter rides the same lock: a request parked on
      // actuation is always also in flight, in every snapshot.
      ASSERT_LE(snap.suspended, snap.in_flight)
          << "torn snapshot: suspended=" << snap.suspended
          << " in_flight=" << snap.in_flight;
      ASSERT_LE(snap.suspended, snap.peak_suspended);
      ASSERT_LE(snap.in_flight, snap.peak_in_flight);
      ++snapshots;
      if (snap.in_flight > 0) ++inflight_seen;
      if (snap.suspended > 0) ++suspended_seen;
    }
  });

  std::vector<std::thread> producers;
  for (int p = 0; p < 4; ++p) {
    producers.emplace_back([&, p] {
      for (std::uint64_t i = 0; i < 100; ++i) {
        const std::uint64_t session = (static_cast<std::uint64_t>(p) * 100 + i) % kSessions;
        const std::uint64_t counter = 1 + static_cast<std::uint64_t>(p) * 100 + i;
        const AccessRequest req = make_access_request(session, 0, counter, nonce_from(counter),
                                                      {}, keys[session]);
        ASSERT_TRUE(server.submit(counter, session, req.serialize(), nullptr));
      }
    });
  }
  for (auto& t : producers) t.join();
  server.finish();
  done.store(true);
  sampler.join();

  const AccessServerStats final_stats = server.stats();
  EXPECT_EQ(final_stats.submitted, 400u);
  EXPECT_EQ(final_stats.in_flight, 0u);  // finish() drained everything
  EXPECT_EQ(final_stats.suspended, 0u);  // nothing left parked either
  EXPECT_EQ(final_stats.submitted, outcome_sum(final_stats));
  EXPECT_GE(final_stats.peak_in_flight, final_stats.peak_suspended);
  EXPECT_GT(snapshots, 0u);
  // Not asserted (scheduling-dependent), but nearly always nonzero — the
  // sampler genuinely observes requests mid-flight:
  (void)inflight_seen;
  (void)suspended_seen;
}

TEST(AccessServerTest, SuspendedGrantsOverlapBeyondThreadCount) {
  // The coroutine refactor's headline property: grants parked on actuation
  // I/O hold no worker, so the in-flight population is bounded by the
  // admission window, not the thread count. 64 grants with 30 ms actuation
  // on ONE thread must overlap (wall time far under the serial 1.92 s) and
  // the server must report them parked concurrently.
  AccessServerConfig config;
  config.threads = 1;
  config.queue_capacity = 256;
  config.io_wait_s = 0.030;
  config.admission.burst = 1e6;
  config.vault.replay_window_bits = 512;
  crypto::Drbg rng(62);
  AccessServer server(config);
  const SessionKey key = random_key(rng);
  ASSERT_TRUE(server.vault().install(1, key, server.now_s()));

  OutcomeLog log;
  const auto start = std::chrono::steady_clock::now();
  for (std::uint64_t c = 1; c <= 64; ++c) {
    const AccessRequest req = make_access_request(1, 0, c, nonce_from(c), {}, key);
    ASSERT_TRUE(server.submit(c, 1, req.serialize(), log.recorder()));
  }
  server.finish();
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();

  const AccessServerStats stats = server.stats();
  EXPECT_EQ(stats.granted, 64u);
  EXPECT_EQ(stats.shed, 0u);
  // Concurrency evidence from both axes: wall clock (64 x 30 ms serial
  // would be ~1.9 s) and the server's own high-water mark.
  EXPECT_LT(elapsed, 1.0);
  EXPECT_GE(stats.peak_suspended, 8u);
  EXPECT_EQ(stats.suspended, 0u);

  // suspended_s is reported separately: the park shows up there, NOT in
  // queue_wait_s (satellite fix — queue_wait_s used to absorb worker-held
  // time under load) and not in verify_s.
  for (const AccessOutcome& outcome : log.outcomes) {
    ASSERT_EQ(outcome.status, AccessStatus::kGranted);
    EXPECT_GE(outcome.suspended_s, 0.029);
    EXPECT_LT(outcome.verify_s, 0.020);
  }
}

// --- pairing engine → vault handoff ---

TEST(AccessServerTest, PairingHandoffFeedsTheVault) {
  const core::WaveKeyConfig wk;
  const core::SeedQuantizer quantizer = core::SeedQuantizer::from_normal(wk);

  AccessServerConfig server_config;
  server_config.threads = 2;
  AccessServer server(server_config);

  core::PairingEngineConfig engine_config;
  engine_config.threads = 2;
  engine_config.session.tau_s = wk.tau_s;
  engine_config.session.gesture_window_s = wk.gesture_window_s;
  engine_config.session.params.key_bits = wk.key_bits;
  engine_config.session.params.eta = wk.eta;
  // Streaming handoff: keys land in the vault the moment pairing succeeds.
  engine_config.on_established = [&](std::uint64_t id, const BitVec& key) {
    server.vault().install(id, key, server.now_s());
  };

  core::PairingEngine engine(quantizer, engine_config);
  for (std::uint64_t id = 0; id < 4; ++id) {
    Rng rng(id * 6151 + 29);
    core::PairingRequest req;
    req.id = id;
    req.rng_seed = id * 7919 + 17;
    req.mobile_latent.resize(quantizer.latent_dim());
    req.server_latent.resize(quantizer.latent_dim());
    for (std::size_t d = 0; d < quantizer.latent_dim(); ++d) {
      req.mobile_latent[d] = rng.normal();
      req.server_latent[d] = req.mobile_latent[d] + rng.normal(0.0, 0.03);
    }
    ASSERT_TRUE(engine.submit(std::move(req)));
  }
  const std::vector<core::PairingReport> reports = engine.finish();

  OutcomeLog log;
  std::uint64_t expected_grants = 0;
  for (const core::PairingReport& report : reports) {
    ASSERT_TRUE(report.success);
    // Client side: the mobile's established key authenticates its requests.
    const std::vector<std::uint8_t> key_bytes = report.key.slice(0, 256).to_bytes();
    SessionKey key{};
    std::copy(key_bytes.begin(), key_bytes.end(), key.begin());
    const AccessRequest req = make_access_request(report.id, 0, 1, nonce_from(1), {}, key);
    ASSERT_TRUE(server.submit(report.id, 1, req.serialize(), log.recorder()));
    ++expected_grants;
  }
  server.finish();
  EXPECT_EQ(server.stats().granted, expected_grants);
  for (const AccessOutcome& outcome : log.outcomes)
    EXPECT_EQ(outcome.status, AccessStatus::kGranted);
}
