// Tests for the error-correction substrate: GF(2^8) arithmetic laws,
// Reed-Solomon round-trips under random symbol corruption, and the
// fuzzy-commitment reconciliation used by the key-agreement protocol.

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "crypto/drbg.hpp"
#include "ecc/fuzzy_commitment.hpp"
#include "ecc/gf256.hpp"
#include "ecc/reed_solomon.hpp"
#include "numeric/rng.hpp"

namespace wavekey::ecc {
namespace {

TEST(Gf256Test, AdditionIsXor) {
  EXPECT_EQ(Gf256::add(0x53, 0xCA), 0x53 ^ 0xCA);
  EXPECT_EQ(Gf256::sub(0x53, 0xCA), 0x53 ^ 0xCA);
}

TEST(Gf256Test, MultiplicationKnownValue) {
  // 0x53 * 0xCA = 0x01 under 0x11D? Verify with the field laws instead of a
  // memorized product: check distributivity and the known identity.
  EXPECT_EQ(Gf256::mul(1, 0x57), 0x57);
  EXPECT_EQ(Gf256::mul(0, 0x57), 0);
  EXPECT_EQ(Gf256::mul(2, 0x80), 0x1D);  // x * x^7 = x^8 = 0x11D mod x^8
}

TEST(Gf256Test, FieldLawsHoldForAllPairsSampled) {
  Rng rng(71);
  for (int t = 0; t < 3000; ++t) {
    const auto a = static_cast<std::uint8_t>(rng.uniform_u64(256));
    const auto b = static_cast<std::uint8_t>(rng.uniform_u64(256));
    const auto c = static_cast<std::uint8_t>(rng.uniform_u64(256));
    EXPECT_EQ(Gf256::mul(a, b), Gf256::mul(b, a));
    EXPECT_EQ(Gf256::mul(a, Gf256::mul(b, c)), Gf256::mul(Gf256::mul(a, b), c));
    EXPECT_EQ(Gf256::mul(a, Gf256::add(b, c)), Gf256::add(Gf256::mul(a, b), Gf256::mul(a, c)));
  }
}

TEST(Gf256Test, EveryNonzeroElementHasInverse) {
  for (int a = 1; a < 256; ++a) {
    const auto inv = Gf256::inv(static_cast<std::uint8_t>(a));
    EXPECT_EQ(Gf256::mul(static_cast<std::uint8_t>(a), inv), 1) << a;
  }
  EXPECT_THROW(Gf256::inv(0), std::domain_error);
  EXPECT_THROW(Gf256::div(1, 0), std::domain_error);
  EXPECT_THROW(Gf256::log(0), std::domain_error);
}

TEST(Gf256Test, ExpLogAreInverse) {
  for (int e = 0; e < 255; ++e) EXPECT_EQ(Gf256::log(Gf256::exp(e)), e);
  EXPECT_EQ(Gf256::exp(255), Gf256::exp(0));  // order-255 cyclic group
  EXPECT_EQ(Gf256::exp(-3), Gf256::exp(252));
}

TEST(Gf256Test, PowMatchesRepeatedMul) {
  const std::uint8_t a = 0x37;
  std::uint8_t acc = 1;
  for (int n = 0; n < 20; ++n) {
    EXPECT_EQ(Gf256::pow(a, n), acc);
    acc = Gf256::mul(acc, a);
  }
  EXPECT_EQ(Gf256::pow(0, 5), 0);
  EXPECT_EQ(Gf256::pow(0, 0), 1);
}

TEST(ReedSolomonTest, RejectsBadParameters) {
  EXPECT_THROW(ReedSolomon(0), std::invalid_argument);
  EXPECT_THROW(ReedSolomon(255), std::invalid_argument);
  ReedSolomon rs(16);
  EXPECT_THROW(rs.encode(std::vector<std::uint8_t>(240)), std::invalid_argument);
}

TEST(ReedSolomonTest, EncodeIsSystematic) {
  ReedSolomon rs(8);
  const std::vector<std::uint8_t> data{10, 20, 30, 40, 50};
  const auto cw = rs.encode(data);
  ASSERT_EQ(cw.size(), data.size() + 8);
  EXPECT_TRUE(std::equal(data.begin(), data.end(), cw.begin()));
}

TEST(ReedSolomonTest, CleanCodewordDecodes) {
  ReedSolomon rs(10);
  const std::vector<std::uint8_t> data{1, 2, 3, 4, 5, 6, 7, 8, 9};
  const auto cw = rs.encode(data);
  const auto decoded = rs.decode(cw);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(*decoded, data);
}

class RsErrorSweepTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(RsErrorSweepTest, CorrectsUpToHalfNsymErrors) {
  const std::size_t nsym = GetParam();
  ReedSolomon rs(nsym);
  Rng rng(100 + nsym);
  for (int trial = 0; trial < 30; ++trial) {
    const std::size_t len = 20 + rng.uniform_u64(100);
    std::vector<std::uint8_t> data(len);
    for (auto& d : data) d = static_cast<std::uint8_t>(rng.uniform_u64(256));
    auto cw = rs.encode(data);

    const std::size_t nerr = rng.uniform_u64(rs.max_errors() + 1);
    std::set<std::size_t> positions;
    while (positions.size() < nerr) positions.insert(rng.uniform_u64(cw.size()));
    for (std::size_t p : positions) cw[p] ^= static_cast<std::uint8_t>(1 + rng.uniform_u64(255));

    const auto decoded = rs.decode(cw);
    ASSERT_TRUE(decoded.has_value()) << "nsym=" << nsym << " nerr=" << nerr;
    EXPECT_EQ(*decoded, data);
  }
}

INSTANTIATE_TEST_SUITE_P(NsymSweep, RsErrorSweepTest, ::testing::Values(2, 4, 8, 16, 32, 64));

TEST(ReedSolomonTest, TooManyErrorsReportedNotMiscorrected) {
  ReedSolomon rs(8);  // corrects 4
  Rng rng(321);
  int failures = 0, miscorrections = 0;
  for (int trial = 0; trial < 200; ++trial) {
    std::vector<std::uint8_t> data(40);
    for (auto& d : data) d = static_cast<std::uint8_t>(rng.uniform_u64(256));
    auto cw = rs.encode(data);
    // Inject 6 errors: beyond capability.
    std::set<std::size_t> positions;
    while (positions.size() < 6) positions.insert(rng.uniform_u64(cw.size()));
    for (std::size_t p : positions) cw[p] ^= static_cast<std::uint8_t>(1 + rng.uniform_u64(255));
    const auto decoded = rs.decode(cw);
    if (!decoded)
      ++failures;
    else if (*decoded != data)
      ++miscorrections;
  }
  // Decoding must overwhelmingly fail cleanly; silent miscorrection to a
  // *different valid codeword* is possible in principle but must be rare.
  EXPECT_GT(failures, 180);
  EXPECT_LT(miscorrections, 10);
}

TEST(ReedSolomonTest, MalformedInputsReturnNullopt) {
  ReedSolomon rs(8);
  EXPECT_FALSE(rs.decode(std::vector<std::uint8_t>(4)).has_value());    // shorter than parity
  EXPECT_FALSE(rs.decode(std::vector<std::uint8_t>(300)).has_value());  // longer than field
}

TEST(FuzzyCommitmentTest, RecoverWithIdenticalKey) {
  crypto::Drbg rng(200);
  FuzzyCommitment fc(256, 4);
  crypto::Drbg key_rng(201);
  const BitVec key = key_rng.random_bits(256);
  const auto helper = fc.commit(key, rng);
  EXPECT_EQ(helper.size(), fc.helper_size());
  const auto recovered = fc.recover(helper, key);
  ASSERT_TRUE(recovered.has_value());
  EXPECT_EQ(*recovered, key);
}

TEST(FuzzyCommitmentTest, RecoverWithNoisyKeyWithinBudget) {
  crypto::Drbg rng(202);
  FuzzyCommitment fc(256, 6);
  const BitVec key = rng.random_bits(256);
  const auto helper = fc.commit(key, rng);

  // Corrupt 6 whole bytes of the key (worst-case byte-aligned damage).
  BitVec noisy = key;
  Rng sim_rng(77);
  for (int b = 0; b < 6; ++b) {
    const std::size_t byte = 5 * b;
    for (int i = 0; i < 8; ++i) noisy.set(byte * 8 + i, !noisy.get(byte * 8 + i));
  }
  const auto recovered = fc.recover(helper, noisy);
  ASSERT_TRUE(recovered.has_value());
  EXPECT_EQ(*recovered, key);
}

TEST(FuzzyCommitmentTest, FailsBeyondBudget) {
  crypto::Drbg rng(203);
  FuzzyCommitment fc(256, 2);
  const BitVec key = rng.random_bits(256);
  const auto helper = fc.commit(key, rng);
  // Corrupt 12 bytes: far beyond the 2-byte budget.
  BitVec noisy = key;
  for (int byte = 0; byte < 12; ++byte)
    for (int i = 0; i < 8; ++i) noisy.set(byte * 16 + i, !noisy.get(byte * 16 + i));
  const auto recovered = fc.recover(helper, noisy);
  if (recovered.has_value()) {
    EXPECT_NE(*recovered, key);  // no silent success
  }
}

TEST(FuzzyCommitmentTest, LongKeysSpanMultipleChunks) {
  crypto::Drbg rng(204);
  FuzzyCommitment fc(2048, 8);
  EXPECT_GT(fc.num_chunks(), 1u);
  const BitVec key = rng.random_bits(2048);
  const auto helper = fc.commit(key, rng);

  BitVec noisy = key;
  // Flip 8 bytes clustered at a chunk boundary region.
  for (int byte = 120; byte < 128; ++byte)
    for (int i = 0; i < 8; ++i) noisy.set(byte * 8 + i, !noisy.get(byte * 8 + i));
  const auto recovered = fc.recover(helper, noisy);
  ASSERT_TRUE(recovered.has_value());
  EXPECT_EQ(*recovered, key);
}

TEST(FuzzyCommitmentTest, HelperDoesNotExposeKeyDirectly) {
  // delta = key XOR codeword; with a random codeword the helper must not
  // equal the raw key bytes.
  crypto::Drbg rng(205);
  FuzzyCommitment fc(128, 3);
  const BitVec key = rng.random_bits(128);
  const auto helper = fc.commit(key, rng);
  const auto key_bytes = key.to_bytes();
  EXPECT_FALSE(std::equal(key_bytes.begin(), key_bytes.end(), helper.begin()));
}

TEST(FuzzyCommitmentTest, DistinctCommitmentsOfSameKey) {
  // Fresh codeword randomness per commitment: committing twice must give
  // different helpers (unlinkability across sessions).
  crypto::Drbg rng(206);
  FuzzyCommitment fc(128, 3);
  const BitVec key = rng.random_bits(128);
  EXPECT_NE(fc.commit(key, rng), fc.commit(key, rng));
}

TEST(FuzzyCommitmentTest, RejectsMalformedInputs) {
  crypto::Drbg rng(207);
  FuzzyCommitment fc(128, 3);
  EXPECT_THROW(FuzzyCommitment(0, 3), std::invalid_argument);
  EXPECT_THROW(FuzzyCommitment(128, 200), std::invalid_argument);
  EXPECT_THROW(fc.commit(rng.random_bits(64), rng), std::invalid_argument);
  const BitVec key = rng.random_bits(128);
  const auto helper = fc.commit(key, rng);
  EXPECT_FALSE(fc.recover(std::vector<std::uint8_t>(3), key).has_value());
  EXPECT_FALSE(fc.recover(helper, rng.random_bits(64)).has_value());
}

}  // namespace
}  // namespace wavekey::ecc
