// Tests for the crypto substrate: SHA-256 / HMAC against published vectors,
// ChaCha20 against the RFC 8439 vector, field arithmetic properties in
// F_{2^255-19}, the stream cipher, and end-to-end OT correctness/obliviousness.

#include <gtest/gtest.h>

#include <cstring>
#include <string>

#include "crypto/chacha20.hpp"
#include "crypto/drbg.hpp"
#include "crypto/field25519.hpp"
#include "crypto/hmac.hpp"
#include "crypto/oblivious_transfer.hpp"
#include "crypto/sha256.hpp"
#include "crypto/stream_cipher.hpp"

namespace wavekey::crypto {
namespace {

std::vector<std::uint8_t> ascii(const std::string& s) {
  return std::vector<std::uint8_t>(s.begin(), s.end());
}

std::string hex(std::span<const std::uint8_t> bytes) {
  static constexpr char kHex[] = "0123456789abcdef";
  std::string out;
  for (std::uint8_t b : bytes) {
    out.push_back(kHex[b >> 4]);
    out.push_back(kHex[b & 0xF]);
  }
  return out;
}

TEST(Sha256Test, EmptyStringVector) {
  EXPECT_EQ(hex(Sha256::hash({})),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
}

TEST(Sha256Test, AbcVector) {
  EXPECT_EQ(hex(Sha256::hash(ascii("abc"))),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
}

TEST(Sha256Test, TwoBlockVector) {
  EXPECT_EQ(hex(Sha256::hash(ascii("abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"))),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1");
}

TEST(Sha256Test, MillionAs) {
  Sha256 h;
  const std::vector<std::uint8_t> chunk(1000, 'a');
  for (int i = 0; i < 1000; ++i) h.update(chunk);
  EXPECT_EQ(hex(h.finalize()),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0");
}

TEST(Sha256Test, IncrementalMatchesOneShot) {
  const auto data = ascii("the quick brown fox jumps over the lazy dog multiple times over");
  Sha256 h;
  for (std::size_t i = 0; i < data.size(); i += 7)
    h.update(std::span(data).subspan(i, std::min<std::size_t>(7, data.size() - i)));
  EXPECT_EQ(h.finalize(), Sha256::hash(data));
}

TEST(Sha256Test, UpdateAfterFinalizeThrows) {
  Sha256 h;
  h.update(ascii("x"));
  (void)h.finalize();
  EXPECT_THROW(h.update(ascii("y")), std::logic_error);
  EXPECT_THROW(h.finalize(), std::logic_error);
  h.reset();
  EXPECT_EQ(h.finalize(), Sha256::hash({}));
}

TEST(Sha256Test, PortablePinnedKernelMatchesDispatchedKernel) {
  // In-process differential between the portable compression loop and
  // whatever kernel the dispatcher picked (SHA-NI where available): every
  // length from 0 to beyond two blocks, covering all padding branches.
  Drbg rng(7331);
  for (std::size_t len = 0; len <= 160; ++len) {
    std::vector<std::uint8_t> data(len);
    rng.random_bytes(data);
    Sha256 portable(/*force_portable=*/true);
    portable.update(data);
    EXPECT_EQ(portable.finalize(), Sha256::hash(data)) << "len " << len;
  }
}

TEST(HmacTest, PortableHmacMatchesDispatchedHmac) {
  Drbg rng(7332);
  for (std::size_t len : {0u, 1u, 31u, 63u, 64u, 65u, 200u}) {
    std::vector<std::uint8_t> key(32), data(len);
    rng.random_bytes(key);
    rng.random_bytes(data);
    EXPECT_EQ(hmac_sha256_portable(key, data), hmac_sha256(key, data)) << "len " << len;
  }
}

TEST(HmacTest, Rfc4231Case1) {
  const std::vector<std::uint8_t> key(20, 0x0b);
  EXPECT_EQ(hex(hmac_sha256(key, ascii("Hi There"))),
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7");
}

TEST(HmacTest, Rfc4231Case2) {
  EXPECT_EQ(hex(hmac_sha256(ascii("Jefe"), ascii("what do ya want for nothing?"))),
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843");
}

TEST(HmacTest, LongKeyIsPrehashed) {
  // RFC 4231 case 6: 131-byte key of 0xaa.
  const std::vector<std::uint8_t> key(131, 0xaa);
  EXPECT_EQ(hex(hmac_sha256(key, ascii("Test Using Larger Than Block-Size Key - Hash Key First"))),
            "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54");
}

TEST(HmacTest, DigestEqualConstantTimeSemantics) {
  Digest256 a{}, b{};
  EXPECT_TRUE(digest_equal(a, b));
  b[31] = 1;
  EXPECT_FALSE(digest_equal(a, b));
}

TEST(ChaCha20Test, Rfc8439KeystreamBlock) {
  // RFC 8439 section 2.3.2: key = 00..1f, nonce = 00:00:00:09:00:00:00:4a:
  // 00:00:00:00, counter = 1.
  std::array<std::uint8_t, 32> key;
  for (int i = 0; i < 32; ++i) key[i] = static_cast<std::uint8_t>(i);
  const std::array<std::uint8_t, 12> nonce{0, 0, 0, 9, 0, 0, 0, 0x4a, 0, 0, 0, 0};
  ChaCha20 c(key, nonce, 1);
  std::array<std::uint8_t, 64> ks;
  c.keystream(ks);
  EXPECT_EQ(hex(std::span(ks).first(16)), "10f1e7e4d13b5915500fdd1fa32071c4");
  EXPECT_EQ(hex(std::span(ks).subspan(48, 16)), "b5129cd1de164eb9cbd083e8a2503c4e");
}

TEST(ChaCha20Test, CryptIsInvolution) {
  std::array<std::uint8_t, 32> key{};
  key[0] = 7;
  const std::array<std::uint8_t, 12> nonce{};
  std::vector<std::uint8_t> msg = ascii("attack at dawn, bring the RFID fob");
  const auto original = msg;
  ChaCha20(key, nonce).crypt(msg);
  EXPECT_NE(msg, original);
  ChaCha20(key, nonce).crypt(msg);
  EXPECT_EQ(msg, original);
}

TEST(ChaCha20Test, RejectsBadKeyNonceSizes) {
  const std::vector<std::uint8_t> short_key(31), nonce(12), key(32), short_nonce(11);
  EXPECT_THROW(ChaCha20(short_key, nonce), std::invalid_argument);
  EXPECT_THROW(ChaCha20(key, short_nonce), std::invalid_argument);
}

TEST(DrbgTest, DeterministicWithSeedAndDistinctAcrossSeeds) {
  Drbg a(42), b(42), c(43);
  std::array<std::uint8_t, 32> ba{}, bb{}, bc{};
  a.random_bytes(ba);
  b.random_bytes(bb);
  c.random_bytes(bc);
  EXPECT_EQ(ba, bb);
  EXPECT_NE(ba, bc);
}

TEST(DrbgTest, RandomBitsLengthAndVariety) {
  Drbg d(1);
  const BitVec bits = d.random_bits(1000);
  EXPECT_EQ(bits.size(), 1000u);
  // Should be roughly balanced.
  EXPECT_GT(bits.popcount(), 400u);
  EXPECT_LT(bits.popcount(), 600u);
}

TEST(Fe25519Test, SmallValueArithmetic) {
  const Fe25519 a(7), b(9);
  EXPECT_EQ(a + b, Fe25519(16));
  EXPECT_EQ(a * b, Fe25519(63));
  EXPECT_EQ(b - a, Fe25519(2));
  EXPECT_EQ(a - a, Fe25519::zero());
}

TEST(Fe25519Test, SubtractionWrapsModP) {
  const Fe25519 a(3), b(5);
  const Fe25519 d = a - b;  // == p - 2
  EXPECT_EQ(d + b, a);
}

TEST(Fe25519Test, MultiplicationCommutesAndAssociates) {
  Drbg rng(55);
  for (int i = 0; i < 25; ++i) {
    const Fe25519 x = Fe25519::from_bytes(rng.random_scalar_bytes());
    const Fe25519 y = Fe25519::from_bytes(rng.random_scalar_bytes());
    const Fe25519 z = Fe25519::from_bytes(rng.random_scalar_bytes());
    EXPECT_EQ(x * y, y * x);
    EXPECT_EQ((x * y) * z, x * (y * z));
    EXPECT_EQ(x * (y + z), x * y + x * z);
  }
}

TEST(Fe25519Test, InverseIsMultiplicativeInverse) {
  Drbg rng(56);
  for (int i = 0; i < 10; ++i) {
    const Fe25519 x = Fe25519::from_bytes(rng.random_scalar_bytes());
    if (x.is_zero()) continue;
    EXPECT_EQ(x * x.inverse(), Fe25519::one());
  }
  EXPECT_THROW(Fe25519::zero().inverse(), std::domain_error);
}

TEST(Fe25519Test, FermatLittleTheorem) {
  // x^(p-1) == 1 for x != 0; p - 1 = 2^255 - 20.
  std::array<std::uint8_t, 32> pm1;
  pm1.fill(0xFF);
  pm1[0] = 0xEC;
  pm1[31] = 0x7F;
  Drbg rng(57);
  const Fe25519 x = Fe25519::from_bytes(rng.random_scalar_bytes());
  EXPECT_EQ(x.pow(pm1), Fe25519::one());
}

TEST(Fe25519Test, PowMatchesRepeatedMultiplication) {
  const Fe25519 g = Fe25519::generator();
  std::array<std::uint8_t, 32> e{};
  e[0] = 13;
  Fe25519 expected = Fe25519::one();
  for (int i = 0; i < 13; ++i) expected = expected * g;
  EXPECT_EQ(g.pow(e), expected);
}

TEST(Fe25519Test, PowLawComposition) {
  // (g^a)^b == (g^b)^a : the DH property the OT protocol rests on.
  Drbg rng(58);
  auto a = rng.random_scalar_bytes();
  auto b = rng.random_scalar_bytes();
  a[31] &= 0x7F;
  b[31] &= 0x7F;
  const Fe25519 g = Fe25519::generator();
  EXPECT_EQ(g.pow(a).pow(b), g.pow(b).pow(a));
}

TEST(Fe25519Test, WindowedPowMatchesSchoolbook) {
  // Random exponents plus the boundary patterns a sliding window can trip
  // on: zero, one, all-ones runs, a lone top bit, and p-2.
  Drbg rng(155);
  const Fe25519 g = Fe25519::generator();
  std::vector<std::vector<std::uint8_t>> exps;
  for (int i = 0; i < 12; ++i) exps.push_back(rng.random_scalar_bytes());
  std::vector<std::uint8_t> e(32, 0);
  exps.push_back(e);  // 0
  e[0] = 1;
  exps.push_back(e);  // 1
  e.assign(32, 0xFF);
  exps.push_back(e);  // 2^256 - 1
  e.assign(32, 0);
  e[31] = 0x80;
  exps.push_back(e);  // 2^255
  e.assign(32, 0xFF);
  e[0] = 0xEB;
  e[31] = 0x7F;
  exps.push_back(e);  // p - 2
  for (const auto& exp : exps) {
    EXPECT_EQ(g.pow(exp), g.pow_schoolbook(exp));
    const Fe25519 x = Fe25519::from_bytes(rng.random_scalar_bytes());
    EXPECT_EQ(x.pow(exp), x.pow_schoolbook(exp));
  }
}

TEST(Fe25519Test, GeneratorPowMatchesSchoolbook) {
  Drbg rng(156);
  const Fe25519 g = Fe25519::generator();
  for (int i = 0; i < 12; ++i) {
    const auto e = rng.random_scalar_bytes();
    EXPECT_EQ(Fe25519::generator_pow(e), g.pow_schoolbook(e));
  }
  std::array<std::uint8_t, 32> zero{};
  EXPECT_EQ(Fe25519::generator_pow(zero), Fe25519::one());
}

TEST(Fe25519Test, SquareMatchesMultiply) {
  Drbg rng(157);
  for (int i = 0; i < 25; ++i) {
    const Fe25519 x = Fe25519::from_bytes(rng.random_scalar_bytes());
    EXPECT_EQ(x.square(), x * x);
  }
  EXPECT_EQ(Fe25519::zero().square(), Fe25519::zero());
  EXPECT_EQ(Fe25519::one().square(), Fe25519::one());
}

TEST(Fe25519Test, InverseMatchesFermatSchoolbook) {
  // inverse() uses an addition chain; it must equal x^(p-2) bit for bit.
  std::array<std::uint8_t, 32> pm2;
  pm2.fill(0xFF);
  pm2[0] = 0xEB;
  pm2[31] = 0x7F;
  Drbg rng(158);
  for (int i = 0; i < 8; ++i) {
    const Fe25519 x = Fe25519::from_bytes(rng.random_scalar_bytes());
    if (x.is_zero()) continue;
    EXPECT_EQ(x.inverse(), x.pow_schoolbook(pm2));
  }
}

TEST(Fe25519Test, ExponentArithmeticModGroupOrder) {
  // (g^a)^b == g^(a*b mod p-1) and g^a * g^(-a) == 1 — the identities the
  // OT sender's precomputed k1 factor relies on.
  Drbg rng(159);
  const Fe25519 g = Fe25519::generator();
  for (int i = 0; i < 8; ++i) {
    auto a = rng.random_scalar_bytes();
    auto b = rng.random_scalar_bytes();
    const auto ab = Fe25519::exp_mul_mod_p_minus_1(a, b);
    EXPECT_EQ(g.pow(a).pow(b), Fe25519::generator_pow(ab));
    const auto na = Fe25519::exp_neg_mod_p_minus_1(a);
    EXPECT_EQ(Fe25519::generator_pow(a) * Fe25519::generator_pow(na), Fe25519::one());
    const Fe25519 x = Fe25519::from_bytes(rng.random_scalar_bytes());
    if (!x.is_zero()) EXPECT_EQ(x.pow(a) * x.pow(na), Fe25519::one());
  }
  std::array<std::uint8_t, 32> zero{};
  EXPECT_EQ(Fe25519::exp_neg_mod_p_minus_1(zero), zero);
}

TEST(Fe25519Test, BytesRoundTrip) {
  Drbg rng(59);
  for (int i = 0; i < 10; ++i) {
    const Fe25519 x = Fe25519::from_bytes(rng.random_scalar_bytes());
    EXPECT_EQ(Fe25519::from_bytes(x.to_bytes()), x);
  }
  EXPECT_THROW(Fe25519::from_bytes(std::vector<std::uint8_t>(31)), std::invalid_argument);
}

TEST(StreamCipherTest, RoundTripsAndDiffersFromPlaintext) {
  const auto key = ascii("0123456789abcdef0123456789abcdef");
  const auto msg = ascii("seventy-three bytes of highly sensitive key agreement pad material!!");
  const auto ct = stream_crypt(key, msg);
  EXPECT_NE(ct, msg);
  EXPECT_EQ(stream_crypt(key, ct), msg);
}

TEST(StreamCipherTest, DifferentKeysGiveDifferentCiphertexts) {
  const auto msg = ascii("payload");
  const auto c1 = stream_crypt(ascii("key-one"), msg);
  const auto c2 = stream_crypt(ascii("key-two"), msg);
  EXPECT_NE(c1, c2);
}

TEST(ObliviousTransferTest, ReceiverGetsChosenSecret) {
  Drbg rng(60);
  for (bool choice : {false, true}) {
    OtSender sender(rng);
    OtReceiver receiver(rng, choice, sender.first_message());
    const auto s0 = ascii("secret-number-zero");
    const auto s1 = ascii("secret-number-one!");
    const auto cts = sender.encrypt(receiver.response(), s0, s1);
    EXPECT_EQ(receiver.decrypt(cts), choice ? s1 : s0);
  }
}

TEST(ObliviousTransferTest, ReceiverCannotDecryptOtherSecret) {
  Drbg rng(61);
  OtSender sender(rng);
  OtReceiver receiver(rng, false, sender.first_message());
  const auto s0 = ascii("chosen-secret-000");
  const auto s1 = ascii("hidden-secret-111");
  const auto cts = sender.encrypt(receiver.response(), s0, s1);
  // Decrypting the wrong ciphertext with the receiver's key must not yield s1.
  const auto wrong = receiver.decrypt({cts.second, cts.second});
  EXPECT_NE(wrong, s1);
}

TEST(ObliviousTransferTest, SenderMessagesLookUniformAcrossChoices) {
  // The sender must not be able to tell which secret was selected: M_b for
  // choice 0 and choice 1 are both uniformly random group elements. We spot
  // check that nothing about M_b trivially leaks the choice bit (e.g. by
  // comparing to M_a).
  Drbg rng(62);
  OtSender sender(rng);
  const Fe25519 ma = sender.first_message();
  OtReceiver r0(rng, false, ma);
  OtReceiver r1(rng, true, ma);
  EXPECT_NE(r0.response(), ma);
  EXPECT_NE(r1.response(), ma);
  EXPECT_NE(r0.response(), r1.response());
}

TEST(ObliviousTransferTest, RejectsZeroGroupElements) {
  Drbg rng(63);
  OtSender sender(rng);
  EXPECT_THROW(OtReceiver(rng, false, Fe25519::zero()), std::invalid_argument);
  EXPECT_THROW(sender.encrypt(Fe25519::zero(), ascii("a"), ascii("b")), std::invalid_argument);
}

TEST(ObliviousTransferTest, ManyInstancesBatchCorrectly) {
  // Mimics the protocol layer's batched usage: l_s parallel instances.
  Drbg rng(64);
  constexpr int kInstances = 48;
  std::vector<OtSender> senders;
  senders.reserve(kInstances);
  for (int i = 0; i < kInstances; ++i) senders.emplace_back(rng);
  for (int i = 0; i < kInstances; ++i) {
    const bool choice = (i % 3) == 0;
    OtReceiver receiver(rng, choice, senders[i].first_message());
    const auto s0 = ascii("pad0-" + std::to_string(i));
    const auto s1 = ascii("pad1-" + std::to_string(i));
    const auto cts = senders[i].encrypt(receiver.response(), s0, s1);
    EXPECT_EQ(receiver.decrypt(cts), choice ? s1 : s0);
  }
}

}  // namespace
}  // namespace wavekey::crypto
