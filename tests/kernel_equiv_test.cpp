// Equivalence suite for the GEMM-lowered layer kernels: the optimized
// Conv1D / ConvTranspose1D / Dense forward+backward paths must match the
// naive reference kernels (nn/reference_kernels.hpp) within floating-point
// reassociation tolerance, across padding/stride/kernel edge cases and under
// a multi-worker compute pool. Also asserts the scratch-arena contract:
// steady-state encoder inference performs zero heap allocations.

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "core/encoders.hpp"
#include "nn/conv1d.hpp"
#include "nn/dense.hpp"
#include "nn/reference_kernels.hpp"
#include "nn/tensor.hpp"
#include "numeric/rng.hpp"
#include "runtime/thread_pool.hpp"

namespace wavekey::nn {
namespace {

constexpr float kRelTol = 1e-5f;

Tensor random_tensor(const Shape& shape, Rng& rng) {
  Tensor t(shape);
  for (std::size_t i = 0; i < t.size(); ++i) t[i] = static_cast<float>(rng.normal());
  return t;
}

void expect_close(const Tensor& got, const Tensor& want, const char* what) {
  ASSERT_TRUE(got.same_shape(want)) << what;
  for (std::size_t i = 0; i < got.size(); ++i) {
    const float tol = kRelTol * (1.0f + std::abs(want[i]));
    ASSERT_NEAR(got[i], want[i], tol) << what << " at index " << i;
  }
}

struct ConvCase {
  std::size_t n, in_ch, out_ch, lin, kernel, stride, padding;
};

// Edge cases: kernel == input, padding >= kernel-1 (whole taps in the
// padding), stride > kernel (skipped inputs), single-element batch and
// multi-sample batches that split across pool chunks.
const std::vector<ConvCase> kConvCases = {
    {1, 1, 1, 8, 1, 1, 0},   {1, 3, 16, 200, 7, 2, 3}, {2, 16, 24, 100, 5, 2, 2},
    {3, 2, 4, 9, 3, 1, 2},   {1, 2, 3, 5, 5, 1, 0},    {2, 3, 2, 11, 3, 4, 1},
    {5, 4, 6, 17, 4, 3, 3},  {4, 1, 2, 6, 2, 1, 1},
};

void run_conv1d_case(const ConvCase& c) {
  SCOPED_TRACE(::testing::Message() << "n=" << c.n << " in=" << c.in_ch << " out=" << c.out_ch
                                    << " L=" << c.lin << " k=" << c.kernel << " s=" << c.stride
                                    << " p=" << c.padding);
  Rng rng(42);
  Conv1D conv(c.in_ch, c.out_ch, c.kernel, c.stride, c.padding, rng);
  const Tensor x = random_tensor({c.n, c.in_ch, c.lin}, rng);

  // Snapshot the layer's weights for the reference kernels.
  Tensor w, b;
  {
    auto ps = conv.params();
    w = *ps[0].value;
    b = *ps[1].value;
  }

  const Tensor y = conv.forward(x, true);
  const Tensor y_ref = reference::conv1d_forward(x, w, b, c.stride, c.padding);
  expect_close(y, y_ref, "conv1d forward");

  Tensor gy(y.shape());
  for (std::size_t i = 0; i < gy.size(); ++i) gy[i] = static_cast<float>(rng.normal());
  for (Param p : conv.params()) p.grad->fill(0.0f);
  const Tensor gx = conv.backward(gy);

  Tensor wg_ref(w.shape()), bg_ref(b.shape());
  const Tensor gx_ref = reference::conv1d_backward(x, w, gy, c.stride, c.padding, wg_ref, bg_ref);
  expect_close(gx, gx_ref, "conv1d grad_input");
  expect_close(*conv.params()[0].grad, wg_ref, "conv1d grad_w");
  expect_close(*conv.params()[1].grad, bg_ref, "conv1d grad_b");
}

TEST(KernelEquivalence, Conv1dMatchesReferenceSerial) {
  for (const auto& c : kConvCases) run_conv1d_case(c);
}

TEST(KernelEquivalence, Conv1dMatchesReferenceParallel) {
  runtime::ScopedComputePool pool(4);
  for (const auto& c : kConvCases) run_conv1d_case(c);
}

void run_conv_transpose_case(const ConvCase& c) {
  SCOPED_TRACE(::testing::Message() << "n=" << c.n << " in=" << c.in_ch << " out=" << c.out_ch
                                    << " L=" << c.lin << " k=" << c.kernel << " s=" << c.stride);
  Rng rng(43);
  ConvTranspose1D deconv(c.in_ch, c.out_ch, c.kernel, c.stride, rng);
  const Tensor x = random_tensor({c.n, c.in_ch, c.lin}, rng);

  Tensor w, b;
  {
    auto ps = deconv.params();
    w = *ps[0].value;
    b = *ps[1].value;
  }

  const Tensor y = deconv.forward(x, true);
  const Tensor y_ref = reference::conv_transpose1d_forward(x, w, b, c.stride);
  expect_close(y, y_ref, "deconv forward");

  Tensor gy(y.shape());
  for (std::size_t i = 0; i < gy.size(); ++i) gy[i] = static_cast<float>(rng.normal());
  for (Param p : deconv.params()) p.grad->fill(0.0f);
  const Tensor gx = deconv.backward(gy);

  Tensor wg_ref(w.shape()), bg_ref(b.shape());
  const Tensor gx_ref = reference::conv_transpose1d_backward(x, w, gy, c.stride, wg_ref, bg_ref);
  expect_close(gx, gx_ref, "deconv grad_input");
  expect_close(*deconv.params()[0].grad, wg_ref, "deconv grad_w");
  expect_close(*deconv.params()[1].grad, bg_ref, "deconv grad_b");
}

TEST(KernelEquivalence, ConvTranspose1dMatchesReferenceSerial) {
  for (const auto& c : kConvCases) run_conv_transpose_case(c);
}

TEST(KernelEquivalence, ConvTranspose1dMatchesReferenceParallel) {
  runtime::ScopedComputePool pool(4);
  for (const auto& c : kConvCases) run_conv_transpose_case(c);
}

void run_dense_case(std::size_t n, std::size_t in, std::size_t out) {
  SCOPED_TRACE(::testing::Message() << "n=" << n << " in=" << in << " out=" << out);
  Rng rng(44);
  Dense dense(in, out, rng);
  const Tensor x = random_tensor({n, in}, rng);

  Tensor w, b;
  {
    auto ps = dense.params();
    w = *ps[0].value;
    b = *ps[1].value;
  }

  const Tensor y = dense.forward(x, true);
  const Tensor y_ref = reference::dense_forward(x, w, b);
  expect_close(y, y_ref, "dense forward");

  Tensor gy(y.shape());
  for (std::size_t i = 0; i < gy.size(); ++i) gy[i] = static_cast<float>(rng.normal());
  for (Param p : dense.params()) p.grad->fill(0.0f);
  const Tensor gx = dense.backward(gy);

  Tensor wg_ref(w.shape()), bg_ref(b.shape());
  const Tensor gx_ref = reference::dense_backward(x, w, gy, wg_ref, bg_ref);
  expect_close(gx, gx_ref, "dense grad_input");
  expect_close(*dense.params()[0].grad, wg_ref, "dense grad_w");
  expect_close(*dense.params()[1].grad, bg_ref, "dense grad_b");
}

TEST(KernelEquivalence, DenseMatchesReferenceSerial) {
  run_dense_case(1, 1, 1);
  run_dense_case(1, 1200, 128);
  run_dense_case(3, 7, 5);
  run_dense_case(8, 33, 9);   // exercises GEMM edge tiles (not multiples of 4/8)
  run_dense_case(5, 128, 12);
}

TEST(KernelEquivalence, DenseMatchesReferenceParallel) {
  runtime::ScopedComputePool pool(4);
  run_dense_case(8, 33, 9);
  run_dense_case(6, 128, 12);
}

// The §7.2 determinism contract at the kernel level: a pool of size <= 1
// must produce bit-identical outputs to the fully serial path.
TEST(KernelEquivalence, PoolSizeOneBitIdenticalToSerial) {
  Rng rng(45);
  Conv1D conv(3, 8, 5, 2, 2, rng);
  const Tensor x = random_tensor({4, 3, 50}, rng);
  const Tensor serial = conv.forward(x, false);
  runtime::ScopedComputePool pool(1);
  const Tensor pooled = conv.forward(x, false);
  ASSERT_TRUE(serial.same_shape(pooled));
  for (std::size_t i = 0; i < serial.size(); ++i)
    ASSERT_EQ(serial[i], pooled[i]) << "index " << i;
}

// The zero-allocation contract of tensor.hpp: once the encoder has run a
// few warmup passes, every buffer in the forward pass is served by the
// per-thread recycling arena and the heap-allocation counter stops moving.
TEST(TensorArena, ZeroAllocationSteadyStateInference) {
  Rng rng(46);
  core::EncoderPair encoders(12, rng);
  Tensor input({3, 200});
  for (std::size_t i = 0; i < input.size(); ++i) input[i] = static_cast<float>(rng.normal());

  for (int warmup = 0; warmup < 4; ++warmup) (void)encoders.imu_features(input);

  const TensorArenaStats before = tensor_arena_stats();
  for (int i = 0; i < 16; ++i) (void)encoders.imu_features(input);
  const TensorArenaStats after = tensor_arena_stats();

  EXPECT_EQ(after.heap_allocations, before.heap_allocations)
      << "steady-state inference hit the heap (" << after.heap_bytes - before.heap_bytes
      << " fresh bytes)";
  EXPECT_GT(after.pool_reuses, before.pool_reuses);
}

}  // namespace
}  // namespace wavekey::nn
