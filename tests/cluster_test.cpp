// Tests of the distributed backend tier (DESIGN.md §10): consistent-hash
// partition placement (minimal movement across node removal), the CRC'd
// gateway wire envelopes (malformed-input fuzz: typed errors only, never a
// grant), VaultCluster failure semantics — crash leaves a typed
// kUnavailable window and failover must not reopen the replay surface;
// drain hands partitions off with no client-visible gap — and the
// ReaderGateway retry loop (idempotent retries, every request resolves).

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <mutex>
#include <set>
#include <thread>
#include <vector>

#include "crypto/drbg.hpp"
#include "numeric/rng.hpp"
#include "server/cluster.hpp"
#include "server/gateway.hpp"
#include "server/membership.hpp"

using namespace wavekey;
using namespace wavekey::server;
using protocol::Bytes;
using protocol::WireError;

namespace {

SessionKey random_key(crypto::Drbg& rng) {
  SessionKey key{};
  rng.random_bytes(key);
  return key;
}

std::array<std::uint8_t, kNonceBytes> nonce_from(std::uint64_t v) {
  std::array<std::uint8_t, kNonceBytes> nonce{};
  for (std::size_t i = 0; i < nonce.size(); ++i)
    nonce[i] = static_cast<std::uint8_t>(v >> (8 * i));
  return nonce;
}

/// Serialized well-formed AccessRequest for (sid, counter) under `key`.
Bytes request_wire(std::uint64_t sid, std::uint64_t counter, const SessionKey& key) {
  return make_access_request(sid, 0, counter, nonce_from(counter), {0xD0}, key).serialize();
}

ClusterRequest envelope(std::uint64_t request_id, Bytes inner) {
  ClusterRequest req;
  req.request_id = request_id;
  req.tenant_id = 1;
  req.inner = std::move(inner);
  return req;
}

std::vector<NodeId> node_ids(std::uint32_t n) {
  std::vector<NodeId> ids;
  for (NodeId id = 0; id < n; ++id) ids.push_back(id);
  return ids;
}

}  // namespace

// --- membership / consistent hashing ---------------------------------------

TEST(PartitionMapTest, EveryPartitionGetsDistinctLivePrimaryAndReplica) {
  PartitionMap map(64, 64);
  map.rebuild(node_ids(4));
  for (std::uint32_t p = 0; p < map.partitions(); ++p) {
    const PartitionOwners o = map.owners(p);
    EXPECT_LT(o.primary, 4u);
    EXPECT_LT(o.replica, 4u);
    EXPECT_NE(o.primary, o.replica);
  }
}

TEST(PartitionMapTest, PlacementIsDeterministic) {
  PartitionMap a(64, 64), b(64, 64);
  a.rebuild(node_ids(4));
  b.rebuild(node_ids(4));
  for (std::uint32_t p = 0; p < 64; ++p) {
    EXPECT_EQ(a.owners(p).primary, b.owners(p).primary);
    EXPECT_EQ(a.owners(p).replica, b.owners(p).replica);
  }
}

TEST(PartitionMapTest, RemovingANodeOnlyMovesItsOwnPartitions) {
  // The consistent-hash contract: after dropping node 2, every partition
  // that node 2 did not own keeps a bit-identical (primary, replica) pair.
  PartitionMap map(128, 64);
  map.rebuild(node_ids(5));
  std::vector<PartitionOwners> before(map.partitions());
  for (std::uint32_t p = 0; p < map.partitions(); ++p) before[p] = map.owners(p);

  std::vector<NodeId> survivors = {0, 1, 3, 4};
  map.rebuild(survivors);
  std::uint32_t moved = 0, touched = 0;
  for (std::uint32_t p = 0; p < map.partitions(); ++p) {
    const PartitionOwners& old = before[p];
    const PartitionOwners now = map.owners(p);
    EXPECT_NE(now.primary, 2u);
    EXPECT_NE(now.replica, 2u);
    if (old.primary == 2 || old.replica == 2) {
      ++touched;
      continue;
    }
    ++moved;  // counted below as "must be unchanged"
    EXPECT_EQ(now.primary, old.primary) << "partition " << p << " moved needlessly";
    EXPECT_EQ(now.replica, old.replica) << "partition " << p << " moved needlessly";
  }
  EXPECT_GT(touched, 0u);  // node 2 owned something, or the test proves nothing
  EXPECT_GT(moved, 0u);
}

TEST(PartitionMapTest, VersionBumpsPerRebuildAndEmptySetUnowns) {
  PartitionMap map(16, 8);
  const std::uint64_t v0 = map.version();
  map.rebuild(node_ids(2));
  EXPECT_EQ(map.version(), v0 + 1);
  map.rebuild({});
  EXPECT_EQ(map.version(), v0 + 2);
  for (std::uint32_t p = 0; p < map.partitions(); ++p) {
    EXPECT_EQ(map.owners(p).primary, kNoNode);
    EXPECT_EQ(map.owners(p).replica, kNoNode);
  }
}

TEST(PartitionMapTest, SingleNodeClusterHasNoReplica) {
  PartitionMap map(16, 8);
  map.rebuild({NodeId{3}});
  for (std::uint32_t p = 0; p < map.partitions(); ++p) {
    EXPECT_EQ(map.owners(p).primary, 3u);
    EXPECT_EQ(map.owners(p).replica, kNoNode);
  }
}

TEST(PartitionMapTest, PartitionOfIsStableAndInRange) {
  for (const std::uint64_t sid : {0ull, 1ull, 42ull, ~0ull}) {
    const std::uint32_t p = partition_of(sid, 64);
    EXPECT_LT(p, 64u);
    EXPECT_EQ(p, partition_of(sid, 64));  // pure function
  }
  std::set<std::uint32_t> hit;
  for (std::uint64_t sid = 0; sid < 256; ++sid) hit.insert(partition_of(sid, 64));
  EXPECT_GT(hit.size(), 32u);  // splitmix64 mixing spreads sequential ids
}

// --- wire envelopes + CRC framing -------------------------------------------

TEST(ClusterWireTest, RequestAndResponseRoundTrip) {
  ClusterRequest req = envelope(0xABCDEF0102ull, {1, 2, 3, 4, 5});
  req.attempt = 3;
  const ClusterRequest back = ClusterRequest::parse(req.serialize());
  EXPECT_EQ(back.request_id, req.request_id);
  EXPECT_EQ(back.tenant_id, req.tenant_id);
  EXPECT_EQ(back.attempt, 3u);
  EXPECT_EQ(back.inner, req.inner);

  ClusterResponse resp;
  resp.request_id = 77;
  resp.status = AccessStatus::kUnavailable;
  resp.grant_wire = {9, 9, 9};
  const ClusterResponse rback = ClusterResponse::parse(resp.serialize());
  EXPECT_EQ(rback.request_id, 77u);
  EXPECT_EQ(rback.status, AccessStatus::kUnavailable);
  EXPECT_EQ(rback.grant_wire, resp.grant_wire);
}

TEST(ClusterWireTest, UnknownStatusByteThrows) {
  ClusterResponse resp;
  resp.request_id = 1;
  resp.status = AccessStatus::kGranted;
  Bytes wire = resp.serialize();
  wire[1 + 8] = static_cast<std::uint8_t>(kAccessStatusCount);  // first invalid value
  EXPECT_THROW(ClusterResponse::parse(wire), WireError);
}

TEST(ClusterWireTest, FrameDetectsEveryByteCorruption) {
  const Bytes payload = {0xDE, 0xAD, 0xBE, 0xEF, 0x00, 0x42};
  const Bytes framed = frame_message(payload);
  ASSERT_EQ(framed.size(), payload.size() + 4);
  EXPECT_EQ(unframe_message(framed).value(), payload);
  for (std::size_t i = 0; i < framed.size(); ++i) {
    Bytes corrupted = framed;
    corrupted[i] ^= 0x01;
    EXPECT_FALSE(unframe_message(corrupted).has_value()) << "byte " << i;
  }
}

TEST(ClusterWireTest, FrameRejectsTruncationAndEmpty) {
  const Bytes small = {1, 2, 3};
  const Bytes framed = frame_message(small);
  for (std::size_t keep = 0; keep < framed.size(); ++keep) {
    const Bytes cut(framed.begin(), framed.begin() + static_cast<std::ptrdiff_t>(keep));
    EXPECT_FALSE(unframe_message(cut).has_value()) << "kept " << keep;
  }
  const Bytes empty_payload = frame_message({});
  EXPECT_EQ(unframe_message(empty_payload).value(), Bytes{});
}

// --- malformed-input fuzz: typed errors only, never a grant -----------------

namespace {

Bytes mutate_wire(const Bytes& base, Rng& rng) {
  Bytes out = base;
  switch (rng.uniform_u64(4)) {
    case 0:  // truncate
      out.resize(static_cast<std::size_t>(rng.uniform_u64(base.size() + 1)));
      break;
    case 1: {  // flip 1..8 bits
      if (out.empty()) break;
      const std::size_t flips = 1 + rng.uniform_u64(8);
      for (std::size_t i = 0; i < flips; ++i) {
        const std::size_t bit = rng.uniform_u64(out.size() * 8);
        out[bit / 8] ^= static_cast<std::uint8_t>(1u << (bit % 8));
      }
      break;
    }
    case 2:  // fully random buffer
      out.resize(static_cast<std::size_t>(rng.uniform_u64(300)));
      rng.fill_bytes(out);
      break;
    default:  // append junk
      for (std::size_t i = 0, n = 1 + rng.uniform_u64(32); i < n; ++i)
        out.push_back(static_cast<std::uint8_t>(rng.uniform_u64(256)));
      break;
  }
  return out;
}

}  // namespace

TEST(ClusterFuzz, ClusterRequestParseNeverCrashes) {
  const Bytes base = envelope(123, request_wire(1, 1, SessionKey{})).serialize();
  Rng rng(7001);
  for (int i = 0; i < 1000; ++i) {
    const Bytes mutated = mutate_wire(base, rng);
    try {
      (void)ClusterRequest::parse(mutated);  // parsing garbage is fine; UB is not
    } catch (const WireError&) {
    }
  }
}

TEST(ClusterFuzz, ClusterResponseParseNeverCrashes) {
  ClusterResponse resp;
  resp.request_id = 5;
  resp.status = AccessStatus::kGranted;
  resp.grant_wire = make_access_grant(1, 1, AccessStatus::kGranted, {}).serialize();
  const Bytes base = resp.serialize();
  Rng rng(7002);
  for (int i = 0; i < 1000; ++i) {
    const Bytes mutated = mutate_wire(base, rng);
    try {
      (void)ClusterResponse::parse(mutated);
    } catch (const WireError&) {
    }
  }
}

TEST(ClusterFuzz, UnframeNeverThrowsOnAnyMutation) {
  const Bytes base = frame_message(envelope(9, {1, 2, 3, 4, 5, 6, 7, 8}).serialize());
  Rng rng(7003);
  for (int i = 0; i < 1000; ++i) {
    const Bytes mutated = mutate_wire(base, rng);
    // The framing layer models channel noise: nullopt, never an exception.
    (void)unframe_message(mutated);
  }
}

TEST(ClusterFuzz, ExecuteOnMutatedEnvelopesYieldsTypedNonGrantsOnly) {
  // End-to-end server-side path under mutation: whatever survives the CRC
  // and the envelope parser must come out as a *typed* status — and a
  // mutated request can never be granted (the inner HMAC no longer binds).
  ClusterConfig config;
  config.nodes = 2;
  config.partitions = 16;
  VaultCluster cluster(config);
  crypto::Drbg drbg(71);
  const SessionKey key = random_key(drbg);
  ASSERT_TRUE(cluster.install(1, key));

  const Bytes inner = request_wire(1, 1, key);
  const Bytes base = envelope(0xF00D, inner).serialize();
  Rng rng(7004);
  std::uint64_t executed = 0;
  for (int i = 0; i < 1000; ++i) {
    const Bytes mutated = mutate_wire(base, rng);
    if (mutated == base) continue;  // identical bytes are legitimately grantable
    ClusterRequest parsed;
    try {
      parsed = ClusterRequest::parse(mutated);
    } catch (const WireError&) {
      continue;  // typed rejection at the envelope layer
    }
    // A mutation confined to the envelope header leaves the MACed inner
    // request intact — routing it is legitimate. The claim under test is
    // that no *content* mutation ever grants.
    if (parsed.inner == inner) continue;
    const ClusterResponse resp = cluster.execute(parsed);
    ++executed;
    EXPECT_LT(static_cast<std::size_t>(resp.status), kAccessStatusCount);
    EXPECT_NE(resp.status, AccessStatus::kGranted) << "mutation " << i << " was granted";
  }
  EXPECT_GT(executed, 0u);  // some mutants must reach the vault for this to bite
}

// --- VaultCluster semantics --------------------------------------------------

TEST(VaultClusterTest, GrantsAndDetectsReplaysAcrossTheCluster) {
  ClusterConfig config;
  config.nodes = 4;
  config.partitions = 32;
  VaultCluster cluster(config);
  crypto::Drbg drbg(81);
  const SessionKey key = random_key(drbg);
  ASSERT_TRUE(cluster.install(7, key));

  const Bytes wire = request_wire(7, 1, key);
  const ClusterResponse first = cluster.execute(envelope(100, wire));
  ASSERT_EQ(first.status, AccessStatus::kGranted);
  // The grant is MACed under the session key, end to end.
  EXPECT_TRUE(verify_access_grant(AccessGrant::parse(first.grant_wire), key));

  // Same bytes under a NEW request id: a true replay, not a retry.
  EXPECT_EQ(cluster.execute(envelope(101, wire)).status, AccessStatus::kReplay);
  // Fresh counter: business as usual.
  EXPECT_EQ(cluster.execute(envelope(102, request_wire(7, 2, key))).status,
            AccessStatus::kGranted);
}

TEST(VaultClusterTest, RetriedRequestIdIsAnsweredFromTheDedupCache) {
  ClusterConfig config;
  config.nodes = 3;
  VaultCluster cluster(config);
  crypto::Drbg drbg(82);
  const SessionKey key = random_key(drbg);
  ASSERT_TRUE(cluster.install(9, key));

  const Bytes wire = request_wire(9, 1, key);
  const ClusterResponse first = cluster.execute(envelope(500, wire));
  ASSERT_EQ(first.status, AccessStatus::kGranted);
  // A retransmission (same request id) gets the SAME grant back — not a
  // replay rejection, and crucially not a second execution.
  const ClusterResponse retry = cluster.execute(envelope(500, wire));
  EXPECT_EQ(retry.status, AccessStatus::kGranted);
  EXPECT_EQ(retry.grant_wire, first.grant_wire);
  const ClusterStats stats = cluster.stats();
  EXPECT_EQ(stats.vault_grants, 1u);
  EXPECT_EQ(stats.dedup_hits, 1u);
}

TEST(VaultClusterTest, CrashLeavesTypedUnavailabilityUntilFailover) {
  ClusterConfig config;
  config.nodes = 4;
  VaultCluster cluster(config);
  crypto::Drbg drbg(83);
  const SessionKey key = random_key(drbg);
  ASSERT_TRUE(cluster.install(11, key));

  const NodeId victim = cluster.owners_of(11).primary;
  cluster.crash(victim);
  EXPECT_EQ(cluster.node_state(victim), NodeState::kDown);
  // Partitions are NOT reassigned by crash: the owner is down, the request
  // resolves kUnavailable — typed, immediate, no hang.
  EXPECT_EQ(cluster.execute(envelope(600, request_wire(11, 1, key))).status,
            AccessStatus::kUnavailable);
  cluster.fail_over();
  EXPECT_NE(cluster.owners_of(11).primary, victim);
  EXPECT_EQ(cluster.execute(envelope(601, request_wire(11, 2, key))).status,
            AccessStatus::kGranted);
}

TEST(VaultClusterTest, CrashDoesNotReopenTheReplayWindow) {
  ClusterConfig config;
  config.nodes = 4;
  VaultCluster cluster(config);
  crypto::Drbg drbg(84);
  const SessionKey key = random_key(drbg);
  ASSERT_TRUE(cluster.install(13, key));

  const Bytes wire = request_wire(13, 1, key);
  ASSERT_EQ(cluster.execute(envelope(700, wire)).status, AccessStatus::kGranted);

  const NodeId victim = cluster.owners_of(13).primary;
  cluster.crash(victim);  // primary's memory (and its replay window) is gone
  cluster.fail_over();
  // The promoted replica mirrored the accepted counter synchronously at
  // grant time: the pre-crash request is STILL a replay.
  EXPECT_EQ(cluster.execute(envelope(701, wire)).status, AccessStatus::kReplay);
  EXPECT_EQ(cluster.execute(envelope(702, request_wire(13, 2, key))).status,
            AccessStatus::kGranted);
}

TEST(VaultClusterTest, CrashedRetryIsAnsweredFromTheMigratedDedupCache) {
  // Grant executes, the response is lost, THEN the primary dies. The retry
  // (same request id) must land on the promoted replica's migrated
  // idempotency record and receive the original grant — not kReplay.
  ClusterConfig config;
  config.nodes = 4;
  VaultCluster cluster(config);
  crypto::Drbg drbg(85);
  const SessionKey key = random_key(drbg);
  ASSERT_TRUE(cluster.install(17, key));

  const Bytes wire = request_wire(17, 1, key);
  const ClusterResponse original = cluster.execute(envelope(800, wire));
  ASSERT_EQ(original.status, AccessStatus::kGranted);

  cluster.crash(cluster.owners_of(17).primary);
  cluster.fail_over();
  const ClusterResponse retry = cluster.execute(envelope(800, wire));
  EXPECT_EQ(retry.status, AccessStatus::kGranted);
  EXPECT_EQ(retry.grant_wire, original.grant_wire);
  EXPECT_EQ(cluster.stats().vault_grants, 1u);  // still executed exactly once
}

TEST(VaultClusterTest, RevocationSurvivesFailover) {
  ClusterConfig config;
  config.nodes = 4;
  VaultCluster cluster(config);
  crypto::Drbg drbg(86);
  const SessionKey key = random_key(drbg);
  ASSERT_TRUE(cluster.install(19, key));
  ASSERT_TRUE(cluster.revoke(19));

  cluster.crash(cluster.owners_of(19).primary);
  cluster.fail_over();
  // The tombstone was replicated at revoke time and migrated with the
  // partition: a dead primary must not resurrect a revoked session.
  EXPECT_EQ(cluster.execute(envelope(900, request_wire(19, 1, key))).status,
            AccessStatus::kRevoked);
}

TEST(VaultClusterTest, DrainHandsOffWithNoClientVisibleGap) {
  ClusterConfig config;
  config.nodes = 4;
  config.partitions = 64;
  VaultCluster cluster(config);
  crypto::Drbg drbg(87);

  constexpr std::uint64_t kSessions = 32;
  std::vector<SessionKey> keys;
  for (std::uint64_t sid = 0; sid < kSessions; ++sid) {
    keys.push_back(random_key(drbg));
    ASSERT_TRUE(cluster.install(sid, keys.back()));
  }
  std::uint64_t request_id = 1000;
  for (std::uint64_t sid = 0; sid < kSessions; ++sid)
    ASSERT_EQ(cluster.execute(envelope(++request_id, request_wire(sid, 1, keys[sid]))).status,
              AccessStatus::kGranted);

  const NodeId drained = 2;
  cluster.drain(drained);
  EXPECT_EQ(cluster.node_state(drained), NodeState::kDown);
  EXPECT_EQ(cluster.stats().drains, 1u);

  const std::uint64_t unavailable_before = cluster.stats().unavailable;
  for (std::uint64_t sid = 0; sid < kSessions; ++sid) {
    // Nothing routes to the drained node anymore...
    EXPECT_NE(cluster.owners_of(sid).primary, drained);
    EXPECT_NE(cluster.owners_of(sid).replica, drained);
    // ...replayed pre-drain counters are still replays (windows moved)...
    EXPECT_EQ(cluster.execute(envelope(++request_id, request_wire(sid, 1, keys[sid]))).status,
              AccessStatus::kReplay);
    // ...and fresh traffic grants with zero unavailability.
    EXPECT_EQ(cluster.execute(envelope(++request_id, request_wire(sid, 2, keys[sid]))).status,
              AccessStatus::kGranted);
  }
  EXPECT_EQ(cluster.stats().unavailable, unavailable_before);
}

TEST(VaultClusterTest, ServingRacesTopologyChangesWithoutTornResults) {
  // Four threads hammer execute() while the main thread crashes a node,
  // fails over, then drains another: every response must carry a typed
  // status, and granted responses must carry a verifiable MAC. (TSan runs
  // this in CI; the shared/unique topology lock is the thing under test.)
  ClusterConfig config;
  config.nodes = 4;
  config.partitions = 32;
  VaultCluster cluster(config);
  crypto::Drbg drbg(88);

  constexpr std::uint64_t kSessions = 16;
  std::vector<SessionKey> keys;
  for (std::uint64_t sid = 0; sid < kSessions; ++sid) {
    keys.push_back(random_key(drbg));
    ASSERT_TRUE(cluster.install(sid, keys.back()));
  }

  std::atomic<std::uint64_t> next_id{1};
  std::atomic<bool> bad_status{false};
  std::vector<std::thread> clients;
  for (int t = 0; t < 4; ++t) {
    clients.emplace_back([&, t] {
      for (std::uint64_t i = 0; i < 200; ++i) {
        const std::uint64_t sid = (static_cast<std::uint64_t>(t) * 200 + i) % kSessions;
        const std::uint64_t counter = 2 + static_cast<std::uint64_t>(t) * 200 + i;
        const ClusterResponse resp = cluster.execute(
            envelope(next_id.fetch_add(1), request_wire(sid, counter, keys[sid])));
        if (static_cast<std::size_t>(resp.status) >= kAccessStatusCount) bad_status.store(true);
        if (resp.status == AccessStatus::kGranted &&
            !verify_access_grant(AccessGrant::parse(resp.grant_wire), keys[sid]))
          bad_status.store(true);
      }
    });
  }
  cluster.crash(0);
  cluster.fail_over();
  cluster.drain(1);
  for (auto& t : clients) t.join();
  EXPECT_FALSE(bad_status.load());

  // Quiesced: the two survivors serve everything.
  const std::uint64_t sid = 3;
  EXPECT_EQ(cluster.execute(envelope(next_id.fetch_add(1),
                                     request_wire(sid, 5000, keys[sid])))
                .status,
            AccessStatus::kGranted);
}

// --- ReaderGateway -----------------------------------------------------------

namespace {

struct ResultLog {
  std::mutex mutex;
  std::vector<GatewayResult> results;

  ReaderGateway::Callback recorder() {
    return [this](const GatewayResult& r) {
      std::lock_guard<std::mutex> lock(mutex);
      results.push_back(r);
    };
  }
  std::uint64_t count(AccessStatus status) {
    std::lock_guard<std::mutex> lock(mutex);
    std::uint64_t n = 0;
    for (const GatewayResult& r : results) n += r.status == status ? 1 : 0;
    return n;
  }
};

}  // namespace

TEST(ReaderGatewayTest, CleanChannelGrantsEverythingExactlyOnce) {
  ClusterConfig cluster_config;
  cluster_config.nodes = 3;
  VaultCluster cluster(cluster_config);
  crypto::Drbg drbg(91);

  constexpr std::uint64_t kSessions = 8;
  std::vector<SessionKey> keys;
  for (std::uint64_t sid = 0; sid < kSessions; ++sid) {
    keys.push_back(random_key(drbg));
    ASSERT_TRUE(cluster.install(sid, keys.back()));
  }

  GatewayConfig gw_config;
  gw_config.gateway_id = 1;
  gw_config.workers = 2;
  ResultLog log;
  std::set<std::uint64_t> ids;
  {
    ReaderGateway gateway(cluster, gw_config);
    for (std::uint64_t i = 0; i < 64; ++i) {
      const std::uint64_t sid = i % kSessions;
      const auto id = gateway.submit(sid, request_wire(sid, 1 + i / kSessions, keys[sid]),
                                     log.recorder());
      ASSERT_TRUE(id.has_value());
      EXPECT_TRUE(ids.insert(*id).second) << "request ids must be unique";
    }
    gateway.finish();
    const GatewayStats stats = gateway.stats();
    EXPECT_EQ(stats.submitted, 64u);
    EXPECT_EQ(stats.resolved, 64u);
    EXPECT_EQ(stats.outcomes[static_cast<std::size_t>(AccessStatus::kGranted)], 64u);
    EXPECT_EQ(stats.attempts, 64u);  // clean channel: one attempt each
  }
  EXPECT_EQ(log.count(AccessStatus::kGranted), 64u);
  EXPECT_EQ(cluster.stats().vault_grants, 64u);
}

TEST(ReaderGatewayTest, ShutdownOfParkedLanesIsNotifyDriven) {
  // Lanes used to poll the job queue on a 10 ms try_pop_for slice, so an
  // idle gateway took up to one slice per worker to notice finish(). Now a
  // parked lane suspends in the queue and close() posts it a nullopt
  // directly, so shutdown latency is pure scheduling latency. Let the lanes
  // park for real, then require finish() to come back well under a single
  // old poll slice.
  ClusterConfig cluster_config;
  cluster_config.nodes = 2;
  VaultCluster cluster(cluster_config);
  crypto::Drbg drbg(95);
  const SessionKey key = random_key(drbg);
  ASSERT_TRUE(cluster.install(1, key));

  GatewayConfig gw_config;
  gw_config.workers = 4;
  ResultLog log;
  ReaderGateway gateway(cluster, gw_config);
  // One real job proves the lanes are alive before they go idle.
  ASSERT_TRUE(gateway.submit(1, request_wire(1, 1, key), log.recorder()).has_value());
  std::this_thread::sleep_for(std::chrono::milliseconds(20));  // all 4 lanes parked

  const auto start = std::chrono::steady_clock::now();
  gateway.finish();
  const double shutdown_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();

  EXPECT_EQ(log.count(AccessStatus::kGranted), 1u);
  EXPECT_EQ(gateway.stats().resolved, 1u);
  // Generous for CI yet far below the 4-lane worst case of the old polling
  // design (and below even one 10 ms slice).
  EXPECT_LT(shutdown_s, 0.008);
}

TEST(ReaderGatewayTest, SubmitAfterFinishIsRefusedCleanly) {
  ClusterConfig cluster_config;
  cluster_config.nodes = 2;
  VaultCluster cluster(cluster_config);
  ReaderGateway gateway(cluster, GatewayConfig{});
  gateway.finish();
  const Bytes junk = {1, 2, 3};
  EXPECT_FALSE(gateway.submit(1, junk, nullptr).has_value());
  EXPECT_EQ(gateway.stats().submitted, 0u);
}

TEST(ReaderGatewayTest, BlackholeResolvesEveryRequestAsRetryExhausted) {
  ClusterConfig cluster_config;
  cluster_config.nodes = 2;
  VaultCluster cluster(cluster_config);
  crypto::Drbg drbg(92);
  const SessionKey key = random_key(drbg);
  ASSERT_TRUE(cluster.install(1, key));

  GatewayConfig gw_config;
  gw_config.max_attempts = 3;
  gw_config.backoff_base_s = 0.0;  // keep the test fast
  gw_config.channel.mobile_to_server.loss = 1.0;
  gw_config.channel.server_to_mobile.loss = 1.0;
  ResultLog log;
  ReaderGateway gateway(cluster, gw_config);
  for (std::uint64_t c = 1; c <= 8; ++c)
    ASSERT_TRUE(gateway.submit(1, request_wire(1, c, key), log.recorder()).has_value());
  gateway.finish();

  EXPECT_EQ(log.count(AccessStatus::kRetryExhausted), 8u);
  {
    std::lock_guard<std::mutex> lock(log.mutex);
    for (const GatewayResult& r : log.results) EXPECT_EQ(r.attempts, 3u);
  }
  EXPECT_EQ(cluster.stats().executed, 0u);  // nothing ever arrived
}

TEST(ReaderGatewayTest, DownedPrimaryResolvesTypedUnavailable) {
  ClusterConfig cluster_config;
  cluster_config.nodes = 3;
  VaultCluster cluster(cluster_config);
  crypto::Drbg drbg(93);
  const SessionKey key = random_key(drbg);
  ASSERT_TRUE(cluster.install(2, key));
  cluster.crash(cluster.owners_of(2).primary);

  GatewayConfig gw_config;
  gw_config.max_attempts = 2;
  gw_config.backoff_base_s = 0.0;
  ResultLog log;
  ReaderGateway gateway(cluster, gw_config);
  ASSERT_TRUE(gateway.submit(2, request_wire(2, 1, key), log.recorder()).has_value());
  gateway.finish();
  // The gateway heard a typed answer (owner down) — that is the final
  // status, distinct from hearing nothing at all.
  EXPECT_EQ(log.count(AccessStatus::kUnavailable), 1u);
  EXPECT_EQ(log.count(AccessStatus::kRetryExhausted), 0u);
}

TEST(ReaderGatewayTest, LossyChannelRetriesStayIdempotent) {
  // 30% loss each way forces plenty of retransmissions; the dedup cache
  // must absorb every one — zero kReplay outcomes, and the cluster grants
  // each request at most once.
  ClusterConfig cluster_config;
  cluster_config.nodes = 3;
  VaultCluster cluster(cluster_config);
  crypto::Drbg drbg(94);

  constexpr std::uint64_t kSessions = 8;
  std::vector<SessionKey> keys;
  for (std::uint64_t sid = 0; sid < kSessions; ++sid) {
    keys.push_back(random_key(drbg));
    ASSERT_TRUE(cluster.install(sid, keys.back()));
  }

  GatewayConfig gw_config;
  gw_config.workers = 4;
  gw_config.max_attempts = 10;
  gw_config.backoff_base_s = 0.0001;
  gw_config.backoff_max_s = 0.0005;
  gw_config.channel.mobile_to_server.loss = 0.3;
  gw_config.channel.server_to_mobile.loss = 0.3;
  gw_config.channel.mobile_to_server.duplicate = 0.1;
  gw_config.channel.server_to_mobile.duplicate = 0.1;

  constexpr std::uint64_t kRequests = 96;
  ResultLog log;
  ReaderGateway gateway(cluster, gw_config);
  for (std::uint64_t i = 0; i < kRequests; ++i) {
    const std::uint64_t sid = i % kSessions;
    ASSERT_TRUE(
        gateway.submit(sid, request_wire(sid, 1 + i / kSessions, keys[sid]), log.recorder())
            .has_value());
  }
  gateway.finish();

  const GatewayStats stats = gateway.stats();
  EXPECT_EQ(stats.resolved, kRequests);  // every request resolved, no hangs
  EXPECT_GT(stats.attempts, kRequests);  // the channel really was lossy
  EXPECT_EQ(log.count(AccessStatus::kReplay), 0u);
  EXPECT_EQ(log.count(AccessStatus::kUnavailable), 0u);
  const std::uint64_t granted = log.count(AccessStatus::kGranted);
  const std::uint64_t exhausted = log.count(AccessStatus::kRetryExhausted);
  EXPECT_EQ(granted + exhausted, kRequests);
  // At-most-once: grants never exceed distinct requests, and every grant
  // the gateway missed is covered by a typed retry-exhausted outcome.
  const ClusterStats cs = cluster.stats();
  EXPECT_LE(cs.vault_grants, kRequests);
  EXPECT_GE(cs.vault_grants, granted);
  EXPECT_LE(cs.vault_grants - granted, exhausted);
}
