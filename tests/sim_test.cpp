// Tests for the physical simulation substrate: gesture kinematics are
// self-consistent (analytic derivatives, attitude/gyro agreement), the IMU
// model reproduces gravity and noise properties, the RFID channel encodes
// the radial trajectory in its phase, and environments behave as designed.

#include <gtest/gtest.h>

#include <cmath>
#include <complex>

#include "dsp/phase_unwrap.hpp"
#include "numeric/stats.hpp"
#include "sim/camera.hpp"
#include "sim/gesture.hpp"
#include "sim/imu_sensor.hpp"
#include "sim/rfid_channel.hpp"
#include "sim/scenario.hpp"

namespace wavekey::sim {
namespace {

GestureTrajectory make_gesture(std::uint64_t seed, GestureParams params = {}) {
  Rng rng(seed);
  const VolunteerStyle style = VolunteerStyle::sample(rng);
  return GestureTrajectory(rng, style, params);
}

TEST(SinusoidSumTest, DerivativesMatchFiniteDifferences) {
  Rng rng(1);
  const SinusoidSum s = SinusoidSum::random(rng, 6, 0.5, 4.0, 0.1);
  const double eps = 1e-6;
  for (double t = 0.3; t < 3.0; t += 0.37) {
    const double d1_num = (s.value(t + eps) - s.value(t - eps)) / (2 * eps);
    const double d2_num = (s.d1(t + eps) - s.d1(t - eps)) / (2 * eps);
    EXPECT_NEAR(s.d1(t), d1_num, 1e-5);
    EXPECT_NEAR(s.d2(t), d2_num, 1e-4);
  }
}

TEST(SinusoidSumTest, RmsMatchesRequest) {
  Rng rng(2);
  const SinusoidSum s = SinusoidSum::random(rng, 8, 0.5, 4.0, 0.1);
  double sum2 = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double v = s.value(i * 0.01);
    sum2 += v * v;
  }
  EXPECT_NEAR(std::sqrt(sum2 / n), 0.1, 0.03);
}

TEST(GestureTest, StillDuringPause) {
  const GestureTrajectory g = make_gesture(3);
  for (double t = 0.0; t < g.motion_start(); t += 0.05) {
    EXPECT_EQ(g.position(t), Vec3());
    EXPECT_EQ(g.velocity(t), Vec3());
    EXPECT_EQ(g.acceleration(t), Vec3());
    EXPECT_EQ(g.angular_rate_body(t), Vec3());
  }
}

TEST(GestureTest, MovesAfterPause) {
  const GestureTrajectory g = make_gesture(4);
  double max_speed = 0.0, max_disp = 0.0;
  for (double t = g.motion_start(); t < g.total_duration(); t += 0.01) {
    max_speed = std::max(max_speed, g.velocity(t).norm());
    max_disp = std::max(max_disp, g.position(t).norm());
  }
  EXPECT_GT(max_speed, 0.2);   // human-scale waving
  EXPECT_LT(max_speed, 10.0);
  EXPECT_GT(max_disp, 0.03);
  EXPECT_LT(max_disp, 1.5);
}

TEST(GestureTest, VelocityIsDerivativeOfPosition) {
  const GestureTrajectory g = make_gesture(5);
  const double eps = 1e-6;
  for (double t = 1.5; t < 5.0; t += 0.29) {
    const Vec3 v_num = (g.position(t + eps) - g.position(t - eps)) / (2 * eps);
    const Vec3 a_num = (g.velocity(t + eps) - g.velocity(t - eps)) / (2 * eps);
    EXPECT_NEAR((g.velocity(t) - v_num).norm(), 0.0, 1e-4);
    EXPECT_NEAR((g.acceleration(t) - a_num).norm(), 0.0, 1e-3);
  }
}

TEST(GestureTest, AttitudeConsistentWithAngularRate) {
  // q(t + dt) should match integrating omega over dt from q(t).
  const GestureTrajectory g = make_gesture(6);
  for (double t = 1.2; t < 4.0; t += 0.41) {
    const double dt = 1e-3;
    const Quaternion q_pred = g.orientation(t).integrated(g.angular_rate_body(t), dt);
    const Quaternion q_true = g.orientation(t + dt);
    const double dot = q_pred.w * q_true.w + q_pred.x * q_true.x + q_pred.y * q_true.y +
                       q_pred.z * q_true.z;
    EXPECT_NEAR(std::abs(dot), 1.0, 1e-6) << "t=" << t;
  }
}

TEST(GestureTest, DominantDirectionInsideCone) {
  for (std::uint64_t seed = 10; seed < 40; ++seed) {
    Rng rng(seed);
    VolunteerStyle style = VolunteerStyle::sample(rng);
    style.cone_half_angle = 0.5;
    GestureParams params;
    params.facing = Vec3{0.0, 1.0, 0.0};
    const GestureTrajectory g(rng, style, params);
    const double cosang = g.dominant_direction().dot(params.facing);
    EXPECT_GE(cosang, std::cos(0.5) - 1e-9);
  }
}

TEST(GestureTest, DistinctSeedsGiveDistinctGestures) {
  const GestureTrajectory a = make_gesture(20), b = make_gesture(21);
  double diff = 0.0;
  for (double t = 1.0; t < 4.0; t += 0.05) diff += (a.position(t) - b.position(t)).norm();
  EXPECT_GT(diff, 0.5);
}

TEST(ImuSensorTest, StationaryAccelReadsGravityMagnitude) {
  Rng rng(30);
  const auto profiles = MobileDeviceProfile::standard_devices();
  ImuSensor sensor(profiles[0], rng);
  const GestureTrajectory g = make_gesture(31);
  const ImuRecord rec = sensor.record(g, 0.0, g.motion_start(), rng);
  ASSERT_GT(rec.samples.size(), 50u);
  std::vector<double> mags;
  for (const auto& s : rec.samples) mags.push_back(s.accel.norm());
  EXPECT_NEAR(mean(mags), 9.81, 0.2);
}

TEST(ImuSensorTest, SampleRateHonored) {
  Rng rng(32);
  const auto profiles = MobileDeviceProfile::standard_devices();
  for (const auto& p : profiles) {
    ImuSensor sensor(p, rng);
    const GestureTrajectory g = make_gesture(33);
    const ImuRecord rec = sensor.record(g, 0.0, 2.0, rng);
    EXPECT_NEAR(static_cast<double>(rec.samples.size()), 2.0 * p.sample_rate_hz, 2.0)
        << p.name;
  }
}

TEST(ImuSensorTest, GyroTracksTrueRate) {
  Rng rng(34);
  MobileDeviceProfile quiet = MobileDeviceProfile::standard_devices()[0];
  quiet.gyro_noise = 1e-5;
  quiet.gyro_bias = 1e-6;
  quiet.misalignment = 1e-6;
  ImuSensor sensor(quiet, rng);
  const GestureTrajectory g = make_gesture(35);
  const ImuRecord rec = sensor.record(g, 1.5, 3.0, rng);
  for (std::size_t i = 0; i < rec.samples.size(); i += 17) {
    const auto& s = rec.samples[i];
    // Tolerance dominated by the timestamp jitter the sensor model applies
    // (the reading is taken at a jittered instant, stamped with nominal t).
    EXPECT_NEAR((s.gyro - g.angular_rate_body(s.t)).norm(), 0.0, 8e-3);
  }
}

TEST(ImuSensorTest, StandardDevicesAreDistinct) {
  const auto profiles = MobileDeviceProfile::standard_devices();
  ASSERT_EQ(profiles.size(), 4u);
  EXPECT_EQ(profiles[0].name, "pixel8");
  EXPECT_EQ(profiles[3].name, "galaxy_watch");
  EXPECT_GT(profiles[3].accel_noise, profiles[0].accel_noise);
}

TEST(RfidChannelTest, PhaseTracksRadialDistance) {
  // With no reflectors and no noise, the unwrapped reported phase must equal
  // 4*pi*d(t)/lambda up to a constant.
  Rng rng(40);
  EnvironmentModel env;  // empty reflector list
  SessionGeometry geom;
  geom.distance_m = 5.0;
  ReaderConfig cfg;
  cfg.noise_sigma = 0.0;
  cfg.phase_quant_bits = 20;  // effectively unquantized
  const TagProfile tag = TagProfile::standard_tags()[0];
  RfidChannel channel(tag, env, geom, rng, cfg);

  const GestureTrajectory g = make_gesture(41);
  const RfidRecord rec = channel.record(g, 1.0, 3.0, rng);

  std::vector<double> reported(rec.samples.size()), expected(rec.samples.size());
  for (std::size_t i = 0; i < rec.samples.size(); ++i) {
    reported[i] = rec.samples[i].phase;
    const Vec3 tag_pos = geom.user_position() + geom.hand_offset + g.position(rec.samples[i].t);
    const double d = (tag_pos - geom.antenna_position()).norm();
    expected[i] = -4.0 * M_PI * d / channel.wavelength();  // sign: phase delay
  }
  const auto unwrapped = dsp::unwrap_phase(reported);
  // Correlation with the expected radial phase must be essentially perfect.
  EXPECT_GT(std::abs(pearson(unwrapped, expected)), 0.9999);
}

TEST(RfidChannelTest, MagnitudeFallsWithDistance) {
  Rng rng(42);
  const TagProfile tag = TagProfile::standard_tags()[0];
  double prev_mag = 1e9;
  for (double d : {1.0, 3.0, 5.0, 9.0}) {
    Rng env_rng(43);
    EnvironmentModel env;  // free space
    SessionGeometry geom;
    geom.distance_m = d;
    ReaderConfig cfg;
    cfg.noise_sigma = 0.0;
    RfidChannel channel(tag, env, geom, env_rng, cfg);
    const GestureTrajectory g = make_gesture(44);
    const std::complex<double> h = channel.channel_at(g, 0.1);
    EXPECT_LT(std::abs(h), prev_mag) << d;
    prev_mag = std::abs(h);
  }
}

TEST(RfidChannelTest, AzimuthReducesGain) {
  Rng rng(45);
  const TagProfile tag = TagProfile::standard_tags()[0];
  EnvironmentModel env;
  ReaderConfig cfg;
  cfg.noise_sigma = 0.0;
  const GestureTrajectory g = make_gesture(46);

  SessionGeometry on_axis;
  on_axis.azimuth_rad = 0.0;
  Rng r1(47);
  const double mag0 = std::abs(RfidChannel(tag, env, on_axis, r1, cfg).channel_at(g, 0.1));
  SessionGeometry off_axis;
  off_axis.azimuth_rad = 60.0 * M_PI / 180.0;
  Rng r2(47);
  const double mag60 = std::abs(RfidChannel(tag, env, off_axis, r2, cfg).channel_at(g, 0.1));
  EXPECT_LT(mag60, mag0);
  EXPECT_GT(mag60, 0.01 * mag0);  // still readable, as in the paper
}

TEST(RfidChannelTest, DynamicEnvironmentPerturbsIdleChannel) {
  // With the tag at rest, a static environment gives a constant channel
  // while walkers make it fluctuate.
  const TagProfile tag = TagProfile::standard_tags()[0];
  SessionGeometry geom;
  const GestureTrajectory g = make_gesture(48);  // pause: tag still until 0.7 s

  Rng rng_s(49);
  EnvironmentModel env_static = EnvironmentModel::make(1, false, rng_s);
  RfidChannel ch_static(tag, env_static, geom, rng_s);
  Rng rng_d(49);
  EnvironmentModel env_dynamic = EnvironmentModel::make(1, true, rng_d);
  RfidChannel ch_dynamic(tag, env_dynamic, geom, rng_d);

  std::vector<double> static_phase, dynamic_phase;
  for (double t = 0.0; t < 0.6; t += 0.005) {
    static_phase.push_back(std::arg(ch_static.channel_at(g, t)));
    dynamic_phase.push_back(std::arg(ch_dynamic.channel_at(g, t)));
  }
  EXPECT_LT(variance(static_phase), 1e-12);
  EXPECT_GT(variance(dynamic_phase), 1e-6);
}

TEST(RfidChannelTest, EnvironmentFactoryValidatesId) {
  Rng rng(50);
  EXPECT_THROW(EnvironmentModel::make(0, false, rng), std::invalid_argument);
  EXPECT_THROW(EnvironmentModel::make(5, false, rng), std::invalid_argument);
  for (int id = 1; id <= 4; ++id) {
    const EnvironmentModel env = EnvironmentModel::make(id, true, rng);
    EXPECT_GE(env.reflectors.size(), 5u);  // static set + 5 walkers
  }
}

TEST(RfidChannelTest, TagProfilesCoverPaperModels) {
  const auto tags = TagProfile::standard_tags();
  ASSERT_EQ(tags.size(), 6u);
  EXPECT_EQ(tags[0].name, "alien_9640_a");
  EXPECT_EQ(tags[5].name, "dogbone_b");
}

TEST(CameraTest, RemoteTracksPositionClosely) {
  Rng rng(60);
  const GestureTrajectory g = make_gesture(61);
  CameraObserver cam(CameraConfig::remote(), Vec3{1, 0, 0});
  const CameraTrack track = cam.observe(g, 1.0, 3.0, rng);
  ASSERT_NEAR(static_cast<double>(track.estimates.size()), 520.0, 2.0);
  double err = 0.0;
  for (const auto& e : track.estimates) err += (e.position - g.position(e.t)).norm();
  err /= static_cast<double>(track.estimates.size());
  EXPECT_LT(err, 0.05);
  EXPECT_GT(err, 0.005);  // but not perfect
  EXPECT_GT(track.processing_latency_s, 0.3);
}

TEST(CameraTest, InSituLosesDepthAxis) {
  Rng rng(62);
  const GestureTrajectory g = make_gesture(63);
  const Vec3 view{1, 0, 0};
  CameraObserver cam(CameraConfig::in_situ(), view);
  const CameraTrack track = cam.observe(g, 1.0, 3.0, rng);
  // The depth (x) component must be constant: no motion is measured there.
  std::vector<double> depth;
  for (const auto& e : track.estimates) depth.push_back(e.position.dot(view));
  EXPECT_LT(stddev(depth), 1e-12);
}

TEST(ScenarioTest, ProducesAlignedRecordings) {
  ScenarioConfig cfg;
  cfg.gesture.active_s = 4.0;
  ScenarioSimulator simulator(cfg, 100);
  const SessionRecording rec = simulator.run();
  EXPECT_FALSE(rec.imu.samples.empty());
  EXPECT_FALSE(rec.rfid.samples.empty());
  EXPECT_EQ(rec.imu.device_name, "galaxy_watch");
  EXPECT_EQ(rec.rfid.tag_name, "alien_9640_a");
  // Both recordings cover the full session on the same clock.
  EXPECT_NEAR(rec.imu.samples.back().t, rec.trajectory.total_duration(), 0.1);
  EXPECT_NEAR(rec.rfid.samples.back().t, rec.trajectory.total_duration(), 0.1);
}

TEST(ScenarioTest, DeterministicForFixedSeed) {
  ScenarioConfig cfg;
  cfg.gesture.active_s = 3.0;
  ScenarioSimulator a(cfg, 7), b(cfg, 7), c(cfg, 8);
  const SessionRecording ra = a.run(), rb = b.run(), rc = c.run();
  ASSERT_EQ(ra.rfid.samples.size(), rb.rfid.samples.size());
  for (std::size_t i = 0; i < ra.rfid.samples.size(); i += 37)
    EXPECT_DOUBLE_EQ(ra.rfid.samples[i].phase, rb.rfid.samples[i].phase);
  bool any_diff = false;
  for (std::size_t i = 0; i < std::min(ra.rfid.samples.size(), rc.rfid.samples.size()); ++i)
    if (ra.rfid.samples[i].phase != rc.rfid.samples[i].phase) any_diff = true;
  EXPECT_TRUE(any_diff);
}

}  // namespace
}  // namespace wavekey::sim
