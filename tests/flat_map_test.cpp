// runtime::FlatMap tests: open-addressing semantics, intrusive LRU order,
// tombstone/rehash churn, a 100k-op differential against a
// std::unordered_map + std::list reference model, and a scan-tier sweep
// asserting the map's behavior is bit-identical under scalar, SSE2 and
// AVX2 probe kernels. The CMake entry flat_map_test_forced_scalar re-runs
// the whole binary with WAVEKEY_SIMD=scalar so the differential model also
// executes against the portable kernels in CI.

#include "runtime/flat_map.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <list>
#include <random>
#include <unordered_map>
#include <vector>

namespace wavekey::runtime {
namespace {

using Map = FlatMap<std::uint64_t>;

TEST(FlatMapTest, InsertFindEraseBasics) {
  Map map;
  EXPECT_EQ(map.size(), 0u);
  EXPECT_EQ(map.find(42), nullptr);

  auto [idx, inserted] = map.find_or_insert(42);
  EXPECT_TRUE(inserted);
  map.at(idx) = 1000;
  EXPECT_EQ(map.size(), 1u);
  EXPECT_EQ(map.key_at(idx), 42u);

  auto [idx2, inserted2] = map.find_or_insert(42);
  EXPECT_FALSE(inserted2);
  EXPECT_EQ(idx2, idx);
  EXPECT_EQ(map.at(idx2), 1000u);

  EXPECT_TRUE(map.erase(42));
  EXPECT_FALSE(map.erase(42));
  EXPECT_EQ(map.size(), 0u);
  EXPECT_EQ(map.find(42), nullptr);
}

TEST(FlatMapTest, GrowsPastInitialCapacityAndKeepsAllKeys) {
  Map map;
  constexpr std::uint64_t kN = 10000;
  for (std::uint64_t k = 0; k < kN; ++k) {
    auto [idx, inserted] = map.find_or_insert(k * 7919);
    ASSERT_TRUE(inserted);
    map.at(idx) = k;
  }
  ASSERT_EQ(map.size(), kN);
  for (std::uint64_t k = 0; k < kN; ++k) {
    const std::uint64_t* v = map.find(k * 7919);
    ASSERT_NE(v, nullptr) << "key " << k * 7919;
    EXPECT_EQ(*v, k);
  }
  EXPECT_EQ(map.find(kN * 7919), nullptr);
}

TEST(FlatMapTest, PoolIndicesSurviveRehash) {
  Map map;
  auto [first, ins] = map.find_or_insert(1);
  ASSERT_TRUE(ins);
  map.at(first) = 111;
  // Force several growth rehashes.
  for (std::uint64_t k = 2; k < 5000; ++k) map.find_or_insert(k);
  // The index captured before the rehashes still addresses the same entry.
  EXPECT_EQ(map.key_at(first), 1u);
  EXPECT_EQ(map.at(first), 111u);
  EXPECT_EQ(map.find_index(1), first);
}

TEST(FlatMapTest, LruOrderTracksInsertTouchAndEvict) {
  Map map;
  for (std::uint64_t k = 1; k <= 4; ++k) map.find_or_insert(k);
  // Oldest is the first inserted.
  EXPECT_EQ(map.key_at(map.lru_tail()), 1u);

  map.touch(map.find_index(1));  // 1 becomes most recent; 2 is now oldest
  EXPECT_EQ(map.key_at(map.lru_tail()), 2u);

  map.erase_index(map.lru_tail());  // evict 2; 3 is oldest
  EXPECT_EQ(map.key_at(map.lru_tail()), 3u);

  std::vector<std::uint64_t> order;
  map.for_each_lru_oldest_first([&](std::uint64_t k, std::uint64_t) { order.push_back(k); });
  EXPECT_EQ(order, (std::vector<std::uint64_t>{3, 4, 1}));
}

TEST(FlatMapTest, TombstoneChurnAtFixedSizeStaysCorrect) {
  // Insert/erase waves at a fixed live size: tombstones accumulate until the
  // same-size rehash purges them; correctness must be unaffected.
  Map map;
  map.reserve(256);
  const std::size_t cap_before = map.capacity();
  std::uint64_t next = 0;
  std::list<std::uint64_t> live;
  for (std::uint64_t k = 0; k < 200; ++k) live.push_back(next), map.find_or_insert(next++);
  for (int wave = 0; wave < 200; ++wave) {
    for (int i = 0; i < 50; ++i) {
      ASSERT_TRUE(map.erase(live.front()));
      live.pop_front();
    }
    for (int i = 0; i < 50; ++i) {
      live.push_back(next);
      auto [idx, ins] = map.find_or_insert(next++);
      ASSERT_TRUE(ins);
    }
    ASSERT_EQ(map.size(), live.size());
  }
  for (const std::uint64_t k : live) EXPECT_NE(map.find(k), nullptr);
  // Fixed live size: churn must never force growth beyond one step.
  EXPECT_LE(map.capacity(), cap_before * 2);
}

TEST(FlatMapTest, ClearResetsEverything) {
  Map map;
  for (std::uint64_t k = 0; k < 100; ++k) map.find_or_insert(k);
  map.clear();
  EXPECT_EQ(map.size(), 0u);
  EXPECT_EQ(map.lru_tail(), Map::kNil);
  for (std::uint64_t k = 0; k < 100; ++k) EXPECT_EQ(map.find(k), nullptr);
  auto [idx, ins] = map.find_or_insert(7);
  EXPECT_TRUE(ins);
  EXPECT_EQ(map.key_at(idx), 7u);
}

// ---- differential against unordered_map + list --------------------------

/// Reference model with the exact same API semantics: value map + explicit
/// LRU list (front = most recent), mirroring the contract FlatMap promises.
struct RefModel {
  std::unordered_map<std::uint64_t, std::uint64_t> values;
  std::list<std::uint64_t> lru;  // front = most recent

  bool insert(std::uint64_t k, std::uint64_t v) {
    auto [it, inserted] = values.try_emplace(k, v);
    if (inserted) lru.push_front(k);
    return inserted;
  }
  bool erase(std::uint64_t k) {
    if (values.erase(k) == 0) return false;
    lru.remove(k);
    return true;
  }
  void touch(std::uint64_t k) {
    lru.remove(k);
    lru.push_front(k);
  }
  std::uint64_t evict_oldest() {
    const std::uint64_t k = lru.back();
    lru.pop_back();
    values.erase(k);
    return k;
  }
};

TEST(FlatMapTest, DifferentialAgainstUnorderedMapReference100k) {
  Map map;
  RefModel ref;
  std::mt19937_64 rng(0xF1A7F1A7u);
  constexpr int kOps = 100000;
  constexpr std::uint64_t kKeySpace = 4096;  // heavy collisions on purpose

  for (int op = 0; op < kOps; ++op) {
    const std::uint64_t k = rng() % kKeySpace;
    switch (rng() % 5) {
      case 0: {  // insert-or-assign
        const std::uint64_t v = rng();
        auto [idx, inserted] = map.find_or_insert(k);
        map.at(idx) = v;
        const bool ref_inserted = ref.insert(k, v);
        if (!ref_inserted) ref.values[k] = v;
        ASSERT_EQ(inserted, ref_inserted) << "op " << op;
        break;
      }
      case 1: {  // lookup
        const std::uint64_t* v = map.find(k);
        auto it = ref.values.find(k);
        ASSERT_EQ(v != nullptr, it != ref.values.end()) << "op " << op;
        if (v != nullptr) ASSERT_EQ(*v, it->second) << "op " << op;
        break;
      }
      case 2: {  // erase
        ASSERT_EQ(map.erase(k), ref.erase(k)) << "op " << op;
        break;
      }
      case 3: {  // touch if present
        const std::uint32_t idx = map.find_index(k);
        if (idx != Map::kNil) {
          map.touch(idx);
          ref.touch(k);
        } else {
          ASSERT_EQ(ref.values.count(k), 0u) << "op " << op;
        }
        break;
      }
      case 4: {  // evict oldest if non-empty
        if (!map.empty()) {
          const std::uint32_t victim = map.lru_tail();
          const std::uint64_t vk = map.key_at(victim);
          map.erase_index(victim);
          ASSERT_EQ(vk, ref.evict_oldest()) << "op " << op;
        } else {
          ASSERT_TRUE(ref.values.empty());
        }
        break;
      }
    }
    ASSERT_EQ(map.size(), ref.values.size()) << "op " << op;
  }

  // Full-state audit: contents and exact LRU order.
  std::vector<std::uint64_t> map_order;
  map.for_each_lru_oldest_first(
      [&](std::uint64_t k, std::uint64_t v) {
        map_order.push_back(k);
        auto it = ref.values.find(k);
        ASSERT_NE(it, ref.values.end());
        EXPECT_EQ(v, it->second);
      });
  std::vector<std::uint64_t> ref_order(ref.lru.rbegin(), ref.lru.rend());
  EXPECT_EQ(map_order, ref_order);
}

// ---- tier equivalence ----------------------------------------------------

/// Replays one seeded op sequence on maps driven by explicit scan kernels
/// and asserts identical outcome sequences and final LRU order. On machines
/// without AVX2 the avx2 ops degrade to whatever scan_ops_for clamps to,
/// which trivially matches — the assertion is vacuous there, not wrong.
std::vector<std::uint64_t> run_trace(const flat_map_detail::ScanOps& ops,
                                     std::vector<std::uint64_t>* outcomes) {
  FlatMap<std::uint64_t> map(ops);
  std::mt19937_64 rng(0x5EED5EEDu);
  for (int op = 0; op < 30000; ++op) {
    const std::uint64_t k = rng() % 1024;
    switch (rng() % 4) {
      case 0: {
        auto [idx, ins] = map.find_or_insert(k);
        map.at(idx) = rng();
        outcomes->push_back(ins ? 1 : 0);
        break;
      }
      case 1: {
        const std::uint64_t* v = map.find(k);
        outcomes->push_back(v == nullptr ? ~0ull : *v);
        break;
      }
      case 2:
        outcomes->push_back(map.erase(k) ? 1 : 0);
        break;
      case 3: {
        const std::uint32_t idx = map.find_index(k);
        if (idx != FlatMap<std::uint64_t>::kNil) map.touch(idx);
        outcomes->push_back(map.empty() ? ~0ull : map.key_at(map.lru_tail()));
        break;
      }
    }
  }
  std::vector<std::uint64_t> order;
  map.for_each_lru_oldest_first([&](std::uint64_t key, std::uint64_t) { order.push_back(key); });
  return order;
}

TEST(FlatMapScanTiers, IdenticalBehaviorAcrossScalarSse2Avx2) {
  const auto& scalar = flat_map_detail::scan_ops_for(cpu::SimdTier::kScalar);
  const auto& sse2 = flat_map_detail::scan_ops_for(cpu::SimdTier::kSse2);
  const auto& avx2 = flat_map_detail::scan_ops_for(cpu::SimdTier::kAvx2);

  std::vector<std::uint64_t> out_scalar, out_sse2, out_avx2;
  const auto order_scalar = run_trace(scalar, &out_scalar);
  const auto order_sse2 = run_trace(sse2, &out_sse2);
  const auto order_avx2 = run_trace(avx2, &out_avx2);

  EXPECT_EQ(out_scalar, out_sse2);
  EXPECT_EQ(out_scalar, out_avx2);
  EXPECT_EQ(order_scalar, order_sse2);
  EXPECT_EQ(order_scalar, order_avx2);
}

TEST(FlatMapScanTiers, KernelMasksAgree) {
  // Direct kernel cross-check on a crafted control window: every tag value,
  // empties and tombstones in the same 32-byte view.
  alignas(32) std::uint8_t ctrl[32];
  std::mt19937_64 rng(123);
  for (auto& c : ctrl) {
    switch (rng() % 3) {
      case 0: c = flat_map_detail::kCtrlEmpty; break;
      case 1: c = flat_map_detail::kCtrlDeleted; break;
      default: c = static_cast<std::uint8_t>(rng() % 128); break;
    }
  }
  const auto& scalar = flat_map_detail::scan_ops_for(cpu::SimdTier::kScalar);
  const auto& sse2 = flat_map_detail::scan_ops_for(cpu::SimdTier::kSse2);
  for (int tag = 0; tag < 128; ++tag) {
    const auto t = static_cast<std::uint8_t>(tag);
    EXPECT_EQ(scalar.match_tag(ctrl, t), sse2.match_tag(ctrl, t));
    EXPECT_EQ(scalar.match_tag(ctrl + 16, t), sse2.match_tag(ctrl + 16, t));
  }
  EXPECT_EQ(scalar.match_empty(ctrl), sse2.match_empty(ctrl));
  EXPECT_EQ(scalar.match_available(ctrl), sse2.match_available(ctrl));

  if (const auto* avx2 = flat_map_detail::avx2_scan_ops();
      avx2 != nullptr && cpu::detected_tier() >= cpu::SimdTier::kAvx2) {
    // The 32-wide kernel's mask must equal the two 16-wide masks glued.
    for (int tag = 0; tag < 128; ++tag) {
      const auto t = static_cast<std::uint8_t>(tag);
      const std::uint32_t lo = scalar.match_tag(ctrl, t);
      const std::uint32_t hi = scalar.match_tag(ctrl + 16, t);
      EXPECT_EQ(avx2->match_tag(ctrl, t), lo | (hi << 16));
    }
    EXPECT_EQ(avx2->match_empty(ctrl),
              scalar.match_empty(ctrl) | (scalar.match_empty(ctrl + 16) << 16));
    EXPECT_EQ(avx2->match_available(ctrl),
              scalar.match_available(ctrl) | (scalar.match_available(ctrl + 16) << 16));
  }
}

}  // namespace
}  // namespace wavekey::runtime
