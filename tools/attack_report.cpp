// Developer utility: measures the attacker-vs-benign seed mismatch
// separation, which determines whether an eta exists that simultaneously
// gives high benign success and low attack success (the crux of Fig. 7).

#include <cstdio>
#include <cstdlib>
#include <vector>

#include "attacks/attack_eval.hpp"
#include "core/dataset.hpp"
#include "core/pairing.hpp"
#include "core/seed_quantizer.hpp"
#include "numeric/stats.hpp"

using namespace wavekey;

int main(int argc, char** argv) {
  const char* cache = std::getenv("WK_MODEL_CACHE");
  if (!cache) {
    std::fprintf(stderr, "set WK_MODEL_CACHE to a trained model file\n");
    return 1;
  }
  core::EncoderPair encoders = core::EncoderPair::load_file(cache);
  core::WaveKeyConfig wk;
  int n = argc > 1 ? std::atoi(argv[1]) : 60;

  // Calibrate the quantizer on a small fresh dataset (same generator).
  core::DatasetConfig cal_dc;
  cal_dc.gestures_per_pair = 2;
  cal_dc.windows_per_gesture = 4;
  const core::WaveKeyDataset cal_ds = core::WaveKeyDataset::generate(cal_dc, wk);
  const core::SeedQuantizer quantizer = core::SeedQuantizer::calibrated(encoders, cal_ds, wk);

  // Cohort styles = the trained ones.
  core::DatasetConfig dc;
  std::vector<sim::VolunteerStyle> cohort;
  {
    Rng style_rng(dc.seed);
    for (std::size_t v = 0; v < dc.volunteers; ++v)
      cohort.push_back(sim::VolunteerStyle::sample(style_rng));
  }

  Rng rng(991);
  std::vector<double> benign, mimic_avg, mimic_skilled, cam_remote, cam_insitu;
  for (int i = 0; i < n; ++i) {
    sim::ScenarioConfig sc;
    sc.volunteer = cohort[static_cast<std::size_t>(i) % cohort.size()];
    sc.gesture.active_s = 4.0;
    const std::uint64_t seed = rng.next();

    if (const auto b = core::simulate_seed_pair(encoders, quantizer, wk, sc, seed))
      benign.push_back(b->mismatch);
    if (const auto m = attacks::run_mimic_attack(encoders, quantizer, wk, sc, attacks::MimicSkill::average(),
                                                 seed))
      mimic_avg.push_back(m->mismatch);
    if (const auto m = attacks::run_mimic_attack(encoders, quantizer, wk, sc, attacks::MimicSkill::skilled(),
                                                 seed))
      mimic_skilled.push_back(m->mismatch);
    if (const auto c = attacks::run_camera_spoof(encoders, quantizer, wk, sc, sim::CameraConfig::remote(),
                                                 seed))
      cam_remote.push_back(c->mismatch);
    if (const auto c = attacks::run_camera_spoof(encoders, quantizer, wk, sc, sim::CameraConfig::in_situ(),
                                                 seed))
      cam_insitu.push_back(c->mismatch);
  }

  auto report = [](const char* name, const std::vector<double>& xs) {
    if (xs.empty()) {
      std::printf("%-14s: no samples\n", name);
      return;
    }
    std::vector<double> v = xs;
    auto frac_below = [&](double thr) {
      std::size_t c = 0;
      for (double x : v)
        if (x <= thr) ++c;
      return static_cast<double>(c) / static_cast<double>(v.size());
    };
    std::printf(
        "%-14s: n=%3zu mean=%.4f p50=%.4f p90=%.4f p99=%.4f | <=.05:%.3f <=.10:%.3f <=.15:%.3f "
        "<=.21:%.3f\n",
        name, xs.size(), mean(v), percentile(v, 50), percentile(v, 90), percentile(v, 99),
        frac_below(0.05), frac_below(0.10), frac_below(0.15), frac_below(0.21));
  };
  // Unrelated-gesture baseline: seeds of two independent sessions.
  {
    std::vector<double> unrelated;
    Rng urng(555);
    for (int i = 0; i + 1 < n; i += 2) {
      sim::ScenarioConfig sc;
      sc.volunteer = cohort[static_cast<std::size_t>(i) % cohort.size()];
      sc.gesture.active_s = 4.0;
      const auto a = core::simulate_seed_pair(encoders, quantizer, wk, sc, urng.next());
      const auto b = core::simulate_seed_pair(encoders, quantizer, wk, sc, urng.next());
      if (a && b) unrelated.push_back(a->mobile_seed.mismatch_ratio(b->mobile_seed));
    }
    report("unrelated", unrelated);
  }
  report("benign", benign);
  report("mimic_avg", mimic_avg);
  report("mimic_skilled", mimic_skilled);
  report("camera_remote", cam_remote);
  report("camera_insitu", cam_insitu);
  return 0;
}
