#!/usr/bin/env bash
# CI driver: builds and runs the tier-1 ctest suite in three configurations —
# a plain RelWithDebInfo build (plus the bench_throughput JSON/tau,
# bench_vault authorize-speedup/replay-ledger, and bench_grants
# offline-window ledger gates), a
# WAVEKEY_SANITIZE=ON (ASan + UBSan) build, and a WAVEKEY_TSAN=ON
# (ThreadSanitizer) build scoped to the concurrency suites — so every merge
# exercises correctness, memory/UB cleanliness, and data-race freedom. A
# fourth Release (-O3) leg runs bench_micro and gates the hot-path kernels
# against the committed BENCH_micro.json baseline via tools/bench_compare.py
# (anchor-normalized, so it tolerates uniformly slower machines but trips on
# relative kernel regressions > 15%), then runs `bench_micro --simd-check`
# (vectorized kernels >= 2x over forced scalar on AVX2 hosts). The plain leg
# additionally re-runs the differential kernel suites with
# WAVEKEY_SIMD=scalar to pin dispatch to the scalar tier.
#
# Usage: tools/ci.sh [--plain-only|--sanitize-only|--tsan-only|--perf-only]
# Environment: WAVEKEY_CI_JOBS (parallelism, default nproc),
#              WAVEKEY_BENCH_SCALE is consumed only by the throughput and
#              vault gates (fixed at 0.25 there); tests do not read it.

set -euo pipefail

cd "$(dirname "$0")/.."
JOBS="${WAVEKEY_CI_JOBS:-$(nproc)}"
MODE="${1:-all}"

run_suite() {
  local name="$1" dir="$2"
  shift 2
  echo "=== [$name] configure ==="
  cmake -B "$dir" -S . "$@"
  echo "=== [$name] build ==="
  cmake --build "$dir" -j "$JOBS"
  echo "=== [$name] ctest ==="
  ctest --test-dir "$dir" --output-on-failure -j "$JOBS"
}

forced_scalar_gate() {
  # Re-runs the differential kernel suites with SIMD dispatch pinned to the
  # scalar tier (WAVEKEY_SIMD=scalar): proves the scalar twins are complete
  # oracles on their own and that the override is honored end to end. The
  # CpuDispatch.ForcedScalarPinsTier test turns from a skip into a hard
  # assertion under this environment.
  echo "=== [plain] forced-scalar ctest (WAVEKEY_SIMD=scalar) ==="
  WAVEKEY_SIMD=scalar ctest --test-dir build-ci --output-on-failure -j "$JOBS" \
    -R 'KernelEquivalence|TensorArena|CpuDispatch|Gf256|ChaCha|ReedSolomon|FuzzyCommitment|GemmSimd|simd_test'
}

throughput_gate() {
  # The bench itself exits non-zero on any failed session or tau violation;
  # the python pass additionally rejects malformed JSON and re-checks the
  # p99 critical-message latency against the tau budget point by point.
  echo "=== [plain] bench_throughput gate ==="
  WAVEKEY_BENCH_SCALE=0.25 ./build-ci/bench/bench_throughput \
    > build-ci/bench_throughput.json
  python3 - build-ci/bench_throughput.json <<'PYEOF'
import json, sys
with open(sys.argv[1]) as f:
    data = json.load(f)
tau = data["tau_budget_ms"]
points = data["points"]
assert points, "bench_throughput emitted no points"
for p in points:
    assert p["p99_critical_ms"] <= tau, (
        f"p99 critical latency {p['p99_critical_ms']} ms exceeds the "
        f"tau budget {tau} ms at {p['threads']} threads")
assert data["tau_deadline_violations"] == 0, "tau deadline violations detected"
print(f"bench_throughput ok: speedup_4t_over_1t={data['speedup_4t_over_1t']}, "
      f"tau violations=0, {len(points)} points")
PYEOF
}

batch_gate() {
  # Re-derives the batched-encoder claims (DESIGN.md §11) from the JSON that
  # throughput_gate already emitted, independently of the bench's own exit
  # code: the coalescing stage must reach >= 2x the unbatched arm's
  # sessions/sec at 8 threads, the integrated engine+service run must succeed
  # universally with zero tau violations despite the hold-time charge, and
  # sessions must have genuinely coalesced (mean batch > 1), so the speedup
  # cannot come from a silently-degenerate batch-of-1 configuration.
  echo "=== [plain] batched-encoder gate ==="
  python3 - build-ci/bench_throughput.json <<'PYEOF'
import json, sys
with open(sys.argv[1]) as f:
    data = json.load(f)
stage = data["encoder_stage"]
points = stage["points"]
assert points, "encoder_stage emitted no points"
by_threads = {p["threads"]: p for p in points}
assert 8 in by_threads, "encoder_stage missing the 8-thread point"
p8 = by_threads[8]
speedup = p8["batched_sps"] / p8["unbatched_sps"]
assert speedup >= 2.0, (
    f"batched encoder stage speedup {speedup:.2f}x < 2.0x at 8 threads "
    f"(batched {p8['batched_sps']:.0f}/s vs unbatched {p8['unbatched_sps']:.0f}/s)")
assert p8["mean_batch"] > 1.5, (
    f"mean coalesced batch {p8['mean_batch']:.2f} at 8 threads — batching degenerate")
integ = data["batched_integration"]
assert integ["successes"] == integ["sessions"], (
    f"batched integration: {integ['sessions'] - integ['successes']} failed sessions")
assert integ["tau_violations"] == 0, "batched integration: tau violations detected"
assert integ["coalesced"] > 0, "batched integration: no session ever coalesced"
assert integ["p99_critical_ms"] <= data["tau_budget_ms"], (
    f"batched integration p99 critical {integ['p99_critical_ms']} ms exceeds tau")
print(f"batch_gate ok: speedup_batched_8t={speedup:.2f}x, mean_batch={p8['mean_batch']:.2f}, "
      f"integration {integ['successes']}/{integ['sessions']} ok, tau violations=0, "
      f"max_hold={integ['max_hold_ms']:.3f} ms")
PYEOF
}

server_gate() {
  # bench_server exits non-zero on any broken ledger, accepted replay, tau
  # violation, missing shed, or sub-2.5x I/O overlap factor; the python pass
  # re-checks the security-critical invariants from the JSON itself so a
  # silently-wrong exit path cannot mask them, and additionally requires
  # every rejection class to have actually fired (the bench injects each
  # deterministically, so a zero means the check is dead code).
  echo "=== [plain] bench_server gate ==="
  WAVEKEY_BENCH_SCALE=0.25 ./build-ci/bench/bench_server \
    > build-ci/bench_server.json
  python3 - build-ci/bench_server.json <<'PYEOF'
import json, sys
with open(sys.argv[1]) as f:
    data = json.load(f)
points = data["points"]
assert points, "bench_server emitted no points"
for p in points:
    assert p["ledger_ok"], f"outcome ledger mismatch at {p['threads']} threads"
    assert p["accepted_replays"] == 0, f"replay accepted at {p['threads']} threads"
    assert p["shed"] == 0 and p["malformed"] == 0, "unexpected shed/malformed in soak"
    for key in ("replay_rejected", "expired", "revoked", "stale_epoch",
                "bad_mac", "rate_limited"):
        assert p[key] > 0, f"rejection class {key} never fired at {p['threads']} threads"
assert data["accepted_replays"] == 0, "accepted replays detected"
assert data["tau_deadline_violations"] == 0, "tau deadline violations detected"
assert data["shed_burst"]["shed"] >= 1, "overload burst did not shed"
# Coroutine serving overlaps I/O waits at EVERY thread count (they park in
# the timer wheel, not on a worker thread), so grants/sec no longer scales
# with threads: the old 4t/1t speedup gate is structurally obsolete. The
# replacement gate is the per-point I/O overlap factor — granted * io_wait
# / wall — which measures how many waits were genuinely in flight at once.
overlaps = []
for p in points:
    assert "p999_verify_us" in p, f"p99.9 missing at {p['threads']} threads"
    if data["io_wait_ms"] > 0:
        assert p["io_overlap"] >= 2.5, (
            f"I/O overlap factor {p['io_overlap']:.2f} < 2.5 at "
            f"{p['threads']} threads — waits are serializing")
        overlaps.append(p["io_overlap"])
print(f"bench_server ok: io_overlap={[round(o, 1) for o in overlaps]}, "
      f"accepted_replays=0, tau violations=0, {len(points)} points")
PYEOF
}

async_gate() {
  # Re-derives the async serving-core claims (DESIGN.md §12) from the JSON
  # that server_gate and cluster_gate already emitted, independently of the
  # benches' own exit codes: the coroutine burst must genuinely hold >= 10k
  # grants in flight (and suspended) on 4 threads with nothing shed and the
  # exactly-once ledger intact, and the gateway's pooled wire path must have
  # stopped allocating after warm-up (allocations bounded by the lane count
  # while leases track every frame sent). Finally the latency percentiles of
  # the fresh bench_server run are diffed against the committed
  # BENCH_server.json via bench_compare --latency: tail amplification
  # (p99/p99.9 over p50 within the same run) is machine-speed-independent,
  # and the generous 9.0 threshold is a tripwire for order-of-magnitude
  # regressions — a blocking wait reappearing on the verify path, not noise.
  echo "=== [plain] async serving gate ==="
  python3 - build-ci/bench_server.json build-ci/bench_cluster.json <<'PYEOF'
import json, sys
with open(sys.argv[1]) as f:
    server = json.load(f)
with open(sys.argv[2]) as f:
    cluster = json.load(f)
burst = server["async_burst"]
assert burst["threads"] == 4, f"async burst ran on {burst['threads']} threads, not 4"
assert burst["peak_in_flight"] >= 10000, (
    f"peak in-flight {burst['peak_in_flight']} < 10000 — coroutines are not overlapping")
assert burst["peak_suspended"] >= 10000, (
    f"peak suspended {burst['peak_suspended']} < 10000 — waits are not parking")
assert burst["granted"] == burst["submitted"], (
    f"async burst lost grants: {burst['granted']}/{burst['submitted']}")
assert burst["shed"] == 0, f"async burst shed {burst['shed']} requests"
assert burst["p999_verify_us"] > 0, "async burst p99.9 missing"
pw = cluster["pooled_wire"]
assert pw["steady_state_ok"], "pooled wire path allocated at steady state"
assert pw["pool_allocations"] <= pw["lanes"], (
    f"pool allocated {pw['pool_allocations']} buffers for {pw['lanes']} lanes")
assert pw["pool_leases"] >= pw["frames_sent"], (
    f"pool leases {pw['pool_leases']} < frames sent {pw['frames_sent']}")
print(f"async_gate ok: peak_in_flight={burst['peak_in_flight']}, "
      f"peak_suspended={burst['peak_suspended']}, wall={burst['wall_s']}s, "
      f"p999_verify={burst['p999_verify_us']}us, "
      f"pool {pw['pool_allocations']} allocations / {pw['pool_leases']} leases")
PYEOF
  echo "=== [plain] latency percentile diff vs BENCH_server.json ==="
  tools/bench_compare.py --latency --threshold 9.0 \
    BENCH_server.json build-ci/bench_server.json
}

vault_gate() {
  # bench_vault exits non-zero on any ledger mismatch, accepted replay,
  # double grant, or purge shortfall; the python pass re-derives the
  # acceptance claims from the JSON so a broken exit path cannot mask them:
  # >= 2x 4-thread authorize throughput over the mutex+unordered_map
  # baseline at the largest sessions point, zero accepted replays at every
  # point, exact rejection ledgers, complete wheel purges, a bytes/session
  # memory bound on the FlatMap store, and the lock-hold p99 proof that the
  # optimistic path moved the HMAC out of the critical section.
  echo "=== [plain] bench_vault gate ==="
  WAVEKEY_BENCH_SCALE=0.25 ./build-ci/bench/bench_vault \
    > build-ci/bench_vault.json
  python3 - build-ci/bench_vault.json <<'PYEOF'
import json, sys
with open(sys.argv[1]) as f:
    data = json.load(f)
assert data["all_ok"], "bench_vault reported a failed invariant"
points = data["points"]
assert points, "bench_vault emitted no points"
for p in points:
    led = p["ledger"]
    assert led["ledger_ok"], f"rejection ledger mismatch at {p['sessions']} sessions"
    assert led["accepted_replays"] == 0, f"accepted replay at {p['sessions']} sessions"
    assert led["authorize_failures"] == 0, f"authorize failures at {p['sessions']} sessions"
    n = led["probes_per_class"]
    for cls in ("replay_rejected", "bad_mac", "stale_epoch", "unknown", "expired"):
        assert led[cls] == n, (
            f"{cls}={led[cls]} != {n} probes at {p['sessions']} sessions")
    purge = p["purge"]
    assert purge["purged"] == purge["installed"], (
        f"wheel purge reclaimed {purge['purged']}/{purge['installed']} "
        f"at {p['sessions']} sessions")
    assert p["flatmap_bytes_per_session"] <= 512.0, (
        f"FlatMap store {p['flatmap_bytes_per_session']:.0f} B/session > 512 "
        f"at {p['sessions']} sessions")
largest = max(points, key=lambda p: p["sessions"])
t4 = next(t for t in largest["threads"] if t["threads"] == 4)
assert t4["speedup"] >= 2.0, (
    f"4-thread authorize speedup {t4['speedup']:.2f}x < 2.0x at "
    f"{largest['sessions']} sessions ({t4['flatmap_grants_per_sec']:.0f}/s vs "
    f"baseline {t4['baseline_grants_per_sec']:.0f}/s)")
lh = data["lock_hold"]
assert lh["p99_ratio"] >= 1.5, (
    f"lock-hold p99 ratio {lh['p99_ratio']:.2f} < 1.5 — the HMAC does not "
    f"appear to have left the critical section "
    f"(optimistic {lh['optimistic_p99_ns']:.0f} ns vs classic {lh['classic_p99_ns']:.0f} ns)")
print(f"bench_vault ok: speedup_4t={t4['speedup']:.2f}x at {largest['sessions']} sessions, "
      f"accepted_replays=0, lock_hold_p99 {lh['optimistic_p99_ns']:.0f}ns vs "
      f"{lh['classic_p99_ns']:.0f}ns (ratio {lh['p99_ratio']:.2f}), "
      f"{len(points)} points")
PYEOF
}

cluster_gate() {
  # bench_cluster drives gateway fleets against the partitioned vault
  # cluster through a lossy WAN model while injecting a crash (with
  # failover) and a graceful drain mid-traffic, and exits non-zero if any
  # ledger gate fails. The python pass re-derives the security invariants
  # from the emitted JSON — zero accepted replays, zero double-grants,
  # zero unresolved in-flight requests, every rejection class actually
  # fired, each chaos event ran — so a broken exit path cannot mask them.
  echo "=== [plain] bench_cluster gate ==="
  ./build-ci/bench/bench_cluster > build-ci/bench_cluster.json
  python3 - build-ci/bench_cluster.json <<'PYEOF'
import json, sys
with open(sys.argv[1]) as f:
    data = json.load(f)
assert data["accepted_replays"] == 0, "cluster accepted a replay"
assert data["double_grants"] == 0, "cluster double-granted a request"
assert data["unresolved_in_flight"] == 0, "in-flight request never resolved"
assert data["wellformed_success"] >= 0.95, (
    f"well-formed success {data['wellformed_success']} < 0.95")
for flag in ("probe_ledger_ok", "window_ledger_ok", "reopened_ledger_ok",
             "blackhole_ledger_ok", "chaos_typed_ok", "grants_accounted",
             "chaos_ran", "success_ok", "resolved_ok"):
    assert data[flag], f"bench_cluster gate {flag} failed"
phases = data["phases"]
assert phases["probes"]["replay"] > 0, "replay probes never fired"
assert phases["probes"]["bad_mac"] > 0, "bad-MAC probes never fired"
assert phases["probes"]["malformed"] > 0, "malformed probes never fired"
assert phases["crash_window"]["unavailable"] > 0, "crash window saw no kUnavailable"
assert phases["post_failover_replay"]["replay"] > 0, "post-failover replays not rejected"
assert phases["blackhole"]["retry_exhausted"] > 0, "blackhole saw no kRetryExhausted"
cluster = data["cluster"]
assert cluster["crashes"] == 1 and cluster["drains"] == 1 and cluster["failovers"] == 1, \
    "chaos events did not all run"
assert cluster["sessions_migrated"] > 0, "handoff migrated no sessions"
print(f"bench_cluster ok: executed={cluster['executed']}, "
      f"grants={cluster['vault_grants']}, dedup_hits={cluster['dedup_hits']}, "
      f"migrated={cluster['sessions_migrated']}, accepted_replays=0, "
      f"double_grants=0, success={data['wellformed_success']}")
PYEOF
}

grants_gate() {
  # bench_grants soaks the offline-grant subsystem through a full
  # reachable -> partitioned -> healed cycle and exits non-zero on any
  # ledger miss; the python pass re-derives the closed-form ledger from the
  # emitted JSON so a broken exit path cannot mask it: every pre-issued
  # token accepted vault-free during the partition, each rejection class
  # fired with its exact typed count, zero cluster executions while
  # blackholed, zero accepted after revocation propagates on heal, and
  # both audit chains verifying end-to-end with exactly one record per
  # event (the tamper probe must have pinpointed its injected index).
  echo "=== [plain] bench_grants gate ==="
  ./build-ci/bench/bench_grants > build-ci/bench_grants.json
  python3 - build-ci/bench_grants.json <<'PYEOF'
import json, sys
with open(sys.argv[1]) as f:
    data = json.load(f)
for flag in ("reachable_ledger_ok", "crosslink_ok", "partitioned_ledger_ok",
             "vault_free_ok", "sibling_scoping_ok", "revoked_ledger_ok",
             "healed_ledger_ok", "verifier_chain_ok", "tamper_ok",
             "issuer_chain_ok"):
    assert data[flag], f"bench_grants gate {flag} failed"
ph = data["phases"]
reach, part, heal = ph["reachable"], ph["partitioned"], ph["healed"]
for name, p in ph.items():
    assert p["resolved"] == p["submitted"], f"{name}: unresolved submissions"
assert reach["granted"] == reach["submitted"], "reachable phase lost grants"
assert part["granted"] == data["offline_grants"] + data["handoff_grants"], \
    "partitioned phase accepted the wrong number of offline grants"
assert part["offline"] == part["resolved"] - part["retry_exhausted"], \
    "some partitioned resolutions bypassed the offline verifier"
for cls in ("replay", "rollback", "bad_mac", "expired", "wrong_scope",
            "unknown", "malformed", "retry_exhausted"):
    assert part[cls] > 0, f"rejection class {cls} never fired during the partition"
assert heal["granted"] == heal["submitted"], "healed phase lost grants"
audit = data["audit"]
assert audit["pinpointed"] == audit["tampered_index"], \
    "audit fsck did not pinpoint the tampered record"
assert data["revoked_refused"] > 0, "revocation propagation never refused a token"
print(f"bench_grants ok: offline_granted={part['granted']}, "
      f"typed_rejections={part['resolved'] - part['granted']}, "
      f"verifier_records={audit['verifier_records']}, "
      f"issuer_records={audit['issuer_records']}, "
      f"tamper pinpointed at {audit['pinpointed']}")
PYEOF
}

perf_gate() {
  # Release (-O3) leg: measure the gated hot-path benchmarks and compare
  # against the committed baseline. Shared hosts drift through multi-minute
  # slow phases that hit cache-sensitive kernels non-uniformly (so the
  # anchor cannot cancel them); three disciplines keep the gate meaningful
  # anyway: random interleaving spreads each benchmark's repetitions across
  # time windows, bench_compare takes the min over repetitions, and on a
  # failed comparison the measurement is repeated (up to 3 attempts) with
  # attempts min-merged — a genuine code regression can never pass a
  # re-measure, while a noisy host eventually lands a quiet window.
  echo "=== [perf] configure ==="
  cmake -B build-ci-release -S . -DCMAKE_BUILD_TYPE=Release
  echo "=== [perf] build bench_micro ==="
  cmake --build build-ci-release -j "$JOBS" --target bench_micro
  echo "=== [perf] bench_micro vs BENCH_micro.json ==="
  rm -f build-ci-release/bench_micro.json
  local attempt
  for attempt in 1 2 3; do
    ./build-ci-release/bench/bench_micro \
      --benchmark_format=json \
      --benchmark_repetitions=3 \
      --benchmark_min_time=0.05 \
      --benchmark_enable_random_interleaving=true \
      --benchmark_filter='BM_Sha256_1KiB|BM_Fe25519_Pow|BM_Fe25519_GeneratorPow|BM_Fe25519_Square|BM_Fe25519_Inverse|BM_OtInstance|BM_OtSenderEncrypt|BM_ImuEncoderInference|BM_EncoderBatchedForward|BM_Conv1dForward|BM_DenseForward|BM_Gf256AddmulSlice|BM_RsEncode|BM_ChaCha20Block|BM_GemmF32|BM_ClusterFrame|BM_PartitionMapRoute|BM_EventLoopSpawn|BM_BufferPoolLease|BM_FramePooled|BM_FlatMapProbe|BM_VaultAuthorizeHot|BM_KdfDerive|BM_GrantVerifyOffline|BM_AuditAppend' \
      > "build-ci-release/bench_micro.attempt${attempt}.json"
    python3 - build-ci-release/bench_micro.json \
      "build-ci-release/bench_micro.attempt${attempt}.json" <<'PYEOF'
import json, os, sys
dst, src = sys.argv[1], sys.argv[2]
cur = json.load(open(src))
if os.path.exists(dst):
    best = {}
    for doc in (json.load(open(dst)), cur):
        for b in doc["benchmarks"]:
            if b.get("run_type", "iteration") != "iteration":
                continue
            k = b["name"]
            if k not in best or b["real_time"] < best[k]["real_time"]:
                best[k] = b
    cur = {"context": cur["context"],
           "benchmarks": sorted(best.values(), key=lambda b: b["name"])}
json.dump(cur, open(dst, "w"), indent=1)
PYEOF
    if tools/bench_compare.py BENCH_micro.json build-ci-release/bench_micro.json; then
      break
    elif [ "$attempt" = 3 ]; then
      echo "perf gate: regression persists after ${attempt} min-merged attempts" >&2
      exit 1
    else
      echo "perf gate: attempt ${attempt} over threshold; re-measuring (min-merge)" >&2
    fi
  done
  # On AVX2 hosts, assert the vectorized kernels actually pay for their
  # complexity: >= 2x over the forced-scalar tier (no-op elsewhere).
  echo "=== [perf] bench_micro --simd-check ==="
  ./build-ci-release/bench/bench_micro --simd-check
}

case "$MODE" in
  --sanitize-only|--tsan-only|--perf-only) ;;
  *)
    run_suite plain build-ci
    forced_scalar_gate
    throughput_gate
    batch_gate
    server_gate
    vault_gate
    cluster_gate
    async_gate
    grants_gate
    ;;
esac

case "$MODE" in
  --plain-only|--tsan-only|--perf-only) ;;
  *)
    # UBSan aborts on any finding (-fno-sanitize-recover=all); ASan halts on
    # the first error by default, which is exactly what CI wants.
    ASAN_OPTIONS="${ASAN_OPTIONS:-detect_leaks=1}" \
      run_suite sanitize build-ci-sanitize -DWAVEKEY_SANITIZE=ON
    ;;
esac

case "$MODE" in
  --plain-only|--sanitize-only|--perf-only) ;;
  *)
    # TSan is scoped to the concurrency suites (thread pool + pairing
    # engine + event loop + access server + vault cluster/gateway) plus the
    # kernel-equivalence suite, which
    # drives the GEMM kernels through the compute pool: that is where the
    # shared mutable state lives, and the 5-15x TSan slowdown makes the
    # full training suite impractical in CI.
    echo "=== [tsan] configure ==="
    cmake -B build-ci-tsan -S . -DWAVEKEY_TSAN=ON
    echo "=== [tsan] build ==="
    cmake --build build-ci-tsan -j "$JOBS" \
      --target thread_pool_test pairing_engine_test kernel_equiv_test server_test cluster_test \
               grants_test micro_batcher_test event_loop_test flat_map_test
    echo "=== [tsan] ctest (concurrency suites) ==="
    ctest --test-dir build-ci-tsan --output-on-failure -j "$JOBS" \
      -R 'ThreadPool|BoundedQueue|PairingEngine|TrainingDeterminism|KernelEquivalence|TensorArena|KeyVault|AccessServer|ReplayWindow|TokenBucket|TenantLimiter|AccessProtocol|MalformedInputFuzz|PartitionMap|ClusterWire|ClusterFuzz|VaultCluster|ReaderGateway|MicroBatcher|BatchedDenseKernel|BatchedInference|BatchedEncoderService|EventLoop|AsyncQueue|TaskCoroutine|BufferPool|FlatMap|KdfTree|CounterAdvance|GrantToken|GrantFuzz|OfflineVerifier|GrantIssuer|AuditLog|ClusterAudit|GatewayOffline'
    ;;
esac

case "$MODE" in
  --sanitize-only|--tsan-only) ;;
  *)
    perf_gate
    ;;
esac

echo "=== CI ok ==="
