#!/usr/bin/env bash
# CI driver: builds and runs the tier-1 ctest suite twice — a plain
# RelWithDebInfo build and a WAVEKEY_SANITIZE=ON (ASan + UBSan) build — so
# every merge exercises both correctness and memory/UB cleanliness.
#
# Usage: tools/ci.sh [--plain-only|--sanitize-only]
# Environment: WAVEKEY_CI_JOBS (parallelism, default nproc),
#              WAVEKEY_BENCH_SCALE is NOT consumed here (tests only).

set -euo pipefail

cd "$(dirname "$0")/.."
JOBS="${WAVEKEY_CI_JOBS:-$(nproc)}"
MODE="${1:-all}"

run_suite() {
  local name="$1" dir="$2"
  shift 2
  echo "=== [$name] configure ==="
  cmake -B "$dir" -S . "$@"
  echo "=== [$name] build ==="
  cmake --build "$dir" -j "$JOBS"
  echo "=== [$name] ctest ==="
  ctest --test-dir "$dir" --output-on-failure -j "$JOBS"
}

case "$MODE" in
  --sanitize-only) ;;
  *) run_suite plain build-ci ;;
esac

case "$MODE" in
  --plain-only) ;;
  *)
    # UBSan aborts on any finding (-fno-sanitize-recover=all); ASan halts on
    # the first error by default, which is exactly what CI wants.
    ASAN_OPTIONS="${ASAN_OPTIONS:-detect_leaks=1}" \
      run_suite sanitize build-ci-sanitize -DWAVEKEY_SANITIZE=ON
    ;;
esac

echo "=== CI ok ==="
