#!/usr/bin/env python3
"""Compare a bench_micro JSON run against the committed baseline.

Guards the hot-path kernels against performance regressions in CI:

    bench_micro --benchmark_format=json ... > current.json
    tools/bench_compare.py BENCH_micro.json current.json

Exit status is 1 if any gated benchmark slowed down by more than the
threshold (default 15%). To stay meaningful across machines, every time is
normalized by the anchor benchmark (BM_Sha256_1KiB): a host that is
uniformly 2x slower than the baseline machine shifts the anchor by the same
factor and cancels out; only *relative* kernel regressions trip the gate.

Stdlib only — no third-party dependencies.
"""

import argparse
import json
import sys

ANCHOR = "BM_Sha256_1KiB"

# Benchmarks the gate protects. Names absent from either file are reported
# and skipped (so adding a new benchmark does not break older baselines),
# but a missing anchor is a hard error.
GATED = [
    "BM_Fe25519_Pow",
    "BM_Fe25519_GeneratorPow",
    "BM_Fe25519_Inverse",
    "BM_OtInstance",
    "BM_OtSenderEncrypt",
    "BM_ImuEncoderInference",
    "BM_EncoderBatchedForward/1",
    "BM_EncoderBatchedForward/4",
    "BM_EncoderBatchedForward/16",
    "BM_EncoderBatchedForward/64",
    "BM_Conv1dForward",
    "BM_DenseForward",
    "BM_Gf256AddmulSlice",
    "BM_RsEncode",
    "BM_ChaCha20Block",
    "BM_GemmF32",
    "BM_ClusterFrame",
    "BM_PartitionMapRoute",
]


def load_times(path):
    """Returns {benchmark name: min real_time in ns} over all repetitions."""
    with open(path) as f:
        doc = json.load(f)
    times = {}
    for entry in doc.get("benchmarks", []):
        # Skip aggregate rows (mean/median/stddev); keep per-repetition ones.
        if entry.get("run_type", "iteration") != "iteration":
            continue
        name = entry["name"]
        t = float(entry["real_time"])
        unit = entry.get("time_unit", "ns")
        scale = {"ns": 1.0, "us": 1e3, "ms": 1e6, "s": 1e9}[unit]
        t *= scale
        if name not in times or t < times[name]:
            times[name] = t
    return times


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("baseline", help="committed baseline JSON (BENCH_micro.json)")
    ap.add_argument("current", help="freshly measured JSON")
    ap.add_argument("--threshold", type=float, default=0.15,
                    help="allowed fractional slowdown after normalization (default 0.15)")
    args = ap.parse_args()

    base = load_times(args.baseline)
    cur = load_times(args.current)

    if ANCHOR not in base or ANCHOR not in cur:
        print(f"bench_compare: anchor {ANCHOR} missing from baseline or current run",
              file=sys.stderr)
        return 1
    anchor_ratio = cur[ANCHOR] / base[ANCHOR]
    print(f"anchor {ANCHOR}: baseline {base[ANCHOR]:.0f} ns, current {cur[ANCHOR]:.0f} ns "
          f"(machine factor {anchor_ratio:.3f})")

    failed = []
    for name in GATED:
        if name not in base:
            # A benchmark the baseline predates: report it so the baseline
            # gets refreshed, but do not fail — new benchmarks must be
            # landable against older committed baselines.
            cur_note = f"cur {cur[name]:.0f} ns" if name in cur else "not measured"
            print(f"  {name:<28} NEW (not in baseline; {cur_note})")
            continue
        if name not in cur:
            print(f"  {name:<28} SKIP (missing from current run)")
            continue
        normalized = (cur[name] / base[name]) / anchor_ratio
        verdict = "ok"
        if normalized > 1.0 + args.threshold:
            verdict = "REGRESSION"
            failed.append(name)
        print(f"  {name:<28} base {base[name]:>12.0f} ns  cur {cur[name]:>12.0f} ns  "
              f"normalized x{normalized:.3f}  {verdict}")

    if failed:
        print(f"bench_compare: {len(failed)} gated benchmark(s) regressed more than "
              f"{args.threshold:.0%}: {', '.join(failed)}", file=sys.stderr)
        return 1
    print("bench_compare: all gated benchmarks within threshold")
    return 0


if __name__ == "__main__":
    sys.exit(main())
