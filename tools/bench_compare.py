#!/usr/bin/env python3
"""Compare a bench_micro JSON run against the committed baseline.

Guards the hot-path kernels against performance regressions in CI:

    bench_micro --benchmark_format=json ... > current.json
    tools/bench_compare.py BENCH_micro.json current.json

Exit status is 1 if any gated benchmark slowed down by more than the
threshold (default 15%). To stay meaningful across machines, every time is
normalized by the anchor benchmark (BM_Sha256_1KiB): a host that is
uniformly 2x slower than the baseline machine shifts the anchor by the same
factor and cancels out; only *relative* kernel regressions trip the gate.

A second mode diffs serving-latency percentiles instead of ops-rate
anchors: `--latency` takes two bench_server / bench_throughput style JSONs
(anything with a "points" array carrying p50/p95/p99/p99.9 fields) and
compares TAIL AMPLIFICATION — each percentile normalized by the lowest
percentile of its own family in the same run — so absolute machine speed
cancels and only tail-shape regressions (a blocking wait sneaking back into
the request path, a lock convoy) trip the gate. The default --threshold in
this mode is 3.0 (4x amplification growth): a deliberate tripwire for
order-of-magnitude regressions, not a noise-sensitive 15% gate.

Stdlib only — no third-party dependencies.
"""

import argparse
import json
import re
import sys

ANCHOR = "BM_Sha256_1KiB"

# Benchmarks the gate protects. Names absent from either file are reported
# and skipped (so adding a new benchmark does not break older baselines),
# but a missing anchor is a hard error.
GATED = [
    "BM_Fe25519_Pow",
    "BM_Fe25519_GeneratorPow",
    "BM_Fe25519_Inverse",
    "BM_OtInstance",
    "BM_OtSenderEncrypt",
    "BM_ImuEncoderInference",
    "BM_EncoderBatchedForward/1",
    "BM_EncoderBatchedForward/4",
    "BM_EncoderBatchedForward/16",
    "BM_EncoderBatchedForward/64",
    "BM_Conv1dForward",
    "BM_DenseForward",
    "BM_Gf256AddmulSlice",
    "BM_RsEncode",
    "BM_ChaCha20Block",
    "BM_GemmF32",
    "BM_ClusterFrame",
    "BM_PartitionMapRoute",
    "BM_EventLoopSpawn",
    "BM_BufferPoolLease",
    "BM_FramePooled",
    "BM_FlatMapProbe",
    "BM_VaultAuthorizeHot",
    "BM_KdfDerive",
    "BM_GrantVerifyOffline",
    "BM_AuditAppend",
]

# Matches latency-percentile point fields: p50_verify_us, p999_critical_ms...
PERCENTILE_KEY = re.compile(r"^p(\d+)_(.+)_(us|ms)$")


def load_latency_points(path):
    """Returns {point label: {family: {percentile: microseconds}}}."""
    with open(path) as f:
        doc = json.load(f)
    points = {}
    for point in doc.get("points", []):
        label = f"threads={point.get('threads', '?')}"
        families = {}
        for key, value in point.items():
            m = PERCENTILE_KEY.match(key)
            if m is None or not isinstance(value, (int, float)):
                continue
            # 'p999' means p99.9: interpret the digit string as a percentile
            # with an implied decimal point after the first two digits.
            digits = m.group(1)
            pct = float(digits) if len(digits) <= 2 else float(digits[:2] + "." + digits[2:])
            us = float(value) * (1e3 if m.group(3) == "ms" else 1.0)
            families.setdefault(m.group(2), {})[pct] = us
        if families:
            points[label] = families
    return points


def compare_latency(args):
    base = load_latency_points(args.baseline)
    cur = load_latency_points(args.current)
    if not base or not cur:
        print("bench_compare: no latency percentiles found in baseline or current",
              file=sys.stderr)
        return 1

    failed = []
    compared = 0
    # Walk the union of labels so a point present on only one side is
    # reported as a SKIP instead of silently ignored (or a KeyError when the
    # baseline predates a newly added point).
    for label in sorted(set(base) | set(cur)):
        if label not in cur:
            print(f"{label}: SKIP (missing from current run)")
            continue
        if label not in base:
            print(f"{label}: SKIP (not in baseline; refresh the committed JSON)")
            continue
        base_families = base[label]
        for family, base_pcts in sorted(base_families.items()):
            cur_pcts = cur[label].get(family, {})
            shared = sorted(set(base_pcts) & set(cur_pcts))
            if len(shared) < 2:
                continue
            floor = shared[0]  # lowest shared percentile anchors the family
            for pct in shared[1:]:
                base_amp = base_pcts[pct] / base_pcts[floor] if base_pcts[floor] > 0 else 0.0
                cur_amp = cur_pcts[pct] / cur_pcts[floor] if cur_pcts[floor] > 0 else 0.0
                if base_amp <= 0.0:
                    continue
                compared += 1
                ratio = cur_amp / base_amp
                verdict = "ok"
                if ratio > 1.0 + args.threshold:
                    verdict = "REGRESSION"
                    failed.append(f"{label} {family} p{pct:g} "
                                  f"(x{base_amp:.1f} -> x{cur_amp:.1f})")
                print(f"  {label:<12} {family:<12} p{pct:<5g} base {base_pcts[pct]:>10.1f} us "
                      f"(x{base_amp:5.1f} over p{floor:g})  cur {cur_pcts[pct]:>10.1f} us "
                      f"(x{cur_amp:5.1f})  tail ratio x{ratio:.2f}  {verdict}")

    if compared == 0:
        print("bench_compare: no comparable percentile pairs (need >= 2 shared "
              "percentiles per family)", file=sys.stderr)
        return 1
    if failed:
        print(f"bench_compare: {len(failed)} tail percentile(s) regressed more than "
              f"{args.threshold:.0%} in amplification: {', '.join(failed)}", file=sys.stderr)
        return 1
    print(f"bench_compare: all {compared} tail percentiles within threshold")
    return 0


def load_times(path):
    """Returns {benchmark name: min real_time in ns} over all repetitions."""
    with open(path) as f:
        doc = json.load(f)
    times = {}
    for entry in doc.get("benchmarks", []):
        # Skip aggregate rows (mean/median/stddev); keep per-repetition ones.
        if entry.get("run_type", "iteration") != "iteration":
            continue
        name = entry["name"]
        t = float(entry["real_time"])
        unit = entry.get("time_unit", "ns")
        scale = {"ns": 1.0, "us": 1e3, "ms": 1e6, "s": 1e9}[unit]
        t *= scale
        if name not in times or t < times[name]:
            times[name] = t
    return times


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("baseline", help="committed baseline JSON (BENCH_micro.json)")
    ap.add_argument("current", help="freshly measured JSON")
    ap.add_argument("--latency", action="store_true",
                    help="diff latency percentiles (bench_server/bench_throughput "
                         "JSONs) instead of ops-rate anchors")
    ap.add_argument("--threshold", type=float, default=None,
                    help="allowed fractional slowdown after normalization "
                         "(default 0.15; 3.0 in --latency mode)")
    args = ap.parse_args()

    if args.threshold is None:
        args.threshold = 3.0 if args.latency else 0.15
    if args.latency:
        return compare_latency(args)

    base = load_times(args.baseline)
    cur = load_times(args.current)

    if ANCHOR not in base or ANCHOR not in cur:
        print(f"bench_compare: anchor {ANCHOR} missing from baseline or current run",
              file=sys.stderr)
        return 1
    anchor_ratio = cur[ANCHOR] / base[ANCHOR]
    print(f"anchor {ANCHOR}: baseline {base[ANCHOR]:.0f} ns, current {cur[ANCHOR]:.0f} ns "
          f"(machine factor {anchor_ratio:.3f})")

    failed = []
    for name in GATED:
        if name not in base:
            # A benchmark the baseline predates: report it so the baseline
            # gets refreshed, but do not fail — new benchmarks must be
            # landable against older committed baselines.
            cur_note = f"cur {cur[name]:.0f} ns" if name in cur else "not measured"
            print(f"  {name:<28} NEW (not in baseline; {cur_note})")
            continue
        if name not in cur:
            print(f"  {name:<28} SKIP (missing from current run)")
            continue
        normalized = (cur[name] / base[name]) / anchor_ratio
        verdict = "ok"
        if normalized > 1.0 + args.threshold:
            verdict = "REGRESSION"
            failed.append(f"{name} (committed {base[name]:.0f} ns, measured "
                          f"{cur[name]:.0f} ns, x{normalized:.3f} normalized)")
        print(f"  {name:<28} base {base[name]:>12.0f} ns  cur {cur[name]:>12.0f} ns  "
              f"normalized x{normalized:.3f}  {verdict}")

    if failed:
        print(f"bench_compare: {len(failed)} gated benchmark(s) regressed more than "
              f"{args.threshold:.0%} [anchor {ANCHOR}: committed {base[ANCHOR]:.0f} ns vs "
              f"measured {cur[ANCHOR]:.0f} ns, machine factor x{anchor_ratio:.3f}]: "
              f"{'; '.join(failed)}", file=sys.stderr)
        return 1
    print("bench_compare: all gated benchmarks within threshold")
    return 0


if __name__ == "__main__":
    sys.exit(main())
