// Developer utility: generates a dataset, jointly trains the encoders, and
// reports the seed bit-mismatch distribution and eta calibration — the
// quantities everything in the evaluation hinges on. Used to tune the
// simulation/training hyperparameters; the benches use the same path via
// bench/common.hpp.

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>

#include "core/dataset.hpp"
#include "core/encoders.hpp"
#include "core/key_seed.hpp"
#include "core/pairing.hpp"
#include "core/seed_quantizer.hpp"
#include "numeric/stats.hpp"

using namespace wavekey;

int main(int argc, char** argv) {
  core::DatasetConfig dc;
  core::TrainConfig tc;
  tc.verbose = true;
  core::WaveKeyConfig wk;

  for (int i = 1; i + 1 < argc; i += 2) {
    const std::string k = argv[i];
    const double v = std::atof(argv[i + 1]);
    if (k == "--epochs") tc.epochs = static_cast<std::size_t>(v);
    else if (k == "--gestures") dc.gestures_per_pair = static_cast<std::size_t>(v);
    else if (k == "--windows") dc.windows_per_gesture = static_cast<std::size_t>(v);
    else if (k == "--lr") tc.learning_rate = static_cast<float>(v);
    else if (k == "--lambda") tc.lambda = static_cast<float>(v);
    else if (k == "--latent") wk.latent_dim = static_cast<std::size_t>(v);
    else if (k == "--bins") wk.quant_bins = static_cast<std::size_t>(v);
  }

  std::printf("generating dataset (volunteers=%zu devices=%zu gestures=%zu windows=%zu)...\n",
              dc.volunteers, dc.devices, dc.gestures_per_pair, dc.windows_per_gesture);
  const auto t0 = std::chrono::steady_clock::now();
  const core::WaveKeyDataset dataset = core::WaveKeyDataset::generate(dc, wk);
  const auto t1 = std::chrono::steady_clock::now();
  std::printf("dataset: %zu samples (%.1f s)\n", dataset.size(),
              std::chrono::duration<double>(t1 - t0).count());

  Rng rng(42);
  core::EncoderPair encoders(wk.latent_dim, rng);
  const char* cache = std::getenv("WK_MODEL_CACHE");
  bool loaded = false;
  if (cache) {
    try {
      encoders = core::EncoderPair::load_file(cache);
      loaded = true;
      std::printf("loaded cached model from %s\n", cache);
    } catch (const std::exception&) {
    }
  }
  if (!loaded) {
    encoders.train(dataset, tc);
    if (cache) encoders.save_file(cache);
  }
  const auto t2 = std::chrono::steady_clock::now();
  std::printf("training done (%.1f s)\n", std::chrono::duration<double>(t2 - t1).count());

  const auto loss = encoders.evaluate(dataset, tc.lambda);
  std::printf("eval: feature=%.4f decoder=%.4f\n", loss.feature, loss.decoder);

  const core::SeedQuantizer quantizer = core::SeedQuantizer::calibrated(encoders, dataset, wk);
  const auto ratios = core::seed_mismatch_ratios(encoders, dataset, quantizer);
  std::printf("mismatch: mean=%.4f p50=%.4f p90=%.4f p99=%.4f max=%.4f\n", mean(ratios),
              percentile(ratios, 50), percentile(ratios, 90), percentile(ratios, 99),
              percentile(ratios, 100));
  // Offset-0 windows only (first window of each gesture): these match what
  // live key establishment uses.
  {
    std::vector<double> first_windows;
    for (std::size_t i = 0; i < ratios.size(); i += dc.windows_per_gesture)
      first_windows.push_back(ratios[i]);
    std::printf("offset0 : mean=%.4f p50=%.4f p90=%.4f p99=%.4f\n", mean(first_windows),
                percentile(first_windows, 50), percentile(first_windows, 90),
                percentile(first_windows, 99));
  }
  const auto cal = core::calibrate_eta(encoders, dataset, quantizer);
  std::printf("eta=%.4f  (seed_bits=%zu)  P_guess=%.3e\n", cal.eta, wk.seed_bits(),
              core::random_guess_success_rate(wk.seed_bits(), cal.eta));

  // Held-out dataset: same generator, different seed -> fresh gestures.
  {
    core::DatasetConfig hd = dc;
    hd.seed = 0xFEED5EED;
    hd.gestures_per_pair = 2;
    hd.windows_per_gesture = 6;
    const core::WaveKeyDataset held = core::WaveKeyDataset::generate(hd, wk);
    const auto held_ratios = core::seed_mismatch_ratios(encoders, held, quantizer);
    std::printf("heldout : n=%zu mean=%.4f p50=%.4f p90=%.4f p99=%.4f\n", held_ratios.size(),
                mean(held_ratios), percentile(held_ratios, 50), percentile(held_ratios, 90),
                percentile(held_ratios, 99));
  }

  // Per-condition diagnostics on *fresh* sessions (generalization view).
  struct Cond {
    const char* name;
    double dist;
    double az;
    bool dyn;
  };
  const Cond conds[] = {
      {"d=1 az=0 S", 1, 0, false},  {"d=5 az=0 S", 5, 0, false},
      {"d=9 az=0 S", 9, 0, false},  {"d=5 az=60 S", 5, 60, false},
      {"d=5 az=0 D", 5, 0, true},   {"d=9 az=0 D", 9, 0, true},
  };
  // Evaluate with the *same cohort* the model was trained on (the paper's
  // evaluation reuses its six volunteers).
  std::vector<sim::VolunteerStyle> cohort;
  {
    Rng style_rng(dc.seed);
    for (std::size_t v = 0; v < dc.volunteers; ++v)
      cohort.push_back(sim::VolunteerStyle::sample(style_rng));
  }
  Rng srng(777);
  for (const auto& c : conds) {
    std::vector<double> ms, deltas;
    int failures = 0;
    for (int i = 0; i < 40; ++i) {
      sim::ScenarioConfig sc;
      sc.volunteer = cohort[static_cast<std::size_t>(i) % cohort.size()];
      sc.distance_m = c.dist;
      sc.azimuth_deg = c.az;
      sc.dynamic_environment = c.dyn;
      sc.gesture.active_s = (std::getenv("WK_LONG") ? 15.0 : 3.0);
      const auto r = core::simulate_seed_pair(encoders, quantizer, wk, sc, srng.next());
      if (!r) {
        ++failures;
        continue;
      }
      ms.push_back(r->mismatch);
      deltas.push_back(r->rfid_start - r->imu_start);
    }
    std::printf("cond %-12s: mean=%.4f p90=%.4f max=%.4f pipeline_fail=%d dt=%.3f+/-%.3f\n",
                c.name, mean(ms), percentile(ms, 90), percentile(ms, 100), failures,
                mean(deltas), stddev(deltas));
  }
  return 0;
}
