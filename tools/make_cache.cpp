// Developer utility: builds the bench model cache (wavekey_models.bin) from
// a raw EncoderPair file produced by train_report, running the quantizer +
// eta calibration on the default dataset. Lets long training runs happen
// out-of-band while benches always consume the canonical cache format.

#include <cstdio>
#include <cstdlib>

#include "core/model_store.hpp"

using namespace wavekey;

int main(int argc, char** argv) {
  if (argc < 3) {
    std::fprintf(stderr, "usage: make_cache <encoder_pair_file> <output_system_file>\n");
    return 1;
  }
  core::WaveKeyConfig cfg;
  core::EncoderPair encoders = core::EncoderPair::load_file(argv[1]);
  // Calibrate on held-out sessions, mirroring load_or_train.
  core::DatasetConfig held = core::default_dataset_config();
  held.seed ^= 0x8E1D07ull;
  held.gestures_per_pair = std::max<std::size_t>(2, held.gestures_per_pair / 12);
  const core::WaveKeyDataset dataset = core::WaveKeyDataset::generate(held, cfg);
  core::WaveKeySystem system(std::move(encoders), cfg);
  const auto cal = system.calibrate(dataset);
  std::printf("calibrated: eta=%.4f mean=%.4f p99=%.4f over %zu samples\n", cal.eta,
              cal.mean_mismatch, cal.p99_mismatch, cal.samples);
  core::save_system(system, argv[2]);
  std::printf("saved %s\n", argv[2]);
  return 0;
}
