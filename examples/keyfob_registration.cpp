// Context 3 of the paper: RFID-assisted secure mobile system access. A
// vehicle owner uses the car's key fob to register *arbitrary* mobile
// devices with the vehicle: each registration is one WaveKey session with
// the fob. The example registers a phone and a watch, then shows a
// man-in-the-middle on the wireless link failing to hijack a registration.

#include <cstdio>

#include "attacks/attack_eval.hpp"
#include "examples/example_common.hpp"
#include "sim/scenario.hpp"

using namespace wavekey;

int main() {
  core::WaveKeySystem system = examples::make_system();

  std::printf("=== registering devices with the car via its key fob ===\n\n");
  const auto devices = sim::MobileDeviceProfile::standard_devices();
  const sim::TagProfile fob = sim::TagProfile::standard_tags()[2];  // one specific fob

  Rng style_rng(55);
  const sim::VolunteerStyle owner = sim::VolunteerStyle::sample(style_rng);

  std::vector<std::pair<std::string, BitVec>> registered;
  for (const auto& device_name : {std::string("pixel8"), std::string("galaxy_watch")}) {
    sim::ScenarioConfig scenario;
    scenario.volunteer = owner;
    scenario.tag = fob;
    scenario.distance_m = 1.0;  // standing next to the car
    scenario.gesture.active_s = 3.5;
    for (const auto& d : devices)
      if (d.name == device_name) scenario.device = d;

    const core::WaveKeyOutcome outcome =
        system.establish_key(scenario, 600 + registered.size() * 29);
    if (outcome.success) {
      std::printf("%-13s registered; vehicle stored a fresh %zu-bit credential\n",
                  device_name.c_str(), outcome.key.size());
      registered.emplace_back(device_name, outcome.key);
    } else {
      std::printf("%-13s registration failed (wave again)\n", device_name.c_str());
    }
  }

  if (registered.size() == 2) {
    std::printf("\ncredentials are independent: %s\n",
                registered[0].second == registered[1].second
                    ? "NO -- investigate!"
                    : "yes, phone and watch hold different keys");
  }

  // A man in the middle on the car<->phone link tampers with the OT
  // exchange during a registration. The protocol detects it.
  std::printf("\n=== MitM attempts to hijack a registration ===\n\n");
  int failed = 0, total = 0;
  for (std::size_t bit = 0; bit < 5; ++bit) {
    sim::ScenarioConfig scenario;
    scenario.volunteer = owner;
    scenario.tag = fob;
    scenario.distance_m = 1.0;
    scenario.gesture.active_s = 3.5;
    scenario.device = devices[0];
    const auto tamper = attacks::make_tamperer(protocol::MessageType::kMsgE, bit * 333 + 7);
    const core::WaveKeyOutcome outcome =
        system.establish_key(scenario, 700 + bit, tamper);
    if (!outcome.pipelines_ok) continue;
    ++total;
    if (!outcome.success) ++failed;
  }
  std::printf("%d / %d tampered registrations aborted (HMAC/reconciliation caught the MitM)\n",
              failed, total);
  return 0;
}
