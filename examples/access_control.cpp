// Context 2 of the paper: RFID location-based access control. A
// non-removable RFID card guards a restricted resource; personnel prove
// *physical presence* by waving their device next to the card. This example
// admits a legitimate operator, then shows two attackers failing: a remote
// adversary random-guessing the key-seed, and a shoulder-surfer with a
// camera who recovers a seed estimate but cannot beat the tau deadline.

#include <cstdio>

#include "attacks/attack_eval.hpp"
#include "examples/example_common.hpp"
#include "sim/scenario.hpp"

using namespace wavekey;

int main() {
  core::WaveKeySystem system = examples::make_system();
  const core::WaveKeyConfig& cfg = system.config();

  std::printf("=== restricted lab: RFID card on the door, server inside ===\n\n");

  // Legitimate operator: physically present, waves device + card.
  sim::ScenarioConfig scenario;
  Rng style_rng(77);
  scenario.volunteer = sim::VolunteerStyle::sample(style_rng);
  scenario.distance_m = 1.5;  // standing at the door
  scenario.gesture.active_s = 3.5;
  const core::WaveKeyOutcome operator_outcome = system.establish_key(scenario, 31337);
  std::printf("operator at the door: %s\n",
              operator_outcome.success ? "ACCESS GRANTED (key established)" : "access retry");

  // Attacker 1: remote, no physical presence -- can only guess the seed.
  {
    crypto::Drbg guess_rng(1);
    const auto victim = core::simulate_seed_pair(system.encoders(), system.quantizer(), cfg,
                                                 scenario, 31338);
    int hits = 0;
    const int attempts = 20000;
    if (victim) {
      for (int i = 0; i < attempts; ++i)
        if (attacks::run_random_guess_attack(victim->mobile_seed, cfg.eta, guess_rng).success())
          ++hits;
    }
    const double analytic = core::random_guess_success_rate(cfg.seed_bits(), cfg.eta);
    std::printf("remote guesser:      %d / %d guessed seeds accepted (Eq. (4) predicts %.1f);\n",
                hits, attempts, analytic * attempts);
    std::printf("                     per-attempt odds %.2e -> brute force infeasible, and\n",
                analytic);
    std::printf("                     each attempt needs a fresh physical session anyway\n");
  }

  // Attacker 2: shoulder-surfer filming the operator's gesture.
  {
    const auto spoof = attacks::run_camera_spoof(system.encoders(), system.quantizer(), cfg,
                                                 scenario, sim::CameraConfig::remote(), 31339);
    if (spoof) {
      std::printf("camera shoulder-surfer: seed mismatch %.2f (eta %.2f) %s; deadline %s\n",
                  spoof->mismatch, cfg.eta,
                  spoof->seed_accepted ? "-- seed would pass" : "-- seed rejected",
                  spoof->within_deadline ? "met (!!)" : "missed (video latency > tau)");
      std::printf("                     -> %s\n",
                  spoof->success() ? "review the deployment!" : "ACCESS DENIED");
    } else {
      std::printf("camera shoulder-surfer: could not even assemble a window -> ACCESS DENIED\n");
    }
  }

  // The second factor in action: same operator, but the door's RFID signal
  // is spoofed by a replay -- the cross-modal correlation breaks and the
  // backend sees it.
  {
    const auto mismatch = attacks::run_signal_spoof(system.encoders(), system.quantizer(), cfg,
                                                    scenario, 31340);
    if (mismatch)
      std::printf("replayed RFID signal: seed mismatch %.2f (eta %.2f) -> %s\n", *mismatch,
                  cfg.eta, *mismatch > cfg.eta ? "SESSION REFUSED, attack visible" : "check!");
  }
  return 0;
}
