// Attack tour: runs every adversary from the paper's SSV threat model once
// against the same victim session and prints what each one achieves. A
// compact companion to bench_security_spoofing (which runs the statistics).

#include <cstdio>

#include "attacks/attack_eval.hpp"
#include "examples/example_common.hpp"
#include "sim/scenario.hpp"

using namespace wavekey;

int main() {
  core::WaveKeySystem system = examples::make_system();
  const core::WaveKeyConfig& cfg = system.config();

  sim::ScenarioConfig scenario;
  Rng style_rng(11);
  scenario.volunteer = sim::VolunteerStyle::sample(style_rng);
  scenario.gesture.active_s = 3.5;
  const std::uint64_t session_seed = 123456;

  std::printf("victim session: eta=%.3f, l_s=%zu bits\n\n", cfg.eta, cfg.seed_bits());

  // Eavesdropper.
  {
    protocol::Bytes transcript;
    const auto outcome =
        system.establish_key(scenario, session_seed, attacks::make_eavesdropper(&transcript));
    std::printf("[eavesdrop]   session %s; %zu transcript bytes; OT hides both pad streams\n",
                outcome.success ? "succeeded" : "failed", transcript.size());
  }

  // Man in the middle.
  {
    const auto outcome = system.establish_key(
        scenario, session_seed, attacks::make_tamperer(protocol::MessageType::kMsgB, 1234));
    std::printf("[MitM]        tampered M_B -> session %s\n",
                outcome.success ? "still succeeded (within ECC budget)" : "aborted");
  }

  // Delay attack vs the tau deadline.
  {
    const auto outcome = system.establish_key(
        scenario, session_seed, attacks::make_delayer(protocol::MessageType::kMsgA, 0.4));
    std::printf("[delay 400ms] M_A held back -> %s\n",
                outcome.success ? "succeeded (check tau!)" : "rejected by the tau deadline");
  }

  // Random-guess device spoofing.
  {
    const auto victim =
        core::simulate_seed_pair(system.encoders(), system.quantizer(), cfg, scenario, session_seed);
    crypto::Drbg rng(5);
    int hits = 0;
    for (int i = 0; i < 10000 && victim; ++i)
      if (attacks::run_random_guess_attack(victim->mobile_seed, cfg.eta, rng).success()) ++hits;
    std::printf("[guess]       %d / 10000 random seeds accepted (Eq.4 predicts %.2e)\n", hits,
                core::random_guess_success_rate(cfg.seed_bits(), cfg.eta));
  }

  // Gesture mimicking.
  {
    const auto r = attacks::run_mimic_attack(system.encoders(), system.quantizer(), cfg,
                                             scenario, attacks::MimicSkill::average(),
                                             session_seed);
    if (r)
      std::printf("[mimic]       shadowing mimic's seed mismatch %.2f vs eta %.2f -> %s\n",
                  r->mismatch, cfg.eta, r->success() ? "ACCEPTED (!)" : "rejected");
  }

  // Camera recovery, both strategies.
  for (const bool remote : {true, false}) {
    const auto r = attacks::run_camera_spoof(
        system.encoders(), system.quantizer(), cfg, scenario,
        remote ? sim::CameraConfig::remote() : sim::CameraConfig::in_situ(), session_seed);
    if (r)
      std::printf("[camera %s] mismatch %.2f, deadline %s -> %s\n",
                  remote ? "rmt" : "2-D", r->mismatch,
                  r->within_deadline ? "met" : "missed", r->success() ? "ACCEPTED (!)" : "rejected");
  }

  // RFID signal spoofing.
  {
    const auto m = attacks::run_signal_spoof(system.encoders(), system.quantizer(), cfg,
                                             scenario, session_seed);
    if (m)
      std::printf("[spoof RF]    replay-induced mismatch %.2f -> %s\n", *m,
                  *m > cfg.eta ? "session fails, attack visible" : "check!");
  }
  return 0;
}
