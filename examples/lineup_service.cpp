// Context 1 of the paper: an RFID line-up service. Visitors to a service
// center receive tickets with unique RFID tags; each visitor pairs their
// own phone with the backend by waving phone + ticket together, then
// submits paperwork over the resulting secure channel, tied to their ticket
// number. This example walks three visitors through the queue and shows
// the per-visitor keys protecting (simulated) document uploads.

#include <cstdio>
#include <string>

#include "crypto/hmac.hpp"
#include "crypto/stream_cipher.hpp"
#include "examples/example_common.hpp"
#include "sim/scenario.hpp"

using namespace wavekey;

namespace {

// The backend's view of one ticket holder.
struct TicketSession {
  int ticket_number;
  BitVec key;
};

std::vector<std::uint8_t> ascii(const std::string& s) {
  return std::vector<std::uint8_t>(s.begin(), s.end());
}

}  // namespace

int main() {
  core::WaveKeySystem system = examples::make_system();

  const auto tags = sim::TagProfile::standard_tags();
  const auto devices = sim::MobileDeviceProfile::standard_devices();
  std::vector<TicketSession> sessions;

  std::printf("=== RFID line-up service: 3 visitors take tickets ===\n\n");
  for (int visitor = 0; visitor < 3; ++visitor) {
    // Each visitor gets a fresh ticket (tag) and brings their own phone.
    sim::ScenarioConfig scenario;
    Rng style_rng(900 + static_cast<std::uint64_t>(visitor));
    scenario.volunteer = sim::VolunteerStyle::sample(style_rng);
    scenario.tag = tags[static_cast<std::size_t>(visitor) % tags.size()];
    scenario.device = devices[static_cast<std::size_t>(visitor) % devices.size()];
    scenario.distance_m = 2.0 + visitor;  // they stand at different spots
    scenario.gesture.active_s = 3.5;

    const core::WaveKeyOutcome outcome =
        system.establish_key(scenario, 5000 + static_cast<std::uint64_t>(visitor) * 17);
    if (!outcome.success) {
      std::printf("visitor %d: pairing failed, retrying is a wave away\n", visitor + 1);
      continue;
    }
    sessions.push_back({100 + visitor, outcome.key});
    std::printf("visitor %d: ticket #%d paired with %s + %s in %.0f ms\n", visitor + 1,
                100 + visitor, scenario.device.name.c_str(), scenario.tag.name.c_str(),
                outcome.elapsed_s * 1000.0);
  }

  std::printf("\n=== paperwork submission over the per-ticket secure channels ===\n\n");
  for (const TicketSession& s : sessions) {
    const std::string document =
        "TAX-FORM-2026 for ticket #" + std::to_string(s.ticket_number);
    const auto key_bytes = s.key.to_bytes();
    const auto ciphertext = crypto::stream_crypt(key_bytes, ascii(document));
    const auto mac = crypto::hmac_sha256(key_bytes, ciphertext);

    // Backend decrypts with the key it established for this ticket.
    const auto decrypted = crypto::stream_crypt(key_bytes, ciphertext);
    const bool mac_ok = crypto::digest_equal(mac, crypto::hmac_sha256(key_bytes, ciphertext));
    std::printf("ticket #%d: %zu-byte document, MAC %s, round-trips to \"%.*s\"\n",
                s.ticket_number, ciphertext.size(), mac_ok ? "verified" : "BROKEN",
                static_cast<int>(decrypted.size()), decrypted.data());
  }

  // The keys are per-visitor: ticket #100's key cannot read #101's upload.
  if (sessions.size() >= 2) {
    const auto ct =
        crypto::stream_crypt(sessions[1].key.to_bytes(), ascii("visitor-2 secret"));
    const auto wrong = crypto::stream_crypt(sessions[0].key.to_bytes(), ct);
    std::printf("\ncross-ticket isolation: decrypting #%d's upload with #%d's key -> \"%.*s\"\n",
                sessions[1].ticket_number, sessions[0].ticket_number,
                static_cast<int>(wrong.size()), wrong.data());
  }
  return 0;
}
