// Quickstart: the complete WaveKey flow in one page.
//
// A user holds their phone and an RFID ticket in the same hand, waves them
// for ~2 seconds, and ends up sharing a fresh 256-bit key with the RFID
// backend -- no pre-shared secret, no trusted third party. This example
// runs that flow end to end on the built-in physics simulation.

#include <cstdio>

#include "examples/example_common.hpp"
#include "sim/scenario.hpp"

using namespace wavekey;

int main() {
  // 1. A trained WaveKey system: the two autoencoders (IMU-En / RF-En), the
  //    calibrated quantizer, and the calibrated ECC tolerance eta.
  core::WaveKeySystem system = examples::make_system();
  std::printf("WaveKey system ready: l_f=%zu latent dims, N_b=%zu bins, l_s=%zu seed bits, "
              "eta=%.3f\n",
              system.config().latent_dim, system.config().quant_bins,
              system.config().seed_bits(), system.config().eta);

  // 2. One key-establishment session: the default scenario is the paper's
  //    default setting (Galaxy Watch + Alien 9640 tag, static lab, 5 m).
  sim::ScenarioConfig scenario;
  scenario.gesture.active_s = 3.5;  // the user waves slightly over 2 s

  const core::WaveKeyOutcome outcome = system.establish_key(scenario, /*seed=*/2024);

  // 3. Outcome: both sides now hold the same fresh key (or the session
  //    failed safely -- no partial secrets leak on failure).
  if (outcome.success) {
    std::printf("key established in %.0f ms (seed mismatch was %.1f%%)\n",
                outcome.elapsed_s * 1000.0, outcome.seed_mismatch * 100.0);
    std::printf("key (%zu bits): %s...\n", outcome.key.size(),
                outcome.key.slice(0, 64).to_string().c_str());
  } else {
    std::printf("session failed (reason %d) -- the user simply waves again\n",
                static_cast<int>(outcome.failure));
  }
  return outcome.success ? 0 : 1;
}
