// Lossy-link tour: runs key establishment over a congested radio link with
// an adversary stacked on top of the channel faults, and shows the
// fault-tolerant orchestrator (ARQ transport + multi-attempt retry) winning
// back sessions that the paper's single-shot protocol loses.
//
//  1. single-shot over a congested link: frequent aborts;
//  2. establish_key_robust over the same link, eavesdropper attached:
//     ARQ retransmissions + re-waves recover the session;
//  3. a MitM tamperer on top of the lossy link: the CRC layer rejects every
//     forged frame, so tampering degrades into loss — the session fails
//     cleanly (never a wrong key) inside its retry/tau bounds.

#include <cstdio>

#include "attacks/attack_eval.hpp"
#include "examples/example_common.hpp"
#include "protocol/faulty_channel.hpp"
#include "sim/scenario.hpp"

using namespace wavekey;

namespace {

void print_trace(const core::RobustOutcome& out) {
  for (const core::AttemptTrace& t : out.trace) {
    std::printf("    attempt %d: %-22s eta=%.3f mismatch=%.3f elapsed=%.3fs "
                "retx=%u lost=%u\n",
                t.attempt, t.success ? "ok" : protocol::failure_reason_name(t.failure), t.eta,
                t.seed_mismatch, t.elapsed_s, t.arq.retransmissions, t.arq.messages_lost);
  }
}

}  // namespace

int main() {
  core::WaveKeySystem system = examples::make_system();

  sim::ScenarioConfig scenario;
  Rng style_rng(17);
  scenario.volunteer = sim::VolunteerStyle::sample(style_rng);
  scenario.gesture.active_s = 3.5;
  // A heavily congested 2.4 GHz deployment; harsher than the built-in
  // environment profiles so the transport has real work to do.
  protocol::LinkFaultConfig faults;
  faults.loss = 0.35;
  faults.corrupt = 0.05;
  faults.duplicate = 0.05;
  faults.jitter = protocol::JitterDistribution::kExponential;
  faults.jitter_s = 0.008;

  // --- 1. The single-shot protocol on this link. ---
  int single_ok = 0;
  const int single_tries = 20;
  for (int i = 0; i < single_tries; ++i) {
    protocol::FaultyChannel channel(
        protocol::FaultyChannelConfig::symmetric(faults, 100 + static_cast<std::uint64_t>(i)));
    const auto out = system.establish_key(scenario, 9000 + static_cast<std::uint64_t>(i),
                                          channel.as_interceptor());
    if (out.success) ++single_ok;
  }
  std::printf("[single-shot] %d / %d sessions survive a 35%%-loss link\n\n", single_ok,
              single_tries);

  // --- 2. The robust orchestrator, eavesdropper stacked on the channel. ---
  core::RobustSessionConfig robust;
  robust.max_attempts = 4;
  robust.channel = protocol::FaultyChannelConfig::symmetric(faults, 1);
  protocol::Bytes transcript;
  const protocol::Interceptor eavesdropper = attacks::make_eavesdropper(&transcript);

  // Find a session where the first attempt dies and a retry recovers it, so
  // the trace below shows the orchestrator actually working.
  for (std::uint64_t seed = 1; seed <= 60; ++seed) {
    const core::RobustOutcome out = system.establish_key_robust(scenario, seed, robust,
                                                                eavesdropper);
    if (!(out.success && out.attempts_used > 1)) continue;
    std::printf("[robust+eave] session recovered on attempt %d (%.1f kB eavesdropped, "
                "OT still hides both pad streams):\n",
                out.attempts_used, static_cast<double>(transcript.size()) / 1024.0);
    print_trace(out);
    break;
  }

  // --- 3. A MitM tamperer on top of the lossy link. ---
  robust.max_attempts = 2;
  robust.arq.max_retransmits = 3;
  const core::RobustOutcome out = system.establish_key_robust(
      scenario, 7, robust, attacks::make_tamperer(protocol::MessageType::kMsgB, 4321));
  std::printf("\n[robust+MitM] tampered M_B frames fail the CRC, so tampering looks like "
              "loss:\n");
  print_trace(out);
  std::printf("  -> session %s; a MitM can deny service but never implant a key\n",
              out.success ? "still succeeded (tamper missed the frames)" : "failed cleanly");
  return 0;
}
