#pragma once

// Shared setup for the examples: obtain a trained WaveKey system. If the
// bench-grade model cache (wavekey_models.bin, produced by any bench binary
// or a previous example run) exists it is reused; otherwise a reduced
// training run (~2 minutes) produces a usable model and caches it under a
// separate name so benches still train their full model.

#include <cstdio>

#include "core/model_store.hpp"

namespace wavekey::examples {

inline core::WaveKeySystem make_system() {
  // Prefer the full bench model if it is already cached.
  if (auto cached = core::load_system("wavekey_models.bin", core::WaveKeyConfig{})) {
    std::fprintf(stderr, "[example] using cached bench model (wavekey_models.bin)\n");
    return std::move(*cached);
  }
  core::DatasetConfig dc;
  dc.gestures_per_pair = 6;
  dc.windows_per_gesture = 10;
  core::TrainConfig tc;
  tc.epochs = 30;
  return core::load_or_train("wavekey_example_model.bin", dc, tc, core::WaveKeyConfig{});
}

}  // namespace wavekey::examples
