#pragma once

// NIST SP 800-22 statistical randomness tests. SVI-D of the paper evaluates
// key-chains and key-seed-chains with the suite's runs test; we implement
// that plus the companion tests commonly run alongside it (frequency, block
// frequency, cumulative sums, approximate entropy, longest run of ones).
// Each test returns a p-value; sequences pass at the conventional 0.01
// significance level (the paper quotes 0.05).

#include <cstddef>

#include "numeric/bitvec.hpp"

namespace wavekey::nist {

/// SP 800-22 2.1: frequency (monobit) test.
double monobit_test(const BitVec& bits);

/// SP 800-22 2.2: block frequency test with block length M.
/// Throws std::invalid_argument if the sequence is shorter than one block.
double block_frequency_test(const BitVec& bits, std::size_t block_len = 128);

/// SP 800-22 2.3: runs test (the one the paper reports). Returns 0.0 when
/// the prerequisite frequency condition fails, per the specification.
double runs_test(const BitVec& bits);

/// SP 800-22 2.4: longest run of ones in 8-bit blocks (valid for n >= 128).
double longest_run_test(const BitVec& bits);

/// SP 800-22 2.13: cumulative sums (forward) test.
double cusum_test(const BitVec& bits);

/// SP 800-22 2.12: approximate entropy test with pattern length m.
double approximate_entropy_test(const BitVec& bits, std::size_t m = 2);

}  // namespace wavekey::nist
