#include "nist/nist.hpp"

#include <algorithm>
#include <array>
#include <cmath>
#include <stdexcept>
#include <vector>

namespace wavekey::nist {
namespace {

// Regularized upper incomplete gamma Q(a, x) via continued fraction /
// series, following Numerical Recipes; accurate enough for p-values.
double gamma_q(double a, double x) {
  if (x < 0.0 || a <= 0.0) throw std::invalid_argument("gamma_q: bad arguments");
  if (x == 0.0) return 1.0;
  const double gln = std::lgamma(a);
  if (x < a + 1.0) {
    // Series for P(a,x); Q = 1 - P.
    double ap = a, sum = 1.0 / a, del = sum;
    for (int i = 0; i < 200; ++i) {
      ap += 1.0;
      del *= x / ap;
      sum += del;
      if (std::abs(del) < std::abs(sum) * 1e-15) break;
    }
    return 1.0 - sum * std::exp(-x + a * std::log(x) - gln);
  }
  // Continued fraction for Q(a,x).
  double b = x + 1.0 - a, c = 1e300, d = 1.0 / b, h = d;
  for (int i = 1; i < 200; ++i) {
    const double an = -static_cast<double>(i) * (static_cast<double>(i) - a);
    b += 2.0;
    d = an * d + b;
    if (std::abs(d) < 1e-300) d = 1e-300;
    c = b + an / c;
    if (std::abs(c) < 1e-300) c = 1e-300;
    d = 1.0 / d;
    const double del = d * c;
    h *= del;
    if (std::abs(del - 1.0) < 1e-15) break;
  }
  return std::exp(-x + a * std::log(x) - gln) * h;
}

double std_normal_cdf(double x) { return 0.5 * std::erfc(-x / std::sqrt(2.0)); }

}  // namespace

double monobit_test(const BitVec& bits) {
  const std::size_t n = bits.size();
  if (n == 0) throw std::invalid_argument("monobit_test: empty sequence");
  const double ones = static_cast<double>(bits.popcount());
  const double s = 2.0 * ones - static_cast<double>(n);  // sum of +/-1
  const double s_obs = std::abs(s) / std::sqrt(static_cast<double>(n));
  return std::erfc(s_obs / std::sqrt(2.0));
}

double block_frequency_test(const BitVec& bits, std::size_t block_len) {
  const std::size_t n = bits.size();
  const std::size_t blocks = n / block_len;
  if (blocks == 0) throw std::invalid_argument("block_frequency_test: sequence too short");
  double chi2 = 0.0;
  for (std::size_t b = 0; b < blocks; ++b) {
    std::size_t ones = 0;
    for (std::size_t i = 0; i < block_len; ++i)
      if (bits.get(b * block_len + i)) ++ones;
    const double pi = static_cast<double>(ones) / static_cast<double>(block_len);
    chi2 += 4.0 * static_cast<double>(block_len) * (pi - 0.5) * (pi - 0.5);
  }
  return gamma_q(static_cast<double>(blocks) / 2.0, chi2 / 2.0);
}

double runs_test(const BitVec& bits) {
  const std::size_t n = bits.size();
  if (n < 2) throw std::invalid_argument("runs_test: sequence too short");
  const double pi = static_cast<double>(bits.popcount()) / static_cast<double>(n);
  // Prerequisite: the monobit proportion must be plausible.
  if (std::abs(pi - 0.5) >= 2.0 / std::sqrt(static_cast<double>(n))) return 0.0;

  std::size_t v = 1;
  for (std::size_t i = 0; i + 1 < n; ++i)
    if (bits.get(i) != bits.get(i + 1)) ++v;
  const double nn = static_cast<double>(n);
  const double expected = 2.0 * nn * pi * (1.0 - pi);
  const double num = std::abs(static_cast<double>(v) - expected);
  const double den = 2.0 * std::sqrt(2.0 * nn) * pi * (1.0 - pi);
  return std::erfc(num / den);
}

double longest_run_test(const BitVec& bits) {
  const std::size_t n = bits.size();
  if (n < 128) throw std::invalid_argument("longest_run_test: need >= 128 bits");
  // M = 8, K = 3 classes per SP 800-22 table 2-4.
  constexpr std::size_t kBlock = 8;
  static constexpr std::array<double, 4> kPi = {0.2148, 0.3672, 0.2305, 0.1875};
  const std::size_t blocks = n / kBlock;
  std::array<std::size_t, 4> counts{};
  for (std::size_t b = 0; b < blocks; ++b) {
    std::size_t longest = 0, run = 0;
    for (std::size_t i = 0; i < kBlock; ++i) {
      if (bits.get(b * kBlock + i)) {
        ++run;
        longest = std::max(longest, run);
      } else {
        run = 0;
      }
    }
    if (longest <= 1)
      ++counts[0];
    else if (longest == 2)
      ++counts[1];
    else if (longest == 3)
      ++counts[2];
    else
      ++counts[3];
  }
  double chi2 = 0.0;
  for (std::size_t k = 0; k < 4; ++k) {
    const double expected = static_cast<double>(blocks) * kPi[k];
    const double d = static_cast<double>(counts[k]) - expected;
    chi2 += d * d / expected;
  }
  return gamma_q(1.5, chi2 / 2.0);  // K/2 = 3/2
}

double cusum_test(const BitVec& bits) {
  const std::size_t n = bits.size();
  if (n == 0) throw std::invalid_argument("cusum_test: empty sequence");
  long s = 0;
  long z = 0;
  for (std::size_t i = 0; i < n; ++i) {
    s += bits.get(i) ? 1 : -1;
    z = std::max(z, std::labs(s));
  }
  const double nn = static_cast<double>(n);
  const double zz = static_cast<double>(z);
  double p = 1.0;
  const long k_lo = static_cast<long>((-nn / zz + 1.0) / 4.0);
  const long k_hi = static_cast<long>((nn / zz - 1.0) / 4.0);
  for (long k = k_lo; k <= k_hi; ++k) {
    p -= std_normal_cdf((4.0 * k + 1.0) * zz / std::sqrt(nn)) -
         std_normal_cdf((4.0 * k - 1.0) * zz / std::sqrt(nn));
  }
  const long k2_lo = static_cast<long>((-nn / zz - 3.0) / 4.0);
  const long k2_hi = static_cast<long>((nn / zz - 1.0) / 4.0);
  for (long k = k2_lo; k <= k2_hi; ++k) {
    p += std_normal_cdf((4.0 * k + 3.0) * zz / std::sqrt(nn)) -
         std_normal_cdf((4.0 * k + 1.0) * zz / std::sqrt(nn));
  }
  return std::clamp(p, 0.0, 1.0);
}

double approximate_entropy_test(const BitVec& bits, std::size_t m) {
  const std::size_t n = bits.size();
  if (n < 2 * (m + 1)) throw std::invalid_argument("approximate_entropy_test: too short");

  auto phi = [&](std::size_t block) -> double {
    if (block == 0) return 0.0;
    std::vector<std::size_t> counts(std::size_t{1} << block, 0);
    for (std::size_t i = 0; i < n; ++i) {
      std::size_t idx = 0;
      for (std::size_t j = 0; j < block; ++j)
        idx = (idx << 1) | (bits.get((i + j) % n) ? 1 : 0);
      ++counts[idx];
    }
    double sum = 0.0;
    for (std::size_t c : counts) {
      if (c == 0) continue;
      const double p = static_cast<double>(c) / static_cast<double>(n);
      sum += p * std::log(p);
    }
    return sum;
  };

  const double ap_en = phi(m) - phi(m + 1);
  const double chi2 = 2.0 * static_cast<double>(n) * (std::log(2.0) - ap_en);
  return gamma_q(static_cast<double>(std::size_t{1} << (m - 1)), chi2 / 2.0);
}

}  // namespace wavekey::nist
