#include "protocol/key_agreement.hpp"

#include <cmath>

#include "crypto/hmac.hpp"

namespace wavekey::protocol {
namespace {

constexpr std::size_t kGroupElementBytes = 32;
constexpr std::size_t kNonceBytes = 16;

crypto::Fe25519 read_element(WireReader& reader) {
  const Bytes raw = reader.bytes(kGroupElementBytes);
  return crypto::Fe25519::from_bytes(raw);
}

}  // namespace

std::size_t AgreementParams::fuzzy_byte_budget() const {
  const auto max_bad_bits =
      static_cast<std::size_t>(std::floor(eta * static_cast<double>(seed_bits)));
  const std::size_t tolerated = std::max<std::size_t>(max_bad_bits, 1);
  // A bad seed bit corrupts one contiguous 2*l_b-bit segment, which can
  // straddle up to ceil(2*l_b/8) + 1 bytes.
  const std::size_t segment_bits = 2 * pad_bits();
  const std::size_t bytes_per_segment = (segment_bits + 7) / 8 + 1;
  return tolerated * bytes_per_segment;
}

PadSender::PadSender(const AgreementParams& params, crypto::Drbg& rng) : params_(params) {
  senders_.reserve(params_.seed_bits);
  pads_.reserve(params_.seed_bits);
  for (std::size_t i = 0; i < params_.seed_bits; ++i) {
    senders_.emplace_back(rng);
    pads_.emplace_back(rng.random_bits(params_.pad_bits()), rng.random_bits(params_.pad_bits()));
  }
}

Bytes PadSender::message_a() const {
  WireWriter w;
  w.u8(static_cast<std::uint8_t>(MessageType::kMsgA));
  w.u32(static_cast<std::uint32_t>(senders_.size()));
  for (const auto& sender : senders_) w.bytes(sender.first_message().to_bytes());
  return w.take();
}

Bytes PadSender::make_cipher_message(const Bytes& msg_b, crypto::Drbg& /*rng*/) const {
  WireReader reader(msg_b);
  if (reader.u8() != static_cast<std::uint8_t>(MessageType::kMsgB))
    throw WireError("make_cipher_message: expected MsgB");
  if (reader.u32() != senders_.size()) throw WireError("make_cipher_message: count mismatch");

  WireWriter w;
  w.u8(static_cast<std::uint8_t>(MessageType::kMsgE));
  w.u32(static_cast<std::uint32_t>(senders_.size()));
  for (std::size_t i = 0; i < senders_.size(); ++i) {
    const crypto::Fe25519 mb = read_element(reader);
    const Bytes p0 = pads_[i].first.to_bytes();
    const Bytes p1 = pads_[i].second.to_bytes();
    const auto [e0, e1] = senders_[i].encrypt(mb, p0, p1);
    w.blob(e0);
    w.blob(e1);
  }
  reader.expect_done();
  return w.take();
}

const BitVec& PadSender::pad(std::size_t i, bool bit) const {
  const auto& pair = pads_.at(i);
  return bit ? pair.second : pair.first;
}

PadReceiver::PadReceiver(const AgreementParams& params, const BitVec& seed, const Bytes& msg_a,
                         crypto::Drbg& rng)
    : params_(params) {
  if (seed.size() != params_.seed_bits)
    throw std::invalid_argument("PadReceiver: seed length mismatch");
  WireReader reader(msg_a);
  if (reader.u8() != static_cast<std::uint8_t>(MessageType::kMsgA))
    throw WireError("PadReceiver: expected MsgA");
  if (reader.u32() != params_.seed_bits) throw WireError("PadReceiver: count mismatch");
  receivers_.reserve(params_.seed_bits);
  for (std::size_t i = 0; i < params_.seed_bits; ++i) {
    const crypto::Fe25519 ma = read_element(reader);
    receivers_.emplace_back(rng, seed.get(i), ma);
  }
  reader.expect_done();
}

Bytes PadReceiver::message_b() const {
  WireWriter w;
  w.u8(static_cast<std::uint8_t>(MessageType::kMsgB));
  w.u32(static_cast<std::uint32_t>(receivers_.size()));
  for (const auto& receiver : receivers_) w.bytes(receiver.response().to_bytes());
  return w.take();
}

std::vector<BitVec> PadReceiver::receive_pads(const Bytes& msg_e) const {
  WireReader reader(msg_e);
  if (reader.u8() != static_cast<std::uint8_t>(MessageType::kMsgE))
    throw WireError("receive_pads: expected MsgE");
  if (reader.u32() != receivers_.size()) throw WireError("receive_pads: count mismatch");

  std::vector<BitVec> pads;
  pads.reserve(receivers_.size());
  for (const auto& receiver : receivers_) {
    const Bytes e0 = reader.blob();
    const Bytes e1 = reader.blob();
    const Bytes plain = receiver.decrypt({e0, e1});
    if (plain.size() != params_.pad_bytes()) throw WireError("receive_pads: bad pad length");
    pads.push_back(BitVec::from_bytes(plain, params_.pad_bits()));
  }
  reader.expect_done();
  return pads;
}

BitVec assemble_preliminary_key(const AgreementParams& params, const BitVec& seed,
                                const PadSender& own, const std::vector<BitVec>& received,
                                bool own_first) {
  if (seed.size() != params.seed_bits || received.size() != params.seed_bits)
    throw std::invalid_argument("assemble_preliminary_key: size mismatch");
  BitVec key;
  for (std::size_t i = 0; i < params.seed_bits; ++i) {
    const BitVec& own_pad = own.pad(i, seed.get(i));
    const BitVec& recv_pad = received[i];
    if (own_first) {
      key.append(own_pad);
      key.append(recv_pad);
    } else {
      key.append(recv_pad);
      key.append(own_pad);
    }
  }
  return key;
}

Bytes Challenge::serialize() const {
  WireWriter w;
  w.u8(static_cast<std::uint8_t>(MessageType::kChallenge));
  w.blob(helper);
  w.bytes(nonce);
  return w.take();
}

Challenge Challenge::parse(const AgreementParams& /*params*/, const Bytes& wire) {
  WireReader reader(wire);
  if (reader.u8() != static_cast<std::uint8_t>(MessageType::kChallenge))
    throw WireError("Challenge::parse: wrong type");
  Challenge c;
  c.helper = reader.blob();
  c.nonce = reader.bytes(kNonceBytes);
  reader.expect_done();
  return c;
}

Challenge make_challenge(const AgreementParams& params, const BitVec& key_m,
                         crypto::Drbg& rng) {
  const ecc::FuzzyCommitment fc(params.prelim_key_bits(), params.fuzzy_byte_budget());
  Challenge c;
  c.helper = fc.commit(key_m, rng);
  c.nonce.resize(kNonceBytes);
  rng.random_bytes(c.nonce);
  return c;
}

std::optional<BitVec> recover_key(const AgreementParams& params, const Challenge& challenge,
                                  const BitVec& key_r) {
  const ecc::FuzzyCommitment fc(params.prelim_key_bits(), params.fuzzy_byte_budget());
  auto recovered = fc.recover(challenge.helper, key_r);
  if (!recovered) return std::nullopt;

  // Enforce eta exactly: the RS byte budget is sized for the worst-case
  // byte alignment, so favorable alignments could correct *more* than
  // floor(eta * l_s) bad segments. The server therefore re-checks that the
  // recovered key differs from its own K_R in at most the tolerated number
  // of 2*l_b-bit segments — this makes eta the precise acceptance boundary
  // that Eq. (4) analyzes.
  const std::size_t segment_bits = 2 * params.pad_bits();
  const std::size_t tolerated = static_cast<std::size_t>(
      std::floor(params.eta * static_cast<double>(params.seed_bits)));
  std::size_t bad_segments = 0;
  for (std::size_t i = 0; i < params.seed_bits; ++i) {
    const BitVec a = recovered->slice(i * segment_bits, segment_bits);
    const BitVec b = key_r.slice(i * segment_bits, segment_bits);
    if (!(a == b)) ++bad_segments;
  }
  if (bad_segments > std::max<std::size_t>(tolerated, 1)) return std::nullopt;
  return recovered;
}

Bytes make_response(const Challenge& challenge, const BitVec& key) {
  const auto key_bytes = key.to_bytes();
  const crypto::Digest256 mac = crypto::hmac_sha256(key_bytes, challenge.nonce);
  WireWriter w;
  w.u8(static_cast<std::uint8_t>(MessageType::kResponse));
  w.bytes(mac);
  return w.take();
}

bool verify_response(const Challenge& challenge, const BitVec& key_m, const Bytes& response) {
  try {
    WireReader reader(response);
    if (reader.u8() != static_cast<std::uint8_t>(MessageType::kResponse)) return false;
    const Bytes mac = reader.bytes(32);
    reader.expect_done();
    const auto key_bytes = key_m.to_bytes();
    const crypto::Digest256 expected = crypto::hmac_sha256(key_bytes, challenge.nonce);
    crypto::Digest256 got{};
    std::copy(mac.begin(), mac.end(), got.begin());
    return crypto::digest_equal(expected, got);
  } catch (const WireError&) {
    return false;
  }
}

BitVec finalize_key(const AgreementParams& params, const BitVec& prelim_key) {
  return prelim_key.slice(0, params.key_bits);
}

}  // namespace wavekey::protocol
