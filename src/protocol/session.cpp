#include "protocol/session.hpp"

#include <chrono>

namespace wavekey::protocol {
namespace {

/// Runs f(), charges its real wall-clock cost to `party_clock`, returns its
/// result. Compute time is *measured*, not assumed, so the tau-deadline and
/// Table III numbers reflect this machine's actual crypto throughput.
template <typename F>
auto timed(double& party_clock, F&& f) {
  const auto start = std::chrono::steady_clock::now();
  auto result = f();
  const auto stop = std::chrono::steady_clock::now();
  party_clock += std::chrono::duration<double>(stop - start).count();
  return result;
}

/// Sends a message through the interceptor; returns the arrival time or
/// nullopt if the adversary dropped it.
std::optional<double> transmit(const SessionConfig& config, const Interceptor& interceptor,
                               const std::string& from, const std::string& to, MessageType type,
                               Bytes& payload, double send_time) {
  double extra = 0.0;
  if (interceptor) {
    InFlightMessage msg{from, to, type, std::move(payload), send_time};
    extra = interceptor(msg);
    payload = std::move(msg.payload);
    if (extra < 0.0) return std::nullopt;
  }
  return send_time + config.link_latency_s + extra;
}

}  // namespace

SessionResult run_key_agreement(const SessionConfig& config, const BitVec& mobile_seed,
                                const BitVec& server_seed, crypto::Drbg& mobile_rng,
                                crypto::Drbg& server_rng, const Interceptor& interceptor) {
  SessionResult result;
  const AgreementParams& params = config.params;
  const double deadline = config.gesture_window_s + config.tau_s;

  // Party clocks: both sides finish recording at gesture_window_s, then pay
  // their configured processing latency (pipeline + encoder inference).
  double t_mobile = config.gesture_window_s + config.mobile_compute_s;
  double t_server = config.gesture_window_s + config.server_compute_s;

  try {
    // --- Phase 1: both sides emit their batched OT first messages. ---
    const PadSender mobile_sender =
        timed(t_mobile, [&] { return PadSender(params, mobile_rng); });
    Bytes msg_a_m = timed(t_mobile, [&] { return mobile_sender.message_a(); });

    const PadSender server_sender =
        timed(t_server, [&] { return PadSender(params, server_rng); });
    Bytes msg_a_r = timed(t_server, [&] { return server_sender.message_a(); });

    const auto a_m_arrival = transmit(config, interceptor, "mobile", "server",
                                      MessageType::kMsgA, msg_a_m, t_mobile);
    const auto a_r_arrival = transmit(config, interceptor, "server", "mobile",
                                      MessageType::kMsgA, msg_a_r, t_server);
    if (!a_m_arrival || !a_r_arrival) {
      result.failure = FailureReason::kMalformedMessage;
      return result;
    }

    // Deadline on M_A,R at the mobile (SIV-D2).
    if (*a_r_arrival > deadline) {
      result.failure = FailureReason::kDeadlineExceeded;
      return result;
    }
    t_mobile = std::max(t_mobile, *a_r_arrival);
    t_server = std::max(t_server, *a_m_arrival);

    // --- Phase 2: OT responses (choices = own key-seed bits). ---
    const PadReceiver mobile_receiver = timed(
        t_mobile, [&] { return PadReceiver(params, mobile_seed, msg_a_r, mobile_rng); });
    Bytes msg_b_m = timed(t_mobile, [&] { return mobile_receiver.message_b(); });

    const PadReceiver server_receiver = timed(
        t_server, [&] { return PadReceiver(params, server_seed, msg_a_m, server_rng); });
    Bytes msg_b_r = timed(t_server, [&] { return server_receiver.message_b(); });

    const auto b_m_arrival = transmit(config, interceptor, "mobile", "server",
                                      MessageType::kMsgB, msg_b_m, t_mobile);
    const auto b_r_arrival = transmit(config, interceptor, "server", "mobile",
                                      MessageType::kMsgB, msg_b_r, t_server);
    if (!b_m_arrival || !b_r_arrival) {
      result.failure = FailureReason::kMalformedMessage;
      return result;
    }

    // Deadline on M_B,M at the server.
    if (*b_m_arrival > deadline) {
      result.failure = FailureReason::kDeadlineExceeded;
      return result;
    }
    t_mobile = std::max(t_mobile, *b_r_arrival);
    t_server = std::max(t_server, *b_m_arrival);

    // --- Phase 3: ciphertext pair messages. ---
    Bytes msg_e_m =
        timed(t_mobile, [&] { return mobile_sender.make_cipher_message(msg_b_r, mobile_rng); });
    Bytes msg_e_r =
        timed(t_server, [&] { return server_sender.make_cipher_message(msg_b_m, server_rng); });

    const auto e_m_arrival = transmit(config, interceptor, "mobile", "server",
                                      MessageType::kMsgE, msg_e_m, t_mobile);
    const auto e_r_arrival = transmit(config, interceptor, "server", "mobile",
                                      MessageType::kMsgE, msg_e_r, t_server);
    if (!e_m_arrival || !e_r_arrival) {
      result.failure = FailureReason::kMalformedMessage;
      return result;
    }
    t_mobile = std::max(t_mobile, *e_r_arrival);
    t_server = std::max(t_server, *e_m_arrival);

    // --- Phase 4: preliminary keys. ---
    const std::vector<BitVec> mobile_received =
        timed(t_mobile, [&] { return mobile_receiver.receive_pads(msg_e_r); });
    const BitVec key_m = timed(t_mobile, [&] {
      return assemble_preliminary_key(params, mobile_seed, mobile_sender, mobile_received,
                                      /*own_first=*/true);
    });

    const std::vector<BitVec> server_received =
        timed(t_server, [&] { return server_receiver.receive_pads(msg_e_m); });
    const BitVec key_r = timed(t_server, [&] {
      return assemble_preliminary_key(params, server_seed, server_sender, server_received,
                                      /*own_first=*/false);
    });

    // --- Phase 5: reconciliation challenge. ---
    const Challenge challenge =
        timed(t_mobile, [&] { return make_challenge(params, key_m, mobile_rng); });
    Bytes challenge_wire = challenge.serialize();
    const auto ch_arrival = transmit(config, interceptor, "mobile", "server",
                                     MessageType::kChallenge, challenge_wire, t_mobile);
    if (!ch_arrival) {
      result.failure = FailureReason::kMalformedMessage;
      return result;
    }
    t_server = std::max(t_server, *ch_arrival);

    const Challenge server_challenge = Challenge::parse(params, challenge_wire);
    const auto recovered =
        timed(t_server, [&] { return recover_key(params, server_challenge, key_r); });
    if (!recovered) {
      result.failure = FailureReason::kReconciliationFailed;
      return result;
    }

    // --- Phase 6: HMAC confirmation. ---
    Bytes response = timed(t_server, [&] { return make_response(server_challenge, *recovered); });
    const auto resp_arrival = transmit(config, interceptor, "server", "mobile",
                                       MessageType::kResponse, response, t_server);
    if (!resp_arrival) {
      result.failure = FailureReason::kMalformedMessage;
      return result;
    }
    t_mobile = std::max(t_mobile, *resp_arrival);

    const bool ok = timed(t_mobile, [&] {
      return verify_response(challenge, key_m, response) ? 1 : 0;
    });
    if (!ok) {
      result.failure = FailureReason::kBadResponse;
      return result;
    }

    result.success = true;
    result.mobile_key = finalize_key(params, key_m);
    result.server_key = finalize_key(params, *recovered);
    result.elapsed_s = std::max(t_mobile, t_server);
    return result;
  } catch (const WireError&) {
    result.failure = FailureReason::kMalformedMessage;
    return result;
  } catch (const std::invalid_argument&) {
    result.failure = FailureReason::kMalformedMessage;
    return result;
  }
}

}  // namespace wavekey::protocol
