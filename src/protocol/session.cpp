#include "protocol/session.hpp"

#include <chrono>
#include <limits>

#include "protocol/faulty_channel.hpp"

namespace wavekey::protocol {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/// Runs f(), charges its real wall-clock cost to `party_clock`, returns its
/// result. Compute time is *measured*, not assumed, so the tau-deadline and
/// Table III numbers reflect this machine's actual crypto throughput.
template <typename F>
auto timed(double& party_clock, F&& f) {
  const auto start = std::chrono::steady_clock::now();
  auto result = f();
  const auto stop = std::chrono::steady_clock::now();
  party_clock += std::chrono::duration<double>(stop - start).count();
  return result;
}

struct TransmitOutcome {
  std::optional<double> arrival;  ///< arrival time at the receiver
  FailureReason failure = FailureReason::kNone;
};

/// One send of a protocol message. `sender_clock` advances by any time the
/// sender spends blocked on the send (retransmission waits under ARQ);
/// `payload` is replaced with the bytes the receiver actually got.
/// `deadline` < 0 means the message is not deadline-bound.
class Transport {
 public:
  virtual ~Transport() = default;
  virtual TransmitOutcome send(const char* from, const char* to, MessageType type, Bytes& payload,
                               double& sender_clock, double deadline) = 0;
  virtual ArqStats stats() const { return {}; }
};

/// The paper's single-shot channel: fixed latency, one delivery, adversary
/// interposition. A drop is final.
class DirectTransport : public Transport {
 public:
  DirectTransport(const SessionConfig& config, const Interceptor& interceptor)
      : config_(config), interceptor_(interceptor) {}

  TransmitOutcome send(const char* from, const char* to, MessageType type, Bytes& payload,
                       double& sender_clock, double /*deadline*/) override {
    double extra = 0.0;
    if (interceptor_) {
      InFlightMessage msg{from, to, type, std::move(payload), sender_clock};
      extra = interceptor_(msg);
      payload = std::move(msg.payload);
      if (extra < 0.0) return {std::nullopt, FailureReason::kMessageDropped};
    }
    return {sender_clock + config_.link_latency_s + extra, FailureReason::kNone};
  }

 private:
  const SessionConfig& config_;
  const Interceptor& interceptor_;
};

/// Stop-and-wait ARQ over a FaultyChannel: each message becomes a
/// sequence-numbered CRC-tagged frame; the sender retransmits on a timer
/// with bounded exponential backoff until an ACK arrives, the retry budget
/// is spent, or — for deadline-bound messages — the next retransmission
/// could no longer arrive inside the tau budget (fail fast, kTimeout).
class ArqTransport : public Transport {
 public:
  ArqTransport(const SessionConfig& config, const ArqConfig& arq, FaultyChannel& channel,
               const Interceptor& interceptor)
      : config_(config), arq_(arq), channel_(channel), interceptor_(interceptor) {}

  TransmitOutcome send(const char* from, const char* to, MessageType type, Bytes& payload,
                       double& sender_clock, double deadline) override {
    const std::uint32_t seq = next_seq_++;
    const Bytes frame = encode_data_frame(seq, type, payload);
    const std::size_t max_sends = 1 + arq_.max_retransmits;

    double rto = arq_.initial_rto_s;
    double send_t = sender_clock;
    double first_delivery = kInf;
    double first_ack = kInf;
    double sender_done = sender_clock;
    bool deadline_cut = false;
    Bytes delivered_payload;
    std::size_t sends = 0;

    while (true) {
      ++sends;
      ++stats_.data_frames_sent;
      if (sends > 1) ++stats_.retransmissions;

      const InFlightMessage msg{from, to, type, frame, send_t};
      for (const Delivery& d : channel_.transmit(msg, config_.link_latency_s, interceptor_)) {
        const std::optional<ArqFrame> decoded = decode_frame(d.payload);
        if (!decoded || decoded->kind != FrameKind::kData || decoded->seq != seq ||
            decoded->type != type) {
          ++stats_.corrupt_frames_dropped;
          continue;
        }
        if (first_delivery == kInf) {
          first_delivery = d.arrival_s;
          delivered_payload = decoded->payload;
        } else {
          ++stats_.duplicate_frames;
        }
        // The receiver acknowledges every valid copy; ACKs ride the same
        // faulty link in the reverse direction.
        ++stats_.acks_sent;
        const InFlightMessage ack{to, from, type, encode_ack_frame(seq), d.arrival_s};
        for (const Delivery& a : channel_.transmit(ack, config_.link_latency_s, interceptor_)) {
          const std::optional<ArqFrame> ack_decoded = decode_frame(a.payload);
          if (!ack_decoded || ack_decoded->kind != FrameKind::kAck || ack_decoded->seq != seq) {
            ++stats_.corrupt_frames_dropped;
            continue;
          }
          first_ack = std::min(first_ack, a.arrival_s);
        }
      }

      const double timer_fires = send_t + rto;
      if (first_ack <= timer_fires) {
        sender_done = first_ack;  // ACK stopped the timer
        break;
      }
      sender_done = timer_fires;  // sender waited out the full timer
      if (sends >= max_sends) break;
      if (deadline >= 0.0 && timer_fires + config_.link_latency_s > deadline) {
        deadline_cut = true;  // a retransmission could not arrive in budget
        break;
      }
      send_t = timer_fires;
      rto = std::min(rto * arq_.backoff, arq_.max_rto_s);
    }

    sender_clock = std::max(sender_clock, sender_done);
    if (first_delivery != kInf) {
      payload = std::move(delivered_payload);
      return {first_delivery, FailureReason::kNone};
    }
    ++stats_.messages_lost;
    return {std::nullopt,
            deadline_cut ? FailureReason::kTimeout : FailureReason::kMessageDropped};
  }

  ArqStats stats() const override { return stats_; }

 private:
  const SessionConfig& config_;
  const ArqConfig& arq_;
  FaultyChannel& channel_;
  const Interceptor& interceptor_;
  std::uint32_t next_seq_ = 0;
  ArqStats stats_;
};

/// The six protocol phases, written once against the Transport interface.
SessionResult run_session(const SessionConfig& config, const BitVec& mobile_seed,
                          const BitVec& server_seed, crypto::Drbg& mobile_rng,
                          crypto::Drbg& server_rng, Transport& transport) {
  SessionResult result;
  const AgreementParams& params = config.params;
  const double deadline = config.gesture_window_s + config.tau_s;

  // Party clocks: both sides finish recording at gesture_window_s, then pay
  // their configured processing latency (pipeline + encoder inference).
  double t_mobile = config.gesture_window_s + config.mobile_compute_s;
  double t_server = config.gesture_window_s + config.server_compute_s;

  const auto fail = [&](FailureReason reason) {
    result.failure = reason;
    result.elapsed_s = std::max(t_mobile, t_server);
    result.arq = transport.stats();
    return result;
  };

  try {
    // --- Phase 1: both sides emit their batched OT first messages. ---
    const PadSender mobile_sender =
        timed(t_mobile, [&] { return PadSender(params, mobile_rng); });
    Bytes msg_a_m = timed(t_mobile, [&] { return mobile_sender.message_a(); });

    const PadSender server_sender =
        timed(t_server, [&] { return PadSender(params, server_rng); });
    Bytes msg_a_r = timed(t_server, [&] { return server_sender.message_a(); });

    const TransmitOutcome a_m =
        transport.send("mobile", "server", MessageType::kMsgA, msg_a_m, t_mobile, -1.0);
    const TransmitOutcome a_r =
        transport.send("server", "mobile", MessageType::kMsgA, msg_a_r, t_server, deadline);
    if (!a_m.arrival) return fail(a_m.failure);
    if (!a_r.arrival) return fail(a_r.failure);

    // Deadline on M_A,R at the mobile (SIV-D2).
    result.critical_arrival_s = *a_r.arrival;
    if (*a_r.arrival > deadline) return fail(FailureReason::kDeadlineExceeded);
    t_mobile = std::max(t_mobile, *a_r.arrival);
    t_server = std::max(t_server, *a_m.arrival);

    // --- Phase 2: OT responses (choices = own key-seed bits). ---
    const PadReceiver mobile_receiver = timed(
        t_mobile, [&] { return PadReceiver(params, mobile_seed, msg_a_r, mobile_rng); });
    Bytes msg_b_m = timed(t_mobile, [&] { return mobile_receiver.message_b(); });

    const PadReceiver server_receiver = timed(
        t_server, [&] { return PadReceiver(params, server_seed, msg_a_m, server_rng); });
    Bytes msg_b_r = timed(t_server, [&] { return server_receiver.message_b(); });

    const TransmitOutcome b_m =
        transport.send("mobile", "server", MessageType::kMsgB, msg_b_m, t_mobile, deadline);
    const TransmitOutcome b_r =
        transport.send("server", "mobile", MessageType::kMsgB, msg_b_r, t_server, -1.0);
    if (!b_m.arrival) return fail(b_m.failure);
    if (!b_r.arrival) return fail(b_r.failure);

    // Deadline on M_B,M at the server.
    result.critical_arrival_s = std::max(result.critical_arrival_s, *b_m.arrival);
    if (*b_m.arrival > deadline) return fail(FailureReason::kDeadlineExceeded);
    t_mobile = std::max(t_mobile, *b_r.arrival);
    t_server = std::max(t_server, *b_m.arrival);

    // --- Phase 3: ciphertext pair messages. ---
    Bytes msg_e_m =
        timed(t_mobile, [&] { return mobile_sender.make_cipher_message(msg_b_r, mobile_rng); });
    Bytes msg_e_r =
        timed(t_server, [&] { return server_sender.make_cipher_message(msg_b_m, server_rng); });

    const TransmitOutcome e_m =
        transport.send("mobile", "server", MessageType::kMsgE, msg_e_m, t_mobile, -1.0);
    const TransmitOutcome e_r =
        transport.send("server", "mobile", MessageType::kMsgE, msg_e_r, t_server, -1.0);
    if (!e_m.arrival) return fail(e_m.failure);
    if (!e_r.arrival) return fail(e_r.failure);
    t_mobile = std::max(t_mobile, *e_r.arrival);
    t_server = std::max(t_server, *e_m.arrival);

    // --- Phase 4: preliminary keys. ---
    const std::vector<BitVec> mobile_received =
        timed(t_mobile, [&] { return mobile_receiver.receive_pads(msg_e_r); });
    const BitVec key_m = timed(t_mobile, [&] {
      return assemble_preliminary_key(params, mobile_seed, mobile_sender, mobile_received,
                                      /*own_first=*/true);
    });

    const std::vector<BitVec> server_received =
        timed(t_server, [&] { return server_receiver.receive_pads(msg_e_m); });
    const BitVec key_r = timed(t_server, [&] {
      return assemble_preliminary_key(params, server_seed, server_sender, server_received,
                                      /*own_first=*/false);
    });

    // --- Phase 5: reconciliation challenge. ---
    const Challenge challenge =
        timed(t_mobile, [&] { return make_challenge(params, key_m, mobile_rng); });
    Bytes challenge_wire = challenge.serialize();
    const TransmitOutcome ch = transport.send("mobile", "server", MessageType::kChallenge,
                                              challenge_wire, t_mobile, -1.0);
    if (!ch.arrival) return fail(ch.failure);
    t_server = std::max(t_server, *ch.arrival);

    const Challenge server_challenge = Challenge::parse(params, challenge_wire);
    const auto recovered =
        timed(t_server, [&] { return recover_key(params, server_challenge, key_r); });
    if (!recovered) return fail(FailureReason::kReconciliationFailed);

    // --- Phase 6: HMAC confirmation. ---
    Bytes response = timed(t_server, [&] { return make_response(server_challenge, *recovered); });
    const TransmitOutcome resp =
        transport.send("server", "mobile", MessageType::kResponse, response, t_server, -1.0);
    if (!resp.arrival) return fail(resp.failure);
    t_mobile = std::max(t_mobile, *resp.arrival);

    const bool ok = timed(t_mobile, [&] {
      return verify_response(challenge, key_m, response) ? 1 : 0;
    });
    if (!ok) return fail(FailureReason::kBadResponse);

    result.success = true;
    result.mobile_key = finalize_key(params, key_m);
    result.server_key = finalize_key(params, *recovered);
    result.elapsed_s = std::max(t_mobile, t_server);
    result.arq = transport.stats();
    return result;
  } catch (const WireError&) {
    return fail(FailureReason::kMalformedMessage);
  } catch (const std::invalid_argument&) {
    return fail(FailureReason::kMalformedMessage);
  }
}

}  // namespace

const char* failure_reason_name(FailureReason reason) {
  switch (reason) {
    case FailureReason::kNone: return "none";
    case FailureReason::kDeadlineExceeded: return "deadline_exceeded";
    case FailureReason::kReconciliationFailed: return "reconciliation_failed";
    case FailureReason::kBadResponse: return "bad_response";
    case FailureReason::kMalformedMessage: return "malformed_message";
    case FailureReason::kMessageDropped: return "message_dropped";
    case FailureReason::kTimeout: return "timeout";
  }
  return "unknown";
}

SessionResult run_key_agreement(const SessionConfig& config, const BitVec& mobile_seed,
                                const BitVec& server_seed, crypto::Drbg& mobile_rng,
                                crypto::Drbg& server_rng, const Interceptor& interceptor) {
  DirectTransport transport(config, interceptor);
  return run_session(config, mobile_seed, server_seed, mobile_rng, server_rng, transport);
}

SessionResult run_key_agreement_arq(const SessionConfig& config, const ArqConfig& arq,
                                    FaultyChannel& channel, const BitVec& mobile_seed,
                                    const BitVec& server_seed, crypto::Drbg& mobile_rng,
                                    crypto::Drbg& server_rng, const Interceptor& interceptor) {
  ArqTransport transport(config, arq, channel, interceptor);
  return run_session(config, mobile_seed, server_seed, mobile_rng, server_rng, transport);
}

}  // namespace wavekey::protocol
