#pragma once

// The WaveKey key-agreement protocol (SIV-D2, Fig. 4): a bidirectional
// batched 1-out-of-2 OT followed by fuzzy-commitment reconciliation and an
// HMAC key confirmation.
//
// Roles. Both parties hold an l_s-bit key-seed (S_M / S_R). Each party
// generates l_s pairs of random l_b-bit pads and *obliviously* serves them
// to the other: the receiver's seed bit i selects which pad of pair i it
// learns. The preliminary keys interleave own-choice pads with received
// pads,
//   K_M = x_1^{sm_1} || y_1^{sm_1} || ... || x_{l_s}^{sm_{l_s}} || y_{l_s}^{sm_{l_s}}
//   K_R = x_1^{sr_1} || y_1^{sr_1} || ... ,
// so segment i agrees iff sm_i == sr_i: seed agreement transfers to key
// agreement segment-wise, and an eavesdropper — who sees only OT traffic —
// learns nothing about either pad stream. Reconciliation: the mobile sends a
// fuzzy commitment of K_M sized for eta; the server recovers exactly K_M
// from its own K_R and answers HMAC(N, K). Message batching follows the
// paper: all l_s OT instances share one M_A / M_B / M_E message per
// direction.
//
// The classes are pure message-in/message-out state machines; transport,
// timing (the tau deadline), and adversaries live in protocol/session.hpp.
//
// Thread-safety: each PadSender/PadReceiver owns only per-instance state
// and touches no globals; the free functions are pure. Distinct instances
// and distinct argument sets are safe to drive from distinct threads
// concurrently; a single instance is externally synchronized. This
// reentrancy is what lets core::PairingEngine run N sessions in parallel.

#include <optional>

#include "crypto/drbg.hpp"
#include "crypto/oblivious_transfer.hpp"
#include "ecc/fuzzy_commitment.hpp"
#include "numeric/bitvec.hpp"
#include "protocol/wire.hpp"

namespace wavekey::protocol {

/// Protocol-level parameters, derived from the WaveKey hyperparameters.
struct AgreementParams {
  std::size_t seed_bits = 48;  ///< l_s
  std::size_t key_bits = 256;  ///< l_k (final key length)
  double eta = 0.10;           ///< ECC error-correction rate

  std::size_t pad_bits() const { return (key_bits + 2 * seed_bits - 1) / (2 * seed_bits); }
  std::size_t pad_bytes() const { return (pad_bits() + 7) / 8; }
  /// Preliminary-key length: 2 * l_s * l_b bits (>= l_k; truncated at the end).
  std::size_t prelim_key_bits() const { return 2 * seed_bits * pad_bits(); }
  /// Worst-case corrupted bytes the fuzzy commitment must absorb: every
  /// tolerated seed-bit mismatch corrupts one 2*l_b-bit segment.
  std::size_t fuzzy_byte_budget() const;
};

/// OT-sender role for one party's own pad pairs (x or y stream).
class PadSender {
 public:
  PadSender(const AgreementParams& params, crypto::Drbg& rng);

  /// The batched first message (M_A direction).
  Bytes message_a() const;

  /// Given the peer's batched response (M_B), produces the batched
  /// ciphertext message (M_E). Throws WireError on malformed input.
  Bytes make_cipher_message(const Bytes& msg_b, crypto::Drbg& rng) const;

  /// The party's own pad i, variant `bit`.
  const BitVec& pad(std::size_t i, bool bit) const;

 private:
  AgreementParams params_;
  std::vector<crypto::OtSender> senders_;
  std::vector<std::pair<BitVec, BitVec>> pads_;
};

/// OT-receiver role against the peer's pad stream, choices = own key-seed.
class PadReceiver {
 public:
  /// Consumes the peer's M_A. Throws WireError on malformed input.
  PadReceiver(const AgreementParams& params, const BitVec& seed, const Bytes& msg_a,
              crypto::Drbg& rng);

  /// The batched response message (M_B).
  Bytes message_b() const;

  /// Decrypts the chosen pads from the peer's M_E.
  std::vector<BitVec> receive_pads(const Bytes& msg_e) const;

 private:
  AgreementParams params_;
  std::vector<crypto::OtReceiver> receivers_;
};

/// Assembles the preliminary key K = own_1 || recv_1 || own_2 || recv_2 ...
/// where own_i is this party's pad of pair i selected by its own seed bit
/// and recv_i the pad received through OT.
BitVec assemble_preliminary_key(const AgreementParams& params, const BitVec& seed,
                                const PadSender& own, const std::vector<BitVec>& received,
                                bool own_first);

/// Mobile-side reconciliation: fuzzy-commit K_M, emit Challenge = helper||N.
struct Challenge {
  Bytes helper;
  Bytes nonce;  ///< 16 bytes

  Bytes serialize() const;
  static Challenge parse(const AgreementParams& params, const Bytes& wire);
};

/// Builds the mobile's challenge for its preliminary key.
Challenge make_challenge(const AgreementParams& params, const BitVec& key_m, crypto::Drbg& rng);

/// Server side: recovers K_M from the challenge and its own K_R; returns
/// nullopt if reconciliation fails (seed disagreement beyond eta).
std::optional<BitVec> recover_key(const AgreementParams& params, const Challenge& challenge,
                                  const BitVec& key_r);

/// Response = HMAC-SHA256(nonce) keyed with the recovered key.
Bytes make_response(const Challenge& challenge, const BitVec& key);

/// Mobile-side verification of the response against its own key.
bool verify_response(const Challenge& challenge, const BitVec& key_m, const Bytes& response);

/// Final session key: K truncated to l_k bits.
BitVec finalize_key(const AgreementParams& params, const BitVec& prelim_key);

}  // namespace wavekey::protocol
