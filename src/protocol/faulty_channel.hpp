#pragma once

// Seeded lossy-link model for the key-agreement transport. Each direction of
// the link gets its own fault profile: packet loss, bit corruption,
// duplication, explicit reordering hold-back, and latency jitter with a
// configurable distribution. The model composes with the adversary
// `Interceptor` — every *physical frame copy* (original, retransmission, or
// duplicate) is offered to the adversary after the channel faults are
// applied, so an attacker can be stacked on top of a bad link.
//
// Two ways to use it:
//  * `transmit()` — the full model; returns every delivery of a frame with
//    its arrival time. This is what the ARQ transport in session.cpp drives.
//  * `as_interceptor()` — adapter for the legacy single-shot
//    `run_key_agreement` path, which models one delivery per message: loss
//    maps to a drop, corruption mutates the payload, jitter maps to delay.
//    Duplication and reordering are inexpressible through that interface and
//    are ignored by the adapter (the ARQ path exercises them).
//
// Thread-safety: a FaultyChannel advances seeded PRNG streams on every
// transmit, so it is externally synchronized — give each session its own
// channel instance (the reproducibility of a fault trace depends on a
// single consumer draining the stream in order).

#include <vector>

#include "numeric/rng.hpp"
#include "protocol/session.hpp"

namespace wavekey::protocol {

/// Shape of the latency-jitter distribution.
enum class JitterDistribution : std::uint8_t {
  kNone,         ///< no jitter
  kUniform,      ///< U[0, jitter_s)
  kExponential,  ///< Exp with mean jitter_s (heavy-ish tail)
  kNormal,       ///< |N(0, jitter_s)| (folded normal)
};

/// Fault profile of one link direction.
struct LinkFaultConfig {
  double loss = 0.0;               ///< P(a frame copy never arrives)
  double corrupt = 0.0;            ///< P(a delivered copy has flipped bits)
  std::size_t corrupt_bits_max = 4;///< 1..max bits flipped per corrupted copy
  double duplicate = 0.0;          ///< P(an extra copy is delivered)
  double reorder = 0.0;            ///< P(a copy is held back past its successors)
  double reorder_hold_s = 0.020;   ///< extra hold time for reordered copies
  JitterDistribution jitter = JitterDistribution::kNone;
  double jitter_s = 0.0;           ///< jitter scale (see JitterDistribution)
};

/// Full channel configuration: independent per-direction profiles + seed.
struct FaultyChannelConfig {
  LinkFaultConfig mobile_to_server{};
  LinkFaultConfig server_to_mobile{};
  std::uint64_t seed = 1;

  /// Same profile in both directions.
  static FaultyChannelConfig symmetric(const LinkFaultConfig& faults, std::uint64_t seed = 1);
  /// Typical indoor WiFi: light loss, a few ms of jitter.
  static FaultyChannelConfig wifi_indoor(std::uint64_t seed = 1);
  /// Congested 2.4 GHz band: heavy loss, duplication, 10 ms-scale jitter.
  static FaultyChannelConfig congested(std::uint64_t seed = 1);
};

/// One delivered copy of a transmitted frame.
struct Delivery {
  double arrival_s = 0.0;
  Bytes payload;
};

/// Deterministic (seeded) fault-injecting link. Not thread-safe; one
/// instance models one session's link.
class FaultyChannel {
 public:
  explicit FaultyChannel(const FaultyChannelConfig& config);

  /// Sends one frame at `msg.send_time`; returns every copy that arrives,
  /// sorted by arrival time (possibly empty). `base_latency_s` is the
  /// fault-free one-way latency; `adversary` (optional) sees each surviving
  /// copy and may tamper, delay, or drop it.
  std::vector<Delivery> transmit(const InFlightMessage& msg, double base_latency_s,
                                 const Interceptor& adversary = {});

  /// Adapter for the single-shot session path (see file comment).
  Interceptor as_interceptor();

  const FaultyChannelConfig& config() const { return config_; }

 private:
  const LinkFaultConfig& faults_for(const std::string& from) const;

  FaultyChannelConfig config_;
  Rng rng_;
};

}  // namespace wavekey::protocol
