#pragma once

// Binary wire helpers for the key-agreement messages. Fixed little-endian
// framing, length-prefixed fields, explicit type tags — malformed or
// truncated messages throw WireError, which the protocol engine converts
// into a clean session abort (never undefined behaviour on attacker input).
//
// Thread-safety: readers and writers are cheap single-use value objects
// with no shared state; confine each instance to one thread. Distinct
// instances on distinct buffers are trivially safe in parallel.

#include <cstdint>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

namespace wavekey::protocol {

using Bytes = std::vector<std::uint8_t>;

class WireError : public std::runtime_error {
 public:
  explicit WireError(const std::string& what) : std::runtime_error(what) {}
};

/// Sequential writer into a byte buffer. Two modes:
///  - owned (default ctor): writes into an internal vector, handed out by
///    take();
///  - external sink: writes append into a caller-provided vector (typically
///    a pooled buffer from runtime::BufferPool), so the steady-state frame
///    path allocates nothing. take() is a contract violation in this mode.
class WireWriter {
 public:
  WireWriter() = default;
  explicit WireWriter(Bytes* sink) : sink_(sink) {}

  void u8(std::uint8_t v) { buf().push_back(v); }
  void u32(std::uint32_t v);
  void u64(std::uint64_t v);
  void bytes(std::span<const std::uint8_t> data);          ///< raw, no length
  void blob(std::span<const std::uint8_t> data);           ///< u32 length + raw
  Bytes take();  ///< owned mode only; throws WireError on a sink writer

 private:
  Bytes& buf() { return sink_ ? *sink_ : owned_; }
  Bytes owned_;
  Bytes* sink_ = nullptr;
};

/// Sequential reader over a byte buffer; throws WireError on underrun.
/// view/view_blob return subspans of the source buffer — zero-copy, valid
/// only while the source outlives them unmodified. bytes/blob are the
/// owning (copying) forms for fields that must escape the buffer.
class WireReader {
 public:
  explicit WireReader(std::span<const std::uint8_t> data) : data_(data) {}

  std::uint8_t u8();
  std::uint32_t u32();
  std::uint64_t u64();
  std::span<const std::uint8_t> view(std::size_t n);  ///< raw, exact n, no copy
  std::span<const std::uint8_t> view_blob();          ///< u32 length + raw, no copy
  Bytes bytes(std::size_t n);  ///< raw, exact n (copies)
  Bytes blob();                ///< u32 length + raw (copies)
  bool done() const { return pos_ == data_.size(); }
  void expect_done() const;

 private:
  std::span<const std::uint8_t> data_;
  std::size_t pos_ = 0;
};

/// Message type tags of the WaveKey key-agreement protocol (Fig. 4).
enum class MessageType : std::uint8_t {
  kMsgA = 1,       ///< batched OT first messages  (M_A,M / M_A,R)
  kMsgB = 2,       ///< batched OT responses        (M_B,M / M_B,R)
  kMsgE = 3,       ///< batched OT ciphertext pairs (M_E,M / M_E,R)
  kChallenge = 4,  ///< ECC helper + nonce
  kResponse = 5,   ///< HMAC(nonce, K)
  // Post-establishment access protocol (src/server, DESIGN.md §9): requests
  // against the backend vault keyed by the session established above.
  kAccessRequest = 6,  ///< session id, epoch, counter, nonce, payload, HMAC
  kAccessGrant = 7,    ///< session id, counter, status, HMAC
  // Gateway <-> vault-cluster envelopes (src/server/cluster.hpp): access
  // requests multiplexed over the CRC-framed WAN transport, retried under a
  // stable request id so retransmissions stay idempotent.
  kClusterRequest = 8,   ///< request id, tenant, attempt, inner AccessRequest
  kClusterResponse = 9,  ///< request id, status, inner AccessGrant
  // Offline-grant subsystem (src/server/grants.hpp): compact signed
  // capability an actuator can verify with no vault connectivity.
  kGrantToken = 10,  ///< tenant, tag, actuator, counter, scope, epoch, expiry, HMAC
};

}  // namespace wavekey::protocol
