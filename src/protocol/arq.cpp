#include "protocol/arq.hpp"

#include <array>

namespace wavekey::protocol {
namespace {

std::array<std::uint32_t, 256> make_crc_table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int k = 0; k < 8; ++k) c = (c & 1u) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
    table[i] = c;
  }
  return table;
}

}  // namespace

std::uint32_t crc32(std::span<const std::uint8_t> data) {
  static const std::array<std::uint32_t, 256> table = make_crc_table();
  std::uint32_t c = 0xFFFFFFFFu;
  for (std::uint8_t b : data) c = table[(c ^ b) & 0xFFu] ^ (c >> 8);
  return c ^ 0xFFFFFFFFu;
}

ArqStats& ArqStats::operator+=(const ArqStats& o) {
  data_frames_sent += o.data_frames_sent;
  retransmissions += o.retransmissions;
  acks_sent += o.acks_sent;
  corrupt_frames_dropped += o.corrupt_frames_dropped;
  duplicate_frames += o.duplicate_frames;
  messages_lost += o.messages_lost;
  return *this;
}

Bytes encode_data_frame(std::uint32_t seq, MessageType type,
                        std::span<const std::uint8_t> payload) {
  WireWriter w;
  w.u8(static_cast<std::uint8_t>(FrameKind::kData));
  w.u32(seq);
  w.u8(static_cast<std::uint8_t>(type));
  w.blob(payload);
  Bytes body = w.take();
  WireWriter tagged;
  tagged.bytes(body);
  tagged.u32(crc32(body));
  return tagged.take();
}

Bytes encode_ack_frame(std::uint32_t seq) {
  WireWriter w;
  w.u8(static_cast<std::uint8_t>(FrameKind::kAck));
  w.u32(seq);
  w.u8(0);
  w.blob(Bytes{});
  Bytes body = w.take();
  WireWriter tagged;
  tagged.bytes(body);
  tagged.u32(crc32(body));
  return tagged.take();
}

std::optional<ArqFrame> decode_frame(std::span<const std::uint8_t> wire) {
  constexpr std::size_t kTagBytes = 4;
  if (wire.size() < kTagBytes + 1) return std::nullopt;
  const std::span<const std::uint8_t> body = wire.first(wire.size() - kTagBytes);
  try {
    WireReader tag_reader(wire.subspan(wire.size() - kTagBytes));
    if (tag_reader.u32() != crc32(body)) return std::nullopt;

    WireReader r(body);
    ArqFrame frame;
    const std::uint8_t kind = r.u8();
    if (kind != static_cast<std::uint8_t>(FrameKind::kData) &&
        kind != static_cast<std::uint8_t>(FrameKind::kAck))
      return std::nullopt;
    frame.kind = static_cast<FrameKind>(kind);
    frame.seq = r.u32();
    frame.type = static_cast<MessageType>(r.u8());
    frame.payload = r.blob();
    r.expect_done();
    if (frame.kind == FrameKind::kAck && !frame.payload.empty()) return std::nullopt;
    return frame;
  } catch (const WireError&) {
    return std::nullopt;
  }
}

}  // namespace wavekey::protocol
