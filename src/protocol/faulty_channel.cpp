#include "protocol/faulty_channel.hpp"

#include <algorithm>
#include <cmath>

namespace wavekey::protocol {

FaultyChannelConfig FaultyChannelConfig::symmetric(const LinkFaultConfig& faults,
                                                   std::uint64_t seed) {
  FaultyChannelConfig c;
  c.mobile_to_server = faults;
  c.server_to_mobile = faults;
  c.seed = seed;
  return c;
}

FaultyChannelConfig FaultyChannelConfig::wifi_indoor(std::uint64_t seed) {
  LinkFaultConfig f;
  f.loss = 0.02;
  f.corrupt = 0.005;
  f.duplicate = 0.005;
  f.jitter = JitterDistribution::kExponential;
  f.jitter_s = 0.003;
  return symmetric(f, seed);
}

FaultyChannelConfig FaultyChannelConfig::congested(std::uint64_t seed) {
  LinkFaultConfig f;
  f.loss = 0.15;
  f.corrupt = 0.02;
  f.duplicate = 0.03;
  f.reorder = 0.05;
  f.jitter = JitterDistribution::kExponential;
  f.jitter_s = 0.010;
  return symmetric(f, seed);
}

FaultyChannel::FaultyChannel(const FaultyChannelConfig& config)
    : config_(config), rng_(config.seed) {}

const LinkFaultConfig& FaultyChannel::faults_for(const std::string& from) const {
  return from == "mobile" ? config_.mobile_to_server : config_.server_to_mobile;
}

namespace {

double sample_jitter(const LinkFaultConfig& f, Rng& rng) {
  switch (f.jitter) {
    case JitterDistribution::kNone:
      return 0.0;
    case JitterDistribution::kUniform:
      return rng.uniform(0.0, f.jitter_s);
    case JitterDistribution::kExponential: {
      const double u = rng.uniform();
      return -f.jitter_s * std::log(1.0 - u);
    }
    case JitterDistribution::kNormal:
      return std::abs(rng.normal(0.0, f.jitter_s));
  }
  return 0.0;
}

void corrupt_payload(const LinkFaultConfig& f, Bytes& payload, Rng& rng) {
  if (payload.empty()) return;
  const std::size_t nbits =
      1 + rng.uniform_u64(f.corrupt_bits_max == 0 ? 1 : f.corrupt_bits_max);
  for (std::size_t i = 0; i < nbits; ++i) {
    const std::size_t bit = rng.uniform_u64(payload.size() * 8);
    payload[bit / 8] ^= static_cast<std::uint8_t>(1u << (bit % 8));
  }
}

}  // namespace

std::vector<Delivery> FaultyChannel::transmit(const InFlightMessage& msg, double base_latency_s,
                                              const Interceptor& adversary) {
  const LinkFaultConfig& f = faults_for(msg.from);
  const std::size_t copies = 1 + (rng_.uniform() < f.duplicate ? 1 : 0);

  std::vector<Delivery> out;
  for (std::size_t c = 0; c < copies; ++c) {
    if (rng_.uniform() < f.loss) continue;
    Bytes payload = msg.payload;
    if (rng_.uniform() < f.corrupt) corrupt_payload(f, payload, rng_);
    double delay = base_latency_s + sample_jitter(f, rng_);
    if (rng_.uniform() < f.reorder) delay += f.reorder_hold_s * (1.0 + rng_.uniform());
    if (adversary) {
      InFlightMessage copy{msg.from, msg.to, msg.type, std::move(payload), msg.send_time};
      const double extra = adversary(copy);
      payload = std::move(copy.payload);
      if (extra < 0.0) continue;
      delay += extra;
    }
    out.push_back(Delivery{msg.send_time + delay, std::move(payload)});
  }
  std::sort(out.begin(), out.end(),
            [](const Delivery& a, const Delivery& b) { return a.arrival_s < b.arrival_s; });
  return out;
}

Interceptor FaultyChannel::as_interceptor() {
  // Captures `this`; the channel must outlive the returned interceptor.
  return [this](InFlightMessage& msg) -> double {
    const LinkFaultConfig& f = faults_for(msg.from);
    if (rng_.uniform() < f.loss) return -1.0;
    if (rng_.uniform() < f.corrupt) corrupt_payload(f, msg.payload, rng_);
    return sample_jitter(f, rng_);
  };
}

}  // namespace wavekey::protocol
