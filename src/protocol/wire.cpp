#include "protocol/wire.hpp"

namespace wavekey::protocol {

void WireWriter::u32(std::uint32_t v) {
  Bytes& out = buf();
  for (int i = 0; i < 4; ++i) out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

void WireWriter::u64(std::uint64_t v) {
  Bytes& out = buf();
  for (int i = 0; i < 8; ++i) out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

void WireWriter::bytes(std::span<const std::uint8_t> data) {
  Bytes& out = buf();
  out.insert(out.end(), data.begin(), data.end());
}

Bytes WireWriter::take() {
  if (sink_ != nullptr) throw WireError("take() on an external-sink writer");
  return std::move(owned_);
}

void WireWriter::blob(std::span<const std::uint8_t> data) {
  if (data.size() > 0xFFFFFFFFu) throw WireError("blob too large");
  u32(static_cast<std::uint32_t>(data.size()));
  bytes(data);
}

std::uint8_t WireReader::u8() {
  if (pos_ + 1 > data_.size()) throw WireError("u8: underrun");
  return data_[pos_++];
}

std::uint32_t WireReader::u32() {
  if (pos_ + 4 > data_.size()) throw WireError("u32: underrun");
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= std::uint32_t{data_[pos_++]} << (8 * i);
  return v;
}

std::uint64_t WireReader::u64() {
  if (pos_ + 8 > data_.size()) throw WireError("u64: underrun");
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= std::uint64_t{data_[pos_++]} << (8 * i);
  return v;
}

std::span<const std::uint8_t> WireReader::view(std::size_t n) {
  if (pos_ + n > data_.size()) throw WireError("bytes: underrun");
  const std::span<const std::uint8_t> out = data_.subspan(pos_, n);
  pos_ += n;
  return out;
}

std::span<const std::uint8_t> WireReader::view_blob() {
  const std::uint32_t n = u32();
  return view(n);
}

Bytes WireReader::bytes(std::size_t n) {
  const std::span<const std::uint8_t> v = view(n);
  return Bytes(v.begin(), v.end());
}

Bytes WireReader::blob() {
  const std::uint32_t n = u32();
  return bytes(n);
}

void WireReader::expect_done() const {
  if (!done()) throw WireError("trailing bytes in message");
}

}  // namespace wavekey::protocol
