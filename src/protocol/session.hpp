#pragma once

// Transport + timing layer: runs the full key agreement between a mobile
// party and a server party over a simulated channel with latency, a session
// clock anchored at the gesture start, the paper's tau deadline on the
// critical messages (M_A,R and M_B,M must arrive within
// gesture_window + tau of the gesture start, SIV-D2), and an adversary
// interposition hook used by the attack suite (eavesdrop / tamper / delay).
//
// Two transports are available:
//  * run_key_agreement — the paper's single-shot exchange: each message is
//    sent exactly once; a lost or late message aborts the session.
//  * run_key_agreement_arq — the same protocol over a stop-and-wait ARQ
//    (protocol/arq.hpp) running on a FaultyChannel
//    (protocol/faulty_channel.hpp): sequence-numbered CRC-tagged frames,
//    per-message retransmission timers with bounded exponential backoff, all
//    charged against the session clock so the tau deadline still bites.
//    Retries that cannot finish inside gesture_window + tau fail fast with
//    FailureReason::kTimeout.
//
// Thread-safety: run_key_agreement / run_key_agreement_arq are reentrant —
// all state lives in the arguments, so concurrent calls with *distinct*
// Drbgs, channels, and interceptors are safe (core::PairingEngine relies on
// exactly this). The Drbgs and the FaultyChannel advance internal state and
// must not be shared across concurrent calls. Wall-clock crypto cost is
// measured inside each call and charged to that session's virtual clock, so
// under CPU contention concurrent sessions honestly slow each other down
// against the tau deadline (DESIGN.md §7.3).

#include <functional>
#include <optional>
#include <string>

#include "protocol/arq.hpp"
#include "protocol/key_agreement.hpp"

namespace wavekey::protocol {

class FaultyChannel;

/// A message in flight; adversaries may observe or mutate it.
struct InFlightMessage {
  std::string from;      ///< "mobile" or "server"
  std::string to;
  MessageType type;
  Bytes payload;
  double send_time = 0;  ///< session-clock seconds
};

/// Adversary hook. Return value is the extra delay (seconds) the message
/// suffers; mutate `msg.payload` to tamper. Return a negative value to drop
/// the message entirely (the session then fails by timeout/parse error).
/// Under the ARQ transport the hook sees every physical frame copy
/// (retransmissions and duplicates included), framed per protocol/arq.hpp.
using Interceptor = std::function<double(InFlightMessage& msg)>;

struct SessionConfig {
  AgreementParams params;
  double gesture_window_s = 2.0;
  double tau_s = 0.120;          ///< deadline slack (SVI-C3)
  double link_latency_s = 0.002; ///< WiFi/BLE one-way latency
  /// Extra computation latency charged to each side before its messages are
  /// ready (covers slower mobile hardware; measured values in bench_tau).
  double mobile_compute_s = 0.0;
  double server_compute_s = 0.0;
};

enum class FailureReason {
  kNone,
  kDeadlineExceeded,   ///< M_A,R or M_B,M arrived after 2 + tau
  kReconciliationFailed,  ///< server could not recover K_M (seed mismatch)
  kBadResponse,        ///< HMAC verification failed at the mobile
  kMalformedMessage,   ///< wire-format error (tampering)
  kMessageDropped,     ///< a message never arrived (loss / adversary drop)
  kTimeout,            ///< ARQ retries could not finish inside the tau budget
};

/// Human-readable name of a failure reason (telemetry / bench output).
const char* failure_reason_name(FailureReason reason);

struct SessionResult {
  bool success = false;
  FailureReason failure = FailureReason::kNone;
  BitVec mobile_key;
  BitVec server_key;
  double elapsed_s = 0.0;  ///< session clock at exit (success or failure)
  /// Latest arrival among the deadline-bound messages (M_A,R at the mobile,
  /// M_B,M at the server); <= gesture_window + tau on every success.
  double critical_arrival_s = 0.0;
  ArqStats arq;            ///< all-zero under the single-shot transport
};

/// Runs the complete protocol given the two key-seeds (produced by the
/// data-acquisition + key-seed-generation phases). The session clock starts
/// at the *gesture start*; the seeds become available at
/// gesture_window_s (the devices finish recording) plus each side's compute
/// latency, matching the paper's timeline.
SessionResult run_key_agreement(const SessionConfig& config, const BitVec& mobile_seed,
                                const BitVec& server_seed, crypto::Drbg& mobile_rng,
                                crypto::Drbg& server_rng,
                                const Interceptor& interceptor = {});

/// Same protocol over the ARQ transport on a faulty link. `channel` is the
/// session's link model (must outlive the call); `interceptor` optionally
/// stacks an adversary on top of the channel faults.
SessionResult run_key_agreement_arq(const SessionConfig& config, const ArqConfig& arq,
                                    FaultyChannel& channel, const BitVec& mobile_seed,
                                    const BitVec& server_seed, crypto::Drbg& mobile_rng,
                                    crypto::Drbg& server_rng,
                                    const Interceptor& interceptor = {});

}  // namespace wavekey::protocol
