#pragma once

// ARQ framing for the key-agreement transport: every protocol message is
// wrapped in a sequence-numbered frame carrying a CRC-32 integrity tag, so
// the receiver can discard corrupted or duplicated frames and acknowledge
// good ones. The tag defends against *channel noise*, not adversaries — no
// shared key exists yet at this layer; adversarial tampering is still caught
// end-to-end by the protocol itself (OT consistency + HMAC confirmation).
//
// The retransmission policy (timers, bounded exponential backoff, the tau
// budget) lives in protocol/session.cpp; this header only defines the frame
// format, its codec, and the knobs/counters shared with callers.
//
// Thread-safety: the frame codec functions are pure and reentrant;
// ArqConfig / ArqStats are plain value types. Nothing here synchronizes —
// concurrent sessions each own their frames and counters.

#include <cstdint>
#include <optional>
#include <span>

#include "protocol/wire.hpp"

namespace wavekey::protocol {

/// Retransmission policy of the stop-and-wait ARQ used per protocol message.
struct ArqConfig {
  double initial_rto_s = 0.015;   ///< first retransmission timeout
  double backoff = 2.0;           ///< timeout multiplier per retry
  double max_rto_s = 0.240;       ///< backoff ceiling
  std::size_t max_retransmits = 8;///< retransmissions per message (excl. first send)
};

/// Telemetry counters of one ARQ session (both directions pooled).
struct ArqStats {
  std::uint32_t data_frames_sent = 0;   ///< first sends + retransmissions
  std::uint32_t retransmissions = 0;
  std::uint32_t acks_sent = 0;
  std::uint32_t corrupt_frames_dropped = 0;  ///< CRC/parse rejects at either end
  std::uint32_t duplicate_frames = 0;        ///< valid frames for an already-ACKed seq
  std::uint32_t messages_lost = 0;           ///< messages abandoned after max retries

  ArqStats& operator+=(const ArqStats& o);
};

/// Frame kind tag (first byte on the wire).
enum class FrameKind : std::uint8_t {
  kData = 1,
  kAck = 2,
};

/// A decoded, integrity-checked frame.
struct ArqFrame {
  FrameKind kind = FrameKind::kData;
  std::uint32_t seq = 0;
  MessageType type = MessageType::kMsgA;  ///< meaningful for data frames only
  Bytes payload;                          ///< empty for ACKs
};

/// CRC-32 (IEEE 802.3, reflected) over `data`.
std::uint32_t crc32(std::span<const std::uint8_t> data);

/// Encodes a data frame: kind | seq | type | blob(payload) | crc32.
Bytes encode_data_frame(std::uint32_t seq, MessageType type, std::span<const std::uint8_t> payload);

/// Encodes an acknowledgement for `seq`.
Bytes encode_ack_frame(std::uint32_t seq);

/// Decodes and integrity-checks a frame. Returns nullopt on truncation,
/// trailing garbage, unknown kind, or CRC mismatch — corruption is expected
/// channel behaviour at this layer, not an error condition, so this never
/// throws.
std::optional<ArqFrame> decode_frame(std::span<const std::uint8_t> wire);

}  // namespace wavekey::protocol
