#include "sim/camera.hpp"

#include <cmath>

namespace wavekey::sim {

CameraConfig CameraConfig::remote() {
  CameraConfig c;
  c.fps = 260.0;
  c.three_d = true;
  c.position_noise = 0.012;
  c.per_frame_latency = 2.5e-3;  // Complexer-YOLO on a server GPU
  c.stream_latency = 0.35;
  return c;
}

CameraConfig CameraConfig::in_situ() {
  CameraConfig c;
  c.fps = 30.0;
  c.three_d = false;
  c.position_noise = 0.025;      // phone-grade 2-D hand detection
  c.depth_guess_error = 0.06;
  c.per_frame_latency = 30e-3;   // YoloV5 on-device
  c.stream_latency = 0.0;
  return c;
}

CameraObserver::CameraObserver(CameraConfig config, Vec3 view_direction)
    : config_(config), depth_axis_(view_direction.normalized()) {
  const Vec3 helper = std::abs(depth_axis_.z) < 0.9 ? Vec3{0, 0, 1} : Vec3{0, 1, 0};
  image_u_ = depth_axis_.cross(helper).normalized();
  image_v_ = depth_axis_.cross(image_u_);
}

CameraTrack CameraObserver::observe(const Trajectory& gesture, double t_begin,
                                    double t_end, Rng& rng) const {
  CameraTrack track;
  const double dt = 1.0 / config_.fps;
  const auto frames = static_cast<std::size_t>((t_end - t_begin) / dt);
  track.estimates.reserve(frames);

  // Constant depth-guess bias for 2-D observers: the attacker assumes a fixed
  // distance to the hand and never measures motion along the view axis.
  const double depth_bias = config_.three_d ? 0.0 : rng.normal(0.0, config_.depth_guess_error);

  for (double t = t_begin; t < t_end; t += dt) {
    const Vec3 p = gesture.position(t);
    PositionEstimate e;
    e.t = t;
    if (config_.three_d) {
      e.position = p + Vec3{rng.normal(0.0, config_.position_noise),
                            rng.normal(0.0, config_.position_noise),
                            rng.normal(0.0, config_.position_noise)};
    } else {
      // Keep only the image-plane components; depth collapses to the guess.
      const double pu = p.dot(image_u_) + rng.normal(0.0, config_.position_noise);
      const double pv = p.dot(image_v_) + rng.normal(0.0, config_.position_noise);
      e.position = image_u_ * pu + image_v_ * pv + depth_axis_ * depth_bias;
    }
    track.estimates.push_back(e);
  }

  track.processing_latency_s =
      config_.stream_latency + config_.per_frame_latency * static_cast<double>(frames);
  return track;
}

}  // namespace wavekey::sim
