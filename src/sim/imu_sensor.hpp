#pragma once

// IMU sensor model — the stand-in for the paper's four mobile devices
// (Google Pixel 8, two Samsung Galaxy S5 phones, one Samsung Galaxy Watch).
//
// Each simulated sensor samples the ground-truth gesture kinematics and
// corrupts them the way a real MEMS IMU does: gravity enters the
// accelerometer through the (time-varying) device attitude, each sensor has
// a per-session bias and white noise, the gyroscope drifts slowly, axes are
// slightly misaligned, and the hardware sample rate differs per device with
// small timestamp jitter.

#include <string>
#include <vector>

#include "numeric/quaternion.hpp"
#include "numeric/rng.hpp"
#include "numeric/vec3.hpp"
#include "sim/gesture.hpp"

namespace wavekey::sim {

/// One timestamped IMU reading (all vectors in the device body frame).
struct ImuSample {
  double t = 0.0;   ///< seconds since recording start
  Vec3 accel;       ///< specific force, m/s^2
  Vec3 gyro;        ///< angular rate, rad/s
  Vec3 mag;         ///< magnetic field, microtesla
};

/// A full recording from one device during one gesture.
struct ImuRecord {
  std::string device_name;
  std::vector<ImuSample> samples;
};

/// Hardware characteristics of one mobile device's IMU.
struct MobileDeviceProfile {
  std::string name;
  double sample_rate_hz = 100.0;
  double accel_noise = 0.03;      ///< m/s^2, white, 1 sigma per axis
  double gyro_noise = 0.002;      ///< rad/s
  double mag_noise = 0.4;         ///< uT
  double accel_bias = 0.05;       ///< m/s^2, per-session constant, 1 sigma
  double gyro_bias = 0.003;       ///< rad/s (slow drift source)
  double misalignment = 0.005;    ///< rad, random fixed axis misalignment
  double timestamp_jitter = 2e-4; ///< s

  /// The paper's four evaluation devices (SVI-A).
  static std::vector<MobileDeviceProfile> standard_devices();
};

/// Gravity and geomagnetic constants of the simulated venue.
struct WorldField {
  Vec3 gravity{0.0, 0.0, -9.81};          ///< m/s^2, world frame
  Vec3 magnetic{22.0, 0.0, -42.0};        ///< uT (mid-latitude inclination)
};

/// Samples a gesture trajectory through a device's IMU.
class ImuSensor {
 public:
  /// Per-session state (biases, misalignment) is drawn from `rng` once.
  ImuSensor(const MobileDeviceProfile& profile, Rng& rng, WorldField field = {});

  /// Records [t_begin, t_end) at the device's native rate.
  ImuRecord record(const Trajectory& gesture, double t_begin, double t_end, Rng& rng) const;

  const MobileDeviceProfile& profile() const { return profile_; }

 private:
  MobileDeviceProfile profile_;
  WorldField field_;
  Quaternion misalignment_;  // body -> sensor frame
  Vec3 accel_bias_;
  Vec3 gyro_bias_;
};

}  // namespace wavekey::sim
