#pragma once

// Camera observer — the stand-in for the paper's camera-aided data-recovery
// attackers (SVI-E2):
//
//  * remote mode:  ALPCAM 260 fps, 1080p, streamed to a server running
//    Complexer-YOLO 3-D detection. We model it as sampling the true hand
//    position at 260 fps with ~cm-level 3-D error, plus a large per-frame
//    processing/streaming latency that the tau deadline check punishes.
//  * in-situ mode: Pixel 8 at 30 fps running YOLOv5, 2-D only. We model it
//    as a projection onto the camera image plane (the depth/radial axis is
//    lost) with larger pixel noise and moderate latency.

#include <vector>

#include "numeric/rng.hpp"
#include "numeric/vec3.hpp"
#include "sim/gesture.hpp"

namespace wavekey::sim {

/// One estimated hand position (world frame, meters). For 2-D observers the
/// depth axis component is a constant guess, not a measurement.
struct PositionEstimate {
  double t = 0.0;
  Vec3 position;
};

struct CameraTrack {
  std::vector<PositionEstimate> estimates;
  double processing_latency_s = 0.0;  ///< end-to-end delay before key-seed ready
};

struct CameraConfig {
  double fps = 260.0;
  bool three_d = true;          ///< 3-D detection (remote) vs 2-D (in-situ)
  double position_noise = 0.012;///< m, 1 sigma per measured axis
  double depth_guess_error = 0.05;  ///< m, constant offset error on the lost axis (2-D)
  double per_frame_latency = 2.5e-3;///< s of processing per frame
  double stream_latency = 0.35; ///< s, video streaming + batching (remote)

  /// The paper's remote recording setup (260 fps + Complexer-YOLO).
  static CameraConfig remote();
  /// The paper's in-situ setup (Pixel 8 + YoloV5, 2-D, 30 fps).
  static CameraConfig in_situ();
};

/// Observes a gesture from a line-of-sight vantage point.
class CameraObserver {
 public:
  /// @param view_direction  unit vector from camera toward the user; for 2-D
  /// observers this is the lost (depth) axis.
  CameraObserver(CameraConfig config, Vec3 view_direction);

  /// Records hand positions over [t_begin, t_end).
  CameraTrack observe(const Trajectory& gesture, double t_begin, double t_end,
                      Rng& rng) const;

  const CameraConfig& config() const { return config_; }

 private:
  CameraConfig config_;
  Vec3 depth_axis_;
  Vec3 image_u_, image_v_;  // image-plane axes (2-D mode)
};

}  // namespace wavekey::sim
