#pragma once

// UHF backscatter channel + reader model — the stand-in for the paper's
// Impinj Speedway R420 reader, Laird S9028 antenna, and six tags.
//
// Physics. The reader transmits a continuous wave at 915 MHz; the tag
// backscatters it. The complex baseband channel is a sum over propagation
// path pairs (reader -> tag leg, tag -> reader leg), each leg being either
// the direct line of sight or a single bounce off an environment reflector:
//
//   H(t) = sum_dn sum_up a_dn a_up exp(-j 2pi (L_dn(t) + L_up(t)) / lambda)
//
// with per-leg amplitude a = gain/L for the direct leg and rho*gain/L_total
// for a reflected leg. The direct-direct term carries the paper's
// 4*pi*d(t)/lambda phase; reflectors produce the multipath structure the
// paper's denoising has to cope with; *moving* reflectors ("walkers")
// produce the dynamic-environment degradation of Tables I/II.
//
// The reader reports, at 200 Hz: the wrapped phase quantized to 12 bits
// (Impinj-style) and the RSSI quantized to 0.5 dBm, both after additive
// complex thermal noise.

#include <complex>
#include <string>
#include <vector>

#include "numeric/rng.hpp"
#include "numeric/vec3.hpp"
#include "sim/gesture.hpp"

namespace wavekey::sim {

/// One reader observation.
struct RfidSample {
  double t = 0.0;          ///< seconds since recording start
  double phase = 0.0;      ///< wrapped [0, 2pi), quantized
  double rssi_dbm = 0.0;   ///< quantized to 0.5 dB
  double magnitude = 0.0;  ///< linear |H|, before dB conversion
};

/// A full recording of one gesture by the RFID server.
struct RfidRecord {
  std::string tag_name;
  std::vector<RfidSample> samples;
};

/// Backscatter characteristics of one tag model.
struct TagProfile {
  std::string name;
  double backscatter_gain = 1.0;  ///< linear amplitude factor
  double phase_offset = 0.0;      ///< tag-intrinsic reflection phase, rad

  /// The paper's six evaluation tags: 2x Alien 9640, 2x Alien 9730,
  /// 2x SMARTRAC DogBone (SVI-A).
  static std::vector<TagProfile> standard_tags();
};

/// A single-bounce reflector. Static reflectors model walls/furniture;
/// walkers translate and sway, modelling the five volunteers moving around
/// the reader in the paper's dynamic condition.
struct Reflector {
  Vec3 base_position;
  double rho = 0.2;           ///< reflection amplitude coefficient
  bool moving = false;
  Vec3 walk_direction;        ///< walker velocity direction (unit)
  double walk_speed = 0.0;    ///< m/s
  double sway_amp = 0.0;      ///< m, lateral oscillation
  double sway_freq = 0.0;     ///< Hz
  double sway_phase = 0.0;

  Vec3 position(double t) const;
};

/// Room + crowd configuration. The paper emulates four environments by
/// moving/reorienting the reader in one lab; we instantiate four distinct
/// static reflector layouts, optionally with walkers for the dynamic case.
struct EnvironmentModel {
  int id = 1;
  bool dynamic = false;
  std::vector<Reflector> reflectors;

  /// Builds environment `id` in [1,4]; `dynamic` adds five walkers whose
  /// kinematic phases are drawn from `rng`. Throws on bad id.
  static EnvironmentModel make(int id, bool dynamic, Rng& rng);
};

/// Geometry of one key-establishment session.
struct SessionGeometry {
  double distance_m = 5.0;     ///< user distance from the antenna
  double azimuth_rad = 0.0;    ///< user bearing off antenna boresight
  Vec3 hand_offset{0.0, 0.0, -0.2};  ///< hand rest point relative to chest

  /// Antenna sits at the origin, boresight along +x, at chest height.
  Vec3 antenna_position() const { return {0.0, 0.0, 0.0}; }
  /// User chest position for this geometry.
  Vec3 user_position() const;
  /// Unit vector from user toward the antenna (the gesture "facing" axis).
  Vec3 facing_direction() const;
};

/// Reader front-end parameters (Impinj R420-like defaults).
struct ReaderConfig {
  double sample_rate_hz = 200.0;
  double carrier_hz = 915e6;
  double tx_amplitude = 1.0;        ///< direct-path amplitude at 1 m
  double noise_sigma = 6e-4;        ///< complex thermal noise, per axis
  int phase_quant_bits = 12;        ///< Impinj-style phase resolution
  double rssi_quant_db = 0.5;
  double beamwidth_deg = 70.0;      ///< antenna -3 dB beamwidth
};

/// The channel + reader simulator.
class RfidChannel {
 public:
  RfidChannel(const TagProfile& tag, const EnvironmentModel& env, const SessionGeometry& geometry,
              Rng& rng, ReaderConfig config = {});

  /// Records [t_begin, t_end) at the reader rate. Times are relative to the
  /// gesture clock (same clock as the IMU simulator — the *recordings* are
  /// later aligned by gesture-start detection, as in the paper).
  RfidRecord record(const Trajectory& gesture, double t_begin, double t_end,
                    Rng& rng) const;

  /// Complex channel at absolute gesture time t (exposed for tests and the
  /// signal-spoofing attack).
  std::complex<double> channel_at(const Trajectory& gesture, double t) const;

  double wavelength() const { return 299792458.0 / config_.carrier_hz; }
  const ReaderConfig& config() const { return config_; }

 private:
  double antenna_gain(const Vec3& target) const;  // linear amplitude gain

  TagProfile tag_;
  EnvironmentModel env_;
  SessionGeometry geometry_;
  ReaderConfig config_;
  double reader_phase_offset_;  // per-session LO phase
};

}  // namespace wavekey::sim
