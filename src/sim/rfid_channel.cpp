#include "sim/rfid_channel.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "dsp/phase_unwrap.hpp"

namespace wavekey::sim {
namespace {

constexpr double kTwoPi = 2.0 * M_PI;

}  // namespace

std::vector<TagProfile> TagProfile::standard_tags() {
  return {
      {.name = "alien_9640_a", .backscatter_gain = 1.00, .phase_offset = 0.30},
      {.name = "alien_9640_b", .backscatter_gain = 0.97, .phase_offset = 0.42},
      {.name = "alien_9730_a", .backscatter_gain = 1.08, .phase_offset = 1.10},
      {.name = "alien_9730_b", .backscatter_gain = 1.05, .phase_offset = 1.02},
      {.name = "dogbone_a", .backscatter_gain = 0.90, .phase_offset = 2.05},
      {.name = "dogbone_b", .backscatter_gain = 0.88, .phase_offset = 2.21},
  };
}

Vec3 Reflector::position(double t) const {
  if (!moving) return base_position;
  // Walk along walk_direction with a lateral sway perpendicular to it.
  const Vec3 fwd = walk_direction.normalized();
  const Vec3 lateral = fwd.cross({0, 0, 1}).normalized();
  // Walkers pace back and forth over a ~4 m span rather than leaving the room.
  const double span = 4.0;
  const double raw = walk_speed * t;
  const double cycle = std::fmod(raw, 2.0 * span);
  const double along = cycle < span ? cycle : 2.0 * span - cycle;
  return base_position + fwd * along +
         lateral * (sway_amp * std::sin(kTwoPi * sway_freq * t + sway_phase));
}

EnvironmentModel EnvironmentModel::make(int id, bool dynamic, Rng& rng) {
  if (id < 1 || id > 4) throw std::invalid_argument("EnvironmentModel: id must be in [1,4]");
  EnvironmentModel env;
  env.id = id;
  env.dynamic = dynamic;

  // Four static layouts: walls/furniture at different ranges and strengths.
  // Coordinates are meters in the antenna frame (boresight +x, z up).
  switch (id) {
    case 1:
      env.reflectors = {{.base_position = {3.0, 2.5, 0.0}, .rho = 0.25},
                        {.base_position = {6.0, -3.0, 0.5}, .rho = 0.20},
                        {.base_position = {1.5, -2.0, -0.5}, .rho = 0.15}};
      break;
    case 2:
      env.reflectors = {{.base_position = {4.5, 3.5, 0.0}, .rho = 0.30},
                        {.base_position = {8.0, 0.5, 1.0}, .rho = 0.18}};
      break;
    case 3:
      env.reflectors = {{.base_position = {2.0, 1.0, 1.2}, .rho = 0.22},
                        {.base_position = {5.0, -4.0, 0.0}, .rho = 0.28},
                        {.base_position = {7.0, 2.0, -0.8}, .rho = 0.12},
                        {.base_position = {3.5, -1.0, 0.3}, .rho = 0.10}};
      break;
    case 4:
      env.reflectors = {{.base_position = {9.0, 4.0, 0.0}, .rho = 0.35},
                        {.base_position = {2.5, 3.0, 0.5}, .rho = 0.15},
                        {.base_position = {4.0, -2.5, -1.0}, .rho = 0.20}};
      break;
    default:
      break;
  }

  if (dynamic) {
    // Five walkers circulating around the reader (the paper's other five
    // volunteers). They start near the antenna side of the room.
    for (int k = 0; k < 5; ++k) {
      Reflector walker;
      const double angle = rng.uniform(0.0, kTwoPi);
      walker.base_position = {1.5 + rng.uniform(0.0, 2.5), 3.0 * std::sin(angle),
                              rng.uniform(-0.3, 0.3)};
      walker.rho = rng.uniform(0.10, 0.22);  // human torso scatterer, a few m off-link
      walker.moving = true;
      walker.walk_direction = {std::cos(angle), std::sin(angle), 0.0};
      walker.walk_speed = rng.uniform(0.6, 1.4);
      walker.sway_amp = rng.uniform(0.02, 0.06);
      walker.sway_freq = rng.uniform(1.5, 2.2);
      walker.sway_phase = rng.uniform(0.0, kTwoPi);
      env.reflectors.push_back(walker);
    }
  }
  return env;
}

Vec3 SessionGeometry::user_position() const {
  return {distance_m * std::cos(azimuth_rad), distance_m * std::sin(azimuth_rad), 0.0};
}

Vec3 SessionGeometry::facing_direction() const {
  return (antenna_position() - user_position()).normalized();
}

RfidChannel::RfidChannel(const TagProfile& tag, const EnvironmentModel& env,
                         const SessionGeometry& geometry, Rng& rng, ReaderConfig config)
    : tag_(tag),
      env_(env),
      geometry_(geometry),
      config_(config),
      reader_phase_offset_(rng.uniform(0.0, kTwoPi)) {}

double RfidChannel::antenna_gain(const Vec3& target) const {
  // Parabolic-in-dB pattern with the configured -3 dB beamwidth (amplitude
  // gain, so half the power dB). Boresight along +x.
  const Vec3 dir = target.normalized();
  const double off_boresight = std::acos(std::clamp(dir.x, -1.0, 1.0));
  const double half_bw = 0.5 * config_.beamwidth_deg * M_PI / 180.0;
  const double power_db = -3.0 * (off_boresight / half_bw) * (off_boresight / half_bw);
  return std::pow(10.0, power_db / 20.0);
}

std::complex<double> RfidChannel::channel_at(const Trajectory& gesture, double t) const {
  const Vec3 tag_pos =
      geometry_.user_position() + geometry_.hand_offset + gesture.position(t);
  const double lambda = wavelength();

  // Per-leg amplitude/length lists: leg 0 is the direct path.
  struct Leg {
    double amplitude;
    double length;
  };
  std::vector<Leg> legs;
  legs.reserve(1 + env_.reflectors.size());

  const double d_direct = (tag_pos - geometry_.antenna_position()).norm();
  const double gain = antenna_gain(tag_pos);
  legs.push_back({gain / std::max(d_direct, 0.1), d_direct});
  for (const Reflector& r : env_.reflectors) {
    const Vec3 rp = r.position(t);
    const double l1 = (rp - geometry_.antenna_position()).norm();
    const double l2 = (tag_pos - rp).norm();
    const double g = antenna_gain(rp);  // antenna illuminates the reflector
    legs.push_back({r.rho * g / std::max(l1 * l2, 0.1), l1 + l2});
  }

  // Sum over (down leg, up leg) pairs; skip reflected-reflected pairs, whose
  // amplitude is second order in rho.
  std::complex<double> h{0.0, 0.0};
  const double k_wave = kTwoPi / lambda;
  for (std::size_t dn = 0; dn < legs.size(); ++dn) {
    for (std::size_t up = 0; up < legs.size(); ++up) {
      if (dn != 0 && up != 0) continue;
      const double amp = legs[dn].amplitude * legs[up].amplitude;
      const double phase = k_wave * (legs[dn].length + legs[up].length);
      h += std::polar(amp, -phase);
    }
  }
  h *= std::polar(config_.tx_amplitude * tag_.backscatter_gain,
                  tag_.phase_offset + reader_phase_offset_);
  return h;
}

RfidRecord RfidChannel::record(const Trajectory& gesture, double t_begin, double t_end,
                               Rng& rng) const {
  RfidRecord rec;
  rec.tag_name = tag_.name;
  const double dt = 1.0 / config_.sample_rate_hz;
  rec.samples.reserve(static_cast<std::size_t>((t_end - t_begin) / dt) + 1);

  const double phase_step = kTwoPi / static_cast<double>(1 << config_.phase_quant_bits);
  for (double t = t_begin; t < t_end; t += dt) {
    std::complex<double> h = channel_at(gesture, t);
    h += std::complex<double>(rng.normal(0.0, config_.noise_sigma),
                              rng.normal(0.0, config_.noise_sigma));

    RfidSample s;
    s.t = t;
    const double raw_phase = dsp::wrap_phase(std::arg(h));
    s.phase = std::floor(raw_phase / phase_step) * phase_step;
    s.magnitude = std::abs(h);
    const double dbm = 10.0 * std::log10(std::max(s.magnitude * s.magnitude, 1e-15)) - 30.0;
    s.rssi_dbm = std::round(dbm / config_.rssi_quant_db) * config_.rssi_quant_db;
    rec.samples.push_back(s);
  }
  return rec;
}

}  // namespace wavekey::sim
