#include "sim/scenario.hpp"

#include <cmath>

namespace wavekey::sim {

ScenarioSimulator::ScenarioSimulator(ScenarioConfig config, std::uint64_t seed)
    : config_(std::move(config)), rng_(seed) {}

SessionRecording ScenarioSimulator::run() {
  SessionGeometry geometry;
  geometry.distance_m = config_.distance_m;
  geometry.azimuth_rad = config_.azimuth_deg * M_PI / 180.0;

  GestureParams gp = config_.gesture;
  gp.facing = geometry.facing_direction();

  Rng gesture_rng = rng_.split();
  GestureTrajectory trajectory(gesture_rng, config_.volunteer, gp);

  Rng imu_rng = rng_.split();
  ImuSensor imu_sensor(config_.device, imu_rng);
  ImuRecord imu = imu_sensor.record(trajectory, 0.0, trajectory.total_duration(), imu_rng);

  Rng rfid_rng = rng_.split();
  EnvironmentModel env =
      EnvironmentModel::make(config_.environment_id, config_.dynamic_environment, rfid_rng);
  RfidChannel channel(config_.tag, env, geometry, rfid_rng);
  RfidRecord rfid = channel.record(trajectory, 0.0, trajectory.total_duration(), rfid_rng);

  return SessionRecording{std::move(trajectory), std::move(imu), std::move(rfid), geometry};
}

}  // namespace wavekey::sim
