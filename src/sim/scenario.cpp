#include "sim/scenario.hpp"

#include <cmath>

namespace wavekey::sim {

LinkQuality LinkQuality::for_environment(int id, bool dynamic) {
  LinkQuality q;
  switch (id) {
    case 1:  // static lab: near-clean link
      q.loss = 0.005;
      q.jitter_ms = 1.0;
      break;
    case 2:  // office: light WiFi contention
      q.loss = 0.02;
      q.jitter_ms = 3.0;
      q.duplicate = 0.005;
      break;
    case 3:  // corridor / mall: moderate congestion
      q.loss = 0.05;
      q.corrupt = 0.005;
      q.duplicate = 0.01;
      q.jitter_ms = 6.0;
      break;
    default:  // hall / dense deployment: heavy 2.4 GHz congestion
      q.loss = 0.08;
      q.corrupt = 0.01;
      q.duplicate = 0.02;
      q.jitter_ms = 10.0;
      break;
  }
  if (dynamic) {  // walkers shadow the link intermittently
    q.loss += 0.04;
    q.jitter_ms += 4.0;
  }
  return q;
}

ScenarioSimulator::ScenarioSimulator(ScenarioConfig config, std::uint64_t seed)
    : config_(std::move(config)), rng_(seed) {}

SessionRecording ScenarioSimulator::run() {
  SessionGeometry geometry;
  geometry.distance_m = config_.distance_m;
  geometry.azimuth_rad = config_.azimuth_deg * M_PI / 180.0;

  GestureParams gp = config_.gesture;
  gp.facing = geometry.facing_direction();

  Rng gesture_rng = rng_.split();
  GestureTrajectory trajectory(gesture_rng, config_.volunteer, gp);

  Rng imu_rng = rng_.split();
  ImuSensor imu_sensor(config_.device, imu_rng);
  ImuRecord imu = imu_sensor.record(trajectory, 0.0, trajectory.total_duration(), imu_rng);

  Rng rfid_rng = rng_.split();
  EnvironmentModel env =
      EnvironmentModel::make(config_.environment_id, config_.dynamic_environment, rfid_rng);
  RfidChannel channel(config_.tag, env, geometry, rfid_rng);
  RfidRecord rfid = channel.record(trajectory, 0.0, trajectory.total_duration(), rfid_rng);

  return SessionRecording{std::move(trajectory), std::move(imu), std::move(rfid), geometry};
}

}  // namespace wavekey::sim
