#pragma once

// Random hand-gesture simulator — the stand-in for the paper's six human
// volunteers (DESIGN.md SS1).
//
// Kinematic model. Human "wave the device" gestures are band-limited
// (< ~5 Hz) and quasi-linear: most of the motion energy lies along one
// dominant direction, with weaker secondary motion. We therefore model the
// device position as
//
//   p(t) = env(t) * [ w * s(t)  +  p_sec(t) ]
//
// where w is a per-gesture random unit vector drawn from a cone around the
// user's facing direction (users face the reader while interacting), s(t) is
// a random band-limited scalar profile (sum of sinusoids, 0.4-4.5 Hz), and
// p_sec is low-amplitude isotropic secondary motion. env(t) is a smooth
// ramp that is exactly zero during the initial pause the paper prescribes
// for clock-free synchronization (SIV-B1) and 1 afterwards.
//
// Position, velocity, and acceleration are analytic (exact derivatives), so
// the IMU sensor model introduces no numerical-differentiation artifacts.
// Device attitude is driven by an analytic body angular rate integrated on a
// fine internal grid, keeping the simulated gyroscope and the orientation
// used for gravity projection exactly consistent.

#include <cstdint>
#include <vector>

#include "numeric/quaternion.hpp"
#include "numeric/rng.hpp"
#include "numeric/vec3.hpp"
#include "sim/trajectory.hpp"

namespace wavekey::sim {

/// A sum of sinusoids with analytic derivatives.
struct SinusoidSum {
  struct Term {
    double amplitude = 0.0;
    double freq_hz = 0.0;
    double phase = 0.0;
  };
  std::vector<Term> terms;

  double value(double t) const;
  double d1(double t) const;
  double d2(double t) const;

  /// Random band-limited profile: `n` terms, frequencies log-uniform in
  /// [f_lo, f_hi], amplitudes ~ 1/f, rescaled to the requested RMS.
  static SinusoidSum random(Rng& rng, std::size_t n, double f_lo, double f_hi, double rms);
};

/// Per-"volunteer" style parameters: how fast, how big, how smooth, and how
/// much wrist rotation a person puts into their gestures.
struct VolunteerStyle {
  double tempo = 1.0;           ///< frequency scale (0.8 slow .. 1.3 brisk)
  double amplitude_m = 0.10;    ///< RMS amplitude of the dominant motion
  double secondary_ratio = 0.07;///< secondary / dominant amplitude ratio
  double rotation_rad_s = 0.9;  ///< RMS wrist angular rate
  double cone_half_angle = 0.5; ///< rad; spread of w around the facing axis

  /// Samples a plausible style; used to instantiate the simulated cohort.
  static VolunteerStyle sample(Rng& rng);
};

/// Structural parameters of one gesture recording.
struct GestureParams {
  double pause_s = 0.7;     ///< initial stillness (start-detection anchor)
  double active_s = 15.0;   ///< motion duration after the pause (paper: >15 s)
  double ramp_s = 0.2;      ///< smooth-start ramp
  std::size_t harmonics = 6;
  Vec3 facing{1.0, 0.0, 0.0};  ///< user's facing direction (toward reader)
};

/// A fully-instantiated gesture: continuous-time kinematics of the device.
class GestureTrajectory final : public Trajectory {
 public:
  GestureTrajectory(Rng& rng, const VolunteerStyle& style, const GestureParams& params);

  /// Device position relative to the hand's rest point (meters, world frame).
  Vec3 position(double t) const override;
  Vec3 velocity(double t) const override;
  Vec3 acceleration(double t) const override;

  /// Body-frame angular rate (rad/s) as a real gyroscope would sense it.
  Vec3 angular_rate_body(double t) const override;

  /// Device attitude (body -> world) at time t.
  Quaternion orientation(double t) const override;

  /// When the motion actually starts (end of the pause).
  double motion_start() const override { return params_.pause_s; }
  double total_duration() const override { return params_.pause_s + params_.active_s; }
  const Vec3& dominant_direction() const { return w_; }
  const GestureParams& params() const { return params_; }

 private:
  double envelope(double t) const;
  double envelope_d1(double t) const;
  double envelope_d2(double t) const;

  GestureParams params_;
  Vec3 w_;                       // dominant motion direction
  SinusoidSum s_;                // dominant scalar profile
  SinusoidSum sec_[3];           // secondary per-axis profiles
  SinusoidSum omega_[3];         // body angular-rate profiles
  Quaternion q0_;                // initial attitude
  double fine_dt_ = 5e-4;        // attitude integration step
  std::vector<Quaternion> attitude_track_;
};

/// Factory tying a seed stream to volunteer styles and gestures.
class GestureGenerator {
 public:
  explicit GestureGenerator(std::uint64_t seed) : rng_(seed) {}

  GestureTrajectory generate(const VolunteerStyle& style, const GestureParams& params) {
    Rng child = rng_.split();
    return GestureTrajectory(child, style, params);
  }

  Rng& rng() { return rng_; }

 private:
  Rng rng_;
};

}  // namespace wavekey::sim
