#pragma once

// Scenario assembly: wires a volunteer, a mobile device, a tag, an
// environment, and a session geometry into one simulated key-establishment
// recording (paired IMU + RFID data of the same gesture). The paper's
// default setting (SVI-B) — Galaxy Watch, Alien 9640 tag, static lab, 5 m,
// 0 degrees — is the default-constructed configuration.

#include <cstdint>
#include <optional>

#include "sim/gesture.hpp"
#include "sim/imu_sensor.hpp"
#include "sim/rfid_channel.hpp"

namespace wavekey::sim {

/// Quality of the WiFi/BLE control link between the two parties. The sim's
/// environments differ not only in RF multipath (rfid_channel) but also in
/// how congested the data link is; this struct carries the plain numbers so
/// that core/ can map them onto a protocol::FaultyChannelConfig without sim
/// depending on protocol.
struct LinkQuality {
  double loss = 0.0;        ///< per-frame loss probability
  double corrupt = 0.0;     ///< per-frame bit-corruption probability
  double duplicate = 0.0;   ///< per-frame duplication probability
  double jitter_ms = 0.0;   ///< exponential latency-jitter scale

  /// Link profile of environment `id` in [1,4] (denser/busier environments
  /// get lossier links); `dynamic` adds crowd-induced loss and jitter.
  static LinkQuality for_environment(int id, bool dynamic);
};

struct ScenarioConfig {
  VolunteerStyle volunteer{};
  MobileDeviceProfile device = MobileDeviceProfile::standard_devices()[3];  // galaxy_watch
  TagProfile tag = TagProfile::standard_tags()[0];                          // alien_9640_a
  int environment_id = 1;
  bool dynamic_environment = false;
  double distance_m = 5.0;
  double azimuth_deg = 0.0;
  GestureParams gesture{};
  /// Control-link quality; nullopt derives it from the environment via
  /// LinkQuality::for_environment. Only the fault-tolerant transport
  /// (core::WaveKeySystem::establish_key_robust) consumes this.
  std::optional<LinkQuality> link;
};

/// One simulated session: the ground-truth gesture plus both recordings.
struct SessionRecording {
  GestureTrajectory trajectory;
  ImuRecord imu;
  RfidRecord rfid;
  SessionGeometry geometry;
};

/// Deterministic scenario generator. Every call to `run()` produces a fresh
/// gesture/session from the seed stream; two simulators with equal seeds and
/// configs generate identical data.
class ScenarioSimulator {
 public:
  ScenarioSimulator(ScenarioConfig config, std::uint64_t seed);

  /// Simulates one full key-establishment recording. Both devices record the
  /// whole pause + gesture; alignment by start detection happens in the
  /// processing pipelines (imu/, rfid/), as in the paper.
  SessionRecording run();

  const ScenarioConfig& config() const { return config_; }

 private:
  ScenarioConfig config_;
  Rng rng_;
};

}  // namespace wavekey::sim
