#include "sim/imu_sensor.hpp"

namespace wavekey::sim {

std::vector<MobileDeviceProfile> MobileDeviceProfile::standard_devices() {
  // Noise figures follow typical consumer MEMS datasheet orders of magnitude;
  // the watch is noisier and slower, the Pixel is the cleanest and fastest.
  MobileDeviceProfile pixel8{.name = "pixel8",
                             .sample_rate_hz = 200.0,
                             .accel_noise = 0.02,
                             .gyro_noise = 0.0015,
                             .mag_noise = 0.3,
                             .accel_bias = 0.03,
                             .gyro_bias = 0.002,
                             .misalignment = 0.003,
                             .timestamp_jitter = 1e-4};
  MobileDeviceProfile galaxy_a{.name = "galaxy_s5_a",
                               .sample_rate_hz = 100.0,
                               .accel_noise = 0.035,
                               .gyro_noise = 0.0025,
                               .mag_noise = 0.5,
                               .accel_bias = 0.06,
                               .gyro_bias = 0.004,
                               .misalignment = 0.006,
                               .timestamp_jitter = 2e-4};
  MobileDeviceProfile galaxy_b = galaxy_a;
  galaxy_b.name = "galaxy_s5_b";
  galaxy_b.accel_bias = 0.07;  // unit-to-unit variation between the two S5s
  galaxy_b.gyro_bias = 0.0035;
  MobileDeviceProfile watch{.name = "galaxy_watch",
                            .sample_rate_hz = 104.0,
                            .accel_noise = 0.05,
                            .gyro_noise = 0.004,
                            .mag_noise = 0.8,
                            .accel_bias = 0.09,
                            .gyro_bias = 0.006,
                            .misalignment = 0.008,
                            .timestamp_jitter = 4e-4};
  return {pixel8, galaxy_a, galaxy_b, watch};
}

ImuSensor::ImuSensor(const MobileDeviceProfile& profile, Rng& rng, WorldField field)
    : profile_(profile), field_(field) {
  const Vec3 axis{rng.normal(), rng.normal(), rng.normal()};
  misalignment_ = Quaternion::from_axis_angle(axis, rng.normal(0.0, profile_.misalignment));
  accel_bias_ = {rng.normal(0.0, profile_.accel_bias), rng.normal(0.0, profile_.accel_bias),
                 rng.normal(0.0, profile_.accel_bias)};
  gyro_bias_ = {rng.normal(0.0, profile_.gyro_bias), rng.normal(0.0, profile_.gyro_bias),
                rng.normal(0.0, profile_.gyro_bias)};
}

ImuRecord ImuSensor::record(const Trajectory& gesture, double t_begin, double t_end,
                            Rng& rng) const {
  ImuRecord rec;
  rec.device_name = profile_.name;
  const double dt = 1.0 / profile_.sample_rate_hz;
  rec.samples.reserve(static_cast<std::size_t>((t_end - t_begin) / dt) + 1);

  for (double t_nominal = t_begin; t_nominal < t_end; t_nominal += dt) {
    const double t = t_nominal + rng.normal(0.0, profile_.timestamp_jitter);
    const Quaternion q = gesture.orientation(t);        // body -> world
    const Quaternion q_inv = q.conjugate();

    // Specific force: f_world = a_world - g_world; sensed in the (slightly
    // misaligned) body frame plus bias plus white noise.
    const Vec3 f_world = gesture.acceleration(t) - field_.gravity;
    Vec3 accel = misalignment_.rotate(q_inv.rotate(f_world)) + accel_bias_;
    accel += Vec3{rng.normal(0.0, profile_.accel_noise), rng.normal(0.0, profile_.accel_noise),
                  rng.normal(0.0, profile_.accel_noise)};

    Vec3 gyro = misalignment_.rotate(gesture.angular_rate_body(t)) + gyro_bias_;
    gyro += Vec3{rng.normal(0.0, profile_.gyro_noise), rng.normal(0.0, profile_.gyro_noise),
                 rng.normal(0.0, profile_.gyro_noise)};

    Vec3 mag = misalignment_.rotate(q_inv.rotate(field_.magnetic));
    mag += Vec3{rng.normal(0.0, profile_.mag_noise), rng.normal(0.0, profile_.mag_noise),
                rng.normal(0.0, profile_.mag_noise)};

    rec.samples.push_back({t_nominal, accel, gyro, mag});
  }
  return rec;
}

}  // namespace wavekey::sim
