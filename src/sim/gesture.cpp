#include "sim/gesture.hpp"

#include <cmath>

namespace wavekey::sim {
namespace {

constexpr double kTwoPi = 2.0 * M_PI;

}  // namespace

double SinusoidSum::value(double t) const {
  double v = 0.0;
  for (const Term& term : terms)
    v += term.amplitude * std::sin(kTwoPi * term.freq_hz * t + term.phase);
  return v;
}

double SinusoidSum::d1(double t) const {
  double v = 0.0;
  for (const Term& term : terms) {
    const double w = kTwoPi * term.freq_hz;
    v += term.amplitude * w * std::cos(w * t + term.phase);
  }
  return v;
}

double SinusoidSum::d2(double t) const {
  double v = 0.0;
  for (const Term& term : terms) {
    const double w = kTwoPi * term.freq_hz;
    v -= term.amplitude * w * w * std::sin(w * t + term.phase);
  }
  return v;
}

SinusoidSum SinusoidSum::random(Rng& rng, std::size_t n, double f_lo, double f_hi, double rms) {
  SinusoidSum s;
  s.terms.reserve(n);
  double sum_sq = 0.0;
  const double log_lo = std::log(f_lo), log_hi = std::log(f_hi);
  for (std::size_t i = 0; i < n; ++i) {
    Term t;
    t.freq_hz = std::exp(rng.uniform(log_lo, log_hi));
    t.amplitude = rng.uniform(0.5, 1.5) / t.freq_hz;  // pink-ish spectrum
    t.phase = rng.uniform(0.0, kTwoPi);
    sum_sq += 0.5 * t.amplitude * t.amplitude;  // sin^2 averages to 1/2
    s.terms.push_back(t);
  }
  // Rescale to the requested RMS.
  const double scale = rms / std::sqrt(std::max(sum_sq, 1e-12));
  for (Term& t : s.terms) t.amplitude *= scale;
  return s;
}

VolunteerStyle VolunteerStyle::sample(Rng& rng) {
  VolunteerStyle v;
  v.tempo = rng.uniform(0.8, 1.3);
  v.amplitude_m = rng.uniform(0.07, 0.14);
  v.secondary_ratio = rng.uniform(0.04, 0.10);
  v.rotation_rad_s = rng.uniform(0.5, 1.3);
  v.cone_half_angle = rng.uniform(0.35, 0.65);
  return v;
}

GestureTrajectory::GestureTrajectory(Rng& rng, const VolunteerStyle& style,
                                     const GestureParams& params)
    : params_(params) {
  // Dominant direction: uniform within a cone around the facing axis.
  const Vec3 axis = params_.facing.normalized();
  // Build an orthonormal frame around `axis`.
  const Vec3 helper = std::abs(axis.z) < 0.9 ? Vec3{0, 0, 1} : Vec3{0, 1, 0};
  const Vec3 u = axis.cross(helper).normalized();
  const Vec3 v = axis.cross(u);
  const double cos_half = std::cos(style.cone_half_angle);
  const double cos_theta = rng.uniform(cos_half, 1.0);  // uniform in solid angle
  const double sin_theta = std::sqrt(std::max(0.0, 1.0 - cos_theta * cos_theta));
  const double phi = rng.uniform(0.0, kTwoPi);
  w_ = (axis * cos_theta + u * (sin_theta * std::cos(phi)) + v * (sin_theta * std::sin(phi)))
           .normalized();

  const double f_lo = 0.4 * style.tempo;
  const double f_hi = 4.5 * style.tempo;
  s_ = SinusoidSum::random(rng, params_.harmonics, f_lo, f_hi, style.amplitude_m);
  for (auto& sec : sec_)
    sec = SinusoidSum::random(rng, params_.harmonics, f_lo, f_hi,
                              style.amplitude_m * style.secondary_ratio);
  for (auto& om : omega_)
    om = SinusoidSum::random(rng, 4, f_lo, 0.7 * f_hi, style.rotation_rad_s / std::sqrt(3.0));

  // Initial attitude: a moderate random tilt from a canonical hand pose.
  const Vec3 tilt_axis{rng.normal(), rng.normal(), rng.normal()};
  q0_ = Quaternion::from_axis_angle(tilt_axis, rng.uniform(0.0, 0.9));

  // Precompute the attitude track by integrating the (enveloped) body rate.
  const std::size_t steps = static_cast<std::size_t>(total_duration() / fine_dt_) + 2;
  attitude_track_.reserve(steps);
  Quaternion q = q0_;
  attitude_track_.push_back(q);
  for (std::size_t i = 1; i < steps; ++i) {
    const double t = static_cast<double>(i - 1) * fine_dt_;
    q = q.integrated(angular_rate_body(t), fine_dt_);
    attitude_track_.push_back(q);
  }
}

double GestureTrajectory::envelope(double t) const {
  const double t0 = params_.pause_s;
  if (t <= t0) return 0.0;
  const double s = (t - t0) / params_.ramp_s;
  if (s >= 1.0) return 1.0;
  return s * s * (3.0 - 2.0 * s);
}

double GestureTrajectory::envelope_d1(double t) const {
  const double t0 = params_.pause_s;
  if (t <= t0) return 0.0;
  const double s = (t - t0) / params_.ramp_s;
  if (s >= 1.0) return 0.0;
  return 6.0 * s * (1.0 - s) / params_.ramp_s;
}

double GestureTrajectory::envelope_d2(double t) const {
  const double t0 = params_.pause_s;
  if (t <= t0) return 0.0;
  const double s = (t - t0) / params_.ramp_s;
  if (s >= 1.0) return 0.0;
  return (6.0 - 12.0 * s) / (params_.ramp_s * params_.ramp_s);
}

Vec3 GestureTrajectory::position(double t) const {
  const double e = envelope(t);
  if (e == 0.0) return {};
  const double t0 = params_.pause_s;
  // Subtract the value at motion start so the hand starts from rest position.
  const Vec3 raw = w_ * (s_.value(t) - s_.value(t0)) +
                   Vec3{sec_[0].value(t) - sec_[0].value(t0),
                        sec_[1].value(t) - sec_[1].value(t0),
                        sec_[2].value(t) - sec_[2].value(t0)};
  return raw * e;
}

Vec3 GestureTrajectory::velocity(double t) const {
  const double e = envelope(t);
  const double e1 = envelope_d1(t);
  if (e == 0.0 && e1 == 0.0) return {};
  const double t0 = params_.pause_s;
  const Vec3 raw = w_ * (s_.value(t) - s_.value(t0)) +
                   Vec3{sec_[0].value(t) - sec_[0].value(t0),
                        sec_[1].value(t) - sec_[1].value(t0),
                        sec_[2].value(t) - sec_[2].value(t0)};
  const Vec3 raw1 = w_ * s_.d1(t) + Vec3{sec_[0].d1(t), sec_[1].d1(t), sec_[2].d1(t)};
  return raw * e1 + raw1 * e;
}

Vec3 GestureTrajectory::acceleration(double t) const {
  const double e = envelope(t);
  const double e1 = envelope_d1(t);
  const double e2 = envelope_d2(t);
  if (e == 0.0 && e1 == 0.0 && e2 == 0.0) return {};
  const double t0 = params_.pause_s;
  const Vec3 raw = w_ * (s_.value(t) - s_.value(t0)) +
                   Vec3{sec_[0].value(t) - sec_[0].value(t0),
                        sec_[1].value(t) - sec_[1].value(t0),
                        sec_[2].value(t) - sec_[2].value(t0)};
  const Vec3 raw1 = w_ * s_.d1(t) + Vec3{sec_[0].d1(t), sec_[1].d1(t), sec_[2].d1(t)};
  const Vec3 raw2 = w_ * s_.d2(t) + Vec3{sec_[0].d2(t), sec_[1].d2(t), sec_[2].d2(t)};
  return raw * e2 + raw1 * (2.0 * e1) + raw2 * e;
}

Vec3 GestureTrajectory::angular_rate_body(double t) const {
  const double e = envelope(t);
  if (e == 0.0) return {};
  return Vec3{omega_[0].value(t), omega_[1].value(t), omega_[2].value(t)} * e;
}

Quaternion GestureTrajectory::orientation(double t) const {
  if (t <= 0.0) return attitude_track_.front();
  const auto idx = static_cast<std::size_t>(t / fine_dt_);
  if (idx + 1 >= attitude_track_.size()) return attitude_track_.back();
  // Refine from the grid point to t with one small integration step.
  const double t_grid = static_cast<double>(idx) * fine_dt_;
  return attitude_track_[idx].integrated(angular_rate_body(t_grid), t - t_grid);
}

}  // namespace wavekey::sim
