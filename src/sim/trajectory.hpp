#pragma once

// Abstract device-trajectory interface. The gesture simulator provides the
// benign implementation; the attack suite provides derived trajectories
// (time-warped mimicry, camera-reconstructed tracks) that feed the same
// sensor models and pipelines.

#include "numeric/quaternion.hpp"
#include "numeric/vec3.hpp"

namespace wavekey::sim {

class Trajectory {
 public:
  virtual ~Trajectory() = default;

  /// Device position relative to the rest point (meters, world frame).
  virtual Vec3 position(double t) const = 0;
  virtual Vec3 velocity(double t) const = 0;
  virtual Vec3 acceleration(double t) const = 0;

  /// Body-frame angular rate (rad/s).
  virtual Vec3 angular_rate_body(double t) const = 0;

  /// Device attitude (body -> world).
  virtual Quaternion orientation(double t) const = 0;

  /// When motion starts (end of the pause) and when the recording ends.
  virtual double motion_start() const = 0;
  virtual double total_duration() const = 0;
};

}  // namespace wavekey::sim
