#include "attacks/attack_eval.hpp"

#include "core/dataset.hpp"
#include "core/key_seed.hpp"
#include "imu/imu_pipeline.hpp"
#include "rfid/rfid_pipeline.hpp"

namespace wavekey::attacks {

SpoofAttemptResult run_random_guess_attack(const BitVec& victim_seed, double eta,
                                           crypto::Drbg& rng) {
  SpoofAttemptResult r;
  const BitVec guess = rng.random_bits(victim_seed.size());
  r.mismatch = guess.mismatch_ratio(victim_seed);
  r.seed_accepted = r.mismatch <= eta;
  r.within_deadline = true;  // guessing costs nothing
  return r;
}

std::optional<LatentPair> mimic_latent_pair(core::EncoderPair& encoders,
                                            const core::WaveKeyConfig& config,
                                            const sim::ScenarioConfig& victim_scenario,
                                            const MimicSkill& skill, std::uint64_t seed) {
  // Victim session: produces the true f_M.
  sim::ScenarioSimulator simulator(victim_scenario, seed);
  const sim::SessionRecording victim = simulator.run();

  imu::ImuPipelineConfig ic;
  ic.window_s = config.gesture_window_s;
  const auto victim_imu = imu::process_imu(victim.imu, ic);
  if (!victim_imu) return std::nullopt;
  Matrix dummy_rfid(2, 2);
  const core::Sample victim_sample =
      core::WaveKeyDataset::make_sample(victim_imu->linear_accel, dummy_rfid, config);

  // Mimic: distorted copy of the trajectory, recorded with the mimic's own
  // device and processed identically.
  Rng rng(seed ^ 0x313131C1ull);
  const MimicTrajectory mimic(victim.trajectory, skill, rng);
  sim::ImuSensor mimic_sensor(victim_scenario.device, rng);
  const sim::ImuRecord mimic_rec =
      mimic_sensor.record(mimic, 0.0, mimic.total_duration(), rng);
  const auto mimic_imu = imu::process_imu(mimic_rec, ic);
  if (!mimic_imu) return std::nullopt;
  const core::Sample mimic_sample =
      core::WaveKeyDataset::make_sample(mimic_imu->linear_accel, dummy_rfid, config);

  LatentPair pair;
  pair.victim = encoders.imu_features(victim_sample.imu);
  pair.attacker = encoders.imu_features(mimic_sample.imu);
  return pair;
}

std::optional<SpoofAttemptResult> run_mimic_attack(core::EncoderPair& encoders,
                                                   const core::SeedQuantizer& quantizer,
                                                   const core::WaveKeyConfig& config,
                                                   const sim::ScenarioConfig& victim_scenario,
                                                   const MimicSkill& skill, std::uint64_t seed) {
  const auto latents = mimic_latent_pair(encoders, config, victim_scenario, skill, seed);
  if (!latents) return std::nullopt;
  const BitVec victim_seed = core::make_key_seed(latents->victim, quantizer);
  const BitVec mimic_seed = core::make_key_seed(latents->attacker, quantizer);

  SpoofAttemptResult r;
  r.mismatch = mimic_seed.mismatch_ratio(victim_seed);
  r.seed_accepted = r.mismatch <= config.eta;
  r.within_deadline = true;  // the mimic acts live
  return r;
}

std::optional<SpoofAttemptResult> run_camera_spoof(core::EncoderPair& encoders,
                                                   const core::SeedQuantizer& quantizer,
                                                   const core::WaveKeyConfig& config,
                                                   const sim::ScenarioConfig& victim_scenario,
                                                   const sim::CameraConfig& camera_config,
                                                   std::uint64_t seed) {
  sim::ScenarioSimulator simulator(victim_scenario, seed);
  const sim::SessionRecording victim = simulator.run();

  imu::ImuPipelineConfig ic;
  ic.window_s = config.gesture_window_s;
  const auto victim_imu = imu::process_imu(victim.imu, ic);
  if (!victim_imu) return std::nullopt;
  Matrix dummy_rfid(2, 2);
  const core::Sample victim_sample =
      core::WaveKeyDataset::make_sample(victim_imu->linear_accel, dummy_rfid, config);
  const BitVec victim_seed =
      core::make_key_seed(encoders.imu_features(victim_sample.imu), quantizer);

  // Camera three meters away, line of sight to the hand (paper setup).
  Rng rng(seed ^ 0xCA3E3Aull);
  const Vec3 view{1.0, 0.3, 0.0};
  const auto attack =
      run_camera_attack(encoders, quantizer, config, victim.trajectory, camera_config, view, rng);
  if (!attack) return std::nullopt;

  SpoofAttemptResult r;
  r.mismatch = attack->seed.mismatch_ratio(victim_seed);
  r.seed_accepted = r.mismatch <= config.eta;
  r.within_deadline = attack->within_deadline;
  return r;
}

std::optional<double> run_signal_spoof(core::EncoderPair& encoders,
                                       const core::SeedQuantizer& quantizer,
                                       const core::WaveKeyConfig& config,
                                       const sim::ScenarioConfig& victim_scenario,
                                       std::uint64_t seed) {
  // The victim performs their gesture...
  sim::ScenarioSimulator victim_sim(victim_scenario, seed);
  const sim::SessionRecording victim = victim_sim.run();
  // ...but the reader hears a *replayed* recording of a different gesture
  // (the adversary's spoofed backscatter).
  sim::ScenarioSimulator spoof_sim(victim_scenario, seed ^ 0x5F00Full);
  const sim::SessionRecording spoof = spoof_sim.run();

  imu::ImuPipelineConfig ic;
  ic.window_s = config.gesture_window_s;
  rfid::RfidPipelineConfig rc;
  rc.window_s = config.gesture_window_s;
  const auto imu_out = imu::process_imu(victim.imu, ic);
  const auto rfid_out = rfid::process_rfid(spoof.rfid, rc);
  if (!imu_out || !rfid_out) return std::nullopt;

  const core::Sample sample =
      core::WaveKeyDataset::make_sample(imu_out->linear_accel, rfid_out->processed, config);
  const BitVec seed_m = core::make_key_seed(encoders.imu_features(sample.imu), quantizer);
  const BitVec seed_r = core::make_key_seed(encoders.rfid_features(sample.rfid), quantizer);
  return seed_m.mismatch_ratio(seed_r);
}

protocol::Interceptor make_eavesdropper(protocol::Bytes* transcript) {
  return [transcript](protocol::InFlightMessage& msg) -> double {
    transcript->insert(transcript->end(), msg.payload.begin(), msg.payload.end());
    return 0.0;
  };
}

protocol::Interceptor make_tamperer(protocol::MessageType target, std::size_t flip_bit) {
  return [target, flip_bit](protocol::InFlightMessage& msg) -> double {
    if (msg.type == target && !msg.payload.empty()) {
      const std::size_t bit = flip_bit % (msg.payload.size() * 8);
      msg.payload[bit / 8] ^= static_cast<std::uint8_t>(1u << (bit % 8));
    }
    return 0.0;
  };
}

protocol::Interceptor make_delayer(protocol::MessageType target, double delay_s) {
  return [target, delay_s](protocol::InFlightMessage& msg) -> double {
    return msg.type == target ? delay_s : 0.0;
  };
}

}  // namespace wavekey::attacks
