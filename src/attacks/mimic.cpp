#include "attacks/mimic.hpp"

#include <cmath>

namespace wavekey::attacks {

MimicSkill MimicSkill::skilled() {
  MimicSkill s;
  s.reaction_delay_s = 0.15;
  s.reaction_jitter_s = 0.04;
  s.tracking_bandwidth_hz = 1.5;
  s.tempo_error = 0.03;
  s.drift_amp_s = 0.05;
  s.amplitude_error = 0.10;
  s.extra_motion_ratio = 0.15;
  return s;
}

MimicSkill MimicSkill::average() { return {}; }

MimicTrajectory::MimicTrajectory(const sim::Trajectory& victim, const MimicSkill& skill,
                                 Rng& rng)
    : victim_(&victim) {
  delay_ = std::max(0.05, skill.reaction_delay_s + rng.normal(0.0, skill.reaction_jitter_s));
  const double tempo = 1.0 + rng.normal(0.0, skill.tempo_error);
  const sim::SinusoidSum drift = sim::SinusoidSum::random(rng, 3, 0.1, 0.6, skill.drift_amp_s);
  const Vec3 scale{1.0 + rng.normal(0.0, skill.amplitude_error),
                   1.0 + rng.normal(0.0, skill.amplitude_error),
                   1.0 + rng.normal(0.0, skill.amplitude_error)};
  sim::SinusoidSum extra[3];
  // Extra (involuntary) motion amplitude relative to a nominal 10 cm gesture.
  for (auto& e : extra)
    e = sim::SinusoidSum::random(rng, 5, 0.4, 3.0, 0.1 * skill.extra_motion_ratio);

  // Precompute the mimic's hand track. The human visuomotor loop cannot
  // anticipate a random signal: we model tracking as the victim's (time
  // warped, amplitude-misjudged) trajectory passed through a *causal*
  // second-order low-pass with the skill's tracking bandwidth — high
  // frequency submovements are simply not reproduced — plus additive
  // involuntary motion.
  const double t_end = victim.total_duration();
  const std::size_t n = static_cast<std::size_t>(t_end / track_dt_) + 2;
  track_.resize(n);

  const double tau = 1.0 / (2.0 * M_PI * skill.tracking_bandwidth_hz);
  const double alpha = track_dt_ / (tau + track_dt_);
  const double t0 = victim.motion_start();
  Vec3 stage1, stage2;
  for (std::size_t i = 0; i < n; ++i) {
    const double t = static_cast<double>(i) * track_dt_;
    // What the mimic is *trying* to do right now: the victim's pose at the
    // warped time (reaction delay + tempo error + slow drift).
    double tv = t0;
    if (t > t0 + delay_) tv = t0 + (t - t0 - delay_) / tempo + drift.value(t);
    const Vec3 target = victim.position(tv);
    const Vec3 scaled{target.x * scale.x, target.y * scale.y, target.z * scale.z};
    // Two cascaded one-pole stages = second-order causal tracking dynamics.
    stage1 += (scaled - stage1) * alpha;
    stage2 += (stage1 - stage2) * alpha;
    Vec3 p = stage2;
    if (t > t0 + delay_) {
      p += Vec3{extra[0].value(t) - extra[0].value(t0 + delay_),
                extra[1].value(t) - extra[1].value(t0 + delay_),
                extra[2].value(t) - extra[2].value(t0 + delay_)};
    }
    track_[i] = p;
  }

  for (auto& om : omega_) om = sim::SinusoidSum::random(rng, 4, 0.4, 3.0, 0.5);
  q0_ = Quaternion::from_axis_angle({rng.normal(), rng.normal(), rng.normal()},
                                    rng.uniform(0.0, 0.9));

  const std::size_t steps = static_cast<std::size_t>(t_end / fine_dt_) + 2;
  attitude_track_.reserve(steps);
  Quaternion q = q0_;
  attitude_track_.push_back(q);
  for (std::size_t i = 1; i < steps; ++i) {
    const double t = static_cast<double>(i - 1) * fine_dt_;
    q = q.integrated(angular_rate_body(t), fine_dt_);
    attitude_track_.push_back(q);
  }
}

Vec3 MimicTrajectory::position(double t) const {
  if (t <= 0.0) return track_.front();
  const double idx_f = t / track_dt_;
  const auto idx = static_cast<std::size_t>(idx_f);
  if (idx + 1 >= track_.size()) return track_.back();
  const double frac = idx_f - static_cast<double>(idx);
  return track_[idx] * (1.0 - frac) + track_[idx + 1] * frac;
}

Vec3 MimicTrajectory::velocity(double t) const {
  const double h = 2.0 * track_dt_;
  return (position(t + h) - position(t - h)) / (2.0 * h);
}

Vec3 MimicTrajectory::acceleration(double t) const {
  const double h = 2.0 * track_dt_;
  return (position(t + h) - position(t) * 2.0 + position(t - h)) / (h * h);
}

Vec3 MimicTrajectory::angular_rate_body(double t) const {
  if (t <= victim_->motion_start() + delay_) return {};
  return {omega_[0].value(t), omega_[1].value(t), omega_[2].value(t)};
}

Quaternion MimicTrajectory::orientation(double t) const {
  if (t <= 0.0) return attitude_track_.front();
  const auto idx = static_cast<std::size_t>(t / fine_dt_);
  if (idx + 1 >= attitude_track_.size()) return attitude_track_.back();
  const double t_grid = static_cast<double>(idx) * fine_dt_;
  return attitude_track_[idx].integrated(angular_rate_body(t_grid), t - t_grid);
}

double MimicTrajectory::motion_start() const { return victim_->motion_start() + delay_; }

}  // namespace wavekey::attacks
