#pragma once

// Attack campaign drivers for the security evaluation (SV / SVI-E):
// device spoofing by random guessing, gesture mimicking, camera recovery,
// RFID signal spoofing, and protocol-level interceptors (eavesdrop, MitM).

#include <cstdint>
#include <optional>

#include "attacks/camera_attack.hpp"
#include "attacks/mimic.hpp"
#include "core/config.hpp"
#include "core/encoders.hpp"
#include "core/pairing.hpp"
#include "core/seed_quantizer.hpp"
#include "protocol/session.hpp"
#include "sim/scenario.hpp"

namespace wavekey::attacks {

/// Result of one device-spoofing attempt against a victim session.
struct SpoofAttemptResult {
  double mismatch = 1.0;       ///< attacker seed vs victim S_M
  bool seed_accepted = false;  ///< mismatch <= eta (reconciliation would pass)
  bool within_deadline = true; ///< attack latency fits the tau window
  bool success() const { return seed_accepted && within_deadline; }
};

/// Random-guessing spoof: draws a uniform seed (empirical check of Eq. (4)).
SpoofAttemptResult run_random_guess_attack(const BitVec& victim_seed, double eta,
                                           crypto::Drbg& rng);

/// Gesture-mimicking spoof: simulates the victim's session, a mimic
/// replicates the trajectory holding their own device, both run the key-seed
/// pipeline, compare. Returns nullopt when either pipeline rejects its
/// recording.
std::optional<SpoofAttemptResult> run_mimic_attack(core::EncoderPair& encoders,
                                                   const core::SeedQuantizer& quantizer,
                                                   const core::WaveKeyConfig& config,
                                                   const sim::ScenarioConfig& victim_scenario,
                                                   const MimicSkill& skill, std::uint64_t seed);

/// Latent feature vectors of a victim and their mimic for one attack
/// instance (used by the N_b sweep, which re-quantizes fixed latents).
struct LatentPair {
  std::vector<double> victim;
  std::vector<double> attacker;
};
std::optional<LatentPair> mimic_latent_pair(core::EncoderPair& encoders,
                                            const core::WaveKeyConfig& config,
                                            const sim::ScenarioConfig& victim_scenario,
                                            const MimicSkill& skill, std::uint64_t seed);

/// Camera-recovery spoof against a fresh victim session.
std::optional<SpoofAttemptResult> run_camera_spoof(core::EncoderPair& encoders,
                                                   const core::SeedQuantizer& quantizer,
                                                   const core::WaveKeyConfig& config,
                                                   const sim::ScenarioConfig& victim_scenario,
                                                   const sim::CameraConfig& camera_config,
                                                   std::uint64_t seed);

/// RFID signal spoofing (SV-A): the adversary overrides the reader's input
/// with a replayed recording of a *different* gesture. Returns the seed
/// mismatch this induces between the mobile and the server — key
/// establishment fails (and the attack is detected) when it exceeds eta.
std::optional<double> run_signal_spoof(core::EncoderPair& encoders,
                                       const core::SeedQuantizer& quantizer,
                                       const core::WaveKeyConfig& config,
                                       const sim::ScenarioConfig& victim_scenario,
                                       std::uint64_t seed);

/// Protocol interceptor that records all traffic (eavesdropper). The
/// returned blob is the concatenated transcript, for entropy/leakage checks.
protocol::Interceptor make_eavesdropper(protocol::Bytes* transcript);

/// Protocol interceptor that flips bits in every payload of the given type
/// (man-in-the-middle tampering).
protocol::Interceptor make_tamperer(protocol::MessageType target, std::size_t flip_bit);

/// Protocol interceptor that delays messages of the given type (used to
/// drive the tau-deadline defense).
protocol::Interceptor make_delayer(protocol::MessageType target, double delay_s);

}  // namespace wavekey::attacks
