#pragma once

// Camera-aided data-recovery attack (SV-B3 / SVI-E2): the adversary films
// the victim's gesture, reconstructs the 3-D (remote / Complexer-YOLO) or
// 2-D (in-situ / YoloV5) hand track, derives linear accelerations by double
// differentiation, runs the victim's own key-seed pipeline on the estimate,
// and attempts device spoofing with the resulting seed. Success requires
// both (a) a seed within the ECC tolerance of the victim's S_M and (b)
// meeting the protocol's tau deadline despite the video-processing latency.

#include <optional>

#include "core/config.hpp"
#include "core/encoders.hpp"
#include "core/seed_quantizer.hpp"
#include "numeric/bitvec.hpp"
#include "sim/camera.hpp"
#include "sim/trajectory.hpp"

namespace wavekey::attacks {

struct CameraAttackResult {
  BitVec seed;                ///< the attacker's recovered key-seed
  double processing_latency_s = 0.0;
  bool within_deadline = false;  ///< latency <= gesture window + tau
};

/// Runs the full camera-recovery pipeline against a victim gesture.
/// Returns nullopt when the attacker cannot even assemble a window (track
/// too short, onset not found).
std::optional<CameraAttackResult> run_camera_attack(core::EncoderPair& encoders,
                                                    const core::SeedQuantizer& quantizer,
                                                    const core::WaveKeyConfig& config,
                                                    const sim::Trajectory& victim,
                                                    const sim::CameraConfig& camera_config,
                                                    const Vec3& view_direction, Rng& rng);

}  // namespace wavekey::attacks
