#include "attacks/camera_attack.hpp"

#include <cmath>

#include "core/dataset.hpp"
#include "core/key_seed.hpp"
#include "dsp/resample.hpp"
#include "dsp/savitzky_golay.hpp"
#include "numeric/stats.hpp"

namespace wavekey::attacks {

std::optional<CameraAttackResult> run_camera_attack(core::EncoderPair& encoders,
                                                    const core::SeedQuantizer& quantizer,
                                                    const core::WaveKeyConfig& config,
                                                    const sim::Trajectory& victim,
                                                    const sim::CameraConfig& camera_config,
                                                    const Vec3& view_direction, Rng& rng) {
  const sim::CameraObserver camera(camera_config, view_direction);
  const sim::CameraTrack track =
      camera.observe(victim, 0.0, victim.total_duration(), rng);
  if (track.estimates.size() < 30) return std::nullopt;

  // Resample each axis onto the victim pipeline's 100 Hz grid with cubic
  // splines (the attacker needs second derivatives, linear interp has none).
  std::vector<double> ts, px, py, pz;
  ts.reserve(track.estimates.size());
  for (const auto& e : track.estimates) {
    ts.push_back(e.t);
    px.push_back(e.position.x);
    py.push_back(e.position.y);
    pz.push_back(e.position.z);
  }
  const double rate = 100.0;
  const auto n_grid = static_cast<std::size_t>((ts.back() - ts.front()) * rate);
  if (n_grid < 30) return std::nullopt;
  const auto grid = dsp::uniform_grid(ts.front(), rate, n_grid);
  std::vector<double> gx = dsp::interp_cubic(ts, px, grid);
  std::vector<double> gy = dsp::interp_cubic(ts, py, grid);
  std::vector<double> gz = dsp::interp_cubic(ts, pz, grid);

  // Denoise the position track before differentiating (the attacker is
  // competent: double differentiation of raw detections would explode).
  const dsp::SavitzkyGolayFilter sg(11, 3);
  gx = sg.apply(gx);
  gy = sg.apply(gy);
  gz = sg.apply(gz);

  // Displacement-threshold onset, mirroring the victim pipeline's anchor.
  const Vec3 origin{gx.front(), gy.front(), gz.front()};
  std::size_t anchor = n_grid;
  for (std::size_t i = 0; i < n_grid; ++i) {
    const Vec3 p{gx[i], gy[i], gz[i]};
    if ((p - origin).norm() >= 0.008) {
      anchor = i;
      break;
    }
  }
  const auto n_window = static_cast<std::size_t>(config.gesture_window_s * rate);
  if (anchor == n_grid || anchor + n_window + 1 >= n_grid) return std::nullopt;

  // Double differentiation -> linear accelerations over the window.
  Matrix a(n_window, 3);
  const double dt = 1.0 / rate;
  for (std::size_t i = 0; i < n_window; ++i) {
    const std::size_t j = std::max<std::size_t>(anchor + i, 1);
    a(i, 0) = (gx[j + 1] - 2.0 * gx[j] + gx[j - 1]) / (dt * dt);
    a(i, 1) = (gy[j + 1] - 2.0 * gy[j] + gy[j - 1]) / (dt * dt);
    a(i, 2) = (gz[j + 1] - 2.0 * gz[j] + gz[j - 1]) / (dt * dt);
  }
  for (std::size_t c = 0; c < 3; ++c) {
    const auto col = a.col(c);
    const double m = mean(col);
    for (std::size_t r = 0; r < a.rows(); ++r) a(r, c) -= m;
  }

  // Run the victim's own key-seed pipeline on the estimate (white-box model:
  // the attacker has the public encoders).
  Matrix dummy_rfid(2, 2);  // make_sample needs a placeholder RFID matrix
  const core::Sample sample = core::WaveKeyDataset::make_sample(a, dummy_rfid, config);

  CameraAttackResult result;
  result.seed = core::make_key_seed(encoders.imu_features(sample.imu), quantizer);
  result.processing_latency_s = track.processing_latency_s;
  result.within_deadline =
      result.processing_latency_s <= config.gesture_window_s + config.tau_s;
  return result;
}

}  // namespace wavekey::attacks
