#pragma once

// Gesture-mimicking adversary (SV-B2 / SVI-E1 of the paper): an attacker
// watches the victim's gesture and replicates it with their own device. The
// replica differs from the original by human motor limitations, which we
// model explicitly from the motor-control literature's error categories:
// reaction delay, tempo error, slow timing drift, per-axis amplitude error,
// and additive uncorrelated motion. The mimicking device also has its own
// (unrelated) wrist-rotation profile and attitude.

#include <memory>

#include "numeric/rng.hpp"
#include "sim/gesture.hpp"
#include "sim/trajectory.hpp"

namespace wavekey::attacks {

/// Skill model of the mimicking human. The dominant limitation is the
/// visuomotor tracking bandwidth: a human shadowing an *unpredictable*
/// signal reproduces only its sub-bandwidth content, with reaction lag
/// (manual pursuit-tracking literature: ~1 Hz bandwidth, 150-300 ms lag).
struct MimicSkill {
  double reaction_delay_s = 0.25;     ///< mean start lag behind the victim
  double reaction_jitter_s = 0.08;
  double tracking_bandwidth_hz = 0.9; ///< causal low-pass on the copied motion
  double tempo_error = 0.06;          ///< 1 sigma relative speed error
  double drift_amp_s = 0.08;          ///< slow timing drift amplitude
  double amplitude_error = 0.20;      ///< 1 sigma per-axis scale error
  double extra_motion_ratio = 0.30;   ///< involuntary motion / nominal gesture

  /// A practiced mimic (lower errors; used for sensitivity sweeps).
  static MimicSkill skilled();
  /// A casual observer-mimic (paper's volunteers).
  static MimicSkill average();
};

/// The mimicking hand's trajectory: a distorted copy of the victim's.
class MimicTrajectory final : public sim::Trajectory {
 public:
  /// @param victim  the observed gesture (must outlive this object)
  MimicTrajectory(const sim::Trajectory& victim, const MimicSkill& skill, Rng& rng);

  Vec3 position(double t) const override;
  Vec3 velocity(double t) const override;
  Vec3 acceleration(double t) const override;
  Vec3 angular_rate_body(double t) const override;
  Quaternion orientation(double t) const override;
  double motion_start() const override;
  double total_duration() const override { return victim_->total_duration(); }

 private:
  const sim::Trajectory* victim_;
  double delay_ = 0.0;
  double track_dt_ = 5e-3;        // precomputed hand-track step
  std::vector<Vec3> track_;       // the mimic's actual hand positions
  sim::SinusoidSum omega_[3];     // mimic's own wrist rotation
  Quaternion q0_;
  double fine_dt_ = 1e-3;
  std::vector<Quaternion> attitude_track_;
};

}  // namespace wavekey::attacks
