#include "dsp/savitzky_golay.hpp"

#include <stdexcept>

#include "numeric/matrix.hpp"

namespace wavekey::dsp {
namespace {

// Least-squares fit weights: for window positions t_0..t_{w-1} (centered
// integers) and evaluation offset t_eval, the smoothed value is
// sum_j c_j x_j with c = e_eval^T (V^T V)^{-1} V^T where V is the
// Vandermonde matrix of the positions. We compute each row by solving the
// small normal-equation system directly.
std::vector<double> fit_weights(std::size_t window, std::size_t order, double t_eval) {
  const auto w = static_cast<std::ptrdiff_t>(window);
  const std::ptrdiff_t half = w / 2;
  const std::size_t m = order + 1;

  // Normal matrix N(i,j) = sum_t t^(i+j); moment vector handled per-column.
  wavekey::Matrix normal(m, m);
  for (std::size_t i = 0; i < m; ++i)
    for (std::size_t j = 0; j < m; ++j) {
      double s = 0.0;
      for (std::ptrdiff_t t = -half; t <= half; ++t) {
        double p = 1.0;
        for (std::size_t k = 0; k < i + j; ++k) p *= static_cast<double>(t);
        s += p;
      }
      normal(i, j) = s;
    }

  // Solve N a = v_k for each basis vector is equivalent to computing
  // c_j = p(t_j) where p solves the normal equations with rhs powers of
  // t_eval. Instead: weight for sample at position t_j is
  // sum_i (N^{-1} T(t_eval))_i * t_j^i, with T(t_eval) = (1, t_eval, ...).
  std::vector<double> rhs(m);
  {
    double p = 1.0;
    for (std::size_t i = 0; i < m; ++i) {
      rhs[i] = p;
      p *= t_eval;
    }
  }
  const std::vector<double> a = wavekey::solve_linear_system(normal, rhs);

  std::vector<double> coeffs(window);
  for (std::ptrdiff_t t = -half; t <= half; ++t) {
    double s = 0.0;
    double p = 1.0;
    for (std::size_t i = 0; i < m; ++i) {
      s += a[i] * p;
      p *= static_cast<double>(t);
    }
    coeffs[static_cast<std::size_t>(t + half)] = s;
  }
  return coeffs;
}

}  // namespace

SavitzkyGolayFilter::SavitzkyGolayFilter(std::size_t window_length, std::size_t poly_order)
    : window_(window_length), order_(poly_order) {
  if (window_ < 3 || window_ % 2 == 0)
    throw std::invalid_argument("SavitzkyGolayFilter: window must be odd and >= 3");
  if (order_ >= window_)
    throw std::invalid_argument("SavitzkyGolayFilter: order must be < window length");

  center_coeffs_ = fit_weights(window_, order_, 0.0);

  // Edge evaluation points: offsets -half .. -1 (mirrored for the right edge).
  const auto half = static_cast<std::ptrdiff_t>(window_ / 2);
  edge_coeffs_.reserve(static_cast<std::size_t>(half));
  for (std::ptrdiff_t j = -half; j < 0; ++j)
    edge_coeffs_.push_back(fit_weights(window_, order_, static_cast<double>(j)));
}

std::vector<double> SavitzkyGolayFilter::apply(std::span<const double> xs) const {
  const std::size_t n = xs.size();
  std::vector<double> out(n, 0.0);
  if (n == 0) return out;
  const std::size_t half = window_ / 2;
  if (n < window_) {
    // Window does not fit: degrade gracefully to the identity (the paper's
    // streams are hundreds of samples, this path only guards tiny inputs).
    out.assign(xs.begin(), xs.end());
    return out;
  }

  for (std::size_t i = 0; i < n; ++i) {
    std::span<const double> coeffs;
    std::size_t start;
    if (i < half) {
      coeffs = edge_coeffs_[i];
      start = 0;
    } else if (i >= n - half) {
      // Right edge: mirror the left-edge weights.
      const std::size_t dist = n - 1 - i;  // < half
      const auto& fwd = edge_coeffs_[dist];
      static thread_local std::vector<double> reversed;
      reversed.assign(fwd.rbegin(), fwd.rend());
      coeffs = reversed;
      start = n - window_;
    } else {
      coeffs = center_coeffs_;
      start = i - half;
    }
    double s = 0.0;
    for (std::size_t j = 0; j < window_; ++j) s += coeffs[j] * xs[start + j];
    out[i] = s;
  }
  return out;
}

}  // namespace wavekey::dsp
