#pragma once

// Binary-reflected Gray code (SIV-C). Adjacent quantization bins receive
// codewords differing in exactly one bit, so a feature value that lands one
// bin away from its counterpart costs only a single seed-bit mismatch.

#include <cstdint>

#include "numeric/bitvec.hpp"

namespace wavekey::dsp {

/// i-th binary-reflected Gray codeword: g = i ^ (i >> 1).
std::uint32_t gray_encode(std::uint32_t i);

/// Inverse of gray_encode.
std::uint32_t gray_decode(std::uint32_t g);

/// The Gray codeword of `index` as `nbits` bits (LSB first). Throws
/// std::invalid_argument if the codeword does not fit in nbits.
BitVec gray_bits(std::uint32_t index, std::size_t nbits);

}  // namespace wavekey::dsp
