#pragma once

// Resampling / interpolation utilities. The mobile pipeline aligns the
// gyroscope, accelerometer, and magnetometer streams (whose hardware rates
// and timestamps differ) onto a common 100 Hz grid by interpolation
// (SIV-B2), and the camera attacker resamples its frame-rate position track.

#include <span>
#include <vector>

namespace wavekey::dsp {

/// Linearly interpolates the samples (ts[i], xs[i]) at the query times.
/// `ts` must be strictly increasing and the same length as `xs`.
/// Queries outside [ts.front(), ts.back()] clamp to the boundary value.
/// Throws std::invalid_argument on malformed input.
std::vector<double> interp_linear(std::span<const double> ts, std::span<const double> xs,
                                  std::span<const double> query_ts);

/// Natural cubic-spline interpolation at the query times, same contract as
/// interp_linear. Used where double differentiation follows (camera attack),
/// since linear interpolation has zero second derivative almost everywhere.
std::vector<double> interp_cubic(std::span<const double> ts, std::span<const double> xs,
                                 std::span<const double> query_ts);

/// Convenience: uniform time grid [t0, t0 + (n-1)/rate_hz] with n points.
std::vector<double> uniform_grid(double t0, double rate_hz, std::size_t n);

}  // namespace wavekey::dsp
