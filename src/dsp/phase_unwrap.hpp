#pragma once

// RFID phase unwrapping (SIV-B2 of the paper). Impinj-class readers report
// backscatter phase wrapped into [0, 2*pi); unwrapping removes the 2*pi jumps
// so the series reflects the true radial movement of the tag.

#include <span>
#include <vector>

namespace wavekey::dsp {

/// Unwraps a phase series measured modulo 2*pi.
///
/// Any step between consecutive samples whose magnitude exceeds pi is treated
/// as a wrap and corrected by the nearest multiple of 2*pi — exactly the
/// "eliminate any phase jumping point by adding 2*pi or -2*pi" rule in the
/// paper (generalized to multiple wraps per step for robustness against
/// dropped reads).
std::vector<double> unwrap_phase(std::span<const double> wrapped);

/// Wraps an arbitrary phase into [0, 2*pi). Used by the channel simulator and
/// as the inverse for property tests (unwrap(wrap(x)) recovers x up to a
/// global 2*pi offset when |dx| < pi between samples).
double wrap_phase(double phase);

}  // namespace wavekey::dsp
