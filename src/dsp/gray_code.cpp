#include "dsp/gray_code.hpp"

#include <stdexcept>

namespace wavekey::dsp {

std::uint32_t gray_encode(std::uint32_t i) { return i ^ (i >> 1); }

std::uint32_t gray_decode(std::uint32_t g) {
  std::uint32_t i = g;
  for (std::uint32_t shift = 1; shift < 32; shift <<= 1) i ^= i >> shift;
  return i;
}

BitVec gray_bits(std::uint32_t index, std::size_t nbits) {
  const std::uint32_t g = gray_encode(index);
  if (nbits < 32 && (g >> nbits) != 0)
    throw std::invalid_argument("gray_bits: codeword does not fit");
  BitVec v(nbits);
  for (std::size_t b = 0; b < nbits; ++b) v.set(b, (g >> b) & 1);
  return v;
}

}  // namespace wavekey::dsp
