#include "dsp/quantizer.hpp"

#include <algorithm>
#include <bit>
#include <stdexcept>

#include "dsp/gray_code.hpp"
#include "numeric/stats.hpp"

namespace wavekey::dsp {

NormalQuantizer::NormalQuantizer(std::size_t num_bins, BinPlacement placement)
    : num_bins_(num_bins) {
  if (num_bins_ < 2) throw std::invalid_argument("NormalQuantizer: need >= 2 bins");
  bits_per_element_ = static_cast<std::size_t>(std::bit_width(num_bins_ - 1));

  boundaries_.reserve(num_bins_ - 1);
  if (placement == BinPlacement::kEqualProbability) {
    // Phi(b_i) = i / N_b  (Eq. (1)).
    for (std::size_t i = 1; i < num_bins_; ++i)
      boundaries_.push_back(
          normal_quantile(static_cast<double>(i) / static_cast<double>(num_bins_)));
  } else {
    constexpr double kRange = 3.0;  // +/- 3 sigma
    const double width = 2.0 * kRange / static_cast<double>(num_bins_);
    for (std::size_t i = 1; i < num_bins_; ++i)
      boundaries_.push_back(-kRange + width * static_cast<double>(i));
  }
}

std::size_t NormalQuantizer::bin_of(double x) const {
  const auto it = std::upper_bound(boundaries_.begin(), boundaries_.end(), x);
  return static_cast<std::size_t>(it - boundaries_.begin());
}

BitVec NormalQuantizer::quantize_value(double x) const {
  return gray_bits(static_cast<std::uint32_t>(bin_of(x)), bits_per_element_);
}

BitVec NormalQuantizer::quantize(std::span<const double> feature) const {
  BitVec seed;
  for (double x : feature) seed.append(quantize_value(x));
  return seed;
}

}  // namespace wavekey::dsp
