#include "dsp/phase_unwrap.hpp"

#include <cmath>

namespace wavekey::dsp {

std::vector<double> unwrap_phase(std::span<const double> wrapped) {
  std::vector<double> out;
  out.reserve(wrapped.size());
  if (wrapped.empty()) return out;

  constexpr double kTwoPi = 2.0 * M_PI;
  out.push_back(wrapped[0]);
  double offset = 0.0;
  for (std::size_t i = 1; i < wrapped.size(); ++i) {
    double delta = wrapped[i] - wrapped[i - 1];
    // Correct by however many full turns bring the step into (-pi, pi].
    while (delta > M_PI) {
      delta -= kTwoPi;
      offset -= kTwoPi;
    }
    while (delta < -M_PI) {
      delta += kTwoPi;
      offset += kTwoPi;
    }
    out.push_back(wrapped[i] + offset);
  }
  return out;
}

double wrap_phase(double phase) {
  constexpr double kTwoPi = 2.0 * M_PI;
  double w = std::fmod(phase, kTwoPi);
  if (w < 0.0) w += kTwoPi;
  return w;
}

}  // namespace wavekey::dsp
