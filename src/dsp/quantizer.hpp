#pragma once

// Feature-vector quantization (SIV-C, Eq. (1)). The encoders end in
// batch-norm layers, so each latent element is ~N(0,1) at inference time.
// The quantizer splits the real line into N_b bins of equal probability
// under the standard normal (boundaries solve Phi(b_i) = i/N_b) and encodes
// the bin index with a Gray code, maximizing per-element seed entropy while
// keeping near-miss quantizations one bit apart.

#include <cstddef>
#include <span>
#include <vector>

#include "numeric/bitvec.hpp"

namespace wavekey::dsp {

/// How bin boundaries are placed. EqualProbability is the paper's scheme;
/// EqualWidth is kept as an ablation (bench_fig7 compares seed entropy).
enum class BinPlacement {
  kEqualProbability,
  kEqualWidth,
};

/// Quantizer from standard-normal-distributed reals to Gray-coded bits.
class NormalQuantizer {
 public:
  /// @param num_bins  N_b in the paper; must be >= 2.
  /// @param placement bin-boundary rule (paper uses equal probability)
  /// For kEqualWidth the bins tile [-3, 3] sigma with open outer bins.
  explicit NormalQuantizer(std::size_t num_bins,
                           BinPlacement placement = BinPlacement::kEqualProbability);

  std::size_t num_bins() const { return num_bins_; }

  /// Bits per quantized element: ceil(log2(N_b)). (The paper's Eq. (2) uses
  /// the fractional log2; see DESIGN.md for the discrepancy note.)
  std::size_t bits_per_element() const { return bits_per_element_; }

  /// Bin index in [0, N_b) for a real value.
  std::size_t bin_of(double x) const;

  /// Interior bin boundaries (N_b - 1 ascending values).
  std::span<const double> boundaries() const { return boundaries_; }

  /// Quantizes one value to its Gray-coded bits (LSB first).
  BitVec quantize_value(double x) const;

  /// Quantizes a whole feature vector into the concatenated key-seed:
  /// l_s = len(f) * bits_per_element() bits.
  BitVec quantize(std::span<const double> feature) const;

 private:
  std::size_t num_bins_;
  std::size_t bits_per_element_;
  std::vector<double> boundaries_;
};

}  // namespace wavekey::dsp
