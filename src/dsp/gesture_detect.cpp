#include "dsp/gesture_detect.hpp"

#include <algorithm>

#include "numeric/stats.hpp"

namespace wavekey::dsp {

std::vector<double> moving_variance(std::span<const double> xs, std::size_t window) {
  std::vector<double> out;
  if (window == 0 || xs.size() < window) return out;
  out.reserve(xs.size() - window + 1);

  // Rolling sums; numerically fine for the short windows used here.
  double s = 0.0, s2 = 0.0;
  for (std::size_t i = 0; i < window; ++i) {
    s += xs[i];
    s2 += xs[i] * xs[i];
  }
  const double inv = 1.0 / static_cast<double>(window);
  auto push = [&] {
    const double m = s * inv;
    out.push_back(std::max(0.0, s2 * inv - m * m));
  };
  push();
  for (std::size_t i = window; i < xs.size(); ++i) {
    s += xs[i] - xs[i - window];
    s2 += xs[i] * xs[i] - xs[i - window] * xs[i - window];
    push();
  }
  return out;
}

std::optional<std::size_t> detect_gesture_start(std::span<const double> xs,
                                                const GestureDetectConfig& cfg) {
  const auto mv = moving_variance(xs, cfg.window);
  if (mv.empty()) return std::nullopt;

  const std::size_t nbase = std::min(cfg.baseline_len, mv.size());
  double baseline = 0.0;
  for (std::size_t i = 0; i < nbase; ++i) baseline += mv[i];
  baseline = std::max(baseline / static_cast<double>(nbase), cfg.min_baseline);

  for (std::size_t i = 0; i < mv.size(); ++i) {
    if (mv[i] > cfg.threshold_ratio * baseline) {
      // Coarse trigger confirmed. Refine: walk back to the first window of
      // the contiguous departure that contains this trigger.
      std::size_t onset = i;
      while (onset > 0 && mv[onset - 1] > cfg.refine_ratio * baseline) --onset;
      // Window [onset, onset+window) is the first to depart; the newest
      // sample in it is where the motion actually began.
      return onset + cfg.window - 1;
    }
  }
  return std::nullopt;
}

}  // namespace wavekey::dsp
