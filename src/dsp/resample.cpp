#include "dsp/resample.hpp"

#include <algorithm>
#include <stdexcept>

namespace wavekey::dsp {
namespace {

void check_series(std::span<const double> ts, std::span<const double> xs) {
  if (ts.size() != xs.size()) throw std::invalid_argument("interp: ts/xs length mismatch");
  if (ts.empty()) throw std::invalid_argument("interp: empty series");
  for (std::size_t i = 1; i < ts.size(); ++i)
    if (ts[i] <= ts[i - 1]) throw std::invalid_argument("interp: ts must be strictly increasing");
}

// Rolling upper-bound cursor. The IMU/RFID pipelines always resample onto
// monotonically increasing query grids, so successive interior queries move
// the bracket forward by a handful of samples — a linear walk makes the
// whole resample O(n + m) instead of O(m log n). A query that moves
// backwards falls back to one binary search and re-arms the cursor, so
// arbitrary query orders stay correct (and identical to upper_bound).
class SegmentCursor {
 public:
  explicit SegmentCursor(std::span<const double> ts) : ts_(ts) {}

  /// For interior q (ts.front() < q < ts.back()): the upper_bound index,
  /// i.e. the smallest hi with ts[hi] > q.
  std::size_t locate(double q) {
    if (armed_ && q >= last_q_) {
      while (ts_[hi_] <= q) ++hi_;
    } else {
      hi_ = static_cast<std::size_t>(std::upper_bound(ts_.begin(), ts_.end(), q) -
                                     ts_.begin());
    }
    armed_ = true;
    last_q_ = q;
    return hi_;
  }

 private:
  std::span<const double> ts_;
  std::size_t hi_ = 1;
  double last_q_ = 0.0;
  bool armed_ = false;
};

}  // namespace

std::vector<double> interp_linear(std::span<const double> ts, std::span<const double> xs,
                                  std::span<const double> query_ts) {
  check_series(ts, xs);
  std::vector<double> out;
  out.reserve(query_ts.size());
  SegmentCursor cursor(ts);
  for (double q : query_ts) {
    if (q <= ts.front()) {
      out.push_back(xs.front());
      continue;
    }
    if (q >= ts.back()) {
      out.push_back(xs.back());
      continue;
    }
    const std::size_t hi = cursor.locate(q);
    const std::size_t lo = hi - 1;
    const double f = (q - ts[lo]) / (ts[hi] - ts[lo]);
    out.push_back(xs[lo] * (1.0 - f) + xs[hi] * f);
  }
  return out;
}

std::vector<double> interp_cubic(std::span<const double> ts, std::span<const double> xs,
                                 std::span<const double> query_ts) {
  check_series(ts, xs);
  const std::size_t n = ts.size();
  if (n < 3) return interp_linear(ts, xs, query_ts);

  // Natural cubic spline: solve the tridiagonal system for second
  // derivatives M_i with M_0 = M_{n-1} = 0 (Thomas algorithm).
  std::vector<double> h(n - 1);
  for (std::size_t i = 0; i + 1 < n; ++i) h[i] = ts[i + 1] - ts[i];

  std::vector<double> diag(n, 2.0), upper(n, 0.0), rhs(n, 0.0);
  for (std::size_t i = 1; i + 1 < n; ++i) {
    const double hl = h[i - 1], hr = h[i];
    diag[i] = 2.0 * (hl + hr);
    upper[i] = hr;
    rhs[i] = 6.0 * ((xs[i + 1] - xs[i]) / hr - (xs[i] - xs[i - 1]) / hl);
  }
  // Forward elimination on interior rows (boundary rows stay M=0).
  std::vector<double> m(n, 0.0);
  std::vector<double> cprime(n, 0.0), dprime(n, 0.0);
  for (std::size_t i = 1; i + 1 < n; ++i) {
    const double lower = (i > 1) ? h[i - 1] : 0.0;
    const double denom = diag[i] - lower * cprime[i - 1];
    cprime[i] = upper[i] / denom;
    dprime[i] = (rhs[i] - lower * dprime[i - 1]) / denom;
  }
  for (std::size_t i = n - 1; i-- > 1;) m[i] = dprime[i] - cprime[i] * m[i + 1];

  std::vector<double> out;
  out.reserve(query_ts.size());
  SegmentCursor cursor(ts);
  for (double q : query_ts) {
    if (q <= ts.front()) {
      out.push_back(xs.front());
      continue;
    }
    if (q >= ts.back()) {
      out.push_back(xs.back());
      continue;
    }
    const std::size_t hi = cursor.locate(q);
    const std::size_t lo = hi - 1;
    const double hseg = h[lo];
    const double a = (ts[hi] - q) / hseg;
    const double b = (q - ts[lo]) / hseg;
    const double val = a * xs[lo] + b * xs[hi] +
                       ((a * a * a - a) * m[lo] + (b * b * b - b) * m[hi]) * hseg * hseg / 6.0;
    out.push_back(val);
  }
  return out;
}

std::vector<double> uniform_grid(double t0, double rate_hz, std::size_t n) {
  std::vector<double> ts(n);
  for (std::size_t i = 0; i < n; ++i) ts[i] = t0 + static_cast<double>(i) / rate_hz;
  return ts;
}

}  // namespace wavekey::dsp
