#pragma once

// Savitzky-Golay smoothing filter (Savitzky & Golay, 1964), the denoiser the
// paper applies to both RFID phase and magnitude streams (SIV-B2). It fits a
// low-order polynomial to a sliding window by least squares and evaluates it
// at the window center, which preserves local extrema far better than a
// moving average -- the property the paper relies on for key generation.

#include <cstddef>
#include <span>
#include <vector>

namespace wavekey::dsp {

/// A Savitzky-Golay filter with precomputed convolution coefficients.
class SavitzkyGolayFilter {
 public:
  /// @param window_length  odd number of samples in the sliding window (>= 3)
  /// @param poly_order     polynomial order (< window_length)
  /// Throws std::invalid_argument on malformed parameters.
  SavitzkyGolayFilter(std::size_t window_length, std::size_t poly_order);

  /// Applies the filter. The first/last half-window samples are handled by
  /// fitting the window polynomial anchored at the series edge (no phantom
  /// zero padding), so edges are not dragged toward zero.
  std::vector<double> apply(std::span<const double> xs) const;

  std::size_t window_length() const { return window_; }
  std::size_t poly_order() const { return order_; }

  /// The center-point convolution coefficients (exposed for tests: they must
  /// sum to 1 and reproduce polynomials up to `poly_order` exactly).
  std::span<const double> coefficients() const { return center_coeffs_; }

 private:
  std::size_t window_;
  std::size_t order_;
  std::vector<double> center_coeffs_;                // evaluate fit at window center
  std::vector<std::vector<double>> edge_coeffs_;     // evaluate fit at offset j from left edge
};

}  // namespace wavekey::dsp
