#pragma once

// Gesture-start detection (SIV-B1). WaveKey synchronizes the mobile device
// and RFID server without a shared clock: the user pauses the hand briefly,
// then starts the random gesture. Both sides detect the start as a
// significant increase in the moving variance of their own signal and begin
// recording there, so the two recordings are aligned to within a sample.

#include <cstddef>
#include <optional>
#include <span>
#include <vector>

namespace wavekey::dsp {

/// Parameters of the variance-jump detector.
///
/// Detection is two-stage: a *coarse trigger* fires when the moving variance
/// exceeds threshold_ratio x baseline (proof a gesture is happening), then
/// the onset is *refined* by walking back to the first window in which the
/// variance departed the baseline (refine_ratio x baseline). The refinement
/// matters because the two modalities have different trigger latencies (the
/// accelerometer sees the motion onset instantly, the RFID phase only after
/// the hand has displaced measurably); anchoring both sides to the first
/// departure keeps their windows aligned to within a few samples.
struct GestureDetectConfig {
  std::size_t window = 10;      ///< moving-variance window, in samples
  double threshold_ratio = 6.0; ///< coarse trigger: var > ratio * baseline
  double refine_ratio = 2.0;    ///< onset: first window above this ratio
  double min_baseline = 1e-12;  ///< floor for the baseline variance estimate
  std::size_t baseline_len = 20;///< samples used to estimate the idle baseline
};

/// Moving (population) variance of `xs` with the given window; entry i covers
/// samples [i, i+window). Result has xs.size() - window + 1 entries (empty if
/// the window does not fit).
std::vector<double> moving_variance(std::span<const double> xs, std::size_t window);

/// Returns the index of the first sample at which the signal's moving
/// variance exceeds `threshold_ratio` times the baseline (idle) variance, or
/// nullopt if the signal never wakes up. For multi-channel signals, call with
/// the per-sample Euclidean magnitude.
std::optional<std::size_t> detect_gesture_start(std::span<const double> xs,
                                                const GestureDetectConfig& cfg = {});

}  // namespace wavekey::dsp
