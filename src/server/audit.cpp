#include "server/audit.hpp"

#include <stdexcept>
#include <string_view>

#include "crypto/hmac.hpp"

namespace wavekey::server {

namespace {

using protocol::WireWriter;

crypto::Digest256 shard_genesis(const crypto::Digest256& seal_key, std::uint64_t shard) {
  constexpr std::string_view kDomain = "wavekey-audit-genesis";
  std::vector<std::uint8_t> input(kDomain.begin(), kDomain.end());
  for (std::size_t i = 0; i < 8; ++i)
    input.push_back(static_cast<std::uint8_t>(shard >> (8 * i)));
  return crypto::hmac_sha256(seal_key, input);
}

}  // namespace

const char* audit_kind_name(AuditKind kind) {
  switch (kind) {
    case AuditKind::kIssue: return "issue";
    case AuditKind::kIssueRefused: return "issue_refused";
    case AuditKind::kVerify: return "verify";
    case AuditKind::kRotate: return "rotate";
    case AuditKind::kRevoke: return "revoke";
    case AuditKind::kProvision: return "provision";
    case AuditKind::kHandoff: return "handoff";
    case AuditKind::kAccess: return "access";
  }
  return "unknown";
}

Bytes AuditRecord::serialize() const {
  WireWriter w;
  w.u8(static_cast<std::uint8_t>(kind));
  w.u64(tenant_id);
  w.u64(tag_uid);
  w.u64(actuator_id);
  w.u64(counter);
  w.u8(static_cast<std::uint8_t>(status));
  w.u64(time_us);
  return w.take();
}

AuditLog::AuditLog(Config config) : shards_(config.shards == 0 ? 1 : config.shards) {
  for (std::size_t s = 0; s < shards_.size(); ++s)
    shards_[s].genesis = shard_genesis(config.seal_key, s);
}

crypto::Digest256 AuditLog::link(const crypto::Digest256& prev,
                                 std::span<const std::uint8_t> record) {
  crypto::Sha256 hasher;
  hasher.update(prev);
  hasher.update(record);
  return hasher.finalize();
}

AuditHead AuditLog::append(const AuditRecord& record) {
  return append_to(static_cast<std::size_t>(record.tenant_id % shards_.size()), record);
}

AuditHead AuditLog::append_to(std::size_t shard, const AuditRecord& record) {
  Shard& s = shards_.at(shard);
  Bytes bytes = record.serialize();
  std::lock_guard<std::mutex> lock(s.mu);
  const crypto::Digest256& prev = s.links.empty() ? s.genesis : s.links.back();
  s.links.push_back(link(prev, bytes));
  s.records.push_back(std::move(bytes));
  return AuditHead{s.records.size(), s.links.back()};
}

AuditHead AuditLog::head(std::size_t shard) const {
  const Shard& s = shards_.at(shard);
  std::lock_guard<std::mutex> lock(s.mu);
  if (s.links.empty()) return AuditHead{0, s.genesis};
  return AuditHead{s.records.size(), s.links.back()};
}

std::uint64_t AuditLog::size(std::size_t shard) const {
  const Shard& s = shards_.at(shard);
  std::lock_guard<std::mutex> lock(s.mu);
  return s.records.size();
}

std::uint64_t AuditLog::total_size() const {
  std::uint64_t total = 0;
  for (std::size_t i = 0; i < shards_.size(); ++i) total += size(i);
  return total;
}

bool AuditLog::verify_head(std::size_t shard) const {
  const Shard& s = shards_.at(shard);
  std::lock_guard<std::mutex> lock(s.mu);
  if (s.links.empty()) return true;
  const std::size_t n = s.links.size();
  const crypto::Digest256& prev = n == 1 ? s.genesis : s.links[n - 2];
  return crypto::digest_equal(link(prev, s.records[n - 1]), s.links[n - 1]);
}

std::optional<std::uint64_t> AuditLog::verify_range(std::size_t shard, std::uint64_t from,
                                                    std::uint64_t to) const {
  const Shard& s = shards_.at(shard);
  std::lock_guard<std::mutex> lock(s.mu);
  if (to > s.records.size()) to = s.records.size();
  for (std::uint64_t i = from; i < to; ++i) {
    const crypto::Digest256& prev = i == 0 ? s.genesis : s.links[i - 1];
    if (!crypto::digest_equal(link(prev, s.records[i]), s.links[i])) return i;
  }
  return std::nullopt;
}

Bytes AuditLog::record_bytes(std::size_t shard, std::uint64_t index) const {
  const Shard& s = shards_.at(shard);
  std::lock_guard<std::mutex> lock(s.mu);
  return s.records.at(index);
}

void AuditLog::corrupt_record_for_test(std::size_t shard, std::uint64_t index,
                                       std::size_t offset, std::uint8_t xor_mask) {
  Shard& s = shards_.at(shard);
  std::lock_guard<std::mutex> lock(s.mu);
  Bytes& record = s.records.at(index);
  record.at(offset) ^= xor_mask;
}

}  // namespace wavekey::server
