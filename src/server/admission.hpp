#pragma once

// Admission control for the access server (DESIGN.md §9.3). Two distinct
// rejection mechanisms, surfaced as two distinct statuses:
//
//  * per-tenant token buckets (kRateLimited) — a misbehaving tenant burns
//    its own budget without crowding out the others; and
//  * load shedding (kShed) — when the server's bounded admission queue is
//    full, new requests are rejected *immediately* on the submit path
//    instead of queueing into latency that would blow deadlines anyway.
//
// Rejecting is O(1) and callback-synchronous, so overload degrades into
// cheap typed errors rather than unbounded queueing (the BoundedQueue
// blocking push stays reserved for the pairing engine, where backpressure
// is the right policy).
//
// Time is caller-supplied seconds, like the vault.
//
// Thread-safety: TokenBucket is externally synchronized; TenantLimiter's
// methods are safe from any thread (one mutex over the bucket map — cheap
// next to the HMAC work behind it, and the map is bounded).

#include <cstdint>
#include <mutex>
#include <unordered_map>

namespace wavekey::server {

/// Classic token bucket: `rate_per_s` tokens/s refill, `burst` capacity.
class TokenBucket {
 public:
  TokenBucket(double rate_per_s, double burst)
      : rate_(rate_per_s > 0.0 ? rate_per_s : 0.0),
        burst_(burst >= 1.0 ? burst : 1.0),
        tokens_(burst_) {}

  /// Consumes one token if available. `now_s` must be monotonic per bucket.
  bool try_acquire(double now_s) {
    refill(now_s);
    if (tokens_ < 1.0) return false;
    tokens_ -= 1.0;
    return true;
  }

  double tokens(double now_s) {
    refill(now_s);
    return tokens_;
  }

 private:
  void refill(double now_s) {
    if (now_s > last_s_) {
      tokens_ += (now_s - last_s_) * rate_;
      if (tokens_ > burst_) tokens_ = burst_;
      last_s_ = now_s;
    }
  }

  double rate_;
  double burst_;
  double tokens_;
  double last_s_ = 0.0;
};

struct AdmissionConfig {
  double rate_per_s = 200.0;     ///< sustained per-tenant request rate
  double burst = 32.0;           ///< per-tenant burst allowance
  std::size_t max_tenants = 4096;  ///< bucket-map bound (oldest NOT evicted;
                                   ///< unknown tenants beyond it are limited)
};

/// Per-tenant token buckets behind one mutex.
class TenantLimiter {
 public:
  explicit TenantLimiter(const AdmissionConfig& config) : config_(config) {}

  /// True iff tenant may proceed. Tenants past the map bound are refused
  /// outright (fail-closed — an attacker minting tenant ids cannot grow the
  /// map without bound, and legitimate tenants are long-lived).
  bool admit(std::uint64_t tenant_id, double now_s) {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = buckets_.find(tenant_id);
    if (it == buckets_.end()) {
      if (buckets_.size() >= config_.max_tenants) return false;
      it = buckets_.emplace(tenant_id, TokenBucket(config_.rate_per_s, config_.burst)).first;
    }
    return it->second.try_acquire(now_s);
  }

  std::size_t tenants() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return buckets_.size();
  }

 private:
  AdmissionConfig config_;
  mutable std::mutex mutex_;
  std::unordered_map<std::uint64_t, TokenBucket> buckets_;
};

}  // namespace wavekey::server
