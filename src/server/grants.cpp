#include "server/grants.hpp"

#include <algorithm>

#include "crypto/hmac.hpp"
#include "server/key_vault.hpp"
#include "server/replay_window.hpp"

namespace wavekey::server {

namespace {

using protocol::MessageType;
using protocol::WireError;
using protocol::WireReader;
using protocol::WireWriter;

constexpr double kUsPerSecond = 1e6;

std::uint64_t to_virtual_us(double seconds) {
  if (seconds <= 0) return 0;
  return static_cast<std::uint64_t>(seconds * kUsPerSecond);
}

}  // namespace

// ---------------------------------------------------------------------------
// GrantToken wire format

Bytes GrantToken::mac_input() const {
  WireWriter w;
  w.u8(static_cast<std::uint8_t>(MessageType::kGrantToken));
  w.u64(tenant_id);
  w.u64(tag_uid);
  w.u64(actuator_id);
  w.u64(counter);
  w.u32(scope);
  w.u32(key_epoch);
  w.u64(expires_us);
  return w.take();
}

Bytes GrantToken::serialize() const {
  Bytes out = mac_input();
  out.insert(out.end(), mac.begin(), mac.end());
  return out;
}

GrantToken GrantToken::parse(std::span<const std::uint8_t> wire) {
  WireReader r(wire);
  if (r.u8() != static_cast<std::uint8_t>(MessageType::kGrantToken))
    throw WireError("GrantToken: wrong type tag");
  GrantToken token;
  token.tenant_id = r.u64();
  token.tag_uid = r.u64();
  token.actuator_id = r.u64();
  token.counter = r.u64();
  token.scope = r.u32();
  token.key_epoch = r.u32();
  token.expires_us = r.u64();
  const Bytes mac = r.bytes(kMacBytes);
  std::copy(mac.begin(), mac.end(), token.mac.begin());
  r.expect_done();
  return token;
}

GrantToken make_grant_token(std::uint64_t tenant_id, std::uint64_t tag_uid,
                            std::uint64_t actuator_id, std::uint64_t counter,
                            std::uint32_t scope, std::uint32_t key_epoch,
                            std::uint64_t expires_us,
                            const crypto::Digest256& grant_mac_key) {
  GrantToken token;
  token.tenant_id = tenant_id;
  token.tag_uid = tag_uid;
  token.actuator_id = actuator_id;
  token.counter = counter;
  token.scope = scope;
  token.key_epoch = key_epoch;
  token.expires_us = expires_us;
  token.mac = crypto::hmac_sha256(grant_mac_key, token.mac_input());
  return token;
}

bool verify_grant_token_mac(const GrantToken& token, const crypto::Digest256& grant_mac_key) {
  const crypto::Digest256 expected = crypto::hmac_sha256(grant_mac_key, token.mac_input());
  return crypto::digest_equal(expected, token.mac);
}

// ---------------------------------------------------------------------------
// GrantIssuer

GrantIssuer::GrantIssuer(std::span<const std::uint8_t> master, AuditLog* audit)
    : tree_(master), audit_(audit) {}

GrantIssuer::Lineage& GrantIssuer::lineage_locked(std::uint64_t tenant_id,
                                                  std::uint64_t tag_uid) {
  const TagId id{tenant_id, tag_uid};
  auto it = lineages_.find(id);
  if (it == lineages_.end()) {
    Lineage lineage;
    lineage.tag_key = tree_.tag_key(tenant_id, tag_uid);
    it = lineages_.emplace(id, lineage).first;
  }
  return it->second;
}

void GrantIssuer::audit_event(AuditKind kind, std::uint64_t tenant_id, std::uint64_t tag_uid,
                              std::uint64_t actuator_id, std::uint64_t counter,
                              AccessStatus status) {
  if (!audit_) return;
  AuditRecord record;
  record.kind = kind;
  record.tenant_id = tenant_id;
  record.tag_uid = tag_uid;
  record.actuator_id = actuator_id;
  record.counter = counter;
  record.status = status;
  audit_->append(record);
}

std::optional<GrantToken> GrantIssuer::issue(std::uint64_t tenant_id, std::uint64_t tag_uid,
                                             std::uint64_t actuator_id, std::uint32_t scope,
                                             double ttl_s, double now_s) {
  std::lock_guard<std::mutex> lock(mu_);
  Lineage& lineage = lineage_locked(tenant_id, tag_uid);
  if (lineage.revoked) {
    stats_.refused += 1;
    audit_event(AuditKind::kIssueRefused, tenant_id, tag_uid, actuator_id, 0,
                AccessStatus::kRevoked);
    return std::nullopt;
  }
  std::uint64_t& next = next_counter_[StreamId{tenant_id, actuator_id}];
  if (next == 0) next = 1;  // strict streams mint from 1 (counter_advance floor)
  const std::uint64_t counter = next++;
  const crypto::Digest256 mac_key =
      crypto::KdfTree::purpose_key(lineage.tag_key, crypto::KeyPurpose::kGrantMac);
  GrantToken token = make_grant_token(tenant_id, tag_uid, actuator_id, counter, scope,
                                      lineage.key_epoch, to_virtual_us(now_s + ttl_s),
                                      mac_key);
  stats_.issued += 1;
  audit_event(AuditKind::kIssue, tenant_id, tag_uid, actuator_id, counter,
              AccessStatus::kGranted);
  return token;
}

ProvisionedTag GrantIssuer::provision(std::uint64_t tenant_id, std::uint64_t tag_uid,
                                      std::uint32_t allowed_scopes) {
  std::lock_guard<std::mutex> lock(mu_);
  Lineage& lineage = lineage_locked(tenant_id, tag_uid);
  ProvisionedTag tag;
  tag.tenant_id = tenant_id;
  tag.tag_uid = tag_uid;
  tag.grant_mac_key =
      crypto::KdfTree::purpose_key(lineage.tag_key, crypto::KeyPurpose::kGrantMac);
  tag.key_epoch = lineage.key_epoch;
  tag.allowed_scopes = allowed_scopes;
  audit_event(AuditKind::kProvision, tenant_id, tag_uid, 0, 0, AccessStatus::kGranted);
  return tag;
}

std::optional<std::uint32_t> GrantIssuer::rotate_tag(std::uint64_t tenant_id,
                                                     std::uint64_t tag_uid) {
  std::lock_guard<std::mutex> lock(mu_);
  Lineage& lineage = lineage_locked(tenant_id, tag_uid);
  if (lineage.revoked) return std::nullopt;
  lineage.key_epoch += 1;
  // Literally KeyVault's rotation machinery: the tag key plays the session
  // key, the tag uid plays the session id.
  lineage.tag_key = derive_rotated_key(lineage.tag_key, tag_uid, lineage.key_epoch);
  stats_.rotations += 1;
  audit_event(AuditKind::kRotate, tenant_id, tag_uid, 0, lineage.key_epoch,
              AccessStatus::kGranted);
  return lineage.key_epoch;
}

bool GrantIssuer::revoke_tag(std::uint64_t tenant_id, std::uint64_t tag_uid) {
  std::lock_guard<std::mutex> lock(mu_);
  Lineage& lineage = lineage_locked(tenant_id, tag_uid);
  if (lineage.revoked) return false;
  lineage.revoked = true;
  stats_.revocations += 1;
  audit_event(AuditKind::kRevoke, tenant_id, tag_uid, 0, 0, AccessStatus::kRevoked);
  return true;
}

std::vector<std::pair<std::uint64_t, std::uint64_t>> GrantIssuer::revoked_tags() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<TagId> out;
  for (const auto& [id, lineage] : lineages_)
    if (lineage.revoked) out.push_back(id);
  return out;
}

ExportedIssuerState GrantIssuer::export_state() const {
  std::lock_guard<std::mutex> lock(mu_);
  ExportedIssuerState state;
  state.lineages.reserve(lineages_.size());
  for (const auto& [id, lineage] : lineages_)
    state.lineages.push_back(ExportedIssuerState::Lineage{
        id.first, id.second, lineage.tag_key, lineage.key_epoch, lineage.revoked});
  state.counters.reserve(next_counter_.size());
  for (const auto& [id, next] : next_counter_)
    state.counters.push_back(ExportedIssuerState::CounterStream{id.first, id.second, next});
  return state;
}

void GrantIssuer::import_state(const ExportedIssuerState& state) {
  std::lock_guard<std::mutex> lock(mu_);
  for (const ExportedIssuerState::Lineage& lineage : state.lineages) {
    Lineage local;
    local.tag_key = lineage.tag_key;
    local.key_epoch = lineage.key_epoch;
    local.revoked = lineage.revoked;
    lineages_[TagId{lineage.tenant_id, lineage.tag_uid}] = local;
  }
  for (const ExportedIssuerState::CounterStream& stream : state.counters) {
    std::uint64_t& next = next_counter_[StreamId{stream.tenant_id, stream.actuator_id}];
    // Max-merge: never move a stream backwards, even if the import races
    // local issuance during a drain.
    next = std::max(next, stream.next_counter);
  }
  audit_event(AuditKind::kHandoff, 0, 0, 0, state.counters.size(), AccessStatus::kGranted);
}

GrantIssuer::Stats GrantIssuer::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

// ---------------------------------------------------------------------------
// OfflineVerifier

OfflineVerifier::OfflineVerifier(std::uint64_t actuator_id, AuditLog* audit)
    : actuator_id_(actuator_id), audit_(audit) {}

void OfflineVerifier::provision(const ProvisionedTag& tag) {
  std::lock_guard<std::mutex> lock(mu_);
  TagState state;
  state.grant_mac_key = tag.grant_mac_key;
  state.key_epoch = tag.key_epoch;
  state.allowed_scopes = tag.allowed_scopes;
  tags_[TagId{tag.tenant_id, tag.tag_uid}] = state;
}

void OfflineVerifier::revoke(std::uint64_t tenant_id, std::uint64_t tag_uid) {
  std::lock_guard<std::mutex> lock(mu_);
  tags_[TagId{tenant_id, tag_uid}].revoked = true;
}

AccessStatus OfflineVerifier::verify_locked(std::span<const std::uint8_t> wire, double now_s,
                                            std::uint64_t& tenant, std::uint64_t& tag,
                                            std::uint64_t& counter) {
  GrantToken token;
  try {
    token = GrantToken::parse(wire);
  } catch (const WireError&) {
    return AccessStatus::kMalformed;
  }
  tenant = token.tenant_id;
  tag = token.tag_uid;
  counter = token.counter;
  if (token.actuator_id != actuator_id_) return AccessStatus::kWrongScope;
  const auto it = tags_.find(TagId{token.tenant_id, token.tag_uid});
  if (it == tags_.end()) return AccessStatus::kUnknownSession;
  const TagState& state = it->second;
  if (token.key_epoch != state.key_epoch) return AccessStatus::kStaleEpoch;
  // MAC before ANY counter-state read or write: a forged token must not be
  // able to burn counters or probe the high-water.
  if (!verify_grant_token_mac(token, state.grant_mac_key)) return AccessStatus::kBadMac;
  if (state.revoked) return AccessStatus::kRevoked;
  if (to_virtual_us(now_s) >= token.expires_us) return AccessStatus::kExpired;
  if ((token.scope & ~state.allowed_scopes) != 0) return AccessStatus::kWrongScope;
  std::uint64_t& seen = seen_[token.tenant_id];
  if (counter_advance(seen, token.counter)) {
    seen = token.counter;
    return AccessStatus::kGranted;
  }
  return token.counter == seen ? AccessStatus::kReplay : AccessStatus::kCounterRollback;
}

AccessStatus OfflineVerifier::verify(std::span<const std::uint8_t> wire, double now_s) {
  std::uint64_t tenant = 0, tag = 0, counter = 0;
  AccessStatus status;
  {
    std::lock_guard<std::mutex> lock(mu_);
    status = verify_locked(wire, now_s, tenant, tag, counter);
    stats_.attempts += 1;
    stats_.by_status[static_cast<std::size_t>(status)] += 1;
    if (status == AccessStatus::kGranted) stats_.granted += 1;
  }
  if (audit_) {
    AuditRecord record;
    record.kind = AuditKind::kVerify;
    record.tenant_id = tenant;
    record.tag_uid = tag;
    record.actuator_id = actuator_id_;
    record.counter = counter;
    record.status = status;
    record.time_us = to_virtual_us(now_s);
    audit_->append(record);
  }
  return status;
}

std::vector<ExportedIssuerState::CounterStream> OfflineVerifier::export_counters() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<ExportedIssuerState::CounterStream> out;
  out.reserve(seen_.size());
  for (const auto& [tenant, seen] : seen_)
    out.push_back(ExportedIssuerState::CounterStream{tenant, actuator_id_, seen});
  return out;
}

void OfflineVerifier::import_counters(
    std::span<const ExportedIssuerState::CounterStream> counters) {
  std::lock_guard<std::mutex> lock(mu_);
  for (const ExportedIssuerState::CounterStream& stream : counters) {
    std::uint64_t& seen = seen_[stream.tenant_id];
    seen = std::max(seen, stream.next_counter);
  }
}

OfflineVerifier::Stats OfflineVerifier::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

}  // namespace wavekey::server
