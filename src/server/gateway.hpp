#pragma once

// Reader gateway (DESIGN.md §10.2): the front tier of the distributed
// backend. RFID readers hand access requests to a gateway; the gateway
// multiplexes them over a CRC-framed WAN transport onto the vault cluster
// and owns the retry policy:
//
//  * every request gets a cluster-unique request id up front — the
//    idempotency key. Retransmissions reuse it, so a retry of a request
//    whose *response* was lost is answered from the cluster's idempotency
//    cache instead of being re-executed (never replayed, never double-
//    granted);
//  * each attempt has a fixed timeout (deliveries arriving later are dead
//    to the attempt) and attempts are spaced by capped exponential backoff;
//  * the WAN is a protocol::FaultyChannel per worker — loss, bit
//    corruption (caught by the CRC frame), duplication, reordering and
//    jitter compose with the cluster's own failure modes;
//  * the retry budget is finite, so every submitted request resolves with
//    a typed status: the cluster's answer, kUnavailable if the last thing
//    the gateway heard was "owner down", or kRetryExhausted if it never
//    heard anything at all. No request hangs, ever.
//
// Thread-safety: submit() may be called from any thread; workers own their
// FaultyChannel instances (externally-synchronized PRNGs, one per worker).
// finish() closes the intake, drains the queue, and joins the workers —
// after it returns, every accepted request has had its callback invoked.

#include <array>
#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <span>

#include "protocol/faulty_channel.hpp"
#include "server/access_protocol.hpp"
#include "server/cluster.hpp"
#include "server/grants.hpp"

namespace wavekey::server {

struct GatewayConfig {
  std::uint32_t gateway_id = 0;  ///< high bits of every request id it mints
  std::size_t workers = 2;
  std::size_t queue_capacity = 256;
  std::uint32_t max_attempts = 4;     ///< >= 1; total tries per request
  double attempt_timeout_s = 0.050;   ///< virtual per-attempt delivery deadline
  double backoff_base_s = 0.0002;     ///< real sleep: base * 2^attempt ...
  double backoff_max_s = 0.002;       ///< ... capped here
  double base_latency_s = 0.002;      ///< fault-free one-way WAN latency
  protocol::FaultyChannelConfig channel{};  ///< per-worker seeds derived from this
  /// Disconnected-operation fallback (server/grants.hpp): when every attempt
  /// at the cluster died (kRetryExhausted) or the owner stayed down
  /// (kUnavailable) AND the submitted wire is a GrantToken, the gateway hands
  /// it to this actuator-side verifier instead of failing the request — the
  /// paper's "vault unreachable, door still opens for valid grants" mode.
  /// Not owned; must outlive the gateway. nullptr disables the fallback.
  OfflineVerifier* offline_verifier = nullptr;
  /// Virtual clock feeding the verifier's expiry checks (seconds). Required
  /// when offline_verifier is set; the test/bench harness advances it.
  std::function<double()> offline_now;
};

/// Final resolution of one submitted request.
struct GatewayResult {
  std::uint64_t request_id = 0;
  AccessStatus status = AccessStatus::kRetryExhausted;
  std::uint32_t attempts = 0;  ///< attempts actually spent (1..max_attempts)
  Bytes grant_wire;            ///< serialized AccessGrant ({} if none arrived)
  bool offline = false;        ///< status came from the OfflineVerifier fallback
};

/// Monotonic counters; snapshot under one lock so totals are consistent.
/// Invariant (asserted in tests): submitted == resolved after finish(), and
/// resolved == sum(outcomes).
struct GatewayStats {
  std::uint64_t submitted = 0;
  std::uint64_t resolved = 0;
  std::uint64_t attempts = 0;         ///< total attempts across all requests
  std::uint64_t frames_sent = 0;      ///< request + response frames offered
  std::uint64_t corrupt_dropped = 0;  ///< copies discarded by CRC/parse
  std::uint64_t timed_out_copies = 0; ///< copies past the attempt deadline
  /// Frame-buffer pool counters (runtime::BufferPool::Stats): leases is the
  /// number of frames built, allocations the number that had to touch the
  /// heap. At steady state allocations stays at the warm-up watermark
  /// (<= lanes) while leases keeps growing — asserted in bench_cluster.
  std::uint64_t pool_leases = 0;
  std::uint64_t pool_allocations = 0;
  std::uint64_t offline_verified = 0;  ///< requests resolved by the offline fallback
  std::uint64_t offline_granted = 0;   ///< ... of which kGranted
  std::array<std::uint64_t, kAccessStatusCount> outcomes{};
};

class ReaderGateway {
 public:
  using Callback = std::function<void(const GatewayResult&)>;

  ReaderGateway(VaultCluster& cluster, const GatewayConfig& config);
  /// Implies finish().
  ~ReaderGateway();

  ReaderGateway(const ReaderGateway&) = delete;
  ReaderGateway& operator=(const ReaderGateway&) = delete;

  /// Enqueues one serialized AccessRequest for transport. Blocks while the
  /// queue is full (backpressure). Returns the minted request id, or nullopt
  /// if the gateway is finished. `callback` runs exactly once, on a worker
  /// thread, with the typed final result.
  std::optional<std::uint64_t> submit(std::uint64_t tenant_id,
                                      std::span<const std::uint8_t> request_wire,
                                      Callback callback);

  /// Closes intake, drains every queued request, joins workers. Idempotent.
  void finish();

  GatewayStats stats() const;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace wavekey::server
