#include "server/gateway.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

#include "runtime/bounded_queue.hpp"

namespace wavekey::server {

namespace {

using protocol::Delivery;
using protocol::FaultyChannel;
using protocol::FaultyChannelConfig;
using protocol::InFlightMessage;
using protocol::MessageType;
using protocol::WireError;

/// How long a worker parks in try_pop_for before re-checking for shutdown.
constexpr double kPopSliceS = 0.010;

struct Job {
  std::uint64_t request_id = 0;
  std::uint64_t tenant_id = 0;
  Bytes inner;
  ReaderGateway::Callback callback;
};

}  // namespace

struct ReaderGateway::Impl {
  VaultCluster& cluster;
  GatewayConfig config;
  runtime::BoundedQueue<Job> queue;
  std::vector<std::thread> workers;
  std::atomic<std::uint64_t> next_seq{0};
  std::atomic<bool> finished{false};
  mutable std::mutex stats_mutex;
  GatewayStats counters;

  Impl(VaultCluster& c, const GatewayConfig& cfg)
      : cluster(c), config(cfg), queue(cfg.queue_capacity) {
    if (config.max_attempts < 1) config.max_attempts = 1;
    if (config.workers < 1) config.workers = 1;
    workers.reserve(config.workers);
    for (std::size_t w = 0; w < config.workers; ++w)
      workers.emplace_back([this, w] { worker_loop(w); });
  }

  void worker_loop(std::size_t index) {
    // Each worker owns one channel: FaultyChannel's PRNG is externally
    // synchronized, and distinct seeds keep workers' fault traces independent.
    FaultyChannelConfig channel_config = config.channel;
    channel_config.seed =
        channel_config.seed + (std::uint64_t{config.gateway_id} << 20) + index * 0x9E37ull + 1;
    FaultyChannel channel(channel_config);
    while (true) {
      std::optional<Job> job = queue.try_pop_for(kPopSliceS);
      if (!job) {
        if (queue.closed()) return;  // closed AND drained
        continue;
      }
      run_job(*job, channel);
    }
  }

  /// One request end-to-end: attempts x (frame -> WAN -> cluster -> WAN),
  /// with the attempt deadline applied to delivery times and capped
  /// exponential backoff (real sleep) between attempts.
  void run_job(Job& job, FaultyChannel& channel) {
    GatewayResult result;
    result.request_id = job.request_id;

    double clock = 0.0;  // virtual session clock driving the channel model
    bool saw_response = false;
    AccessStatus last_status = AccessStatus::kRetryExhausted;
    Bytes last_grant;
    std::uint64_t frames = 0, corrupt = 0, late = 0;

    for (std::uint32_t attempt = 0; attempt < config.max_attempts; ++attempt) {
      result.attempts = attempt + 1;
      ClusterRequest envelope;
      envelope.request_id = job.request_id;  // stable across attempts
      envelope.tenant_id = job.tenant_id;
      envelope.attempt = attempt;
      envelope.inner = job.inner;

      InFlightMessage msg;
      msg.from = "mobile";
      msg.to = "server";
      msg.type = MessageType::kClusterRequest;
      msg.payload = frame_message(envelope.serialize());
      msg.send_time = clock;
      const double deadline = clock + config.attempt_timeout_s;
      ++frames;

      std::optional<ClusterResponse> response;
      for (Delivery& copy : channel.transmit(msg, config.base_latency_s)) {
        if (copy.arrival_s > deadline) {
          ++late;
          continue;
        }
        std::optional<Bytes> payload = unframe_message(copy.payload);
        if (!payload) {
          ++corrupt;
          continue;
        }
        ClusterRequest arrived;
        try {
          arrived = ClusterRequest::parse(*payload);
        } catch (const WireError&) {
          ++corrupt;
          continue;
        }
        // Duplicated copies re-execute harmlessly: the cluster's idempotency
        // cache returns the recorded response to every copy after the first.
        ClusterResponse server_answer = cluster.execute(arrived);

        InFlightMessage reply;
        reply.from = "server";
        reply.to = "mobile";
        reply.type = MessageType::kClusterResponse;
        reply.payload = frame_message(server_answer.serialize());
        reply.send_time = copy.arrival_s;
        ++frames;
        for (Delivery& back : channel.transmit(reply, config.base_latency_s)) {
          if (back.arrival_s > deadline) {
            ++late;
            continue;
          }
          std::optional<Bytes> reply_payload = unframe_message(back.payload);
          if (!reply_payload) {
            ++corrupt;
            continue;
          }
          try {
            ClusterResponse parsed = ClusterResponse::parse(*reply_payload);
            if (parsed.request_id == job.request_id) {
              response = std::move(parsed);
              break;
            }
          } catch (const WireError&) {
            ++corrupt;
          }
        }
        if (response) break;
      }

      if (response) {
        saw_response = true;
        last_status = response->status;
        last_grant = std::move(response->grant_wire);
        // Anything but kUnavailable is a final answer; kUnavailable is the
        // one status worth retrying through (failover may land meanwhile).
        if (last_status != AccessStatus::kUnavailable) break;
      }
      if (attempt + 1 < config.max_attempts) {
        const double backoff = std::min(config.backoff_base_s * static_cast<double>(1u << attempt),
                                        config.backoff_max_s);
        if (backoff > 0.0)
          std::this_thread::sleep_for(std::chrono::duration<double>(backoff));
        clock = deadline + backoff;
      }
    }

    // Typed resolution, always: a request that heard nothing at all across
    // its whole budget is kRetryExhausted; one whose latest news was "owner
    // down" stays kUnavailable.
    result.status = saw_response ? last_status : AccessStatus::kRetryExhausted;
    result.grant_wire = std::move(last_grant);

    {
      std::lock_guard<std::mutex> lock(stats_mutex);
      counters.resolved += 1;
      counters.attempts += result.attempts;
      counters.frames_sent += frames;
      counters.corrupt_dropped += corrupt;
      counters.timed_out_copies += late;
      counters.outcomes[static_cast<std::size_t>(result.status)] += 1;
    }
    if (job.callback) job.callback(result);
  }
};

ReaderGateway::ReaderGateway(VaultCluster& cluster, const GatewayConfig& config)
    : impl_(new Impl(cluster, config)) {}

ReaderGateway::~ReaderGateway() { finish(); }

std::optional<std::uint64_t> ReaderGateway::submit(std::uint64_t tenant_id,
                                                   std::span<const std::uint8_t> request_wire,
                                                   Callback callback) {
  if (impl_->finished.load(std::memory_order_acquire)) return std::nullopt;
  Job job;
  job.request_id = (std::uint64_t{impl_->config.gateway_id} << 48) |
                   (impl_->next_seq.fetch_add(1, std::memory_order_relaxed) & 0xFFFFFFFFFFFFull);
  job.tenant_id = tenant_id;
  job.inner.assign(request_wire.begin(), request_wire.end());
  job.callback = std::move(callback);
  const std::uint64_t id = job.request_id;
  // Count before push so submitted >= resolved at every instant.
  {
    std::lock_guard<std::mutex> lock(impl_->stats_mutex);
    impl_->counters.submitted += 1;
  }
  if (!impl_->queue.push(std::move(job))) {
    // Lost the race with finish(): the queue is closed, nothing was enqueued.
    std::lock_guard<std::mutex> lock(impl_->stats_mutex);
    impl_->counters.submitted -= 1;
    return std::nullopt;
  }
  return id;
}

void ReaderGateway::finish() {
  impl_->finished.store(true, std::memory_order_release);
  impl_->queue.close();
  for (std::thread& t : impl_->workers)
    if (t.joinable()) t.join();
}

GatewayStats ReaderGateway::stats() const {
  std::lock_guard<std::mutex> lock(impl_->stats_mutex);
  return impl_->counters;
}

}  // namespace wavekey::server
