#include "server/gateway.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <mutex>
#include <utility>
#include <vector>

#include "runtime/buffer_pool.hpp"
#include "runtime/event_loop.hpp"
#include "runtime/task.hpp"

namespace wavekey::server {

namespace {

using protocol::Delivery;
using protocol::FaultyChannel;
using protocol::FaultyChannelConfig;
using protocol::InFlightMessage;
using protocol::MessageType;
using protocol::WireError;

struct Job {
  std::uint64_t request_id = 0;
  std::uint64_t tenant_id = 0;
  Bytes inner;
  ReaderGateway::Callback callback;
};

}  // namespace

struct ReaderGateway::Impl {
  VaultCluster& cluster;
  GatewayConfig config;
  std::atomic<std::uint64_t> next_seq{0};
  std::atomic<bool> finished{false};
  mutable std::mutex stats_mutex;
  GatewayStats counters;
  // Recycled frame buffers: after warm-up the serialize -> seal -> transmit
  // -> unframe round trip allocates nothing (asserted via stats in tests).
  runtime::BufferPool pool;
  // Declared after everything the lane coroutines touch; destroyed first.
  runtime::EventLoop loop;
  runtime::AsyncQueue<Job> queue;

  Impl(VaultCluster& c, const GatewayConfig& cfg)
      : cluster(c),
        config(cfg),
        loop(cfg.workers < 1 ? 1 : cfg.workers),
        queue(loop, cfg.queue_capacity) {
    if (config.max_attempts < 1) config.max_attempts = 1;
    if (config.workers < 1) config.workers = 1;
    for (std::size_t w = 0; w < config.workers; ++w) loop.spawn(lane(w));
  }

  /// One transport lane: owns its FaultyChannel (externally-synchronized
  /// PRNG, seed derived from gateway id + lane index so fault traces stay
  /// independent and reproducible) and serves jobs strictly one at a time —
  /// the per-lane channel state is never shared. Parked lanes wake via the
  /// queue's close/notify handoff, not by polling: queue.close() posts every
  /// waiter immediately, so shutdown latency is scheduling latency.
  runtime::Task<void> lane(std::size_t index) {
    FaultyChannelConfig channel_config = config.channel;
    channel_config.seed =
        channel_config.seed + (std::uint64_t{config.gateway_id} << 20) + index * 0x9E37ull + 1;
    FaultyChannel channel(channel_config);
    while (true) {
      std::optional<Job> job = co_await queue.pop();
      if (!job) co_return;  // closed AND drained
      co_await run_job(std::move(*job), channel);
    }
  }

  /// Frames `envelope` into a pooled buffer and transmits it: the buffer is
  /// moved into the message for the (copying) channel, then moved back so
  /// its capacity returns to the pool — zero allocations at steady state.
  std::vector<Delivery> transmit_framed(FaultyChannel& channel, const ClusterRequest* request,
                                        const ClusterResponse* response, double send_time,
                                        std::uint64_t& frames) {
    runtime::PooledBuffer lease = pool.lease();
    {
      protocol::WireWriter writer(&lease.bytes());
      if (request != nullptr) request->serialize_into(writer);
      if (response != nullptr) response->serialize_into(writer);
    }
    frame_seal(lease.bytes());

    InFlightMessage msg;
    msg.from = request != nullptr ? "mobile" : "server";
    msg.to = request != nullptr ? "server" : "mobile";
    msg.type = request != nullptr ? MessageType::kClusterRequest : MessageType::kClusterResponse;
    msg.payload = std::move(lease.bytes());
    msg.send_time = send_time;
    ++frames;
    std::vector<Delivery> deliveries = channel.transmit(msg, config.base_latency_s);
    lease.bytes() = std::move(msg.payload);  // hand the capacity back
    return deliveries;
  }

  /// One request end-to-end as a coroutine: attempts x (frame -> WAN ->
  /// cluster -> WAN) with the attempt deadline applied to delivery times;
  /// the capped exponential backoff between attempts is a co_await into the
  /// timer wheel, so a backing-off request holds no lane thread.
  runtime::Task<void> run_job(Job job, FaultyChannel& channel) {
    GatewayResult result;
    result.request_id = job.request_id;

    double clock = 0.0;  // virtual session clock driving the channel model
    bool saw_response = false;
    AccessStatus last_status = AccessStatus::kRetryExhausted;
    Bytes last_grant;
    std::uint64_t frames = 0, corrupt = 0, late = 0;

    for (std::uint32_t attempt = 0; attempt < config.max_attempts; ++attempt) {
      result.attempts = attempt + 1;
      ClusterRequest envelope;
      envelope.request_id = job.request_id;  // stable across attempts
      envelope.tenant_id = job.tenant_id;
      envelope.attempt = attempt;
      envelope.inner = std::move(job.inner);  // borrowed for the serialize

      const double deadline = clock + config.attempt_timeout_s;
      std::vector<Delivery> copies = transmit_framed(channel, &envelope, nullptr, clock, frames);
      job.inner = std::move(envelope.inner);  // returned after the serialize

      std::optional<ClusterResponse> response;
      for (Delivery& copy : copies) {
        if (copy.arrival_s > deadline) {
          ++late;
          continue;
        }
        const auto payload = unframe_view(copy.payload);
        if (!payload) {
          ++corrupt;
          continue;
        }
        ClusterRequestView arrived;
        try {
          arrived = ClusterRequestView::parse(*payload);
        } catch (const WireError&) {
          ++corrupt;
          continue;
        }
        // Duplicated copies re-execute harmlessly: the cluster's idempotency
        // cache returns the recorded response to every copy after the first.
        ClusterResponse server_answer = cluster.execute(arrived);

        for (Delivery& back :
             transmit_framed(channel, nullptr, &server_answer, copy.arrival_s, frames)) {
          if (back.arrival_s > deadline) {
            ++late;
            continue;
          }
          const auto reply_payload = unframe_view(back.payload);
          if (!reply_payload) {
            ++corrupt;
            continue;
          }
          try {
            const ClusterResponseView parsed = ClusterResponseView::parse(*reply_payload);
            if (parsed.request_id == job.request_id) {
              // The one accepted copy materializes its grant; dropped and
              // duplicate copies never leave the pooled delivery buffer.
              ClusterResponse accepted;
              accepted.request_id = parsed.request_id;
              accepted.status = parsed.status;
              accepted.grant_wire.assign(parsed.grant_wire.begin(), parsed.grant_wire.end());
              response = std::move(accepted);
              break;
            }
          } catch (const WireError&) {
            ++corrupt;
          }
        }
        if (response) break;
      }

      if (response) {
        saw_response = true;
        last_status = response->status;
        last_grant = std::move(response->grant_wire);
        // Anything but kUnavailable is a final answer; kUnavailable is the
        // one status worth retrying through (failover may land meanwhile).
        if (last_status != AccessStatus::kUnavailable) break;
      }
      if (attempt + 1 < config.max_attempts) {
        const double backoff = std::min(config.backoff_base_s * static_cast<double>(1u << attempt),
                                        config.backoff_max_s);
        // Real-time wait, suspended in the timer wheel (sleep_for resumes
        // inline when backoff is zero). The virtual clock advances by the
        // same amount so the channel model sees identical timing.
        co_await loop.sleep_for(backoff);
        clock = deadline + backoff;
      }
    }

    // Typed resolution, always: a request that heard nothing at all across
    // its whole budget is kRetryExhausted; one whose latest news was "owner
    // down" stays kUnavailable.
    result.status = saw_response ? last_status : AccessStatus::kRetryExhausted;
    result.grant_wire = std::move(last_grant);

    // Disconnected-operation fallback: the cluster is unreachable (nothing
    // heard, or owner down with no failover landing) and the submitted wire
    // is a signed GrantToken — let the actuator-side verifier decide with
    // the keys it holds locally. Online answers always win; the fallback
    // only fires when the vault had no say at all.
    if (config.offline_verifier != nullptr &&
        (result.status == AccessStatus::kRetryExhausted ||
         result.status == AccessStatus::kUnavailable) &&
        !job.inner.empty() &&
        job.inner[0] == static_cast<std::uint8_t>(MessageType::kGrantToken)) {
      const double offline_clock = config.offline_now ? config.offline_now() : 0.0;
      result.status = config.offline_verifier->verify(job.inner, offline_clock);
      result.offline = true;
    }

    {
      std::lock_guard<std::mutex> lock(stats_mutex);
      counters.resolved += 1;
      counters.attempts += result.attempts;
      counters.frames_sent += frames;
      counters.corrupt_dropped += corrupt;
      counters.timed_out_copies += late;
      counters.outcomes[static_cast<std::size_t>(result.status)] += 1;
      if (result.offline) {
        counters.offline_verified += 1;
        if (result.status == AccessStatus::kGranted) counters.offline_granted += 1;
      }
    }
    if (job.callback) job.callback(result);
  }
};

ReaderGateway::ReaderGateway(VaultCluster& cluster, const GatewayConfig& config)
    : impl_(new Impl(cluster, config)) {}

ReaderGateway::~ReaderGateway() { finish(); }

std::optional<std::uint64_t> ReaderGateway::submit(std::uint64_t tenant_id,
                                                   std::span<const std::uint8_t> request_wire,
                                                   Callback callback) {
  if (impl_->finished.load(std::memory_order_acquire)) return std::nullopt;
  Job job;
  job.request_id = (std::uint64_t{impl_->config.gateway_id} << 48) |
                   (impl_->next_seq.fetch_add(1, std::memory_order_relaxed) & 0xFFFFFFFFFFFFull);
  job.tenant_id = tenant_id;
  job.inner.assign(request_wire.begin(), request_wire.end());
  job.callback = std::move(callback);
  const std::uint64_t id = job.request_id;
  // Count before push so submitted >= resolved at every instant.
  {
    std::lock_guard<std::mutex> lock(impl_->stats_mutex);
    impl_->counters.submitted += 1;
  }
  if (!impl_->queue.push(std::move(job))) {
    // Lost the race with finish(): the queue is closed, nothing was enqueued.
    std::lock_guard<std::mutex> lock(impl_->stats_mutex);
    impl_->counters.submitted -= 1;
    return std::nullopt;
  }
  return id;
}

void ReaderGateway::finish() {
  impl_->finished.store(true, std::memory_order_release);
  // close() hands a nullopt to every parked lane immediately — shutdown is
  // notify-driven, there is no polling interval to wait out.
  impl_->queue.close();
  impl_->loop.close();
  impl_->loop.drain();
}

GatewayStats ReaderGateway::stats() const {
  std::lock_guard<std::mutex> lock(impl_->stats_mutex);
  GatewayStats snapshot = impl_->counters;
  const runtime::BufferPoolStats pool = impl_->pool.stats();
  snapshot.pool_leases = pool.leases;
  snapshot.pool_allocations = pool.allocations;
  return snapshot;
}

}  // namespace wavekey::server
