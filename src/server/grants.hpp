#pragma once

// Offline-grant subsystem (DESIGN.md §14): signed capabilities an actuator
// can verify with NO vault connectivity.
//
// The vault-side GrantIssuer mints compact GrantTokens under each tag's
// diversified grant_mac key (crypto::KdfTree: master → tenant → tag →
// purpose), so compromising one actuator's verification keys exposes one
// tag's lineage, never the fleet. Tokens carry a per-(tenant, actuator)
// strictly-monotonic counter; the disconnected OfflineVerifier embedded in
// the actuator side of the reader gateway accepts each counter at most once
// (counter_advance, replay_window.hpp) and maps every failure mode to a
// distinct AccessStatus:
//
//   parse failure        -> kMalformed        wrong actuator   -> kWrongScope
//   unknown tag          -> kUnknownSession   stale key epoch  -> kStaleEpoch
//   bad HMAC             -> kBadMac           revoked lineage  -> kRevoked
//   expired (virt clock) -> kExpired          scope not allowed-> kWrongScope
//   counter reuse        -> kReplay           counter regressed-> kCounterRollback
//
// MAC verification runs BEFORE any counter-state mutation, so forged tokens
// cannot burn counters. Counter state exports/imports for failover handoff,
// mirroring KeyVault::export_sessions: a replacement issuer or verifier
// continues the stream with zero reuse.
//
// Per-tag key lineages rotate by chaining server::derive_rotated_key on the
// tag key — epoch e+1 is a one-way function of epoch e — reusing KeyVault's
// rotation machinery verbatim so both subsystems share one forward-secrecy
// argument.
//
// Every issuance, refusal, rotation, revocation, and verification verdict
// appends to the wired AuditLog (audit.hpp) when one is attached.
//
// Thread-safety: GrantIssuer and OfflineVerifier each hold one mutex over
// their maps; all public methods are safe to call concurrently.

#include <cstdint>
#include <map>
#include <mutex>
#include <optional>
#include <span>
#include <utility>
#include <vector>

#include "crypto/kdf_tree.hpp"
#include "server/access_protocol.hpp"
#include "server/audit.hpp"

namespace wavekey::server {

/// Compact signed capability — protocol::MessageType::kGrantToken on the
/// wire. ~81 bytes serialized. The HMAC-SHA256 (truncated to kMacBytes = 32,
/// i.e. full width) under the tag's grant_mac purpose key authenticates
/// every preceding field.
struct GrantToken {
  std::uint64_t tenant_id = 0;
  std::uint64_t tag_uid = 0;
  std::uint64_t actuator_id = 0;  ///< the one actuator this token opens
  std::uint64_t counter = 0;      ///< per-(tenant, actuator) monotonic, mints from 1
  std::uint32_t scope = 0;        ///< bitmask of requested capabilities
  std::uint32_t key_epoch = 0;    ///< tag-lineage epoch the MAC key belongs to
  std::uint64_t expires_us = 0;   ///< virtual-clock microseconds

  std::array<std::uint8_t, kMacBytes> mac{};

  Bytes serialize() const;
  Bytes mac_input() const;
  /// Throws protocol::WireError on malformed/truncated input.
  static GrantToken parse(std::span<const std::uint8_t> wire);
};

/// Builds a fully-MACed token under `grant_mac_key`.
GrantToken make_grant_token(std::uint64_t tenant_id, std::uint64_t tag_uid,
                            std::uint64_t actuator_id, std::uint64_t counter,
                            std::uint32_t scope, std::uint32_t key_epoch,
                            std::uint64_t expires_us,
                            const crypto::Digest256& grant_mac_key);

/// Constant-time MAC check under the tag's grant_mac key.
bool verify_grant_token_mac(const GrantToken& token, const crypto::Digest256& grant_mac_key);

/// What the vault provisions onto an actuator so its OfflineVerifier can
/// validate tokens for one tag with no connectivity: the current grant_mac
/// purpose leaf (NOT the tag key — the actuator can't derive siblings or
/// other purposes from it) plus the lineage epoch and allowed scope mask.
struct ProvisionedTag {
  std::uint64_t tenant_id = 0;
  std::uint64_t tag_uid = 0;
  crypto::Digest256 grant_mac_key{};
  std::uint32_t key_epoch = 0;
  std::uint32_t allowed_scopes = 0;  ///< bitmask; token scope must be a subset
};

/// Portable issuer state for failover handoff (cluster replica promotion):
/// per-tag lineages and per-actuator counter streams. A replacement issuer
/// importing this continues minting with zero counter reuse.
struct ExportedIssuerState {
  struct Lineage {
    std::uint64_t tenant_id = 0;
    std::uint64_t tag_uid = 0;
    crypto::Digest256 tag_key{};
    std::uint32_t key_epoch = 0;
    bool revoked = false;
  };
  struct CounterStream {
    std::uint64_t tenant_id = 0;
    std::uint64_t actuator_id = 0;
    std::uint64_t next_counter = 1;
  };
  std::vector<Lineage> lineages;
  std::vector<CounterStream> counters;
};

/// Vault-side mint. Owns the KdfTree and the per-tag lineage map.
class GrantIssuer {
 public:
  /// @param master      KdfTree master secret.
  /// @param audit       optional audit chain; issuance/rotation/revocation
  ///                    events append to it (not owned, must outlive).
  explicit GrantIssuer(std::span<const std::uint8_t> master, AuditLog* audit = nullptr);

  /// Mints a token for (tenant, tag) opening `actuator` with `scope`,
  /// expiring `ttl_s` virtual seconds from `now_s`. nullopt if the tag's
  /// lineage is revoked. Counter allocation and MAC are atomic under the
  /// issuer lock — concurrent issuance never reuses a counter.
  std::optional<GrantToken> issue(std::uint64_t tenant_id, std::uint64_t tag_uid,
                                  std::uint64_t actuator_id, std::uint32_t scope,
                                  double ttl_s, double now_s);

  /// Current provisioning material for a tag (creates the epoch-0 lineage on
  /// first touch).
  ProvisionedTag provision(std::uint64_t tenant_id, std::uint64_t tag_uid,
                           std::uint32_t allowed_scopes);

  /// Advances one tag's lineage one epoch (derive_rotated_key chain).
  /// Returns the new epoch, or nullopt if the lineage is revoked.
  std::optional<std::uint32_t> rotate_tag(std::uint64_t tenant_id, std::uint64_t tag_uid);

  /// Revokes a tag's lineage; subsequent issue() calls refuse. Returns false
  /// if the lineage was already revoked.
  bool revoke_tag(std::uint64_t tenant_id, std::uint64_t tag_uid);

  /// (tenant, tag) pairs currently revoked — what heals propagate to
  /// verifiers.
  std::vector<std::pair<std::uint64_t, std::uint64_t>> revoked_tags() const;

  /// Failover handoff, mirroring KeyVault::export_sessions / import_sessions.
  ExportedIssuerState export_state() const;
  void import_state(const ExportedIssuerState& state);

  struct Stats {
    std::uint64_t issued = 0;
    std::uint64_t refused = 0;
    std::uint64_t rotations = 0;
    std::uint64_t revocations = 0;
  };
  Stats stats() const;

 private:
  struct Lineage {
    crypto::Digest256 tag_key{};
    std::uint32_t key_epoch = 0;
    bool revoked = false;
  };

  using TagId = std::pair<std::uint64_t, std::uint64_t>;       // (tenant, tag)
  using StreamId = std::pair<std::uint64_t, std::uint64_t>;    // (tenant, actuator)

  Lineage& lineage_locked(std::uint64_t tenant_id, std::uint64_t tag_uid);
  void audit_event(AuditKind kind, std::uint64_t tenant_id, std::uint64_t tag_uid,
                   std::uint64_t actuator_id, std::uint64_t counter, AccessStatus status);

  mutable std::mutex mu_;
  crypto::KdfTree tree_;
  std::map<TagId, Lineage> lineages_;
  std::map<StreamId, std::uint64_t> next_counter_;  // next value to mint (from 1)
  AuditLog* audit_ = nullptr;
  Stats stats_;
};

/// Actuator-side, vault-free verifier. Holds only provisioned grant_mac
/// leaves and per-tenant counter high-waters; validates tokens while the
/// cluster is black-holed.
class OfflineVerifier {
 public:
  explicit OfflineVerifier(std::uint64_t actuator_id, AuditLog* audit = nullptr);

  std::uint64_t actuator_id() const { return actuator_id_; }

  /// Installs (or refreshes, e.g. after a lineage rotation) a tag's
  /// verification material.
  void provision(const ProvisionedTag& tag);

  /// Marks a tag revoked (heal-time propagation from the issuer).
  void revoke(std::uint64_t tenant_id, std::uint64_t tag_uid);

  /// Verifies a serialized GrantToken at virtual time `now_s`. Every
  /// rejection mode maps to a distinct AccessStatus (header comment);
  /// kGranted advances the counter high-water. Never throws.
  AccessStatus verify(std::span<const std::uint8_t> wire, double now_s);

  /// Counter-state handoff: a replacement actuator controller importing
  /// these high-waters rejects exactly the counters this one accepted.
  std::vector<ExportedIssuerState::CounterStream> export_counters() const;
  void import_counters(std::span<const ExportedIssuerState::CounterStream> counters);

  struct Stats {
    std::uint64_t attempts = 0;
    std::uint64_t granted = 0;
    std::array<std::uint64_t, kAccessStatusCount> by_status{};
  };
  Stats stats() const;

 private:
  AccessStatus verify_locked(std::span<const std::uint8_t> wire, double now_s,
                             std::uint64_t& tenant, std::uint64_t& tag, std::uint64_t& counter);

  using TagId = std::pair<std::uint64_t, std::uint64_t>;
  struct TagState {
    crypto::Digest256 grant_mac_key{};
    std::uint32_t key_epoch = 0;
    std::uint32_t allowed_scopes = 0;
    bool revoked = false;
  };

  mutable std::mutex mu_;
  std::uint64_t actuator_id_;
  std::map<TagId, TagState> tags_;
  std::map<std::uint64_t, std::uint64_t> seen_;  // tenant -> counter high-water
  AuditLog* audit_ = nullptr;
  Stats stats_;
};

}  // namespace wavekey::server
