#pragma once

// Per-session anti-replay window (DESIGN.md §9.2): a sliding bitmap over
// the request counter, IPsec/DTLS style. The window tracks the highest
// counter accepted so far plus a `bits`-wide bitmap of recently-seen
// counters below it, so modestly out-of-order arrivals are admitted exactly
// once while duplicates and too-old counters are rejected:
//
//   counter >  max      -> fresh; slide the window forward
//   max-bits < counter <= max -> fresh iff its bit is unset
//   counter <= max-bits -> rejected (fell off the window; indistinguishable
//                          from a replay, so treated as one)
//
// check_and_update must only be called AFTER the request's MAC verified —
// otherwise an attacker could burn future counters with forged requests
// (KeyVault::authorize enforces this ordering under the shard lock).
//
// Thread-safety: none; callers synchronize (the vault holds its shard lock).
//
// Storage: windows up to 256 bits (the vault default is 128) live in an
// inline 4-word array — a ReplayWindow then costs zero heap allocations,
// which matters at a million resident sessions. Wider windows spill to a
// heap vector transparently.

#include <array>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace wavekey::server {

/// Monotonic-counter acceptance predicate, shared by ReplayWindow's slide
/// decision and the offline grant verifier's strict per-actuator counters
/// (server/grants.hpp): true iff `candidate` is strictly ahead of `seen` —
/// the only direction a monotonic counter may move. Total over the full u64
/// range: at seen == UINT64_MAX the stream is exhausted (nothing advances),
/// and candidate == 0 can never advance past anything, which is why strict
/// counter streams mint from 1 and use 0 as the "nothing seen" floor.
inline bool counter_advance(std::uint64_t seen, std::uint64_t candidate) {
  return candidate > seen;
}

class ReplayWindow {
 public:
  /// @param bits  window width; rounded up to a multiple of 64, minimum 64.
  explicit ReplayWindow(std::size_t bits = 128) { reconfigure(bits); }

  /// Resizes to `bits` (same rounding as the constructor) and resets all
  /// state. Used when a pooled session entry is recycled with a different
  /// window width.
  void reconfigure(std::size_t bits) {
    bits_ = ((bits < 64 ? 64 : bits) + 63) / 64 * 64;
    nwords_ = bits_ / 64;
    heap_.clear();
    if (nwords_ > kInlineWords) heap_.resize(nwords_, 0);
    inline_.fill(0);
    any_ = false;
    max_seen_ = 0;
  }

  std::size_t bits() const { return bits_; }

  /// True iff `counter` is fresh; marks it seen. False on duplicate or
  /// counter older than the window.
  bool check_and_update(std::uint64_t counter) {
    if (!any_) {
      any_ = true;
      max_seen_ = counter;
      set_bit(0);
      return true;
    }
    if (counter_advance(max_seen_, counter)) {
      slide(counter - max_seen_);
      max_seen_ = counter;
      set_bit(0);
      return true;
    }
    const std::uint64_t age = max_seen_ - counter;  // 0 == max itself
    if (age >= bits_) return false;                 // fell off the window
    if (get_bit(age)) return false;                 // duplicate
    set_bit(age);
    return true;
  }

  /// Forgets everything (key rotation starts a fresh counter epoch).
  void reset() {
    any_ = false;
    max_seen_ = 0;
    std::uint64_t* w = words();
    for (std::size_t i = 0; i < nwords_; ++i) w[i] = 0;
  }

  /// Highest counter accepted so far (0 if nothing seen yet).
  std::uint64_t max_seen() const { return any_ ? max_seen_ : 0; }

  /// Portable window state — what replica handoff ships between vault nodes
  /// (src/server/cluster.*). Restoring a snapshot on the replica makes the
  /// promoted node reject exactly the counters the failed primary already
  /// accepted: the zero-accepted-replays invariant survives the migration.
  struct Snapshot {
    bool any = false;
    std::uint64_t max_seen = 0;
    std::vector<std::uint64_t> words;
  };

  Snapshot snapshot() const {
    const std::uint64_t* w = words();
    return Snapshot{any_, max_seen_, std::vector<std::uint64_t>(w, w + nwords_)};
  }

  /// Adopts `s`. A snapshot from a wider window is truncated to this width
  /// (oldest counters fall off — they would be rejected as too-old anyway);
  /// a narrower one zero-fills the missing words.
  void restore(const Snapshot& s) {
    any_ = s.any;
    max_seen_ = s.max_seen;
    std::uint64_t* w = words();
    for (std::size_t i = 0; i < nwords_; ++i) w[i] = i < s.words.size() ? s.words[i] : 0;
  }

 private:
  static constexpr std::size_t kInlineWords = 4;  // 256 bits without heap

  std::uint64_t* words() { return nwords_ > kInlineWords ? heap_.data() : inline_.data(); }
  const std::uint64_t* words() const {
    return nwords_ > kInlineWords ? heap_.data() : inline_.data();
  }

  // Bit `age` means counter (max_seen_ - age); bit 0 lives in words()[0] LSB.
  bool get_bit(std::uint64_t age) const {
    return (words()[age / 64] >> (age % 64)) & 1;
  }
  void set_bit(std::uint64_t age) { words()[age / 64] |= std::uint64_t{1} << (age % 64); }

  /// Ages every seen counter by `distance` (the new max is `distance` ahead).
  void slide(std::uint64_t distance) {
    std::uint64_t* w = words();
    if (distance >= bits_) {
      for (std::size_t i = 0; i < nwords_; ++i) w[i] = 0;
      return;
    }
    const std::size_t word_shift = static_cast<std::size_t>(distance / 64);
    const std::size_t bit_shift = static_cast<std::size_t>(distance % 64);
    for (std::size_t i = nwords_; i-- > 0;) {
      std::uint64_t v = 0;
      if (i >= word_shift) {
        v = w[i - word_shift] << bit_shift;
        if (bit_shift != 0 && i > word_shift) v |= w[i - word_shift - 1] >> (64 - bit_shift);
      }
      w[i] = v;
    }
  }

  std::size_t bits_ = 0;
  std::size_t nwords_ = 0;
  std::array<std::uint64_t, kInlineWords> inline_{};
  std::vector<std::uint64_t> heap_;
  std::uint64_t max_seen_ = 0;
  bool any_ = false;
};

}  // namespace wavekey::server
