#pragma once

// Sharded session-key vault (DESIGN.md §9.1, data plane rebuilt in §13):
// the backend's store of keys established by pairing. Sessions hash onto N
// independently-locked shards; each shard is a runtime::FlatMap — a
// SwissTable-style open-addressing table with an intrusive index-based LRU
// — plus a hierarchical timer wheel for TTL expiry. The vault is bounded
// (capacity/N entries per shard, least-recently-used evicted first) and
// resident memory tracks *live* sessions: expired entries are reclaimed by
// purge_expired() in O(expired), not only when they happen to be touched.
//
// Shard count is rounded UP to a power of two so routing is a mask, not a
// modulo: shard = (splitmix64(id) >> 32) & (shards-1). The shard index is
// drawn from bits 32.. of the same mix the FlatMap probes with (group bits
// 7.., tag bits 57..) — disjoint ranges, so per-shard slot distribution
// stays uniform. shards() reports the rounded value.
//
// Authorization (each step a distinct AccessStatus):
//   lookup -> TTL -> revoked -> epoch -> HMAC -> replay window -> granted.
// The MAC is checked BEFORE the replay window is advanced so forged
// requests can never burn counters (replay_window.hpp). By default the
// HMAC — the single most expensive step — is computed OUTSIDE the shard
// lock: the lock is held once to snapshot (key, epoch, version) and once
// to re-validate the per-entry version counter and mark the window. Any
// concurrent rotate/revoke/install/import bumps the version, forcing a
// bounded retry (then a classic under-lock verify), so the verify+mark pair
// is exactly as atomic as the classic path — the failure modes are
// identical, only the lock hold time shrinks from ~1 HMAC to ~2 probes.
// Set VaultConfig::optimistic_verify=false for the classic single-critical-
// section path (used by the differential tests and as the fallback).
//
// Time is caller-supplied (seconds on any monotonic axis): tests drive the
// TTL boundary deterministically, the AccessServer feeds its steady-clock.
//
// Thread-safety: every public method may be called concurrently from any
// thread; each takes one shard mutex at a time (stats use atomics).

#include <array>
#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <span>
#include <vector>

#include "numeric/bitvec.hpp"
#include "server/access_protocol.hpp"
#include "server/replay_window.hpp"

namespace wavekey::server {

/// Session keys are fixed 256-bit values (the paper's l_k).
using SessionKey = std::array<std::uint8_t, 32>;

struct VaultConfig {
  std::size_t shards = 8;       ///< rounded up to a power of two (>= 1)
  std::size_t capacity = 4096;  ///< total entries, split across shards
  double ttl_s = 300.0;         ///< entry lifetime from install/rotate
  std::size_t replay_window_bits = 128;
  bool optimistic_verify = true;  ///< HMAC outside the shard lock (see above)
  bool measure_lock_hold = false; ///< sample shard-lock hold times (bench)
};

/// Counters are monotonic; resident_entries is a point-in-time gauge.
struct VaultStats {
  std::uint64_t installs = 0;
  std::uint64_t rotations = 0;
  std::uint64_t revocations = 0;
  std::uint64_t lru_evictions = 0;
  std::uint64_t ttl_evictions = 0;   ///< expired entries reclaimed (lazy + sweep)
  std::uint64_t purged_expired = 0;  ///< subset of ttl_evictions reclaimed by
                                     ///< the purge_expired() wheel sweep
  std::uint64_t resident_entries = 0;  ///< entries currently resident
  std::uint64_t optimistic_verifies = 0;  ///< HMACs computed outside the lock
  std::uint64_t version_retries = 0;   ///< optimistic re-validations that lost
                                       ///< a race and retried
  std::uint64_t locked_fallbacks = 0;  ///< optimistic attempts that exhausted
                                       ///< retries and fell back to the
                                       ///< classic under-lock path
};

/// Deterministic client/server-shared rotation schedule: the key of epoch
/// `new_epoch` is HKDF-SHA256(salt = "wavekey-vault-rotate" || new_epoch,
/// ikm = old_key, info = session_id). Both sides can advance epochs in
/// lockstep without another key exchange.
SessionKey derive_rotated_key(const SessionKey& old_key, std::uint64_t session_id,
                              std::uint32_t new_epoch);

/// One session's complete state as shipped between vault nodes during
/// replica handoff (src/server/cluster.*). The replay window rides along:
/// a promoted replica must reject exactly the counters the failed primary
/// already accepted, or a crash would reopen the replay surface.
struct ExportedSession {
  std::uint64_t session_id = 0;
  SessionKey key{};
  std::uint32_t epoch = 0;
  double expires_at_s = 0.0;
  bool revoked = false;
  ReplayWindow::Snapshot window;
};

class KeyVault {
 public:
  // Opaque per-shard machinery, defined in key_vault.cpp (public so the
  // cpp-local lock-instrumentation helper can name them).
  struct Entry;
  struct Shard;
  struct TtlWheel;

  explicit KeyVault(const VaultConfig& config);
  ~KeyVault();

  /// Installs (or replaces) the key for a session at epoch 0 with a fresh
  /// TTL and replay window. Keys shorter/longer than 32 bytes are rejected
  /// (returns false). May LRU-evict another entry of the same shard.
  bool install(std::uint64_t session_id, std::span<const std::uint8_t> key, double now_s);
  /// BitVec convenience for the pairing handoff (must be >= 256 bits; the
  /// first 256 are used).
  bool install(std::uint64_t session_id, const BitVec& key, double now_s);

  /// Rotates the session to the next epoch (derive_rotated_key), refreshing
  /// the TTL and resetting the replay window. Returns the new epoch, or
  /// nullopt if the session is absent, expired, or revoked.
  std::optional<std::uint32_t> rotate(std::uint64_t session_id, double now_s);

  /// Marks the session revoked; subsequent requests get kRevoked (until the
  /// tombstone ages out by TTL or LRU pressure). Returns false if absent.
  bool revoke(std::uint64_t session_id);

  /// Full request authorization (see header comment for lock discipline).
  /// On kGranted fills `key_out` (if non-null) with the epoch key so the
  /// caller can MAC the grant. `mac_input` must be req.mac_input().
  AccessStatus authorize(const AccessRequest& req, std::span<const std::uint8_t> mac_input,
                         double now_s, SessionKey* key_out);

  /// Sweeps the per-shard timer wheels, reclaiming every session whose TTL
  /// passed by `now_s` — including sessions that were never touched after
  /// expiry, which the lazy on-access reap alone would leak until LRU
  /// pressure. O(expired). Returns the number reclaimed (counted in both
  /// ttl_evictions and purged_expired). Called from the AccessServer's
  /// submit-path tick and from bench_vault.
  std::size_t purge_expired(double now_s);

  /// Trusted intra-cluster replication: marks `counter` seen in the session's
  /// replay window WITHOUT a MAC check — the primary already verified the
  /// request; this mirrors the accepted counter onto the replica so a later
  /// promotion cannot re-accept it. Never exposed on the client-facing path.
  /// Returns false if the session is absent or revoked.
  bool note_seen(std::uint64_t session_id, std::uint64_t counter);

  /// Snapshot of every session matching `pred` (id → include?): the export
  /// half of partition handoff. Tombstones and expired entries are included
  /// verbatim — migration must not resurrect or silently drop either. Each
  /// shard is emitted LRU-oldest-first, so importing in order reproduces
  /// the exact eviction order on the receiving node.
  std::vector<ExportedSession> export_sessions(
      const std::function<bool(std::uint64_t)>& pred) const;

  /// Upserts exported sessions, preserving epoch / TTL / revocation /
  /// replay-window state exactly (unlike install, which starts fresh), and
  /// re-arming TTL wheels from the preserved deadlines. May LRU-evict under
  /// capacity pressure. Returns the number imported.
  std::size_t import_sessions(std::span<const ExportedSession> sessions);

  /// Drops every entry in every shard — the "node memory lost" crash model
  /// of the cluster layer (not counted as evictions).
  void clear();

  /// Current key of a live (non-expired, non-revoked) session — the client
  /// side of tests/benches uses this to build requests after rotation.
  std::optional<SessionKey> current_key(std::uint64_t session_id, double now_s) const;
  /// Current epoch of a live session.
  std::optional<std::uint32_t> current_epoch(std::uint64_t session_id, double now_s) const;

  std::size_t size() const;  ///< live + tombstoned entries across all shards
  std::size_t shards() const { return shards_.size(); }
  std::size_t capacity_per_shard() const { return per_shard_capacity_; }
  VaultStats stats() const;

  /// Heap bytes owned by the session store (all shards' FlatMap arrays +
  /// wheel slots); the bytes/session axis of bench_vault.
  std::size_t memory_bytes() const;

  /// Shard-lock hold samples in nanoseconds, newest-first not guaranteed —
  /// only populated when VaultConfig::measure_lock_hold. Each critical
  /// section contributes one sample (so an optimistic authorize contributes
  /// two short ones where classic contributes one long one).
  std::vector<std::uint64_t> lock_hold_samples_ns() const;

  /// Discards accumulated lock-hold samples — call between a fill phase and
  /// the measured run, or install-time holds drown the authorize holds.
  void reset_lock_hold_samples();

 private:
  Shard& shard_for(std::uint64_t session_id);
  const Shard& shard_for(std::uint64_t session_id) const;

  AccessStatus authorize_locked(Shard& shard, const AccessRequest& req,
                                std::span<const std::uint8_t> mac_input, double now_s,
                                SessionKey* key_out);
  /// Caller holds the shard lock. Erases + counts a lazy TTL eviction if the
  /// entry at `idx` expired; returns true if it did.
  bool reap_if_expired(Shard& shard, std::uint32_t idx, double now_s);
  void evict_for_capacity(Shard& shard);

  VaultConfig config_;
  std::size_t per_shard_capacity_;
  std::vector<std::unique_ptr<Shard>> shards_;

  std::atomic<std::uint64_t> installs_{0};
  std::atomic<std::uint64_t> rotations_{0};
  std::atomic<std::uint64_t> revocations_{0};
  std::atomic<std::uint64_t> lru_evictions_{0};
  std::atomic<std::uint64_t> ttl_evictions_{0};
  std::atomic<std::uint64_t> purged_expired_{0};
  std::atomic<std::uint64_t> resident_entries_{0};
  std::atomic<std::uint64_t> optimistic_verifies_{0};
  std::atomic<std::uint64_t> version_retries_{0};
  std::atomic<std::uint64_t> locked_fallbacks_{0};
};

}  // namespace wavekey::server
