#pragma once

// Sharded session-key vault (DESIGN.md §9.1): the backend's store of keys
// established by pairing. Sessions hash onto N independently-locked shards;
// each shard keeps an id -> entry map with LRU ordering, so the vault is
// bounded (capacity/N entries per shard, least-recently-used evicted first)
// and all mutation — TTL expiry, revocation, HKDF rotation, replay-window
// updates, MAC verification — happens atomically under one shard lock.
//
// Authorization order inside the lock (each step a distinct AccessStatus):
//   lookup -> TTL -> revoked -> epoch -> HMAC -> replay window -> granted.
// The MAC is checked BEFORE the replay window is advanced so forged
// requests can never burn counters (replay_window.hpp), and computing the
// HMAC under the shard lock is what makes "verify + mark seen" atomic —
// shard count, not lock scope, provides the parallelism.
//
// Time is caller-supplied (seconds on any monotonic axis): tests drive the
// TTL boundary deterministically, the AccessServer feeds its steady-clock.
//
// Thread-safety: every public method may be called concurrently from any
// thread; each takes exactly one shard mutex (stats use atomics).

#include <array>
#include <atomic>
#include <cstdint>
#include <functional>
#include <list>
#include <memory>
#include <mutex>
#include <optional>
#include <span>
#include <unordered_map>
#include <vector>

#include "numeric/bitvec.hpp"
#include "server/access_protocol.hpp"
#include "server/replay_window.hpp"

namespace wavekey::server {

/// Session keys are fixed 256-bit values (the paper's l_k).
using SessionKey = std::array<std::uint8_t, 32>;

struct VaultConfig {
  std::size_t shards = 8;            ///< independently-locked shards (>= 1)
  std::size_t capacity = 4096;       ///< total entries, split across shards
  double ttl_s = 300.0;              ///< entry lifetime from install/rotate
  std::size_t replay_window_bits = 128;
};

/// Monotonic counters, readable without any shard lock.
struct VaultStats {
  std::uint64_t installs = 0;
  std::uint64_t rotations = 0;
  std::uint64_t revocations = 0;
  std::uint64_t lru_evictions = 0;
  std::uint64_t ttl_evictions = 0;  ///< expired entries reclaimed on access
};

/// Deterministic client/server-shared rotation schedule: the key of epoch
/// `new_epoch` is HKDF-SHA256(salt = "wavekey-vault-rotate" || new_epoch,
/// ikm = old_key, info = session_id). Both sides can advance epochs in
/// lockstep without another key exchange.
SessionKey derive_rotated_key(const SessionKey& old_key, std::uint64_t session_id,
                              std::uint32_t new_epoch);

/// One session's complete state as shipped between vault nodes during
/// replica handoff (src/server/cluster.*). The replay window rides along:
/// a promoted replica must reject exactly the counters the failed primary
/// already accepted, or a crash would reopen the replay surface.
struct ExportedSession {
  std::uint64_t session_id = 0;
  SessionKey key{};
  std::uint32_t epoch = 0;
  double expires_at_s = 0.0;
  bool revoked = false;
  ReplayWindow::Snapshot window;
};

class KeyVault {
 public:
  explicit KeyVault(const VaultConfig& config);

  /// Installs (or replaces) the key for a session at epoch 0 with a fresh
  /// TTL and replay window. Keys shorter/longer than 32 bytes are rejected
  /// (returns false). May LRU-evict another entry of the same shard.
  bool install(std::uint64_t session_id, std::span<const std::uint8_t> key, double now_s);
  /// BitVec convenience for the pairing handoff (must be >= 256 bits; the
  /// first 256 are used).
  bool install(std::uint64_t session_id, const BitVec& key, double now_s);

  /// Rotates the session to the next epoch (derive_rotated_key), refreshing
  /// the TTL and resetting the replay window. Returns the new epoch, or
  /// nullopt if the session is absent, expired, or revoked.
  std::optional<std::uint32_t> rotate(std::uint64_t session_id, double now_s);

  /// Marks the session revoked; subsequent requests get kRevoked (until the
  /// tombstone ages out by TTL or LRU pressure). Returns false if absent.
  bool revoke(std::uint64_t session_id);

  /// Full request authorization under the shard lock (see header comment).
  /// On kGranted fills `key_out` (if non-null) with the epoch key so the
  /// caller can MAC the grant. `mac_input` must be req.mac_input().
  AccessStatus authorize(const AccessRequest& req, std::span<const std::uint8_t> mac_input,
                         double now_s, SessionKey* key_out);

  /// Trusted intra-cluster replication: marks `counter` seen in the session's
  /// replay window WITHOUT a MAC check — the primary already verified the
  /// request; this mirrors the accepted counter onto the replica so a later
  /// promotion cannot re-accept it. Never exposed on the client-facing path.
  /// Returns false if the session is absent or revoked.
  bool note_seen(std::uint64_t session_id, std::uint64_t counter);

  /// Snapshot of every session matching `pred` (id → include?): the export
  /// half of partition handoff. Tombstones and expired entries are included
  /// verbatim — migration must not resurrect or silently drop either.
  std::vector<ExportedSession> export_sessions(
      const std::function<bool(std::uint64_t)>& pred) const;

  /// Upserts exported sessions, preserving epoch / TTL / revocation /
  /// replay-window state exactly (unlike install, which starts fresh). May
  /// LRU-evict under capacity pressure. Returns the number imported.
  std::size_t import_sessions(std::span<const ExportedSession> sessions);

  /// Drops every entry in every shard — the "node memory lost" crash model
  /// of the cluster layer (not counted as evictions).
  void clear();

  /// Current key of a live (non-expired, non-revoked) session — the client
  /// side of tests/benches uses this to build requests after rotation.
  std::optional<SessionKey> current_key(std::uint64_t session_id, double now_s) const;
  /// Current epoch of a live session.
  std::optional<std::uint32_t> current_epoch(std::uint64_t session_id, double now_s) const;

  std::size_t size() const;  ///< live + tombstoned entries across all shards
  std::size_t shards() const { return shards_.size(); }
  std::size_t capacity_per_shard() const { return per_shard_capacity_; }
  VaultStats stats() const;

 private:
  struct Entry {
    SessionKey key{};
    std::uint32_t epoch = 0;
    double expires_at_s = 0.0;  ///< valid while now < expires_at_s
    bool revoked = false;
    ReplayWindow window;
    std::list<std::uint64_t>::iterator lru_pos;  ///< position in Shard::lru

    explicit Entry(std::size_t window_bits) : window(window_bits) {}
  };

  struct Shard {
    mutable std::mutex mutex;
    std::unordered_map<std::uint64_t, Entry> entries;
    std::list<std::uint64_t> lru;  ///< front = most recent
  };

  Shard& shard_for(std::uint64_t session_id);
  const Shard& shard_for(std::uint64_t session_id) const;
  /// Erases the entry if its TTL has passed (counting a ttl_eviction);
  /// returns true if it expired. Caller holds the shard lock.
  bool reap_if_expired(Shard& shard, std::uint64_t session_id, double now_s);
  void touch(Shard& shard, Entry& entry);

  VaultConfig config_;
  std::size_t per_shard_capacity_;
  std::vector<std::unique_ptr<Shard>> shards_;

  std::atomic<std::uint64_t> installs_{0};
  std::atomic<std::uint64_t> rotations_{0};
  std::atomic<std::uint64_t> revocations_{0};
  std::atomic<std::uint64_t> lru_evictions_{0};
  std::atomic<std::uint64_t> ttl_evictions_{0};
};

}  // namespace wavekey::server
