#include "server/access_protocol.hpp"

#include <algorithm>

#include "crypto/hmac.hpp"

namespace wavekey::server {

namespace {

using protocol::MessageType;
using protocol::WireError;
using protocol::WireReader;
using protocol::WireWriter;

std::array<std::uint8_t, kMacBytes> compute_mac(std::span<const std::uint8_t> key,
                                                std::span<const std::uint8_t> input) {
  const crypto::Digest256 digest = crypto::hmac_sha256(key, input);
  std::array<std::uint8_t, kMacBytes> mac{};
  std::copy(digest.begin(), digest.end(), mac.begin());
  return mac;
}

}  // namespace

const char* access_status_name(AccessStatus status) {
  switch (status) {
    case AccessStatus::kGranted: return "granted";
    case AccessStatus::kUnknownSession: return "unknown_session";
    case AccessStatus::kExpired: return "expired";
    case AccessStatus::kRevoked: return "revoked";
    case AccessStatus::kStaleEpoch: return "stale_epoch";
    case AccessStatus::kBadMac: return "bad_mac";
    case AccessStatus::kReplay: return "replay";
    case AccessStatus::kRateLimited: return "rate_limited";
    case AccessStatus::kShed: return "shed";
    case AccessStatus::kMalformed: return "malformed";
    case AccessStatus::kUnavailable: return "unavailable";
    case AccessStatus::kRetryExhausted: return "retry_exhausted";
    case AccessStatus::kCounterRollback: return "counter_rollback";
    case AccessStatus::kWrongScope: return "wrong_scope";
  }
  return "unknown";
}

Bytes AccessRequest::mac_input() const {
  WireWriter w;
  w.u8(static_cast<std::uint8_t>(MessageType::kAccessRequest));
  w.u64(session_id);
  w.u32(epoch);
  w.u64(counter);
  w.bytes(nonce);
  w.blob(payload);
  return w.take();
}

Bytes AccessRequest::serialize() const {
  Bytes out = mac_input();
  out.insert(out.end(), mac.begin(), mac.end());
  return out;
}

AccessRequest AccessRequest::parse(std::span<const std::uint8_t> wire) {
  WireReader r(wire);
  if (r.u8() != static_cast<std::uint8_t>(MessageType::kAccessRequest))
    throw WireError("AccessRequest: wrong type tag");
  AccessRequest req;
  req.session_id = r.u64();
  req.epoch = r.u32();
  req.counter = r.u64();
  const Bytes nonce = r.bytes(kNonceBytes);
  std::copy(nonce.begin(), nonce.end(), req.nonce.begin());
  req.payload = r.blob();
  const Bytes mac = r.bytes(kMacBytes);
  std::copy(mac.begin(), mac.end(), req.mac.begin());
  r.expect_done();
  return req;
}

AccessRequest make_access_request(std::uint64_t session_id, std::uint32_t epoch,
                                  std::uint64_t counter,
                                  const std::array<std::uint8_t, kNonceBytes>& nonce,
                                  Bytes payload, std::span<const std::uint8_t> key) {
  AccessRequest req;
  req.session_id = session_id;
  req.epoch = epoch;
  req.counter = counter;
  req.nonce = nonce;
  req.payload = std::move(payload);
  req.mac = compute_mac(key, req.mac_input());
  return req;
}

Bytes AccessGrant::mac_input() const {
  WireWriter w;
  w.u8(static_cast<std::uint8_t>(MessageType::kAccessGrant));
  w.u64(session_id);
  w.u64(counter);
  w.u8(static_cast<std::uint8_t>(status));
  return w.take();
}

Bytes AccessGrant::serialize() const {
  Bytes out = mac_input();
  out.insert(out.end(), mac.begin(), mac.end());
  return out;
}

AccessGrant AccessGrant::parse(std::span<const std::uint8_t> wire) {
  WireReader r(wire);
  if (r.u8() != static_cast<std::uint8_t>(MessageType::kAccessGrant))
    throw WireError("AccessGrant: wrong type tag");
  AccessGrant grant;
  grant.session_id = r.u64();
  grant.counter = r.u64();
  const std::uint8_t status = r.u8();
  if (status >= kAccessStatusCount)
    throw WireError("AccessGrant: unknown status byte");
  grant.status = static_cast<AccessStatus>(status);
  const Bytes mac = r.bytes(kMacBytes);
  std::copy(mac.begin(), mac.end(), grant.mac.begin());
  r.expect_done();
  return grant;
}

AccessGrant make_access_grant(std::uint64_t session_id, std::uint64_t counter,
                              AccessStatus status, std::span<const std::uint8_t> key) {
  AccessGrant grant;
  grant.session_id = session_id;
  grant.counter = counter;
  grant.status = status;
  if (!key.empty()) grant.mac = compute_mac(key, grant.mac_input());
  return grant;
}

bool verify_access_grant(const AccessGrant& grant, std::span<const std::uint8_t> key) {
  const crypto::Digest256 expected = crypto::hmac_sha256(key, grant.mac_input());
  crypto::Digest256 carried{};
  std::copy(grant.mac.begin(), grant.mac.end(), carried.begin());
  return crypto::digest_equal(expected, carried);
}

}  // namespace wavekey::server
