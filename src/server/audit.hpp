#pragma once

// Append-only, hash-chained audit log (DESIGN.md §14.3): every grant
// issuance, offline verification verdict, rotation, revocation, and
// vault-side access decision is serialized into a record and folded into a
// per-shard SHA-256 hash chain
//
//   h_{-1} = HMAC-SHA256(seal_key, "wavekey-audit-genesis" || le64(shard))
//   h_i    = SHA256(h_{i-1} || record_i)
//
// The keyed genesis means an attacker who can rewrite the whole backing
// store still cannot re-root a forged chain without the seal key; the plain
// SHA-256 links (SHA-NI dispatched via crypto::Sha256) keep the steady-state
// append cost to one compression pass over ~60 bytes.
//
// Verification comes in two strengths:
//  - verify_head: O(1) — recompute h_n from the cached h_{n-1} and the last
//    record; this is what the hot path asserts after every append.
//  - verify_range: O(range) fsck — re-walk the chain from a trusted prefix
//    and report the FIRST index whose stored link disagrees, so a flipped
//    byte anywhere in the record stream is pinpointed, not just detected.
//
// Chain heads (count, hash) cross-link into ClusterResponse so gateways can
// detect a node that lost (or rewrote) its log across a crash: a fresh chain
// cannot reproduce a previously observed head at the same count.
//
// Thread-safety: per-shard mutex; appends to distinct shards proceed in
// parallel. Records route to shards by tenant id so one tenant's chain is
// one totally-ordered history.

#include <cstdint>
#include <mutex>
#include <optional>
#include <span>
#include <vector>

#include "crypto/sha256.hpp"
#include "server/access_protocol.hpp"

namespace wavekey::server {

/// What happened — one byte on the record wire.
enum class AuditKind : std::uint8_t {
  kIssue = 1,        ///< GrantIssuer minted an offline token
  kIssueRefused = 2, ///< issuance refused (revoked lineage)
  kVerify = 3,       ///< OfflineVerifier verdict on a presented token
  kRotate = 4,       ///< per-tag key lineage advanced an epoch
  kRevoke = 5,       ///< tag lineage revoked
  kProvision = 6,    ///< tag provisioned onto an issuer/verifier
  kHandoff = 7,      ///< counter/lineage state exported or imported
  kAccess = 8,       ///< vault-cluster online access decision
};

const char* audit_kind_name(AuditKind kind);

/// One chain entry. Fixed-layout via WireWriter; ~60 bytes serialized.
struct AuditRecord {
  AuditKind kind = AuditKind::kAccess;
  std::uint64_t tenant_id = 0;
  std::uint64_t tag_uid = 0;      ///< tag / session the event concerns
  std::uint64_t actuator_id = 0;  ///< 0 when not actuator-scoped
  std::uint64_t counter = 0;      ///< grant counter / request counter
  AccessStatus status = AccessStatus::kGranted;
  std::uint64_t time_us = 0;  ///< virtual-clock microseconds

  Bytes serialize() const;
};

/// Chain head: how many records, and the running hash after the last one.
/// Equality of two heads at the same count is equality of the full prefix
/// (second-preimage resistance of SHA-256).
struct AuditHead {
  std::uint64_t count = 0;
  crypto::Digest256 hash{};  ///< genesis HMAC when count == 0
};

class AuditLog {
 public:
  struct Config {
    std::size_t shards = 1;
    crypto::Digest256 seal_key{};  ///< keys the genesis link per shard
  };

  explicit AuditLog(Config config);

  std::size_t shards() const { return shards_.size(); }

  /// Appends, routing to shard (tenant_id % shards). O(1): one SHA-256 over
  /// (32 + |record|) bytes. Returns the new head of that shard.
  AuditHead append(const AuditRecord& record);

  /// Appends to an explicit shard (cluster nodes use node-id routing).
  AuditHead append_to(std::size_t shard, const AuditRecord& record);

  AuditHead head(std::size_t shard) const;
  std::uint64_t size(std::size_t shard) const;
  /// Total records across all shards.
  std::uint64_t total_size() const;

  /// O(1) head check: recomputes the last link from its predecessor and the
  /// stored record bytes. True for an empty shard.
  bool verify_head(std::size_t shard) const;

  /// O(to - from) fsck: re-walks links [from, to) against the stored chain
  /// and returns the index of the FIRST record whose link disagrees, or
  /// nullopt if the range is intact. `to` is clamped to size(shard).
  std::optional<std::uint64_t> verify_range(std::size_t shard, std::uint64_t from,
                                            std::uint64_t to) const;

  /// Raw record bytes (copy) — external verifiers / tests.
  Bytes record_bytes(std::size_t shard, std::uint64_t index) const;

  /// Test hook: XORs one byte of a stored record in place, leaving the
  /// stored links untouched — exactly the tamper verify_range must pinpoint.
  void corrupt_record_for_test(std::size_t shard, std::uint64_t index,
                               std::size_t offset, std::uint8_t xor_mask);

 private:
  struct Shard {
    mutable std::mutex mu;
    crypto::Digest256 genesis{};
    std::vector<Bytes> records;          // record i's serialized bytes
    std::vector<crypto::Digest256> links;  // h_i
  };

  static crypto::Digest256 link(const crypto::Digest256& prev,
                                std::span<const std::uint8_t> record);

  std::vector<Shard> shards_;
};

}  // namespace wavekey::server
