#pragma once

// Cluster membership and partition placement (DESIGN.md §10.1): sessions
// hash onto a fixed set of partitions, and partitions are placed on vault
// nodes by consistent hashing — each node projects `vnodes` virtual points
// onto a ring, a partition's primary is the successor of the partition's
// own point, and its replica is the next *distinct* node clockwise. The
// consistent-hash property is what makes failure recovery cheap: removing
// one node only moves the partitions that node actually held; every other
// (primary, replica) pair is bit-identical across the rebuild (asserted in
// tests/cluster_test.cpp).
//
// The map is a plain value type versioned by rebuild count. VaultCluster
// owns the authoritative copy behind its topology lock; gateways never see
// the map directly — they observe placement only through typed statuses
// (kUnavailable while a partition's owner is down and not yet failed over).
//
// Thread-safety: none here; PartitionMap is externally synchronized
// (cluster.cpp holds its topology lock across rebuild and lookup).

#include <cstdint>
#include <vector>

namespace wavekey::server {

/// Vault-node index within a cluster.
using NodeId = std::uint32_t;

/// Placement slot for "no node available" (e.g. replica in a 1-node cluster).
inline constexpr NodeId kNoNode = 0xFFFFFFFFu;

/// Stable session -> partition projection (splitmix64-mixed, so sequential
/// session ids spread uniformly). Pure function shared by cluster and tests.
std::uint32_t partition_of(std::uint64_t session_id, std::uint32_t partitions);

/// Owners of one partition. primary serves; replica holds the hot copy.
struct PartitionOwners {
  NodeId primary = kNoNode;
  NodeId replica = kNoNode;
};

class PartitionMap {
 public:
  /// @param partitions  fixed partition count (>= 1); never changes.
  /// @param vnodes      virtual ring points per node (placement smoothness).
  explicit PartitionMap(std::uint32_t partitions, std::uint32_t vnodes = 64);

  /// Recomputes placement from the given live node set via the hash ring and
  /// bumps version(). An empty node set leaves every partition unowned.
  void rebuild(const std::vector<NodeId>& up_nodes);

  const PartitionOwners& owners(std::uint32_t partition) const {
    return owners_[partition];
  }
  std::uint32_t partitions() const { return static_cast<std::uint32_t>(owners_.size()); }
  /// Monotonic rebuild count — lets callers detect topology changes cheaply.
  std::uint64_t version() const { return version_; }

 private:
  std::uint32_t vnodes_;
  std::vector<PartitionOwners> owners_;
  std::uint64_t version_ = 0;
};

}  // namespace wavekey::server
