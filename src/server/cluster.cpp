#include "server/cluster.hpp"

#include <chrono>
#include <deque>
#include <mutex>
#include <unordered_map>
#include <utility>

#include "protocol/arq.hpp"
#include "protocol/wire.hpp"

namespace wavekey::server {

namespace {

using protocol::MessageType;
using protocol::WireError;
using protocol::WireReader;
using protocol::WireWriter;

}  // namespace

// --- wire envelopes ---------------------------------------------------------

void ClusterRequest::serialize_into(WireWriter& w) const {
  w.u8(static_cast<std::uint8_t>(MessageType::kClusterRequest));
  w.u64(request_id);
  w.u64(tenant_id);
  w.u32(attempt);
  w.blob(inner);
}

Bytes ClusterRequest::serialize() const {
  WireWriter w;
  serialize_into(w);
  return w.take();
}

ClusterRequestView ClusterRequestView::parse(std::span<const std::uint8_t> wire) {
  WireReader r(wire);
  if (r.u8() != static_cast<std::uint8_t>(MessageType::kClusterRequest))
    throw WireError("ClusterRequest: wrong type tag");
  ClusterRequestView req;
  req.request_id = r.u64();
  req.tenant_id = r.u64();
  req.attempt = r.u32();
  req.inner = r.view_blob();
  r.expect_done();
  return req;
}

ClusterRequest ClusterRequest::parse(std::span<const std::uint8_t> wire) {
  const ClusterRequestView v = ClusterRequestView::parse(wire);
  ClusterRequest req;
  req.request_id = v.request_id;
  req.tenant_id = v.tenant_id;
  req.attempt = v.attempt;
  req.inner = Bytes(v.inner.begin(), v.inner.end());
  return req;
}

void ClusterResponse::serialize_into(WireWriter& w) const {
  w.u8(static_cast<std::uint8_t>(MessageType::kClusterResponse));
  w.u64(request_id);
  w.u8(static_cast<std::uint8_t>(status));
  w.blob(grant_wire);
  // Audit cross-link rides AFTER the grant blob so the status byte keeps
  // its historical wire offset (1 + 8).
  w.u64(audit_count);
  w.bytes(audit_hash);
}

Bytes ClusterResponse::serialize() const {
  WireWriter w;
  serialize_into(w);
  return w.take();
}

ClusterResponseView ClusterResponseView::parse(std::span<const std::uint8_t> wire) {
  WireReader r(wire);
  if (r.u8() != static_cast<std::uint8_t>(MessageType::kClusterResponse))
    throw WireError("ClusterResponse: wrong type tag");
  ClusterResponseView resp;
  resp.request_id = r.u64();
  const std::uint8_t status = r.u8();
  if (status >= kAccessStatusCount) throw WireError("ClusterResponse: unknown status byte");
  resp.status = static_cast<AccessStatus>(status);
  resp.grant_wire = r.view_blob();
  resp.audit_count = r.u64();
  const auto hash = r.view(resp.audit_hash.size());
  std::copy(hash.begin(), hash.end(), resp.audit_hash.begin());
  r.expect_done();
  return resp;
}

ClusterResponse ClusterResponse::parse(std::span<const std::uint8_t> wire) {
  const ClusterResponseView v = ClusterResponseView::parse(wire);
  ClusterResponse resp;
  resp.request_id = v.request_id;
  resp.status = v.status;
  resp.grant_wire = Bytes(v.grant_wire.begin(), v.grant_wire.end());
  resp.audit_count = v.audit_count;
  resp.audit_hash = v.audit_hash;
  return resp;
}

Bytes frame_message(std::span<const std::uint8_t> payload) {
  WireWriter w;
  w.bytes(payload);
  w.u32(protocol::crc32(payload));
  return w.take();
}

void frame_seal(Bytes& buf) {
  const std::uint32_t crc = protocol::crc32(buf);
  // Appending via the writer keeps the byte order identical to
  // frame_message; reserve-before-serialize in callers makes this
  // allocation-free once the pooled buffer's capacity has grown.
  WireWriter w(&buf);
  w.u32(crc);
}

std::optional<std::span<const std::uint8_t>> unframe_view(std::span<const std::uint8_t> wire) {
  if (wire.size() < 4) return std::nullopt;
  const std::span<const std::uint8_t> payload = wire.first(wire.size() - 4);
  std::uint32_t carried = 0;
  for (std::size_t i = 0; i < 4; ++i)
    carried |= static_cast<std::uint32_t>(wire[payload.size() + i]) << (8 * i);
  if (protocol::crc32(payload) != carried) return std::nullopt;
  return payload;
}

std::optional<Bytes> unframe_message(std::span<const std::uint8_t> wire) {
  const auto payload = unframe_view(wire);
  if (!payload) return std::nullopt;
  return Bytes(payload->begin(), payload->end());
}

// --- cluster ----------------------------------------------------------------

namespace {

/// Cached response of an executed request: the idempotency record a retry of
/// the same request id is answered from instead of being re-executed.
struct DedupEntry {
  std::uint32_t partition = 0;
  AccessStatus status = AccessStatus::kMalformed;
  Bytes grant_wire;
  // The audit stamp recorded when the request first executed: a retry gets
  // the ORIGINAL chain head back, not the head at retry time — the audit
  // chain sees each request once, exactly like the vault does.
  std::uint64_t audit_count = 0;
  crypto::Digest256 audit_hash{};
};

using Clock = std::chrono::steady_clock;

}  // namespace

struct VaultCluster::Node {
  NodeState state = NodeState::kUp;
  std::unique_ptr<KeyVault> vault;
  std::unique_ptr<AuditLog> audit;  ///< hash-chained decision log (audit.hpp)
  // Idempotency cache, FIFO-bounded. Guarded by its own mutex so serving
  // threads on different nodes never contend.
  mutable std::mutex dedup_mutex;
  std::unordered_map<std::uint64_t, DedupEntry> dedup;
  std::deque<std::uint64_t> dedup_fifo;
};

struct VaultCluster::Impl {
  ClusterConfig config;
  Clock::time_point epoch = Clock::now();
  // Topology lock: shared for serving, unique for crash/drain/fail_over.
  mutable std::shared_mutex topology;
  PartitionMap map;
  std::vector<std::unique_ptr<Node>> nodes;
  mutable std::mutex stats_mutex;
  ClusterStats counters;

  AuditLog::Config audit_config() const {
    return AuditLog::Config{config.audit_shards, config.audit_seal};
  }

  explicit Impl(const ClusterConfig& c)
      : config(c), map(c.partitions < 1 ? 1 : c.partitions, c.ring_vnodes) {
    if (config.nodes < 1) config.nodes = 1;
    std::vector<NodeId> ids;
    for (NodeId id = 0; id < config.nodes; ++id) {
      auto node = std::make_unique<Node>();
      node->vault = std::make_unique<KeyVault>(config.vault);
      node->audit = std::make_unique<AuditLog>(audit_config());
      nodes.push_back(std::move(node));
      ids.push_back(id);
    }
    map.rebuild(ids);
  }

  double now_s() const { return std::chrono::duration<double>(Clock::now() - epoch).count(); }

  bool up(NodeId id) const {
    return id != kNoNode && id < nodes.size() && nodes[id]->state == NodeState::kUp;
  }

  void bump(std::uint64_t ClusterStats::* field, std::uint64_t by = 1) {
    std::lock_guard<std::mutex> lock(stats_mutex);
    counters.*field += by;
  }

  /// Caches `entry` under `request_id` on `node`, FIFO-evicting past the
  /// capacity bound. No-op if the id is already cached (a re-replication).
  void cache_response(Node& node, std::uint64_t request_id, DedupEntry entry) {
    std::lock_guard<std::mutex> lock(node.dedup_mutex);
    if (!node.dedup.emplace(request_id, std::move(entry)).second) return;
    node.dedup_fifo.push_back(request_id);
    while (node.dedup_fifo.size() > config.dedup_capacity) {
      node.dedup.erase(node.dedup_fifo.front());
      node.dedup_fifo.pop_front();
    }
  }

  std::optional<DedupEntry> cached_response(Node& node, std::uint64_t request_id) const {
    std::lock_guard<std::mutex> lock(node.dedup_mutex);
    auto it = node.dedup.find(request_id);
    if (it == node.dedup.end()) return std::nullopt;
    return it->second;
  }

  /// Ships partition `p` from `source` to `target`: session state (replay
  /// windows included) plus the partition's idempotency records. Caller
  /// holds the topology lock unique.
  void copy_partition(NodeId source, NodeId target, std::uint32_t p) {
    const std::uint32_t partitions = map.partitions();
    const auto pred = [&](std::uint64_t sid) { return partition_of(sid, partitions) == p; };
    const std::vector<ExportedSession> exported = nodes[source]->vault->export_sessions(pred);
    const std::size_t moved = nodes[target]->vault->import_sessions(exported);
    std::vector<std::pair<std::uint64_t, DedupEntry>> records;
    {
      std::lock_guard<std::mutex> lock(nodes[source]->dedup_mutex);
      for (const auto& [id, entry] : nodes[source]->dedup)
        if (entry.partition == p) records.emplace_back(id, entry);
    }
    for (auto& [id, entry] : records) cache_response(*nodes[target], id, std::move(entry));
    bump(&ClusterStats::sessions_migrated, moved);
  }

  /// Recomputes placement over `live` nodes and migrates every partition
  /// whose ownership changed. `readable(id)` says whether a node's memory
  /// can still be read (a draining node can, a crashed one cannot). Caller
  /// holds the topology lock unique.
  void rebuild_and_migrate(const std::vector<NodeId>& live,
                           const std::function<bool(NodeId)>& readable) {
    std::vector<PartitionOwners> old(map.partitions());
    for (std::uint32_t p = 0; p < map.partitions(); ++p) old[p] = map.owners(p);
    map.rebuild(live);
    for (std::uint32_t p = 0; p < map.partitions(); ++p) {
      const PartitionOwners& prev = old[p];
      const PartitionOwners& next = map.owners(p);
      if (prev.primary == next.primary && prev.replica == next.replica) continue;
      bump(&ClusterStats::partitions_moved);
      // Freshest readable copy: the old primary saw every write; the old
      // replica mirrors installs, accepted counters, and grant records.
      const NodeId source = readable(prev.primary)   ? prev.primary
                            : readable(prev.replica) ? prev.replica
                                                     : kNoNode;
      if (source == kNoNode) continue;  // both copies lost; sessions re-pair
      for (const NodeId target : {next.primary, next.replica}) {
        if (target == kNoNode || target == source) continue;
        // A surviving old owner already holds the partition's state.
        if ((target == prev.primary || target == prev.replica) && readable(target)) continue;
        copy_partition(source, target, p);
      }
    }
  }
};

VaultCluster::VaultCluster(const ClusterConfig& config) : impl_(new Impl(config)) {}

VaultCluster::~VaultCluster() = default;

double VaultCluster::now_s() const { return impl_->now_s(); }

bool VaultCluster::install(std::uint64_t session_id, std::span<const std::uint8_t> key) {
  std::shared_lock<std::shared_mutex> lock(impl_->topology);
  const PartitionOwners owners =
      impl_->map.owners(partition_of(session_id, impl_->map.partitions()));
  if (!impl_->up(owners.primary)) return false;
  const double now = impl_->now_s();
  if (!impl_->nodes[owners.primary]->vault->install(session_id, key, now)) return false;
  if (impl_->up(owners.replica))
    impl_->nodes[owners.replica]->vault->install(session_id, key, now);
  return true;
}

bool VaultCluster::revoke(std::uint64_t session_id) {
  std::shared_lock<std::shared_mutex> lock(impl_->topology);
  const PartitionOwners owners =
      impl_->map.owners(partition_of(session_id, impl_->map.partitions()));
  bool revoked = false;
  if (impl_->up(owners.primary)) revoked = impl_->nodes[owners.primary]->vault->revoke(session_id);
  if (impl_->up(owners.replica)) impl_->nodes[owners.replica]->vault->revoke(session_id);
  return revoked;
}

ClusterResponse VaultCluster::execute(const ClusterRequest& request) {
  ClusterRequestView view;
  view.request_id = request.request_id;
  view.tenant_id = request.tenant_id;
  view.attempt = request.attempt;
  view.inner = request.inner;
  return execute(view);
}

ClusterResponse VaultCluster::execute(const ClusterRequestView& request) {
  ClusterResponse resp;
  resp.request_id = request.request_id;

  AccessRequest inner;
  try {
    inner = AccessRequest::parse(request.inner);
  } catch (const WireError&) {
    resp.status = AccessStatus::kMalformed;
    resp.grant_wire = make_access_grant(0, 0, resp.status, {}).serialize();
    return resp;
  }

  std::shared_lock<std::shared_mutex> lock(impl_->topology);
  const std::uint32_t partition = partition_of(inner.session_id, impl_->map.partitions());
  const PartitionOwners owners = impl_->map.owners(partition);
  if (!impl_->up(owners.primary)) {
    impl_->bump(&ClusterStats::unavailable);
    resp.status = AccessStatus::kUnavailable;
    resp.grant_wire =
        make_access_grant(inner.session_id, inner.counter, resp.status, {}).serialize();
    return resp;
  }

  Node& primary = *impl_->nodes[owners.primary];
  // Idempotent retry: a request id the node has already answered returns the
  // recorded response — a granted request whose response was lost on the WAN
  // is never re-granted (and never misreported as a replay to its own owner).
  if (auto cached = impl_->cached_response(primary, request.request_id)) {
    impl_->bump(&ClusterStats::dedup_hits);
    resp.status = cached->status;
    resp.grant_wire = std::move(cached->grant_wire);
    resp.audit_count = cached->audit_count;
    resp.audit_hash = cached->audit_hash;
    return resp;
  }

  impl_->bump(&ClusterStats::executed);
  const double now = impl_->now_s();
  const Bytes mac_input = inner.mac_input();
  SessionKey key{};
  const AccessStatus status = primary.vault->authorize(inner, mac_input, now, &key);
  resp.status = status;
  resp.grant_wire =
      make_access_grant(inner.session_id, inner.counter, status,
                        status == AccessStatus::kGranted ? std::span<const std::uint8_t>(key)
                                                         : std::span<const std::uint8_t>())
          .serialize();

  // Fold the decision into the serving node's audit chain and cross-link
  // the resulting head into the response.
  AuditRecord record;
  record.kind = AuditKind::kAccess;
  record.tenant_id = request.tenant_id;
  record.tag_uid = inner.session_id;
  record.counter = inner.counter;
  record.status = status;
  record.time_us = static_cast<std::uint64_t>(now * 1e6);
  const AuditHead audit_head = primary.audit->append(record);
  resp.audit_count = audit_head.count;
  resp.audit_hash = audit_head.hash;

  DedupEntry entry{partition, status, resp.grant_wire, audit_head.count, audit_head.hash};
  if (status == AccessStatus::kGranted) {
    impl_->bump(&ClusterStats::vault_grants);
    // Synchronous mirror to the replica: the accepted counter lands in its
    // replay window and the grant record in its idempotency cache *before*
    // the response leaves, so a crash of the primary at any later point can
    // never reopen this counter.
    if (impl_->up(owners.replica)) {
      Node& replica = *impl_->nodes[owners.replica];
      replica.vault->note_seen(inner.session_id, inner.counter);
      impl_->cache_response(replica, request.request_id, entry);
    }
  }
  impl_->cache_response(primary, request.request_id, std::move(entry));
  return resp;
}

void VaultCluster::crash(NodeId node) {
  std::unique_lock<std::shared_mutex> lock(impl_->topology);
  if (node >= impl_->nodes.size() || impl_->nodes[node]->state == NodeState::kDown) return;
  Node& n = *impl_->nodes[node];
  n.state = NodeState::kDown;
  // Memory lost: fresh empty vault, empty idempotency cache, fresh audit
  // chain (a restarted node cannot reproduce a previously cross-linked head
  // at the same count — that's how gateways detect truncation). The
  // partition map is deliberately left stale — until fail_over() runs, this
  // node's partitions answer kUnavailable, which is exactly the window a
  // real failure detector leaves.
  n.vault = std::make_unique<KeyVault>(impl_->config.vault);
  n.audit = std::make_unique<AuditLog>(impl_->audit_config());
  {
    std::lock_guard<std::mutex> dedup_lock(n.dedup_mutex);
    n.dedup.clear();
    n.dedup_fifo.clear();
  }
  impl_->bump(&ClusterStats::crashes);
}

void VaultCluster::fail_over() {
  std::unique_lock<std::shared_mutex> lock(impl_->topology);
  std::vector<NodeId> live;
  for (NodeId id = 0; id < impl_->nodes.size(); ++id)
    if (impl_->nodes[id]->state == NodeState::kUp) live.push_back(id);
  impl_->rebuild_and_migrate(live, [&](NodeId id) { return impl_->up(id); });
  impl_->bump(&ClusterStats::failovers);
}

void VaultCluster::drain(NodeId node) {
  std::unique_lock<std::shared_mutex> lock(impl_->topology);
  if (node >= impl_->nodes.size() || impl_->nodes[node]->state == NodeState::kDown) return;
  std::vector<NodeId> live;
  for (NodeId id = 0; id < impl_->nodes.size(); ++id)
    if (id != node && impl_->nodes[id]->state == NodeState::kUp) live.push_back(id);
  // The draining node is excluded from the new placement but stays readable
  // as a migration source: its partitions hand off with full state, so the
  // drain is invisible to clients.
  impl_->rebuild_and_migrate(live, [&](NodeId id) {
    return id != kNoNode && id < impl_->nodes.size() &&
           impl_->nodes[id]->state == NodeState::kUp;
  });
  Node& n = *impl_->nodes[node];
  n.state = NodeState::kDown;
  n.vault = std::make_unique<KeyVault>(impl_->config.vault);
  n.audit = std::make_unique<AuditLog>(impl_->audit_config());
  {
    std::lock_guard<std::mutex> dedup_lock(n.dedup_mutex);
    n.dedup.clear();
    n.dedup_fifo.clear();
  }
  impl_->bump(&ClusterStats::drains);
}

NodeState VaultCluster::node_state(NodeId node) const {
  std::shared_lock<std::shared_mutex> lock(impl_->topology);
  return node < impl_->nodes.size() ? impl_->nodes[node]->state : NodeState::kDown;
}

const AuditLog* VaultCluster::audit_log(NodeId node) const {
  std::shared_lock<std::shared_mutex> lock(impl_->topology);
  return node < impl_->nodes.size() ? impl_->nodes[node]->audit.get() : nullptr;
}

std::uint32_t VaultCluster::nodes() const {
  return static_cast<std::uint32_t>(impl_->nodes.size());
}

std::uint32_t VaultCluster::partitions() const { return impl_->map.partitions(); }

PartitionOwners VaultCluster::owners_of(std::uint64_t session_id) const {
  std::shared_lock<std::shared_mutex> lock(impl_->topology);
  return impl_->map.owners(partition_of(session_id, impl_->map.partitions()));
}

std::uint64_t VaultCluster::map_version() const {
  std::shared_lock<std::shared_mutex> lock(impl_->topology);
  return impl_->map.version();
}

ClusterStats VaultCluster::stats() const {
  std::lock_guard<std::mutex> lock(impl_->stats_mutex);
  return impl_->counters;
}

}  // namespace wavekey::server
