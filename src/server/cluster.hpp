#pragma once

// Partitioned vault cluster (DESIGN.md §10): the distributed half of the
// backend. M VaultNodes each hold a KeyVault; sessions hash onto fixed
// partitions (membership.hpp) and every partition has a primary plus one
// replica. The cluster keeps three invariants across node crashes, graceful
// drains, and lossy-WAN retries:
//
//  * zero accepted replays — a grant synchronously mirrors the accepted
//    counter into the replica's replay window, so a promoted replica rejects
//    exactly what the dead primary already accepted;
//  * zero double-grants — the vault authorizes a given (session, counter)
//    at most once cluster-wide; gateway retransmissions are absorbed by a
//    per-partition idempotency cache keyed on the gateway's request id (a
//    retry of a granted request gets the *cached* grant back, it is never
//    re-executed), and that cache migrates with its partition;
//  * every request resolves — a partition whose primary is down answers
//    kUnavailable (typed, immediate) until fail_over() promotes the replica;
//    nothing blocks on a dead node.
//
// Failure model: crash(n) loses node n's memory outright (vault + caches
// wiped) — recovery is fail_over(), which promotes replicas and re-replicates
// from survivors. drain(n) is the graceful path: n's partitions are exported
// and handed to their new owners atomically, so a drain is invisible to
// clients (no unavailability window at all).
//
// Thread-safety: execute/install/revoke take the topology lock shared (the
// per-shard vault locks provide the real parallelism); crash/drain/fail_over
// take it unique, so a topology change is atomic with respect to serving.

#include <cstdint>
#include <memory>
#include <optional>
#include <shared_mutex>
#include <span>
#include <vector>

#include "server/access_protocol.hpp"
#include "server/audit.hpp"
#include "server/key_vault.hpp"
#include "server/membership.hpp"

namespace wavekey::server {

// --- gateway <-> cluster wire envelopes -----------------------------------

/// Gateway -> cluster. `request_id` is stable across retries of the same
/// client request (the idempotency key); `attempt` is telemetry only and
/// deliberately excluded from dedup decisions.
struct ClusterRequest {
  std::uint64_t request_id = 0;
  std::uint64_t tenant_id = 0;
  std::uint32_t attempt = 0;
  Bytes inner;  ///< serialized AccessRequest (opaque at this layer)

  Bytes serialize() const;
  /// Appends the envelope to `writer`'s buffer (pooled zero-copy path).
  void serialize_into(protocol::WireWriter& writer) const;
  /// Throws protocol::WireError on malformed input.
  static ClusterRequest parse(std::span<const std::uint8_t> wire);
};

/// Zero-copy parse of a ClusterRequest: `inner` is a subspan of the source
/// buffer — valid only while that buffer outlives the view unmodified.
/// This is what the serving path uses; the owning ClusterRequest::parse is
/// the escape hatch for callers that must keep the envelope.
struct ClusterRequestView {
  std::uint64_t request_id = 0;
  std::uint64_t tenant_id = 0;
  std::uint32_t attempt = 0;
  std::span<const std::uint8_t> inner;

  /// Throws protocol::WireError on malformed input.
  static ClusterRequestView parse(std::span<const std::uint8_t> wire);
};

/// Cluster -> gateway. Carries the typed status plus the (possibly MACed)
/// AccessGrant produced by the owning node, and — for executed requests —
/// the audit chain head of the serving node after this decision was logged
/// (audit.hpp). The cross-link lets a gateway detect a node that lost or
/// rewrote its log across a crash: a fresh chain cannot reproduce a
/// previously observed head at the same count. audit_count == 0 means
/// "no audit stamp" (malformed / owner-down responses).
struct ClusterResponse {
  std::uint64_t request_id = 0;
  AccessStatus status = AccessStatus::kMalformed;
  Bytes grant_wire;
  std::uint64_t audit_count = 0;     ///< serving node's chain length after logging
  crypto::Digest256 audit_hash{};    ///< chain head hash at that length

  Bytes serialize() const;
  /// Appends the envelope to `writer`'s buffer (pooled zero-copy path).
  void serialize_into(protocol::WireWriter& writer) const;
  static ClusterResponse parse(std::span<const std::uint8_t> wire);
};

/// Zero-copy parse of a ClusterResponse: `grant_wire` is a subspan of the
/// source buffer (same lifetime contract as ClusterRequestView::inner).
struct ClusterResponseView {
  std::uint64_t request_id = 0;
  AccessStatus status = AccessStatus::kMalformed;
  std::span<const std::uint8_t> grant_wire;
  std::uint64_t audit_count = 0;
  crypto::Digest256 audit_hash{};

  static ClusterResponseView parse(std::span<const std::uint8_t> wire);
};

/// WAN framing: payload || crc32(payload). The CRC defends against channel
/// noise (FaultyChannel bit flips), not adversaries — tampering is caught
/// end-to-end by the AccessRequest/AccessGrant HMACs inside the envelope.
Bytes frame_message(std::span<const std::uint8_t> payload);

/// In-place framing: appends crc32 of `buf`'s current contents to `buf`
/// itself. `frame_seal(b)` on a buffer holding a serialized envelope is the
/// allocation-free equivalent of `b = frame_message(b)`.
void frame_seal(Bytes& buf);

/// Integrity-checks and strips the frame. Returns nullopt on truncation or
/// CRC mismatch — corruption is expected channel behaviour, never an error.
std::optional<Bytes> unframe_message(std::span<const std::uint8_t> wire);

/// Zero-copy unframe: the payload subspan of `wire` (no copy), or nullopt on
/// truncation/CRC mismatch. The span aliases `wire`.
std::optional<std::span<const std::uint8_t>> unframe_view(std::span<const std::uint8_t> wire);

// --- cluster ----------------------------------------------------------------

enum class NodeState : std::uint8_t {
  kUp = 0,
  kDown = 1,  ///< crashed (memory lost) or drained (memory handed off)
};

struct ClusterConfig {
  std::uint32_t nodes = 4;       ///< vault nodes (>= 1)
  std::uint32_t partitions = 64; ///< fixed partition count
  std::uint32_t ring_vnodes = 64;
  VaultConfig vault;             ///< per-node vault configuration
  std::size_t dedup_capacity = 1 << 15;  ///< idempotency entries per node
  std::size_t audit_shards = 1;          ///< per-node audit chain shards
  crypto::Digest256 audit_seal{};        ///< keys every node's genesis links
};

/// Monotonic counters; snapshot under one lock so totals are consistent.
struct ClusterStats {
  std::uint64_t executed = 0;        ///< envelopes that reached a live primary
  std::uint64_t vault_grants = 0;    ///< unique grants (dedup hits excluded)
  std::uint64_t dedup_hits = 0;      ///< retries answered from the cache
  std::uint64_t unavailable = 0;     ///< envelopes refused: owner down
  std::uint64_t crashes = 0;
  std::uint64_t drains = 0;
  std::uint64_t failovers = 0;
  std::uint64_t partitions_moved = 0;   ///< ownership changes across rebuilds
  std::uint64_t sessions_migrated = 0;  ///< exported+imported session states
};

class VaultCluster {
 public:
  explicit VaultCluster(const ClusterConfig& config);
  ~VaultCluster();

  VaultCluster(const VaultCluster&) = delete;
  VaultCluster& operator=(const VaultCluster&) = delete;

  /// Seconds since construction on the steady clock — the vault time axis.
  double now_s() const;

  /// Installs a session key on the partition's primary and replica. False if
  /// the key has the wrong width or the primary is down (install is not
  /// retried internally — the pairing tier owns that policy).
  bool install(std::uint64_t session_id, std::span<const std::uint8_t> key);

  /// Revokes on every live owner of the session's partition.
  bool revoke(std::uint64_t session_id);

  /// Serves one gateway envelope: route by partition, dedup by request id,
  /// authorize on the primary, mirror the accepted counter + cached response
  /// to the replica. kUnavailable if the owning primary is down; kMalformed
  /// if the inner AccessRequest does not parse.
  ClusterResponse execute(const ClusterRequest& request);
  /// Zero-copy overload: the view's spans are only read during the call.
  ClusterResponse execute(const ClusterRequestView& request);

  /// Hard-kills a node: memory wiped, state kDown, partitions NOT reassigned
  /// (that is fail_over's job — the gap between the two is the real
  /// unavailability window a failure detector would leave).
  void crash(NodeId node);

  /// Promotes replicas for every partition whose primary is down and
  /// re-replicates from survivors so every partition is two-copy again.
  void fail_over();

  /// Graceful drain: exports the node's partitions to their new owners
  /// (session state, replay windows, idempotency cache), then takes the node
  /// down. Atomic under the topology lock — clients never see a gap.
  void drain(NodeId node);

  NodeState node_state(NodeId node) const;
  /// The node's audit chain (nullptr for an out-of-range id). The log is
  /// reset on crash — a restarted node starts a fresh chain, which is what
  /// makes truncation detectable against previously cross-linked heads.
  const AuditLog* audit_log(NodeId node) const;
  std::uint32_t nodes() const;
  std::uint32_t partitions() const;
  /// Current owners of the partition serving `session_id` (test/bench use).
  PartitionOwners owners_of(std::uint64_t session_id) const;
  /// Map version (bumps on fail_over/drain rebuilds).
  std::uint64_t map_version() const;

  ClusterStats stats() const;

 private:
  struct Node;
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace wavekey::server
