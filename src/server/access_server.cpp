#include "server/access_server.hpp"

#include <atomic>
#include <chrono>
#include <mutex>
#include <utility>

#include "runtime/event_loop.hpp"
#include "runtime/task.hpp"

namespace wavekey::server {

namespace {

using Clock = std::chrono::steady_clock;

struct Job {
  std::uint64_t tag = 0;
  Bytes request_wire;
  AccessServer::Callback done;
  Clock::time_point enqueued;
};

}  // namespace

struct AccessServer::Impl {
  AccessServerConfig config;
  Clock::time_point epoch = Clock::now();
  KeyVault vault;
  TenantLimiter limiter;
  // Admission window: admitted-but-unfinished requests. With coroutine
  // serving a parked request holds no worker thread, so this counter — not
  // a queue of waiting jobs — is what gives queue_capacity its shedding
  // semantics: window full => kShed, exactly as the old bounded queue shed
  // when workers fell behind.
  std::atomic<std::size_t> active_admitted{0};
  std::atomic<bool> finished{false};
  /// Next vault TTL sweep deadline (seconds on the server clock). submit()
  /// CAS-claims it; the winner spawns a one-shot purge coroutine — no
  /// long-lived looping task that drain() would have to wait out.
  std::atomic<double> next_purge_s{0.0};

  // All stats live under one mutex: submit increments (submitted, in_flight)
  // and every outcome moves one unit from in_flight to its status counter in
  // the same critical section, so submitted == sum(status) + in_flight is an
  // exact invariant of every stats() snapshot — not just an eventual one.
  // suspended rides the same lock: suspended <= in_flight in every snapshot.
  mutable std::mutex stats_mutex;
  std::uint64_t submitted = 0;
  std::uint64_t in_flight = 0;
  std::uint64_t suspended = 0;
  std::uint64_t peak_in_flight = 0;
  std::uint64_t peak_suspended = 0;
  std::uint64_t counters[kAccessStatusCount] = {};  // indexed by AccessStatus

  // Last member: its destructor (close + drain + join) runs first, while the
  // rest of Impl is still alive for in-flight request coroutines.
  runtime::EventLoop loop;

  explicit Impl(const AccessServerConfig& c)
      : config(c),
        vault(c.vault),
        limiter(c.admission),
        loop(std::max<std::size_t>(c.threads, 1)) {}

  double now_s() const { return std::chrono::duration<double>(Clock::now() - epoch).count(); }

  void note_submitted() {
    std::lock_guard<std::mutex> lock(stats_mutex);
    ++submitted;
    ++in_flight;
    if (in_flight > peak_in_flight) peak_in_flight = in_flight;
  }

  /// Undo for the submit-after-close race: the request was never admitted.
  void retract_submitted() {
    std::lock_guard<std::mutex> lock(stats_mutex);
    --submitted;
    --in_flight;
  }

  void count(AccessStatus status) {
    std::lock_guard<std::mutex> lock(stats_mutex);
    ++counters[static_cast<std::size_t>(status)];
    --in_flight;
  }

  void note_suspended(bool entering) {
    std::lock_guard<std::mutex> lock(stats_mutex);
    if (entering) {
      ++suspended;
      if (suspended > peak_suspended) peak_suspended = suspended;
    } else {
      --suspended;
    }
  }

  /// Builds the outcome for a fast-reject decided on the submit path.
  void reject_inline(std::uint64_t tag, AccessStatus status, const Callback& done) {
    count(status);
    AccessOutcome outcome;
    outcome.tag = tag;
    outcome.status = status;
    // No session key on this path: the grant is framed but unauthenticated.
    outcome.grant_wire = make_access_grant(0, 0, status, {}).serialize();
    if (done) done(outcome);
  }

  /// One request as a coroutine: parse + authorize run synchronously on the
  /// first resume; a granted request then parks in the timer wheel for the
  /// emulated actuation I/O instead of holding its worker.
  runtime::Task<void> serve(Job job) {
    const Clock::time_point start = Clock::now();
    AccessOutcome outcome;
    outcome.tag = job.tag;
    outcome.queue_wait_s = std::chrono::duration<double>(start - job.enqueued).count();

    std::uint64_t session_id = 0;
    std::uint64_t counter = 0;
    SessionKey key{};
    bool have_key = false;
    try {
      const AccessRequest req = AccessRequest::parse(job.request_wire);
      session_id = req.session_id;
      counter = req.counter;
      const Bytes mac_input = req.mac_input();
      outcome.status = vault.authorize(req, mac_input, now_s(), &key);
      have_key = outcome.status == AccessStatus::kGranted;
    } catch (const protocol::WireError&) {
      outcome.status = AccessStatus::kMalformed;
    }
    outcome.verify_s = std::chrono::duration<double>(Clock::now() - start).count();

    // Emulated downstream actuation (door strike / reader I/O): the frame
    // suspends into the timer wheel, charged after verification so verify_s
    // stays a pure crypto/vault measurement and queue_wait_s a pure
    // scheduling one — the park is reported in suspended_s.
    if (have_key && config.io_wait_s > 0.0) {
      const Clock::time_point parked = Clock::now();
      note_suspended(true);
      co_await loop.sleep_for(config.io_wait_s);
      note_suspended(false);
      outcome.suspended_s = std::chrono::duration<double>(Clock::now() - parked).count();
    }

    outcome.grant_wire =
        make_access_grant(session_id, counter, outcome.status,
                          have_key ? std::span<const std::uint8_t>(key)
                                   : std::span<const std::uint8_t>())
            .serialize();
    count(outcome.status);
    active_admitted.fetch_sub(1, std::memory_order_release);
    if (job.done) job.done(outcome);
  }

  /// One-shot TTL sweep on an event-loop worker (see next_purge_s).
  runtime::Task<void> purge_vault() {
    vault.purge_expired(now_s());
    co_return;
  }

  /// Claims the purge deadline if due; at most one submitter wins per
  /// interval. Called on the submit path, off the request's critical work.
  void maybe_spawn_purge() {
    if (config.vault_purge_interval_s <= 0.0) return;
    const double now = now_s();
    double due = next_purge_s.load(std::memory_order_relaxed);
    if (now < due) return;
    if (!next_purge_s.compare_exchange_strong(due, now + config.vault_purge_interval_s,
                                              std::memory_order_relaxed)) {
      return;  // another submitter claimed this interval
    }
    // Spawn failure (post-finish race) is fine: the sweep is best-effort.
    (void)loop.spawn(purge_vault());
  }

  void finish() {
    bool expected = false;
    if (finished.compare_exchange_strong(expected, true)) {
      loop.close();
      loop.drain();
    }
  }
};

AccessServer::AccessServer(const AccessServerConfig& config) : impl_(new Impl(config)) {}

AccessServer::~AccessServer() { impl_->finish(); }

KeyVault& AccessServer::vault() { return impl_->vault; }

double AccessServer::now_s() const { return impl_->now_s(); }

bool AccessServer::submit(std::uint64_t tag, std::uint64_t tenant_id, Bytes request_wire,
                          Callback done) {
  impl_->maybe_spawn_purge();
  impl_->note_submitted();
  // Admission control first: a rate-limited tenant must not consume window
  // space, and both rejects must stay O(1) on the caller thread.
  if (!impl_->limiter.admit(tenant_id, impl_->now_s())) {
    impl_->reject_inline(tag, AccessStatus::kRateLimited, done);
    return true;
  }
  const std::size_t prev = impl_->active_admitted.fetch_add(1, std::memory_order_acquire);
  if (prev >= impl_->config.queue_capacity) {
    impl_->active_admitted.fetch_sub(1, std::memory_order_release);
    impl_->reject_inline(tag, AccessStatus::kShed, done);
    return true;
  }
  Job job{tag, std::move(request_wire), std::move(done), Clock::now()};
  if (!impl_->loop.spawn(impl_->serve(std::move(job)))) {
    // Lost the race with finish(): never admitted, no outcome will ever be
    // counted for this request.
    impl_->active_admitted.fetch_sub(1, std::memory_order_release);
    impl_->retract_submitted();
    return false;
  }
  return true;
}

void AccessServer::finish() { impl_->finish(); }

AccessServerStats AccessServer::stats() const {
  // One lock around the whole snapshot: the invariants documented on
  // AccessServerStats depend on no counter moving mid-copy.
  std::lock_guard<std::mutex> lock(impl_->stats_mutex);
  AccessServerStats s;
  s.submitted = impl_->submitted;
  s.in_flight = impl_->in_flight;
  s.suspended = impl_->suspended;
  s.peak_in_flight = impl_->peak_in_flight;
  s.peak_suspended = impl_->peak_suspended;
  const auto load = [&](AccessStatus st) {
    return impl_->counters[static_cast<std::size_t>(st)];
  };
  s.granted = load(AccessStatus::kGranted);
  s.unknown_session = load(AccessStatus::kUnknownSession);
  s.expired = load(AccessStatus::kExpired);
  s.revoked = load(AccessStatus::kRevoked);
  s.stale_epoch = load(AccessStatus::kStaleEpoch);
  s.bad_mac = load(AccessStatus::kBadMac);
  s.replay_rejected = load(AccessStatus::kReplay);
  s.rate_limited = load(AccessStatus::kRateLimited);
  s.shed = load(AccessStatus::kShed);
  s.malformed = load(AccessStatus::kMalformed);
  return s;
}

std::size_t AccessServer::threads() const { return impl_->loop.threads(); }

}  // namespace wavekey::server
