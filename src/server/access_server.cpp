#include "server/access_server.hpp"

#include <atomic>
#include <chrono>
#include <future>
#include <mutex>
#include <thread>
#include <vector>

#include "runtime/bounded_queue.hpp"
#include "runtime/thread_pool.hpp"

namespace wavekey::server {

namespace {

using Clock = std::chrono::steady_clock;

struct Job {
  std::uint64_t tag = 0;
  Bytes request_wire;
  AccessServer::Callback done;
  Clock::time_point enqueued;
};

}  // namespace

struct AccessServer::Impl {
  AccessServerConfig config;
  Clock::time_point epoch = Clock::now();
  KeyVault vault;
  TenantLimiter limiter;
  runtime::BoundedQueue<Job> queue;
  runtime::ThreadPool pool;
  std::vector<std::future<void>> drainers;
  std::atomic<bool> finished{false};

  // All stats live under one mutex: submit increments (submitted, in_flight)
  // and every outcome moves one unit from in_flight to its status counter in
  // the same critical section, so submitted == sum(status) + in_flight is an
  // exact invariant of every stats() snapshot — not just an eventual one.
  mutable std::mutex stats_mutex;
  std::uint64_t submitted = 0;
  std::uint64_t in_flight = 0;
  std::uint64_t counters[kAccessStatusCount] = {};  // indexed by AccessStatus

  explicit Impl(const AccessServerConfig& c)
      : config(c),
        vault(c.vault),
        limiter(c.admission),
        queue(c.queue_capacity),
        pool(std::max<std::size_t>(c.threads, 1)) {
    for (std::size_t t = 0; t < pool.size(); ++t)
      drainers.push_back(pool.submit([this] {
        while (auto job = queue.pop()) serve(std::move(*job));
      }));
  }

  double now_s() const { return std::chrono::duration<double>(Clock::now() - epoch).count(); }

  void note_submitted() {
    std::lock_guard<std::mutex> lock(stats_mutex);
    ++submitted;
    ++in_flight;
  }

  /// Undo for the submit-after-close race: the request was never admitted.
  void retract_submitted() {
    std::lock_guard<std::mutex> lock(stats_mutex);
    --submitted;
    --in_flight;
  }

  void count(AccessStatus status) {
    std::lock_guard<std::mutex> lock(stats_mutex);
    ++counters[static_cast<std::size_t>(status)];
    --in_flight;
  }

  /// Builds the outcome for a fast-reject decided on the submit path.
  void reject_inline(std::uint64_t tag, AccessStatus status, const Callback& done) {
    count(status);
    AccessOutcome outcome;
    outcome.tag = tag;
    outcome.status = status;
    // No session key on this path: the grant is framed but unauthenticated.
    outcome.grant_wire = make_access_grant(0, 0, status, {}).serialize();
    if (done) done(outcome);
  }

  void serve(Job&& job) {
    const Clock::time_point start = Clock::now();
    AccessOutcome outcome;
    outcome.tag = job.tag;
    outcome.queue_wait_s = std::chrono::duration<double>(start - job.enqueued).count();

    std::uint64_t session_id = 0;
    std::uint64_t counter = 0;
    SessionKey key{};
    bool have_key = false;
    try {
      const AccessRequest req = AccessRequest::parse(job.request_wire);
      session_id = req.session_id;
      counter = req.counter;
      const Bytes mac_input = req.mac_input();
      outcome.status = vault.authorize(req, mac_input, now_s(), &key);
      have_key = outcome.status == AccessStatus::kGranted;
    } catch (const protocol::WireError&) {
      outcome.status = AccessStatus::kMalformed;
    }
    outcome.verify_s = std::chrono::duration<double>(Clock::now() - start).count();

    // Emulated downstream actuation (door strike / reader I/O): a blocking
    // wait the workers overlap, charged after verification so verify_s stays
    // a pure crypto/vault measurement.
    if (have_key && config.io_wait_s > 0.0)
      std::this_thread::sleep_for(std::chrono::duration<double>(config.io_wait_s));

    outcome.grant_wire =
        make_access_grant(session_id, counter, outcome.status,
                          have_key ? std::span<const std::uint8_t>(key)
                                   : std::span<const std::uint8_t>())
            .serialize();
    count(outcome.status);
    if (job.done) job.done(outcome);
  }

  void finish() {
    bool expected = false;
    if (finished.compare_exchange_strong(expected, true)) {
      queue.close();
      for (auto& f : drainers) f.get();
      drainers.clear();
    }
  }
};

AccessServer::AccessServer(const AccessServerConfig& config) : impl_(new Impl(config)) {}

AccessServer::~AccessServer() { impl_->finish(); }

KeyVault& AccessServer::vault() { return impl_->vault; }

double AccessServer::now_s() const { return impl_->now_s(); }

bool AccessServer::submit(std::uint64_t tag, std::uint64_t tenant_id, Bytes request_wire,
                          Callback done) {
  impl_->note_submitted();
  // Admission control first: a rate-limited tenant must not consume queue
  // space, and both rejects must stay O(1) on the caller thread.
  if (!impl_->limiter.admit(tenant_id, impl_->now_s())) {
    impl_->reject_inline(tag, AccessStatus::kRateLimited, done);
    return true;
  }
  Job job{tag, std::move(request_wire), std::move(done), Clock::now()};
  switch (impl_->queue.try_push(std::move(job))) {
    case runtime::PushResult::kOk:
      return true;
    case runtime::PushResult::kFull:
      // try_push leaves the job intact on kFull, so its callback survives.
      impl_->reject_inline(tag, AccessStatus::kShed, job.done);
      return true;
    case runtime::PushResult::kClosed:
      break;
  }
  // Never admitted: no outcome will ever be counted for this request.
  impl_->retract_submitted();
  return false;
}

void AccessServer::finish() { impl_->finish(); }

AccessServerStats AccessServer::stats() const {
  // One lock around the whole snapshot: the invariant documented on
  // AccessServerStats depends on no counter moving mid-copy.
  std::lock_guard<std::mutex> lock(impl_->stats_mutex);
  AccessServerStats s;
  s.submitted = impl_->submitted;
  s.in_flight = impl_->in_flight;
  const auto load = [&](AccessStatus st) {
    return impl_->counters[static_cast<std::size_t>(st)];
  };
  s.granted = load(AccessStatus::kGranted);
  s.unknown_session = load(AccessStatus::kUnknownSession);
  s.expired = load(AccessStatus::kExpired);
  s.revoked = load(AccessStatus::kRevoked);
  s.stale_epoch = load(AccessStatus::kStaleEpoch);
  s.bad_mac = load(AccessStatus::kBadMac);
  s.replay_rejected = load(AccessStatus::kReplay);
  s.rate_limited = load(AccessStatus::kRateLimited);
  s.shed = load(AccessStatus::kShed);
  s.malformed = load(AccessStatus::kMalformed);
  return s;
}

std::size_t AccessServer::threads() const { return impl_->pool.size(); }

}  // namespace wavekey::server
