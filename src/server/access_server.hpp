#pragma once

// Backend access-control server (DESIGN.md §9): the serving layer behind
// core::PairingEngine. Pairing hands established keys to the KeyVault
// (PairingEngineConfig::on_established); clients then authenticate every
// access request with an HMAC under their session key, and this server
// admits, verifies, and answers those requests from a worker pool.
//
// Request path (one coroutine per request on a runtime::EventLoop):
//   submit() [caller thread]  — tenant token bucket (kRateLimited) and
//                               admission window (kShed) fast-reject inline;
//                               admitted requests spawn a request coroutine;
//   event-loop workers        — parse (kMalformed on WireError), then
//                               KeyVault::authorize under one shard lock
//                               (kUnknownSession / kExpired / kRevoked /
//                               kStaleEpoch / kBadMac / kReplay / kGranted),
//                               then `co_await sleep_for(io_wait_s)` for the
//                               emulated actuator I/O on grants — the frame
//                               parks in the timer wheel and the worker moves
//                               on, so in-flight grants are bounded by the
//                               admission window, not the thread count —
//                               then the completion callback with a MACed
//                               AccessGrant.
//
// Thread-safety: submit() from any number of threads; finish() once from
// one thread after producers stop (also run by the destructor). Completion
// callbacks run on event-loop workers (or inline on the submit path for
// fast-rejects) and must be thread-safe.

#include <cstdint>
#include <functional>
#include <memory>

#include "server/access_protocol.hpp"
#include "server/admission.hpp"
#include "server/key_vault.hpp"

namespace wavekey::server {

struct AccessServerConfig {
  std::size_t threads = 1;          ///< event-loop workers
  /// Admission window: max admitted-but-unfinished requests. With coroutine
  /// serving a parked grant holds no worker, so the window (not the thread
  /// count) is what bounds in-flight work; overflow -> kShed.
  std::size_t queue_capacity = 256;
  VaultConfig vault;
  AdmissionConfig admission;
  /// Emulated downstream actuation I/O per *granted* request (door strike /
  /// reader round-trip); a real sleep that workers overlap, mirroring
  /// radio_wait_s in core::PairingEngine. Zero disables it.
  double io_wait_s = 0.0;
  /// TTL purge cadence: at most once per this interval, a submit() spawns a
  /// short-lived coroutine that sweeps the vault's timer wheels
  /// (KeyVault::purge_expired), so expired-but-never-touched sessions are
  /// reclaimed even when no request ever hits them again. Piggybacking on
  /// the submit path keeps the loop free of long-lived tasks (finish()'s
  /// drain() must see an emptying loop). Zero disables the sweep.
  double vault_purge_interval_s = 1.0;
};

/// Completion record handed to the callback.
struct AccessOutcome {
  std::uint64_t tag = 0;      ///< caller's correlation id from submit()
  AccessStatus status = AccessStatus::kMalformed;
  Bytes grant_wire;           ///< serialized AccessGrant (MACed if keyed)
  double verify_s = 0.0;      ///< parse + vault authorize wall time
  double queue_wait_s = 0.0;  ///< submit -> first coroutine resume (0 for fast-rejects)
  double suspended_s = 0.0;   ///< parked on actuation I/O (co_await sleep_for);
                              ///< reported separately so queue_wait_s stays a
                              ///< pure scheduling-delay measurement
};

/// Serving counters (one per status, plus totals). stats() snapshots every
/// field under ONE lock, so a snapshot is internally consistent even while
/// submitters and workers race: submitted == granted + ... + malformed +
/// in_flight holds exactly, in every snapshot (asserted under contention in
/// tests/server_test.cpp). A torn multi-atomic read could not promise that.
struct AccessServerStats {
  std::uint64_t submitted = 0;
  std::uint64_t in_flight = 0;  ///< admitted, outcome not yet counted
  /// Of in_flight: requests currently parked on actuation I/O (their frames
  /// sit in the timer wheel, no worker held). suspended <= in_flight in
  /// every snapshot — same one-lock discipline as the sum invariant.
  std::uint64_t suspended = 0;
  std::uint64_t peak_in_flight = 0;  ///< high-water mark of in_flight
  std::uint64_t peak_suspended = 0;  ///< high-water mark of suspended
  std::uint64_t granted = 0;
  std::uint64_t unknown_session = 0;
  std::uint64_t expired = 0;
  std::uint64_t revoked = 0;
  std::uint64_t stale_epoch = 0;
  std::uint64_t bad_mac = 0;
  std::uint64_t replay_rejected = 0;
  std::uint64_t rate_limited = 0;
  std::uint64_t shed = 0;
  std::uint64_t malformed = 0;
};

class AccessServer {
 public:
  using Callback = std::function<void(const AccessOutcome&)>;

  explicit AccessServer(const AccessServerConfig& config);
  ~AccessServer();

  AccessServer(const AccessServer&) = delete;
  AccessServer& operator=(const AccessServer&) = delete;

  /// The vault, for pairing handoff / rotation / revocation.
  KeyVault& vault();

  /// Seconds since server construction on the steady clock — the time axis
  /// fed to the vault TTLs and token buckets.
  double now_s() const;

  /// Admits `request_wire` from `tenant_id`. Fast-rejects (kRateLimited /
  /// kShed) invoke `done` inline and return true. Returns false only after
  /// finish() (request not processed, callback not invoked).
  bool submit(std::uint64_t tag, std::uint64_t tenant_id, Bytes request_wire, Callback done);

  /// Closes the queue, drains pending requests, joins workers. Idempotent.
  void finish();

  AccessServerStats stats() const;
  std::size_t threads() const;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace wavekey::server
