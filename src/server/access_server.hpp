#pragma once

// Backend access-control server (DESIGN.md §9): the serving layer behind
// core::PairingEngine. Pairing hands established keys to the KeyVault
// (PairingEngineConfig::on_established); clients then authenticate every
// access request with an HMAC under their session key, and this server
// admits, verifies, and answers those requests from a worker pool.
//
// Request path:
//   submit() [caller thread]  — tenant token bucket (kRateLimited) and
//                               queue try_push (kShed) fast-reject inline;
//   worker threads            — parse (kMalformed on WireError), then
//                               KeyVault::authorize under one shard lock
//                               (kUnknownSession / kExpired / kRevoked /
//                               kStaleEpoch / kBadMac / kReplay / kGranted),
//                               optional emulated actuator I/O on grants,
//                               then the completion callback with a MACed
//                               AccessGrant.
//
// Thread-safety: submit() from any number of threads; finish() once from
// one thread after producers stop (also run by the destructor). Completion
// callbacks run on worker threads (or inline on the submit path for
// fast-rejects) and must be thread-safe.

#include <cstdint>
#include <functional>
#include <memory>

#include "server/access_protocol.hpp"
#include "server/admission.hpp"
#include "server/key_vault.hpp"

namespace wavekey::server {

struct AccessServerConfig {
  std::size_t threads = 1;          ///< verification workers
  std::size_t queue_capacity = 256; ///< admission queue; overflow -> kShed
  VaultConfig vault;
  AdmissionConfig admission;
  /// Emulated downstream actuation I/O per *granted* request (door strike /
  /// reader round-trip); a real sleep that workers overlap, mirroring
  /// radio_wait_s in core::PairingEngine. Zero disables it.
  double io_wait_s = 0.0;
};

/// Completion record handed to the callback.
struct AccessOutcome {
  std::uint64_t tag = 0;      ///< caller's correlation id from submit()
  AccessStatus status = AccessStatus::kMalformed;
  Bytes grant_wire;           ///< serialized AccessGrant (MACed if keyed)
  double verify_s = 0.0;      ///< parse + vault authorize wall time
  double queue_wait_s = 0.0;  ///< submit -> worker pickup (0 for fast-rejects)
};

/// Serving counters (one per status, plus totals). stats() snapshots every
/// field under ONE lock, so a snapshot is internally consistent even while
/// submitters and workers race: submitted == granted + ... + malformed +
/// in_flight holds exactly, in every snapshot (asserted under contention in
/// tests/server_test.cpp). A torn multi-atomic read could not promise that.
struct AccessServerStats {
  std::uint64_t submitted = 0;
  std::uint64_t in_flight = 0;  ///< admitted, outcome not yet counted
  std::uint64_t granted = 0;
  std::uint64_t unknown_session = 0;
  std::uint64_t expired = 0;
  std::uint64_t revoked = 0;
  std::uint64_t stale_epoch = 0;
  std::uint64_t bad_mac = 0;
  std::uint64_t replay_rejected = 0;
  std::uint64_t rate_limited = 0;
  std::uint64_t shed = 0;
  std::uint64_t malformed = 0;
};

class AccessServer {
 public:
  using Callback = std::function<void(const AccessOutcome&)>;

  explicit AccessServer(const AccessServerConfig& config);
  ~AccessServer();

  AccessServer(const AccessServer&) = delete;
  AccessServer& operator=(const AccessServer&) = delete;

  /// The vault, for pairing handoff / rotation / revocation.
  KeyVault& vault();

  /// Seconds since server construction on the steady clock — the time axis
  /// fed to the vault TTLs and token buckets.
  double now_s() const;

  /// Admits `request_wire` from `tenant_id`. Fast-rejects (kRateLimited /
  /// kShed) invoke `done` inline and return true. Returns false only after
  /// finish() (request not processed, callback not invoked).
  bool submit(std::uint64_t tag, std::uint64_t tenant_id, Bytes request_wire, Callback done);

  /// Closes the queue, drains pending requests, joins workers. Idempotent.
  void finish();

  AccessServerStats stats() const;
  std::size_t threads() const;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace wavekey::server
