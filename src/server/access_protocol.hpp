#pragma once

// Post-establishment access protocol (DESIGN.md §9.2): once a WaveKey
// pairing session has produced a key, the mobile authenticates each access
// request to the backend with an HMAC-SHA256 over (session id, epoch,
// monotonic counter, nonce, payload) keyed by the vault key of the named
// epoch. The server answers with an AccessGrant carrying a typed status and
// its own HMAC over (session id, counter, status), so the client can tell a
// genuine rejection from an injected one.
//
// Replay defense is split between the two layers: the counter feeds the
// per-session sliding-bitmap window (server/replay_window.hpp) held inside
// the vault; the random nonce keys apart two requests that legitimately
// carry the same (counter, payload) after a window reset (rotation).
//
// Parsing attacker-controlled bytes either succeeds or throws
// protocol::WireError — never UB (fuzzed in tests/server_test.cpp).
//
// Thread-safety: plain value types and pure functions; no shared state.

#include <array>
#include <cstdint>
#include <span>

#include "protocol/wire.hpp"

namespace wavekey::server {

using protocol::Bytes;

/// HMAC-SHA256 tag length on the wire.
inline constexpr std::size_t kMacBytes = 32;
/// Request nonce length.
inline constexpr std::size_t kNonceBytes = 8;

/// Outcome of an access request — every rejection class is distinct, so
/// telemetry (and tests) can tell replay from expiry from revocation from
/// overload. Wire-encoded as one byte in AccessGrant.
enum class AccessStatus : std::uint8_t {
  kGranted = 0,
  kUnknownSession = 1,  ///< no vault entry for the session id
  kExpired = 2,         ///< entry outlived its TTL
  kRevoked = 3,         ///< entry explicitly revoked
  kStaleEpoch = 4,      ///< request epoch != vault epoch (key was rotated)
  kBadMac = 5,          ///< HMAC verification failed (tampering / wrong key)
  kReplay = 6,          ///< counter already seen or below the replay window
  kRateLimited = 7,     ///< tenant token bucket empty (admission reject)
  kShed = 8,            ///< admission queue full (overload shed)
  kMalformed = 9,       ///< request failed to parse
  // Distributed-tier statuses (src/server/cluster.*, gateway.*): outcomes a
  // request can only have once the backend is a multi-node service.
  kUnavailable = 10,    ///< owning vault node down, failover not yet complete
  kRetryExhausted = 11, ///< gateway gave up after its capped retry budget
  // Offline-grant statuses (src/server/grants.*): rejections only a
  // disconnected-actuator token verification can produce.
  kCounterRollback = 12, ///< grant counter regressed below the accepted high-water
  kWrongScope = 13,      ///< token scope not allowed for this tag/actuator
};

/// Number of distinct AccessStatus values (for status-indexed counters).
inline constexpr std::size_t kAccessStatusCount = 14;

/// Human-readable status name (telemetry / bench output).
const char* access_status_name(AccessStatus status);

/// Client → server. `mac` authenticates every preceding field.
struct AccessRequest {
  std::uint64_t session_id = 0;
  std::uint32_t epoch = 0;    ///< key epoch the client believes is current
  std::uint64_t counter = 0;  ///< strictly-increasing per (session, epoch)
  std::array<std::uint8_t, kNonceBytes> nonce{};
  Bytes payload;  ///< opaque command (door id, service ticket, ...)
  std::array<std::uint8_t, kMacBytes> mac{};

  /// Full wire encoding (type tag, fields, MAC).
  Bytes serialize() const;
  /// The MAC's message: the serialization up to (excluding) the MAC.
  Bytes mac_input() const;
  /// Parses and validates framing; throws protocol::WireError on malformed
  /// or truncated input. The MAC is carried, not checked — only the vault
  /// knows the key (KeyVault::authorize).
  static AccessRequest parse(std::span<const std::uint8_t> wire);
};

/// Builds a fully-MACed request under `key` (the client-side encoder).
AccessRequest make_access_request(std::uint64_t session_id, std::uint32_t epoch,
                                  std::uint64_t counter,
                                  const std::array<std::uint8_t, kNonceBytes>& nonce,
                                  Bytes payload, std::span<const std::uint8_t> key);

/// Server → client. For statuses where the server holds the session key the
/// MAC authenticates (session id, counter, status); otherwise (unknown
/// session, malformed, overload) it is all-zero — the client treats such
/// grants as unauthenticated advice.
struct AccessGrant {
  std::uint64_t session_id = 0;
  std::uint64_t counter = 0;
  AccessStatus status = AccessStatus::kMalformed;
  std::array<std::uint8_t, kMacBytes> mac{};

  Bytes serialize() const;
  Bytes mac_input() const;
  /// Throws protocol::WireError on malformed input (unknown status byte
  /// included).
  static AccessGrant parse(std::span<const std::uint8_t> wire);
};

/// Builds a grant; MACs it iff `key` is non-empty.
AccessGrant make_access_grant(std::uint64_t session_id, std::uint64_t counter,
                              AccessStatus status, std::span<const std::uint8_t> key);

/// Client-side verification of a grant's MAC under the session key.
bool verify_access_grant(const AccessGrant& grant, std::span<const std::uint8_t> key);

}  // namespace wavekey::server
