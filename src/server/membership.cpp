#include "server/membership.hpp"

#include <algorithm>

namespace wavekey::server {

namespace {

/// splitmix64 finalizer (same mixer as the vault's shard router).
std::uint64_t mix64(std::uint64_t x) {
  x += 0x9E3779B97F4A7C15ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}

/// Ring coordinate of virtual point `v` of `node`. The two labels are mixed
/// jointly so a node's points are independent of each other and of other
/// nodes' points.
std::uint64_t ring_point(NodeId node, std::uint32_t v) {
  return mix64((std::uint64_t{node} << 32) | v);
}

/// Ring coordinate a partition hashes to (distinct label space from nodes).
std::uint64_t partition_point(std::uint32_t partition) {
  return mix64(0xC1A57E8ull * 0x100000000ull + partition);
}

}  // namespace

std::uint32_t partition_of(std::uint64_t session_id, std::uint32_t partitions) {
  if (partitions == 0) return 0;
  return static_cast<std::uint32_t>(mix64(session_id) % partitions);
}

PartitionMap::PartitionMap(std::uint32_t partitions, std::uint32_t vnodes)
    : vnodes_(vnodes < 1 ? 1 : vnodes), owners_(partitions < 1 ? 1 : partitions) {}

void PartitionMap::rebuild(const std::vector<NodeId>& up_nodes) {
  ++version_;
  if (up_nodes.empty()) {
    for (auto& o : owners_) o = PartitionOwners{};
    return;
  }
  // Build the ring: every live node contributes vnodes_ points.
  std::vector<std::pair<std::uint64_t, NodeId>> ring;
  ring.reserve(up_nodes.size() * vnodes_);
  for (NodeId node : up_nodes)
    for (std::uint32_t v = 0; v < vnodes_; ++v) ring.emplace_back(ring_point(node, v), node);
  std::sort(ring.begin(), ring.end());

  for (std::uint32_t p = 0; p < owners_.size(); ++p) {
    const std::uint64_t point = partition_point(p);
    // Successor of the partition's point (wrapping past the top of the ring).
    auto it = std::lower_bound(ring.begin(), ring.end(),
                               std::make_pair(point, NodeId{0}));
    if (it == ring.end()) it = ring.begin();
    PartitionOwners owners;
    owners.primary = it->second;
    // Replica: next point clockwise owned by a *different* node.
    for (std::size_t step = 1; step < ring.size(); ++step) {
      const auto& candidate = ring[(static_cast<std::size_t>(it - ring.begin()) + step) %
                                   ring.size()];
      if (candidate.second != owners.primary) {
        owners.replica = candidate.second;
        break;
      }
    }
    owners_[p] = owners;
  }
}

}  // namespace wavekey::server
