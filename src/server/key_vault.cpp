#include "server/key_vault.hpp"

#include <algorithm>
#include <cstring>

#include "crypto/hkdf.hpp"
#include "crypto/hmac.hpp"
#include "protocol/wire.hpp"

namespace wavekey::server {

namespace {

/// splitmix64 finalizer — decorrelates sequential session ids across shards.
std::uint64_t mix64(std::uint64_t x) {
  x += 0x9E3779B97F4A7C15ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}

}  // namespace

SessionKey derive_rotated_key(const SessionKey& old_key, std::uint64_t session_id,
                              std::uint32_t new_epoch) {
  protocol::WireWriter salt;
  const char* label = "wavekey-vault-rotate";
  salt.bytes(std::span<const std::uint8_t>(reinterpret_cast<const std::uint8_t*>(label),
                                           std::strlen(label)));
  salt.u32(new_epoch);
  protocol::WireWriter info;
  info.u64(session_id);
  const protocol::Bytes salt_bytes = salt.take();
  const protocol::Bytes info_bytes = info.take();
  const std::vector<std::uint8_t> okm =
      crypto::hkdf_sha256(salt_bytes, old_key, info_bytes, sizeof(SessionKey));
  SessionKey out{};
  std::copy(okm.begin(), okm.end(), out.begin());
  return out;
}

KeyVault::KeyVault(const VaultConfig& config) : config_(config) {
  if (config_.shards < 1) config_.shards = 1;
  if (config_.capacity < config_.shards) config_.capacity = config_.shards;
  per_shard_capacity_ = (config_.capacity + config_.shards - 1) / config_.shards;
  shards_.reserve(config_.shards);
  for (std::size_t i = 0; i < config_.shards; ++i) shards_.push_back(std::make_unique<Shard>());
}

KeyVault::Shard& KeyVault::shard_for(std::uint64_t session_id) {
  return *shards_[mix64(session_id) % shards_.size()];
}

const KeyVault::Shard& KeyVault::shard_for(std::uint64_t session_id) const {
  return *shards_[mix64(session_id) % shards_.size()];
}

bool KeyVault::reap_if_expired(Shard& shard, std::uint64_t session_id, double now_s) {
  auto it = shard.entries.find(session_id);
  if (it == shard.entries.end()) return false;
  if (now_s < it->second.expires_at_s) return false;
  shard.lru.erase(it->second.lru_pos);
  shard.entries.erase(it);
  ttl_evictions_.fetch_add(1, std::memory_order_relaxed);
  return true;
}

void KeyVault::touch(Shard& shard, Entry& entry) {
  shard.lru.splice(shard.lru.begin(), shard.lru, entry.lru_pos);
}

bool KeyVault::install(std::uint64_t session_id, std::span<const std::uint8_t> key,
                       double now_s) {
  if (key.size() != sizeof(SessionKey)) return false;
  Shard& shard = shard_for(session_id);
  std::lock_guard<std::mutex> lock(shard.mutex);
  auto it = shard.entries.find(session_id);
  if (it == shard.entries.end()) {
    if (shard.entries.size() >= per_shard_capacity_ && !shard.lru.empty()) {
      const std::uint64_t victim = shard.lru.back();
      shard.lru.pop_back();
      shard.entries.erase(victim);
      lru_evictions_.fetch_add(1, std::memory_order_relaxed);
    }
    it = shard.entries.emplace(session_id, Entry(config_.replay_window_bits)).first;
    shard.lru.push_front(session_id);
    it->second.lru_pos = shard.lru.begin();
  } else {
    touch(shard, it->second);
  }
  Entry& entry = it->second;
  std::copy(key.begin(), key.end(), entry.key.begin());
  entry.epoch = 0;
  entry.expires_at_s = now_s + config_.ttl_s;
  entry.revoked = false;
  entry.window.reset();
  installs_.fetch_add(1, std::memory_order_relaxed);
  return true;
}

bool KeyVault::install(std::uint64_t session_id, const BitVec& key, double now_s) {
  if (key.size() < 8 * sizeof(SessionKey)) return false;
  const std::vector<std::uint8_t> bytes = key.slice(0, 8 * sizeof(SessionKey)).to_bytes();
  return install(session_id, bytes, now_s);
}

std::optional<std::uint32_t> KeyVault::rotate(std::uint64_t session_id, double now_s) {
  Shard& shard = shard_for(session_id);
  std::lock_guard<std::mutex> lock(shard.mutex);
  if (reap_if_expired(shard, session_id, now_s)) return std::nullopt;
  auto it = shard.entries.find(session_id);
  if (it == shard.entries.end() || it->second.revoked) return std::nullopt;
  Entry& entry = it->second;
  entry.epoch += 1;
  entry.key = derive_rotated_key(entry.key, session_id, entry.epoch);
  entry.expires_at_s = now_s + config_.ttl_s;
  entry.window.reset();
  touch(shard, entry);
  rotations_.fetch_add(1, std::memory_order_relaxed);
  return entry.epoch;
}

bool KeyVault::revoke(std::uint64_t session_id) {
  Shard& shard = shard_for(session_id);
  std::lock_guard<std::mutex> lock(shard.mutex);
  auto it = shard.entries.find(session_id);
  if (it == shard.entries.end()) return false;
  it->second.revoked = true;
  revocations_.fetch_add(1, std::memory_order_relaxed);
  return true;
}

AccessStatus KeyVault::authorize(const AccessRequest& req,
                                 std::span<const std::uint8_t> mac_input, double now_s,
                                 SessionKey* key_out) {
  Shard& shard = shard_for(req.session_id);
  std::lock_guard<std::mutex> lock(shard.mutex);
  if (reap_if_expired(shard, req.session_id, now_s)) return AccessStatus::kExpired;
  auto it = shard.entries.find(req.session_id);
  if (it == shard.entries.end()) return AccessStatus::kUnknownSession;
  Entry& entry = it->second;
  if (entry.revoked) return AccessStatus::kRevoked;
  if (req.epoch != entry.epoch) return AccessStatus::kStaleEpoch;
  const crypto::Digest256 expected = crypto::hmac_sha256(entry.key, mac_input);
  crypto::Digest256 carried{};
  std::copy(req.mac.begin(), req.mac.end(), carried.begin());
  if (!crypto::digest_equal(expected, carried)) return AccessStatus::kBadMac;
  // Only authenticated counters may advance the window (header contract).
  if (!entry.window.check_and_update(req.counter)) return AccessStatus::kReplay;
  touch(shard, entry);
  if (key_out != nullptr) *key_out = entry.key;
  return AccessStatus::kGranted;
}

bool KeyVault::note_seen(std::uint64_t session_id, std::uint64_t counter) {
  Shard& shard = shard_for(session_id);
  std::lock_guard<std::mutex> lock(shard.mutex);
  auto it = shard.entries.find(session_id);
  if (it == shard.entries.end() || it->second.revoked) return false;
  // The return value is irrelevant: the primary accepted the counter, so a
  // duplicate mark (a re-replicated retry) is simply already-seen.
  (void)it->second.window.check_and_update(counter);
  return true;
}

std::vector<ExportedSession> KeyVault::export_sessions(
    const std::function<bool(std::uint64_t)>& pred) const {
  std::vector<ExportedSession> out;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mutex);
    for (const auto& [id, entry] : shard->entries) {
      if (!pred(id)) continue;
      ExportedSession exported;
      exported.session_id = id;
      exported.key = entry.key;
      exported.epoch = entry.epoch;
      exported.expires_at_s = entry.expires_at_s;
      exported.revoked = entry.revoked;
      exported.window = entry.window.snapshot();
      out.push_back(std::move(exported));
    }
  }
  return out;
}

std::size_t KeyVault::import_sessions(std::span<const ExportedSession> sessions) {
  std::size_t imported = 0;
  for (const ExportedSession& s : sessions) {
    Shard& shard = shard_for(s.session_id);
    std::lock_guard<std::mutex> lock(shard.mutex);
    auto it = shard.entries.find(s.session_id);
    if (it == shard.entries.end()) {
      if (shard.entries.size() >= per_shard_capacity_ && !shard.lru.empty()) {
        const std::uint64_t victim = shard.lru.back();
        shard.lru.pop_back();
        shard.entries.erase(victim);
        lru_evictions_.fetch_add(1, std::memory_order_relaxed);
      }
      it = shard.entries.emplace(s.session_id, Entry(config_.replay_window_bits)).first;
      shard.lru.push_front(s.session_id);
      it->second.lru_pos = shard.lru.begin();
    } else {
      touch(shard, it->second);
    }
    Entry& entry = it->second;
    entry.key = s.key;
    entry.epoch = s.epoch;
    entry.expires_at_s = s.expires_at_s;
    entry.revoked = s.revoked;
    entry.window.restore(s.window);
    ++imported;
  }
  return imported;
}

void KeyVault::clear() {
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mutex);
    shard->entries.clear();
    shard->lru.clear();
  }
}

std::optional<SessionKey> KeyVault::current_key(std::uint64_t session_id, double now_s) const {
  const Shard& shard = shard_for(session_id);
  std::lock_guard<std::mutex> lock(shard.mutex);
  auto it = shard.entries.find(session_id);
  if (it == shard.entries.end() || it->second.revoked) return std::nullopt;
  if (now_s >= it->second.expires_at_s) return std::nullopt;
  return it->second.key;
}

std::optional<std::uint32_t> KeyVault::current_epoch(std::uint64_t session_id,
                                                     double now_s) const {
  const Shard& shard = shard_for(session_id);
  std::lock_guard<std::mutex> lock(shard.mutex);
  auto it = shard.entries.find(session_id);
  if (it == shard.entries.end() || it->second.revoked) return std::nullopt;
  if (now_s >= it->second.expires_at_s) return std::nullopt;
  return it->second.epoch;
}

std::size_t KeyVault::size() const {
  std::size_t total = 0;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mutex);
    total += shard->entries.size();
  }
  return total;
}

VaultStats KeyVault::stats() const {
  VaultStats s;
  s.installs = installs_.load(std::memory_order_relaxed);
  s.rotations = rotations_.load(std::memory_order_relaxed);
  s.revocations = revocations_.load(std::memory_order_relaxed);
  s.lru_evictions = lru_evictions_.load(std::memory_order_relaxed);
  s.ttl_evictions = ttl_evictions_.load(std::memory_order_relaxed);
  return s;
}

}  // namespace wavekey::server
