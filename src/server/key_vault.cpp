#include "server/key_vault.hpp"

#include <algorithm>
#include <chrono>
#include <cstring>

#include "crypto/hkdf.hpp"
#include "crypto/hmac.hpp"
#include "protocol/wire.hpp"
#include "runtime/flat_map.hpp"

namespace wavekey::server {

namespace {

/// splitmix64 finalizer — decorrelates sequential session ids. Identical to
/// the FlatMap's internal mix; the vault consumes bits 32.. for shard
/// routing, the map consumes bits 7.. for group selection and 57.. for the
/// tag, so the two never alias (header comment).
std::uint64_t mix64(std::uint64_t x) {
  x += 0x9E3779B97F4A7C15ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}

std::size_t round_up_pow2(std::size_t n) {
  std::size_t p = 1;
  while (p < n) p *= 2;
  return p;
}

std::uint64_t now_ns() {
  return static_cast<std::uint64_t>(std::chrono::duration_cast<std::chrono::nanoseconds>(
                                        std::chrono::steady_clock::now().time_since_epoch())
                                        .count());
}

/// Bounded optimistic retries before falling back to the classic path. Two
/// consecutive losses require two distinct mutations of the same session
/// racing this request; more than a handful means the session is being
/// hammered with rotates and the under-lock path is the honest choice.
constexpr int kMaxOptimisticRetries = 4;

constexpr std::size_t kLockHoldRing = 16384;  // samples kept per shard

}  // namespace

SessionKey derive_rotated_key(const SessionKey& old_key, std::uint64_t session_id,
                              std::uint32_t new_epoch) {
  protocol::WireWriter salt;
  const char* label = "wavekey-vault-rotate";
  salt.bytes(std::span<const std::uint8_t>(reinterpret_cast<const std::uint8_t*>(label),
                                           std::strlen(label)));
  salt.u32(new_epoch);
  protocol::WireWriter info;
  info.u64(session_id);
  const protocol::Bytes salt_bytes = salt.take();
  const protocol::Bytes info_bytes = info.take();
  const std::vector<std::uint8_t> okm =
      crypto::hkdf_sha256(salt_bytes, old_key, info_bytes, sizeof(SessionKey));
  SessionKey out{};
  std::copy(okm.begin(), okm.end(), out.begin());
  return out;
}

/// Per-session state, stored by value in the shard's FlatMap pool.
struct KeyVault::Entry {
  SessionKey key{};
  std::uint32_t epoch = 0;
  double expires_at_s = 0.0;  ///< valid while now < expires_at_s
  bool revoked = false;
  /// Mutation stamp from Shard::version_clock: install / rotate / revoke /
  /// import each bump it, so an optimistic reader can detect ANY concurrent
  /// mutation — including erase + reinstall of the same id into a recycled
  /// pool slot (the clock is shard-monotonic, never per-slot, so there is
  /// no ABA).
  std::uint64_t version = 0;
  ReplayWindow window;
};

/// Hierarchical timer wheel for TTL expiry: same 4-level × 64-slot shape as
/// the event loop's wheel (src/runtime/event_loop.cpp) but on the vault's
/// caller-supplied seconds axis with a 10 ms tick. Entries are ADVISORY —
/// they carry only the session id, and purge re-checks `now >= expires_at_s`
/// against the live entry before erasing — so early fires (an entry re-armed
/// by rotate leaves its old arm in place) and duplicates are harmless; a
/// fired-but-live session is simply re-armed at its current deadline.
struct KeyVault::TtlWheel {
  static constexpr int kLevels = 4;
  static constexpr int kLevelBits = 6;
  static constexpr std::uint64_t kSlots = 1ull << kLevelBits;  // 64
  static constexpr double kTickS = 0.010;                      // 10 ms
  /// A jump farther than the whole wheel span (64^4 ticks ≈ 46 h) drains
  /// every slot instead of stepping tick-by-tick.
  static constexpr std::uint64_t kDrainJump = 1ull << (kLevelBits * kLevels);

  struct Armed {
    std::uint64_t session_id;
    std::uint64_t deadline_tick;
  };

  std::uint64_t current_tick = 0;  ///< last tick fully processed
  std::array<std::array<std::vector<Armed>, kSlots>, kLevels> slots;

  static std::uint64_t tick_of(double t_s) {
    if (t_s <= 0.0) return 0;
    const double ticks = t_s / kTickS;
    if (ticks >= 9.0e18) return 9'000'000'000'000'000'000ull;
    return static_cast<std::uint64_t>(ticks);
  }

  /// Arms `id` to fire strictly after `expires_at_s` has passed.
  void arm(std::uint64_t id, double expires_at_s) {
    place(Armed{id, tick_of(expires_at_s) + 1});
  }

  void place(const Armed& e) {
    std::uint64_t deadline = e.deadline_tick;
    if (deadline <= current_tick) deadline = current_tick + 1;  // next advance
    const std::uint64_t delta = deadline - current_tick;
    int level = kLevels - 1;
    for (int l = 0; l < kLevels; ++l) {
      if (delta < (1ull << (kLevelBits * (l + 1)))) {
        level = l;
        break;
      }
    }
    const std::uint64_t idx = (deadline >> (kLevelBits * level)) & (kSlots - 1);
    slots[static_cast<std::size_t>(level)][idx].push_back(Armed{e.session_id, deadline});
  }

  /// Advances one tick PAST the tick containing `now_s`, appending fired
  /// session ids to `fired`. The +1 pairs with arm()'s +1: every entry with
  /// expires_at_s <= now_s has deadline tick_of(expires)+1 <= target, so a
  /// sweep at `now_s` is exact — no same-tick granularity lag versus a full
  /// scan. Entries whose expiry falls later in the current tick may fire
  /// early; that's fine because entries are advisory (the caller re-checks
  /// the authoritative expires_at_s and re-arms live ones). Cheap per empty
  /// tick; degenerate jumps drain the whole wheel.
  void advance_to(double now_s, std::vector<std::uint64_t>& fired) {
    const std::uint64_t target = tick_of(now_s) + 1;
    if (target <= current_tick) return;
    if (target - current_tick >= kDrainJump) {
      for (auto& level : slots) {
        for (auto& slot : level) {
          for (const Armed& e : slot) fired.push_back(e.session_id);
          slot.clear();
        }
      }
      current_tick = target;
      return;
    }
    while (current_tick < target) {
      ++current_tick;
      const std::uint64_t t = current_tick;
      // Cascade every level whose index wrapped at this tick, top-down so
      // re-placed entries land in already-processed (or lower) positions.
      int wrapped = 0;
      for (int l = 1; l < kLevels; ++l) {
        if ((t & ((1ull << (kLevelBits * l)) - 1)) != 0) break;
        wrapped = l;
      }
      for (int l = wrapped; l >= 1; --l) {
        const std::uint64_t idx = (t >> (kLevelBits * l)) & (kSlots - 1);
        auto moved = std::move(slots[static_cast<std::size_t>(l)][idx]);
        slots[static_cast<std::size_t>(l)][idx].clear();
        for (const Armed& e : moved) {
          if (e.deadline_tick <= t) {
            fired.push_back(e.session_id);
          } else {
            place(e);
          }
        }
      }
      auto& due = slots[0][t & (kSlots - 1)];
      for (const Armed& e : due) fired.push_back(e.session_id);
      due.clear();
    }
  }

  std::size_t memory_bytes() const {
    std::size_t total = 0;
    for (const auto& level : slots) {
      for (const auto& slot : level) total += slot.capacity() * sizeof(Armed);
    }
    return total;
  }
};

struct KeyVault::Shard {
  mutable std::mutex mutex;
  runtime::FlatMap<Entry> map;
  TtlWheel wheel;
  std::uint64_t version_clock = 0;  ///< bumped on every entry mutation
  // Lock-hold sampling ring (only written when config.measure_lock_hold).
  std::vector<std::uint64_t> hold_ns;
  std::size_t hold_pos = 0;

  void record_hold(std::uint64_t ns) {
    if (hold_ns.size() < kLockHoldRing) {
      hold_ns.push_back(ns);
    } else {
      hold_ns[hold_pos] = ns;
      hold_pos = (hold_pos + 1) % kLockHoldRing;
    }
  }
};

namespace {

/// RAII shard-lock that optionally records its hold time into the shard's
/// sampling ring. The clock reads sit outside the critical section's useful
/// work but inside the hold, slightly inflating reported holds — a
/// conservative bias for a metric whose gate is an upper bound.
class ShardLock {
 public:
  ShardLock(KeyVault::Shard& shard, bool measure)
      : shard_(shard), measure_(measure), lock_(shard.mutex) {
    if (measure_) start_ = now_ns();
  }
  ~ShardLock() {
    if (measure_) shard_.record_hold(now_ns() - start_);
  }

 private:
  KeyVault::Shard& shard_;
  bool measure_;
  std::lock_guard<std::mutex> lock_;
  std::uint64_t start_ = 0;
};

}  // namespace

KeyVault::KeyVault(const VaultConfig& config) : config_(config) {
  if (config_.shards < 1) config_.shards = 1;
  config_.shards = round_up_pow2(config_.shards);
  if (config_.capacity < config_.shards) config_.capacity = config_.shards;
  per_shard_capacity_ = (config_.capacity + config_.shards - 1) / config_.shards;
  shards_.reserve(config_.shards);
  for (std::size_t i = 0; i < config_.shards; ++i) {
    auto shard = std::make_unique<Shard>();
    shard->map.reserve(per_shard_capacity_);
    shards_.push_back(std::move(shard));
  }
}

KeyVault::~KeyVault() = default;

KeyVault::Shard& KeyVault::shard_for(std::uint64_t session_id) {
  return *shards_[(mix64(session_id) >> 32) & (shards_.size() - 1)];
}

const KeyVault::Shard& KeyVault::shard_for(std::uint64_t session_id) const {
  return *shards_[(mix64(session_id) >> 32) & (shards_.size() - 1)];
}

bool KeyVault::reap_if_expired(Shard& shard, std::uint32_t idx, double now_s) {
  if (now_s < shard.map.at(idx).expires_at_s) return false;
  shard.map.erase_index(idx);
  ttl_evictions_.fetch_add(1, std::memory_order_relaxed);
  resident_entries_.fetch_sub(1, std::memory_order_relaxed);
  return true;
}

void KeyVault::evict_for_capacity(Shard& shard) {
  if (shard.map.size() < per_shard_capacity_) return;
  const std::uint32_t victim = shard.map.lru_tail();
  if (victim == runtime::FlatMap<Entry>::kNil) return;
  shard.map.erase_index(victim);
  lru_evictions_.fetch_add(1, std::memory_order_relaxed);
  resident_entries_.fetch_sub(1, std::memory_order_relaxed);
}

bool KeyVault::install(std::uint64_t session_id, std::span<const std::uint8_t> key,
                       double now_s) {
  if (key.size() != sizeof(SessionKey)) return false;
  Shard& shard = shard_for(session_id);
  ShardLock lock(shard, config_.measure_lock_hold);
  std::uint32_t idx = shard.map.find_index(session_id);
  if (idx == runtime::FlatMap<Entry>::kNil) {
    evict_for_capacity(shard);
    idx = shard.map.find_or_insert(session_id).first;
    shard.map.at(idx).window.reconfigure(config_.replay_window_bits);
    resident_entries_.fetch_add(1, std::memory_order_relaxed);
  } else {
    shard.map.touch(idx);
  }
  Entry& entry = shard.map.at(idx);
  std::copy(key.begin(), key.end(), entry.key.begin());
  entry.epoch = 0;
  entry.expires_at_s = now_s + config_.ttl_s;
  entry.revoked = false;
  entry.version = ++shard.version_clock;
  entry.window.reset();
  shard.wheel.arm(session_id, entry.expires_at_s);
  installs_.fetch_add(1, std::memory_order_relaxed);
  return true;
}

bool KeyVault::install(std::uint64_t session_id, const BitVec& key, double now_s) {
  if (key.size() < 8 * sizeof(SessionKey)) return false;
  const std::vector<std::uint8_t> bytes = key.slice(0, 8 * sizeof(SessionKey)).to_bytes();
  return install(session_id, bytes, now_s);
}

std::optional<std::uint32_t> KeyVault::rotate(std::uint64_t session_id, double now_s) {
  Shard& shard = shard_for(session_id);
  ShardLock lock(shard, config_.measure_lock_hold);
  const std::uint32_t idx = shard.map.find_index(session_id);
  if (idx == runtime::FlatMap<Entry>::kNil) return std::nullopt;
  if (reap_if_expired(shard, idx, now_s)) return std::nullopt;
  Entry& entry = shard.map.at(idx);
  if (entry.revoked) return std::nullopt;
  entry.epoch += 1;
  entry.key = derive_rotated_key(entry.key, session_id, entry.epoch);
  entry.expires_at_s = now_s + config_.ttl_s;
  entry.version = ++shard.version_clock;
  entry.window.reset();
  shard.map.touch(idx);
  shard.wheel.arm(session_id, entry.expires_at_s);
  rotations_.fetch_add(1, std::memory_order_relaxed);
  return entry.epoch;
}

bool KeyVault::revoke(std::uint64_t session_id) {
  Shard& shard = shard_for(session_id);
  ShardLock lock(shard, config_.measure_lock_hold);
  const std::uint32_t idx = shard.map.find_index(session_id);
  if (idx == runtime::FlatMap<Entry>::kNil) return false;
  Entry& entry = shard.map.at(idx);
  entry.revoked = true;
  entry.version = ++shard.version_clock;
  revocations_.fetch_add(1, std::memory_order_relaxed);
  return true;
}

AccessStatus KeyVault::authorize_locked(Shard& shard, const AccessRequest& req,
                                        std::span<const std::uint8_t> mac_input,
                                        double now_s, SessionKey* key_out) {
  ShardLock lock(shard, config_.measure_lock_hold);
  const std::uint32_t idx = shard.map.find_index(req.session_id);
  if (idx == runtime::FlatMap<Entry>::kNil) return AccessStatus::kUnknownSession;
  if (reap_if_expired(shard, idx, now_s)) return AccessStatus::kExpired;
  Entry& entry = shard.map.at(idx);
  if (entry.revoked) return AccessStatus::kRevoked;
  if (req.epoch != entry.epoch) return AccessStatus::kStaleEpoch;
  const crypto::Digest256 expected = crypto::hmac_sha256(entry.key, mac_input);
  crypto::Digest256 carried{};
  std::copy(req.mac.begin(), req.mac.end(), carried.begin());
  if (!crypto::digest_equal(expected, carried)) return AccessStatus::kBadMac;
  // Only authenticated counters may advance the window (header contract).
  if (!entry.window.check_and_update(req.counter)) return AccessStatus::kReplay;
  shard.map.touch(idx);
  if (key_out != nullptr) *key_out = entry.key;
  return AccessStatus::kGranted;
}

AccessStatus KeyVault::authorize(const AccessRequest& req,
                                 std::span<const std::uint8_t> mac_input, double now_s,
                                 SessionKey* key_out) {
  Shard& shard = shard_for(req.session_id);
  if (!config_.optimistic_verify) {
    return authorize_locked(shard, req, mac_input, now_s, key_out);
  }

  for (int attempt = 0; attempt < kMaxOptimisticRetries; ++attempt) {
    // Phase 1 — snapshot under the lock: resolve every pre-MAC rejection
    // exactly as the classic path would, then capture (key, version).
    SessionKey snap_key;
    std::uint64_t snap_version;
    {
      ShardLock lock(shard, config_.measure_lock_hold);
      const std::uint32_t idx = shard.map.find_index(req.session_id);
      if (idx == runtime::FlatMap<Entry>::kNil) return AccessStatus::kUnknownSession;
      if (reap_if_expired(shard, idx, now_s)) return AccessStatus::kExpired;
      const Entry& entry = shard.map.at(idx);
      if (entry.revoked) return AccessStatus::kRevoked;
      if (req.epoch != entry.epoch) return AccessStatus::kStaleEpoch;
      snap_key = entry.key;
      snap_version = entry.version;
    }

    // Phase 2 — the HMAC, outside the lock. This is the whole point: other
    // requests for the same shard proceed while we hash.
    const crypto::Digest256 expected = crypto::hmac_sha256(snap_key, mac_input);
    crypto::Digest256 carried{};
    std::copy(req.mac.begin(), req.mac.end(), carried.begin());
    const bool mac_ok = crypto::digest_equal(expected, carried);
    optimistic_verifies_.fetch_add(1, std::memory_order_relaxed);

    // Phase 3 — re-validate and commit under the lock. An unchanged version
    // proves the entry (key, epoch, revocation, TTL deadline) is byte-for-
    // byte what we hashed against, so verify+mark is as atomic as the
    // classic path. Any mutation since the snapshot forces a retry.
    {
      ShardLock lock(shard, config_.measure_lock_hold);
      const std::uint32_t idx = shard.map.find_index(req.session_id);
      if (idx == runtime::FlatMap<Entry>::kNil) return AccessStatus::kUnknownSession;
      Entry& entry = shard.map.at(idx);
      if (entry.version != snap_version) {
        version_retries_.fetch_add(1, std::memory_order_relaxed);
        continue;
      }
      if (!mac_ok) return AccessStatus::kBadMac;
      if (!entry.window.check_and_update(req.counter)) return AccessStatus::kReplay;
      shard.map.touch(idx);
      if (key_out != nullptr) *key_out = entry.key;
      return AccessStatus::kGranted;
    }
  }

  // The session is being mutated faster than we can hash — do it the
  // classic way; under the lock nothing can race.
  locked_fallbacks_.fetch_add(1, std::memory_order_relaxed);
  return authorize_locked(shard, req, mac_input, now_s, key_out);
}

std::size_t KeyVault::purge_expired(double now_s) {
  std::size_t purged = 0;
  std::vector<std::uint64_t> fired;
  for (const auto& shard_ptr : shards_) {
    Shard& shard = *shard_ptr;
    fired.clear();
    ShardLock lock(shard, config_.measure_lock_hold);
    shard.wheel.advance_to(now_s, fired);
    for (const std::uint64_t id : fired) {
      const std::uint32_t idx = shard.map.find_index(id);
      if (idx == runtime::FlatMap<Entry>::kNil) continue;  // already gone
      const Entry& entry = shard.map.at(idx);
      if (now_s >= entry.expires_at_s) {
        shard.map.erase_index(idx);
        ++purged;
        resident_entries_.fetch_sub(1, std::memory_order_relaxed);
      } else {
        // Fired early (stale arm from a rotate, or a drain jump): the entry
        // is live — re-arm it at its current deadline so it is not leaked.
        shard.wheel.arm(id, entry.expires_at_s);
      }
    }
  }
  ttl_evictions_.fetch_add(purged, std::memory_order_relaxed);
  purged_expired_.fetch_add(purged, std::memory_order_relaxed);
  return purged;
}

bool KeyVault::note_seen(std::uint64_t session_id, std::uint64_t counter) {
  Shard& shard = shard_for(session_id);
  ShardLock lock(shard, config_.measure_lock_hold);
  const std::uint32_t idx = shard.map.find_index(session_id);
  if (idx == runtime::FlatMap<Entry>::kNil) return false;
  Entry& entry = shard.map.at(idx);
  if (entry.revoked) return false;
  // The return value is irrelevant: the primary accepted the counter, so a
  // duplicate mark (a re-replicated retry) is simply already-seen.
  (void)entry.window.check_and_update(counter);
  return true;
}

std::vector<ExportedSession> KeyVault::export_sessions(
    const std::function<bool(std::uint64_t)>& pred) const {
  std::vector<ExportedSession> out;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mutex);
    // Oldest-first: importing in this order re-creates the LRU list exactly.
    shard->map.for_each_lru_oldest_first([&](std::uint64_t id, const Entry& entry) {
      if (!pred(id)) return;
      ExportedSession exported;
      exported.session_id = id;
      exported.key = entry.key;
      exported.epoch = entry.epoch;
      exported.expires_at_s = entry.expires_at_s;
      exported.revoked = entry.revoked;
      exported.window = entry.window.snapshot();
      out.push_back(std::move(exported));
    });
  }
  return out;
}

std::size_t KeyVault::import_sessions(std::span<const ExportedSession> sessions) {
  std::size_t imported = 0;
  for (const ExportedSession& s : sessions) {
    Shard& shard = shard_for(s.session_id);
    ShardLock lock(shard, config_.measure_lock_hold);
    std::uint32_t idx = shard.map.find_index(s.session_id);
    if (idx == runtime::FlatMap<Entry>::kNil) {
      evict_for_capacity(shard);
      idx = shard.map.find_or_insert(s.session_id).first;
      shard.map.at(idx).window.reconfigure(config_.replay_window_bits);
      resident_entries_.fetch_add(1, std::memory_order_relaxed);
    } else {
      shard.map.touch(idx);
    }
    Entry& entry = shard.map.at(idx);
    entry.key = s.key;
    entry.epoch = s.epoch;
    entry.expires_at_s = s.expires_at_s;
    entry.revoked = s.revoked;
    entry.version = ++shard.version_clock;
    entry.window.restore(s.window);
    shard.wheel.arm(s.session_id, entry.expires_at_s);
    ++imported;
  }
  return imported;
}

void KeyVault::clear() {
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mutex);
    resident_entries_.fetch_sub(shard->map.size(), std::memory_order_relaxed);
    shard->map.clear();
    shard->wheel = TtlWheel{};
    shard->version_clock += 1;  // invalidate any in-flight optimistic snapshot
  }
}

std::optional<SessionKey> KeyVault::current_key(std::uint64_t session_id, double now_s) const {
  const Shard& shard = shard_for(session_id);
  std::lock_guard<std::mutex> lock(shard.mutex);
  const std::uint32_t idx = shard.map.find_index(session_id);
  if (idx == runtime::FlatMap<Entry>::kNil) return std::nullopt;
  const Entry& entry = shard.map.at(idx);
  if (entry.revoked) return std::nullopt;
  if (now_s >= entry.expires_at_s) return std::nullopt;
  return entry.key;
}

std::optional<std::uint32_t> KeyVault::current_epoch(std::uint64_t session_id,
                                                     double now_s) const {
  const Shard& shard = shard_for(session_id);
  std::lock_guard<std::mutex> lock(shard.mutex);
  const std::uint32_t idx = shard.map.find_index(session_id);
  if (idx == runtime::FlatMap<Entry>::kNil) return std::nullopt;
  const Entry& entry = shard.map.at(idx);
  if (entry.revoked) return std::nullopt;
  if (now_s >= entry.expires_at_s) return std::nullopt;
  return entry.epoch;
}

std::size_t KeyVault::size() const {
  std::size_t total = 0;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mutex);
    total += shard->map.size();
  }
  return total;
}

VaultStats KeyVault::stats() const {
  VaultStats s;
  s.installs = installs_.load(std::memory_order_relaxed);
  s.rotations = rotations_.load(std::memory_order_relaxed);
  s.revocations = revocations_.load(std::memory_order_relaxed);
  s.lru_evictions = lru_evictions_.load(std::memory_order_relaxed);
  s.ttl_evictions = ttl_evictions_.load(std::memory_order_relaxed);
  s.purged_expired = purged_expired_.load(std::memory_order_relaxed);
  s.resident_entries = resident_entries_.load(std::memory_order_relaxed);
  s.optimistic_verifies = optimistic_verifies_.load(std::memory_order_relaxed);
  s.version_retries = version_retries_.load(std::memory_order_relaxed);
  s.locked_fallbacks = locked_fallbacks_.load(std::memory_order_relaxed);
  return s;
}

std::size_t KeyVault::memory_bytes() const {
  std::size_t total = 0;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mutex);
    total += shard->map.memory_bytes() + shard->wheel.memory_bytes();
  }
  return total;
}

std::vector<std::uint64_t> KeyVault::lock_hold_samples_ns() const {
  std::vector<std::uint64_t> out;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mutex);
    out.insert(out.end(), shard->hold_ns.begin(), shard->hold_ns.end());
  }
  return out;
}

void KeyVault::reset_lock_hold_samples() {
  for (auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mutex);
    shard->hold_ns.clear();
    shard->hold_pos = 0;
  }
}

}  // namespace wavekey::server
