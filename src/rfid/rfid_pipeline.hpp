#pragma once

// Server-side RFID data processing (SIV-B2 of the paper):
//
//  1. unwrap the reader's mod-2pi phase reports;
//  2. detect the gesture start from the variance jump of the unwrapped
//     phase (mirror of the mobile side's detection);
//  3. cut the 2 s window (2n samples at the reader rate n = 200 Hz);
//  4. denoise phase and magnitude with Savitzky-Golay filters (chosen by the
//     paper because they preserve local extrema);
//  5. normalize (phase: mean-removed; magnitude: z-scored so the matrix is
//     distance/SNR invariant) and assemble the 2n x 2 matrix R.

#include <optional>

#include "dsp/gesture_detect.hpp"
#include "numeric/matrix.hpp"
#include "sim/rfid_channel.hpp"

namespace wavekey::rfid {

struct RfidPipelineConfig {
  double window_s = 2.0;
  double window_offset_s = 0.0;   ///< shift of the window past the detected start
  std::size_t sg_window = 11;  ///< Savitzky-Golay window length (odd)
  std::size_t sg_order = 3;    ///< Savitzky-Golay polynomial order
  dsp::GestureDetectConfig detect{
      .window = 20, .threshold_ratio = 6.0, .min_baseline = 1e-6, .baseline_len = 40};

  /// Displacement-threshold anchoring (see ImuPipelineConfig): the window
  /// starts when the unwrapped phase has moved by 4*pi*d/lambda past its
  /// onset baseline, i.e. the tag displaced radially by ~d meters.
  double anchor_displacement_m = 0.006;
  double wavelength_m = 299792458.0 / 915e6;  ///< carrier wavelength

  /// Ablation switch (bench_ablation_sync): false reverts to the coarse
  /// variance-trigger onset.
  bool displacement_anchor = true;
};

struct RfidPipelineResult {
  Matrix processed;           ///< R: (window_s * reader rate) x 2 [phase, magnitude]
  double gesture_start_time;  ///< detected start, seconds into the recording
};

/// Runs the full server-side pipeline. Returns nullopt when no gesture start
/// is detected or the recording cannot cover the window.
std::optional<RfidPipelineResult> process_rfid(const sim::RfidRecord& record,
                                               const RfidPipelineConfig& config = {});

}  // namespace wavekey::rfid
