#include "rfid/rfid_pipeline.hpp"

#include <cmath>

#include "dsp/phase_unwrap.hpp"
#include "dsp/savitzky_golay.hpp"
#include "numeric/stats.hpp"

namespace wavekey::rfid {

std::optional<RfidPipelineResult> process_rfid(const sim::RfidRecord& record,
                                               const RfidPipelineConfig& config) {
  const auto& samples = record.samples;
  if (samples.size() < 60) return std::nullopt;

  // Reader sampling interval (assumed uniform, as from a real reader).
  const double dt = samples[1].t - samples[0].t;
  if (dt <= 0.0) return std::nullopt;

  // 1. Unwrap, then denoise immediately: detection and anchoring both work
  // on the smoothed series (Savitzky-Golay is zero-phase, so this does not
  // bias the anchor timing).
  std::vector<double> wrapped(samples.size());
  for (std::size_t i = 0; i < samples.size(); ++i) wrapped[i] = samples[i].phase;
  const dsp::SavitzkyGolayFilter sg(config.sg_window, config.sg_order);
  const std::vector<double> phase = sg.apply(dsp::unwrap_phase(wrapped));

  // 2. Coarse onset from the unwrapped-phase variance jump.
  const auto detected = dsp::detect_gesture_start(phase, config.detect);
  if (!detected) return std::nullopt;

  // 2b. Displacement-threshold anchoring: the window starts when the phase
  // has moved 4*pi*d/lambda away from its onset baseline, i.e. the tag has
  // displaced radially by the same physical distance the mobile side anchors
  // on. Baseline is the phase just before the coarse onset (robust to slow
  // dynamic-environment drift).
  const double phase_threshold =
      4.0 * M_PI * config.anchor_displacement_m / config.wavelength_m;
  const std::size_t base_begin = *detected > 10 ? *detected - 10 : 0;
  double baseline = 0.0;
  std::size_t base_n = 0;
  for (std::size_t i = base_begin; i <= *detected && i < phase.size(); ++i, ++base_n)
    baseline += phase[i];
  baseline /= static_cast<double>(std::max<std::size_t>(base_n, 1));
  // Continuation check: a true gesture onset *accelerates*, so shortly after
  // crossing the threshold the displacement must have grown further. Slow
  // multipath drift from walkers (dynamic environments) crosses the
  // threshold but fails this check; the search then continues.
  const auto cont_gap = static_cast<std::size_t>(std::llround(0.03 / dt));
  std::size_t anchor = phase.size();
  if (!config.displacement_anchor) anchor = *detected;  // ablation
  for (std::size_t i = *detected; config.displacement_anchor && i + cont_gap < phase.size();
       ++i) {
    if (std::abs(phase[i] - baseline) >= phase_threshold &&
        std::abs(phase[i + cont_gap] - baseline) >= 1.6 * phase_threshold) {
      anchor = i;
      break;
    }
  }
  if (anchor == phase.size()) return std::nullopt;
  const std::size_t start_idx =
      anchor + static_cast<std::size_t>(std::llround(config.window_offset_s / dt));

  // 3. Cut the window.
  const auto n_out = static_cast<std::size_t>(std::llround(config.window_s / dt));
  if (start_idx + n_out > samples.size()) return std::nullopt;

  std::vector<double> win_phase(phase.begin() + static_cast<std::ptrdiff_t>(start_idx),
                                phase.begin() + static_cast<std::ptrdiff_t>(start_idx + n_out));
  std::vector<double> win_mag(n_out);
  for (std::size_t i = 0; i < n_out; ++i) win_mag[i] = samples[start_idx + i].magnitude;

  // 4. Savitzky-Golay denoising of the magnitude (phase already smoothed).
  win_mag = sg.apply(win_mag);

  // 5. Normalization. The absolute phase offset is reader LO state and the
  // phase swing scales with the cosine between the gesture direction and the
  // line of sight — information the mobile side cannot observe — so the
  // phase is z-scored per window to make the matrix shape-only. Magnitude
  // scale is dominated by distance/antenna gain; z-score it too.
  const double phase_mean = mean(win_phase);
  const double phase_std = std::max(stddev(win_phase), 1e-9);
  for (double& p : win_phase) p = (p - phase_mean) / phase_std;
  const double mag_mean = mean(win_mag);
  const double mag_std = std::max(stddev(win_mag), 1e-9);
  for (double& m : win_mag) m = (m - mag_mean) / mag_std;

  Matrix r(n_out, 2);
  r.set_col(0, win_phase);
  r.set_col(1, win_mag);
  return RfidPipelineResult{std::move(r), samples[start_idx].t};
}

}  // namespace wavekey::rfid
