#include "ecc/fuzzy_commitment.hpp"

#include <algorithm>
#include <stdexcept>

namespace wavekey::ecc {
namespace {

constexpr std::size_t kMaxCodeword = 255;

std::size_t compute_nsym(std::size_t max_byte_errors) {
  // RS corrects floor(nsym/2) errors; give every chunk the full budget so the
  // worst-case clustering of errors into one chunk is still correctable.
  const std::size_t nsym = 2 * std::max<std::size_t>(max_byte_errors, 1);
  if (nsym >= kMaxCodeword)
    throw std::invalid_argument("FuzzyCommitment: error budget too large for RS(255)");
  return nsym;
}

}  // namespace

FuzzyCommitment::FuzzyCommitment(std::size_t key_bits, std::size_t max_byte_errors)
    : key_bits_(key_bits),
      key_bytes_((key_bits + 7) / 8),
      rs_(compute_nsym(max_byte_errors)) {
  if (key_bits_ == 0) throw std::invalid_argument("FuzzyCommitment: empty key");
  const std::size_t max_data = kMaxCodeword - rs_.nsym();
  num_chunks_ = (key_bytes_ + max_data - 1) / max_data;
  base_chunk_len_ = (key_bytes_ + num_chunks_ - 1) / num_chunks_;
}

std::size_t FuzzyCommitment::chunk_data_len(std::size_t chunk) const {
  const std::size_t start = chunk * base_chunk_len_;
  return std::min(base_chunk_len_, key_bytes_ - start);
}

std::size_t FuzzyCommitment::helper_size() const {
  return key_bytes_ + num_chunks_ * rs_.nsym();
}

std::vector<std::uint8_t> FuzzyCommitment::commit(const BitVec& key, crypto::Drbg& rng) const {
  if (key.size() != key_bits_) throw std::invalid_argument("FuzzyCommitment::commit: key size");
  const std::vector<std::uint8_t> key_bytes = key.to_bytes();

  std::vector<std::uint8_t> helper;
  helper.reserve(helper_size());
  for (std::size_t chunk = 0; chunk < num_chunks_; ++chunk) {
    const std::size_t start = chunk * base_chunk_len_;
    const std::size_t len = chunk_data_len(chunk);

    // Random codeword: encode a fresh random message of the same length.
    std::vector<std::uint8_t> msg(len);
    rng.random_bytes(msg);
    const std::vector<std::uint8_t> codeword = rs_.encode(msg);

    // delta = (key_chunk || 0^nsym) XOR codeword.
    for (std::size_t i = 0; i < len; ++i)
      helper.push_back(static_cast<std::uint8_t>(key_bytes[start + i] ^ codeword[i]));
    for (std::size_t i = len; i < codeword.size(); ++i) helper.push_back(codeword[i]);
  }
  return helper;
}

std::optional<BitVec> FuzzyCommitment::recover(std::span<const std::uint8_t> helper,
                                               const BitVec& noisy_key) const {
  if (helper.size() != helper_size() || noisy_key.size() != key_bits_) return std::nullopt;
  const std::vector<std::uint8_t> noisy_bytes = noisy_key.to_bytes();

  std::vector<std::uint8_t> recovered(key_bytes_, 0);
  std::size_t helper_pos = 0;
  for (std::size_t chunk = 0; chunk < num_chunks_; ++chunk) {
    const std::size_t start = chunk * base_chunk_len_;
    const std::size_t len = chunk_data_len(chunk);
    const std::size_t cw_len = len + rs_.nsym();

    // candidate = (noisy_chunk || 0^nsym) XOR delta = codeword XOR error.
    std::vector<std::uint8_t> candidate(cw_len);
    for (std::size_t i = 0; i < len; ++i)
      candidate[i] = static_cast<std::uint8_t>(noisy_bytes[start + i] ^ helper[helper_pos + i]);
    for (std::size_t i = len; i < cw_len; ++i) candidate[i] = helper[helper_pos + i];

    const auto decoded = rs_.decode(candidate);
    if (!decoded) return std::nullopt;
    // Re-encode to get the codeword's data part (== decoded message since
    // the code is systematic), then peel the offset off the helper.
    for (std::size_t i = 0; i < len; ++i)
      recovered[start + i] = static_cast<std::uint8_t>((*decoded)[i] ^ helper[helper_pos + i]);

    helper_pos += cw_len;
  }
  return BitVec::from_bytes(recovered, key_bits_);
}

}  // namespace wavekey::ecc
