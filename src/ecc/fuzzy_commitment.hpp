#pragma once

// Fuzzy commitment (Juels-Wattenberg code-offset construction) over the
// Reed-Solomon code. This realizes the paper's reconciliation step
// concretely: the mobile device sends "the ECC of its key K_M" (SIV-D2) as a
// helper string delta = (K_M || 0-pad) XOR C(r) for a random codeword C(r);
// the RFID server XORs its own noisy K_R onto delta, decodes the result back
// to C(r), and thereby recovers exactly K_M. The helper reveals at most
// nsym bytes of information about K_M (the code's redundancy), which the
// overall key length budgets for.
//
// Thread-safety: immutable after construction; commit/recover are const
// with call-local state, so one instance is safe to share across threads
// (each concurrent pairing session in core::PairingEngine does exactly
// that). The Drbg passed to commit() is the caller's and must not be
// shared between threads.

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "crypto/drbg.hpp"
#include "ecc/reed_solomon.hpp"
#include "numeric/bitvec.hpp"

namespace wavekey::ecc {

/// Code-offset fuzzy commitment with chunked Reed-Solomon (keys longer than
/// one RS codeword are split across chunks; each chunk carries its own
/// parity, sized for the worst case of all errors landing in one chunk).
class FuzzyCommitment {
 public:
  /// @param key_bits          length of the committed key in bits
  /// @param max_byte_errors   symbol-error budget the commitment must absorb
  /// Throws std::invalid_argument if key_bits == 0 or the implied parity does
  /// not fit an RS codeword.
  FuzzyCommitment(std::size_t key_bits, std::size_t max_byte_errors);

  std::size_t key_bits() const { return key_bits_; }
  std::size_t num_chunks() const { return num_chunks_; }
  std::size_t helper_size() const;  ///< helper string length in bytes

  /// Commits to `key` (must be key_bits long); returns the helper string to
  /// transmit in the clear.
  std::vector<std::uint8_t> commit(const BitVec& key, crypto::Drbg& rng) const;

  /// Recovers the committed key from the helper and a noisy candidate key
  /// whose byte-level difference from the committed key is within the error
  /// budget. Returns nullopt if reconciliation fails.
  std::optional<BitVec> recover(std::span<const std::uint8_t> helper,
                                const BitVec& noisy_key) const;

 private:
  std::size_t chunk_data_len(std::size_t chunk) const;

  std::size_t key_bits_;
  std::size_t key_bytes_;
  std::size_t num_chunks_;
  std::size_t base_chunk_len_;  // data bytes in all but possibly the last chunk
  ReedSolomon rs_;
};

}  // namespace wavekey::ecc
