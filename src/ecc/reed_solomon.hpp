#pragma once

// Systematic Reed-Solomon codec over GF(2^8).
//
// Encoder: polynomial remainder against the generator polynomial
// g(x) = prod_{i=0}^{nsym-1} (x - alpha^i). Decoder: syndromes ->
// Berlekamp-Massey error locator -> Chien search -> Forney error values.
// Corrects up to nsym/2 unknown symbol errors per codeword.
//
// This is the workhorse behind the key-reconciliation step: a flipped
// key-seed bit corrupts one whole key segment, i.e. a short burst of bytes,
// which symbol-level RS absorbs efficiently (DESIGN.md SS4.3).
//
// Thread-safety: a codec instance is immutable after construction and
// encode/decode/syndromes are const with call-local working state — one
// shared instance may serve any number of threads concurrently.

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "ecc/gf256.hpp"

namespace wavekey::ecc {

/// Reed-Solomon code with `nsym` parity symbols (codewords up to 255 bytes).
class ReedSolomon {
 public:
  /// @param nsym number of parity symbols (1..254). Corrects floor(nsym/2)
  /// errors. Throws std::invalid_argument otherwise.
  explicit ReedSolomon(std::size_t nsym);

  std::size_t nsym() const { return nsym_; }
  std::size_t max_errors() const { return nsym_ / 2; }

  /// Maximum number of data bytes per codeword.
  std::size_t max_data_len() const { return 255 - nsym_; }

  /// Systematic encode: returns data || parity. Throws if data is too long.
  std::vector<std::uint8_t> encode(std::span<const std::uint8_t> data) const;

  /// Decodes a (possibly corrupted) codeword; returns the corrected data
  /// portion, or nullopt if more than max_errors() symbols are corrupted
  /// (detected via decoder failure or post-correction syndrome check).
  std::optional<std::vector<std::uint8_t>> decode(std::span<const std::uint8_t> codeword) const;

 private:
  std::vector<std::uint8_t> syndromes(std::span<const std::uint8_t> codeword) const;

  std::size_t nsym_;
  std::vector<std::uint8_t> generator_;      // generator polynomial, ascending degree
  std::vector<std::uint8_t> gen_tail_desc_;  // generator_ below the monic term, descending
  std::vector<Gf256::MulTable> root_tables_;  // Horner tables for alpha^0..alpha^{nsym-1}
};

}  // namespace wavekey::ecc
