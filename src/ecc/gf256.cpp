#include "ecc/gf256.hpp"

#include <stdexcept>

#include "runtime/cpu.hpp"

namespace wavekey::ecc {

const Gf256::Tables& Gf256::tables() {
  static const Tables t = [] {
    Tables tt{};
    std::uint16_t x = 1;
    for (int i = 0; i < 255; ++i) {
      tt.exp[i] = static_cast<std::uint8_t>(x);
      tt.log[x] = i;
      x <<= 1;
      if (x & 0x100) x ^= 0x11D;
    }
    // Duplicate so exp lookups of (la + lb) need no modulo.
    for (int i = 255; i < 512; ++i) tt.exp[i] = tt.exp[i - 255];
    tt.log[0] = -1;
    return tt;
  }();
  return t;
}

std::uint8_t Gf256::mul(std::uint8_t a, std::uint8_t b) {
  if (a == 0 || b == 0) return 0;
  const auto& t = tables();
  return t.exp[static_cast<std::size_t>(t.log[a] + t.log[b])];
}

std::uint8_t Gf256::div(std::uint8_t a, std::uint8_t b) {
  if (b == 0) throw std::domain_error("Gf256::div by zero");
  if (a == 0) return 0;
  const auto& t = tables();
  return t.exp[static_cast<std::size_t>(t.log[a] - t.log[b] + 255)];
}

std::uint8_t Gf256::inv(std::uint8_t a) {
  if (a == 0) throw std::domain_error("Gf256::inv of zero");
  const auto& t = tables();
  return t.exp[static_cast<std::size_t>(255 - t.log[a])];
}

std::uint8_t Gf256::exp(int e) {
  const auto& t = tables();
  e %= 255;
  if (e < 0) e += 255;
  return t.exp[static_cast<std::size_t>(e)];
}

int Gf256::log(std::uint8_t a) {
  if (a == 0) throw std::domain_error("Gf256::log of zero");
  return tables().log[a];
}

std::uint8_t Gf256::pow(std::uint8_t a, int n) {
  if (n == 0) return 1;
  if (a == 0) return 0;
  const long e = static_cast<long>(log(a)) * n % 255;
  return exp(static_cast<int>(e));
}

Gf256::MulTable Gf256::mul_table(std::uint8_t c) {
  MulTable t;
  for (int i = 0; i < 16; ++i) {
    t.lo[static_cast<std::size_t>(i)] = mul(c, static_cast<std::uint8_t>(i));
    t.hi[static_cast<std::size_t>(i)] = mul(c, static_cast<std::uint8_t>(i << 4));
  }
  return t;
}

void gf256_addmul_slice_scalar(std::uint8_t* dst, const std::uint8_t* src, std::size_t n,
                               std::uint8_t c) {
  const Gf256::MulTable t = Gf256::mul_table(c);
  for (std::size_t i = 0; i < n; ++i) dst[i] ^= t.mul(src[i]);
}

void gf256_mul_slice_scalar(std::uint8_t* dst, const std::uint8_t* src, std::size_t n,
                            std::uint8_t c) {
  const Gf256::MulTable t = Gf256::mul_table(c);
  for (std::size_t i = 0; i < n; ++i) dst[i] = t.mul(src[i]);
}

void Gf256::addmul_slice(std::uint8_t* dst, const std::uint8_t* src, std::size_t n,
                         std::uint8_t c) {
  using runtime::cpu::SimdTier;
  if (runtime::cpu::active_tier() >= SimdTier::kAvx2) {
    gf256_addmul_slice_avx2(dst, src, n, c);
  } else {
    gf256_addmul_slice_scalar(dst, src, n, c);
  }
}

void Gf256::mul_slice(std::uint8_t* dst, const std::uint8_t* src, std::size_t n,
                      std::uint8_t c) {
  using runtime::cpu::SimdTier;
  if (runtime::cpu::active_tier() >= SimdTier::kAvx2) {
    gf256_mul_slice_avx2(dst, src, n, c);
  } else {
    gf256_mul_slice_scalar(dst, src, n, c);
  }
}

}  // namespace wavekey::ecc
