// AVX2 GF(2^8) bulk kernels: nibble-split VPSHUFB constant multiplication
// (DESIGN.md §8.5). Each 32-byte step splits the source bytes into low and
// high nibbles, looks both up in the broadcast MulTable halves, and XORs the
// two partial products — the vector transliteration of MulTable::mul. The
// tail (< 32 bytes) runs the branchless scalar loop; no vector load ever
// touches bytes outside [0, n), so the kernels are clean under ASan.
//
// This translation unit is compiled with -mavx2 on x86 (see
// src/ecc/CMakeLists.txt). On toolchains/targets without AVX2 the functions
// delegate to the scalar kernels so the symbols always exist; callers gate
// on runtime::cpu feature detection before taking the AVX2 path.

#include "ecc/gf256.hpp"

#if defined(__AVX2__)
#include <immintrin.h>
#endif

namespace wavekey::ecc {

#if defined(__AVX2__)

namespace {

struct NibbleTables {
  __m256i lo;
  __m256i hi;
  __m256i mask;
};

inline NibbleTables broadcast_tables(std::uint8_t c) {
  const Gf256::MulTable t = Gf256::mul_table(c);
  NibbleTables nt;
  nt.lo = _mm256_broadcastsi128_si256(
      _mm_load_si128(reinterpret_cast<const __m128i*>(t.lo.data())));
  nt.hi = _mm256_broadcastsi128_si256(
      _mm_load_si128(reinterpret_cast<const __m128i*>(t.hi.data())));
  nt.mask = _mm256_set1_epi8(0x0F);
  return nt;
}

inline __m256i mul_vec(const NibbleTables& nt, __m256i v) {
  const __m256i lo_idx = _mm256_and_si256(v, nt.mask);
  const __m256i hi_idx = _mm256_and_si256(_mm256_srli_epi64(v, 4), nt.mask);
  return _mm256_xor_si256(_mm256_shuffle_epi8(nt.lo, lo_idx),
                          _mm256_shuffle_epi8(nt.hi, hi_idx));
}

}  // namespace

void gf256_addmul_slice_avx2(std::uint8_t* dst, const std::uint8_t* src, std::size_t n,
                             std::uint8_t c) {
  const std::size_t n_main = n - n % 32;
  if (n_main != 0) {
    const NibbleTables nt = broadcast_tables(c);
    for (std::size_t i = 0; i < n_main; i += 32) {
      const __m256i s = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src + i));
      const __m256i d = _mm256_loadu_si256(reinterpret_cast<__m256i*>(dst + i));
      _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i),
                          _mm256_xor_si256(d, mul_vec(nt, s)));
    }
  }
  if (n_main != n) gf256_addmul_slice_scalar(dst + n_main, src + n_main, n - n_main, c);
}

void gf256_mul_slice_avx2(std::uint8_t* dst, const std::uint8_t* src, std::size_t n,
                          std::uint8_t c) {
  const std::size_t n_main = n - n % 32;
  if (n_main != 0) {
    const NibbleTables nt = broadcast_tables(c);
    for (std::size_t i = 0; i < n_main; i += 32) {
      const __m256i s = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src + i));
      _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i), mul_vec(nt, s));
    }
  }
  if (n_main != n) gf256_mul_slice_scalar(dst + n_main, src + n_main, n - n_main, c);
}

#else  // !defined(__AVX2__): keep the symbols, defer to the scalar kernels.

void gf256_addmul_slice_avx2(std::uint8_t* dst, const std::uint8_t* src, std::size_t n,
                             std::uint8_t c) {
  gf256_addmul_slice_scalar(dst, src, n, c);
}

void gf256_mul_slice_avx2(std::uint8_t* dst, const std::uint8_t* src, std::size_t n,
                          std::uint8_t c) {
  gf256_mul_slice_scalar(dst, src, n, c);
}

#endif

}  // namespace wavekey::ecc
