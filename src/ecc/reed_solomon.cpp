#include "ecc/reed_solomon.hpp"

#include <algorithm>
#include <stdexcept>

#include "ecc/gf256.hpp"

namespace wavekey::ecc {
namespace {

// Polynomials are stored ascending-degree: p[i] is the coefficient of x^i.

// Horner evaluation with the multiplier's nibble table hoisted out of the
// loop: one table build per (polynomial, point) pair instead of a
// function-local-static access and two zero branches per coefficient.
std::uint8_t poly_eval(std::span<const std::uint8_t> p, std::uint8_t x) {
  const Gf256::MulTable tx = Gf256::mul_table(x);
  std::uint8_t acc = 0;
  for (std::size_t i = p.size(); i-- > 0;) acc = tx.mul(acc) ^ p[i];
  return acc;
}

// Product via bulk addmul: row i of the schoolbook product is a[i] * b,
// accumulated at offset i — one slice op per coefficient of a.
std::vector<std::uint8_t> poly_mul(std::span<const std::uint8_t> a,
                                   std::span<const std::uint8_t> b) {
  std::vector<std::uint8_t> r(a.size() + b.size() - 1, 0);
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i] != 0) Gf256::addmul_slice(r.data() + i, b.data(), b.size(), a[i]);
  }
  return r;
}

}  // namespace

ReedSolomon::ReedSolomon(std::size_t nsym) : nsym_(nsym) {
  if (nsym_ < 1 || nsym_ > 254) throw std::invalid_argument("ReedSolomon: nsym out of range");
  // g(x) = prod (x - alpha^i), i = 0..nsym-1. In GF(2^8), -a == a.
  generator_ = {1};
  for (std::size_t i = 0; i < nsym_; ++i) {
    const std::uint8_t root = Gf256::exp(static_cast<int>(i));
    const std::uint8_t factor[2] = {root, 1};  // (x + root)
    generator_ = poly_mul(generator_, factor);
  }
  // Descending-order tail of the (monic) generator — the constant operand of
  // the long-division addmul in encode().
  gen_tail_desc_.assign(generator_.rbegin() + 1, generator_.rend());
  // Per-syndrome Horner multiplier tables, hoisted once per codec instance.
  root_tables_.reserve(nsym_);
  for (std::size_t i = 0; i < nsym_; ++i)
    root_tables_.push_back(Gf256::mul_table(Gf256::exp(static_cast<int>(i))));
}

std::vector<std::uint8_t> ReedSolomon::encode(std::span<const std::uint8_t> data) const {
  if (data.size() > max_data_len()) throw std::invalid_argument("ReedSolomon::encode: too long");

  // Systematic encoding: parity = -(data(x) * x^nsym mod g(x)). Synthetic
  // long division into a shift-free buffer laid out high-degree-first: each
  // step cancels the leading coefficient by XORing coef * g into the next
  // nsym bytes — one bulk addmul per data byte instead of a remainder shift
  // plus a per-coefficient multiply loop.
  std::vector<std::uint8_t> buf(data.size() + nsym_, 0);
  std::copy(data.begin(), data.end(), buf.begin());
  for (std::size_t i = 0; i < data.size(); ++i) {
    const std::uint8_t coef = buf[i];
    if (coef != 0) Gf256::addmul_slice(buf.data() + i + 1, gen_tail_desc_.data(), nsym_, coef);
  }

  std::vector<std::uint8_t> out(data.begin(), data.end());
  // The remainder already sits high-degree-first in the buffer tail, which
  // matches the transmission order of the parity bytes.
  out.insert(out.end(), buf.begin() + static_cast<std::ptrdiff_t>(data.size()), buf.end());
  return out;
}

std::vector<std::uint8_t> ReedSolomon::syndromes(std::span<const std::uint8_t> codeword) const {
  // Treat the codeword as a polynomial with the FIRST byte as the HIGHEST
  // degree coefficient (transmission order). S_i = c(alpha^i), Horner with
  // the per-root table cached at construction — branchless inner loop.
  std::vector<std::uint8_t> synd(nsym_);
  for (std::size_t i = 0; i < nsym_; ++i) {
    const Gf256::MulTable& tx = root_tables_[i];
    std::uint8_t acc = 0;
    for (std::uint8_t c : codeword) acc = tx.mul(acc) ^ c;
    synd[i] = acc;
  }
  return synd;
}

std::optional<std::vector<std::uint8_t>> ReedSolomon::decode(
    std::span<const std::uint8_t> codeword) const {
  if (codeword.size() <= nsym_ || codeword.size() > 255) return std::nullopt;
  const std::size_t n = codeword.size();

  const std::vector<std::uint8_t> synd = syndromes(codeword);
  if (std::all_of(synd.begin(), synd.end(), [](std::uint8_t s) { return s == 0; }))
    return std::vector<std::uint8_t>(codeword.begin(), codeword.end() - nsym_);

  // Berlekamp-Massey: find the error-locator polynomial sigma (ascending).
  std::vector<std::uint8_t> sigma = {1}, prev = {1};
  std::size_t l = 0, m = 1;
  std::uint8_t b = 1;
  for (std::size_t i = 0; i < nsym_; ++i) {
    std::uint8_t delta = synd[i];
    for (std::size_t j = 1; j <= l && j < sigma.size(); ++j)
      delta = Gf256::add(delta, Gf256::mul(sigma[j], synd[i - j]));
    if (delta == 0) {
      ++m;
    } else if (2 * l <= i) {
      const std::vector<std::uint8_t> tmp = sigma;
      const std::uint8_t coef = Gf256::div(delta, b);
      // sigma -= coef * x^m * prev
      sigma.resize(std::max(sigma.size(), prev.size() + m), 0);
      Gf256::addmul_slice(sigma.data() + m, prev.data(), prev.size(), coef);
      l = i + 1 - l;
      prev = tmp;
      b = delta;
      m = 1;
    } else {
      const std::uint8_t coef = Gf256::div(delta, b);
      sigma.resize(std::max(sigma.size(), prev.size() + m), 0);
      Gf256::addmul_slice(sigma.data() + m, prev.data(), prev.size(), coef);
      ++m;
    }
  }
  while (!sigma.empty() && sigma.back() == 0) sigma.pop_back();
  const std::size_t num_errors = sigma.size() - 1;
  if (num_errors == 0 || num_errors > max_errors()) return std::nullopt;

  // Chien search: roots of sigma give error positions. With the first
  // codeword byte as degree n-1, an error at byte index k corresponds to the
  // locator X = alpha^(n-1-k); sigma has root X^{-1}. Successive evaluation
  // points are alpha^{k-(n-1)}, i.e. each step multiplies the j-th term of
  // sigma by alpha^j — so the loop keeps one running term per coefficient
  // and advances all of them with per-term tables hoisted out of the scan.
  std::vector<std::uint8_t> terms(sigma.size());
  std::vector<Gf256::MulTable> step(sigma.size());
  for (std::size_t j = 0; j < sigma.size(); ++j) {
    const int e = static_cast<int>(j) * (1 - static_cast<int>(n));  // j * -(n-1)
    terms[j] = Gf256::mul(sigma[j], Gf256::exp(e));
    step[j] = Gf256::mul_table(Gf256::exp(static_cast<int>(j)));
  }
  std::vector<std::size_t> positions;
  for (std::size_t k = 0; k < n; ++k) {
    std::uint8_t sum = 0;
    for (std::uint8_t t : terms) sum ^= t;
    if (sum == 0) positions.push_back(k);
    for (std::size_t j = 1; j < terms.size(); ++j) terms[j] = step[j].mul(terms[j]);
  }
  if (positions.size() != num_errors) return std::nullopt;

  // Forney: error magnitudes. Omega(x) = [S(x) * sigma(x)] mod x^nsym, with
  // S(x) = sum synd[i] x^i. e_k = X_k * Omega(X_k^{-1}) / sigma'(X_k^{-1}).
  std::vector<std::uint8_t> omega = poly_mul(synd, sigma);
  omega.resize(nsym_);

  // Formal derivative of sigma (characteristic 2: even terms vanish).
  std::vector<std::uint8_t> dsigma;
  for (std::size_t j = 1; j < sigma.size(); j += 2) {
    dsigma.resize(j, 0);
    dsigma[j - 1] = sigma[j];
  }
  if (dsigma.empty()) return std::nullopt;

  std::vector<std::uint8_t> corrected(codeword.begin(), codeword.end());
  for (std::size_t k : positions) {
    const int loc_exp = static_cast<int>(n - 1 - k);
    const std::uint8_t x = Gf256::exp(loc_exp);
    const std::uint8_t x_inv = Gf256::exp(-loc_exp);
    const std::uint8_t denom = poly_eval(dsigma, x_inv);
    if (denom == 0) return std::nullopt;
    const std::uint8_t num = poly_eval(omega, x_inv);
    const std::uint8_t magnitude = Gf256::mul(x, Gf256::div(num, denom));
    corrected[k] = Gf256::add(corrected[k], magnitude);
  }

  // Verify: all syndromes of the corrected word must vanish.
  const std::vector<std::uint8_t> check = syndromes(corrected);
  if (!std::all_of(check.begin(), check.end(), [](std::uint8_t s) { return s == 0; }))
    return std::nullopt;

  return std::vector<std::uint8_t>(corrected.begin(), corrected.end() - nsym_);
}

}  // namespace wavekey::ecc
