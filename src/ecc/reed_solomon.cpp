#include "ecc/reed_solomon.hpp"

#include <algorithm>
#include <stdexcept>

#include "ecc/gf256.hpp"

namespace wavekey::ecc {
namespace {

// Polynomials are stored ascending-degree: p[i] is the coefficient of x^i.

std::uint8_t poly_eval(std::span<const std::uint8_t> p, std::uint8_t x) {
  std::uint8_t acc = 0;
  for (std::size_t i = p.size(); i-- > 0;) acc = Gf256::add(Gf256::mul(acc, x), p[i]);
  return acc;
}

std::vector<std::uint8_t> poly_mul(std::span<const std::uint8_t> a,
                                   std::span<const std::uint8_t> b) {
  std::vector<std::uint8_t> r(a.size() + b.size() - 1, 0);
  for (std::size_t i = 0; i < a.size(); ++i)
    for (std::size_t j = 0; j < b.size(); ++j)
      r[i + j] = Gf256::add(r[i + j], Gf256::mul(a[i], b[j]));
  return r;
}

}  // namespace

ReedSolomon::ReedSolomon(std::size_t nsym) : nsym_(nsym) {
  if (nsym_ < 1 || nsym_ > 254) throw std::invalid_argument("ReedSolomon: nsym out of range");
  // g(x) = prod (x - alpha^i), i = 0..nsym-1. In GF(2^8), -a == a.
  generator_ = {1};
  for (std::size_t i = 0; i < nsym_; ++i) {
    const std::uint8_t root = Gf256::exp(static_cast<int>(i));
    const std::uint8_t factor[2] = {root, 1};  // (x + root)
    generator_ = poly_mul(generator_, factor);
  }
}

std::vector<std::uint8_t> ReedSolomon::encode(std::span<const std::uint8_t> data) const {
  if (data.size() > max_data_len()) throw std::invalid_argument("ReedSolomon::encode: too long");

  // Systematic encoding: parity = -(data(x) * x^nsym mod g(x)). Long division
  // with the message laid out high-degree-first.
  std::vector<std::uint8_t> rem(nsym_, 0);
  for (std::uint8_t d : data) {
    const std::uint8_t factor = Gf256::add(d, rem.back());
    // Shift remainder up by one (multiply by x) and subtract factor * g.
    for (std::size_t i = rem.size(); i-- > 1;) {
      rem[i] = Gf256::add(rem[i - 1], Gf256::mul(factor, generator_[i]));
    }
    rem[0] = Gf256::mul(factor, generator_[0]);
  }

  std::vector<std::uint8_t> out(data.begin(), data.end());
  // Parity appended high-degree-first to match the divisor orientation.
  for (std::size_t i = rem.size(); i-- > 0;) out.push_back(rem[i]);
  return out;
}

std::vector<std::uint8_t> ReedSolomon::syndromes(std::span<const std::uint8_t> codeword) const {
  // Treat the codeword as a polynomial with the FIRST byte as the HIGHEST
  // degree coefficient (transmission order). S_i = c(alpha^i).
  std::vector<std::uint8_t> synd(nsym_);
  for (std::size_t i = 0; i < nsym_; ++i) {
    const std::uint8_t x = Gf256::exp(static_cast<int>(i));
    std::uint8_t acc = 0;
    for (std::uint8_t c : codeword) acc = Gf256::add(Gf256::mul(acc, x), c);
    synd[i] = acc;
  }
  return synd;
}

std::optional<std::vector<std::uint8_t>> ReedSolomon::decode(
    std::span<const std::uint8_t> codeword) const {
  if (codeword.size() <= nsym_ || codeword.size() > 255) return std::nullopt;
  const std::size_t n = codeword.size();

  const std::vector<std::uint8_t> synd = syndromes(codeword);
  if (std::all_of(synd.begin(), synd.end(), [](std::uint8_t s) { return s == 0; }))
    return std::vector<std::uint8_t>(codeword.begin(), codeword.end() - nsym_);

  // Berlekamp-Massey: find the error-locator polynomial sigma (ascending).
  std::vector<std::uint8_t> sigma = {1}, prev = {1};
  std::size_t l = 0, m = 1;
  std::uint8_t b = 1;
  for (std::size_t i = 0; i < nsym_; ++i) {
    std::uint8_t delta = synd[i];
    for (std::size_t j = 1; j <= l && j < sigma.size(); ++j)
      delta = Gf256::add(delta, Gf256::mul(sigma[j], synd[i - j]));
    if (delta == 0) {
      ++m;
    } else if (2 * l <= i) {
      const std::vector<std::uint8_t> tmp = sigma;
      const std::uint8_t coef = Gf256::div(delta, b);
      // sigma -= coef * x^m * prev
      sigma.resize(std::max(sigma.size(), prev.size() + m), 0);
      for (std::size_t j = 0; j < prev.size(); ++j)
        sigma[j + m] = Gf256::add(sigma[j + m], Gf256::mul(coef, prev[j]));
      l = i + 1 - l;
      prev = tmp;
      b = delta;
      m = 1;
    } else {
      const std::uint8_t coef = Gf256::div(delta, b);
      sigma.resize(std::max(sigma.size(), prev.size() + m), 0);
      for (std::size_t j = 0; j < prev.size(); ++j)
        sigma[j + m] = Gf256::add(sigma[j + m], Gf256::mul(coef, prev[j]));
      ++m;
    }
  }
  while (!sigma.empty() && sigma.back() == 0) sigma.pop_back();
  const std::size_t num_errors = sigma.size() - 1;
  if (num_errors == 0 || num_errors > max_errors()) return std::nullopt;

  // Chien search: roots of sigma give error positions. With the first
  // codeword byte as degree n-1, an error at byte index k corresponds to the
  // locator X = alpha^(n-1-k); sigma has root X^{-1}.
  std::vector<std::size_t> positions;
  for (std::size_t k = 0; k < n; ++k) {
    const int loc_exp = static_cast<int>(n - 1 - k);
    const std::uint8_t x_inv = Gf256::exp(-loc_exp);
    if (poly_eval(sigma, x_inv) == 0) positions.push_back(k);
  }
  if (positions.size() != num_errors) return std::nullopt;

  // Forney: error magnitudes. Omega(x) = [S(x) * sigma(x)] mod x^nsym, with
  // S(x) = sum synd[i] x^i. e_k = X_k * Omega(X_k^{-1}) / sigma'(X_k^{-1}).
  std::vector<std::uint8_t> omega = poly_mul(synd, sigma);
  omega.resize(nsym_);

  // Formal derivative of sigma (characteristic 2: even terms vanish).
  std::vector<std::uint8_t> dsigma;
  for (std::size_t j = 1; j < sigma.size(); j += 2) {
    dsigma.resize(j, 0);
    dsigma[j - 1] = sigma[j];
  }
  if (dsigma.empty()) return std::nullopt;

  std::vector<std::uint8_t> corrected(codeword.begin(), codeword.end());
  for (std::size_t k : positions) {
    const int loc_exp = static_cast<int>(n - 1 - k);
    const std::uint8_t x = Gf256::exp(loc_exp);
    const std::uint8_t x_inv = Gf256::exp(-loc_exp);
    const std::uint8_t denom = poly_eval(dsigma, x_inv);
    if (denom == 0) return std::nullopt;
    const std::uint8_t num = poly_eval(omega, x_inv);
    const std::uint8_t magnitude = Gf256::mul(x, Gf256::div(num, denom));
    corrected[k] = Gf256::add(corrected[k], magnitude);
  }

  // Verify: all syndromes of the corrected word must vanish.
  const std::vector<std::uint8_t> check = syndromes(corrected);
  if (!std::all_of(check.begin(), check.end(), [](std::uint8_t s) { return s == 0; }))
    return std::nullopt;

  return std::vector<std::uint8_t>(corrected.begin(), corrected.end() - nsym_);
}

}  // namespace wavekey::ecc
