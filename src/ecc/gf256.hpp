#pragma once

// GF(2^8) arithmetic with the primitive polynomial x^8+x^4+x^3+x^2+1 (0x11D),
// the field underlying the Reed-Solomon reconciliation code.
//
// Thread-safety: all operations are static, read-only lookups into tables
// built once under C++11 magic-static initialization — safe to call from
// any number of threads concurrently.

#include <array>
#include <cstdint>

namespace wavekey::ecc {

/// Table-driven GF(2^8) arithmetic. All operations are total except division
/// by zero and log(0), which throw std::domain_error.
class Gf256 {
 public:
  static std::uint8_t add(std::uint8_t a, std::uint8_t b) { return a ^ b; }
  static std::uint8_t sub(std::uint8_t a, std::uint8_t b) { return a ^ b; }
  static std::uint8_t mul(std::uint8_t a, std::uint8_t b);
  static std::uint8_t div(std::uint8_t a, std::uint8_t b);
  static std::uint8_t inv(std::uint8_t a);

  /// alpha^e for the generator alpha = 0x02.
  static std::uint8_t exp(int e);

  /// Discrete log base alpha; a must be nonzero.
  static int log(std::uint8_t a);

  /// a^n with n >= 0.
  static std::uint8_t pow(std::uint8_t a, int n);

 private:
  struct Tables {
    std::array<std::uint8_t, 512> exp;
    std::array<int, 256> log;
  };
  static const Tables& tables();
};

}  // namespace wavekey::ecc
