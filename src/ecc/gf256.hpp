#pragma once

// GF(2^8) arithmetic with the primitive polynomial x^8+x^4+x^3+x^2+1 (0x11D),
// the field underlying the Reed-Solomon reconciliation code.
//
// Besides the classic scalar log/exp operations this header exposes the
// *bulk* primitives the RS hot loops are built on (DESIGN.md §8.5):
//
//   * MulTable      — a 16+16-entry nibble-split product table for one fixed
//                     multiplier c: c·x = lo[x & 15] ^ hi[x >> 4] because GF
//                     multiplication is GF(2)-linear in x. Branchless, no
//                     zero tests, and exactly the layout the PSHUFB-based
//                     SIMD kernels consume.
//   * addmul_slice  — dst[i] ^= c · src[i] over a byte span.
//   * mul_slice     — dst[i]  = c · src[i] over a byte span.
//
// The slice operations dispatch through runtime::cpu::active_tier(): an
// AVX2 nibble-split VPSHUFB kernel (32 bytes/step) when available, else the
// branchless MulTable scalar loop. The tier-explicit entry points are
// exported so differential tests and the bench self-check can drive each
// implementation directly.
//
// Aliasing: dst == src is allowed (loads happen before stores element by
// element or vector by vector); *partially* overlapping spans are not.
//
// Thread-safety: all operations are static, read-only lookups into tables
// built once under C++11 magic-static initialization — safe to call from
// any number of threads concurrently.

#include <array>
#include <cstddef>
#include <cstdint>

namespace wavekey::ecc {

/// Table-driven GF(2^8) arithmetic. All operations are total except division
/// by zero and log(0), which throw std::domain_error.
class Gf256 {
 public:
  static std::uint8_t add(std::uint8_t a, std::uint8_t b) { return a ^ b; }
  static std::uint8_t sub(std::uint8_t a, std::uint8_t b) { return a ^ b; }
  static std::uint8_t mul(std::uint8_t a, std::uint8_t b);
  static std::uint8_t div(std::uint8_t a, std::uint8_t b);
  static std::uint8_t inv(std::uint8_t a);

  /// alpha^e for the generator alpha = 0x02.
  static std::uint8_t exp(int e);

  /// Discrete log base alpha; a must be nonzero.
  static int log(std::uint8_t a);

  /// a^n with n >= 0.
  static std::uint8_t pow(std::uint8_t a, int n);

  /// Precomputed nibble-split products of one fixed multiplier c.
  /// mul(x) is branchless: two loads and one XOR, valid for every x
  /// including 0 and c == 0.
  struct MulTable {
    alignas(16) std::array<std::uint8_t, 16> lo;  // c * 0x00..0x0F
    alignas(16) std::array<std::uint8_t, 16> hi;  // c * 0x00..0xF0 (high nibble)
    std::uint8_t mul(std::uint8_t x) const { return lo[x & 0x0F] ^ hi[x >> 4]; }
  };

  /// Builds the nibble-split table for multiplier c.
  static MulTable mul_table(std::uint8_t c);

  /// dst[i] ^= c * src[i] for i in [0, n). SIMD-dispatched.
  static void addmul_slice(std::uint8_t* dst, const std::uint8_t* src, std::size_t n,
                           std::uint8_t c);

  /// dst[i] = c * src[i] for i in [0, n). SIMD-dispatched.
  static void mul_slice(std::uint8_t* dst, const std::uint8_t* src, std::size_t n,
                        std::uint8_t c);

 private:
  struct Tables {
    std::array<std::uint8_t, 512> exp;
    std::array<int, 256> log;
  };
  static const Tables& tables();
};

// Tier-explicit slice kernels (differential tests, bench self-check; the
// dispatched entry points above are what production code should call).
// The *_avx2 functions must only be invoked when
// runtime::cpu::detected_tier() >= kAvx2; on targets where the AVX2
// translation unit is compiled without AVX2 support they delegate to the
// scalar kernel.
void gf256_addmul_slice_scalar(std::uint8_t* dst, const std::uint8_t* src, std::size_t n,
                               std::uint8_t c);
void gf256_mul_slice_scalar(std::uint8_t* dst, const std::uint8_t* src, std::size_t n,
                            std::uint8_t c);
void gf256_addmul_slice_avx2(std::uint8_t* dst, const std::uint8_t* src, std::size_t n,
                             std::uint8_t c);
void gf256_mul_slice_avx2(std::uint8_t* dst, const std::uint8_t* src, std::size_t n,
                          std::uint8_t c);

}  // namespace wavekey::ecc
