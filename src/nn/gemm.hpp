#pragma once

// Register/cache-blocked single-precision GEMM micro-kernels used by the
// im2col-lowered conv layers and the Dense layer (DESIGN.md §8). Three
// layout variants cover every product the layers need without materializing
// transposes:
//
//   gemm_nn: C[M,N] (+)= A[M,K]        * B[K,N]   broadcast/outer-product
//   gemm_nt: C[M,N] (+)= A[M,K]        * B[N,K]^T dot-product (K contiguous)
//   gemm_tn: C[M,N] (+)= A[K,M]^T      * B[K,N]   outer-product, A strided
//
// All matrices are row-major with explicit leading dimensions. Every C
// element is accumulated strictly in ascending-k order with a single
// accumulator, so results are a pure function of the operands — blocking
// changes memory traffic, never the floating-point reduction order. That is
// what lets the optimized layers preserve the §7.2 determinism contract.
//
// Thread-safety: pure functions; callers may run them concurrently on
// disjoint C ranges.

#include <cstddef>

namespace wavekey::nn {

/// C[M,N] = A[M,K] * B[K,N] (+ C when accumulate). Row-major, leading
/// dimensions lda/ldb/ldc in elements.
void gemm_nn(std::size_t m, std::size_t n, std::size_t k, const float* a, std::size_t lda,
             const float* b, std::size_t ldb, float* c, std::size_t ldc, bool accumulate);

/// C[M,N] = A[M,K] * B[N,K]^T (+ C when accumulate): both operands are read
/// K-contiguously (dot products), ideal when the "B" matrix is stored with
/// the contraction axis innermost (Dense weights, grad-weight products).
void gemm_nt(std::size_t m, std::size_t n, std::size_t k, const float* a, std::size_t lda,
             const float* b, std::size_t ldb, float* c, std::size_t ldc, bool accumulate);

/// C[M,N] = A[K,M]^T * B[K,N] (+ C when accumulate): contraction over A's
/// *row* index (A is read column-wise), used for W^T * dY style products.
void gemm_tn(std::size_t m, std::size_t n, std::size_t k, const float* a, std::size_t lda,
             const float* b, std::size_t ldb, float* c, std::size_t ldc, bool accumulate);

}  // namespace wavekey::nn
