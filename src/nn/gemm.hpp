#pragma once

// Register/cache-blocked single-precision GEMM micro-kernels used by the
// im2col-lowered conv layers and the Dense layer (DESIGN.md §8). Three
// layout variants cover every product the layers need without materializing
// transposes:
//
//   gemm_nn: C[M,N] (+)= A[M,K]        * B[K,N]   broadcast/outer-product
//   gemm_nt: C[M,N] (+)= A[M,K]        * B[N,K]^T dot-product (K contiguous)
//   gemm_tn: C[M,N] (+)= A[K,M]^T      * B[K,N]   outer-product, A strided
//
// All matrices are row-major with explicit leading dimensions. Within one
// SIMD tier, every C element's reduction order is a fixed function of the
// shapes alone — blocking changes memory traffic, never the floating-point
// reduction order. That is what lets the optimized layers preserve the §7.2
// determinism contract. Tiers may differ from each other (FMA fuses the
// multiply-add rounding; the dot kernels use wider fixed lane reductions),
// which is why the equivalence tests compare with a relative tolerance.
//
// The public entry points dispatch through runtime::cpu::active_tier()
// (AVX2/FMA microkernels → portable kernels, DESIGN.md §8.5); the
// tier-explicit functions below are exported for differential tests and the
// bench self-check.
//
// Thread-safety: pure functions; callers may run them concurrently on
// disjoint C ranges.

#include <cstddef>

namespace wavekey::nn {

/// C[M,N] = A[M,K] * B[K,N] (+ C when accumulate). Row-major, leading
/// dimensions lda/ldb/ldc in elements.
void gemm_nn(std::size_t m, std::size_t n, std::size_t k, const float* a, std::size_t lda,
             const float* b, std::size_t ldb, float* c, std::size_t ldc, bool accumulate);

/// C[M,N] = A[M,K] * B[N,K]^T (+ C when accumulate): both operands are read
/// K-contiguously (dot products), ideal when the "B" matrix is stored with
/// the contraction axis innermost (Dense weights, grad-weight products).
void gemm_nt(std::size_t m, std::size_t n, std::size_t k, const float* a, std::size_t lda,
             const float* b, std::size_t ldb, float* c, std::size_t ldc, bool accumulate);

/// C[M,N] = A[K,M]^T * B[K,N] (+ C when accumulate): contraction over A's
/// *row* index (A is read column-wise), used for W^T * dY style products.
void gemm_tn(std::size_t m, std::size_t n, std::size_t k, const float* a, std::size_t lda,
             const float* b, std::size_t ldb, float* c, std::size_t ldc, bool accumulate);

// Tier-explicit kernels (differential tests, bench self-check, edge reuse).
// The *_avx2 variants must only be called when runtime::cpu::detected_tier()
// >= kAvx2; on targets built without AVX2 they delegate to the scalar
// kernels.
void gemm_nn_scalar(std::size_t m, std::size_t n, std::size_t k, const float* a,
                    std::size_t lda, const float* b, std::size_t ldb, float* c,
                    std::size_t ldc, bool accumulate);
void gemm_nt_scalar(std::size_t m, std::size_t n, std::size_t k, const float* a,
                    std::size_t lda, const float* b, std::size_t ldb, float* c,
                    std::size_t ldc, bool accumulate);
void gemm_tn_scalar(std::size_t m, std::size_t n, std::size_t k, const float* a,
                    std::size_t lda, const float* b, std::size_t ldb, float* c,
                    std::size_t ldc, bool accumulate);
void gemm_nn_avx2(std::size_t m, std::size_t n, std::size_t k, const float* a,
                  std::size_t lda, const float* b, std::size_t ldb, float* c,
                  std::size_t ldc, bool accumulate);
void gemm_nt_avx2(std::size_t m, std::size_t n, std::size_t k, const float* a,
                  std::size_t lda, const float* b, std::size_t ldb, float* c,
                  std::size_t ldc, bool accumulate);
void gemm_tn_avx2(std::size_t m, std::size_t n, std::size_t k, const float* a,
                  std::size_t lda, const float* b, std::size_t ldb, float* c,
                  std::size_t ldc, bool accumulate);

namespace detail {

// Shared scalar outer-product kernel with A's layout expressed as a
// (row_stride, col_stride) pair: (lda, 1) spells gemm_nn, (1, lda) spells
// gemm_tn. Exported so the AVX2 kernels can reuse it for their edge tiles.
void gemm_outer_scalar(std::size_t m, std::size_t n, std::size_t k, const float* a,
                       std::size_t a_row_stride, std::size_t a_col_stride, const float* b,
                       std::size_t ldb, float* c, std::size_t ldc, bool accumulate);

}  // namespace detail

}  // namespace wavekey::nn
