#include "nn/loss.hpp"

#include <cmath>
#include <stdexcept>

namespace wavekey::nn {

std::pair<float, Tensor> mse_loss(const Tensor& pred, const Tensor& target) {
  if (!pred.same_shape(target)) throw std::invalid_argument("mse_loss: shape mismatch");
  Tensor grad(pred.shape());
  double loss = 0.0;
  const float inv_n = 1.0f / static_cast<float>(pred.size());
  for (std::size_t i = 0; i < pred.size(); ++i) {
    const float d = pred[i] - target[i];
    loss += 0.5 * static_cast<double>(d) * d;
    grad[i] = d * inv_n;
  }
  return {static_cast<float>(loss * inv_n), std::move(grad)};
}

std::pair<float, Tensor> euclidean_loss(const Tensor& a, const Tensor& b) {
  if (!a.same_shape(b) || a.rank() != 2)
    throw std::invalid_argument("euclidean_loss: expected matching [N, F]");
  const std::size_t n = a.dim(0);
  const std::size_t f = a.dim(1);
  Tensor grad(a.shape());
  double loss = 0.0;
  const float inv_batch = 1.0f / static_cast<float>(n);
  for (std::size_t s = 0; s < n; ++s) {
    double d2 = 0.0;
    for (std::size_t j = 0; j < f; ++j) {
      const float d = a.at2(s, j) - b.at2(s, j);
      d2 += static_cast<double>(d) * d;
    }
    const float dist = static_cast<float>(std::sqrt(d2));
    loss += dist;
    const float scale = dist > 1e-8f ? inv_batch / dist : 0.0f;
    for (std::size_t j = 0; j < f; ++j) grad.at2(s, j) = (a.at2(s, j) - b.at2(s, j)) * scale;
  }
  return {static_cast<float>(loss * inv_batch), std::move(grad)};
}

}  // namespace wavekey::nn
