#include "nn/gemm.hpp"

#include <cstring>

#include "runtime/cpu.hpp"

namespace wavekey::nn {
namespace {

// Register-tile sizes for the portable kernel. MR*NR accumulators must fit
// the vector register file of a baseline x86-64 / AArch64 target (16 x
// 128-bit): 4x8 floats = 8 SSE registers of accumulators plus
// broadcast/load temporaries. The inner NR-loop vectorizes without
// reassociation because each C element keeps its own accumulator.
constexpr std::size_t kMr = 4;
constexpr std::size_t kNr = 8;

// Generic (edge) path shared by gemm_nn / gemm_tn: per-element k-ordered
// accumulation with A element selected by a caller-supplied stride pattern.
inline void edge_nn(std::size_t m0, std::size_t m1, std::size_t n0, std::size_t n1,
                    std::size_t k, const float* a, std::size_t a_row_stride,
                    std::size_t a_col_stride, const float* b, std::size_t ldb, float* c,
                    std::size_t ldc, bool accumulate) {
  for (std::size_t i = m0; i < m1; ++i) {
    for (std::size_t j = n0; j < n1; ++j) {
      float acc = accumulate ? c[i * ldc + j] : 0.0f;
      for (std::size_t p = 0; p < k; ++p)
        acc += a[i * a_row_stride + p * a_col_stride] * b[p * ldb + j];
      c[i * ldc + j] = acc;
    }
  }
}

}  // namespace

namespace detail {

// Shared blocked kernel for the two outer-product variants. a_row_stride /
// a_col_stride express A[i,p] = a[i*a_row_stride + p*a_col_stride], which is
// (lda, 1) for gemm_nn and (1, lda) for gemm_tn.
void gemm_outer_scalar(std::size_t m, std::size_t n, std::size_t k, const float* a,
                       std::size_t a_row_stride, std::size_t a_col_stride, const float* b,
                       std::size_t ldb, float* c, std::size_t ldc, bool accumulate) {
  const std::size_t m_main = m - m % kMr;
  const std::size_t n_main = n - n % kNr;

  for (std::size_t i0 = 0; i0 < m_main; i0 += kMr) {
    for (std::size_t j0 = 0; j0 < n_main; j0 += kNr) {
      float acc[kMr][kNr];
      for (std::size_t i = 0; i < kMr; ++i)
        for (std::size_t j = 0; j < kNr; ++j)
          acc[i][j] = accumulate ? c[(i0 + i) * ldc + j0 + j] : 0.0f;
      for (std::size_t p = 0; p < k; ++p) {
        const float* brow = b + p * ldb + j0;
        for (std::size_t i = 0; i < kMr; ++i) {
          const float av = a[(i0 + i) * a_row_stride + p * a_col_stride];
          for (std::size_t j = 0; j < kNr; ++j) acc[i][j] += av * brow[j];
        }
      }
      for (std::size_t i = 0; i < kMr; ++i)
        for (std::size_t j = 0; j < kNr; ++j) c[(i0 + i) * ldc + j0 + j] = acc[i][j];
    }
    // Right edge of this row band.
    edge_nn(i0, i0 + kMr, n_main, n, k, a, a_row_stride, a_col_stride, b, ldb, c, ldc,
            accumulate);
  }
  // Bottom edge (all columns).
  edge_nn(m_main, m, 0, n, k, a, a_row_stride, a_col_stride, b, ldb, c, ldc, accumulate);
}

}  // namespace detail

void gemm_nn_scalar(std::size_t m, std::size_t n, std::size_t k, const float* a,
                    std::size_t lda, const float* b, std::size_t ldb, float* c,
                    std::size_t ldc, bool accumulate) {
  detail::gemm_outer_scalar(m, n, k, a, lda, 1, b, ldb, c, ldc, accumulate);
}

void gemm_tn_scalar(std::size_t m, std::size_t n, std::size_t k, const float* a,
                    std::size_t lda, const float* b, std::size_t ldb, float* c,
                    std::size_t ldc, bool accumulate) {
  detail::gemm_outer_scalar(m, n, k, a, 1, lda, b, ldb, c, ldc, accumulate);
}

namespace {

// One dot product arow·brow of length k using a fixed 4-lane strided
// reduction: lane L sums elements L, L+4, L+8, ... and the lanes fold as
// ((s0+s1)+(s2+s3)) at the end, followed by the tail in index order. A
// single serial chain cannot be vectorized without reassociation; the four
// independent lanes map straight onto one 128-bit SIMD accumulator. The
// order is a fixed function of k alone — deterministic across runs, pool
// sizes and call sites — it just differs from the naive left-to-right sum
// (kernel-equivalence tests compare against the reference with a relative
// tolerance for exactly this reason).
inline float dot_lanes4(const float* arow, const float* brow, std::size_t k) {
  float s0 = 0.0f, s1 = 0.0f, s2 = 0.0f, s3 = 0.0f;
  const std::size_t k_main = k - k % 4;
  for (std::size_t p = 0; p < k_main; p += 4) {
    s0 += arow[p + 0] * brow[p + 0];
    s1 += arow[p + 1] * brow[p + 1];
    s2 += arow[p + 2] * brow[p + 2];
    s3 += arow[p + 3] * brow[p + 3];
  }
  float acc = (s0 + s1) + (s2 + s3);
  for (std::size_t p = k_main; p < k; ++p) acc += arow[p] * brow[p];
  return acc;
}

}  // namespace

void gemm_nt_scalar(std::size_t m, std::size_t n, std::size_t k, const float* a,
                    std::size_t lda, const float* b, std::size_t ldb, float* c,
                    std::size_t ldc, bool accumulate) {
  // Dot-product orientation: both A rows and B rows are contiguous over k,
  // so each C element is one lane-reduced dot product.
  for (std::size_t i = 0; i < m; ++i) {
    const float* arow = a + i * lda;
    for (std::size_t j = 0; j < n; ++j) {
      const float base = accumulate ? c[i * ldc + j] : 0.0f;
      c[i * ldc + j] = base + dot_lanes4(arow, b + j * ldb, k);
    }
  }
}

namespace {

inline bool use_avx2() {
  using runtime::cpu::SimdTier;
  return runtime::cpu::active_tier() >= SimdTier::kAvx2;
}

}  // namespace

void gemm_nn(std::size_t m, std::size_t n, std::size_t k, const float* a, std::size_t lda,
             const float* b, std::size_t ldb, float* c, std::size_t ldc, bool accumulate) {
  if (use_avx2()) {
    gemm_nn_avx2(m, n, k, a, lda, b, ldb, c, ldc, accumulate);
  } else {
    gemm_nn_scalar(m, n, k, a, lda, b, ldb, c, ldc, accumulate);
  }
}

void gemm_tn(std::size_t m, std::size_t n, std::size_t k, const float* a, std::size_t lda,
             const float* b, std::size_t ldb, float* c, std::size_t ldc, bool accumulate) {
  if (use_avx2()) {
    gemm_tn_avx2(m, n, k, a, lda, b, ldb, c, ldc, accumulate);
  } else {
    gemm_tn_scalar(m, n, k, a, lda, b, ldb, c, ldc, accumulate);
  }
}

void gemm_nt(std::size_t m, std::size_t n, std::size_t k, const float* a, std::size_t lda,
             const float* b, std::size_t ldb, float* c, std::size_t ldc, bool accumulate) {
  if (use_avx2()) {
    gemm_nt_avx2(m, n, k, a, lda, b, ldb, c, ldc, accumulate);
  } else {
    gemm_nt_scalar(m, n, k, a, lda, b, ldb, c, ldc, accumulate);
  }
}

}  // namespace wavekey::nn
