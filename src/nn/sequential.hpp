#pragma once

// Sequential container for layer stacks plus model (de)serialization.
// Loading requires a structurally identical model (the caller rebuilds the
// architecture, then streams weights in); each layer validates its own
// hyperparameters against the stream, so an architecture mismatch is a
// loud error rather than silent corruption.
//
// Thread-safety: externally synchronized, like the layers it contains —
// forward/backward mutate per-layer activation caches, so one Sequential
// must be driven by one thread at a time (batch parallelism lives inside
// the layers; see layer.hpp and DESIGN.md §7). Distinct Sequential
// instances are fully independent.

#include <iosfwd>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "nn/layer.hpp"

namespace wavekey::nn {

class Sequential {
 public:
  Sequential() = default;

  // Move-only: layers own mutable training state.
  Sequential(Sequential&&) = default;
  Sequential& operator=(Sequential&&) = default;

  /// Constructs a layer in place and appends it; returns a reference typed
  /// as the concrete layer for later direct access (e.g. pruning surgery).
  template <typename L, typename... Args>
  L& add(Args&&... args) {
    auto layer = std::make_unique<L>(std::forward<Args>(args)...);
    L& ref = *layer;
    layers_.push_back(std::move(layer));
    return ref;
  }

  std::size_t num_layers() const { return layers_.size(); }
  Layer& layer(std::size_t i) { return *layers_.at(i); }

  /// Full forward pass.
  Tensor forward(const Tensor& input, bool training);

  /// Full backward pass; returns dL/d(input).
  Tensor backward(const Tensor& grad_output);

  /// All learnable parameters in layer order.
  std::vector<Param> params();

  /// Number of scalar parameters (for reporting).
  std::size_t num_parameters();

  /// Writes "type-tag + payload" per layer.
  void save(std::ostream& os) const;

  /// Reads weights into this model; throws std::runtime_error if the stream
  /// does not match this architecture.
  void load(std::istream& is);

 private:
  std::vector<std::unique_ptr<Layer>> layers_;
};

}  // namespace wavekey::nn
