#pragma once

// Layer interface of the mini NN framework plus the stateless layers
// (ReLU, Flatten). Explicit forward/backward — no autograd tape — because
// the WaveKey models are small straight-line stacks.
//
// Thread-safety: layers cache activations in forward() and accumulate
// gradients in backward(), so a layer instance is *externally synchronized*:
// never run forward/backward/params on the same instance from two threads.
// Parallelism happens *inside* forward/backward instead — the batched
// layers split the sample dimension across runtime::compute_pool() under
// the deterministic chunking contract of DESIGN.md §7.2.

#include <cstdint>
#include <iosfwd>
#include <memory>
#include <string>
#include <vector>

#include "nn/tensor.hpp"
#include "numeric/rng.hpp"

namespace wavekey::nn {

/// A learnable parameter: the value tensor and its gradient accumulator.
struct Param {
  Tensor* value = nullptr;
  Tensor* grad = nullptr;
};

/// Base class for all layers. Layers own their parameters and the activation
/// cache needed by backward (so forward must precede backward each step).
class Layer {
 public:
  virtual ~Layer() = default;

  /// Forward pass. `training` toggles batch-statistics behaviour.
  virtual Tensor forward(const Tensor& input, bool training) = 0;

  /// Backward pass: given dL/d(output), accumulates parameter gradients and
  /// returns dL/d(input). Must be called after forward on the same batch.
  virtual Tensor backward(const Tensor& grad_output) = 0;

  /// Learnable parameters (empty for stateless layers).
  virtual std::vector<Param> params() { return {}; }

  /// Stable type tag for serialization.
  virtual std::string type_name() const = 0;

  /// Serializes hyperparameters + weights.
  virtual void save(std::ostream& os) const = 0;

  /// Deserializes weights into an already-constructed layer of matching
  /// hyperparameters (construction happens via the registry in serialize.cpp).
  virtual void load(std::istream& is) = 0;
};

/// Rectified linear unit.
class ReLU final : public Layer {
 public:
  Tensor forward(const Tensor& input, bool training) override;
  Tensor backward(const Tensor& grad_output) override;
  std::string type_name() const override { return "relu"; }
  void save(std::ostream& os) const override;
  void load(std::istream& is) override;

 private:
  Tensor mask_;  // 1 where input > 0
};

/// Collapses [N, C, L] to [N, C*L].
class Flatten final : public Layer {
 public:
  Tensor forward(const Tensor& input, bool training) override;
  Tensor backward(const Tensor& grad_output) override;
  std::string type_name() const override { return "flatten"; }
  void save(std::ostream& os) const override;
  void load(std::istream& is) override;

 private:
  Shape input_shape_;
};

/// Reshapes [N, F] to [N, C, L] with F == C*L (entry point into deconv
/// stacks) or back. The batch dimension is preserved.
class Reshape final : public Layer {
 public:
  /// @param per_sample_shape  target shape of one sample (e.g. {C, L})
  explicit Reshape(std::vector<std::size_t> per_sample_shape);

  Tensor forward(const Tensor& input, bool training) override;
  Tensor backward(const Tensor& grad_output) override;
  std::string type_name() const override { return "reshape"; }
  void save(std::ostream& os) const override;
  void load(std::istream& is) override;

 private:
  std::vector<std::size_t> per_sample_shape_;  // fixed at construction
  Shape input_shape_;
};

// --- binary stream helpers shared by the layer implementations ---

void write_u64(std::ostream& os, std::uint64_t v);
std::uint64_t read_u64(std::istream& is);
void write_floats(std::ostream& os, std::span<const float> xs);
void read_floats(std::istream& is, std::span<float> xs);
void write_string(std::ostream& os, const std::string& s);
std::string read_string(std::istream& is);

}  // namespace wavekey::nn
