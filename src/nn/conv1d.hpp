#pragma once

// 1-D convolution and transposed convolution over [N, C, L] tensors — the
// building blocks of IMU-En / RF-En (two conv layers each) and the decoder
// De (two deconvolutional layers), per Fig. 5 of the paper.
//
// Thread-safety: externally synchronized like every Layer (see layer.hpp).
// forward/backward parallelize over the batch internally via
// runtime::compute_pool(), with the deterministic chunk-ordered gradient
// reduction of DESIGN.md §7.2 (pool size <= 1 is bit-identical to serial).

#include "nn/layer.hpp"

namespace wavekey::nn {

/// Cross-correlation style Conv1D with stride and symmetric zero padding.
/// Output length: (L + 2*padding - kernel) / stride + 1.
class Conv1D final : public Layer {
 public:
  Conv1D(std::size_t in_channels, std::size_t out_channels, std::size_t kernel,
         std::size_t stride, std::size_t padding, Rng& rng);

  std::size_t in_channels() const { return in_ch_; }
  std::size_t out_channels() const { return out_ch_; }
  std::size_t kernel() const { return kernel_; }
  std::size_t stride() const { return stride_; }
  std::size_t padding() const { return padding_; }

  /// Output length for a given input length (throws if it would be empty).
  std::size_t output_length(std::size_t input_length) const;

  /// Read-only weight access for the batched inference path
  /// (nn::BatchedInference re-lowers the same parameters channel-major).
  const Tensor& weights() const { return w_; }  // [out_ch, in_ch, kernel]
  const Tensor& bias() const { return b_; }     // [out_ch]

  Tensor forward(const Tensor& input, bool training) override;
  Tensor backward(const Tensor& grad_output) override;
  std::vector<Param> params() override;
  std::string type_name() const override { return "conv1d"; }
  void save(std::ostream& os) const override;
  void load(std::istream& is) override;

 private:
  std::size_t in_ch_, out_ch_, kernel_, stride_, padding_;
  Tensor w_;       // [out_ch, in_ch, kernel]
  Tensor b_;       // [out_ch]
  Tensor w_grad_;
  Tensor b_grad_;
  Tensor input_;   // cached
};

/// Transposed convolution (a.k.a. deconvolution).
/// Output length: (L - 1) * stride + kernel.
class ConvTranspose1D final : public Layer {
 public:
  ConvTranspose1D(std::size_t in_channels, std::size_t out_channels, std::size_t kernel,
                  std::size_t stride, Rng& rng);

  std::size_t output_length(std::size_t input_length) const {
    return (input_length - 1) * stride_ + kernel_;
  }

  Tensor forward(const Tensor& input, bool training) override;
  Tensor backward(const Tensor& grad_output) override;
  std::vector<Param> params() override;
  std::string type_name() const override { return "deconv1d"; }
  void save(std::ostream& os) const override;
  void load(std::istream& is) override;

  /// Removes input channel `channel` (pruning support: when an upstream
  /// latent unit is removed, the corresponding weight slice goes with it).
  void remove_input_channel(std::size_t channel);

 private:
  std::size_t in_ch_, out_ch_, kernel_, stride_;
  Tensor w_;  // [in_ch, out_ch, kernel]
  Tensor b_;  // [out_ch]
  Tensor w_grad_;
  Tensor b_grad_;
  Tensor input_;
};

}  // namespace wavekey::nn
