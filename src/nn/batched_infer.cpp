#include "nn/batched_infer.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <stdexcept>
#include <string>
#include <utility>

#include "nn/batchnorm.hpp"
#include "nn/conv1d.hpp"
#include "nn/conv_lowering.hpp"
#include "nn/dense.hpp"
#include "nn/gemm.hpp"
#include "runtime/cpu.hpp"

namespace wavekey::nn {

namespace detail {

void batched_dense_scalar(std::size_t m, std::size_t k, std::size_t n_pad, const float* w,
                          const float* x, const float* bias, float* y) {
  for (std::size_t mi = 0; mi < m; ++mi) {
    float* yr = y + mi * n_pad;
    const float* wr = w + mi * k;
    for (std::size_t n = 0; n < n_pad; ++n) yr[n] = bias[mi];
    for (std::size_t kk = 0; kk < k; ++kk) {
      const float wv = wr[kk];
      const float* xr = x + kk * n_pad;
      for (std::size_t n = 0; n < n_pad; ++n) yr[n] += wv * xr[n];
    }
  }
}

}  // namespace detail

namespace {

constexpr std::size_t kLanes = 8;  // ymm width the feature-major stage pads to

std::size_t pad_lanes(std::size_t b) { return (b + kLanes - 1) / kLanes * kLanes; }

void batched_dense(std::size_t m, std::size_t k, std::size_t n_pad, const float* w,
                   const float* x, const float* bias, float* y) {
  if (runtime::cpu::active_tier() == runtime::cpu::SimdTier::kAvx2)
    detail::batched_dense_avx2(m, k, n_pad, w, x, bias, y);
  else
    detail::batched_dense_scalar(m, k, n_pad, w, x, bias, y);
}

// lowering::im2col with the strided interior copy routed through the AVX2
// even-lane shuffle for stride-2 convs (every conv in the encoder stacks is
// strided, so the generic path's element-at-a-time gather is ~half the
// batched conv cost). Same tap_range edge/interior split, same output.
void batched_im2col(const float* x, std::size_t in_ch, std::size_t channel_stride,
                    std::size_t lin, std::size_t kernel, std::size_t stride,
                    std::size_t padding, std::size_t lout, float* cols,
                    std::size_t col_stride, bool avx2) {
  for (std::size_t ic = 0; ic < in_ch; ++ic) {
    const float* xc = x + ic * channel_stride;
    for (std::size_t k = 0; k < kernel; ++k) {
      float* row = cols + (ic * kernel + k) * col_stride;
      const std::ptrdiff_t d =
          static_cast<std::ptrdiff_t>(k) - static_cast<std::ptrdiff_t>(padding);
      const lowering::TapRange r = lowering::tap_range(d, lin, stride, lout);
      if (r.t0 > 0) std::memset(row, 0, r.t0 * sizeof(float));
      if (r.t1 < lout) std::memset(row + r.t1, 0, (lout - r.t1) * sizeof(float));
      const float* src = xc + static_cast<std::ptrdiff_t>(r.t0 * stride) + d;
      const std::size_t n = r.t1 - r.t0;
      if (stride == 1) {
        if (n > 0) std::memcpy(row + r.t0, src, n * sizeof(float));
      } else if (stride == 2 && avx2) {
        detail::copy_stride2_avx2(row + r.t0, src, n);
      } else if (stride == 4 && avx2) {
        detail::copy_stride4_avx2(row + r.t0, src, n);
      } else {
        for (std::size_t t = 0; t < n; ++t) row[r.t0 + t] = src[t * stride];
      }
    }
  }
}

}  // namespace

BatchedInference::BatchedInference(Sequential& net, std::size_t in_channels,
                                   std::size_t in_length)
    : net_(net), in_ch_(in_channels), in_len_(in_length) {
  if (in_channels == 0 || in_length == 0)
    throw std::invalid_argument("BatchedInference: empty input shape");

  bool flattened = false;
  std::size_t ch = in_channels, len = in_length, feat = 0;
  for (std::size_t i = 0; i < net.num_layers(); ++i) {
    Layer& l = net.layer(i);
    Op op{};
    if (auto* conv = dynamic_cast<Conv1D*>(&l)) {
      if (flattened)
        throw std::invalid_argument("BatchedInference: Conv1D after Flatten unsupported");
      if (conv->in_channels() != ch)
        throw std::invalid_argument("BatchedInference: Conv1D channel mismatch at layer " +
                                    std::to_string(i));
      op.kind = Op::Kind::kConv;
      op.conv = conv;
      op.in_ch = ch;
      op.out_ch = conv->out_channels();
      op.lin = len;
      op.lout = conv->output_length(len);
      ch = op.out_ch;
      len = op.lout;
    } else if (dynamic_cast<ReLU*>(&l) != nullptr) {
      op.kind = Op::Kind::kRelu;
    } else if (dynamic_cast<Flatten*>(&l) != nullptr) {
      if (flattened)
        throw std::invalid_argument("BatchedInference: multiple Flatten layers unsupported");
      flattened = true;
      feat = ch * len;
      op.kind = Op::Kind::kFlatten;
    } else if (auto* dense = dynamic_cast<Dense*>(&l)) {
      if (!flattened)
        throw std::invalid_argument("BatchedInference: Dense before Flatten unsupported");
      if (dense->in_features() != feat)
        throw std::invalid_argument("BatchedInference: Dense feature mismatch at layer " +
                                    std::to_string(i));
      op.kind = Op::Kind::kDense;
      op.dense = dense;
      op.in_f = feat;
      op.out_f = dense->out_features();
      feat = op.out_f;
    } else if (auto* bn = dynamic_cast<BatchNorm1D*>(&l)) {
      if (!flattened || bn->features() != feat)
        throw std::invalid_argument("BatchedInference: BatchNorm1D shape mismatch at layer " +
                                    std::to_string(i));
      if (bn->affine())
        throw std::invalid_argument("BatchedInference: affine BatchNorm1D unsupported");
      op.kind = Op::Kind::kBatchNorm;
      op.bn = bn;
    } else {
      throw std::invalid_argument("BatchedInference: unsupported layer type '" + l.type_name() +
                                  "' at layer " + std::to_string(i));
    }
    ops_.push_back(op);
  }
  if (!flattened)
    throw std::invalid_argument("BatchedInference: stack has no Flatten layer");
  out_features_ = feat;
}

Tensor BatchedInference::forward(std::span<const Tensor* const> inputs) {
  const std::size_t b = inputs.size();
  if (b == 0) throw std::invalid_argument("BatchedInference::forward: empty batch");
  for (const Tensor* t : inputs)
    if (t == nullptr || t->size() != in_ch_ * in_len_)
      throw std::invalid_argument("BatchedInference::forward: input shape mismatch");

  if (b == 1) {
    // Batch of 1 is the determinism anchor: route through the exact serial
    // path (same kernels, same reduction orders) so the result is
    // bit-identical to EncoderPair::features_of.
    const Tensor out = net_.forward(inputs[0]->reshaped({1, in_ch_, in_len_}), false);
    return out.reshaped({1, out_features_});
  }

  const std::size_t n_pad = pad_lanes(b);
  const bool avx2 = runtime::cpu::active_tier() == runtime::cpu::SimdTier::kAvx2;
  std::size_t ch = in_ch_, len = in_len_;

  // Pack channel-major: x[c][s*len + t] = sample s, channel c, position t.
  Tensor x = Tensor::uninitialized({ch, b * len});
  for (std::size_t c = 0; c < ch; ++c) {
    float* row = x.raw() + c * b * len;
    for (std::size_t s = 0; s < b; ++s)
      std::memcpy(row + s * len, inputs[s]->raw() + c * len, len * sizeof(float));
  }

  for (const Op& op : ops_) {
    switch (op.kind) {
      case Op::Kind::kConv: {
        // All B samples' im2col blocks share one [in_ch*k, B*lout] operand,
        // so the whole batch is a single GEMM with full-width column groups.
        const std::size_t k = op.conv->kernel();
        Tensor cols = Tensor::uninitialized({op.in_ch * k, b * op.lout});
        for (std::size_t s = 0; s < b; ++s)
          batched_im2col(x.raw() + s * op.lin, op.in_ch, /*channel_stride=*/b * op.lin,
                         op.lin, k, op.conv->stride(), op.conv->padding(), op.lout,
                         cols.raw() + s * op.lout, /*col_stride=*/b * op.lout, avx2);
        Tensor y = Tensor::uninitialized({op.out_ch, b * op.lout});
        const float* bias = op.conv->bias().raw();
        for (std::size_t oc = 0; oc < op.out_ch; ++oc)
          std::fill_n(y.raw() + oc * b * op.lout, b * op.lout, bias[oc]);
        gemm_nn(op.out_ch, b * op.lout, op.in_ch * k, op.conv->weights().raw(), op.in_ch * k,
                cols.raw(), b * op.lout, y.raw(), b * op.lout, /*accumulate=*/true);
        x = std::move(y);
        ch = op.out_ch;
        len = op.lout;
        break;
      }
      case Op::Kind::kRelu: {
        // Inference needs no mask: clamp in place, zero extra memory
        // traffic. Unconditional store keeps the loop auto-vectorizable.
        float* d = x.raw();
        const std::size_t n = x.size();
        for (std::size_t i = 0; i < n; ++i) d[i] = d[i] < 0.0f ? 0.0f : d[i];
        break;
      }
      case Op::Kind::kFlatten: {
        // channel-major [ch, B*len] -> feature-major [ch*len, n_pad]; pad
        // columns are zero so the dense kernels can run full 8-wide lanes.
        Tensor xf = Tensor::uninitialized({ch * len, n_pad});
        for (std::size_t c = 0; c < ch; ++c) {
          const float* src = x.raw() + c * b * len;
          float* dst = xf.raw() + c * len * n_pad;
          if (avx2) {
            detail::flatten_transpose_avx2(src, b, len, n_pad, dst);
          } else {
            for (std::size_t t = 0; t < len; ++t) {
              for (std::size_t s = 0; s < b; ++s) dst[t * n_pad + s] = src[s * len + t];
              for (std::size_t s = b; s < n_pad; ++s) dst[t * n_pad + s] = 0.0f;
            }
          }
        }
        x = std::move(xf);
        break;
      }
      case Op::Kind::kDense: {
        Tensor y = Tensor::uninitialized({op.out_f, n_pad});
        batched_dense(op.out_f, op.in_f, n_pad, op.dense->weights().raw(), x.raw(),
                      op.dense->bias().raw(), y.raw());
        x = std::move(y);
        break;
      }
      case Op::Kind::kBatchNorm: {
        // Eval-mode running statistics, same (x - m) / sqrt(v + eps) form as
        // BatchNorm1D::forward, applied row-wise in the feature-major layout.
        const std::span<const float> mean = op.bn->running_mean();
        const std::span<const float> var = op.bn->running_var();
        const float eps = op.bn->eps();
        for (std::size_t f = 0; f < op.bn->features(); ++f) {
          const float m = mean[f];
          const float stdv = std::sqrt(var[f] + eps);
          float* row = x.raw() + f * n_pad;
          for (std::size_t s = 0; s < n_pad; ++s) row[s] = (row[s] - m) / stdv;
        }
        break;
      }
    }
  }

  // x is feature-major [out_features, n_pad]; emit row-per-sample.
  Tensor out = Tensor::uninitialized({b, out_features_});
  for (std::size_t s = 0; s < b; ++s) {
    float* row = out.raw() + s * out_features_;
    for (std::size_t f = 0; f < out_features_; ++f) row[f] = x.raw()[f * n_pad + s];
  }
  return out;
}

}  // namespace wavekey::nn
