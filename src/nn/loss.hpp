#pragma once

// Loss functions. The WaveKey objective (Eq. (3) of the paper) is assembled
// in core/encoders.cpp from these primitives:
//   L = sum_i ||f_M,i - f_R,i||_2 + lambda * ||De(f_M,i) - R_i^Mag||_2
//
// Thread-safety: pure functions of their arguments — no shared state,
// reentrant, safe to call concurrently with distinct outputs.

#include <utility>

#include "nn/tensor.hpp"

namespace wavekey::nn {

/// Mean squared error over all elements; returns {loss, dL/d(pred)}.
std::pair<float, Tensor> mse_loss(const Tensor& pred, const Tensor& target);

/// Batched Euclidean-distance loss: mean over the batch of ||a_n - b_n||_2.
/// Returns {loss, dL/da}; dL/db is its negation.
std::pair<float, Tensor> euclidean_loss(const Tensor& a, const Tensor& b);

}  // namespace wavekey::nn
