#pragma once

// Minimal dense tensor for the from-scratch neural-network framework that
// replaces the paper's PyTorch dependency. Row-major float storage with an
// explicit shape; just enough structure for the WaveKey encoder/decoder
// stacks (batched 1-D convolutions and dense layers).
//
// Storage comes from a per-thread recycling arena (tensor.cpp): destroyed
// tensors return their buffer to the calling thread's free list and new
// tensors are served from it, so steady-state inference/training performs
// zero heap allocations per step once the working set has been seen
// (asserted by ZeroAllocation tests via tensor_arena_stats()). Shapes are
// stored inline (rank <= 4, no heap), so constructing a Tensor never
// allocates anything *but* its float buffer.
//
// Thread-safety: Tensor is a plain value type with exclusive storage (no
// copy-on-write, no shared buffers). Concurrent const access to one
// instance is safe; any mutation requires external synchronization.
// Concurrent writes to *disjoint element ranges* of one tensor are safe —
// the property the parallel per-sample loops in the layers rely on. The
// arena is thread-local, so allocation needs no locks; a buffer released on
// a different thread than it was acquired on simply migrates free lists.

#include <algorithm>
#include <array>
#include <cstddef>
#include <cstdint>
#include <initializer_list>
#include <span>
#include <stdexcept>
#include <vector>

namespace wavekey::nn {

namespace detail {
/// Acquires a float buffer of at least `n` elements from the calling
/// thread's arena (contents are garbage). Returns the usable capacity in
/// `capacity_out` so release can re-pool the full block.
float* arena_acquire(std::size_t n, std::size_t& capacity_out);
/// Returns a buffer to the calling thread's arena (or frees it when the
/// pool is full or already torn down).
void arena_release(float* p, std::size_t capacity) noexcept;
}  // namespace detail

/// Per-thread tensor-arena counters (monotonic). `heap_allocations` counts
/// buffers that had to come from operator new[]; `pool_reuses` counts
/// buffers served from the recycle pool. A steady-state zero-allocation
/// phase is one where heap_allocations does not advance.
struct TensorArenaStats {
  std::uint64_t heap_allocations = 0;
  std::uint64_t pool_reuses = 0;
  std::uint64_t heap_bytes = 0;  ///< cumulative bytes from the heap
};

/// Snapshot of the calling thread's arena counters.
TensorArenaStats tensor_arena_stats();

/// Frees every pooled buffer of the calling thread (memory pressure valve;
/// counters are unaffected).
void tensor_arena_trim();

/// Inline tensor shape: up to 4 dimensions, no heap. Comparable against
/// std::vector<std::size_t> so call sites and tests keep vector literals.
class Shape {
 public:
  static constexpr std::size_t kMaxRank = 4;

  constexpr Shape() = default;

  Shape(std::initializer_list<std::size_t> dims) {
    if (dims.size() > kMaxRank) throw std::invalid_argument("Shape: rank > 4 unsupported");
    for (std::size_t d : dims) dims_[rank_++] = d;
  }

  /// Implicit on purpose: legacy call sites build std::vector shapes.
  Shape(const std::vector<std::size_t>& dims) {  // NOLINT(google-explicit-constructor)
    if (dims.size() > kMaxRank) throw std::invalid_argument("Shape: rank > 4 unsupported");
    for (std::size_t d : dims) dims_[rank_++] = d;
  }

  std::size_t size() const { return rank_; }
  bool empty() const { return rank_ == 0; }
  std::size_t operator[](std::size_t i) const { return dims_[i]; }
  std::size_t at(std::size_t i) const {
    if (i >= rank_) throw std::out_of_range("Shape::at");
    return dims_[i];
  }
  void push_back(std::size_t d) {
    if (rank_ >= kMaxRank) throw std::invalid_argument("Shape: rank > 4 unsupported");
    dims_[rank_++] = d;
  }

  const std::size_t* begin() const { return dims_.data(); }
  const std::size_t* end() const { return dims_.data() + rank_; }

  /// Product of the dimensions (1 for rank 0, matching the old vector code).
  std::size_t count() const {
    std::size_t n = 1;
    for (std::size_t i = 0; i < rank_; ++i) n *= dims_[i];
    return n;
  }

  std::vector<std::size_t> to_vector() const { return {begin(), end()}; }

  friend bool operator==(const Shape& a, const Shape& b) {
    return a.rank_ == b.rank_ && std::equal(a.begin(), a.end(), b.begin());
  }
  friend bool operator==(const Shape& a, const std::vector<std::size_t>& b) {
    return a.rank_ == b.size() && std::equal(a.begin(), a.end(), b.begin());
  }
  friend bool operator==(const std::vector<std::size_t>& a, const Shape& b) { return b == a; }

 private:
  std::array<std::size_t, kMaxRank> dims_{};
  std::size_t rank_ = 0;
};

/// Dense row-major float tensor. Shapes used in practice:
///   [N, C, L]  batched multi-channel series (conv layers)
///   [N, F]     batched feature vectors (dense / batch-norm layers)
class Tensor {
 public:
  Tensor() = default;

  /// Zero-initialized tensor of the given shape.
  explicit Tensor(const Shape& shape) { resize(shape); }

  Tensor(std::initializer_list<std::size_t> shape) : Tensor(Shape(shape)) {}

  explicit Tensor(const std::vector<std::size_t>& shape) : Tensor(Shape(shape)) {}

  /// Tensor of the given shape with *indeterminate* contents — for outputs
  /// that are fully overwritten (GEMM destinations, bias-initialized
  /// accumulators). Never read before writing.
  static Tensor uninitialized(const Shape& shape) {
    Tensor t;
    t.resize_uninitialized(shape);
    return t;
  }

  ~Tensor() {
    if (data_ != nullptr) detail::arena_release(data_, capacity_);
  }

  Tensor(const Tensor& o) : shape_(o.shape_), size_(o.size_) {
    if (size_ > 0) {
      data_ = detail::arena_acquire(size_, capacity_);
      std::copy(o.data_, o.data_ + size_, data_);
    }
  }

  Tensor& operator=(const Tensor& o) {
    if (this == &o) return *this;
    reserve_discard(o.size_);
    shape_ = o.shape_;
    size_ = o.size_;
    if (size_ > 0) std::copy(o.data_, o.data_ + size_, data_);
    return *this;
  }

  Tensor(Tensor&& o) noexcept
      : shape_(o.shape_), data_(o.data_), size_(o.size_), capacity_(o.capacity_) {
    o.data_ = nullptr;
    o.size_ = o.capacity_ = 0;
    o.shape_ = Shape();
  }

  Tensor& operator=(Tensor&& o) noexcept {
    if (this == &o) return *this;
    if (data_ != nullptr) detail::arena_release(data_, capacity_);
    shape_ = o.shape_;
    data_ = o.data_;
    size_ = o.size_;
    capacity_ = o.capacity_;
    o.data_ = nullptr;
    o.size_ = o.capacity_ = 0;
    o.shape_ = Shape();
    return *this;
  }

  /// Reshapes in place to a zero-filled tensor, reusing the existing buffer
  /// when its capacity suffices.
  void resize(const Shape& shape) {
    resize_uninitialized(shape);
    std::fill(data_, data_ + size_, 0.0f);
  }

  /// Reshapes in place without touching the contents (garbage when the call
  /// grows the tensor or the buffer is fresh). Reuses capacity.
  void resize_uninitialized(const Shape& shape) {
    const std::size_t n = shape.count();
    reserve_discard(n);
    shape_ = shape;
    size_ = n;
  }

  static std::size_t count(const Shape& shape) { return shape.count(); }

  const Shape& shape() const { return shape_; }
  std::size_t rank() const { return shape_.size(); }
  std::size_t dim(std::size_t i) const { return shape_.at(i); }
  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  std::span<float> data() { return {data_, size_}; }
  std::span<const float> data() const { return {data_, size_}; }
  float* raw() { return data_; }
  const float* raw() const { return data_; }

  float& operator[](std::size_t i) { return data_[i]; }
  float operator[](std::size_t i) const { return data_[i]; }

  /// 2-D accessor for [N, F] tensors.
  float& at2(std::size_t n, std::size_t f) { return data_[n * shape_[1] + f]; }
  float at2(std::size_t n, std::size_t f) const { return data_[n * shape_[1] + f]; }

  /// 3-D accessor for [N, C, L] tensors.
  float& at3(std::size_t n, std::size_t c, std::size_t l) {
    return data_[(n * shape_[1] + c) * shape_[2] + l];
  }
  float at3(std::size_t n, std::size_t c, std::size_t l) const {
    return data_[(n * shape_[1] + c) * shape_[2] + l];
  }

  /// Returns a tensor with the same data reinterpreted under a new shape of
  /// equal element count. Throws std::invalid_argument otherwise.
  Tensor reshaped(const Shape& new_shape) const {
    if (new_shape.count() != size_) throw std::invalid_argument("Tensor::reshaped: size mismatch");
    Tensor t = *this;
    t.shape_ = new_shape;
    return t;
  }
  Tensor reshaped(std::initializer_list<std::size_t> new_shape) const {
    return reshaped(Shape(new_shape));
  }

  void fill(float v) { std::fill(data_, data_ + size_, v); }

  bool same_shape(const Tensor& o) const { return shape_ == o.shape_; }

 private:
  /// Ensures capacity for n elements, discarding current contents.
  void reserve_discard(std::size_t n) {
    if (capacity_ >= n) return;
    if (data_ != nullptr) detail::arena_release(data_, capacity_);
    data_ = nullptr;
    capacity_ = 0;
    if (n > 0) data_ = detail::arena_acquire(n, capacity_);
  }

  Shape shape_;
  float* data_ = nullptr;
  std::size_t size_ = 0;
  std::size_t capacity_ = 0;
};

}  // namespace wavekey::nn
