#pragma once

// Minimal dense tensor for the from-scratch neural-network framework that
// replaces the paper's PyTorch dependency. Row-major float storage with an
// explicit shape; just enough structure for the WaveKey encoder/decoder
// stacks (batched 1-D convolutions and dense layers).
//
// Thread-safety: Tensor is a plain value type with exclusive storage (no
// copy-on-write, no shared buffers). Concurrent const access to one
// instance is safe; any mutation requires external synchronization.
// Concurrent writes to *disjoint element ranges* of one tensor are safe —
// the property the parallel per-sample loops in the layers rely on.

#include <cstddef>
#include <initializer_list>
#include <numeric>
#include <span>
#include <stdexcept>
#include <vector>

namespace wavekey::nn {

/// Dense row-major float tensor. Shapes used in practice:
///   [N, C, L]  batched multi-channel series (conv layers)
///   [N, F]     batched feature vectors (dense / batch-norm layers)
class Tensor {
 public:
  Tensor() = default;

  /// Zero-initialized tensor of the given shape.
  explicit Tensor(std::vector<std::size_t> shape)
      : shape_(std::move(shape)), data_(count(shape_), 0.0f) {}

  Tensor(std::initializer_list<std::size_t> shape)
      : Tensor(std::vector<std::size_t>(shape)) {}

  static std::size_t count(const std::vector<std::size_t>& shape) {
    return std::accumulate(shape.begin(), shape.end(), std::size_t{1}, std::multiplies<>());
  }

  const std::vector<std::size_t>& shape() const { return shape_; }
  std::size_t rank() const { return shape_.size(); }
  std::size_t dim(std::size_t i) const { return shape_.at(i); }
  std::size_t size() const { return data_.size(); }
  bool empty() const { return data_.empty(); }

  std::span<float> data() { return data_; }
  std::span<const float> data() const { return data_; }
  float* raw() { return data_.data(); }
  const float* raw() const { return data_.data(); }

  float& operator[](std::size_t i) { return data_[i]; }
  float operator[](std::size_t i) const { return data_[i]; }

  /// 2-D accessor for [N, F] tensors.
  float& at2(std::size_t n, std::size_t f) { return data_[n * shape_[1] + f]; }
  float at2(std::size_t n, std::size_t f) const { return data_[n * shape_[1] + f]; }

  /// 3-D accessor for [N, C, L] tensors.
  float& at3(std::size_t n, std::size_t c, std::size_t l) {
    return data_[(n * shape_[1] + c) * shape_[2] + l];
  }
  float at3(std::size_t n, std::size_t c, std::size_t l) const {
    return data_[(n * shape_[1] + c) * shape_[2] + l];
  }

  /// Returns a tensor with the same data reinterpreted under a new shape of
  /// equal element count. Throws std::invalid_argument otherwise.
  Tensor reshaped(std::vector<std::size_t> new_shape) const {
    if (count(new_shape) != size()) throw std::invalid_argument("Tensor::reshaped: size mismatch");
    Tensor t = *this;
    t.shape_ = std::move(new_shape);
    return t;
  }

  void fill(float v) { std::fill(data_.begin(), data_.end(), v); }

  bool same_shape(const Tensor& o) const { return shape_ == o.shape_; }

 private:
  std::vector<std::size_t> shape_;
  std::vector<float> data_;
};

}  // namespace wavekey::nn
