#include "nn/conv1d.hpp"

#include <cmath>
#include <istream>
#include <ostream>
#include <stdexcept>

#include "runtime/thread_pool.hpp"

namespace wavekey::nn {
namespace {

float init_scale(std::size_t fan_in, std::size_t fan_out) {
  return static_cast<float>(std::sqrt(2.0 / static_cast<double>(fan_in + fan_out)));
}

}  // namespace

Conv1D::Conv1D(std::size_t in_channels, std::size_t out_channels, std::size_t kernel,
               std::size_t stride, std::size_t padding, Rng& rng)
    : in_ch_(in_channels),
      out_ch_(out_channels),
      kernel_(kernel),
      stride_(stride),
      padding_(padding),
      w_({out_ch_, in_ch_, kernel_}),
      b_({out_ch_}),
      w_grad_({out_ch_, in_ch_, kernel_}),
      b_grad_({out_ch_}) {
  if (kernel_ == 0 || stride_ == 0) throw std::invalid_argument("Conv1D: zero kernel/stride");
  const float s = init_scale(in_ch_ * kernel_, out_ch_ * kernel_);
  for (std::size_t i = 0; i < w_.size(); ++i) w_[i] = static_cast<float>(rng.normal(0.0, s));
}

std::size_t Conv1D::output_length(std::size_t input_length) const {
  const std::size_t padded = input_length + 2 * padding_;
  if (padded < kernel_) throw std::invalid_argument("Conv1D: input shorter than kernel");
  return (padded - kernel_) / stride_ + 1;
}

Tensor Conv1D::forward(const Tensor& input, bool /*training*/) {
  if (input.rank() != 3 || input.dim(1) != in_ch_)
    throw std::invalid_argument("Conv1D::forward: expected [N, in_ch, L]");
  input_ = input;
  const std::size_t n = input.dim(0);
  const std::size_t lin = input.dim(2);
  const std::size_t lout = output_length(lin);

  Tensor out({n, out_ch_, lout});
  // Per-sample data parallelism: samples write disjoint output planes, so
  // the result is identical at any pool size.
  runtime::parallel_for(runtime::compute_pool(), n, [&](std::size_t s) {
    for (std::size_t oc = 0; oc < out_ch_; ++oc) {
      for (std::size_t t = 0; t < lout; ++t) {
        float acc = b_[oc];
        const std::ptrdiff_t start =
            static_cast<std::ptrdiff_t>(t * stride_) - static_cast<std::ptrdiff_t>(padding_);
        for (std::size_t ic = 0; ic < in_ch_; ++ic) {
          const float* x = input.raw() + (s * in_ch_ + ic) * lin;
          const float* wk = w_.raw() + (oc * in_ch_ + ic) * kernel_;
          for (std::size_t k = 0; k < kernel_; ++k) {
            const std::ptrdiff_t idx = start + static_cast<std::ptrdiff_t>(k);
            if (idx >= 0 && idx < static_cast<std::ptrdiff_t>(lin))
              acc += wk[k] * x[idx];
          }
        }
        out.at3(s, oc, t) = acc;
      }
    }
  });
  return out;
}

Tensor Conv1D::backward(const Tensor& grad_output) {
  const std::size_t n = input_.dim(0);
  const std::size_t lin = input_.dim(2);
  const std::size_t lout = output_length(lin);
  if (grad_output.rank() != 3 || grad_output.dim(0) != n || grad_output.dim(1) != out_ch_ ||
      grad_output.dim(2) != lout)
    throw std::logic_error("Conv1D::backward: shape mismatch");

  Tensor grad_in({n, in_ch_, lin});
  // Chunked parameter-gradient reduction, folded in chunk order (see
  // Dense::backward); the single-chunk path is bit-identical to serial.
  const std::size_t chunks = runtime::parallel_lanes(runtime::compute_pool(), n);
  std::vector<Tensor> w_partial, b_partial;
  if (chunks > 1) {
    w_partial.assign(chunks, Tensor(w_grad_.shape()));
    b_partial.assign(chunks, Tensor(b_grad_.shape()));
  }
  runtime::parallel_for_chunks(
      runtime::compute_pool(), n, [&](std::size_t chunk, std::size_t s0, std::size_t s1) {
        Tensor& wg = chunks > 1 ? w_partial[chunk] : w_grad_;
        Tensor& bg = chunks > 1 ? b_partial[chunk] : b_grad_;
        for (std::size_t s = s0; s < s1; ++s) {
          for (std::size_t oc = 0; oc < out_ch_; ++oc) {
            for (std::size_t t = 0; t < lout; ++t) {
              const float g = grad_output.at3(s, oc, t);
              if (g == 0.0f) continue;
              bg[oc] += g;
              const std::ptrdiff_t start =
                  static_cast<std::ptrdiff_t>(t * stride_) - static_cast<std::ptrdiff_t>(padding_);
              for (std::size_t ic = 0; ic < in_ch_; ++ic) {
                const float* x = input_.raw() + (s * in_ch_ + ic) * lin;
                float* gx = grad_in.raw() + (s * in_ch_ + ic) * lin;
                float* gw = wg.raw() + (oc * in_ch_ + ic) * kernel_;
                const float* wk = w_.raw() + (oc * in_ch_ + ic) * kernel_;
                for (std::size_t k = 0; k < kernel_; ++k) {
                  const std::ptrdiff_t idx = start + static_cast<std::ptrdiff_t>(k);
                  if (idx >= 0 && idx < static_cast<std::ptrdiff_t>(lin)) {
                    gw[k] += g * x[idx];
                    gx[idx] += g * wk[k];
                  }
                }
              }
            }
          }
        }
      });
  if (chunks > 1) {
    for (std::size_t c = 0; c < chunks; ++c) {
      for (std::size_t i = 0; i < w_grad_.size(); ++i) w_grad_[i] += w_partial[c][i];
      for (std::size_t i = 0; i < b_grad_.size(); ++i) b_grad_[i] += b_partial[c][i];
    }
  }
  return grad_in;
}

std::vector<Param> Conv1D::params() {
  return {{&w_, &w_grad_}, {&b_, &b_grad_}};
}

void Conv1D::save(std::ostream& os) const {
  write_u64(os, in_ch_);
  write_u64(os, out_ch_);
  write_u64(os, kernel_);
  write_u64(os, stride_);
  write_u64(os, padding_);
  write_floats(os, w_.data());
  write_floats(os, b_.data());
}

void Conv1D::load(std::istream& is) {
  if (read_u64(is) != in_ch_ || read_u64(is) != out_ch_ || read_u64(is) != kernel_ ||
      read_u64(is) != stride_ || read_u64(is) != padding_)
    throw std::runtime_error("Conv1D::load: hyperparameter mismatch");
  read_floats(is, w_.data());
  read_floats(is, b_.data());
}

ConvTranspose1D::ConvTranspose1D(std::size_t in_channels, std::size_t out_channels,
                                 std::size_t kernel, std::size_t stride, Rng& rng)
    : in_ch_(in_channels),
      out_ch_(out_channels),
      kernel_(kernel),
      stride_(stride),
      w_({in_ch_, out_ch_, kernel_}),
      b_({out_ch_}),
      w_grad_({in_ch_, out_ch_, kernel_}),
      b_grad_({out_ch_}) {
  if (kernel_ == 0 || stride_ == 0)
    throw std::invalid_argument("ConvTranspose1D: zero kernel/stride");
  const float s = init_scale(in_ch_ * kernel_, out_ch_ * kernel_);
  for (std::size_t i = 0; i < w_.size(); ++i) w_[i] = static_cast<float>(rng.normal(0.0, s));
}

Tensor ConvTranspose1D::forward(const Tensor& input, bool /*training*/) {
  if (input.rank() != 3 || input.dim(1) != in_ch_)
    throw std::invalid_argument("ConvTranspose1D::forward: expected [N, in_ch, L]");
  input_ = input;
  const std::size_t n = input.dim(0);
  const std::size_t lin = input.dim(2);
  const std::size_t lout = output_length(lin);

  Tensor out({n, out_ch_, lout});
  // Per-sample data parallelism (disjoint output planes, see Conv1D).
  runtime::parallel_for(runtime::compute_pool(), n, [&](std::size_t s) {
    for (std::size_t oc = 0; oc < out_ch_; ++oc)
      for (std::size_t t = 0; t < lout; ++t) out.at3(s, oc, t) = b_[oc];
    for (std::size_t ic = 0; ic < in_ch_; ++ic) {
      const float* x = input.raw() + (s * in_ch_ + ic) * lin;
      for (std::size_t t = 0; t < lin; ++t) {
        const float xv = x[t];
        if (xv == 0.0f) continue;
        for (std::size_t oc = 0; oc < out_ch_; ++oc) {
          float* y = out.raw() + (s * out_ch_ + oc) * lout;
          const float* wk = w_.raw() + (ic * out_ch_ + oc) * kernel_;
          for (std::size_t k = 0; k < kernel_; ++k) y[t * stride_ + k] += xv * wk[k];
        }
      }
    }
  });
  return out;
}

Tensor ConvTranspose1D::backward(const Tensor& grad_output) {
  const std::size_t n = input_.dim(0);
  const std::size_t lin = input_.dim(2);
  const std::size_t lout = output_length(lin);
  if (grad_output.rank() != 3 || grad_output.dim(0) != n || grad_output.dim(1) != out_ch_ ||
      grad_output.dim(2) != lout)
    throw std::logic_error("ConvTranspose1D::backward: shape mismatch");

  Tensor grad_in({n, in_ch_, lin});
  // Chunked parameter-gradient reduction, folded in chunk order (see
  // Dense::backward); the single-chunk path is bit-identical to serial.
  const std::size_t chunks = runtime::parallel_lanes(runtime::compute_pool(), n);
  std::vector<Tensor> w_partial, b_partial;
  if (chunks > 1) {
    w_partial.assign(chunks, Tensor(w_grad_.shape()));
    b_partial.assign(chunks, Tensor(b_grad_.shape()));
  }
  runtime::parallel_for_chunks(
      runtime::compute_pool(), n, [&](std::size_t chunk, std::size_t s0, std::size_t s1) {
        Tensor& wg = chunks > 1 ? w_partial[chunk] : w_grad_;
        Tensor& bg = chunks > 1 ? b_partial[chunk] : b_grad_;
        for (std::size_t s = s0; s < s1; ++s) {
          // Bias gradient: sum over positions.
          for (std::size_t oc = 0; oc < out_ch_; ++oc) {
            const float* gy = grad_output.raw() + (s * out_ch_ + oc) * lout;
            float acc = 0.0f;
            for (std::size_t t = 0; t < lout; ++t) acc += gy[t];
            bg[oc] += acc;
          }
          for (std::size_t ic = 0; ic < in_ch_; ++ic) {
            const float* x = input_.raw() + (s * in_ch_ + ic) * lin;
            float* gx = grad_in.raw() + (s * in_ch_ + ic) * lin;
            for (std::size_t t = 0; t < lin; ++t) {
              for (std::size_t oc = 0; oc < out_ch_; ++oc) {
                const float* gy = grad_output.raw() + (s * out_ch_ + oc) * lout;
                const float* wk = w_.raw() + (ic * out_ch_ + oc) * kernel_;
                float* gw = wg.raw() + (ic * out_ch_ + oc) * kernel_;
                float acc = 0.0f;
                for (std::size_t k = 0; k < kernel_; ++k) {
                  acc += gy[t * stride_ + k] * wk[k];
                  gw[k] += gy[t * stride_ + k] * x[t];
                }
                gx[t] += acc;
              }
            }
          }
        }
      });
  if (chunks > 1) {
    for (std::size_t c = 0; c < chunks; ++c) {
      for (std::size_t i = 0; i < w_grad_.size(); ++i) w_grad_[i] += w_partial[c][i];
      for (std::size_t i = 0; i < b_grad_.size(); ++i) b_grad_[i] += b_partial[c][i];
    }
  }
  return grad_in;
}

std::vector<Param> ConvTranspose1D::params() {
  return {{&w_, &w_grad_}, {&b_, &b_grad_}};
}

void ConvTranspose1D::save(std::ostream& os) const {
  write_u64(os, in_ch_);
  write_u64(os, out_ch_);
  write_u64(os, kernel_);
  write_u64(os, stride_);
  write_floats(os, w_.data());
  write_floats(os, b_.data());
}

void ConvTranspose1D::remove_input_channel(std::size_t channel) {
  if (channel >= in_ch_) throw std::out_of_range("ConvTranspose1D::remove_input_channel");
  Tensor nw({in_ch_ - 1, out_ch_, kernel_});
  std::size_t dst = 0;
  for (std::size_t ic = 0; ic < in_ch_; ++ic) {
    if (ic == channel) continue;
    for (std::size_t j = 0; j < out_ch_ * kernel_; ++j)
      nw[dst * out_ch_ * kernel_ + j] = w_[ic * out_ch_ * kernel_ + j];
    ++dst;
  }
  --in_ch_;
  w_ = std::move(nw);
  w_grad_ = Tensor({in_ch_, out_ch_, kernel_});
}

void ConvTranspose1D::load(std::istream& is) {
  if (read_u64(is) != in_ch_ || read_u64(is) != out_ch_ || read_u64(is) != kernel_ ||
      read_u64(is) != stride_)
    throw std::runtime_error("ConvTranspose1D::load: hyperparameter mismatch");
  read_floats(is, w_.data());
  read_floats(is, b_.data());
}

}  // namespace wavekey::nn
