#include "nn/conv1d.hpp"

#include <cmath>
#include <cstring>
#include <istream>
#include <ostream>
#include <stdexcept>

#include "nn/conv_lowering.hpp"
#include "nn/gemm.hpp"
#include "runtime/thread_pool.hpp"

namespace wavekey::nn {
namespace {

float init_scale(std::size_t fan_in, std::size_t fan_out) {
  return static_cast<float>(std::sqrt(2.0 / static_cast<double>(fan_in + fan_out)));
}

// Per-sample im2col/col2im shims over the shared lowering header
// (conv_lowering.hpp, also used by the batched inference path): one
// [in_ch, lin] plane in, one [in_ch*kernel, lout] matrix out.
void im2col(const float* x, std::size_t in_ch, std::size_t lin, std::size_t kernel,
            std::size_t stride, std::size_t padding, std::size_t lout, float* cols) {
  lowering::im2col(x, in_ch, /*channel_stride=*/lin, lin, kernel, stride, padding, lout, cols,
                   /*col_stride=*/lout);
}

void col2im_add(const float* cols, std::size_t in_ch, std::size_t lin, std::size_t kernel,
                std::size_t stride, std::size_t padding, std::size_t lout, float* gx) {
  lowering::col2im_add(cols, in_ch, lin, kernel, stride, padding, lout, gx);
}

}  // namespace

Conv1D::Conv1D(std::size_t in_channels, std::size_t out_channels, std::size_t kernel,
               std::size_t stride, std::size_t padding, Rng& rng)
    : in_ch_(in_channels),
      out_ch_(out_channels),
      kernel_(kernel),
      stride_(stride),
      padding_(padding),
      w_({out_ch_, in_ch_, kernel_}),
      b_({out_ch_}),
      w_grad_({out_ch_, in_ch_, kernel_}),
      b_grad_({out_ch_}) {
  if (kernel_ == 0 || stride_ == 0) throw std::invalid_argument("Conv1D: zero kernel/stride");
  const float s = init_scale(in_ch_ * kernel_, out_ch_ * kernel_);
  for (std::size_t i = 0; i < w_.size(); ++i) w_[i] = static_cast<float>(rng.normal(0.0, s));
}

std::size_t Conv1D::output_length(std::size_t input_length) const {
  const std::size_t padded = input_length + 2 * padding_;
  if (padded < kernel_) throw std::invalid_argument("Conv1D: input shorter than kernel");
  return (padded - kernel_) / stride_ + 1;
}

Tensor Conv1D::forward(const Tensor& input, bool /*training*/) {
  if (input.rank() != 3 || input.dim(1) != in_ch_)
    throw std::invalid_argument("Conv1D::forward: expected [N, in_ch, L]");
  input_ = input;
  const std::size_t n = input.dim(0);
  const std::size_t lin = input.dim(2);
  const std::size_t lout = output_length(lin);
  const std::size_t ick = in_ch_ * kernel_;

  // im2col + GEMM lowering: the weight tensor [out_ch, in_ch, kernel] *is*
  // the row-major [out_ch, in_ch*kernel] GEMM operand, so out = W * cols
  // with the GEMM accumulating in (ic, k) order — the same reduction order
  // as the naive kernel (reference_kernels.cpp), only without the per-MAC
  // padding branch.
  Tensor out = Tensor::uninitialized({n, out_ch_, lout});
  // Per-sample data parallelism: samples write disjoint output planes, so
  // the result is identical at any pool size.
  runtime::for_each_chunk(runtime::compute_pool(), n,
                          [&](std::size_t, std::size_t s0, std::size_t s1) {
    Tensor cols = Tensor::uninitialized({ick, lout});  // per-worker scratch
    for (std::size_t s = s0; s < s1; ++s) {
      im2col(input.raw() + s * in_ch_ * lin, in_ch_, lin, kernel_, stride_, padding_, lout,
             cols.raw());
      float* y = out.raw() + s * out_ch_ * lout;
      for (std::size_t oc = 0; oc < out_ch_; ++oc)
        std::fill(y + oc * lout, y + (oc + 1) * lout, b_[oc]);
      gemm_nn(out_ch_, lout, ick, w_.raw(), ick, cols.raw(), lout, y, lout, /*accumulate=*/true);
    }
  });
  return out;
}

Tensor Conv1D::backward(const Tensor& grad_output) {
  const std::size_t n = input_.dim(0);
  const std::size_t lin = input_.dim(2);
  const std::size_t lout = output_length(lin);
  if (grad_output.rank() != 3 || grad_output.dim(0) != n || grad_output.dim(1) != out_ch_ ||
      grad_output.dim(2) != lout)
    throw std::logic_error("Conv1D::backward: shape mismatch");
  const std::size_t ick = in_ch_ * kernel_;

  Tensor grad_in({n, in_ch_, lin});  // zeroed: col2im_add accumulates
  // Chunked parameter-gradient reduction, folded in chunk order (see
  // Dense::backward); the single-chunk path is bit-identical to serial.
  const std::size_t chunks = runtime::parallel_lanes(runtime::compute_pool(), n);
  std::vector<Tensor> w_partial, b_partial;
  if (chunks > 1) {
    w_partial.assign(chunks, Tensor(w_grad_.shape()));
    b_partial.assign(chunks, Tensor(b_grad_.shape()));
  }
  runtime::for_each_chunk(
      runtime::compute_pool(), n, [&](std::size_t chunk, std::size_t s0, std::size_t s1) {
        Tensor& wg = chunks > 1 ? w_partial[chunk] : w_grad_;
        Tensor& bg = chunks > 1 ? b_partial[chunk] : b_grad_;
        Tensor cols = Tensor::uninitialized({ick, lout});   // per-worker scratch
        Tensor dcols = Tensor::uninitialized({ick, lout});
        for (std::size_t s = s0; s < s1; ++s) {
          const float* gy = grad_output.raw() + s * out_ch_ * lout;
          im2col(input_.raw() + s * in_ch_ * lin, in_ch_, lin, kernel_, stride_, padding_, lout,
                 cols.raw());
          // dW += dY * cols^T, dB += row sums of dY.
          gemm_nt(out_ch_, ick, lout, gy, lout, cols.raw(), lout, wg.raw(), ick,
                  /*accumulate=*/true);
          for (std::size_t oc = 0; oc < out_ch_; ++oc) {
            float acc = 0.0f;
            for (std::size_t t = 0; t < lout; ++t) acc += gy[oc * lout + t];
            bg[oc] += acc;
          }
          // dX = col2im(W^T * dY).
          gemm_tn(ick, lout, out_ch_, w_.raw(), ick, gy, lout, dcols.raw(), lout,
                  /*accumulate=*/false);
          col2im_add(dcols.raw(), in_ch_, lin, kernel_, stride_, padding_, lout,
                     grad_in.raw() + s * in_ch_ * lin);
        }
      });
  if (chunks > 1) {
    for (std::size_t c = 0; c < chunks; ++c) {
      for (std::size_t i = 0; i < w_grad_.size(); ++i) w_grad_[i] += w_partial[c][i];
      for (std::size_t i = 0; i < b_grad_.size(); ++i) b_grad_[i] += b_partial[c][i];
    }
  }
  return grad_in;
}

std::vector<Param> Conv1D::params() {
  return {{&w_, &w_grad_}, {&b_, &b_grad_}};
}

void Conv1D::save(std::ostream& os) const {
  write_u64(os, in_ch_);
  write_u64(os, out_ch_);
  write_u64(os, kernel_);
  write_u64(os, stride_);
  write_u64(os, padding_);
  write_floats(os, w_.data());
  write_floats(os, b_.data());
}

void Conv1D::load(std::istream& is) {
  if (read_u64(is) != in_ch_ || read_u64(is) != out_ch_ || read_u64(is) != kernel_ ||
      read_u64(is) != stride_ || read_u64(is) != padding_)
    throw std::runtime_error("Conv1D::load: hyperparameter mismatch");
  read_floats(is, w_.data());
  read_floats(is, b_.data());
}

ConvTranspose1D::ConvTranspose1D(std::size_t in_channels, std::size_t out_channels,
                                 std::size_t kernel, std::size_t stride, Rng& rng)
    : in_ch_(in_channels),
      out_ch_(out_channels),
      kernel_(kernel),
      stride_(stride),
      w_({in_ch_, out_ch_, kernel_}),
      b_({out_ch_}),
      w_grad_({in_ch_, out_ch_, kernel_}),
      b_grad_({out_ch_}) {
  if (kernel_ == 0 || stride_ == 0)
    throw std::invalid_argument("ConvTranspose1D: zero kernel/stride");
  const float s = init_scale(in_ch_ * kernel_, out_ch_ * kernel_);
  for (std::size_t i = 0; i < w_.size(); ++i) w_[i] = static_cast<float>(rng.normal(0.0, s));
}

Tensor ConvTranspose1D::forward(const Tensor& input, bool /*training*/) {
  if (input.rank() != 3 || input.dim(1) != in_ch_)
    throw std::invalid_argument("ConvTranspose1D::forward: expected [N, in_ch, L]");
  input_ = input;
  const std::size_t n = input.dim(0);
  const std::size_t lin = input.dim(2);
  const std::size_t lout = output_length(lin);
  const std::size_t ock = out_ch_ * kernel_;

  // GEMM + col2im lowering: the weight tensor [in_ch, out_ch, kernel] is the
  // row-major [in_ch, out_ch*kernel] operand, so cmat = W^T * x gives every
  // (oc, k, t) contribution at once; the scatter y[oc][t*stride+k] += cmat
  // needs no bounds checks because lout = (lin-1)*stride + kernel by
  // construction.
  Tensor out = Tensor::uninitialized({n, out_ch_, lout});
  // Per-sample data parallelism (disjoint output planes, see Conv1D).
  runtime::for_each_chunk(runtime::compute_pool(), n,
                          [&](std::size_t, std::size_t s0, std::size_t s1) {
    Tensor cmat = Tensor::uninitialized({ock, lin});  // per-worker scratch
    for (std::size_t s = s0; s < s1; ++s) {
      const float* x = input.raw() + s * in_ch_ * lin;
      gemm_tn(ock, lin, in_ch_, w_.raw(), ock, x, lin, cmat.raw(), lin, /*accumulate=*/false);
      float* y = out.raw() + s * out_ch_ * lout;
      for (std::size_t oc = 0; oc < out_ch_; ++oc)
        std::fill(y + oc * lout, y + (oc + 1) * lout, b_[oc]);
      for (std::size_t oc = 0; oc < out_ch_; ++oc) {
        float* yc = y + oc * lout;
        for (std::size_t k = 0; k < kernel_; ++k) {
          const float* row = cmat.raw() + (oc * kernel_ + k) * lin;
          for (std::size_t t = 0; t < lin; ++t) yc[t * stride_ + k] += row[t];
        }
      }
    }
  });
  return out;
}

Tensor ConvTranspose1D::backward(const Tensor& grad_output) {
  const std::size_t n = input_.dim(0);
  const std::size_t lin = input_.dim(2);
  const std::size_t lout = output_length(lin);
  if (grad_output.rank() != 3 || grad_output.dim(0) != n || grad_output.dim(1) != out_ch_ ||
      grad_output.dim(2) != lout)
    throw std::logic_error("ConvTranspose1D::backward: shape mismatch");
  const std::size_t ock = out_ch_ * kernel_;

  Tensor grad_in = Tensor::uninitialized({n, in_ch_, lin});  // GEMM overwrites every element
  // Chunked parameter-gradient reduction, folded in chunk order (see
  // Dense::backward); the single-chunk path is bit-identical to serial.
  const std::size_t chunks = runtime::parallel_lanes(runtime::compute_pool(), n);
  std::vector<Tensor> w_partial, b_partial;
  if (chunks > 1) {
    w_partial.assign(chunks, Tensor(w_grad_.shape()));
    b_partial.assign(chunks, Tensor(b_grad_.shape()));
  }
  runtime::for_each_chunk(
      runtime::compute_pool(), n, [&](std::size_t chunk, std::size_t s0, std::size_t s1) {
        Tensor& wg = chunks > 1 ? w_partial[chunk] : w_grad_;
        Tensor& bg = chunks > 1 ? b_partial[chunk] : b_grad_;
        // cols2[(oc*kernel + k)][t] = dY[oc][t*stride + k] — the im2col of
        // the *output* gradient; both backward products contract against it.
        Tensor cols2 = Tensor::uninitialized({ock, lin});  // per-worker scratch
        for (std::size_t s = s0; s < s1; ++s) {
          const float* x = input_.raw() + s * in_ch_ * lin;
          const float* gy = grad_output.raw() + s * out_ch_ * lout;
          for (std::size_t oc = 0; oc < out_ch_; ++oc) {
            const float* gc = gy + oc * lout;
            float acc = 0.0f;
            for (std::size_t t = 0; t < lout; ++t) acc += gc[t];
            bg[oc] += acc;
            for (std::size_t k = 0; k < kernel_; ++k) {
              float* row = cols2.raw() + (oc * kernel_ + k) * lin;
              if (stride_ == 1) {
                std::memcpy(row, gc + k, lin * sizeof(float));
              } else {
                for (std::size_t t = 0; t < lin; ++t) row[t] = gc[t * stride_ + k];
              }
            }
          }
          // dX = W * cols2  (contract over (oc, k)).
          gemm_nn(in_ch_, lin, ock, w_.raw(), ock, cols2.raw(), lin,
                  grad_in.raw() + s * in_ch_ * lin, lin, /*accumulate=*/false);
          // dW += X * cols2^T.
          gemm_nt(in_ch_, ock, lin, x, lin, cols2.raw(), lin, wg.raw(), ock,
                  /*accumulate=*/true);
        }
      });
  if (chunks > 1) {
    for (std::size_t c = 0; c < chunks; ++c) {
      for (std::size_t i = 0; i < w_grad_.size(); ++i) w_grad_[i] += w_partial[c][i];
      for (std::size_t i = 0; i < b_grad_.size(); ++i) b_grad_[i] += b_partial[c][i];
    }
  }
  return grad_in;
}

std::vector<Param> ConvTranspose1D::params() {
  return {{&w_, &w_grad_}, {&b_, &b_grad_}};
}

void ConvTranspose1D::save(std::ostream& os) const {
  write_u64(os, in_ch_);
  write_u64(os, out_ch_);
  write_u64(os, kernel_);
  write_u64(os, stride_);
  write_floats(os, w_.data());
  write_floats(os, b_.data());
}

void ConvTranspose1D::remove_input_channel(std::size_t channel) {
  if (channel >= in_ch_) throw std::out_of_range("ConvTranspose1D::remove_input_channel");
  Tensor nw({in_ch_ - 1, out_ch_, kernel_});
  std::size_t dst = 0;
  for (std::size_t ic = 0; ic < in_ch_; ++ic) {
    if (ic == channel) continue;
    for (std::size_t j = 0; j < out_ch_ * kernel_; ++j)
      nw[dst * out_ch_ * kernel_ + j] = w_[ic * out_ch_ * kernel_ + j];
    ++dst;
  }
  --in_ch_;
  w_ = std::move(nw);
  w_grad_ = Tensor({in_ch_, out_ch_, kernel_});
}

void ConvTranspose1D::load(std::istream& is) {
  if (read_u64(is) != in_ch_ || read_u64(is) != out_ch_ || read_u64(is) != kernel_ ||
      read_u64(is) != stride_)
    throw std::runtime_error("ConvTranspose1D::load: hyperparameter mismatch");
  read_floats(is, w_.data());
  read_floats(is, b_.data());
}

}  // namespace wavekey::nn
