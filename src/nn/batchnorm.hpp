#pragma once

// Batch normalization over [N, F] feature tensors. The paper deliberately
// ends IMU-En and RF-En with batch-norm layers so that every latent element
// is (approximately) standard normal at inference time, which lets both
// devices use one fixed quantizer-bin layout (SIV-C / SIV-E2). To preserve
// exactly that property we support affine=false (no learnable gamma/beta),
// which is how the WaveKey encoders instantiate it.
//
// Thread-safety: externally synchronized like every Layer (see layer.hpp).
// Batch statistics are an inherently cross-sample reduction, so this layer
// stays serial even when a compute pool is installed — it is O(N*F) and
// never the training bottleneck.

#include "nn/layer.hpp"

namespace wavekey::nn {

class BatchNorm1D final : public Layer {
 public:
  /// @param features   width F of the [N, F] input
  /// @param affine     enable learnable gamma/beta (WaveKey encoders: false)
  /// @param momentum   running-statistics update rate
  explicit BatchNorm1D(std::size_t features, bool affine = false, float momentum = 0.1f);

  std::size_t features() const { return features_; }

  /// Training mode normalizes with batch statistics and updates the running
  /// estimates; eval mode uses the running estimates.
  Tensor forward(const Tensor& input, bool training) override;
  Tensor backward(const Tensor& grad_output) override;
  std::vector<Param> params() override;
  std::string type_name() const override { return "batchnorm1d"; }
  void save(std::ostream& os) const override;
  void load(std::istream& is) override;

  /// Removes feature `unit` (pruning support).
  void remove_unit(std::size_t unit);

  std::span<const float> running_mean() const { return running_mean_.data(); }
  std::span<const float> running_var() const { return running_var_.data(); }
  bool affine() const { return affine_; }
  float eps() const { return eps_; }

 private:
  std::size_t features_;
  bool affine_;
  float momentum_;
  float eps_ = 1e-5f;

  Tensor gamma_, beta_, gamma_grad_, beta_grad_;
  Tensor running_mean_, running_var_;

  // Caches for backward.
  Tensor x_hat_;       // normalized input
  Tensor batch_std_;   // sqrt(var + eps) per feature
  bool last_training_ = false;
};

}  // namespace wavekey::nn
