// AVX2/FMA GEMM microkernels (DESIGN.md §8.5).
//
//   * Outer-product variants (nn/tn): a 4x16 register tile — 4 rows x two
//     8-wide YMM accumulators — fed by one broadcast of A and two unaligned
//     loads of B per k step, all lanes advanced with FMA. Each C element
//     still owns exactly one accumulator walked in ascending k, so within
//     this tier the reduction order remains a pure function of the shapes
//     (the FMA fusing changes rounding vs. the scalar tier, which the
//     equivalence tests absorb with their relative tolerance).
//   * Dot variant (nt): four independent 8-wide FMA chains over k (stride
//     32), folded in a fixed order, then one 8-wide chain for the k%32
//     block, then the scalar tail — a fixed function of k alone, exactly
//     like the scalar dot_lanes4 contract (just wider).
//
// Edge tiles (m % 4 rows, n % 16 columns) reuse the exported scalar kernels.
// Compiled with -mavx2 -mfma on x86 (src/nn/CMakeLists.txt); elsewhere the
// symbols delegate to the scalar kernels.

#include "nn/gemm.hpp"

#if defined(__AVX2__) && defined(__FMA__)
#include <immintrin.h>
#endif

namespace wavekey::nn {

#if defined(__AVX2__) && defined(__FMA__)

namespace {

constexpr std::size_t kMr = 4;   // rows per register tile
constexpr std::size_t kNr = 16;  // columns per register tile (two YMM)

// Blocked outer-product kernel over the main m/n region; edges are cut off
// by the callers. A's layout is (row_stride, col_stride) as in the scalar
// twin.
void gemm_outer_avx2(std::size_t m, std::size_t n, std::size_t k, const float* a,
                     std::size_t a_row_stride, std::size_t a_col_stride, const float* b,
                     std::size_t ldb, float* c, std::size_t ldc, bool accumulate) {
  const std::size_t m_main = m - m % kMr;
  const std::size_t n_main = n - n % kNr;

  for (std::size_t i0 = 0; i0 < m_main; i0 += kMr) {
    for (std::size_t j0 = 0; j0 < n_main; j0 += kNr) {
      __m256 acc0[kMr], acc1[kMr];
      for (std::size_t i = 0; i < kMr; ++i) {
        float* crow = c + (i0 + i) * ldc + j0;
        acc0[i] = accumulate ? _mm256_loadu_ps(crow) : _mm256_setzero_ps();
        acc1[i] = accumulate ? _mm256_loadu_ps(crow + 8) : _mm256_setzero_ps();
      }
      for (std::size_t p = 0; p < k; ++p) {
        const float* brow = b + p * ldb + j0;
        const __m256 b0 = _mm256_loadu_ps(brow);
        const __m256 b1 = _mm256_loadu_ps(brow + 8);
        for (std::size_t i = 0; i < kMr; ++i) {
          const __m256 av =
              _mm256_broadcast_ss(a + (i0 + i) * a_row_stride + p * a_col_stride);
          acc0[i] = _mm256_fmadd_ps(av, b0, acc0[i]);
          acc1[i] = _mm256_fmadd_ps(av, b1, acc1[i]);
        }
      }
      for (std::size_t i = 0; i < kMr; ++i) {
        float* crow = c + (i0 + i) * ldc + j0;
        _mm256_storeu_ps(crow, acc0[i]);
        _mm256_storeu_ps(crow + 8, acc1[i]);
      }
    }
    // Right edge of this row band: scalar tile on the leftover columns.
    if (n_main < n) {
      detail::gemm_outer_scalar(kMr, n - n_main, k, a + i0 * a_row_stride, a_row_stride,
                                a_col_stride, b + n_main, ldb, c + i0 * ldc + n_main, ldc,
                                accumulate);
    }
  }
  // Bottom edge (all columns).
  if (m_main < m) {
    detail::gemm_outer_scalar(m - m_main, n, k, a + m_main * a_row_stride, a_row_stride,
                              a_col_stride, b, ldb, c + m_main * ldc, ldc, accumulate);
  }
}

// Fixed-order horizontal fold of one YMM accumulator: lanes (0..7) reduce
// as (((l0+l4)+(l2+l6)) + ((l1+l5)+(l3+l7))) — fixed for a given k, never
// data-dependent.
inline float hsum256(__m256 v) {
  const __m128 lo = _mm256_castps256_ps128(v);
  const __m128 hi = _mm256_extractf128_ps(v, 1);
  const __m128 s = _mm_add_ps(lo, hi);            // l_i + l_{i+4}
  const __m128 shuf = _mm_movehdup_ps(s);         // odd lanes
  const __m128 sums = _mm_add_ps(s, shuf);        // pairwise
  const __m128 rest = _mm_movehl_ps(shuf, sums);  // upper pair
  return _mm_cvtss_f32(_mm_add_ss(sums, rest));
}

// 8-wide multi-chain dot product; reduction order is a fixed function of k.
inline float dot_avx2(const float* arow, const float* brow, std::size_t k) {
  const std::size_t k32 = k - k % 32;
  __m256 c0 = _mm256_setzero_ps(), c1 = _mm256_setzero_ps();
  __m256 c2 = _mm256_setzero_ps(), c3 = _mm256_setzero_ps();
  for (std::size_t p = 0; p < k32; p += 32) {
    c0 = _mm256_fmadd_ps(_mm256_loadu_ps(arow + p), _mm256_loadu_ps(brow + p), c0);
    c1 = _mm256_fmadd_ps(_mm256_loadu_ps(arow + p + 8), _mm256_loadu_ps(brow + p + 8), c1);
    c2 = _mm256_fmadd_ps(_mm256_loadu_ps(arow + p + 16), _mm256_loadu_ps(brow + p + 16), c2);
    c3 = _mm256_fmadd_ps(_mm256_loadu_ps(arow + p + 24), _mm256_loadu_ps(brow + p + 24), c3);
  }
  __m256 v = _mm256_add_ps(_mm256_add_ps(c0, c1), _mm256_add_ps(c2, c3));
  const std::size_t k8 = k - k % 8;
  __m256 tail8 = _mm256_setzero_ps();
  for (std::size_t p = k32; p < k8; p += 8)
    tail8 = _mm256_fmadd_ps(_mm256_loadu_ps(arow + p), _mm256_loadu_ps(brow + p), tail8);
  v = _mm256_add_ps(v, tail8);
  float acc = hsum256(v);
  for (std::size_t p = k8; p < k; ++p) acc += arow[p] * brow[p];
  return acc;
}

}  // namespace

void gemm_nn_avx2(std::size_t m, std::size_t n, std::size_t k, const float* a,
                  std::size_t lda, const float* b, std::size_t ldb, float* c,
                  std::size_t ldc, bool accumulate) {
  gemm_outer_avx2(m, n, k, a, lda, 1, b, ldb, c, ldc, accumulate);
}

void gemm_tn_avx2(std::size_t m, std::size_t n, std::size_t k, const float* a,
                  std::size_t lda, const float* b, std::size_t ldb, float* c,
                  std::size_t ldc, bool accumulate) {
  gemm_outer_avx2(m, n, k, a, 1, lda, b, ldb, c, ldc, accumulate);
}

void gemm_nt_avx2(std::size_t m, std::size_t n, std::size_t k, const float* a,
                  std::size_t lda, const float* b, std::size_t ldb, float* c,
                  std::size_t ldc, bool accumulate) {
  for (std::size_t i = 0; i < m; ++i) {
    const float* arow = a + i * lda;
    for (std::size_t j = 0; j < n; ++j) {
      const float base = accumulate ? c[i * ldc + j] : 0.0f;
      c[i * ldc + j] = base + dot_avx2(arow, b + j * ldb, k);
    }
  }
}

#else  // !(__AVX2__ && __FMA__): keep the symbols, defer to scalar.

void gemm_nn_avx2(std::size_t m, std::size_t n, std::size_t k, const float* a,
                  std::size_t lda, const float* b, std::size_t ldb, float* c,
                  std::size_t ldc, bool accumulate) {
  gemm_nn_scalar(m, n, k, a, lda, b, ldb, c, ldc, accumulate);
}

void gemm_tn_avx2(std::size_t m, std::size_t n, std::size_t k, const float* a,
                  std::size_t lda, const float* b, std::size_t ldb, float* c,
                  std::size_t ldc, bool accumulate) {
  gemm_tn_scalar(m, n, k, a, lda, b, ldb, c, ldc, accumulate);
}

void gemm_nt_avx2(std::size_t m, std::size_t n, std::size_t k, const float* a,
                  std::size_t lda, const float* b, std::size_t ldb, float* c,
                  std::size_t ldc, bool accumulate) {
  gemm_nt_scalar(m, n, k, a, lda, b, ldb, c, ldc, accumulate);
}

#endif

}  // namespace wavekey::nn
