#pragma once

// Fully connected layer, including the neuron add/remove surgery needed by
// the paper's l_f pruning study (SVI-C1: neurons are removed from the final
// dense layers in ascending output-variance order, then the model retrains).
//
// Thread-safety: externally synchronized like every Layer (see layer.hpp).
// forward/backward parallelize over the batch internally via
// runtime::compute_pool(); the weight-gradient reduction folds per-chunk
// partials in fixed chunk order, so results depend only on the pool size
// (pool size <= 1 is bit-identical to serial).

#include "nn/layer.hpp"

namespace wavekey::nn {

/// y = W x + b with W of shape [out, in].
class Dense final : public Layer {
 public:
  /// He/Xavier-style initialization: W ~ N(0, sqrt(2/(in+out))), b = 0.
  Dense(std::size_t in_features, std::size_t out_features, Rng& rng);

  std::size_t in_features() const { return in_; }
  std::size_t out_features() const { return out_; }

  Tensor forward(const Tensor& input, bool training) override;
  Tensor backward(const Tensor& grad_output) override;
  std::vector<Param> params() override;
  std::string type_name() const override { return "dense"; }
  void save(std::ostream& os) const override;
  void load(std::istream& is) override;

  /// Removes output neuron `unit` (row of W, entry of b). Used by pruning.
  void remove_output_unit(std::size_t unit);

  /// Removes input feature `unit` (column of W). Used when an upstream layer
  /// was pruned.
  void remove_input_unit(std::size_t unit);

  /// Direct weight access for tests.
  Tensor& weights() { return w_; }
  Tensor& bias() { return b_; }

 private:
  std::size_t in_;
  std::size_t out_;
  Tensor w_;       // [out, in]
  Tensor b_;       // [out]
  Tensor w_grad_;  // [out, in]
  Tensor b_grad_;  // [out]
  Tensor input_;   // cached activations
};

}  // namespace wavekey::nn
