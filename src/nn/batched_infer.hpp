#pragma once

// Cross-session batched inference over an encoder-shaped Sequential stack
// (DESIGN.md §11.3). The per-session layers run each sample as a batch of 1,
// which leaves the 4×16 FMA GEMM microkernels far below saturation: im2col
// packing is unamortized, ReLU materializes a training mask, and Dense
// re-streams its [out, in] weight matrix per sample. BatchedInference
// re-lowers the SAME parameters for B co-batched samples:
//
//   * conv stage, channel-major [C, B*L]: every sample's im2col block lands
//     in one shared [in_ch*kernel, B*lout] operand, so each conv is a single
//     GEMM with N = B*lout (full 16-wide column groups instead of B GEMMs
//     with scalar N-edges);
//   * ReLU applies in place — inference needs no mask and no copy;
//   * Flatten gathers channel-major into feature-major [F, B_pad] (B padded
//     to the 8-lane vector width, pad columns ignored);
//   * dense stage, feature-major: Yt[out, B_pad] = W·X via a narrow-N
//     broadcast-W kernel that streams the weight matrix exactly once per
//     batch; BatchNorm applies running statistics row-wise.
//
// Determinism contract (DESIGN.md §11.4): forward() with B == 1 delegates
// wholesale to Sequential::forward and is therefore bit-identical to the
// serial path. For B > 1 every output element's reduction order is a pure
// function of (architecture, B, SIMD tier) — independent of submission
// order and thread interleaving — but the batched kernels fold in a
// different fixed order than the per-sample kernels, so cross-batch-size
// comparisons hold to the same relative tolerance as the §8 kernel
// equivalence suite, not bit-exactly.
//
// All scratch comes from the thread-local tensor arena, so steady-state
// forwards perform zero heap allocations (asserted by
// MicroBatcherTest.ZeroAllocationSteadyState).
//
// Thread-safety: externally synchronized, like the Sequential it wraps —
// one forward() at a time (core::BatchedEncoderService serializes its
// flushes around this).

#include <cstddef>
#include <span>
#include <vector>

#include "nn/sequential.hpp"
#include "nn/tensor.hpp"

namespace wavekey::nn {

class Conv1D;
class Dense;
class BatchNorm1D;

class BatchedInference {
 public:
  /// Validates that `net` is a supported inference stack for inputs shaped
  /// [in_channels, in_length]: Conv1D/ReLU layers, then one Flatten, then
  /// Dense/ReLU/BatchNorm1D (affine=false) layers, with consistent shapes.
  /// Throws std::invalid_argument otherwise. Keeps a reference to `net`
  /// (and its parameter tensors) — the net must outlive this object and
  /// must not be retrained while batched forwards run.
  BatchedInference(Sequential& net, std::size_t in_channels, std::size_t in_length);

  std::size_t in_channels() const { return in_ch_; }
  std::size_t in_length() const { return in_len_; }
  std::size_t out_features() const { return out_features_; }

  /// Runs the whole stack over B co-batched samples in one pass; each input
  /// must be shaped [C, L] (or [1, C, L]). Returns [B, out_features], row s
  /// holding sample s's latent. B == 1 is routed through
  /// Sequential::forward (bit-identical to the serial path).
  Tensor forward(std::span<const Tensor* const> inputs);

 private:
  struct Op {
    enum class Kind { kConv, kRelu, kFlatten, kDense, kBatchNorm };
    Kind kind;
    // kConv (shapes fixed by in_length at construction)
    const Conv1D* conv = nullptr;
    std::size_t in_ch = 0, out_ch = 0, lin = 0, lout = 0;
    // kDense
    Dense* dense = nullptr;
    std::size_t in_f = 0, out_f = 0;
    // kBatchNorm
    const BatchNorm1D* bn = nullptr;
  };

  Sequential& net_;
  std::vector<Op> ops_;
  std::size_t in_ch_ = 0;
  std::size_t in_len_ = 0;
  std::size_t out_features_ = 0;
};

namespace detail {

// Narrow-N dense microkernel for the feature-major stage:
//   Y[M, n_pad] = W[M, K] · X[K, n_pad] + bias[M] (broadcast per row).
// n_pad must be a multiple of 8. W is streamed exactly once (broadcast-A
// FMA over 8-wide column vectors); the contraction runs in ascending k for
// every element, so the reduction order is a pure function of (M, K, n_pad)
// within a tier. The _avx2 variant delegates to _scalar on builds without
// AVX2/FMA. Exported for the differential test in micro_batcher_test.cpp.
void batched_dense_scalar(std::size_t m, std::size_t k, std::size_t n_pad, const float* w,
                          const float* x, const float* bias, float* y);
void batched_dense_avx2(std::size_t m, std::size_t k, std::size_t n_pad, const float* w,
                        const float* x, const float* bias, float* y);

// dst[i] = src[2*i] for i in [0, n): the strided-copy inner loop of im2col
// for stride-2 convs (both encoders' conv stacks), vectorized with an
// even-lane shuffle. Reads src[0 .. 2n-2] only — the vector body stops
// early enough that its 16-float loads never cross src[2n-2], so callers
// need no padding. Delegates to the scalar loop on builds without AVX2.
void copy_stride2_avx2(float* dst, const float* src, std::size_t n);

// dst[i] = src[4*i] for i in [0, n): same contract for stride-4 convs
// (RF-En's first layer). Reads src[0 .. 4n-4] only.
void copy_stride4_avx2(float* dst, const float* src, std::size_t n);

// Flatten-stage layout change, one channel at a time: transposes a
// [b, len] sample-major block (row stride len) into [len, n_pad] rows
// (row stride n_pad) and zeroes the pad columns b..n_pad-1. Full 8-sample
// groups use a register 8x8 transpose; remainders fall back to the scalar
// gather. Delegates to the scalar loop on builds without AVX2.
void flatten_transpose_avx2(const float* src, std::size_t b, std::size_t len, std::size_t n_pad,
                            float* dst);

}  // namespace detail

}  // namespace wavekey::nn
