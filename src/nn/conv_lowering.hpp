#pragma once

// im2col lowering shared by the Conv1D layer (per-sample forward/backward,
// conv1d.cpp) and the cross-session batched inference path
// (batched_infer.cpp, DESIGN.md §11.3). Header-only so both TUs inline the
// same closed-form edge/interior split — the packing loops are
// memcpy/strided-copy over the interior and touch the zero padding only in
// the closed-form edge ranges, never via a per-MAC bounds check.

#include <cstddef>
#include <cstring>

namespace wavekey::nn::lowering {

// Valid output-position range [t0, t1) for kernel tap offset d = k - padding:
// the positions t with 0 <= t*stride + d < lin. Everything outside reads the
// zero padding.
struct TapRange {
  std::size_t t0, t1;
};

inline TapRange tap_range(std::ptrdiff_t d, std::size_t lin, std::size_t stride,
                          std::size_t lout) {
  const std::ptrdiff_t s = static_cast<std::ptrdiff_t>(stride);
  const std::ptrdiff_t t0 = d >= 0 ? 0 : (-d + s - 1) / s;
  const std::ptrdiff_t last_src = static_cast<std::ptrdiff_t>(lin) - 1 - d;
  const std::ptrdiff_t t1 = last_src < 0 ? 0 : last_src / s + 1;
  const std::size_t lo =
      std::min<std::size_t>(static_cast<std::size_t>(std::max<std::ptrdiff_t>(t0, 0)), lout);
  const std::size_t hi =
      std::min<std::size_t>(static_cast<std::size_t>(std::max<std::ptrdiff_t>(t1, 0)), lout);
  return {lo, std::max(lo, hi)};
}

// Packs one sample into cols with cols[(ic*kernel + k)*col_stride + t] =
// x[ic*channel_stride + t*stride + k - padding] (0 in the padding).
//
// channel_stride is the element distance between consecutive channels of
// THIS sample in x, and col_stride the row pitch of cols:
//   * per-sample layout (conv1d.cpp): channel_stride = lin, col_stride = lout
//     — x is one [in_ch, lin] plane, cols one [in_ch*kernel, lout] matrix;
//   * channel-major batched layout (batched_infer.cpp): channel_stride =
//     batch*lin, col_stride = batch*lout — x points at this sample's segment
//     inside [in_ch, batch*lin] and cols at its column block inside
//     [in_ch*kernel, batch*lout], so every sample lands in one shared GEMM
//     operand.
inline void im2col(const float* x, std::size_t in_ch, std::size_t channel_stride,
                   std::size_t lin, std::size_t kernel, std::size_t stride,
                   std::size_t padding, std::size_t lout, float* cols,
                   std::size_t col_stride) {
  for (std::size_t ic = 0; ic < in_ch; ++ic) {
    const float* xc = x + ic * channel_stride;
    for (std::size_t k = 0; k < kernel; ++k) {
      float* row = cols + (ic * kernel + k) * col_stride;
      const std::ptrdiff_t d = static_cast<std::ptrdiff_t>(k) - static_cast<std::ptrdiff_t>(padding);
      const TapRange r = tap_range(d, lin, stride, lout);
      if (r.t0 > 0) std::memset(row, 0, r.t0 * sizeof(float));
      if (r.t1 < lout) std::memset(row + r.t1, 0, (lout - r.t1) * sizeof(float));
      if (stride == 1) {
        if (r.t1 > r.t0)
          std::memcpy(row + r.t0, xc + static_cast<std::ptrdiff_t>(r.t0) + d,
                      (r.t1 - r.t0) * sizeof(float));
      } else {
        for (std::size_t t = r.t0; t < r.t1; ++t)
          row[t] = xc[static_cast<std::ptrdiff_t>(t * stride) + d];
      }
    }
  }
}

// Scatter-adds cols [in_ch*kernel, lout] back into one sample's input
// gradient [in_ch, lin] — the adjoint of im2col (per-sample layout only;
// the batched inference path never runs backward). Rows are processed in
// (ic, k) order, so the accumulation order is a pure function of the
// shapes (deterministic).
inline void col2im_add(const float* cols, std::size_t in_ch, std::size_t lin,
                       std::size_t kernel, std::size_t stride, std::size_t padding,
                       std::size_t lout, float* gx) {
  for (std::size_t ic = 0; ic < in_ch; ++ic) {
    float* gc = gx + ic * lin;
    for (std::size_t k = 0; k < kernel; ++k) {
      const float* row = cols + (ic * kernel + k) * lout;
      const std::ptrdiff_t d = static_cast<std::ptrdiff_t>(k) - static_cast<std::ptrdiff_t>(padding);
      const TapRange r = tap_range(d, lin, stride, lout);
      for (std::size_t t = r.t0; t < r.t1; ++t)
        gc[static_cast<std::ptrdiff_t>(t * stride) + d] += row[t];
    }
  }
}

}  // namespace wavekey::nn::lowering
