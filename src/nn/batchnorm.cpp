#include "nn/batchnorm.hpp"

#include <cmath>
#include <istream>
#include <ostream>
#include <stdexcept>

namespace wavekey::nn {

BatchNorm1D::BatchNorm1D(std::size_t features, bool affine, float momentum)
    : features_(features),
      affine_(affine),
      momentum_(momentum),
      gamma_({features_}),
      beta_({features_}),
      gamma_grad_({features_}),
      beta_grad_({features_}),
      running_mean_({features_}),
      running_var_({features_}) {
  gamma_.fill(1.0f);
  running_var_.fill(1.0f);
}

Tensor BatchNorm1D::forward(const Tensor& input, bool training) {
  if (input.rank() != 2 || input.dim(1) != features_)
    throw std::invalid_argument("BatchNorm1D::forward: expected [N, F]");
  const std::size_t n = input.dim(0);
  last_training_ = training;

  // All three are fully written below — uninitialized + arena reuse keeps
  // the steady-state forward allocation-free.
  Tensor out = Tensor::uninitialized(input.shape());
  x_hat_.resize_uninitialized(input.shape());
  batch_std_.resize_uninitialized({features_});

  for (std::size_t f = 0; f < features_; ++f) {
    float m, v;
    if (training) {
      if (n < 2) throw std::invalid_argument("BatchNorm1D: training needs batch size >= 2");
      float s = 0.0f;
      for (std::size_t i = 0; i < n; ++i) s += input.at2(i, f);
      m = s / static_cast<float>(n);
      float sv = 0.0f;
      for (std::size_t i = 0; i < n; ++i) {
        const float d = input.at2(i, f) - m;
        sv += d * d;
      }
      v = sv / static_cast<float>(n);
      running_mean_[f] = (1.0f - momentum_) * running_mean_[f] + momentum_ * m;
      running_var_[f] = (1.0f - momentum_) * running_var_[f] + momentum_ * v;
    } else {
      m = running_mean_[f];
      v = running_var_[f];
    }
    const float stdv = std::sqrt(v + eps_);
    batch_std_[f] = stdv;
    for (std::size_t i = 0; i < n; ++i) {
      const float xh = (input.at2(i, f) - m) / stdv;
      x_hat_.at2(i, f) = xh;
      out.at2(i, f) = affine_ ? gamma_[f] * xh + beta_[f] : xh;
    }
  }
  return out;
}

Tensor BatchNorm1D::backward(const Tensor& grad_output) {
  if (!grad_output.same_shape(x_hat_))
    throw std::logic_error("BatchNorm1D::backward: shape mismatch");
  const std::size_t n = grad_output.dim(0);
  Tensor grad_in = Tensor::uninitialized(grad_output.shape());  // fully written

  for (std::size_t f = 0; f < features_; ++f) {
    const float g = affine_ ? gamma_[f] : 1.0f;
    // dL/dx_hat
    float sum_dxhat = 0.0f, sum_dxhat_xhat = 0.0f;
    for (std::size_t i = 0; i < n; ++i) {
      const float dxh = grad_output.at2(i, f) * g;
      sum_dxhat += dxh;
      sum_dxhat_xhat += dxh * x_hat_.at2(i, f);
      if (affine_) {
        gamma_grad_[f] += grad_output.at2(i, f) * x_hat_.at2(i, f);
        beta_grad_[f] += grad_output.at2(i, f);
      }
    }
    const float inv_n = 1.0f / static_cast<float>(n);
    const float inv_std = 1.0f / batch_std_[f];
    for (std::size_t i = 0; i < n; ++i) {
      const float dxh = grad_output.at2(i, f) * g;
      if (last_training_) {
        grad_in.at2(i, f) =
            inv_std * (dxh - inv_n * sum_dxhat - x_hat_.at2(i, f) * inv_n * sum_dxhat_xhat);
      } else {
        // Eval mode: statistics are constants.
        grad_in.at2(i, f) = dxh * inv_std;
      }
    }
  }
  return grad_in;
}

std::vector<Param> BatchNorm1D::params() {
  if (!affine_) return {};
  return {{&gamma_, &gamma_grad_}, {&beta_, &beta_grad_}};
}

void BatchNorm1D::save(std::ostream& os) const {
  write_u64(os, features_);
  write_u64(os, affine_ ? 1 : 0);
  write_floats(os, gamma_.data());
  write_floats(os, beta_.data());
  write_floats(os, running_mean_.data());
  write_floats(os, running_var_.data());
}

void BatchNorm1D::load(std::istream& is) {
  if (read_u64(is) != features_ || (read_u64(is) != 0) != affine_)
    throw std::runtime_error("BatchNorm1D::load: hyperparameter mismatch");
  read_floats(is, gamma_.data());
  read_floats(is, beta_.data());
  read_floats(is, running_mean_.data());
  read_floats(is, running_var_.data());
}

void BatchNorm1D::remove_unit(std::size_t unit) {
  if (unit >= features_) throw std::out_of_range("BatchNorm1D::remove_unit");
  auto shrink = [&](Tensor& t) {
    Tensor nt({features_ - 1});
    std::size_t dst = 0;
    for (std::size_t f = 0; f < features_; ++f) {
      if (f == unit) continue;
      nt[dst++] = t[f];
    }
    t = std::move(nt);
  };
  shrink(gamma_);
  shrink(beta_);
  shrink(running_mean_);
  shrink(running_var_);
  --features_;
  gamma_grad_ = Tensor({features_});
  beta_grad_ = Tensor({features_});
}

}  // namespace wavekey::nn
