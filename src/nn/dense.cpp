#include "nn/dense.hpp"

#include <cmath>
#include <cstring>
#include <istream>
#include <ostream>
#include <stdexcept>

#include "nn/gemm.hpp"
#include "runtime/thread_pool.hpp"

namespace wavekey::nn {

Dense::Dense(std::size_t in_features, std::size_t out_features, Rng& rng)
    : in_(in_features),
      out_(out_features),
      w_({out_, in_}),
      b_({out_}),
      w_grad_({out_, in_}),
      b_grad_({out_}) {
  const double scale = std::sqrt(2.0 / static_cast<double>(in_ + out_));
  for (std::size_t i = 0; i < w_.size(); ++i) w_[i] = static_cast<float>(rng.normal(0.0, scale));
}

Tensor Dense::forward(const Tensor& input, bool /*training*/) {
  if (input.rank() != 2 || input.dim(1) != in_)
    throw std::invalid_argument("Dense::forward: expected [N, " + std::to_string(in_) + "]");
  input_ = input;
  const std::size_t n = input.dim(0);
  // Y = X * W^T + b as a dot-product GEMM (both operands read K-contiguous;
  // each output element keeps one ascending-k accumulator, same reduction
  // order as the naive kernel). Per-sample data parallelism: every sample
  // writes a disjoint output row, so the result is identical at any pool
  // size.
  Tensor out = Tensor::uninitialized({n, out_});
  runtime::for_each_chunk(runtime::compute_pool(), n,
                          [&](std::size_t, std::size_t s0, std::size_t s1) {
    for (std::size_t s = s0; s < s1; ++s)
      std::memcpy(out.raw() + s * out_, b_.raw(), out_ * sizeof(float));
    gemm_nt(s1 - s0, out_, in_, input.raw() + s0 * in_, in_, w_.raw(), in_,
            out.raw() + s0 * out_, out_, /*accumulate=*/true);
  });
  return out;
}

Tensor Dense::backward(const Tensor& grad_output) {
  if (grad_output.rank() != 2 || grad_output.dim(1) != out_ ||
      grad_output.dim(0) != input_.dim(0))
    throw std::logic_error("Dense::backward: shape mismatch");
  const std::size_t n = input_.dim(0);
  Tensor grad_in = Tensor::uninitialized({n, in_});  // GEMM overwrites every element
  // Input gradients are per-sample disjoint; parameter gradients are a
  // cross-sample reduction. Each chunk accumulates into its own partial in
  // sample order (gemm_tn contracts over the chunk's samples in ascending
  // order), and the partials are folded into w_grad_/b_grad_ in ascending
  // chunk order — deterministic for a fixed pool size, and the single-chunk
  // path (pool size <= 1) accumulates directly, bit-identical to serial.
  const std::size_t chunks = runtime::parallel_lanes(runtime::compute_pool(), n);
  std::vector<Tensor> w_partial, b_partial;
  if (chunks > 1) {
    w_partial.assign(chunks, Tensor(w_grad_.shape()));
    b_partial.assign(chunks, Tensor(b_grad_.shape()));
  }
  runtime::for_each_chunk(
      runtime::compute_pool(), n, [&](std::size_t chunk, std::size_t s0, std::size_t s1) {
        Tensor& wg = chunks > 1 ? w_partial[chunk] : w_grad_;
        Tensor& bg = chunks > 1 ? b_partial[chunk] : b_grad_;
        const float* x = input_.raw() + s0 * in_;
        const float* gy = grad_output.raw() + s0 * out_;
        const std::size_t cn = s1 - s0;
        // dX = dY * W.
        gemm_nn(cn, in_, out_, gy, out_, w_.raw(), in_, grad_in.raw() + s0 * in_, in_,
                /*accumulate=*/false);
        // dW += dY^T * X  (contract over the chunk's samples).
        gemm_tn(out_, in_, cn, gy, out_, x, in_, wg.raw(), in_, /*accumulate=*/true);
        // dB += column sums of dY.
        for (std::size_t s = 0; s < cn; ++s)
          for (std::size_t o = 0; o < out_; ++o) bg[o] += gy[s * out_ + o];
      });
  if (chunks > 1) {
    for (std::size_t c = 0; c < chunks; ++c) {
      for (std::size_t i = 0; i < w_grad_.size(); ++i) w_grad_[i] += w_partial[c][i];
      for (std::size_t i = 0; i < b_grad_.size(); ++i) b_grad_[i] += b_partial[c][i];
    }
  }
  return grad_in;
}

std::vector<Param> Dense::params() {
  return {{&w_, &w_grad_}, {&b_, &b_grad_}};
}

void Dense::save(std::ostream& os) const {
  write_u64(os, in_);
  write_u64(os, out_);
  write_floats(os, w_.data());
  write_floats(os, b_.data());
}

void Dense::load(std::istream& is) {
  const std::uint64_t in = read_u64(is);
  const std::uint64_t out = read_u64(is);
  if (in != in_ || out != out_) throw std::runtime_error("Dense::load: shape mismatch");
  read_floats(is, w_.data());
  read_floats(is, b_.data());
}

void Dense::remove_output_unit(std::size_t unit) {
  if (unit >= out_) throw std::out_of_range("Dense::remove_output_unit");
  Tensor nw({out_ - 1, in_}), nb({out_ - 1});
  std::size_t dst = 0;
  for (std::size_t o = 0; o < out_; ++o) {
    if (o == unit) continue;
    for (std::size_t i = 0; i < in_; ++i) nw[dst * in_ + i] = w_[o * in_ + i];
    nb[dst] = b_[o];
    ++dst;
  }
  --out_;
  w_ = std::move(nw);
  b_ = std::move(nb);
  w_grad_ = Tensor({out_, in_});
  b_grad_ = Tensor({out_});
}

void Dense::remove_input_unit(std::size_t unit) {
  if (unit >= in_) throw std::out_of_range("Dense::remove_input_unit");
  Tensor nw({out_, in_ - 1});
  for (std::size_t o = 0; o < out_; ++o) {
    std::size_t dst = 0;
    for (std::size_t i = 0; i < in_; ++i) {
      if (i == unit) continue;
      nw[o * (in_ - 1) + dst] = w_[o * in_ + i];
      ++dst;
    }
  }
  --in_;
  w_ = std::move(nw);
  w_grad_ = Tensor({out_, in_});
}

}  // namespace wavekey::nn
