#pragma once

// First-order optimizers for the joint encoder/decoder training loop.
//
// Thread-safety: externally synchronized. An optimizer owns per-parameter
// state (momentum / Adam moments) keyed to its parameter list; step() must
// not run concurrently with itself or with backward() on the same model.

#include <vector>

#include "nn/layer.hpp"

namespace wavekey::nn {

/// Optimizer interface over a fixed parameter list.
class Optimizer {
 public:
  explicit Optimizer(std::vector<Param> params) : params_(std::move(params)) {}
  virtual ~Optimizer() = default;

  /// Applies one update from the accumulated gradients, then clears them.
  virtual void step() = 0;

  /// Clears gradients without updating (e.g. after a diagnostics pass).
  void zero_grad();

 protected:
  std::vector<Param> params_;
};

/// SGD with classical momentum.
class Sgd final : public Optimizer {
 public:
  Sgd(std::vector<Param> params, float lr, float momentum = 0.9f);
  void step() override;

 private:
  float lr_;
  float momentum_;
  std::vector<Tensor> velocity_;
};

/// Adam (Kingma & Ba) with bias correction.
class Adam final : public Optimizer {
 public:
  Adam(std::vector<Param> params, float lr, float beta1 = 0.9f, float beta2 = 0.999f,
       float eps = 1e-8f);
  void step() override;

 private:
  float lr_, beta1_, beta2_, eps_;
  std::vector<Tensor> m_, v_;
  long t_ = 0;
};

}  // namespace wavekey::nn
