#include "nn/optimizer.hpp"

#include <cmath>

namespace wavekey::nn {

void Optimizer::zero_grad() {
  for (Param& p : params_) p.grad->fill(0.0f);
}

Sgd::Sgd(std::vector<Param> params, float lr, float momentum)
    : Optimizer(std::move(params)), lr_(lr), momentum_(momentum) {
  velocity_.reserve(params_.size());
  for (const Param& p : params_) velocity_.emplace_back(p.value->shape());
}

void Sgd::step() {
  for (std::size_t i = 0; i < params_.size(); ++i) {
    Tensor& v = velocity_[i];
    Tensor& w = *params_[i].value;
    Tensor& g = *params_[i].grad;
    for (std::size_t j = 0; j < w.size(); ++j) {
      v[j] = momentum_ * v[j] - lr_ * g[j];
      w[j] += v[j];
    }
  }
  zero_grad();
}

Adam::Adam(std::vector<Param> params, float lr, float beta1, float beta2, float eps)
    : Optimizer(std::move(params)), lr_(lr), beta1_(beta1), beta2_(beta2), eps_(eps) {
  m_.reserve(params_.size());
  v_.reserve(params_.size());
  for (const Param& p : params_) {
    m_.emplace_back(p.value->shape());
    v_.emplace_back(p.value->shape());
  }
}

void Adam::step() {
  ++t_;
  const float bc1 = 1.0f - std::pow(beta1_, static_cast<float>(t_));
  const float bc2 = 1.0f - std::pow(beta2_, static_cast<float>(t_));
  for (std::size_t i = 0; i < params_.size(); ++i) {
    Tensor& w = *params_[i].value;
    Tensor& g = *params_[i].grad;
    Tensor& m = m_[i];
    Tensor& v = v_[i];
    for (std::size_t j = 0; j < w.size(); ++j) {
      m[j] = beta1_ * m[j] + (1.0f - beta1_) * g[j];
      v[j] = beta2_ * v[j] + (1.0f - beta2_) * g[j] * g[j];
      const float mhat = m[j] / bc1;
      const float vhat = v[j] / bc2;
      w[j] -= lr_ * mhat / (std::sqrt(vhat) + eps_);
    }
  }
  zero_grad();
}

}  // namespace wavekey::nn
