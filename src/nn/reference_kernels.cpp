#include "nn/reference_kernels.hpp"

namespace wavekey::nn::reference {
namespace {

std::size_t conv_output_length(std::size_t lin, std::size_t kernel, std::size_t stride,
                               std::size_t padding) {
  return (lin + 2 * padding - kernel) / stride + 1;
}

}  // namespace

Tensor conv1d_forward(const Tensor& input, const Tensor& w, const Tensor& b, std::size_t stride,
                      std::size_t padding) {
  const std::size_t n = input.dim(0), in_ch = input.dim(1), lin = input.dim(2);
  const std::size_t out_ch = w.dim(0), kernel = w.dim(2);
  const std::size_t lout = conv_output_length(lin, kernel, stride, padding);

  Tensor out({n, out_ch, lout});
  for (std::size_t s = 0; s < n; ++s) {
    for (std::size_t oc = 0; oc < out_ch; ++oc) {
      for (std::size_t t = 0; t < lout; ++t) {
        float acc = b[oc];
        const std::ptrdiff_t start =
            static_cast<std::ptrdiff_t>(t * stride) - static_cast<std::ptrdiff_t>(padding);
        for (std::size_t ic = 0; ic < in_ch; ++ic) {
          const float* x = input.raw() + (s * in_ch + ic) * lin;
          const float* wk = w.raw() + (oc * in_ch + ic) * kernel;
          for (std::size_t k = 0; k < kernel; ++k) {
            const std::ptrdiff_t idx = start + static_cast<std::ptrdiff_t>(k);
            if (idx >= 0 && idx < static_cast<std::ptrdiff_t>(lin)) acc += wk[k] * x[idx];
          }
        }
        out.at3(s, oc, t) = acc;
      }
    }
  }
  return out;
}

Tensor conv1d_backward(const Tensor& input, const Tensor& w, const Tensor& grad_output,
                       std::size_t stride, std::size_t padding, Tensor& w_grad, Tensor& b_grad) {
  const std::size_t n = input.dim(0), in_ch = input.dim(1), lin = input.dim(2);
  const std::size_t out_ch = w.dim(0), kernel = w.dim(2);
  const std::size_t lout = grad_output.dim(2);

  Tensor grad_in({n, in_ch, lin});
  for (std::size_t s = 0; s < n; ++s) {
    for (std::size_t oc = 0; oc < out_ch; ++oc) {
      for (std::size_t t = 0; t < lout; ++t) {
        const float g = grad_output.at3(s, oc, t);
        if (g == 0.0f) continue;
        b_grad[oc] += g;
        const std::ptrdiff_t start =
            static_cast<std::ptrdiff_t>(t * stride) - static_cast<std::ptrdiff_t>(padding);
        for (std::size_t ic = 0; ic < in_ch; ++ic) {
          const float* x = input.raw() + (s * in_ch + ic) * lin;
          float* gx = grad_in.raw() + (s * in_ch + ic) * lin;
          float* gw = w_grad.raw() + (oc * in_ch + ic) * kernel;
          const float* wk = w.raw() + (oc * in_ch + ic) * kernel;
          for (std::size_t k = 0; k < kernel; ++k) {
            const std::ptrdiff_t idx = start + static_cast<std::ptrdiff_t>(k);
            if (idx >= 0 && idx < static_cast<std::ptrdiff_t>(lin)) {
              gw[k] += g * x[idx];
              gx[idx] += g * wk[k];
            }
          }
        }
      }
    }
  }
  return grad_in;
}

Tensor conv_transpose1d_forward(const Tensor& input, const Tensor& w, const Tensor& b,
                                std::size_t stride) {
  const std::size_t n = input.dim(0), in_ch = input.dim(1), lin = input.dim(2);
  const std::size_t out_ch = w.dim(1), kernel = w.dim(2);
  const std::size_t lout = (lin - 1) * stride + kernel;

  Tensor out({n, out_ch, lout});
  for (std::size_t s = 0; s < n; ++s) {
    for (std::size_t oc = 0; oc < out_ch; ++oc)
      for (std::size_t t = 0; t < lout; ++t) out.at3(s, oc, t) = b[oc];
    for (std::size_t ic = 0; ic < in_ch; ++ic) {
      const float* x = input.raw() + (s * in_ch + ic) * lin;
      for (std::size_t t = 0; t < lin; ++t) {
        const float xv = x[t];
        if (xv == 0.0f) continue;
        for (std::size_t oc = 0; oc < out_ch; ++oc) {
          float* y = out.raw() + (s * out_ch + oc) * lout;
          const float* wk = w.raw() + (ic * out_ch + oc) * kernel;
          for (std::size_t k = 0; k < kernel; ++k) y[t * stride + k] += xv * wk[k];
        }
      }
    }
  }
  return out;
}

Tensor conv_transpose1d_backward(const Tensor& input, const Tensor& w, const Tensor& grad_output,
                                 std::size_t stride, Tensor& w_grad, Tensor& b_grad) {
  const std::size_t n = input.dim(0), in_ch = input.dim(1), lin = input.dim(2);
  const std::size_t out_ch = w.dim(1), kernel = w.dim(2);
  const std::size_t lout = grad_output.dim(2);

  Tensor grad_in({n, in_ch, lin});
  for (std::size_t s = 0; s < n; ++s) {
    for (std::size_t oc = 0; oc < out_ch; ++oc) {
      const float* gy = grad_output.raw() + (s * out_ch + oc) * lout;
      float acc = 0.0f;
      for (std::size_t t = 0; t < lout; ++t) acc += gy[t];
      b_grad[oc] += acc;
    }
    for (std::size_t ic = 0; ic < in_ch; ++ic) {
      const float* x = input.raw() + (s * in_ch + ic) * lin;
      float* gx = grad_in.raw() + (s * in_ch + ic) * lin;
      for (std::size_t t = 0; t < lin; ++t) {
        for (std::size_t oc = 0; oc < out_ch; ++oc) {
          const float* gy = grad_output.raw() + (s * out_ch + oc) * lout;
          const float* wk = w.raw() + (ic * out_ch + oc) * kernel;
          float* gw = w_grad.raw() + (ic * out_ch + oc) * kernel;
          float acc = 0.0f;
          for (std::size_t k = 0; k < kernel; ++k) {
            acc += gy[t * stride + k] * wk[k];
            gw[k] += gy[t * stride + k] * x[t];
          }
          gx[t] += acc;
        }
      }
    }
  }
  return grad_in;
}

Tensor dense_forward(const Tensor& input, const Tensor& w, const Tensor& b) {
  const std::size_t n = input.dim(0), in = input.dim(1);
  const std::size_t out = w.dim(0);
  Tensor y({n, out});
  for (std::size_t s = 0; s < n; ++s) {
    const float* x = input.raw() + s * in;
    for (std::size_t o = 0; o < out; ++o) {
      const float* wrow = w.raw() + o * in;
      float acc = b[o];
      for (std::size_t i = 0; i < in; ++i) acc += wrow[i] * x[i];
      y.at2(s, o) = acc;
    }
  }
  return y;
}

Tensor dense_backward(const Tensor& input, const Tensor& w, const Tensor& grad_output,
                      Tensor& w_grad, Tensor& b_grad) {
  const std::size_t n = input.dim(0), in = input.dim(1);
  const std::size_t out = w.dim(0);
  Tensor grad_in({n, in});
  for (std::size_t s = 0; s < n; ++s) {
    const float* x = input.raw() + s * in;
    const float* gy = grad_output.raw() + s * out;
    float* gx = grad_in.raw() + s * in;
    for (std::size_t o = 0; o < out; ++o) {
      const float g = gy[o];
      if (g == 0.0f) continue;
      b_grad[o] += g;
      float* gw = w_grad.raw() + o * in;
      const float* wrow = w.raw() + o * in;
      for (std::size_t i = 0; i < in; ++i) {
        gw[i] += g * x[i];
        gx[i] += g * wrow[i];
      }
    }
  }
  return grad_in;
}

}  // namespace wavekey::nn::reference
