#include "nn/layer.hpp"

#include <istream>
#include <ostream>
#include <stdexcept>

namespace wavekey::nn {

Tensor ReLU::forward(const Tensor& input, bool /*training*/) {
  mask_.resize_uninitialized(input.shape());  // every element written below
  Tensor out = input;
  for (std::size_t i = 0; i < out.size(); ++i) {
    if (out[i] > 0.0f) {
      mask_[i] = 1.0f;
    } else {
      mask_[i] = 0.0f;
      out[i] = 0.0f;
    }
  }
  return out;
}

Tensor ReLU::backward(const Tensor& grad_output) {
  if (!grad_output.same_shape(mask_)) throw std::logic_error("ReLU::backward: shape mismatch");
  Tensor grad_in = grad_output;
  for (std::size_t i = 0; i < grad_in.size(); ++i) grad_in[i] *= mask_[i];
  return grad_in;
}

void ReLU::save(std::ostream& /*os*/) const {}
void ReLU::load(std::istream& /*is*/) {}

Tensor Flatten::forward(const Tensor& input, bool /*training*/) {
  input_shape_ = input.shape();
  if (input.rank() < 2) throw std::invalid_argument("Flatten: rank must be >= 2");
  return input.reshaped({input.dim(0), input.size() / input.dim(0)});
}

Tensor Flatten::backward(const Tensor& grad_output) {
  return grad_output.reshaped(input_shape_);
}

void Flatten::save(std::ostream& /*os*/) const {}
void Flatten::load(std::istream& /*is*/) {}

Reshape::Reshape(std::vector<std::size_t> per_sample_shape)
    : per_sample_shape_(std::move(per_sample_shape)) {
  if (per_sample_shape_.empty()) throw std::invalid_argument("Reshape: empty target shape");
}

Tensor Reshape::forward(const Tensor& input, bool /*training*/) {
  input_shape_ = input.shape();
  Shape target{input.dim(0)};
  for (std::size_t d : per_sample_shape_) target.push_back(d);
  return input.reshaped(target);
}

Tensor Reshape::backward(const Tensor& grad_output) {
  return grad_output.reshaped(input_shape_);
}

void Reshape::save(std::ostream& os) const {
  write_u64(os, per_sample_shape_.size());
  for (std::size_t d : per_sample_shape_) write_u64(os, d);
}

void Reshape::load(std::istream& is) {
  const std::uint64_t n = read_u64(is);
  if (n != per_sample_shape_.size()) throw std::runtime_error("Reshape::load: rank mismatch");
  for (std::size_t i = 0; i < n; ++i)
    if (read_u64(is) != per_sample_shape_[i])
      throw std::runtime_error("Reshape::load: shape mismatch");
}

void write_u64(std::ostream& os, std::uint64_t v) {
  std::uint8_t bytes[8];
  for (int i = 0; i < 8; ++i) bytes[i] = static_cast<std::uint8_t>(v >> (8 * i));
  os.write(reinterpret_cast<const char*>(bytes), 8);
}

std::uint64_t read_u64(std::istream& is) {
  std::uint8_t bytes[8];
  is.read(reinterpret_cast<char*>(bytes), 8);
  if (!is) throw std::runtime_error("nn::read_u64: truncated stream");
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= std::uint64_t{bytes[i]} << (8 * i);
  return v;
}

void write_floats(std::ostream& os, std::span<const float> xs) {
  write_u64(os, xs.size());
  os.write(reinterpret_cast<const char*>(xs.data()),
           static_cast<std::streamsize>(xs.size() * sizeof(float)));
}

void read_floats(std::istream& is, std::span<float> xs) {
  const std::uint64_t n = read_u64(is);
  if (n != xs.size()) throw std::runtime_error("nn::read_floats: size mismatch");
  is.read(reinterpret_cast<char*>(xs.data()),
          static_cast<std::streamsize>(xs.size() * sizeof(float)));
  if (!is) throw std::runtime_error("nn::read_floats: truncated stream");
}

void write_string(std::ostream& os, const std::string& s) {
  write_u64(os, s.size());
  os.write(s.data(), static_cast<std::streamsize>(s.size()));
}

std::string read_string(std::istream& is) {
  const std::uint64_t n = read_u64(is);
  if (n > 4096) throw std::runtime_error("nn::read_string: implausible length");
  std::string s(n, '\0');
  is.read(s.data(), static_cast<std::streamsize>(n));
  if (!is) throw std::runtime_error("nn::read_string: truncated stream");
  return s;
}

}  // namespace wavekey::nn
