// AVX2/FMA narrow-N dense microkernel for the batched feature-major stage
// (batched_infer.hpp). Lives in its own TU with the vector ISA enabled, like
// gemm_avx2.cpp; the dispatcher in batched_infer.cpp only routes here when
// runtime::cpu::active_tier() reports AVX2.
//
//   Y[M, n_pad] = W[M, K] · X[K, n_pad] + bias[M]
//
// Loop order: 8-wide column group outer, 4-row W tile inner, k ascending.
// Each column group streams the full weight matrix once, so a batch of
// B <= 8 reads W exactly once (vs once per sample on the per-sample gemm_nt
// path); X (K * n_pad floats) stays cache-resident across the whole sweep.
// The per-element reduction is ascending-k FMA — a pure function of
// (M, K, n_pad), matching the determinism contract of DESIGN.md §11.4.

#include "nn/batched_infer.hpp"

#if defined(__AVX2__) && defined(__FMA__)
#include <immintrin.h>
#endif

namespace wavekey::nn::detail {

#if defined(__AVX2__) && defined(__FMA__)

void batched_dense_avx2(std::size_t m, std::size_t k, std::size_t n_pad, const float* w,
                        const float* x, const float* bias, float* y) {
  const std::size_t m4 = m / 4 * 4;
  for (std::size_t n0 = 0; n0 < n_pad; n0 += 8) {
    for (std::size_t m0 = 0; m0 < m4; m0 += 4) {
      __m256 acc0 = _mm256_broadcast_ss(bias + m0 + 0);
      __m256 acc1 = _mm256_broadcast_ss(bias + m0 + 1);
      __m256 acc2 = _mm256_broadcast_ss(bias + m0 + 2);
      __m256 acc3 = _mm256_broadcast_ss(bias + m0 + 3);
      const float* w0 = w + (m0 + 0) * k;
      const float* w1 = w + (m0 + 1) * k;
      const float* w2 = w + (m0 + 2) * k;
      const float* w3 = w + (m0 + 3) * k;
      for (std::size_t kk = 0; kk < k; ++kk) {
        const __m256 xv = _mm256_loadu_ps(x + kk * n_pad + n0);
        acc0 = _mm256_fmadd_ps(_mm256_broadcast_ss(w0 + kk), xv, acc0);
        acc1 = _mm256_fmadd_ps(_mm256_broadcast_ss(w1 + kk), xv, acc1);
        acc2 = _mm256_fmadd_ps(_mm256_broadcast_ss(w2 + kk), xv, acc2);
        acc3 = _mm256_fmadd_ps(_mm256_broadcast_ss(w3 + kk), xv, acc3);
      }
      _mm256_storeu_ps(y + (m0 + 0) * n_pad + n0, acc0);
      _mm256_storeu_ps(y + (m0 + 1) * n_pad + n0, acc1);
      _mm256_storeu_ps(y + (m0 + 2) * n_pad + n0, acc2);
      _mm256_storeu_ps(y + (m0 + 3) * n_pad + n0, acc3);
    }
    // m % 4 edge rows: one vector accumulator each, same ascending-k order.
    for (std::size_t mi = m4; mi < m; ++mi) {
      __m256 acc = _mm256_broadcast_ss(bias + mi);
      const float* wr = w + mi * k;
      for (std::size_t kk = 0; kk < k; ++kk)
        acc = _mm256_fmadd_ps(_mm256_broadcast_ss(wr + kk), _mm256_loadu_ps(x + kk * n_pad + n0),
                              acc);
      _mm256_storeu_ps(y + mi * n_pad + n0, acc);
    }
  }
}

// Even elements of the 16-float sequence [a | b], in ascending order. The
// shuffle gives even lanes per 128-bit half ([x0,x2,x8,x10 | x4,x6,x12,x14]);
// the cross-lane permute restores ascending order.
static inline __m256 even_lanes(__m256 a, __m256 b) {
  const __m256 s = _mm256_shuffle_ps(a, b, _MM_SHUFFLE(2, 0, 2, 0));
  return _mm256_permutevar8x32_ps(s, _mm256_setr_epi32(0, 1, 4, 5, 2, 3, 6, 7));
}

void copy_stride2_avx2(float* dst, const float* src, std::size_t n) {
  std::size_t i = 0;
  // Each step loads src[2i .. 2i+15]; i + 9 <= n keeps the last load at
  // src[2n-3], inside the caller-guaranteed src[0 .. 2n-2] extent.
  for (; i + 9 <= n; i += 8)
    _mm256_storeu_ps(dst + i, even_lanes(_mm256_loadu_ps(src + 2 * i),
                                         _mm256_loadu_ps(src + 2 * i + 8)));
  for (; i < n; ++i) dst[i] = src[2 * i];
}

void copy_stride4_avx2(float* dst, const float* src, std::size_t n) {
  std::size_t i = 0;
  // Stride 4 = stride 2 applied twice. Each step loads src[4i .. 4i+31];
  // i + 9 <= n keeps the last load at src[4n-5], inside the
  // caller-guaranteed src[0 .. 4n-4] extent.
  for (; i + 9 <= n; i += 8) {
    const __m256 a = _mm256_loadu_ps(src + 4 * i);
    const __m256 b = _mm256_loadu_ps(src + 4 * i + 8);
    const __m256 c = _mm256_loadu_ps(src + 4 * i + 16);
    const __m256 d = _mm256_loadu_ps(src + 4 * i + 24);
    _mm256_storeu_ps(dst + i, even_lanes(even_lanes(a, b), even_lanes(c, d)));
  }
  for (; i < n; ++i) dst[i] = src[4 * i];
}

void flatten_transpose_avx2(const float* src, std::size_t b, std::size_t len, std::size_t n_pad,
                            float* dst) {
  // Full 8-sample groups go through a register 8x8 transpose: the scalar
  // loop is a strided gather (one cache-line hop per element, ~1 elem/cycle)
  // and this transpose is the second-largest non-GEMM cost of a batched
  // forward. Standard unpack/shuffle/permute2f128 butterfly: o[i] holds
  // column t+i of rows g..g+7.
  std::size_t g = 0;
  for (; g + 8 <= b; g += 8) {
    std::size_t t = 0;
    for (; t + 8 <= len; t += 8) {
      const float* s0 = src + g * len + t;
      const __m256 r0 = _mm256_loadu_ps(s0 + 0 * len);
      const __m256 r1 = _mm256_loadu_ps(s0 + 1 * len);
      const __m256 r2 = _mm256_loadu_ps(s0 + 2 * len);
      const __m256 r3 = _mm256_loadu_ps(s0 + 3 * len);
      const __m256 r4 = _mm256_loadu_ps(s0 + 4 * len);
      const __m256 r5 = _mm256_loadu_ps(s0 + 5 * len);
      const __m256 r6 = _mm256_loadu_ps(s0 + 6 * len);
      const __m256 r7 = _mm256_loadu_ps(s0 + 7 * len);
      const __m256 t0 = _mm256_unpacklo_ps(r0, r1);
      const __m256 t1 = _mm256_unpackhi_ps(r0, r1);
      const __m256 t2 = _mm256_unpacklo_ps(r2, r3);
      const __m256 t3 = _mm256_unpackhi_ps(r2, r3);
      const __m256 t4 = _mm256_unpacklo_ps(r4, r5);
      const __m256 t5 = _mm256_unpackhi_ps(r4, r5);
      const __m256 t6 = _mm256_unpacklo_ps(r6, r7);
      const __m256 t7 = _mm256_unpackhi_ps(r6, r7);
      const __m256 u0 = _mm256_shuffle_ps(t0, t2, _MM_SHUFFLE(1, 0, 1, 0));
      const __m256 u1 = _mm256_shuffle_ps(t0, t2, _MM_SHUFFLE(3, 2, 3, 2));
      const __m256 u2 = _mm256_shuffle_ps(t1, t3, _MM_SHUFFLE(1, 0, 1, 0));
      const __m256 u3 = _mm256_shuffle_ps(t1, t3, _MM_SHUFFLE(3, 2, 3, 2));
      const __m256 u4 = _mm256_shuffle_ps(t4, t6, _MM_SHUFFLE(1, 0, 1, 0));
      const __m256 u5 = _mm256_shuffle_ps(t4, t6, _MM_SHUFFLE(3, 2, 3, 2));
      const __m256 u6 = _mm256_shuffle_ps(t5, t7, _MM_SHUFFLE(1, 0, 1, 0));
      const __m256 u7 = _mm256_shuffle_ps(t5, t7, _MM_SHUFFLE(3, 2, 3, 2));
      float* d0 = dst + t * n_pad + g;
      _mm256_storeu_ps(d0 + 0 * n_pad, _mm256_permute2f128_ps(u0, u4, 0x20));
      _mm256_storeu_ps(d0 + 1 * n_pad, _mm256_permute2f128_ps(u1, u5, 0x20));
      _mm256_storeu_ps(d0 + 2 * n_pad, _mm256_permute2f128_ps(u2, u6, 0x20));
      _mm256_storeu_ps(d0 + 3 * n_pad, _mm256_permute2f128_ps(u3, u7, 0x20));
      _mm256_storeu_ps(d0 + 4 * n_pad, _mm256_permute2f128_ps(u0, u4, 0x31));
      _mm256_storeu_ps(d0 + 5 * n_pad, _mm256_permute2f128_ps(u1, u5, 0x31));
      _mm256_storeu_ps(d0 + 6 * n_pad, _mm256_permute2f128_ps(u2, u6, 0x31));
      _mm256_storeu_ps(d0 + 7 * n_pad, _mm256_permute2f128_ps(u3, u7, 0x31));
    }
    for (; t < len; ++t)  // position tail of a full sample group
      for (std::size_t s = 0; s < 8; ++s) dst[t * n_pad + g + s] = src[(g + s) * len + t];
  }
  for (std::size_t t = 0; t < len; ++t) {
    for (std::size_t s = g; s < b; ++s) dst[t * n_pad + s] = src[s * len + t];
    for (std::size_t s = b; s < n_pad; ++s) dst[t * n_pad + s] = 0.0f;
  }
}

#else  // target built without AVX2/FMA: keep the symbols, delegate.

void batched_dense_avx2(std::size_t m, std::size_t k, std::size_t n_pad, const float* w,
                        const float* x, const float* bias, float* y) {
  batched_dense_scalar(m, k, n_pad, w, x, bias, y);
}

void copy_stride2_avx2(float* dst, const float* src, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) dst[i] = src[2 * i];
}

void copy_stride4_avx2(float* dst, const float* src, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) dst[i] = src[4 * i];
}

void flatten_transpose_avx2(const float* src, std::size_t b, std::size_t len, std::size_t n_pad,
                            float* dst) {
  for (std::size_t t = 0; t < len; ++t) {
    for (std::size_t s = 0; s < b; ++s) dst[t * n_pad + s] = src[s * len + t];
    for (std::size_t s = b; s < n_pad; ++s) dst[t * n_pad + s] = 0.0f;
  }
}

#endif

}  // namespace wavekey::nn::detail
