#pragma once

// The pre-GEMM naive layer kernels, retained verbatim as the executable
// specification of Conv1D / ConvTranspose1D / Dense forward+backward. The
// optimized im2col+GEMM paths in the layers must match these within
// floating-point reassociation tolerance (kernel_equiv_test.cpp), and the
// sanitizer CI legs exercise both implementations through that suite.
//
// All functions are serial and allocation-transparent — they never consult
// the compute pool, which also makes them the ground truth for the §7.2
// determinism contract (pool size <= 1 must equal serial bit for bit).

#include "nn/tensor.hpp"

namespace wavekey::nn::reference {

/// Forward cross-correlation; input [N, in_ch, L], w [out_ch, in_ch, k].
Tensor conv1d_forward(const Tensor& input, const Tensor& w, const Tensor& b, std::size_t stride,
                      std::size_t padding);

/// Backward pass: accumulates into w_grad/b_grad, returns grad_input.
Tensor conv1d_backward(const Tensor& input, const Tensor& w, const Tensor& grad_output,
                       std::size_t stride, std::size_t padding, Tensor& w_grad, Tensor& b_grad);

/// Forward transposed convolution; input [N, in_ch, L], w [in_ch, out_ch, k].
Tensor conv_transpose1d_forward(const Tensor& input, const Tensor& w, const Tensor& b,
                                std::size_t stride);

Tensor conv_transpose1d_backward(const Tensor& input, const Tensor& w, const Tensor& grad_output,
                                 std::size_t stride, Tensor& w_grad, Tensor& b_grad);

/// Forward affine map; input [N, in], w [out, in].
Tensor dense_forward(const Tensor& input, const Tensor& w, const Tensor& b);

Tensor dense_backward(const Tensor& input, const Tensor& w, const Tensor& grad_output,
                      Tensor& w_grad, Tensor& b_grad);

}  // namespace wavekey::nn::reference
