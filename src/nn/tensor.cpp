#include "nn/tensor.hpp"

namespace wavekey::nn {
namespace {

// Per-thread free list of float buffers. Bounded so pathological workloads
// cannot hoard memory: at most kMaxBlocks buffers / kMaxBytes bytes pooled
// per thread; excess releases fall through to delete[].
constexpr std::size_t kMaxBlocks = 64;
constexpr std::size_t kMaxBytes = std::size_t{64} << 20;  // 64 MiB per thread

struct Block {
  float* ptr;
  std::size_t capacity;  // elements
};

struct Pool;
// Raw per-thread handles. tl_pool is null before first use and again after
// thread-exit teardown; tl_pool_gone distinguishes the two so release can
// fall back to delete[] instead of touching a destroyed pool, and acquire
// never re-enters a destroyed function-local thread_local.
thread_local Pool* tl_pool = nullptr;
thread_local bool tl_pool_gone = false;
thread_local TensorArenaStats tl_stats;  // trivially destructible, outlives Pool

struct Pool {
  std::vector<Block> blocks;
  std::size_t pooled_bytes = 0;

  Pool() { tl_pool = this; }
  ~Pool() {
    tl_pool = nullptr;
    tl_pool_gone = true;
    for (const Block& b : blocks) delete[] b.ptr;
  }
};

Pool* pool_for_acquire() {
  if (tl_pool == nullptr && !tl_pool_gone) {
    thread_local Pool pool;  // registers itself in tl_pool
  }
  return tl_pool;
}

}  // namespace

namespace detail {

float* arena_acquire(std::size_t n, std::size_t& capacity_out) {
  Pool* pool = pool_for_acquire();
  if (pool != nullptr) {
    // Best fit: the smallest pooled block that holds n elements, so big
    // blocks stay available for big tensors.
    std::size_t best = pool->blocks.size();
    for (std::size_t i = 0; i < pool->blocks.size(); ++i) {
      const Block& b = pool->blocks[i];
      if (b.capacity >= n && (best == pool->blocks.size() || b.capacity < pool->blocks[best].capacity))
        best = i;
    }
    if (best != pool->blocks.size()) {
      const Block b = pool->blocks[best];
      pool->blocks[best] = pool->blocks.back();
      pool->blocks.pop_back();
      pool->pooled_bytes -= b.capacity * sizeof(float);
      ++tl_stats.pool_reuses;
      capacity_out = b.capacity;
      return b.ptr;
    }
  }
  ++tl_stats.heap_allocations;
  tl_stats.heap_bytes += n * sizeof(float);
  capacity_out = n;
  return new float[n];
}

void arena_release(float* p, std::size_t capacity) noexcept {
  Pool* pool = tl_pool;
  if (pool == nullptr || pool->blocks.size() >= kMaxBlocks ||
      pool->pooled_bytes + capacity * sizeof(float) > kMaxBytes) {
    delete[] p;
    return;
  }
  pool->blocks.push_back(Block{p, capacity});
  pool->pooled_bytes += capacity * sizeof(float);
}

}  // namespace detail

TensorArenaStats tensor_arena_stats() { return tl_stats; }

void tensor_arena_trim() {
  Pool* pool = tl_pool;
  if (pool == nullptr) return;
  for (const Block& b : pool->blocks) delete[] b.ptr;
  pool->blocks.clear();
  pool->pooled_bytes = 0;
}

}  // namespace wavekey::nn
