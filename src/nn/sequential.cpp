#include "nn/sequential.hpp"

#include <istream>
#include <ostream>
#include <stdexcept>

namespace wavekey::nn {

Tensor Sequential::forward(const Tensor& input, bool training) {
  Tensor x = input;
  for (auto& layer : layers_) x = layer->forward(x, training);
  return x;
}

Tensor Sequential::backward(const Tensor& grad_output) {
  Tensor g = grad_output;
  for (auto it = layers_.rbegin(); it != layers_.rend(); ++it) g = (*it)->backward(g);
  return g;
}

std::vector<Param> Sequential::params() {
  std::vector<Param> all;
  for (auto& layer : layers_) {
    const auto ps = layer->params();
    all.insert(all.end(), ps.begin(), ps.end());
  }
  return all;
}

std::size_t Sequential::num_parameters() {
  std::size_t n = 0;
  for (const Param& p : params()) n += p.value->size();
  return n;
}

void Sequential::save(std::ostream& os) const {
  write_u64(os, layers_.size());
  for (const auto& layer : layers_) {
    write_string(os, layer->type_name());
    layer->save(os);
  }
}

void Sequential::load(std::istream& is) {
  const std::uint64_t n = read_u64(is);
  if (n != layers_.size()) throw std::runtime_error("Sequential::load: layer count mismatch");
  for (auto& layer : layers_) {
    const std::string tag = read_string(is);
    if (tag != layer->type_name())
      throw std::runtime_error("Sequential::load: layer type mismatch: expected " +
                               layer->type_name() + ", got " + tag);
    layer->load(is);
  }
}

}  // namespace wavekey::nn
