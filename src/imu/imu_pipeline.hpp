#pragma once

// Mobile-side data processing (SIV-B2 of the paper):
//
//  1. detect the gesture start from the variance jump of the accelerometer
//     magnitude (the user pauses before gesturing, so both devices can
//     self-align without a shared clock);
//  2. align gyro/accel/mag streams onto a common 100 Hz grid by
//     interpolation;
//  3. estimate the initial attitude from the pause-time accelerometer
//     (gravity) and magnetometer (north) via the TRIAD construction;
//  4. dead-reckon subsequent attitudes by integrating the gyroscope (drift
//     over 2 s is negligible; the paper explicitly avoids Kalman filtering);
//  5. rotate body accelerations to the world frame, remove gravity, and
//     de-bias, yielding the 200 x 3 linear-acceleration matrix A.

#include <optional>

#include "dsp/gesture_detect.hpp"
#include "numeric/matrix.hpp"
#include "numeric/quaternion.hpp"
#include "numeric/vec3.hpp"
#include "sim/imu_sensor.hpp"

namespace wavekey::imu {

struct ImuPipelineConfig {
  double window_s = 2.0;          ///< gesture window used for key generation
  double window_offset_s = 0.0;   ///< shift of the window past the detected start
  double interp_rate_hz = 100.0;  ///< paper's common grid
  dsp::GestureDetectConfig detect{};
  Vec3 gravity_ref{0.0, 0.0, -9.81};   ///< assumed world gravity
  Vec3 magnetic_ref{22.0, 0.0, -42.0}; ///< assumed world geomagnetic field, uT

  /// Displacement-threshold anchoring: both sides start their window when
  /// the hand has displaced by this many meters past the coarse-detected
  /// onset. Because early-ramp displacement grows ~t^3, both modalities
  /// cross this threshold within a few milliseconds of each other, which is
  /// what keeps S_M and S_R aligned without a shared clock.
  double anchor_displacement_m = 0.006;

  /// Ablation switch (bench_ablation_sync): false reverts to anchoring the
  /// window at the coarse variance-trigger onset, the naive reading of the
  /// paper's synchronization paragraph.
  bool displacement_anchor = true;
};

struct ImuPipelineResult {
  Matrix linear_accel;        ///< A: (window_s * rate) x 3, world frame, m/s^2
  double gesture_start_time;  ///< detected start, seconds into the recording
  Quaternion initial_pose;    ///< estimated attitude at gesture start
};

/// Runs the full mobile-side pipeline. Returns nullopt when no gesture start
/// is detected or the recording is too short to cover the window.
std::optional<ImuPipelineResult> process_imu(const sim::ImuRecord& record,
                                             const ImuPipelineConfig& config = {});

/// TRIAD attitude determination from body-frame observations of two world
/// reference vectors. Exposed for direct testing.
/// @param body_up      measured specific-force direction (gravity reaction)
/// @param body_mag     measured magnetic field (body frame)
/// @param world_gravity, world_mag  the corresponding world references
Quaternion triad_attitude(const Vec3& body_up, const Vec3& body_mag, const Vec3& world_gravity,
                          const Vec3& world_mag);

}  // namespace wavekey::imu
