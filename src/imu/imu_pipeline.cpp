#include "imu/imu_pipeline.hpp"

#include <cmath>

#include "dsp/resample.hpp"
#include "numeric/mat3.hpp"
#include "numeric/stats.hpp"

namespace wavekey::imu {

Quaternion triad_attitude(const Vec3& body_up, const Vec3& body_mag, const Vec3& world_gravity,
                          const Vec3& world_mag) {
  // World triad: t1 = up, t2 = up x mag (east-ish), t3 = t1 x t2.
  const Vec3 w1 = (-world_gravity).normalized();
  const Vec3 w2 = w1.cross(world_mag.normalized()).normalized();
  const Vec3 w3 = w1.cross(w2);

  const Vec3 b1 = body_up.normalized();
  const Vec3 b2 = b1.cross(body_mag.normalized()).normalized();
  const Vec3 b3 = b1.cross(b2);

  // R maps body to world: R * b_i = w_i  =>  R = W * B^T.
  const Mat3 w = Mat3::from_columns(w1, w2, w3);
  const Mat3 b = Mat3::from_columns(b1, b2, b3);
  return Quaternion::from_matrix(w * b.transposed());
}

std::optional<ImuPipelineResult> process_imu(const sim::ImuRecord& record,
                                             const ImuPipelineConfig& config) {
  const auto& samples = record.samples;
  if (samples.size() < 20) return std::nullopt;

  // 1. Coarse onset from the accelerometer magnitude variance jump.
  std::vector<double> accel_mag(samples.size());
  for (std::size_t i = 0; i < samples.size(); ++i) accel_mag[i] = samples[i].accel.norm();
  const auto onset_idx = dsp::detect_gesture_start(accel_mag, config.detect);
  if (!onset_idx) return std::nullopt;
  const double t_onset = samples[*onset_idx].t;

  // 2. Initial attitude from the pause: average accel/mag before the onset.
  const std::size_t pause_end =
      *onset_idx > 4 ? *onset_idx : std::min<std::size_t>(4, samples.size());
  Vec3 mean_accel, mean_mag;
  std::size_t pause_count = 0;
  for (std::size_t i = 0; i < pause_end; ++i) {
    mean_accel += samples[i].accel;
    mean_mag += samples[i].mag;
    ++pause_count;
  }
  if (pause_count == 0) return std::nullopt;
  mean_accel = mean_accel / static_cast<double>(pause_count);
  mean_mag = mean_mag / static_cast<double>(pause_count);
  const Quaternion q0 =
      triad_attitude(mean_accel, mean_mag, config.gravity_ref, config.magnetic_ref);
  // The pause-time accelerometer should read pure gravity reaction; any
  // excess magnitude is bias, which we subtract along the measured direction.
  const double bias_mag = mean_accel.norm() - config.gravity_ref.norm();
  const Vec3 accel_bias = mean_accel.normalized() * bias_mag;

  // 3. Interpolate all streams onto the 100 Hz grid from the coarse onset to
  // the end of the recording.
  std::vector<double> ts(samples.size());
  for (std::size_t i = 0; i < samples.size(); ++i) ts[i] = samples[i].t;
  const double t_last = ts.back();
  if (t_last <= t_onset) return std::nullopt;
  const auto n_grid =
      static_cast<std::size_t>((t_last - t_onset) * config.interp_rate_hz) + 1;
  const std::vector<double> grid = dsp::uniform_grid(t_onset, config.interp_rate_hz, n_grid);

  auto interp_axis = [&](auto getter) {
    std::vector<double> series(samples.size());
    for (std::size_t i = 0; i < samples.size(); ++i) series[i] = getter(samples[i]);
    return dsp::interp_linear(ts, series, grid);
  };
  const auto ax = interp_axis([](const sim::ImuSample& s) { return s.accel.x; });
  const auto ay = interp_axis([](const sim::ImuSample& s) { return s.accel.y; });
  const auto az = interp_axis([](const sim::ImuSample& s) { return s.accel.z; });
  const auto gx = interp_axis([](const sim::ImuSample& s) { return s.gyro.x; });
  const auto gy = interp_axis([](const sim::ImuSample& s) { return s.gyro.y; });
  const auto gz = interp_axis([](const sim::ImuSample& s) { return s.gyro.z; });

  // 4. Gyro dead-reckoning from q0 and world-frame linear acceleration over
  // the whole grid.
  std::vector<Vec3> lin(n_grid);
  Quaternion q = q0;
  const double dt = 1.0 / config.interp_rate_hz;
  for (std::size_t i = 0; i < n_grid; ++i) {
    const Vec3 f_body = Vec3{ax[i], ay[i], az[i]} - accel_bias;
    lin[i] = q.rotate(f_body) + config.gravity_ref;  // a = f + g
    q = q.integrated({gx[i], gy[i], gz[i]}, dt);
  }

  // 5. Displacement-threshold anchoring: double-integrate from the onset
  // (the hand starts from rest) and find where |displacement| crosses the
  // anchor threshold. This instant is observable by both modalities.
  // Continuation check mirrors the RFID side (see rfid_pipeline.cpp): the
  // anchor is the first crossing that has grown to 1.6x the threshold 30 ms
  // later, keeping the two sides' trigger semantics identical.
  std::size_t anchor = n_grid;
  if (!config.displacement_anchor) {
    anchor = 0;  // ablation: window starts right at the coarse onset
  } else {
    std::vector<double> disp(n_grid);
    Vec3 vel, pos;
    for (std::size_t i = 0; i < n_grid; ++i) {
      vel += lin[i] * dt;
      pos += vel * dt;
      disp[i] = pos.norm();
    }
    const auto cont_gap =
        static_cast<std::size_t>(std::llround(0.03 * config.interp_rate_hz));
    for (std::size_t i = 0; i + cont_gap < n_grid; ++i) {
      if (disp[i] >= config.anchor_displacement_m &&
          disp[i + cont_gap] >= 1.6 * config.anchor_displacement_m) {
        anchor = i;
        break;
      }
    }
  }
  if (anchor == n_grid) return std::nullopt;  // never moved far enough

  // 6. Cut the window (with the requested extra offset) and de-bias.
  const auto n_skip =
      anchor + static_cast<std::size_t>(std::llround(config.window_offset_s * config.interp_rate_hz));
  const auto n_window =
      static_cast<std::size_t>(std::llround(config.window_s * config.interp_rate_hz));
  if (n_skip + n_window > n_grid) return std::nullopt;

  Matrix a(n_window, 3);
  for (std::size_t i = 0; i < n_window; ++i) {
    a(i, 0) = lin[n_skip + i].x;
    a(i, 1) = lin[n_skip + i].y;
    a(i, 2) = lin[n_skip + i].z;
  }
  // Residual bias / attitude error leaves a small constant offset; a
  // gesture's mean linear acceleration over 2 s is ~0, so remove the means.
  for (std::size_t c = 0; c < 3; ++c) {
    const auto col = a.col(c);
    const double m = mean(col);
    for (std::size_t r = 0; r < a.rows(); ++r) a(r, c) -= m;
  }

  return ImuPipelineResult{std::move(a), grid[n_skip], q0};
}

}  // namespace wavekey::imu
