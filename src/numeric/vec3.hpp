#pragma once

// Fixed-size 3-vector used throughout the kinematics simulation (positions,
// velocities, accelerations, angular rates, magnetic field vectors).

#include <array>
#include <cmath>
#include <cstddef>
#include <ostream>

namespace wavekey {

/// A plain 3-component double vector with value semantics.
struct Vec3 {
  double x = 0.0;
  double y = 0.0;
  double z = 0.0;

  constexpr Vec3() = default;
  constexpr Vec3(double x_, double y_, double z_) : x(x_), y(y_), z(z_) {}

  constexpr double& operator[](std::size_t i) { return i == 0 ? x : (i == 1 ? y : z); }
  constexpr double operator[](std::size_t i) const { return i == 0 ? x : (i == 1 ? y : z); }

  constexpr Vec3 operator+(const Vec3& o) const { return {x + o.x, y + o.y, z + o.z}; }
  constexpr Vec3 operator-(const Vec3& o) const { return {x - o.x, y - o.y, z - o.z}; }
  constexpr Vec3 operator-() const { return {-x, -y, -z}; }
  constexpr Vec3 operator*(double s) const { return {x * s, y * s, z * s}; }
  constexpr Vec3 operator/(double s) const { return {x / s, y / s, z / s}; }

  Vec3& operator+=(const Vec3& o) {
    x += o.x;
    y += o.y;
    z += o.z;
    return *this;
  }
  Vec3& operator-=(const Vec3& o) {
    x -= o.x;
    y -= o.y;
    z -= o.z;
    return *this;
  }
  Vec3& operator*=(double s) {
    x *= s;
    y *= s;
    z *= s;
    return *this;
  }

  constexpr bool operator==(const Vec3&) const = default;

  /// Dot product.
  constexpr double dot(const Vec3& o) const { return x * o.x + y * o.y + z * o.z; }

  /// Cross product (right-handed).
  constexpr Vec3 cross(const Vec3& o) const {
    return {y * o.z - z * o.y, z * o.x - x * o.z, x * o.y - y * o.x};
  }

  /// Euclidean norm.
  double norm() const { return std::sqrt(dot(*this)); }

  /// Squared Euclidean norm (avoids the sqrt when only comparisons matter).
  constexpr double norm2() const { return dot(*this); }

  /// Unit vector in the same direction. Returns the zero vector unchanged.
  Vec3 normalized() const {
    const double n = norm();
    return n > 0.0 ? (*this) / n : *this;
  }
};

constexpr Vec3 operator*(double s, const Vec3& v) { return v * s; }

inline std::ostream& operator<<(std::ostream& os, const Vec3& v) {
  return os << '(' << v.x << ", " << v.y << ", " << v.z << ')';
}

}  // namespace wavekey
