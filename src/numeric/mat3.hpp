#pragma once

// 3x3 matrix for rotation/coordinate-frame math in the IMU pipeline.

#include <array>
#include <cstddef>

#include "numeric/vec3.hpp"

namespace wavekey {

/// Row-major 3x3 double matrix with value semantics.
///
/// Primarily used as a rotation matrix mapping body-frame vectors to the
/// world frame (columns are the body axes expressed in world coordinates).
struct Mat3 {
  std::array<double, 9> m{};  // row-major

  constexpr double& operator()(std::size_t r, std::size_t c) { return m[r * 3 + c]; }
  constexpr double operator()(std::size_t r, std::size_t c) const { return m[r * 3 + c]; }

  /// The identity matrix.
  static constexpr Mat3 identity() {
    Mat3 I;
    I.m = {1, 0, 0, 0, 1, 0, 0, 0, 1};
    return I;
  }

  /// Builds a matrix whose columns are the given vectors.
  static constexpr Mat3 from_columns(const Vec3& c0, const Vec3& c1, const Vec3& c2) {
    Mat3 r;
    r.m = {c0.x, c1.x, c2.x, c0.y, c1.y, c2.y, c0.z, c1.z, c2.z};
    return r;
  }

  constexpr Vec3 col(std::size_t c) const { return {m[c], m[3 + c], m[6 + c]}; }
  constexpr Vec3 row(std::size_t r) const { return {m[r * 3], m[r * 3 + 1], m[r * 3 + 2]}; }

  /// Matrix-vector product.
  constexpr Vec3 operator*(const Vec3& v) const {
    return {row(0).dot(v), row(1).dot(v), row(2).dot(v)};
  }

  /// Matrix-matrix product.
  constexpr Mat3 operator*(const Mat3& o) const {
    Mat3 r;
    for (std::size_t i = 0; i < 3; ++i)
      for (std::size_t j = 0; j < 3; ++j) {
        double s = 0.0;
        for (std::size_t k = 0; k < 3; ++k) s += (*this)(i, k) * o(k, j);
        r(i, j) = s;
      }
    return r;
  }

  /// Transpose. For a rotation matrix this is the inverse.
  constexpr Mat3 transposed() const {
    Mat3 r;
    for (std::size_t i = 0; i < 3; ++i)
      for (std::size_t j = 0; j < 3; ++j) r(i, j) = (*this)(j, i);
    return r;
  }

  constexpr double det() const {
    return m[0] * (m[4] * m[8] - m[5] * m[7]) - m[1] * (m[3] * m[8] - m[5] * m[6]) +
           m[2] * (m[3] * m[7] - m[4] * m[6]);
  }

  constexpr bool operator==(const Mat3&) const = default;
};

}  // namespace wavekey
