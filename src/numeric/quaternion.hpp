#pragma once

// Unit quaternion for attitude representation and gyroscope dead-reckoning.

#include <cmath>

#include "numeric/mat3.hpp"
#include "numeric/vec3.hpp"

namespace wavekey {

/// Hamilton unit quaternion (w, x, y, z) representing a rotation.
///
/// Convention: `rotate(v)` maps a body-frame vector to the world frame when
/// the quaternion encodes the body-to-world attitude. Integration of body
/// angular rate `omega` over `dt` uses the standard first-order update
/// q <- q * exp(omega*dt/2), which is accurate for the small per-sample
/// rotations seen at IMU sampling rates.
struct Quaternion {
  double w = 1.0;
  double x = 0.0;
  double y = 0.0;
  double z = 0.0;

  constexpr Quaternion() = default;
  constexpr Quaternion(double w_, double x_, double y_, double z_) : w(w_), x(x_), y(y_), z(z_) {}

  /// Axis-angle constructor. `axis` need not be normalized.
  static Quaternion from_axis_angle(const Vec3& axis, double angle_rad) {
    const Vec3 a = axis.normalized();
    const double h = angle_rad * 0.5;
    const double s = std::sin(h);
    return {std::cos(h), a.x * s, a.y * s, a.z * s};
  }

  /// Builds the attitude quaternion from a rotation matrix (body->world).
  static Quaternion from_matrix(const Mat3& r);

  constexpr Quaternion operator*(const Quaternion& o) const {
    return {w * o.w - x * o.x - y * o.y - z * o.z, w * o.x + x * o.w + y * o.z - z * o.y,
            w * o.y - x * o.z + y * o.w + z * o.x, w * o.z + x * o.y - y * o.x + z * o.w};
  }

  constexpr Quaternion conjugate() const { return {w, -x, -y, -z}; }

  double norm() const { return std::sqrt(w * w + x * x + y * y + z * z); }

  Quaternion normalized() const {
    const double n = norm();
    if (n <= 0.0) return {};
    return {w / n, x / n, y / n, z / n};
  }

  /// Rotates a vector by this (unit) quaternion.
  Vec3 rotate(const Vec3& v) const {
    // v' = q * (0, v) * q^-1, expanded to avoid temporaries.
    const Vec3 u{x, y, z};
    const Vec3 t = u.cross(v) * 2.0;
    return v + t * w + u.cross(t);
  }

  /// Converts to the equivalent rotation matrix.
  Mat3 to_matrix() const {
    Mat3 r;
    const double xx = x * x, yy = y * y, zz = z * z;
    const double xy = x * y, xz = x * z, yz = y * z;
    const double wx = w * x, wy = w * y, wz = w * z;
    r.m = {1 - 2 * (yy + zz), 2 * (xy - wz),     2 * (xz + wy),
           2 * (xy + wz),     1 - 2 * (xx + zz), 2 * (yz - wx),
           2 * (xz - wy),     2 * (yz + wx),     1 - 2 * (xx + yy)};
    return r;
  }

  /// First-order attitude update by body angular rate over a small step.
  Quaternion integrated(const Vec3& omega_body, double dt) const {
    const double angle = omega_body.norm() * dt;
    if (angle < 1e-12) return *this;
    return ((*this) * Quaternion::from_axis_angle(omega_body, angle)).normalized();
  }
};

inline Quaternion Quaternion::from_matrix(const Mat3& r) {
  // Shepperd's method: pick the largest diagonal combination for stability.
  const double tr = r(0, 0) + r(1, 1) + r(2, 2);
  Quaternion q;
  if (tr > 0.0) {
    const double s = std::sqrt(tr + 1.0) * 2.0;
    q = {0.25 * s, (r(2, 1) - r(1, 2)) / s, (r(0, 2) - r(2, 0)) / s, (r(1, 0) - r(0, 1)) / s};
  } else if (r(0, 0) > r(1, 1) && r(0, 0) > r(2, 2)) {
    const double s = std::sqrt(1.0 + r(0, 0) - r(1, 1) - r(2, 2)) * 2.0;
    q = {(r(2, 1) - r(1, 2)) / s, 0.25 * s, (r(0, 1) + r(1, 0)) / s, (r(0, 2) + r(2, 0)) / s};
  } else if (r(1, 1) > r(2, 2)) {
    const double s = std::sqrt(1.0 + r(1, 1) - r(0, 0) - r(2, 2)) * 2.0;
    q = {(r(0, 2) - r(2, 0)) / s, (r(0, 1) + r(1, 0)) / s, 0.25 * s, (r(1, 2) + r(2, 1)) / s};
  } else {
    const double s = std::sqrt(1.0 + r(2, 2) - r(0, 0) - r(1, 1)) * 2.0;
    q = {(r(1, 0) - r(0, 1)) / s, (r(0, 2) + r(2, 0)) / s, (r(1, 2) + r(2, 1)) / s, 0.25 * s};
  }
  return q.normalized();
}

}  // namespace wavekey
