#include "numeric/rng.hpp"

#include <cmath>

namespace wavekey {
namespace {

std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9E3779B97F4A7C15ULL);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

constexpr std::uint64_t rotl(std::uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& s : s_) s = splitmix64(sm);
  // All-zero state would be absorbing; splitmix64 cannot produce four zeros
  // from any seed, but keep the guard explicit.
  if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) s_[0] = 1;
}

std::uint64_t Rng::next() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Rng::uniform() {
  // 53 top bits -> double in [0, 1).
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

std::uint64_t Rng::uniform_u64(std::uint64_t n) {
  if (n == 0) return 0;
  const std::uint64_t threshold = (~n + 1) % n;  // 2^64 mod n
  for (;;) {
    const std::uint64_t r = next();
    if (r >= threshold) return r % n;
  }
}

double Rng::normal() {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  // Box-Muller; u1 in (0,1] to keep log finite.
  double u1;
  do {
    u1 = uniform();
  } while (u1 <= 0.0);
  const double u2 = uniform();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * M_PI * u2;
  cached_normal_ = r * std::sin(theta);
  has_cached_normal_ = true;
  return r * std::cos(theta);
}

double Rng::normal(double mu, double sigma) { return mu + sigma * normal(); }

void Rng::fill_bytes(std::span<std::uint8_t> out) {
  std::size_t i = 0;
  while (i < out.size()) {
    std::uint64_t word = next();
    for (int b = 0; b < 8 && i < out.size(); ++b, ++i) {
      out[i] = static_cast<std::uint8_t>(word & 0xFF);
      word >>= 8;
    }
  }
}

Rng Rng::split() { return Rng(next() ^ 0xD2B74407B1CE6E93ULL); }

}  // namespace wavekey
