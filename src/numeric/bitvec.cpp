#include "numeric/bitvec.hpp"

#include <bit>
#include <stdexcept>

namespace wavekey {

BitVec BitVec::from_string(const std::string& s) {
  BitVec v(s.size());
  for (std::size_t i = 0; i < s.size(); ++i) {
    if (s[i] == '1')
      v.set(i, true);
    else if (s[i] != '0')
      throw std::invalid_argument("BitVec::from_string: invalid character");
  }
  return v;
}

BitVec BitVec::from_bytes(std::span<const std::uint8_t> bytes, std::size_t nbits) {
  if (nbits > bytes.size() * 8) throw std::invalid_argument("BitVec::from_bytes: too few bytes");
  BitVec v(nbits);
  for (std::size_t i = 0; i < nbits; ++i)
    if ((bytes[i >> 3] >> (i & 7)) & 1) v.set(i, true);
  return v;
}

void BitVec::push_back(bool v) {
  if (size_ % 64 == 0) words_.push_back(0);
  ++size_;
  set(size_ - 1, v);
}

void BitVec::append(const BitVec& other) {
  for (std::size_t i = 0; i < other.size_; ++i) push_back(other.get(i));
}

BitVec BitVec::slice(std::size_t start, std::size_t len) const {
  if (start + len > size_) throw std::out_of_range("BitVec::slice");
  BitVec v(len);
  for (std::size_t i = 0; i < len; ++i) v.set(i, get(start + i));
  return v;
}

BitVec BitVec::operator^(const BitVec& o) const {
  if (size_ != o.size_) throw std::invalid_argument("BitVec^: size mismatch");
  BitVec r = *this;
  for (std::size_t i = 0; i < words_.size(); ++i) r.words_[i] ^= o.words_[i];
  return r;
}

std::size_t BitVec::popcount() const {
  std::size_t c = 0;
  for (std::uint64_t w : words_) c += static_cast<std::size_t>(std::popcount(w));
  return c;
}

std::size_t BitVec::hamming_distance(const BitVec& o) const {
  if (size_ != o.size_) throw std::invalid_argument("BitVec::hamming_distance: size mismatch");
  std::size_t c = 0;
  for (std::size_t i = 0; i < words_.size(); ++i)
    c += static_cast<std::size_t>(std::popcount(words_[i] ^ o.words_[i]));
  return c;
}

double BitVec::mismatch_ratio(const BitVec& o) const {
  if (size_ == 0) return 0.0;
  return static_cast<double>(hamming_distance(o)) / static_cast<double>(size_);
}

std::vector<std::uint8_t> BitVec::to_bytes() const {
  std::vector<std::uint8_t> out((size_ + 7) / 8, 0);
  for (std::size_t i = 0; i < size_; ++i)
    if (get(i)) out[i >> 3] |= static_cast<std::uint8_t>(1u << (i & 7));
  return out;
}

std::string BitVec::to_string() const {
  std::string s(size_, '0');
  for (std::size_t i = 0; i < size_; ++i)
    if (get(i)) s[i] = '1';
  return s;
}

void BitVec::mask_tail() {
  const std::size_t tail = size_ % 64;
  if (tail != 0 && !words_.empty()) words_.back() &= (std::uint64_t{1} << tail) - 1;
}

}  // namespace wavekey
