#pragma once

// Compact bit vector with value semantics, used for key-seeds, preliminary
// keys, ECC codewords, and NIST randomness-test inputs.

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace wavekey {

/// A sequence of bits, indexable MSB-of-word-agnostic (bit i is just bit i).
class BitVec {
 public:
  BitVec() = default;

  /// n zero bits.
  explicit BitVec(std::size_t n) : size_(n), words_((n + 63) / 64, 0) {}

  /// Parses a string of '0'/'1' characters. Throws on any other character.
  static BitVec from_string(const std::string& s);

  /// Wraps the low `nbits` of the byte buffer (byte 0 supplies bits 0..7,
  /// bit 0 of the byte is bit 0 of the vector).
  static BitVec from_bytes(std::span<const std::uint8_t> bytes, std::size_t nbits);

  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  bool get(std::size_t i) const { return (words_[i >> 6] >> (i & 63)) & 1; }
  void set(std::size_t i, bool v) {
    const std::uint64_t mask = std::uint64_t{1} << (i & 63);
    if (v)
      words_[i >> 6] |= mask;
    else
      words_[i >> 6] &= ~mask;
  }

  /// Appends a single bit.
  void push_back(bool v);

  /// Appends all bits of another vector.
  void append(const BitVec& other);

  /// Contiguous sub-range [start, start+len).
  BitVec slice(std::size_t start, std::size_t len) const;

  /// Bitwise XOR; throws std::invalid_argument on size mismatch.
  BitVec operator^(const BitVec& o) const;

  bool operator==(const BitVec&) const = default;

  /// Number of set bits.
  std::size_t popcount() const;

  /// Number of positions where *this and o differ; throws on size mismatch.
  std::size_t hamming_distance(const BitVec& o) const;

  /// Fraction of mismatched bits in [0,1]; 0 for empty vectors.
  double mismatch_ratio(const BitVec& o) const;

  /// Packs into bytes (bit 0 -> LSB of byte 0); final partial byte zero-padded.
  std::vector<std::uint8_t> to_bytes() const;

  /// '0'/'1' string, bit 0 first.
  std::string to_string() const;

 private:
  void mask_tail();

  std::size_t size_ = 0;
  std::vector<std::uint64_t> words_;
};

}  // namespace wavekey
