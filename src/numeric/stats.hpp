#pragma once

// Descriptive statistics and normal-distribution helpers used by the
// quantizer (CDF-equalized bins), the eta calibration (percentiles of the
// bit-mismatch distribution), and the gesture-start detector (moving
// variance).

#include <span>
#include <vector>

namespace wavekey {

/// Arithmetic mean; returns 0 for an empty span.
double mean(std::span<const double> xs);

/// Population variance (divides by N); returns 0 for spans of size < 1.
double variance(std::span<const double> xs);

/// Sample standard deviation derived from `variance`.
double stddev(std::span<const double> xs);

/// Pearson correlation coefficient of two equal-length series.
/// Throws std::invalid_argument on length mismatch; returns 0 if either
/// series is constant.
double pearson(std::span<const double> xs, std::span<const double> ys);

/// Linear-interpolated percentile, p in [0, 100]. Throws on empty input.
double percentile(std::vector<double> xs, double p);

/// Standard normal cumulative distribution function Phi(x).
double normal_cdf(double x);

/// Inverse standard normal CDF (quantile function) via the Acklam rational
/// approximation with one Newton refinement; |error| < 1e-9 over (0, 1).
/// Throws std::domain_error for p outside (0, 1).
double normal_quantile(double p);

/// Complementary error function wrapper (for NIST p-values).
double erfc_scaled(double x);

}  // namespace wavekey
