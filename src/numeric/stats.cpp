#include "numeric/stats.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace wavekey {

double mean(std::span<const double> xs) {
  if (xs.empty()) return 0.0;
  double s = 0.0;
  for (double x : xs) s += x;
  return s / static_cast<double>(xs.size());
}

double variance(std::span<const double> xs) {
  if (xs.size() < 2) return 0.0;
  const double m = mean(xs);
  double s = 0.0;
  for (double x : xs) s += (x - m) * (x - m);
  return s / static_cast<double>(xs.size());
}

double stddev(std::span<const double> xs) { return std::sqrt(variance(xs)); }

double pearson(std::span<const double> xs, std::span<const double> ys) {
  if (xs.size() != ys.size()) throw std::invalid_argument("pearson: length mismatch");
  if (xs.size() < 2) return 0.0;
  const double mx = mean(xs), my = mean(ys);
  double sxy = 0.0, sxx = 0.0, syy = 0.0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    const double dx = xs[i] - mx, dy = ys[i] - my;
    sxy += dx * dy;
    sxx += dx * dx;
    syy += dy * dy;
  }
  if (sxx <= 0.0 || syy <= 0.0) return 0.0;
  return sxy / std::sqrt(sxx * syy);
}

double percentile(std::vector<double> xs, double p) {
  if (xs.empty()) throw std::invalid_argument("percentile: empty input");
  p = std::clamp(p, 0.0, 100.0);
  std::sort(xs.begin(), xs.end());
  const double idx = p / 100.0 * static_cast<double>(xs.size() - 1);
  const auto lo = static_cast<std::size_t>(idx);
  const std::size_t hi = std::min(lo + 1, xs.size() - 1);
  const double frac = idx - static_cast<double>(lo);
  return xs[lo] * (1.0 - frac) + xs[hi] * frac;
}

double normal_cdf(double x) { return 0.5 * std::erfc(-x / std::sqrt(2.0)); }

double normal_quantile(double p) {
  if (!(p > 0.0 && p < 1.0)) throw std::domain_error("normal_quantile: p must be in (0,1)");

  // Acklam's rational approximation.
  static constexpr double a[] = {-3.969683028665376e+01, 2.209460984245205e+02,
                                 -2.759285104469687e+02, 1.383577518672690e+02,
                                 -3.066479806614716e+01, 2.506628277459239e+00};
  static constexpr double b[] = {-5.447609879822406e+01, 1.615858368580409e+02,
                                 -1.556989798598866e+02, 6.680131188771972e+01,
                                 -1.328068155288572e+01};
  static constexpr double c[] = {-7.784894002430293e-03, -3.223964580411365e-01,
                                 -2.400758277161838e+00, -2.549732539343734e+00,
                                 4.374664141464968e+00,  2.938163982698783e+00};
  static constexpr double d[] = {7.784695709041462e-03, 3.224671290700398e-01,
                                 2.445134137142996e+00, 3.754408661907416e+00};
  constexpr double plow = 0.02425;

  double x;
  if (p < plow) {
    const double q = std::sqrt(-2.0 * std::log(p));
    x = (((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]) /
        ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
  } else if (p <= 1.0 - plow) {
    const double q = p - 0.5;
    const double r = q * q;
    x = (((((a[0] * r + a[1]) * r + a[2]) * r + a[3]) * r + a[4]) * r + a[5]) * q /
        (((((b[0] * r + b[1]) * r + b[2]) * r + b[3]) * r + b[4]) * r + 1.0);
  } else {
    const double q = std::sqrt(-2.0 * std::log(1.0 - p));
    x = -(((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]) /
        ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
  }

  // One Newton step against the CDF sharpens the tails.
  const double e = normal_cdf(x) - p;
  const double pdf = std::exp(-0.5 * x * x) / std::sqrt(2.0 * M_PI);
  if (pdf > 0.0) x -= e / pdf;
  return x;
}

double erfc_scaled(double x) { return std::erfc(x); }

}  // namespace wavekey
