#include "numeric/matrix.hpp"

#include <algorithm>
#include <cmath>

namespace wavekey {

Matrix::Matrix(std::initializer_list<std::initializer_list<double>> rows) {
  rows_ = rows.size();
  cols_ = rows_ > 0 ? rows.begin()->size() : 0;
  data_.reserve(rows_ * cols_);
  for (const auto& r : rows) {
    if (r.size() != cols_) throw std::invalid_argument("Matrix: ragged initializer");
    data_.insert(data_.end(), r.begin(), r.end());
  }
}

double& Matrix::at(std::size_t r, std::size_t c) {
  if (r >= rows_ || c >= cols_) throw std::out_of_range("Matrix::at");
  return (*this)(r, c);
}

double Matrix::at(std::size_t r, std::size_t c) const {
  if (r >= rows_ || c >= cols_) throw std::out_of_range("Matrix::at");
  return (*this)(r, c);
}

std::vector<double> Matrix::col(std::size_t c) const {
  std::vector<double> out(rows_);
  for (std::size_t r = 0; r < rows_; ++r) out[r] = (*this)(r, c);
  return out;
}

void Matrix::set_col(std::size_t c, std::span<const double> values) {
  if (values.size() != rows_) throw std::invalid_argument("Matrix::set_col: size mismatch");
  for (std::size_t r = 0; r < rows_; ++r) (*this)(r, c) = values[r];
}

Matrix Matrix::operator+(const Matrix& o) const {
  if (rows_ != o.rows_ || cols_ != o.cols_) throw std::invalid_argument("Matrix+: shape mismatch");
  Matrix r = *this;
  for (std::size_t i = 0; i < data_.size(); ++i) r.data_[i] += o.data_[i];
  return r;
}

Matrix Matrix::operator-(const Matrix& o) const {
  if (rows_ != o.rows_ || cols_ != o.cols_) throw std::invalid_argument("Matrix-: shape mismatch");
  Matrix r = *this;
  for (std::size_t i = 0; i < data_.size(); ++i) r.data_[i] -= o.data_[i];
  return r;
}

Matrix Matrix::operator*(double s) const {
  Matrix r = *this;
  for (double& v : r.data_) v *= s;
  return r;
}

Matrix Matrix::matmul(const Matrix& o) const {
  if (cols_ != o.rows_) throw std::invalid_argument("Matrix::matmul: shape mismatch");
  Matrix r(rows_, o.cols_);
  for (std::size_t i = 0; i < rows_; ++i)
    for (std::size_t k = 0; k < cols_; ++k) {
      const double a = (*this)(i, k);
      if (a == 0.0) continue;
      for (std::size_t j = 0; j < o.cols_; ++j) r(i, j) += a * o(k, j);
    }
  return r;
}

Matrix Matrix::transposed() const {
  Matrix r(cols_, rows_);
  for (std::size_t i = 0; i < rows_; ++i)
    for (std::size_t j = 0; j < cols_; ++j) r(j, i) = (*this)(i, j);
  return r;
}

double Matrix::frobenius_norm() const {
  double s = 0.0;
  for (double v : data_) s += v * v;
  return std::sqrt(s);
}

std::vector<double> solve_linear_system(Matrix m, std::vector<double> b) {
  const std::size_t n = m.rows();
  if (m.cols() != n || b.size() != n)
    throw std::invalid_argument("solve_linear_system: shape mismatch");

  for (std::size_t col = 0; col < n; ++col) {
    // Partial pivoting: bring the largest magnitude entry to the diagonal.
    std::size_t pivot = col;
    for (std::size_t r = col + 1; r < n; ++r)
      if (std::abs(m(r, col)) > std::abs(m(pivot, col))) pivot = r;
    if (std::abs(m(pivot, col)) < 1e-12) throw std::runtime_error("solve_linear_system: singular");
    if (pivot != col) {
      for (std::size_t c = 0; c < n; ++c) std::swap(m(pivot, c), m(col, c));
      std::swap(b[pivot], b[col]);
    }
    for (std::size_t r = col + 1; r < n; ++r) {
      const double f = m(r, col) / m(col, col);
      if (f == 0.0) continue;
      for (std::size_t c = col; c < n; ++c) m(r, c) -= f * m(col, c);
      b[r] -= f * b[col];
    }
  }
  // Back substitution.
  std::vector<double> x(n, 0.0);
  for (std::size_t i = n; i-- > 0;) {
    double s = b[i];
    for (std::size_t j = i + 1; j < n; ++j) s -= m(i, j) * x[j];
    x[i] = s / m(i, i);
  }
  return x;
}

}  // namespace wavekey
