#pragma once

// Deterministic pseudo-random generation for the *simulation* side of the
// system (gestures, sensor noise, channels, attacker behaviour).
//
// Everything stochastic in the simulator takes an explicit Rng so that the
// benches reproducing the paper's tables are bit-reproducible run to run.
// Cryptographic randomness (OT exponents, pads, nonces) deliberately does NOT
// use this class; see crypto/drbg.hpp.

#include <cstdint>
#include <span>

namespace wavekey {

/// xoshiro256** PRNG (Blackman & Vigna). Fast, 256-bit state, passes BigCrush.
/// Satisfies UniformRandomBitGenerator.
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Seeds via SplitMix64 expansion of a single 64-bit seed so that nearby
  /// seeds still give decorrelated streams.
  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ULL);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~0ULL; }

  std::uint64_t operator()() { return next(); }
  std::uint64_t next();

  /// Uniform double in [0, 1).
  double uniform();

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);

  /// Uniform integer in [0, n). Uses rejection to avoid modulo bias.
  std::uint64_t uniform_u64(std::uint64_t n);

  /// Standard normal variate (Box-Muller with caching).
  double normal();

  /// Normal variate with the given mean and standard deviation.
  double normal(double mu, double sigma);

  /// Fair coin.
  bool coin() { return (next() >> 63) != 0; }

  /// Fills a byte buffer with pseudo-random bytes.
  void fill_bytes(std::span<std::uint8_t> out);

  /// Spawns an independent child generator; the child's stream is
  /// decorrelated from the parent's continuation (used to give each simulated
  /// volunteer/device/environment its own stream).
  Rng split();

 private:
  std::uint64_t s_[4];
  bool has_cached_normal_ = false;
  double cached_normal_ = 0.0;
};

}  // namespace wavekey
