#pragma once

// Dynamically-sized row-major matrix of doubles. Used for the paper's data
// matrices: the linear-acceleration matrix A (200x3) and the RFID matrix
// R (400x2), plus miscellaneous signal-processing intermediates.

#include <cstddef>
#include <initializer_list>
#include <span>
#include <stdexcept>
#include <vector>

namespace wavekey {

/// Row-major dense matrix of doubles with value semantics.
class Matrix {
 public:
  Matrix() = default;

  /// Creates a rows x cols matrix, zero-initialized.
  Matrix(std::size_t rows, std::size_t cols) : rows_(rows), cols_(cols), data_(rows * cols, 0.0) {}

  /// Creates from nested initializer lists; all rows must have equal length.
  Matrix(std::initializer_list<std::initializer_list<double>> rows);

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }
  std::size_t size() const { return data_.size(); }
  bool empty() const { return data_.empty(); }

  double& operator()(std::size_t r, std::size_t c) { return data_[r * cols_ + c]; }
  double operator()(std::size_t r, std::size_t c) const { return data_[r * cols_ + c]; }

  /// Bounds-checked access; throws std::out_of_range.
  double& at(std::size_t r, std::size_t c);
  double at(std::size_t r, std::size_t c) const;

  /// Raw storage (row-major).
  std::span<double> data() { return data_; }
  std::span<const double> data() const { return data_; }

  /// View of one row.
  std::span<double> row(std::size_t r) { return {data_.data() + r * cols_, cols_}; }
  std::span<const double> row(std::size_t r) const { return {data_.data() + r * cols_, cols_}; }

  /// Copy of one column.
  std::vector<double> col(std::size_t c) const;

  /// Replaces column c with the given values (size must equal rows()).
  void set_col(std::size_t c, std::span<const double> values);

  Matrix operator+(const Matrix& o) const;
  Matrix operator-(const Matrix& o) const;
  Matrix operator*(double s) const;

  /// Matrix product; throws std::invalid_argument on shape mismatch.
  Matrix matmul(const Matrix& o) const;

  Matrix transposed() const;

  /// Frobenius norm.
  double frobenius_norm() const;

  bool operator==(const Matrix&) const = default;

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<double> data_;
};

/// Solves the square linear system M x = b by Gaussian elimination with
/// partial pivoting. Throws std::invalid_argument on shape mismatch and
/// std::runtime_error if M is (numerically) singular.
///
/// Used to derive Savitzky-Golay coefficients and least-squares fits; the
/// systems involved are tiny (order <= ~10) so a dense solver is appropriate.
std::vector<double> solve_linear_system(Matrix m, std::vector<double> b);

}  // namespace wavekey
