#include "core/model_store.hpp"

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <memory>

#include "nn/layer.hpp"
#include "runtime/thread_pool.hpp"

namespace wavekey::core {
namespace {

constexpr char kMagic[] = "WKSYS1";

}  // namespace

void save_system(const WaveKeySystem& system, const std::string& path) {
  std::ofstream os(path, std::ios::binary);
  if (!os) throw std::runtime_error("save_system: cannot open " + path);
  os.write(kMagic, sizeof(kMagic));
  // eta as micro-units to avoid float-text issues.
  nn::write_u64(os, static_cast<std::uint64_t>(system.config().eta * 1e6));
  const_cast<WaveKeySystem&>(system).encoders().save(os);
  system.quantizer().save(os);
}

std::optional<WaveKeySystem> load_system(const std::string& path, const WaveKeyConfig& config) {
  std::ifstream is(path, std::ios::binary);
  if (!is) return std::nullopt;
  try {
    char magic[sizeof(kMagic)];
    is.read(magic, sizeof(kMagic));
    if (!is || std::string(magic, sizeof(kMagic)) != std::string(kMagic, sizeof(kMagic)))
      return std::nullopt;
    WaveKeyConfig cfg = config;
    cfg.eta = static_cast<double>(nn::read_u64(is)) * 1e-6;

    Rng rng(0);
    EncoderPair encoders(cfg.latent_dim, rng);
    encoders.load(is);
    SeedQuantizer quantizer = SeedQuantizer::load(is);
    if (quantizer.latent_dim() != cfg.latent_dim || quantizer.num_bins() != cfg.quant_bins)
      return std::nullopt;

    WaveKeySystem system(std::move(encoders), cfg);
    system.set_quantizer(std::move(quantizer));
    return system;
  } catch (const std::exception&) {
    return std::nullopt;
  }
}

DatasetConfig default_dataset_config() {
  DatasetConfig dc;
  dc.volunteers = 6;
  dc.devices = 4;
  dc.gestures_per_pair = 48;
  dc.windows_per_gesture = 6;
  return dc;
}

TrainConfig default_train_config() {
  TrainConfig tc;
  tc.epochs = 25;
  return tc;
}

WaveKeySystem load_or_train(const std::string& path, const DatasetConfig& dataset_config,
                            const TrainConfig& train_config, const WaveKeyConfig& config,
                            bool verbose) {
  if (auto cached = load_system(path, config)) {
    if (verbose) std::fprintf(stderr, "[model] loaded cached system from %s\n", path.c_str());
    return std::move(*cached);
  }

  const auto t0 = std::chrono::steady_clock::now();
  if (verbose) std::fprintf(stderr, "[model] generating dataset...\n");
  const WaveKeyDataset dataset = WaveKeyDataset::generate(dataset_config, config);
  if (verbose)
    std::fprintf(stderr, "[model] training on %zu samples (one-time; cached to %s)...\n",
                 dataset.size(), path.c_str());
  Rng rng(42);
  EncoderPair encoders(config.latent_dim, rng);
  {
    // WAVEKEY_TRAIN_THREADS=N parallelizes the batch dimension of training.
    // The chunked-reduction contract in src/nn keeps the result deterministic
    // for a fixed N, and N=1 is bit-identical to serial (DESIGN.md §7).
    std::unique_ptr<runtime::ScopedComputePool> scoped;
    if (const char* env = std::getenv("WAVEKEY_TRAIN_THREADS")) {
      const long threads = std::strtol(env, nullptr, 10);
      if (threads > 1)
        scoped = std::make_unique<runtime::ScopedComputePool>(
            static_cast<std::size_t>(threads));
    }
    encoders.train(dataset, train_config);
  }

  WaveKeySystem system(std::move(encoders), config);
  // Calibrate quantizer bins + eta on *held-out* sessions (same generator,
  // fresh seed): calibrating on the training set would let the overfit tail
  // distort eta (SVI-C2's procedure assumes the calibration data represents
  // deployment sessions).
  DatasetConfig held = dataset_config;
  held.seed = dataset_config.seed ^ 0x8E1D07ull;
  held.gestures_per_pair = std::max<std::size_t>(2, dataset_config.gestures_per_pair / 12);
  const WaveKeyDataset held_dataset = WaveKeyDataset::generate(held, config);
  const EtaCalibration cal = system.calibrate(held_dataset);
  if (verbose) {
    const auto t1 = std::chrono::steady_clock::now();
    std::fprintf(stderr, "[model] done in %.0f s; eta=%.4f (p99 mismatch), mean mismatch=%.4f\n",
                 std::chrono::duration<double>(t1 - t0).count(), cal.eta, cal.mean_mismatch);
  }
  save_system(system, path);
  return system;
}

}  // namespace wavekey::core
